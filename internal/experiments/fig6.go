package experiments

import (
	"fmt"
	"math/rand"

	"soar/internal/core"
	"soar/internal/load"
	"soar/internal/placement"
	"soar/internal/reduce"
	"soar/internal/stats"
	"soar/internal/topology"
)

// Fig6Config parameterizes the paper's Fig. 6: SOAR against Top, Max and
// Level (plus the all-blue reference) on BT(N), normalized to all-red,
// across the three rate schemes and the two load distributions.
type Fig6Config struct {
	// N is the BT network size including the destination (paper: 256).
	N int
	// Ks are the budgets to sweep (paper: 1, 2, 4, 8, 16, 32).
	Ks []int
	// Reps is the number of random workloads averaged (paper: 10).
	Reps int
	// Seed makes the whole figure reproducible.
	Seed int64
}

// DefaultFig6 reproduces the paper's setup.
func DefaultFig6() Fig6Config {
	return Fig6Config{N: 256, Ks: []int{1, 2, 4, 8, 16, 32}, Reps: 10, Seed: 1}
}

// QuickFig6 is a reduced instance for tests and benchmarks.
func QuickFig6() Fig6Config {
	return Fig6Config{N: 64, Ks: []int{1, 2, 4, 8}, Reps: 3, Seed: 1}
}

// Fig6 regenerates the paper's Fig. 6. Subplots are rate scheme × load
// distribution; each series is one strategy's normalized utilization
// versus k.
func Fig6(cfg Fig6Config) (*Figure, error) {
	base, err := topology.BT(cfg.N)
	if err != nil {
		return nil, err
	}
	dists := []struct {
		name string
		dist load.Distribution
	}{
		{"power-law load", load.PaperPowerLaw()},
		{"uniform load", load.PaperUniform()},
	}
	fig := &Figure{ID: "fig6", Title: "SOAR vs. other strategies (normalized to all-red)"}
	strategies := CompareStrategies()
	for _, rs := range RateSchemes() {
		tr := topology.ApplyRates(base, rs.Scheme)
		for _, d := range dists {
			rng := rand.New(rand.NewSource(cfg.Seed))
			// accumulators: one per strategy plus the all-blue reference.
			accs := make([]*stats.Accumulator, len(strategies))
			for i := range accs {
				accs[i] = stats.NewAccumulator(len(cfg.Ks))
			}
			blueAcc := stats.NewAccumulator(len(cfg.Ks))

			for rep := 0; rep < cfg.Reps; rep++ {
				loads := load.Generate(tr, d.dist, load.LeavesOnly, rng)
				allRed := reduce.Utilization(tr, loads, make([]bool, tr.N()))
				blueRatio := placement.Evaluate(placement.AllBlue{}, tr, loads, nil, 0) / allRed
				row := make([]float64, len(cfg.Ks))
				for i := range cfg.Ks {
					row[i] = blueRatio
				}
				blueAcc.Add(row)
				for si, s := range strategies {
					row := make([]float64, len(cfg.Ks))
					if soar, ok := s.(core.Strategy); ok {
						// One Gather at max k yields the optimum for every
						// budget i ≤ k at once: φ*(i) = X_r(1, i).
						_ = soar
						maxK := cfg.Ks[len(cfg.Ks)-1]
						tb := core.Gather(tr, loads, nil, maxK)
						for ki, k := range cfg.Ks {
							row[ki] = tb.X(tr.Root(), 1, k) / allRed
						}
					} else {
						for ki, k := range cfg.Ks {
							row[ki] = placement.Evaluate(s, tr, loads, nil, k) / allRed
						}
					}
					accs[si].Add(row)
				}
			}

			sp := Subplot{
				Name:   fmt.Sprintf("%s, %s", rs.Name, d.name),
				XLabel: "k",
				YLabel: "network utilization (vs all-red)",
			}
			xs := make([]float64, len(cfg.Ks))
			for i, k := range cfg.Ks {
				xs[i] = float64(k)
			}
			for si, s := range strategies {
				sp.Series = append(sp.Series, Series{
					Label: s.Name(), X: xs, Y: accs[si].Mean(), Err: accs[si].StdErr(),
				})
			}
			sp.Series = append(sp.Series, Series{Label: "all-blue", X: xs, Y: blueAcc.Mean(), Err: blueAcc.StdErr()})
			fig.Subplots = append(fig.Subplots, sp)
		}
	}
	return fig, nil
}
