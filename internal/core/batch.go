package core

import (
	"fmt"

	"soar/internal/topology"
)

// This file implements the fused batch mode of the memoized engine (see
// DESIGN.md "SoA merge kernel"): solving B sparse instances that share
// one availability set and budget in one pass over the tree, instead of
// one full gather per instance.
//
// The observation is that sparse multi-tenant instances agree almost
// everywhere: a tenant loading a handful of racks leaves every other
// subtree at zero load, and all zero-load subtrees of all instances of
// the batch belong to the same per-switch equivalence class — the class
// of the all-zero instance, whose tables are served from the memo's
// shared zero slab. A BatchSolver therefore classifies the all-zero
// instance once per batch (the zclass pass) and then sweeps the tree
// node-outer: at each switch it touches each instance just long enough
// to roll up its subtree load, and only the instances whose subtree is
// loaded at that switch pay for class interning. Everything the
// instances share — effective caps, path digests, the zero classes, the
// per-switch class cache line — is computed once and stays hot while
// the inner loop runs over instances.
//
// The traceback then reads tables through the class ids directly
// (&memo.entries[classOf[v]].nt) instead of materializing a per-instance
// Tables value, and skips zero-load subtrees like colorIntoSparse (they
// are provably all-red). Placements and costs are bitwise identical to
// running Solve per instance: every class id resolves through the same
// internClassFor contract, so the aliased tables are the very tables a
// per-instance solve would have read.

// BatchSolver solves batches of instances sharing one availability set
// and budget against one Memo. It retains its per-instance scratch
// (subtree loads, class ids) across calls, so a steady stream of
// equally-shaped batches allocates nothing. Like the Memo it wraps, a
// BatchSolver is not safe for concurrent use.
type BatchSolver struct {
	m *Memo

	ecaps   []int
	zclass  []int32
	sub     [][]int64
	classOf [][]int32
	cs      colorState
}

// NewBatchSolver returns a batch solver over m. The memo may be shared
// with other (non-concurrent) engines; batch solves intern into the same
// class space, so tables warmed by single solves serve batches and vice
// versa.
func NewBatchSolver(m *Memo) *BatchSolver {
	return &BatchSolver{m: m}
}

// Memo returns the solve cache the batch solver interns into.
func (bs *BatchSolver) Memo() *Memo { return bs.m }

// ensure sizes the per-batch scratch for B instances over n switches.
//
//soar:hotpath
func (bs *BatchSolver) ensure(n, B int) {
	if len(bs.ecaps) != n {
		bs.ecaps = make([]int, n)    //soar:coldpath first use
		bs.zclass = make([]int32, n) //soar:coldpath first use
	}
	for len(bs.sub) < B {
		bs.sub = append(bs.sub, make([]int64, n))         //soar:coldpath batch grew
		bs.classOf = append(bs.classOf, make([]int32, n)) //soar:coldpath batch grew
	}
}

// Solve solves every instance of the batch: loads[b] is instance b's
// per-switch load vector, and all instances share the availability set
// avail (nil: every switch available) and budget k. The optimal blue
// set of instance b is written into blue[b] (length N) and its cost φ
// into costs[b]. Placements and costs are bitwise identical to calling
// Solve / SolveMemo per instance on the same inputs.
//
//soar:hotpath
func (bs *BatchSolver) Solve(loads [][]int, avail []bool, k int, blue [][]bool, costs []float64) {
	m := bs.m
	t := m.t
	n := t.N()
	B := len(loads)
	if len(blue) != B || len(costs) != B {
		panic(fmt.Sprintf("core: batch of %d instances with %d blue and %d cost slots", B, len(blue), len(costs)))
	}
	for b := range loads {
		validate(t, loads[b], avail)
		if len(blue[b]) != n {
			panic(fmt.Sprintf("core: batch blue[%d] has %d entries for %d switches", b, len(blue[b]), n))
		}
	}
	if k < 0 {
		k = 0
	}
	if B == 0 {
		return
	}
	m.maybeEvict()
	bs.ensure(n, B)
	pd := t.PathDigests()
	effectiveCapsInto(bs.ecaps, t, avail, nil, k)

	var hits, misses uint64
	scratchReady := false
	// Zero pass: intern the class of every switch in the all-zero
	// instance. These are the classes every zero-load subtree of every
	// instance resolves to, and interning them up front means the loaded
	// pass can assign them by plain copy.
	for _, v := range t.PostOrder() {
		capw := capAt(avail, nil, v)
		cid := m.internClassFor(v, bs.zclass, pd, 0, false, capw, bs.ecaps[v])
		bs.zclass[v] = cid
		e := &m.entries[cid]
		if !e.ok { //soar:coldpath cache miss: compute into fresh immutable storage
			misses++
			if !scratchReady {
				m.ensureScratch(bs.ecaps[t.Root()])
				scratchReady = true
			}
			m.computeEntry(e, v, 0, false, capw, bs.ecaps[v], nil, m.sc)
		} else {
			hits++
		}
	}
	// Loaded pass, node-outer: one postorder traversal total. Per switch,
	// each instance rolls up its subtree load; instances at zero copy the
	// switch's zero class, the (few) loaded ones intern. The per-switch
	// class cache stays hot across the inner loop: sparse batches whose
	// loaded instances put a switch in the same state resolve on the
	// cached slot after the first.
	for _, v := range t.PostOrder() {
		capw := capAt(avail, nil, v)
		ecap := bs.ecaps[v]
		kids := t.Children(v)
		zc := bs.zclass[v]
		for b := 0; b < B; b++ {
			sub := int64(loads[b][v])
			for _, ch := range kids {
				sub += bs.sub[b][ch]
			}
			bs.sub[b][v] = sub
			if sub == 0 {
				bs.classOf[b][v] = zc
				continue
			}
			cid := m.internClassFor(v, bs.classOf[b], pd, loads[b][v], true, capw, ecap)
			bs.classOf[b][v] = cid
			e := &m.entries[cid]
			if !e.ok { //soar:coldpath cache miss: compute into fresh immutable storage
				misses++
				if !scratchReady {
					m.ensureScratch(bs.ecaps[t.Root()])
					scratchReady = true
				}
				m.cbuf = m.cbuf[:0]
				for _, ch := range kids {
					m.cbuf = append(m.cbuf, &m.entries[bs.classOf[b][ch]].nt)
				}
				m.computeEntry(e, v, loads[b][v], true, capw, ecap, m.cbuf, m.sc)
			} else {
				hits++
			}
		}
	}
	m.hits.Add(hits)
	m.misses.Add(misses)

	for b := 0; b < B; b++ {
		costs[b] = bs.cs.colorClasses(t, m.entries, bs.classOf[b], bs.sub[b], k, blue[b])
	}
}

// colorClasses is the class-indirect sparse traceback of the batch
// solver: SOAR-Color reading tables through class ids instead of a
// materialized Tables value, skipping zero-load subtrees (provably
// all-red — see colorIntoSparse).
//
//soar:hotpath
func (cs *colorState) colorClasses(t *topology.Tree, entries []memoEntry, classOf []int32, subLoad []int64, k int, blue []bool) float64 {
	root := t.Root()
	opt := entries[classOf[root]].nt.at(1, k)
	for i := range blue {
		blue[i] = false
	}
	if subLoad[root] == 0 {
		return opt
	}
	cs.stack = append(cs.stack[:0], colorFrame{root, k, 1})
	for len(cs.stack) > 0 {
		f := cs.stack[len(cs.stack)-1]
		cs.stack = cs.stack[:len(cs.stack)-1]
		isBlue, childBudget, childL := decide(t, &entries[classOf[f.v]].nt, f.v, f.i, f.l, cs.budget[:0])
		blue[f.v] = isBlue
		for m, c := range t.Children(f.v) {
			if subLoad[c] > 0 {
				cs.stack = append(cs.stack, colorFrame{c, childBudget[m], childL})
			}
		}
		cs.budget = childBudget[:0]
	}
	return opt
}

// SolveBatch solves every instance of the batch through the solve cache
// and returns one Result per instance; see BatchSolver.Solve for the
// model. Callers with a steady batch stream should hold a BatchSolver
// instead and reuse output buffers.
func SolveBatch(m *Memo, loads [][]int, avail []bool, k int) []Result {
	bs := NewBatchSolver(m)
	n := m.t.N()
	blue := make([][]bool, len(loads))
	costs := make([]float64, len(loads))
	for b := range blue {
		blue[b] = make([]bool, n)
	}
	bs.Solve(loads, avail, k, blue, costs)
	out := make([]Result, len(loads))
	for b := range out {
		out[b] = Result{Blue: blue[b], Cost: costs[b]}
	}
	return out
}
