package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// BenchmarkMerge measures the (min,+) kernel variants in isolation on
// one row merge. w counts the merge candidates per output cell (the
// child cap width is w−1), so w=4 and w=8 exercise the fully unrolled
// chains and w=32 the generic j-outer kernel. hi=128 matches the widest
// running rows of the Fig. 9 grid's k=128 cells. CI's bench-gate tracks
// these cells: a branch reintroduced into the inner loop shows up here
// first, before it is diluted inside a whole gather.
func BenchmarkMerge(b *testing.B) {
	const hi = 128
	rng := rand.New(rand.NewSource(1))
	y := make([]float64, hi+1)
	newY := make([]float64, hi+1)
	sp := make([]int32, hi+1)
	for i := range y {
		y[i] = rng.Float64() * 100
	}
	for _, w := range []int{4, 8, 32} {
		cw := w - 1
		x := make([]float64, cw+1)
		for j := range x {
			x[j] = rng.Float64() * 100
		}
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				mergeMinPlus(newY, sp, y, x, hi, cw)
			}
		})
	}
}
