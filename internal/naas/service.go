// Package naas turns SOAR into the Network-as-a-Service building block
// the paper sketches in its introduction: "cloud providers can offer
// such a service as part of their NaaS offerings, where each client can
// choose its required amount of aggregation switches based on the
// performance it needs."
//
// A Service owns one tree network and its per-switch aggregation
// capacities. Tenants arrive online with a load vector and a requested
// budget k; the service places their aggregation switches with SOAR
// against the residual capacities (exactly the Sec. 5.2 online model),
// leases the switches to the tenant, and — extending the paper's model,
// which has arrivals only — reclaims them when the tenant departs.
//
// The HTTP API (server.go) exposes the service as a JSON control plane;
// Client (client.go) is its Go consumer.
package naas

import (
	"errors"
	"fmt"
	"sync"

	"soar/internal/core"
	"soar/internal/reduce"
	"soar/internal/topology"
)

// ErrNotFound is returned for operations on unknown tenant ids.
var ErrNotFound = errors.New("naas: no such tenant")

// Lease describes one tenant's allocation.
type Lease struct {
	// ID is the service-assigned tenant identifier.
	ID int64
	// Blue lists the switch ids leased to the tenant for aggregation.
	Blue []int
	// K is the budget the tenant requested.
	K int
	// Phi is the utilization cost of the tenant's Reduce under the lease.
	Phi float64
	// AllRed is the tenant's utilization without any aggregation; the
	// ratio Phi/AllRed is the value delivered.
	AllRed float64
	// Load is the tenant's per-switch server counts (kept for audits).
	Load []int
}

// Ratio returns Phi/AllRed, the tenant's normalized utilization
// (1 means the lease bought nothing; lower is better).
func (l *Lease) Ratio() float64 {
	if l.AllRed == 0 {
		return 1
	}
	return l.Phi / l.AllRed
}

// Service is a concurrency-safe allocator over one physical tree.
type Service struct {
	mu       sync.Mutex
	t        *topology.Tree
	capacity []int // residual per switch
	initial  []int
	leases   map[int64]*Lease
	nextID   int64
}

// NewService creates a service over tree t where every switch can serve
// at most capacity tenants simultaneously (capacity ≤ 0 means unlimited).
func NewService(t *topology.Tree, capacity int) *Service {
	s := &Service{
		t:        t,
		capacity: make([]int, t.N()),
		initial:  make([]int, t.N()),
		leases:   make(map[int64]*Lease),
	}
	for v := range s.capacity {
		c := capacity
		if capacity <= 0 {
			c = int(^uint(0) >> 1)
		}
		s.capacity[v] = c
		s.initial[v] = c
	}
	return s
}

// Tree returns the service's network.
func (s *Service) Tree() *topology.Tree { return s.t }

// Place admits one tenant: it runs SOAR restricted to switches with
// residual capacity, charges the chosen switches, and returns the lease.
func (s *Service) Place(load []int, k int) (*Lease, error) {
	if len(load) != s.t.N() {
		return nil, fmt.Errorf("naas: load has %d entries for %d switches", len(load), s.t.N())
	}
	for v, l := range load {
		if l < 0 {
			return nil, fmt.Errorf("naas: negative load %d at switch %v", l, v)
		}
	}
	if k < 0 {
		return nil, fmt.Errorf("naas: negative budget %d", k)
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	avail := make([]bool, s.t.N())
	for v, c := range s.capacity {
		avail[v] = c > 0
	}
	res := core.Solve(s.t, load, avail, k)
	lease := &Lease{
		ID:     s.nextID,
		K:      k,
		Phi:    res.Cost,
		AllRed: reduce.Utilization(s.t, load, make([]bool, s.t.N())),
		Load:   append([]int(nil), load...),
	}
	s.nextID++
	for v, b := range res.Blue {
		if b {
			s.capacity[v]--
			lease.Blue = append(lease.Blue, v)
		}
	}
	s.leases[lease.ID] = lease
	return lease, nil
}

// Release ends a tenant's lease and reclaims its switches — the
// departure half of the arrival/departure lifecycle (the paper's online
// model covers arrivals only; see DESIGN.md).
func (s *Service) Release(id int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	lease, ok := s.leases[id]
	if !ok {
		return ErrNotFound
	}
	for _, v := range lease.Blue {
		s.capacity[v]++
	}
	delete(s.leases, id)
	return nil
}

// Lookup returns a copy of a lease.
func (s *Service) Lookup(id int64) (*Lease, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lease, ok := s.leases[id]
	if !ok {
		return nil, ErrNotFound
	}
	cp := *lease
	cp.Blue = append([]int(nil), lease.Blue...)
	cp.Load = append([]int(nil), lease.Load...)
	return &cp, nil
}

// Stats summarizes the service's state.
type Stats struct {
	// Switches is the network size.
	Switches int
	// Tenants is the number of active leases.
	Tenants int
	// SwitchesInUse counts switches with at least one lease.
	SwitchesInUse int
	// CapacityUsed and CapacityTotal aggregate lease slots.
	CapacityUsed  int64
	CapacityTotal int64
	// MeanRatio is the mean normalized utilization across active leases
	// (1 if there are none).
	MeanRatio float64
}

// Snapshot returns current service statistics.
func (s *Service) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Switches: s.t.N(), Tenants: len(s.leases)}
	for v := range s.capacity {
		used := s.initial[v] - s.capacity[v]
		if used > 0 {
			st.SwitchesInUse++
		}
		st.CapacityUsed += int64(used)
		st.CapacityTotal += int64(s.initial[v])
	}
	if len(s.leases) == 0 {
		st.MeanRatio = 1
		return st
	}
	sum := 0.0
	for _, l := range s.leases {
		sum += l.Ratio()
	}
	st.MeanRatio = sum / float64(len(s.leases))
	return st
}

// Residual returns a copy of the per-switch residual capacities.
func (s *Service) Residual() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.capacity...)
}
