package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"soar/internal/core"
	"soar/internal/load"
	"soar/internal/reduce"
	"soar/internal/stats"
	"soar/internal/topology"
)

// Fig10Config parameterizes the paper's Appendix A scaling study on
// binary trees with power-law loads.
type Fig10Config struct {
	// Sizes are BT network sizes (paper: 2^8 .. 2^12).
	Sizes []int
	// Reps averages over workloads (paper: 10).
	Reps int
	// Targets are the cost-reduction levels of Fig. 10b (paper: 30, 50,
	// 70 percent).
	Targets []float64
	// MaxBlueFrac caps the budget fraction explored when searching for a
	// target reduction (the paper's answers stay below 5%).
	MaxBlueFrac float64
	Seed        int64
}

// DefaultFig10 reproduces the paper's setup.
func DefaultFig10() Fig10Config {
	return Fig10Config{
		Sizes:       []int{256, 512, 1024, 2048, 4096},
		Reps:        5,
		Targets:     []float64{0.30, 0.50, 0.70},
		MaxBlueFrac: 0.10,
		Seed:        5,
	}
}

// QuickFig10 is a reduced instance for tests.
func QuickFig10() Fig10Config {
	return Fig10Config{
		Sizes:       []int{64, 128},
		Reps:        2,
		Targets:     []float64{0.30, 0.50},
		MaxBlueFrac: 0.25,
		Seed:        5,
	}
}

// budgetRules returns the paper's three k(n) scaling laws.
func budgetRules() []struct {
	Name string
	K    func(n int) int
} {
	return []struct {
		Name string
		K    func(n int) int
	}{
		{"1% of n", func(n int) int { return maxInt(1, n/100) }},
		{"log2(n)", func(n int) int { return maxInt(1, int(math.Log2(float64(n)))) }},
		{"sqrt(n)", func(n int) int { return maxInt(1, int(math.Sqrt(float64(n)))) }},
	}
}

// Fig10 regenerates the paper's Fig. 10: (a) normalized utilization when
// k scales as 1%·n, log n and √n; (b) the fraction of blue switches
// needed to reach each target cost reduction. A single SOAR-Gather at
// the largest budget yields φ*(i) for every i ≤ k at once (X_r(1, i)),
// which both subplots read off directly.
func Fig10(cfg Fig10Config) (*Figure, error) {
	rules := budgetRules()
	spA := Subplot{Name: "utilization for scaled budgets", XLabel: "network size", YLabel: "normalized utilization"}
	spB := Subplot{Name: "% blue switches for target savings", XLabel: "network size", YLabel: "% blue switches"}

	sizeX := make([]float64, len(cfg.Sizes))
	for i, n := range cfg.Sizes {
		sizeX[i] = float64(n)
	}
	ruleAcc := make([]*stats.Accumulator, len(rules))
	for i := range ruleAcc {
		ruleAcc[i] = stats.NewAccumulator(len(cfg.Sizes))
	}
	targetAcc := make([]*stats.Accumulator, len(cfg.Targets))
	for i := range targetAcc {
		targetAcc[i] = stats.NewAccumulator(len(cfg.Sizes))
	}
	allBlueAcc := stats.NewAccumulator(len(cfg.Sizes))

	ruleRows := make([][]float64, len(rules))
	for i := range ruleRows {
		ruleRows[i] = make([]float64, len(cfg.Sizes))
	}
	targetRows := make([][]float64, len(cfg.Targets))
	for i := range targetRows {
		targetRows[i] = make([]float64, len(cfg.Sizes))
	}
	allBlueRow := make([]float64, len(cfg.Sizes))

	for rep := 0; rep < cfg.Reps; rep++ {
		for si, n := range cfg.Sizes {
			tr, err := topology.BT(n)
			if err != nil {
				return nil, err
			}
			rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*104729 + int64(n)))
			loads := load.Generate(tr, load.PaperPowerLaw(), load.LeavesOnly, rng)
			allRed := reduce.Utilization(tr, loads, make([]bool, tr.N()))

			maxK := 0
			for _, r := range rules {
				if k := r.K(n); k > maxK {
					maxK = k
				}
			}
			if frac := int(cfg.MaxBlueFrac * float64(n)); frac > maxK {
				maxK = frac
			}
			tb := core.Gather(tr, loads, nil, maxK)
			costAt := func(k int) float64 {
				if k > maxK {
					k = maxK
				}
				return tb.X(tr.Root(), 1, k)
			}

			for ri, r := range rules {
				ruleRows[ri][si] = costAt(r.K(n)) / allRed
			}
			allBlue := make([]bool, tr.N())
			for i := range allBlue {
				allBlue[i] = true
			}
			allBlueRow[si] = reduce.Utilization(tr, loads, allBlue) / allRed

			// Fig. 10b: φ*(k) is non-increasing in k, so the minimal k
			// reaching each target is a scan over the table row.
			for ti, target := range cfg.Targets {
				want := (1 - target) * allRed
				found := -1
				for k := 0; k <= maxK; k++ {
					if costAt(k) <= want+1e-9 {
						found = k
						break
					}
				}
				if found < 0 {
					targetRows[ti][si] = math.NaN() // unreachable within cap
				} else {
					targetRows[ti][si] = 100 * float64(found) / float64(n)
				}
			}
		}
		for ri := range rules {
			ruleAcc[ri].Add(ruleRows[ri])
		}
		for ti := range cfg.Targets {
			targetAcc[ti].Add(targetRows[ti])
		}
		allBlueAcc.Add(allBlueRow)
	}

	for ri, r := range rules {
		spA.Series = append(spA.Series, Series{Label: r.Name, X: sizeX, Y: ruleAcc[ri].Mean(), Err: ruleAcc[ri].StdErr()})
	}
	spA.Series = append(spA.Series, Series{Label: "all-blue", X: sizeX, Y: allBlueAcc.Mean(), Err: allBlueAcc.StdErr()})
	for ti, target := range cfg.Targets {
		spB.Series = append(spB.Series, Series{
			Label: fmt.Sprintf("%.0f%% saving", target*100),
			X:     sizeX, Y: targetAcc[ti].Mean(), Err: targetAcc[ti].StdErr(),
		})
	}
	return &Figure{
		ID:       "fig10",
		Title:    "Scaling of SOAR on binary trees (power-law loads)",
		Subplots: []Subplot{spA, spB},
	}, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
