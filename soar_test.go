package soar

import (
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	// The doc-comment quickstart, verified end to end.
	tr := CompleteBinaryTree(3)
	loads := []int{0, 0, 0, 2, 6, 5, 4}
	res := Solve(tr, loads, 2)
	if res.Cost != 20 {
		t.Fatalf("Solve φ=%v, want 20", res.Cost)
	}
	if got := Utilization(tr, loads, res.Blue); got != 20 {
		t.Fatalf("Utilization=%v, want 20", got)
	}
}

func TestFacadeIncremental(t *testing.T) {
	// The README's online snippet: patch the engine, re-solve, and agree
	// with a from-scratch solve on the updated instance.
	tr := CompleteBinaryTree(3)
	loads := []int{0, 0, 0, 2, 6, 5, 4}
	eng := NewIncremental(tr, loads, nil, 2)
	if res := eng.Solve(); res.Cost != 20 {
		t.Fatalf("incremental φ=%v, want 20", res.Cost)
	}
	eng.UpdateLoad(4, -3)
	eng.SetAvail(2, false)
	got := eng.Solve()
	want := SolveRestricted(tr, []int{0, 0, 0, 2, 3, 5, 4},
		[]bool{true, true, false, true, true, true, true}, 2)
	if got.Cost != want.Cost {
		t.Fatalf("patched incremental φ=%v, from-scratch φ=%v", got.Cost, want.Cost)
	}
}

func TestFacadeBT(t *testing.T) {
	tr, err := BT(64)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 63 {
		t.Fatalf("BT(64) has %d switches", tr.N())
	}
	if _, err := BT(63); err == nil {
		t.Fatal("BT(63) should fail")
	}
}

func TestFacadeNewTree(t *testing.T) {
	tr, err := NewTree([]int{NoParent, 0, 0}, []float64{1, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root() != 0 || tr.N() != 3 {
		t.Fatalf("root=%d n=%d", tr.Root(), tr.N())
	}
	if _, err := NewTree([]int{0}, []float64{1}); err == nil {
		t.Fatal("self-rooted tree should fail")
	}
}

func TestFacadeLoadsDeterministic(t *testing.T) {
	tr := CompleteBinaryTree(5)
	a := PowerLawLoads(tr, 9)
	b := PowerLawLoads(tr, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("PowerLawLoads not deterministic by seed")
		}
	}
	u := UniformLoads(tr, 9)
	for v := 0; v < tr.N(); v++ {
		if tr.IsLeaf(v) && (u[v] < 4 || u[v] > 6) {
			t.Fatalf("uniform load %d outside {4,5,6}", u[v])
		}
		if !tr.IsLeaf(v) && u[v] != 0 {
			t.Fatalf("internal switch %d has load %d", v, u[v])
		}
	}
}

func TestFacadeStrategies(t *testing.T) {
	tr := CompleteBinaryTree(4)
	loads := PowerLawLoads(tr, 3)
	opt := Solve(tr, loads, 4).Cost
	if s := SOAR(); s.Name() != "soar" {
		t.Fatalf("SOAR().Name() = %q", s.Name())
	}
	for _, s := range Baselines() {
		blue := s.Place(tr, loads, nil, 4)
		if phi := Utilization(tr, loads, blue); phi < opt-1e-9 {
			t.Fatalf("%s beat the optimum: %v < %v", s.Name(), phi, opt)
		}
	}
}

func TestFacadeRestrictedAndDistributed(t *testing.T) {
	tr := CompleteBinaryTree(4)
	loads := UniformLoads(tr, 5)
	avail := make([]bool, tr.N())
	for v := range avail {
		avail[v] = v%2 == 0
	}
	res := SolveRestricted(tr, loads, avail, 3)
	for v, b := range res.Blue {
		if b && !avail[v] {
			t.Fatalf("unavailable switch %d selected", v)
		}
	}
	dist := SolveDistributed(tr, loads, 3)
	serial := Solve(tr, loads, 3)
	if dist.Cost != serial.Cost {
		t.Fatalf("distributed %v != serial %v", dist.Cost, serial.Cost)
	}
	if par := SolveParallel(tr, loads, 3, 4); par.Cost != serial.Cost {
		t.Fatalf("parallel %v != serial %v", par.Cost, serial.Cost)
	}
	if compact := SolveCompact(tr, loads, 3); compact.Cost != serial.Cost {
		t.Fatalf("compact %v != serial %v", compact.Cost, serial.Cost)
	}
}

func TestFacadeScaleFree(t *testing.T) {
	tr := ScaleFreeTree(100, 1)
	if tr.N() != 100 {
		t.Fatalf("N=%d", tr.N())
	}
	again := ScaleFreeTree(100, 1)
	for v := 0; v < tr.N(); v++ {
		if tr.Parent(v) != again.Parent(v) {
			t.Fatal("ScaleFreeTree not deterministic by seed")
		}
	}
}

func TestFacadeMemo(t *testing.T) {
	tr := CompleteBinaryTree(3)
	loads := []int{0, 0, 0, 2, 6, 5, 4}
	want := Solve(tr, loads, 2)
	m := NewMemo(tr)
	for rep := 0; rep < 2; rep++ { // cold, then warm
		got := SolveMemo(m, loads, 2)
		if got.Cost != want.Cost {
			t.Fatalf("memo φ=%v, want %v", got.Cost, want.Cost)
		}
		for v := range want.Blue {
			if got.Blue[v] != want.Blue[v] {
				t.Fatalf("memo placement differs at switch %d", v)
			}
		}
	}
	caps := CapsTiered(tr, 1, 1, 2)
	if got, want := SolveMemoCaps(m, loads, caps, 2), SolveCaps(tr, loads, caps, 2); got.Cost != want.Cost {
		t.Fatalf("memo caps φ=%v, want %v", got.Cost, want.Cost)
	}
	eng := NewIncrementalMemo(m, loads, nil, 2)
	eng.UpdateLoad(4, -3)
	loads2 := append([]int(nil), loads...)
	loads2[4] -= 3
	if got, want := eng.Solve(), Solve(tr, loads2, 2); got.Cost != want.Cost {
		t.Fatalf("incremental memo φ=%v, want %v", got.Cost, want.Cost)
	}
}

func TestFacadeMessageCounts(t *testing.T) {
	tr := CompleteBinaryTree(3)
	loads := []int{0, 0, 0, 2, 6, 5, 4}
	counts := MessageCounts(tr, loads, make([]bool, tr.N()))
	if counts[tr.Root()] != 17 {
		t.Fatalf("root edge carries %d, want 17", counts[tr.Root()])
	}
}
