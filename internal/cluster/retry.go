package cluster

import (
	"context"
	"math/rand"

	"soar/internal/core"
	"soar/internal/reduce"
	"soar/internal/topology"
)

// rngInt63n draws jitter from the shared math/rand source (which is
// safe for concurrent use). n must be > 0.
func rngInt63n(n int64) int64 { return rand.Int63n(n) }

// RunOrFallback is the graceful-degradation entry point: it attempts the
// distributed run up to Retry.Attempts times, backing off exponentially
// with jitter between attempts, and — when every attempt fails on a
// transport fault — falls back to a local core.SolveMemo solve instead
// of returning an error. The fallback result is exact (the local solver
// is the very DP the cluster distributes; every engine is
// equivalence-tested) but carries Degraded = true and the last transport
// error in Cause, because no Reduce traffic actually crossed the
// network: ReduceMessages and ReducePhi are the values the Reduce WOULD
// produce under the computed placement.
//
// Input-validation errors and context cancellation are not degraded
// over: bad problems and dead contexts return an error as usual.
func RunOrFallback(ctx context.Context, t *topology.Tree, load []int, caps []int, k int, opts *Options) (*Result, error) {
	if err := validateInputs(t, load, caps); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	var lastErr error
	attempts := opts.Retry.attempts()
	attempt := 1
	for ; attempt <= attempts; attempt++ {
		if attempt > 1 {
			if err := sleepBackoff(ctx, opts.Retry, attempt-1); err != nil {
				return nil, err // ctx died while backing off
			}
		}
		res, err := RunWithOptions(ctx, t, load, caps, k, opts)
		if err == nil {
			res.Attempts = attempt
			opts.Metrics.noteAttempts(attempt)
			return res, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, lastErr
		}
	}
	res := solveLocal(t, load, caps, k)
	res.Attempts = attempts
	res.Cause = lastErr
	opts.Metrics.noteAttempts(attempts)
	opts.Metrics.noteDegraded()
	return res, nil
}

// solveLocal computes the placement and its Reduce costs without any
// network: the degraded path of RunOrFallback.
func solveLocal(t *topology.Tree, load []int, caps []int, k int) *Result {
	m := core.NewMemo(t)
	r := core.SolveMemoCaps(m, load, caps, k)
	counts := reduce.MessageCounts(t, load, r.Blue)
	var phi float64
	for v, c := range counts {
		phi += float64(c) * t.Rho(v)
	}
	return &Result{
		Blue:           r.Blue,
		Cost:           r.Cost,
		ReduceMessages: counts[t.Root()],
		ReducePhi:      phi,
		Degraded:       true,
	}
}
