package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"soar/internal/chaos"
	"soar/internal/core"
	"soar/internal/topology"
	"soar/internal/wire"
)

// chaosLoads builds the standard leaf-loaded instance used across these
// tests.
func chaosLoads(tr *topology.Tree) []int {
	loads := make([]int, tr.N())
	for _, v := range tr.Leaves() {
		loads[v] = 2
	}
	return loads
}

// fastRetry keeps fault-heavy tests quick.
var fastRetry = RetryPolicy{Attempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}

func TestRunWithDelaysStaysExact(t *testing.T) {
	// Pure delays: the run must still complete and agree with the serial
	// solver bit for bit — slowness is not an error.
	tr := topology.MustBT(16)
	loads := chaosLoads(tr)
	in := chaos.New(chaos.Config{Seed: 1, Delay: 0.3, MaxDelay: time.Millisecond})
	opts := &Options{Dial: in.Dial, WrapListener: in.WrapListener, Retry: fastRetry}
	res, err := RunWithOptions(failureCtx(t), tr, loads, nil, 2, opts)
	if err != nil {
		t.Fatalf("run under delays: %v", err)
	}
	want := core.Solve(tr, loads, nil, 2)
	if res.Cost != want.Cost {
		t.Fatalf("cost %v under delays, serial %v", res.Cost, want.Cost)
	}
	if res.ReducePhi != res.Cost {
		t.Fatalf("measured φ %v != cost %v", res.ReducePhi, res.Cost)
	}
}

func TestDialRetryRecoversFromTransientFailures(t *testing.T) {
	// Every node's first two dial attempts fail; bounded retry must
	// absorb that without the run ever noticing.
	tr := topology.MustBT(16)
	loads := chaosLoads(tr)
	failures := make([]int, tr.N())
	opts := &Options{
		Retry: RetryPolicy{Attempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		Dial: func(ctx context.Context, node int, addr string) (net.Conn, error) {
			// Nodes dial sequentially within themselves, so this count
			// is only ever touched by node's own goroutine.
			if failures[node] < 2 {
				failures[node]++
				return nil, fmt.Errorf("transient dial failure %d: %w", failures[node], chaos.ErrInjected)
			}
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		},
	}
	res, err := RunWithOptions(failureCtx(t), tr, loads, nil, 2, opts)
	if err != nil {
		t.Fatalf("run with transient dial failures: %v", err)
	}
	want := core.Solve(tr, loads, nil, 2)
	if res.Cost != want.Cost {
		t.Fatalf("cost %v, serial %v", res.Cost, want.Cost)
	}
	for v, f := range failures {
		if f != 2 {
			t.Fatalf("node %d saw %d injected failures, want 2", v, f)
		}
	}
}

func TestDialRetryExhaustionFailsRun(t *testing.T) {
	tr := topology.MustBT(8)
	loads := chaosLoads(tr)
	in := chaos.New(chaos.Config{Seed: 5, DialFail: 1})
	opts := &Options{Dial: in.Dial, Retry: fastRetry, FrameTimeout: 2 * time.Second}
	_, err := RunWithOptions(failureCtx(t), tr, loads, nil, 2, opts)
	if err == nil {
		t.Fatal("run succeeded with every dial failing")
	}
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("error %v does not unwrap to the injected fault", err)
	}
}

func TestRunOrFallbackDegradesToLocalSolve(t *testing.T) {
	// Total transport failure: RunOrFallback must answer anyway, exactly,
	// with the degraded flag raised and the cause preserved.
	tr := topology.MustBT(32)
	loads := chaosLoads(tr)
	in := chaos.New(chaos.Config{Seed: 11, DialFail: 1})
	opts := &Options{Dial: in.Dial, Retry: fastRetry, FrameTimeout: 2 * time.Second}
	res, err := RunOrFallback(failureCtx(t), tr, loads, nil, 4, opts)
	if err != nil {
		t.Fatalf("RunOrFallback errored instead of degrading: %v", err)
	}
	if !res.Degraded {
		t.Fatal("run through a fully dead transport was not flagged degraded")
	}
	if res.Cause == nil || !errors.Is(res.Cause, chaos.ErrInjected) {
		t.Fatalf("degraded cause %v, want the injected fault", res.Cause)
	}
	if res.Attempts != fastRetry.Attempts {
		t.Fatalf("made %d attempts, want %d", res.Attempts, fastRetry.Attempts)
	}
	want := core.Solve(tr, loads, nil, 4)
	if res.Cost != want.Cost {
		t.Fatalf("degraded cost %v, serial %v", res.Cost, want.Cost)
	}
	if res.ReducePhi != want.Cost {
		t.Fatalf("degraded φ %v, want %v", res.ReducePhi, want.Cost)
	}
	for v := range res.Blue {
		if res.Blue[v] != want.Blue[v] {
			t.Fatalf("degraded placement differs at switch %d", v)
		}
	}
}

func TestRunOrFallbackAlwaysAnswersUnderChaos(t *testing.T) {
	// The headline robustness property: under any mix of dial failures,
	// cuts, resets and delays, RunOrFallback returns the exact optimum —
	// distributed when the network lets it, degraded-local when not.
	tr := topology.MustBT(16)
	loads := chaosLoads(tr)
	want := core.Solve(tr, loads, nil, 2)
	degraded := 0
	seeds := 8
	if testing.Short() {
		seeds = 3
	}
	for seed := 0; seed < seeds; seed++ {
		in := chaos.New(chaos.Config{
			Seed:     int64(seed),
			DialFail: 0.1,
			Cut:      0.1,
			Reset:    0.05,
			CutBytes: 128,
			Delay:    0.05,
			MaxDelay: time.Millisecond,
		})
		opts := &Options{Dial: in.Dial, WrapListener: in.WrapListener, Retry: fastRetry, FrameTimeout: 2 * time.Second}
		res, err := RunOrFallback(failureCtx(t), tr, loads, nil, 2, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Cost != want.Cost {
			t.Fatalf("seed %d: cost %v (degraded=%v), serial %v", seed, res.Cost, res.Degraded, want.Cost)
		}
		if res.Degraded {
			degraded++
		}
	}
	t.Logf("chaos sweep: %d/%d runs degraded to the local solver", degraded, seeds)
}

func TestRunOrFallbackCrashSchedule(t *testing.T) {
	// A scheduled node crash (the root dies almost immediately) must
	// never produce a wrong answer: either the retry wins a clean run on
	// a later attempt or the result degrades to the local solve.
	tr := topology.MustBT(16)
	loads := chaosLoads(tr)
	want := core.Solve(tr, loads, nil, 2)
	in := chaos.New(chaos.Config{Seed: 2, Crash: map[int]int64{tr.Root(): 4}})
	opts := &Options{Dial: in.Dial, WrapListener: in.WrapListener, Retry: fastRetry, FrameTimeout: 2 * time.Second}
	res, err := RunOrFallback(failureCtx(t), tr, loads, nil, 2, opts)
	if err != nil {
		t.Fatalf("RunOrFallback: %v", err)
	}
	if !res.Degraded {
		t.Fatal("root crashes on every attempt, result must be degraded")
	}
	if res.Cost != want.Cost {
		t.Fatalf("cost %v, serial %v", res.Cost, want.Cost)
	}
	if st := in.Stats(); st.Crashes == 0 {
		t.Fatalf("injector stats %+v recorded no crashes", st)
	}
}

func TestFrameTimeoutUnblocksSilentPeer(t *testing.T) {
	// Satellite regression: with a context that has NO deadline, a peer
	// that connects and then goes silent used to block a frame read
	// forever. The per-frame timeout must fail the run instead.
	tr := topology.MustBT(4)
	loads := chaosLoads(tr)
	withListenerHook(t, func(ls []net.Listener) {
		// The rogue dials the destination first and sends a valid Hello,
		// then goes silent: the destination blocks reading the Gather
		// frame, bounded only by the per-frame timeout.
		addr := ls[len(ls)-1].Addr().String()
		go func() {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return
			}
			defer conn.Close()
			wire.Write(conn, &wire.Hello{Child: uint32(tr.Root())})
			time.Sleep(20 * time.Second)
		}()
	})
	opts := &Options{FrameTimeout: 300 * time.Millisecond, Retry: RetryPolicy{Attempts: 1}}
	done := make(chan error, 1)
	go func() {
		// Deliberately no deadline on the context.
		_, err := RunWithOptions(context.Background(), tr, loads, nil, 2, opts)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("run with a silent peer succeeded, want timeout error")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run blocked on a silent peer despite the per-frame timeout")
	}
}

func TestRunOrFallbackRejectsBadInput(t *testing.T) {
	// Validation errors are permanent: no retry, no degraded answer.
	tr := topology.MustBT(8)
	if _, err := RunOrFallback(failureCtx(t), tr, []int{1, 2}, nil, 2, nil); err == nil {
		t.Fatal("short load vector was degraded over instead of rejected")
	}
	bad := make([]int, tr.N())
	caps := make([]int, tr.N())
	caps[0] = -1
	if _, err := RunOrFallback(failureCtx(t), tr, bad, caps, 2, nil); err == nil {
		t.Fatal("negative capacity was degraded over instead of rejected")
	}
}
