package core
