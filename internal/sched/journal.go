package sched

import "fmt"

// The commit journal: the replication feed of internal/ha. When
// Config.Journal is set, the dispatcher emits one JournalEvent per
// committed control-plane mutation — admission, release, re-packer
// migration — in commit order, each carrying a sequence number assigned
// under the commit lock. A standby that folds the events of a
// checkpoint's sequence interval on top of that checkpoint (ApplyEvent)
// reconstructs the primary's lease table and ledger exactly; Audit then
// proves conservation from first principles before the replica serves.
//
// Events are buffered on the dispatcher and flushed to the hook outside
// the lock, so a slow subscriber delays the dispatcher but never blocks
// concurrent Lookup/Residual readers. The hook runs on the dispatcher
// goroutine: it must hand off quickly (internal/ha fans out to buffered
// per-standby channels and drops laggards rather than stall admission).

// JournalOp is the kind of one committed mutation.
type JournalOp uint8

const (
	// JournalPlace admits a tenant: the event carries the full lease.
	JournalPlace JournalOp = 1 + iota
	// JournalRelease frees a lease; only ID is meaningful.
	JournalRelease
	// JournalMigrate re-places a live lease (the re-packer moved it):
	// ID, Phi and Blue are meaningful, the load does not change.
	JournalMigrate
)

// JournalEvent is one committed control-plane mutation. Slices are
// copies owned by the receiver.
type JournalEvent struct {
	// Seq numbers events densely in commit order, starting one past the
	// scheduler's seed (zero on a fresh scheduler): a receiver observing
	// a gap has lost events and must resynchronize from a checkpoint.
	Seq uint64
	Op  JournalOp
	ID  int64
	K   int
	Phi float64
	// AllRed is carried on place events only.
	AllRed float64
	// Blue lists the leased switches (place and migrate).
	Blue []int
	// Load is the dense per-switch server vector (place only).
	Load []int
}

// journalAppend records one committed mutation. Callers hold mu (the
// dispatcher is the only caller, so jbuf needs no lock of its own); the
// copies make the event self-contained once the tenant record is pooled
// or migrated again. Journaling costs allocations by design (the waived
// statements below); schedulers without a Journal hook stay on the
// 0 allocs/op admission contract.
//
//soar:hotpath
func (s *Scheduler) journalAppend(op JournalOp, id int64, ten *tenant) {
	if s.cfg.Journal == nil {
		return
	}
	s.journalSeq++
	ev := JournalEvent{Seq: s.journalSeq, Op: op, ID: id}
	if ten != nil {
		ev.K = ten.k
		ev.Phi = ten.phi
		ev.AllRed = ten.allRed
		ev.Blue = append([]int(nil), ten.blue...) //soar:coldpath replication journal enabled
		if op == JournalPlace {
			ev.Load = append([]int(nil), ten.load...) //soar:coldpath replication journal enabled
		}
	}
	s.jbuf = append(s.jbuf, ev) //soar:coldpath replication journal enabled
}

// flushJournal hands buffered events to the hook, outside mu and in
// commit order. Dispatcher-only, like the buffer itself.
//
//soar:hotpath
func (s *Scheduler) flushJournal() {
	if s.cfg.Journal == nil || len(s.jbuf) == 0 {
		return
	}
	for i := range s.jbuf {
		s.cfg.Journal(s.jbuf[i]) //soar:coldpath replication journal enabled
		s.jbuf[i] = JournalEvent{}
	}
	s.jbuf = s.jbuf[:0]
}

// JournalSeq returns the sequence number of the last journaled (or
// applied) mutation.
func (s *Scheduler) JournalSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journalSeq
}

// SeedJournal sets the journal sequence a replica continues from: call
// it after Restore with the sequence the checkpoint was offered at,
// then ApplyEvent the journal suffix. Must happen before traffic.
func (s *Scheduler) SeedJournal(seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journalSeq = seq
}

// ApplyEvent replays one journal event into the scheduler, validating
// it the way Restore validates a checkpoint: sequence-dense, ids fresh
// (or live, for release/migrate), switches in range with residual
// capacity. Like Restore it must run before the scheduler serves
// traffic — it is the standby promotion path, not a serving-time API.
// A rejected event leaves the scheduler unchanged.
func (s *Scheduler) ApplyEvent(ev JournalEvent) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ev.Seq != s.journalSeq+1 {
		return fmt.Errorf("sched: apply: event seq %d after %d (journal gap)", ev.Seq, s.journalSeq)
	}
	n := s.t.N()
	switch ev.Op {
	case JournalPlace:
		if _, ok := s.leases[ev.ID]; ok {
			return fmt.Errorf("sched: apply: place of live tenant %d", ev.ID)
		}
		if ev.ID < 0 || ev.K < 0 {
			return fmt.Errorf("sched: apply: tenant %d has budget %d", ev.ID, ev.K)
		}
		if len(ev.Load) != n {
			return fmt.Errorf("sched: apply: tenant %d load has %d entries for %d switches", ev.ID, len(ev.Load), n)
		}
		if err := s.checkBlues(ev.ID, ev.Blue); err != nil {
			return err
		}
		ten := &tenant{
			id:     ev.ID,
			k:      ev.K,
			phi:    ev.Phi,
			allRed: ev.AllRed,
			blue:   append([]int(nil), ev.Blue...),
			load:   append([]int(nil), ev.Load...),
		}
		for _, v := range ten.blue {
			s.ledger.Charge(v)
		}
		s.leases[ev.ID] = ten
		if ev.ID >= s.nextID {
			s.nextID = ev.ID + 1
		}
	case JournalRelease:
		ten, ok := s.leases[ev.ID]
		if !ok {
			return fmt.Errorf("sched: apply: release of unknown tenant %d", ev.ID)
		}
		for _, v := range ten.blue {
			s.ledger.Credit(v)
		}
		delete(s.leases, ev.ID)
	case JournalMigrate:
		ten, ok := s.leases[ev.ID]
		if !ok {
			return fmt.Errorf("sched: apply: migrate of unknown tenant %d", ev.ID)
		}
		for _, v := range ten.blue {
			s.ledger.Credit(v)
		}
		if err := s.checkBlues(ev.ID, ev.Blue); err != nil {
			// Undo the credits so a rejected event leaves state unchanged.
			for _, v := range ten.blue {
				s.ledger.Charge(v)
			}
			return err
		}
		for _, v := range ev.Blue {
			s.ledger.Charge(v)
		}
		ten.blue = append(ten.blue[:0], ev.Blue...)
		ten.phi = ev.Phi
	default:
		return fmt.Errorf("sched: apply: unknown op %d", ev.Op)
	}
	s.journalSeq = ev.Seq
	return nil
}

// LeaseIDs returns the ids of every active lease, unordered. It is a
// control-plane inventory API (drain loops, soarctl), not a hot path.
func (s *Scheduler) LeaseIDs() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]int64, 0, len(s.leases))
	for id := range s.leases {
		ids = append(ids, id)
	}
	return ids
}

// checkBlues validates a blue set against the current ledger: in range,
// no duplicates, residual capacity available. Caller holds mu.
func (s *Scheduler) checkBlues(id int64, blue []int) error {
	n := s.t.N()
	for i, v := range blue {
		if v < 0 || v >= n {
			return fmt.Errorf("sched: apply: tenant %d leases switch %d of %d", id, v, n)
		}
		for _, w := range blue[:i] {
			if w == v {
				return fmt.Errorf("sched: apply: tenant %d leases switch %d twice", id, v)
			}
		}
		if s.ledger.Residual(v) <= 0 {
			return fmt.Errorf("sched: apply: tenant %d needs exhausted switch %d", id, v)
		}
	}
	return nil
}
