package timesim

import (
	"math"
	"math/rand"
	"testing"

	"soar/internal/paper"
	"soar/internal/reduce"
	"soar/internal/topology"
)

func TestTotalBusyEqualsUtilization(t *testing.T) {
	// The timed simulation's summed link busy time must equal the
	// analytic φ for arbitrary instances and colorings.
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(35)
		parent := make([]int, n)
		omega := make([]float64, n)
		parent[0] = topology.NoParent
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
		}
		for v := 0; v < n; v++ {
			omega[v] = []float64{0.5, 1, 2}[rng.Intn(3)]
		}
		tr := topology.MustNew(parent, omega)
		loads := make([]int, n)
		blue := make([]bool, n)
		for v := 0; v < n; v++ {
			loads[v] = rng.Intn(4)
			blue[v] = rng.Intn(3) == 0
		}
		res := Run(tr, loads, blue)
		want := reduce.Utilization(tr, loads, blue)
		if math.Abs(res.TotalBusy-want) > 1e-9 {
			t.Fatalf("trial %d: busy %v != φ %v", trial, res.TotalBusy, want)
		}
		counts := reduce.MessageCounts(tr, loads, blue)
		for v := 0; v < n; v++ {
			if res.Messages[v] != counts[v] {
				t.Fatalf("trial %d: link %d carried %d, want %d", trial, v, res.Messages[v], counts[v])
			}
		}
	}
}

func TestCompletionSingleSwitch(t *testing.T) {
	tr := topology.MustNew([]int{topology.NoParent}, []float64{1})
	// Three messages serialize over the single unit-rate edge.
	res := Run(tr, []int{3}, []bool{false})
	if res.Completion != 3 {
		t.Fatalf("completion %v, want 3", res.Completion)
	}
	// Blue: one aggregate, one unit of time.
	res = Run(tr, []int{3}, []bool{true})
	if res.Completion != 1 {
		t.Fatalf("blue completion %v, want 1", res.Completion)
	}
}

func TestCompletionPathPipeline(t *testing.T) {
	// Path 0←1 with 2 messages at the bottom, all red, rate 1: the edge
	// above 1 finishes at t=2; the root edge pipelines and finishes at 3.
	tr := topology.Path(2)
	res := Run(tr, []int{0, 2}, []bool{false, false})
	if res.Completion != 3 {
		t.Fatalf("completion %v, want 3", res.Completion)
	}
	// Blue at the bottom: aggregate leaves at t=1, root edge done at 2.
	res = Run(tr, []int{0, 2}, []bool{false, true})
	if res.Completion != 2 {
		t.Fatalf("blue completion %v, want 2", res.Completion)
	}
}

func TestBlueWaitsForWholeSubtree(t *testing.T) {
	// Star with a blue root: it cannot emit before its slowest child's
	// last message arrives.
	tr := topology.Star(3) // root 0, children 1, 2 (rate 1)
	res := Run(tr, []int{0, 1, 5}, []bool{true, false, false})
	// Child 2 sends 5 messages over its edge, last arriving at t=5; the
	// root then sends its single aggregate, arriving at 6.
	if res.Completion != 6 {
		t.Fatalf("completion %v, want 6", res.Completion)
	}
	if res.Messages[0] != 1 {
		t.Fatalf("root messages %d, want 1", res.Messages[0])
	}
}

func TestZeroLoadBlueStaysSilent(t *testing.T) {
	tr := topology.Path(3)
	res := Run(tr, []int{0, 0, 0}, []bool{false, true, false})
	if res.Completion != 0 || res.TotalBusy != 0 {
		t.Fatalf("empty reduce: completion %v busy %v", res.Completion, res.TotalBusy)
	}
}

func TestBottleneckIsMaxBusy(t *testing.T) {
	tr, loads := paper.Figure2()
	blue := make([]bool, tr.N())
	res := Run(tr, loads, blue)
	// All-red: the root edge carries all 17 messages at rate 1.
	if res.Bottleneck != 17 {
		t.Fatalf("bottleneck %v, want 17", res.Bottleneck)
	}
	max := 0.0
	for _, b := range res.LinkBusy {
		if b > max {
			max = b
		}
	}
	if res.Bottleneck != max {
		t.Fatalf("bottleneck %v != max busy %v", res.Bottleneck, max)
	}
}

func TestRatesAffectTiming(t *testing.T) {
	// Doubling all rates halves completion time.
	tr, loads := paper.Figure2()
	fast := topology.ApplyRates(tr, topology.RatesConstant(2))
	blue := []bool{false, false, true, false, true, false, false}
	slow := Run(tr, loads, blue)
	quick := Run(fast, loads, blue)
	if math.Abs(quick.Completion*2-slow.Completion) > 1e-9 {
		t.Fatalf("completion %v at rate 2 vs %v at rate 1", quick.Completion, slow.Completion)
	}
}

func TestAggregationReducesCompletion(t *testing.T) {
	// On the paper's example, the SOAR placement should also finish the
	// Reduce sooner than all-red (the paper's Sec. 8 conjecture).
	tr, loads := paper.Figure2()
	allRed := Run(tr, loads, make([]bool, tr.N()))
	soar := Run(tr, loads, []bool{false, false, true, false, true, false, false})
	if soar.Completion >= allRed.Completion {
		t.Fatalf("SOAR completion %v not below all-red %v", soar.Completion, allRed.Completion)
	}
	if soar.Bottleneck >= allRed.Bottleneck {
		t.Fatalf("SOAR bottleneck %v not below all-red %v", soar.Bottleneck, allRed.Bottleneck)
	}
}

func TestMismatchedInputPanics(t *testing.T) {
	tr := topology.Path(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(tr, []int{1}, []bool{false, false, false})
}
