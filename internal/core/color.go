package core

// ColorPhase runs SOAR-Color (paper Alg. 4): it walks the tree top-down
// along the argmin breadcrumbs recorded by Gather and returns the optimal
// blue set together with its cost φ = X_r(1, k).
//
// The destination conceptually sends (k, ℓ=1) to the root; every switch
// then determines its color from its table at its actual (ℓ*, i) and
// forwards to each child the number of blue switches to place in that
// child's subtree, exactly as in the paper. Unlike Gather, this phase
// performs no arithmetic — only table lookups — which is why it is orders
// of magnitude faster (paper Sec. 5.4).
func ColorPhase(tb *Tables) ([]bool, float64) {
	t := tb.t
	blue := make([]bool, t.N())

	type frame struct {
		v, i, l int
	}
	stack := []frame{{t.Root(), tb.k, 1}}
	var budgetBuf []int // reused by decide: the phase performs O(1) allocations
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		isBlue, childBudget, childL := decide(t, &tb.nodes[f.v], f.v, f.i, f.l, budgetBuf[:0])
		blue[f.v] = isBlue
		for m, c := range t.Children(f.v) {
			stack = append(stack, frame{c, childBudget[m], childL})
		}
		budgetBuf = childBudget[:0]
	}
	return blue, tb.Optimum()
}
