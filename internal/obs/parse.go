package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the scrape side of the exposition format: a parser for
// the Prometheus text format that WriteText emits. It exists for two
// consumers — `soarctl top`, which polls a live daemon's /metrics and
// needs the histogram vectors back as numbers, and the round-trip
// tests, which hold the writer to the format by re-parsing everything
// it produces. It parses the subset the writer emits (HELP, TYPE,
// sample lines with optional labels) and tolerates unknown lines the
// way real scrapers do: comments it does not understand are skipped,
// unparseable sample lines are errors.

// TextFamily is one parsed metric family.
type TextFamily struct {
	Name    string
	Help    string
	Type    string // "counter", "gauge", "histogram", or "untyped"
	Samples []Sample
}

// Sample is one parsed sample line. For histograms, Name keeps the
// full sample name (`..._bucket`, `..._sum`, `..._count`) so invariant
// checks can tell the series apart.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// ParseText parses a Prometheus text-format payload into families,
// sorted by name. Samples belong to the family whose name prefixes
// them (exact, or with a _bucket/_sum/_count suffix for histograms).
func ParseText(r io.Reader) ([]TextFamily, error) {
	fams := make(map[string]*TextFamily)
	var order []string
	family := func(name string) *TextFamily {
		if f, ok := fams[name]; ok {
			return f
		}
		f := &TextFamily{Name: name, Type: "untyped"}
		fams[name] = f
		order = append(order, name)
		return f
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 3 && fields[1] == "TYPE" {
				family(fields[2]).Type = strings.TrimSpace(strings.Join(fields[3:], " "))
			}
			if len(fields) >= 4 && fields[1] == "HELP" {
				family(fields[2]).Help = unescapeHelp(fields[3])
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("obs: parse line %d: %w", lineNo, err)
		}
		f := family(baseName(s.Name, fams))
		f.Samples = append(f.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Strings(order)
	out := make([]TextFamily, 0, len(order))
	for _, name := range order {
		out = append(out, *fams[name])
	}
	return out, nil
}

// baseName strips a histogram suffix if (and only if) the stripped
// name names a family the TYPE lines already declared.
func baseName(sample string, fams map[string]*TextFamily) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(sample, suf); ok {
			if f, exists := fams[base]; exists && f.Type == "histogram" {
				return base
			}
		}
	}
	return sample
}

// parseSample parses `name{k="v",...} value` or `name value`.
func parseSample(line string) (Sample, error) {
	s := Sample{}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("no value in %q", line)
	}
	s.Name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = tail
	}
	valStr := strings.TrimSpace(rest)
	// A timestamp may follow the value; the writer never emits one, but
	// tolerate it like a real scraper.
	if j := strings.IndexByte(valStr, ' '); j >= 0 {
		valStr = valStr[:j]
	}
	v, err := parseValue(valStr)
	if err != nil {
		return s, fmt.Errorf("value %q: %w", valStr, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses `{k="v",...}` and returns the remainder of the
// line. Values are unescaped (\\, \", \n).
func parseLabels(s string) (map[string]string, string, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	for {
		for i < len(s) && (s[i] == ',' || s[i] == ' ') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return labels, s[i+1:], nil
		}
		eq := strings.IndexByte(s[i:], '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '=' in %q", s)
		}
		key := s[i : i+eq]
		i += eq + 1
		if i >= len(s) || s[i] != '"' {
			return nil, "", fmt.Errorf("unquoted label value in %q", s)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(s) {
				return nil, "", fmt.Errorf("unterminated label value in %q", s)
			}
			c := s[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' && i+1 < len(s) {
				switch s[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(c)
					b.WriteByte(s[i+1])
				}
				i += 2
				continue
			}
			b.WriteByte(c)
			i++
		}
		labels[key] = b.String()
	}
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func unescapeHelp(s string) string {
	if !strings.Contains(s, `\`) {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// HistogramSeries extracts one histogram's cumulative bucket vector
// from a parsed family: ascending upper bounds (ending at +Inf) and
// the cumulative counts, filtered to samples whose labels include
// match. It returns an error if bucket counts are not monotone, the
// +Inf bucket is missing, or the +Inf bucket disagrees with _count —
// the invariants a correct writer can never violate.
func HistogramSeries(f TextFamily, match map[string]string) (bounds []float64, cum []uint64, sum float64, err error) {
	type bkt struct {
		le float64
		n  uint64
	}
	var bkts []bkt
	var count float64
	haveCount := false
	for _, s := range f.Samples {
		if !labelsMatch(s.Labels, match) {
			continue
		}
		switch {
		case strings.HasSuffix(s.Name, "_bucket"):
			le, perr := parseValue(s.Labels["le"])
			if perr != nil {
				return nil, nil, 0, fmt.Errorf("obs: bucket le %q: %w", s.Labels["le"], perr)
			}
			bkts = append(bkts, bkt{le: le, n: uint64(s.Value)})
		case strings.HasSuffix(s.Name, "_sum"):
			sum = s.Value
		case strings.HasSuffix(s.Name, "_count"):
			count = s.Value
			haveCount = true
		}
	}
	if len(bkts) == 0 {
		return nil, nil, 0, fmt.Errorf("obs: no buckets in family %s", f.Name)
	}
	sort.Slice(bkts, func(i, j int) bool { return bkts[i].le < bkts[j].le })
	for i, b := range bkts {
		if i > 0 && b.n < bkts[i-1].n {
			return nil, nil, 0, fmt.Errorf("obs: %s buckets not monotone: le=%v count %d < le=%v count %d",
				f.Name, b.le, b.n, bkts[i-1].le, bkts[i-1].n)
		}
		bounds = append(bounds, b.le)
		cum = append(cum, b.n)
	}
	last := bkts[len(bkts)-1]
	if !math.IsInf(last.le, 1) {
		return nil, nil, 0, fmt.Errorf("obs: %s has no +Inf bucket", f.Name)
	}
	if !haveCount {
		return nil, nil, 0, fmt.Errorf("obs: %s has no _count sample", f.Name)
	}
	if float64(last.n) != count {
		return nil, nil, 0, fmt.Errorf("obs: %s +Inf bucket %d disagrees with _count %v", f.Name, last.n, count)
	}
	return bounds, cum, sum, nil
}

// labelsMatch reports whether every pair in want appears in got
// (ignoring le, which varies per bucket).
func labelsMatch(got, want map[string]string) bool {
	for k, v := range want {
		if got[k] != v {
			return false
		}
	}
	return true
}

// HistogramQuantile estimates the q-quantile (0 ≤ q ≤ 1) from a
// cumulative bucket vector, linearly interpolating within the owning
// bucket — the same estimate PromQL's histogram_quantile computes. It
// returns NaN for an empty histogram; a quantile landing in the +Inf
// bucket reports the last finite bound (the histogram cannot resolve
// beyond its layout).
func HistogramQuantile(q float64, bounds []float64, cum []uint64) float64 {
	if len(bounds) == 0 || len(bounds) != len(cum) {
		return math.NaN()
	}
	total := cum[len(cum)-1]
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	i := sort.Search(len(cum), func(i int) bool { return float64(cum[i]) >= rank })
	if i == len(cum) {
		i = len(cum) - 1
	}
	if math.IsInf(bounds[i], 1) {
		// Beyond the finite layout: report the last finite bound.
		if len(bounds) >= 2 {
			return bounds[len(bounds)-2]
		}
		return math.NaN()
	}
	lo, cumLo := 0.0, uint64(0)
	if i > 0 {
		lo, cumLo = bounds[i-1], cum[i-1]
	}
	width := float64(cum[i] - cumLo)
	if width == 0 {
		return bounds[i]
	}
	return lo + (bounds[i]-lo)*(rank-float64(cumLo))/width
}
