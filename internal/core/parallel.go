package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"soar/internal/topology"
)

// GatherParallel is the parallel SOAR-Gather the paper leaves as future
// work (Sec. 5.4: "SOAR-Gather can also be implemented in a parallel or
// distributed manner, along a parallel DFS-scan from leaves to the
// root, which would result in a significant speedup"). Nodes become
// ready when all their children are done (dependency counting); a fixed
// worker pool drains the ready set bottom-up. Tables are identical to
// the serial Gather. workers ≤ 0 selects GOMAXPROCS.
//
// All workers write into one shared arena: per-node windows are fixed by
// the prefix-sum offsets computed up front, so no allocation or locking
// happens inside the sweep — each worker only carries its own merge
// scratch.
func GatherParallel(t *topology.Tree, load []int, avail []bool, k, workers int) *Tables {
	validate(t, load, avail)
	return gatherParallel(t, load, avail, nil, k, workers)
}

// GatherParallelCaps is GatherParallel under the heterogeneous capacity
// model (see SolveCaps): a blue at v consumes caps[v] budget units.
func GatherParallelCaps(t *topology.Tree, load []int, caps []int, k, workers int) *Tables {
	validateCaps(t, load, caps)
	return gatherParallel(t, load, nil, caps, k, workers)
}

func gatherParallel(t *topology.Tree, load []int, avail []bool, caps []int, k, workers int) *Tables {
	if k < 0 {
		k = 0
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := t.N()
	ecaps := effectiveCaps(t, avail, caps, k)
	ar := newArena(t, ecaps, true)
	tb := &Tables{
		t:     t,
		load:  load,
		k:     k,
		nodes: make([]nodeTables, n),
	}
	subLoad := t.SubtreeLoads(load)

	pending := make([]int32, n)
	ready := make(chan int, n)
	for v := 0; v < n; v++ {
		pending[v] = int32(t.NumChildren(v))
		if pending[v] == 0 {
			ready <- v
		}
	}
	var processed int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			sc := newScratch(ecaps[t.Root()])
			var cbuf []*nodeTables
			for v := range ready {
				nt := ar.node(t, v)
				cbuf = appendChildTables(cbuf[:0], tb, v)
				computeNode(t, v, load[v], subLoad[v] > 0, capAt(avail, caps, v), &nt, cbuf, sc)
				tb.nodes[v] = nt
				if p := t.Parent(v); p != topology.NoParent {
					if atomic.AddInt32(&pending[p], -1) == 0 {
						ready <- p
					}
				}
				if atomic.AddInt64(&processed, 1) == int64(n) {
					close(ready) // root done; release all workers
				}
			}
		}()
	}
	wg.Wait()
	return tb
}

// SolveParallel runs the parallel Gather followed by the (serial, cheap)
// Color phase. The result is identical to Solve.
func SolveParallel(t *topology.Tree, load []int, avail []bool, k, workers int) Result {
	tb := GatherParallel(t, load, avail, k, workers)
	blue, cost := ColorPhase(tb)
	return Result{Blue: blue, Cost: cost}
}

// SolveParallelCaps runs the parallel Gather under the heterogeneous
// capacity model followed by the Color phase. The result is identical to
// SolveCaps.
func SolveParallelCaps(t *topology.Tree, load []int, caps []int, k, workers int) Result {
	tb := GatherParallelCaps(t, load, caps, k, workers)
	blue, cost := ColorPhase(tb)
	return Result{Blue: blue, Cost: cost}
}
