package main

import (
	"fmt"
	"math/rand"
	"os"

	"soar/internal/core"
	"soar/internal/load"
	"soar/internal/placement"
	"soar/internal/reduce"
	"soar/internal/topology"
)

// engineFunc adapts one of the SOAR engines to placement.Strategy so the
// -engine flag can swap it into the strategy line-up; every engine
// produces the same placements (verified by TestAllEnginesAgree and
// TestIncrementalMatchesFullEngines).
type engineFunc func(t *topology.Tree, loads []int, avail []bool, k int) []bool

func (engineFunc) Name() string { return "soar" }

func (f engineFunc) Place(t *topology.Tree, loads []int, avail []bool, k int) []bool {
	return f(t, loads, avail, k)
}

// soarEngine resolves the -engine flag to a SOAR strategy. A non-nil
// caps vector selects the heterogeneous engines (a blue at v consumes
// caps[v] budget units); the avail argument of the strategy interface is
// then ignored — the zero entries of caps already carry it.
func soarEngine(name string, caps []int) (placement.Strategy, error) {
	switch name {
	case "full":
		if caps == nil {
			return core.Strategy{}, nil
		}
		return engineFunc(func(t *topology.Tree, loads []int, _ []bool, k int) []bool {
			return core.SolveCaps(t, loads, caps, k).Blue
		}), nil
	case "compact":
		return engineFunc(func(t *topology.Tree, loads []int, avail []bool, k int) []bool {
			if caps != nil {
				return core.SolveCompactCaps(t, loads, caps, k).Blue
			}
			return core.SolveCompact(t, loads, avail, k).Blue
		}), nil
	case "parallel":
		return engineFunc(func(t *topology.Tree, loads []int, avail []bool, k int) []bool {
			if caps != nil {
				return core.SolveParallelCaps(t, loads, caps, k, 0).Blue
			}
			return core.SolveParallel(t, loads, avail, k, 0).Blue
		}), nil
	case "distributed":
		return engineFunc(func(t *topology.Tree, loads []int, avail []bool, k int) []bool {
			if caps != nil {
				return core.SolveDistributedCaps(t, loads, caps, k).Blue
			}
			return core.SolveDistributed(t, loads, avail, k).Blue
		}), nil
	case "incremental":
		return engineFunc(func(t *topology.Tree, loads []int, avail []bool, k int) []bool {
			if caps != nil {
				return core.NewIncrementalCaps(t, loads, caps, k).Solve().Blue
			}
			return core.NewIncremental(t, loads, avail, k).Solve().Blue
		}), nil
	case "memo":
		return engineFunc(func(t *topology.Tree, loads []int, avail []bool, k int) []bool {
			m := core.NewMemo(t)
			if caps != nil {
				return core.SolveMemoCaps(m, loads, caps, k).Blue
			}
			return core.SolveMemo(m, loads, avail, k).Blue
		}), nil
	default:
		return nil, fmt.Errorf("unknown -engine %q", name)
	}
}

// budgetedStrategy makes a weight-oblivious baseline honor the weighted
// budget of the capacity model, so the place table compares feasible
// solutions of the same problem: it re-runs the baseline with shrinking
// switch counts until the picked set's capacity sum fits the budget
// (the baselines pick prefixes of a preference order, so shrinking the
// count shrinks the set).
type budgetedStrategy struct {
	placement.Strategy
	caps []int
}

func (b budgetedStrategy) Place(t *topology.Tree, loads []int, avail []bool, k int) []bool {
	for j := k; j > 0; j-- {
		blue := b.Strategy.Place(t, loads, avail, j)
		spent := 0
		for v, on := range blue {
			if on {
				spent += b.caps[v]
			}
		}
		if spent <= k {
			return blue
		}
	}
	return make([]bool, t.N())
}

// runPlace builds one instance and prints every strategy's placement and
// normalized utilization.
func runPlace(args []string) error {
	fs := newFlagSet("place")
	topo := fs.String("topo", "bt", "topology: bt (complete binary) or sf (scale-free)")
	n := fs.Int("n", 256, "network size (bt: including destination, power of two; sf: switches)")
	k := fs.Int("k", 16, "aggregation switch budget")
	dist := fs.String("dist", "powerlaw", "load distribution: uniform, powerlaw or one (unit)")
	rates := fs.String("rates", "constant", "link rates: constant, linear or exp")
	engine := fs.String("engine", "full", "SOAR engine: full, compact, parallel, distributed, incremental or memo")
	capsSpec := fs.String("caps", "", capsProfileHelp)
	seed := fs.Int64("seed", 1, "random seed")
	dot := fs.String("dot", "", "write the SOAR placement as Graphviz DOT to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	var tr *topology.Tree
	var where load.Placement
	switch *topo {
	case "bt":
		t, err := topology.BT(*n)
		if err != nil {
			return err
		}
		tr, where = t, load.LeavesOnly
	case "sf":
		tr, where = topology.ScaleFree(*n, rng), load.AllNodes
	default:
		return fmt.Errorf("unknown -topo %q", *topo)
	}
	switch *rates {
	case "constant":
	case "linear":
		tr = topology.ApplyRates(tr, topology.RatesLinear())
	case "exp":
		tr = topology.ApplyRates(tr, topology.RatesExponential())
	default:
		return fmt.Errorf("unknown -rates %q", *rates)
	}
	var d load.Distribution
	switch *dist {
	case "uniform":
		d = load.PaperUniform()
	case "powerlaw":
		d = load.PaperPowerLaw()
	case "one":
		d = load.Constant{V: 1}
	default:
		return fmt.Errorf("unknown -dist %q", *dist)
	}
	// The profile draws from its own seeded stream so that adding -caps
	// never shifts the instance: loads (and an sf tree) generated from
	// rng are identical with and without a profile at the same -seed.
	caps, err := parseCapsProfile(*capsSpec, tr, rand.New(rand.NewSource(*seed+1)))
	if err != nil {
		return err
	}
	soar, err := soarEngine(*engine, caps)
	if err != nil {
		return err
	}
	loads := load.Generate(tr, d, where, rng)

	// Under a capacity profile the baselines pick only from {caps > 0}
	// and are wrapped to spend the same weighted budget SOAR does
	// (all-blue stays unbounded: it is the no-budget lower bound).
	var avail []bool
	budgeted := func(s placement.Strategy) placement.Strategy { return s }
	if caps != nil {
		avail = make([]bool, tr.N())
		for v, c := range caps {
			avail[v] = c > 0
		}
		budgeted = func(s placement.Strategy) placement.Strategy {
			return budgetedStrategy{Strategy: s, caps: caps}
		}
	}

	allRed := reduce.Utilization(tr, loads, make([]bool, tr.N()))
	fmt.Printf("instance: %s n=%d switches=%d height=%d totalLoad=%d rates=%s dist=%s k=%d engine=%s\n",
		*topo, *n, tr.N(), tr.Height(), load.Total(loads), *rates, *dist, *k, *engine)
	if caps != nil {
		fmt.Printf("capacity profile: %s (%s)\n", *capsSpec, capsSummary(caps))
	}
	fmt.Printf("%-12s %12s %12s  %s\n", "strategy", "phi", "vs all-red", "")
	strategies := []placement.Strategy{
		placement.AllRed{}, budgeted(placement.Top{}), budgeted(placement.Max{}),
		budgeted(placement.MaxDegree{}), budgeted(placement.Level{}),
		budgeted(placement.Greedy{}), soar, placement.AllBlue{},
	}
	var soarBlue []bool
	for _, s := range strategies {
		blue := s.Place(tr, loads, avail, *k)
		phi := reduce.Utilization(tr, loads, blue)
		fmt.Printf("%-12s %12.2f %12.4f\n", s.Name(), phi, phi/allRed)
		if s.Name() == "soar" {
			soarBlue = blue
		}
	}
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tr.WriteDOT(f, loads, soarBlue); err != nil {
			return err
		}
		fmt.Printf("wrote SOAR placement to %s\n", *dot)
	}
	return nil
}
