// Package ha is the replicated, sharded control plane: it splits a
// fabric into per-pod subtrees, runs one primary scheduler plus warm
// standbys per shard, streams checkpoints and per-commit lease deltas
// to the standbys over internal/wire framing, and promotes the
// freshest standby — fenced by epochs — when the primary goes silent.
//
// The sharding is exact, not approximate. Each shard schedules over the
// pod tree topology.PodTree extracts: the pod subtree plus the spine
// chain of ancestors up to the global root, with every per-edge rate
// preserved. Spine switches are shared infrastructure — no shard may
// lease them — so their capacity is pinned to zero in every shard's
// ledger, and under that profile the shard-local solve of a
// pod-confined load is bitwise identical to the global solve with the
// same availability mask (TestPartitionMatchesGlobal proves it). Loads
// that span pods are rejected at the router: SOAR tenants are
// rack-local in the paper's deployments, and a cross-pod tenant would
// need the cross-shard coordination this design deliberately avoids.
package ha

import (
	"errors"
	"fmt"

	"soar/internal/topology"
)

// ErrCrossShard is returned by routing for loads that span pods or
// place servers on spine switches.
var ErrCrossShard = errors.New("ha: load spans shards")

// ShardSpec is one shard of a partitioning: a pod and its local tree.
type ShardSpec struct {
	// Index is the shard number, dense from 0.
	Index int
	// Pod is the shard's view of the fabric (see topology.Pod).
	Pod *topology.Pod
}

// Partitioning is a fabric split into pods at one level.
type Partitioning struct {
	// Tree is the global fabric.
	Tree *topology.Tree
	// Level is the depth the pod roots live at (root = level 0).
	Level int
	// Shards lists the pods, in the global BFS order of their roots.
	Shards []ShardSpec

	// podOf maps each global switch to its shard index, or -1 for the
	// spine switches above the pod roots.
	podOf []int
}

// Partition splits t into one shard per switch at the given level
// (root = level 0, so level 1 of a k-ary fabric yields k shards).
// Every switch strictly below the cut belongs to exactly one pod;
// switches at or above it form the shared spine. A leaf at or above
// the cut would be unroutable, so such trees are rejected.
func Partition(t *topology.Tree, level int) (*Partitioning, error) {
	if level < 0 {
		return nil, fmt.Errorf("ha: partition level %d < 0", level)
	}
	roots := t.NodesAtLevel(level)
	if len(roots) == 0 {
		return nil, fmt.Errorf("ha: no switches at level %d", level)
	}
	p := &Partitioning{Tree: t, Level: level, podOf: make([]int, t.N())}
	for i := range p.podOf {
		p.podOf[i] = -1
	}
	for _, r := range roots {
		pod, err := t.PodTree(r)
		if err != nil {
			return nil, err
		}
		idx := len(p.Shards)
		p.Shards = append(p.Shards, ShardSpec{Index: idx, Pod: pod})
		for _, gv := range pod.Global[pod.Spine:] {
			p.podOf[gv] = idx
		}
	}
	// Spine switches (podOf -1) must all be internal: a leaf above the
	// cut could never be placed on.
	for v, shard := range p.podOf {
		if shard == -1 && t.IsLeaf(v) {
			return nil, fmt.Errorf("ha: leaf switch %d sits at or above partition level %d", v, level)
		}
	}
	return p, nil
}

// ShardOf resolves the shard a global dense load vector belongs to:
// every switch with load must fall inside one pod. Spine load or load
// spanning pods returns ErrCrossShard; an all-zero load returns an
// error too (there is nothing to route on).
func (p *Partitioning) ShardOf(load []int) (int, error) {
	if len(load) != p.Tree.N() {
		return 0, fmt.Errorf("ha: load has %d entries for %d switches", len(load), p.Tree.N())
	}
	shard := -1
	for v, n := range load {
		if n <= 0 {
			continue
		}
		s := p.podOf[v]
		if s == -1 {
			return 0, fmt.Errorf("ha: switch %d is spine: %w", v, ErrCrossShard)
		}
		if shard == -1 {
			shard = s
		} else if shard != s {
			return 0, fmt.Errorf("ha: switches in pods %d and %d: %w", shard, s, ErrCrossShard)
		}
	}
	if shard == -1 {
		return 0, errors.New("ha: empty load")
	}
	return shard, nil
}

// Localize maps a global load vector into shard s's dense local vector
// (spine entries zero). Callers must have routed the load to s first.
func (p *Partitioning) Localize(s int, load []int) []int {
	pod := p.Shards[s].Pod
	local := make([]int, pod.Tree.N())
	for v, n := range load {
		if n > 0 && p.podOf[v] == s {
			local[pod.Local[v]] = n
		}
	}
	return local
}
