package wire

import (
	"strings"
	"testing"
)

func TestHeartbeatRoundTrip(t *testing.T) {
	in := &Heartbeat{Shard: 2, Epoch: 1 << 40, Seq: 987654321}
	got, ok := roundTrip(t, in).(*Heartbeat)
	if !ok || *got != *in {
		t.Fatalf("round trip %+v -> %+v", in, got)
	}
}

func TestEpochRoundTrip(t *testing.T) {
	in := &Epoch{Shard: 1, Epoch: 7, Node: 1003}
	got, ok := roundTrip(t, in).(*Epoch)
	if !ok || *got != *in {
		t.Fatalf("round trip %+v -> %+v", in, got)
	}
}

func TestCkptOfferRoundTrip(t *testing.T) {
	in := &CkptOffer{Shard: 3, Epoch: 2, Seq: 500, Bytes: 1 << 20}
	got, ok := roundTrip(t, in).(*CkptOffer)
	if !ok || *got != *in {
		t.Fatalf("round trip %+v -> %+v", in, got)
	}
}

func TestLeaseDeltaRoundTrip(t *testing.T) {
	in := &LeaseDelta{
		Shard: 1, Epoch: 3, Seq: 42, Op: DeltaPlace, ID: 9, K: 4,
		Blue: []uint32{2, 7, 11}, LoadV: []uint32{5, 6}, LoadN: []uint32{10, 1},
	}
	in.SetPhi(12.25)
	in.SetAllRed(99.5)
	got, ok := roundTrip(t, in).(*LeaseDelta)
	if !ok {
		t.Fatalf("round trip returned %T", got)
	}
	if got.Shard != in.Shard || got.Epoch != in.Epoch || got.Seq != in.Seq ||
		got.Op != in.Op || got.ID != in.ID || got.K != in.K ||
		got.Phi() != 12.25 || got.AllRed() != 99.5 {
		t.Fatalf("delta scalars differ: %+v vs %+v", in, got)
	}
	for i := range in.Blue {
		if got.Blue[i] != in.Blue[i] {
			t.Fatalf("blue differs at %d", i)
		}
	}
	for i := range in.LoadV {
		if got.LoadV[i] != in.LoadV[i] || got.LoadN[i] != in.LoadN[i] {
			t.Fatalf("load differs at %d", i)
		}
	}
}

func TestLeaseDeltaReleaseRoundTrip(t *testing.T) {
	// A release carries only identity: no blues, no load.
	got, ok := roundTrip(t, &LeaseDelta{Seq: 1, Op: DeltaRelease, ID: 5}).(*LeaseDelta)
	if !ok || got.Op != DeltaRelease || got.ID != 5 || len(got.Blue) != 0 || len(got.LoadV) != 0 {
		t.Fatalf("release round trip: %+v", got)
	}
}

func TestHARejectsMalformedBodies(t *testing.T) {
	cases := []struct {
		name string
		m    Message
		body []byte
	}{
		{"heartbeat short", &Heartbeat{}, make([]byte, 19)},
		{"heartbeat long", &Heartbeat{}, make([]byte, 21)},
		{"epoch short", &Epoch{}, make([]byte, 15)},
		{"offer short", &CkptOffer{}, make([]byte, 27)},
		{"offer long", &CkptOffer{}, make([]byte, 29)},
		{"delta short", &LeaseDelta{}, make([]byte, 20)},
		{"delta zero op", &LeaseDelta{}, make([]byte, 57)},
		{"delta counts lie", &LeaseDelta{}, func() []byte {
			b := make([]byte, 57)
			b[20] = DeltaPlace
			b[52] = 9 // claims 9 blues, none present
			return b
		}()},
	}
	for _, tc := range cases {
		if err := tc.m.parseBody(tc.body); err == nil {
			t.Errorf("%s: parsed, want error", tc.name)
		}
	}
}

func TestLeaseDeltaUnknownOpRejected(t *testing.T) {
	b := make([]byte, 57)
	b[20] = DeltaMigrate + 1
	if err := (&LeaseDelta{}).parseBody(b); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("unknown op: %v, want unknown-op error", err)
	}
}

func TestLeaseDeltaOversizedCountsRejected(t *testing.T) {
	b := make([]byte, 57)
	b[20] = DeltaPlace
	b[49], b[50], b[51], b[52] = 0xFF, 0xFF, 0xFF, 0xFF // nb
	if err := (&LeaseDelta{}).parseBody(b); err == nil || !strings.Contains(err.Error(), "too large") {
		t.Fatalf("oversized blue count: %v, want too-large error", err)
	}
}
