package cluster

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"soar/internal/obs"
	"soar/internal/topology"
)

// TestMetricsRecordedOnRun drives one healthy distributed run and one
// dial-blackholed RunOrFallback through a shared Metrics and checks
// every family moved the way the run did: frames flowed both ways,
// the healthy run counted once with no errors, the blackholed one
// degraded, and the whole state survives a scrape/parse round trip.
func TestMetricsRecordedOnRun(t *testing.T) {
	tr, err := topology.BT(8)
	if err != nil {
		t.Fatal(err)
	}
	load := make([]int, tr.N())
	for v := 0; v < tr.N(); v++ {
		if tr.IsLeaf(v) {
			load[v] = 1
		}
	}
	reg := obs.NewRegistry()
	m := NewMetrics(reg, obs.NewTrace(256))

	ctx := context.Background()
	res, err := RunWithOptions(ctx, tr, load, nil, 2, &Options{Metrics: m})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatal("healthy run reported Degraded")
	}
	if got := m.runs.Value(); got != 1 {
		t.Fatalf("runs counter = %d, want 1", got)
	}
	if got := m.runErrors.Value(); got != 0 {
		t.Fatalf("run errors = %d, want 0", got)
	}
	// Every protocol frame sent is received by a peer edge that shares
	// the same Metrics, so the directions must balance.
	sent, recvd := m.framesSent.Value(), m.framesRecv.Value()
	if sent == 0 || sent != recvd {
		t.Fatalf("frames sent=%d recv=%d, want equal and nonzero", sent, recvd)
	}
	if got := m.runSeconds.Count(); got != 1 {
		t.Fatalf("run duration observations = %d, want 1", got)
	}

	// A dialer that never connects: RunOrFallback must degrade and say so.
	dead := &Options{
		Metrics: m,
		Dial: func(ctx context.Context, node int, addr string) (net.Conn, error) {
			return nil, errors.New("blackhole")
		},
		Retry: RetryPolicy{Attempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	}
	res2, err := RunOrFallback(ctx, tr, load, nil, 2, dead)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Degraded || res2.Attempts != 2 || res2.Cause == nil {
		t.Fatalf("degraded run reported %+v", res2)
	}
	if res2.Cost != res.Cost {
		t.Fatalf("fallback cost %v differs from distributed cost %v", res2.Cost, res.Cost)
	}
	if got := m.Degraded(); got != 1 {
		t.Fatalf("degraded counter = %d, want 1", got)
	}
	if got := m.attempts.Value(); got != 2 {
		t.Fatalf("attempts counter = %d, want 2", got)
	}
	if got := m.dialRetries.Value(); got == 0 {
		t.Fatal("blackholed dials recorded no retries")
	}
	if got := m.runErrors.Value(); got != 2 {
		t.Fatalf("run errors = %d, want 2 (one per blackholed attempt)", got)
	}

	// The scrape must round-trip and carry both frame directions.
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("scrape does not parse: %v\n%s", err, sb.String())
	}
	byName := map[string]obs.TextFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	frames, ok := byName["soar_cluster_frames_total"]
	if !ok || len(frames.Samples) != 2 {
		t.Fatalf("frames family missing or mislabeled in scrape:\n%s", sb.String())
	}
	if _, ok := byName["soar_cluster_run_seconds"]; !ok {
		t.Fatalf("run_seconds family missing from scrape:\n%s", sb.String())
	}

	// The trace ring saw the per-stage spans.
	ops := map[string]bool{}
	for _, ev := range m.Trace().Dump(256) {
		ops[ev.Op] = true
	}
	for _, want := range []string{"cluster.run", "cluster.dial", "cluster.send", "cluster.recv"} {
		if !ops[want] {
			t.Fatalf("trace ring has no %s span (saw %v)", want, ops)
		}
	}
}

// TestNilMetricsRecordsNothing pins the opt-in contract: every note
// method and accessor on a nil *Metrics is a no-op, so un-instrumented
// callers need no guards.
func TestNilMetricsRecordsNothing(t *testing.T) {
	var m *Metrics
	m.noteRun(time.Now(), 3, nil)
	m.noteFrame(true, time.Now(), nil)
	m.noteFrame(false, time.Now(), errors.New("x"))
	m.noteDial(time.Now(), 2, nil)
	m.noteAttempts(1)
	m.noteDegraded()
	if m.Trace() != nil || m.Degraded() != 0 {
		t.Fatal("nil Metrics accessors must return zero values")
	}
}
