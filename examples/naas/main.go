// Network-as-a-Service: the paper's envisioned deployment (Sec. 1) —
// a provider leases bounded in-network aggregation to tenants over an
// HTTP control plane. This example starts the service in-process on a
// loopback port, admits tenants with different budgets over real HTTP,
// releases one, and shows capacity being reclaimed.
//
//	go run ./examples/naas
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"time"

	"soar/internal/load"
	"soar/internal/naas"
	"soar/internal/topology"
)

func main() {
	tr, err := topology.BT(64)
	if err != nil {
		log.Fatal(err)
	}
	svc := naas.NewService(tr, 2) // every switch serves ≤ 2 tenants
	defer svc.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	client := naas.NewClient("http://"+ln.Addr().String(), nil)
	fmt.Printf("NaaS control plane on %s — %d switches, capacity 2\n\n", ln.Addr(), tr.N())

	// Tenants choose budgets matching the performance they need.
	rng := rand.New(rand.NewSource(4))
	budgets := []int{2, 4, 8, 16, 8, 4}
	var leases []*naas.ClientLease
	fmt.Printf("%-8s %-4s %-12s %-10s %s\n", "tenant", "k", "phi", "vs all-red", "leased switches")
	for i, k := range budgets {
		loads := load.Generate(tr, load.PaperPowerLaw(), load.LeavesOnly, rng)
		lease, err := client.Place(ctx, loads, k)
		if err != nil {
			log.Fatal(err)
		}
		leases = append(leases, lease)
		fmt.Printf("%-8d %-4d %-12.1f %-10.3f %v\n", i, k, lease.Phi, lease.Ratio, lease.Blue)
	}

	st, err := client.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter admissions: %d tenants, %d/%d capacity slots used, mean ratio %.3f\n",
		st.Tenants, st.CapacityUsed, st.CapacityTotal, st.MeanRatio)

	// Tenant 3 (the big k=16 one) departs; its switches return to the pool.
	if err := client.Release(ctx, leases[3].ID); err != nil {
		log.Fatal(err)
	}
	st, err = client.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after tenant 3 departs: %d tenants, %d/%d slots used\n",
		st.Tenants, st.CapacityUsed, st.CapacityTotal)

	// A late tenant benefits from the reclaimed capacity.
	loads := load.Generate(tr, load.PaperPowerLaw(), load.LeavesOnly, rng)
	lease, err := client.Place(ctx, loads, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("late tenant with k=16: φ=%.1f (%.3f of all-red)\n", lease.Phi, lease.Ratio)
}
