// Package experiments regenerates every figure of the SOAR paper's
// evaluation (Sec. 5 and Appendices A-B). Each FigN function returns a
// Figure holding the same series the paper plots; the CLI
// (cmd/soarctl exp ...) renders them as tables or CSV, and
// EXPERIMENTS.md records representative output against the paper's
// claims.
//
// Every generator takes a Config with paper-faithful defaults and a
// Quick variant small enough for unit tests and benchmarks.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"soar/internal/core"
	"soar/internal/placement"
	"soar/internal/topology"
)

// Series is one plotted line: a label and aligned x/y points, with
// optional per-point standard errors.
type Series struct {
	Label string
	X     []float64
	Y     []float64
	Err   []float64
}

// Subplot is one panel of a figure.
type Subplot struct {
	Name   string
	XLabel string
	YLabel string
	Series []Series
}

// Figure is the regenerated counterpart of one paper figure.
type Figure struct {
	ID       string
	Title    string
	Subplots []Subplot
}

// WriteCSV emits the figure in long form:
// figure,subplot,series,x,y,stderr — one row per point.
func (f *Figure) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "figure,subplot,series,x,y,stderr"); err != nil {
		return err
	}
	for _, sp := range f.Subplots {
		for _, s := range sp.Series {
			for i := range s.X {
				e := 0.0
				if i < len(s.Err) {
					e = s.Err[i]
				}
				if _, err := fmt.Fprintf(w, "%s,%s,%s,%g,%g,%g\n",
					f.ID, csvEscape(sp.Name), csvEscape(s.Label), s.X[i], s.Y[i], e); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// Render writes a human-readable per-subplot table: the x values as the
// first column and one column per series, mirroring how the paper's plot
// data reads.
func (f *Figure) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title); err != nil {
		return err
	}
	for _, sp := range f.Subplots {
		fmt.Fprintf(w, "\n-- %s --\n", sp.Name)
		fmt.Fprintf(w, "%-12s", sp.XLabel)
		for _, s := range sp.Series {
			fmt.Fprintf(w, " %14s", s.Label)
		}
		fmt.Fprintln(w)
		if len(sp.Series) == 0 {
			continue
		}
		for i := range sp.Series[0].X {
			fmt.Fprintf(w, "%-12g", sp.Series[0].X[i])
			for _, s := range sp.Series {
				if i < len(s.Y) {
					fmt.Fprintf(w, " %14.4f", s.Y[i])
				} else {
					fmt.Fprintf(w, " %14s", "-")
				}
			}
			fmt.Fprintln(w)
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// RateSchemes returns the paper's three link-rate regimes in display
// order: constant, linearly increasing, exponentially increasing.
func RateSchemes() []struct {
	Name   string
	Scheme topology.RateScheme
} {
	return []struct {
		Name   string
		Scheme topology.RateScheme
	}{
		{"constant (w=1)", topology.RatesConstant(1)},
		{"linear (w=i)", topology.RatesLinear()},
		{"exponential (w=2^i)", topology.RatesExponential()},
	}
}

// CompareStrategies returns the strategy line-up of the paper's Figs. 6
// and 7: SOAR against Top, Max and Level.
func CompareStrategies() []placement.Strategy {
	return []placement.Strategy{
		core.Strategy{},
		placement.Top{},
		placement.Max{},
		placement.Level{},
	}
}
