package ha

import (
	"sync"

	"soar/internal/wire"
)

// subBuffer is the per-standby frame buffer. A standby that falls this
// far behind the commit stream is kicked (its channel closed) rather
// than allowed to stall the dispatcher: it re-attaches and catches up
// from a fresh checkpoint, which is cheaper than back-pressuring
// admission for everyone.
const subBuffer = 2048

// hub fans the primary's frame stream (lease deltas and heartbeats)
// out to its attached standbys. publish runs on the scheduler's
// dispatcher goroutine — the journal hook — so it must never block:
// sends are non-blocking, and a full subscriber is dropped.
type hub struct {
	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	closed bool
}

type subscriber struct {
	ch chan wire.Message
}

func newHub() *hub {
	return &hub{subs: make(map[*subscriber]struct{})}
}

// subscribe registers a new standby stream. Returns nil if the hub is
// already closed.
func (h *hub) subscribe() *subscriber {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	sub := &subscriber{ch: make(chan wire.Message, subBuffer)}
	h.subs[sub] = struct{}{}
	return sub
}

// unsubscribe removes a stream and closes its channel (idempotent via
// map membership).
func (h *hub) unsubscribe(sub *subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[sub]; ok {
		delete(h.subs, sub)
		close(sub.ch)
	}
}

// publish hands one frame to every subscriber without blocking; a
// subscriber with a full buffer is kicked (channel closed) so the
// sender goroutine ends its stream and the standby re-syncs.
func (h *hub) publish(m wire.Message) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	for sub := range h.subs {
		select {
		case sub.ch <- m:
		default:
			delete(h.subs, sub)
			close(sub.ch)
		}
	}
}

// close kicks every subscriber and refuses new ones.
func (h *hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for sub := range h.subs {
		delete(h.subs, sub)
		close(sub.ch)
	}
}
