package reduce

import (
	"math/rand"
	"testing"

	"soar/internal/paper"
	"soar/internal/topology"
)

func TestBottleneckAllRedPaperExample(t *testing.T) {
	tr, loads := paper.Figure2()
	blue := make([]bool, tr.N())
	// All-red: the (r, d) edge carries all 17 messages at rate 1.
	if got := BottleneckUtilization(tr, loads, blue); got != 17 {
		t.Fatalf("bottleneck = %v, want 17", got)
	}
	// The k=2 optimum: heaviest link is the load-5 leaf edge.
	opt := []bool{false, false, true, false, true, false, false}
	if got := BottleneckUtilization(tr, loads, opt); got != 5 {
		t.Fatalf("bottleneck under SOAR = %v, want 5", got)
	}
}

func TestPerLinkUtilizationSumsToPhi(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(30)
		tr := topology.RandomRecursive(n, rng)
		loads := make([]int, n)
		blue := make([]bool, n)
		for v := 0; v < n; v++ {
			loads[v] = rng.Intn(5)
			blue[v] = rng.Intn(3) == 0
		}
		per := PerLinkUtilization(tr, loads, blue)
		sum, max := 0.0, 0.0
		for _, c := range per {
			sum += c
			if c > max {
				max = c
			}
		}
		if phi := Utilization(tr, loads, blue); abs(sum-phi) > 1e-9 {
			t.Fatalf("per-link sum %v != φ %v", sum, phi)
		}
		if b := BottleneckUtilization(tr, loads, blue); abs(max-b) > 1e-9 {
			t.Fatalf("per-link max %v != bottleneck %v", max, b)
		}
	}
}

func TestBottleneckNeverIncreasesWithBlue(t *testing.T) {
	// Making a switch blue never increases any link's message count, so
	// the bottleneck is monotone too.
	tr, loads := paper.Figure2()
	blue := make([]bool, tr.N())
	base := BottleneckUtilization(tr, loads, blue)
	for v := 0; v < tr.N(); v++ {
		blue[v] = true
		if got := BottleneckUtilization(tr, loads, blue); got > base+1e-12 {
			t.Fatalf("bottleneck rose to %v after making %d blue", got, v)
		}
		blue[v] = false
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
