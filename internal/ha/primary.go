package ha

import (
	"bytes"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"soar/internal/sched"
	"soar/internal/wire"
)

// feed adapts the scheduler's journal hook to the replication hub: it
// converts each committed JournalEvent to a LeaseDelta frame stamped
// with the primary's shard and epoch and publishes it. It runs on the
// scheduler's dispatcher goroutine, so it only does the conversion and
// a non-blocking fan-out.
type feed struct {
	shard uint32
	epoch uint64
	hub   *hub
	met   *Metrics
	logf  func(format string, args ...any)
	// seq tracks the last published sequence so heartbeats advertise
	// how far the commit stream has progressed.
	seq atomic.Uint64
}

func (f *feed) journal(ev sched.JournalEvent) {
	d, err := deltaFromEvent(f.shard, f.epoch, ev)
	if err != nil {
		f.logf("ha: shard %d: journal event %d dropped: %v", f.shard, ev.Seq, err)
		return
	}
	f.seq.Store(ev.Seq)
	f.hub.publish(d)
	f.met.deltas.Inc()
}

// primaryConfig fixes one primary incarnation's identity.
type primaryConfig struct {
	shard     uint32
	epoch     uint64
	node      int
	heartbeat time.Duration
	met       *Metrics
	logf      func(format string, args ...any)
	// onDeposed fires (once, from a connection goroutine) when a peer
	// proves a higher epoch exists: the incarnation is stale and has
	// closed itself.
	onDeposed func(higher uint64)
}

// primary is one serving incarnation of a shard's control plane: the
// scheduler that commits, the hub that fans its journal out, and the
// listener standbys attach to. A primary never outlives its epoch —
// promotion builds a fresh incarnation around the promoted standby's
// scheduler.
type primary struct {
	sch  *sched.Scheduler
	feed *feed
	hub  *hub
	ln   net.Listener
	cfg  primaryConfig

	// crashed is shared with the shard's fence closure: setting it
	// makes every subsequent commit fail, the in-process stand-in for
	// the process dying between two batches.
	crashed *atomic.Bool

	deposed   atomic.Bool
	closeOnce sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

// newPrimary starts serving replication on ln. The scheduler must have
// been created with feed.journal as its Journal hook and the shard's
// fence as its Fence.
func newPrimary(sch *sched.Scheduler, f *feed, h *hub, ln net.Listener, crashed *atomic.Bool, cfg primaryConfig) *primary {
	p := &primary{
		sch:     sch,
		feed:    f,
		hub:     h,
		ln:      ln,
		cfg:     cfg,
		crashed: crashed,
		stop:    make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
	}
	p.wg.Add(2)
	go p.acceptLoop()
	go p.heartbeatLoop()
	return p
}

func (p *primary) addr() string { return p.ln.Addr().String() }

// close tears the incarnation's network down: listener, heartbeats,
// every attached stream. The scheduler is NOT closed — a deposed
// primary's scheduler stays alive (fenced) so late commits are
// observable rejections, and the cluster closes it on shutdown.
func (p *primary) close() {
	p.closeOnce.Do(func() {
		close(p.stop)
		p.ln.Close()
		p.hub.close()
		p.connMu.Lock()
		for c := range p.conns {
			c.Close()
		}
		p.connMu.Unlock()
	})
	p.wg.Wait()
}

// depose marks the incarnation stale (a peer proved epoch `higher`
// exists) and closes it. Idempotent; the callback fires once.
func (p *primary) depose(higher uint64) {
	if !p.deposed.CompareAndSwap(false, true) {
		return
	}
	if p.cfg.onDeposed != nil {
		p.cfg.onDeposed(higher)
	}
	// close waits for the calling goroutine via wg, so detach it.
	go p.close()
}

func (p *primary) heartbeatLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.heartbeat)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.hub.publish(&wire.Heartbeat{
				Shard: p.cfg.shard,
				Epoch: p.cfg.epoch,
				Seq:   p.feed.seq.Load(),
			})
			p.cfg.met.heartbeats.Inc()
		}
	}
}

func (p *primary) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.connMu.Lock()
		p.conns[conn] = struct{}{}
		p.connMu.Unlock()
		p.wg.Add(1)
		go p.serve(conn)
	}
}

func (p *primary) dropConn(conn net.Conn) {
	p.connMu.Lock()
	delete(p.conns, conn)
	p.connMu.Unlock()
	conn.Close()
}

// serve runs one standby attachment: epoch handshake, checkpoint
// stream, then the live delta/heartbeat stream until the standby falls
// behind, the connection dies, or the incarnation closes.
func (p *primary) serve(conn net.Conn) {
	defer p.wg.Done()
	defer p.dropConn(conn)

	// Handshake under a deadline so half-open or chaos-deadened
	// connections cannot pin the goroutine.
	hsTimeout := 8 * p.cfg.heartbeat
	conn.SetReadDeadline(time.Now().Add(hsTimeout))
	hello, err := wire.ReadTyped[*wire.Epoch](conn)
	if err != nil || hello.Shard != p.cfg.shard {
		return
	}
	p.cfg.met.attaches.Inc()
	if hello.Epoch > p.cfg.epoch {
		// The standby has seen a newer primary: this incarnation is
		// stale. NACK by echoing its epoch, then self-depose.
		conn.SetWriteDeadline(time.Now().Add(hsTimeout))
		wire.Write(conn, &wire.Epoch{Shard: p.cfg.shard, Epoch: hello.Epoch, Node: uint32(p.cfg.node)})
		p.depose(hello.Epoch)
		return
	}
	conn.SetReadDeadline(time.Time{})

	// Subscribe BEFORE snapshotting: every event committed after the
	// snapshot's sequence is then guaranteed to reach the buffer (the
	// standby skips the prefix the checkpoint already covers).
	sub := p.hub.subscribe()
	if sub == nil {
		return
	}
	defer p.hub.unsubscribe(sub)

	var ckpt bytes.Buffer
	seq, err := p.sch.CheckpointSeq(&ckpt)
	if err != nil {
		p.cfg.logf("ha: shard %d: checkpoint for standby failed: %v", p.cfg.shard, err)
		return
	}
	conn.SetWriteDeadline(time.Now().Add(hsTimeout))
	if err := wire.Write(conn, &wire.Epoch{Shard: p.cfg.shard, Epoch: p.cfg.epoch, Node: uint32(p.cfg.node)}); err != nil {
		return
	}
	offer := &wire.CkptOffer{Shard: p.cfg.shard, Epoch: p.cfg.epoch, Seq: seq, Bytes: uint64(ckpt.Len())}
	if err := wire.Write(conn, offer); err != nil {
		return
	}
	if _, err := conn.Write(ckpt.Bytes()); err != nil {
		return
	}
	p.cfg.met.ckptStreams.Inc()

	// Reader: the only legal inbound frame after attach is an Epoch
	// NACK proving a newer incarnation; anything else (including EOF)
	// ends the stream.
	go func() {
		for {
			m, err := wire.Read(conn)
			if err != nil {
				conn.Close()
				return
			}
			if e, ok := m.(*wire.Epoch); ok && e.Shard == p.cfg.shard && e.Epoch > p.cfg.epoch {
				p.depose(e.Epoch)
				conn.Close()
				return
			}
		}
	}()

	for m := range sub.ch {
		conn.SetWriteDeadline(time.Now().Add(hsTimeout))
		if err := wire.Write(conn, m); err != nil {
			return
		}
	}
}
