package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"soar/internal/experiments"
	"soar/internal/viz"
)

// runExp regenerates one (or all) of the paper's evaluation figures and
// renders the series as tables, optionally writing CSV files.
func runExp(args []string) error {
	fs := newFlagSet("exp")
	quick := fs.Bool("quick", false, "use reduced parameters (for smoke runs)")
	csvDir := fs.String("csv", "", "also write <figure>.csv files into this directory")
	reps := fs.Int("reps", 0, "override the number of repetitions (0 = figure default)")
	plot := fs.Bool("plot", false, "render each subplot as an ASCII chart")
	engine := fs.String("engine", "full", "SOAR engine for online figures (fig7): full or incremental")
	capsProfile := fs.String("caps", "", "capacity profile for ext-hetero: uniform, tiered, tor or powerlaw (empty = sweep all)")
	// Accept the figure name before the flags: soarctl exp fig6 -csv dir.
	which := ""
	if len(args) > 0 && len(args[0]) > 0 && args[0][0] != '-' {
		which, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if which == "" && fs.NArg() == 1 {
		which = fs.Arg(0)
	}
	if which == "" || fs.NArg() > 1 {
		return fmt.Errorf("usage: soarctl exp <fig6|fig7|fig8|fig9|fig10|fig11|ext-objectives|ext-topologies|ext-incremental|ext-hetero|ext-memo|all> [flags]")
	}
	// Validate up front: only fig7 consumes the engine and only
	// ext-hetero consumes the caps profile, but a typo must not silently
	// fall back to the default for the other figures.
	if *engine != "full" && *engine != "incremental" {
		return fmt.Errorf("unknown -engine %q (want full or incremental)", *engine)
	}
	switch *capsProfile {
	case "", "uniform", "tiered", "tor", "powerlaw":
	default:
		return fmt.Errorf("unknown -caps profile %q (want uniform, tiered, tor or powerlaw)", *capsProfile)
	}

	type gen struct {
		id  string
		run func() (*experiments.Figure, error)
	}
	gens := []gen{
		{"fig6", func() (*experiments.Figure, error) {
			cfg := experiments.DefaultFig6()
			if *quick {
				cfg = experiments.QuickFig6()
			}
			if *reps > 0 {
				cfg.Reps = *reps
			}
			return experiments.Fig6(cfg)
		}},
		{"fig7", func() (*experiments.Figure, error) {
			cfg := experiments.DefaultFig7()
			if *quick {
				cfg = experiments.QuickFig7()
			}
			if *reps > 0 {
				cfg.Reps = *reps
			}
			cfg.Engine = *engine
			return experiments.Fig7(cfg)
		}},
		{"fig8", func() (*experiments.Figure, error) {
			cfg := experiments.DefaultFig8()
			if *quick {
				cfg = experiments.QuickFig8()
			}
			if *reps > 0 {
				cfg.Reps = *reps
			}
			return experiments.Fig8(cfg)
		}},
		{"fig9", func() (*experiments.Figure, error) {
			cfg := experiments.DefaultFig9()
			if *quick {
				cfg = experiments.QuickFig9()
			}
			if *reps > 0 {
				cfg.Reps = *reps
			}
			return experiments.Fig9(cfg)
		}},
		{"fig10", func() (*experiments.Figure, error) {
			cfg := experiments.DefaultFig10()
			if *quick {
				cfg = experiments.QuickFig10()
			}
			if *reps > 0 {
				cfg.Reps = *reps
			}
			return experiments.Fig10(cfg)
		}},
		{"fig11", func() (*experiments.Figure, error) {
			cfg := experiments.DefaultFig11()
			if *quick {
				cfg = experiments.QuickFig11()
			}
			if *reps > 0 {
				cfg.Reps = *reps
			}
			return experiments.Fig11(cfg)
		}},
		{"ext-objectives", func() (*experiments.Figure, error) {
			cfg := experiments.DefaultExtObjectives()
			if *quick {
				cfg = experiments.QuickExtObjectives()
			}
			if *reps > 0 {
				cfg.Reps = *reps
			}
			return experiments.ExtObjectives(cfg)
		}},
		{"ext-topologies", func() (*experiments.Figure, error) {
			cfg := experiments.DefaultExtTopologies()
			if *quick {
				cfg = experiments.QuickExtTopologies()
			}
			if *reps > 0 {
				cfg.Reps = *reps
			}
			return experiments.ExtTopologies(cfg)
		}},
		{"ext-incremental", func() (*experiments.Figure, error) {
			cfg := experiments.DefaultExtIncremental()
			if *quick {
				cfg = experiments.QuickExtIncremental()
			}
			if *reps > 0 {
				cfg.Reps = *reps
			}
			return experiments.ExtIncremental(cfg)
		}},
		{"ext-memo", func() (*experiments.Figure, error) {
			cfg := experiments.DefaultExtMemo()
			if *quick {
				cfg = experiments.QuickExtMemo()
			}
			if *reps > 0 {
				cfg.Reps = *reps
			}
			return experiments.ExtMemo(cfg)
		}},
		{"ext-hetero", func() (*experiments.Figure, error) {
			cfg := experiments.DefaultExtHetero()
			if *quick {
				cfg = experiments.QuickExtHetero()
			}
			if *reps > 0 {
				cfg.Reps = *reps
			}
			cfg.Profile = *capsProfile
			return experiments.ExtHetero(cfg)
		}},
	}

	ran := false
	for _, g := range gens {
		if which != "all" && which != g.id {
			continue
		}
		ran = true
		fig, err := g.run()
		if err != nil {
			return fmt.Errorf("%s: %w", g.id, err)
		}
		if err := fig.Render(os.Stdout); err != nil {
			return err
		}
		if *plot {
			if err := plotFigure(os.Stdout, fig); err != nil {
				return err
			}
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*csvDir, g.id+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := fig.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
	if !ran {
		return fmt.Errorf("unknown figure %q", which)
	}
	return nil
}

// plotFigure renders every subplot of a figure as an ASCII chart.
func plotFigure(w io.Writer, fig *experiments.Figure) error {
	for _, sp := range fig.Subplots {
		series := make([]viz.Series, len(sp.Series))
		for i, s := range sp.Series {
			series[i] = viz.Series{Label: s.Label, X: s.X, Y: s.Y}
		}
		if err := viz.Chart(w, series, viz.Options{
			Title:  fmt.Sprintf("%s — %s", fig.ID, sp.Name),
			XLabel: sp.XLabel,
			Width:  64, Height: 16,
		}); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}
