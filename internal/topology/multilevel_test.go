package topology

import (
	"testing"
	"testing/quick"
)

func TestMultiLevelShape(t *testing.T) {
	tr := MultiLevel([]int{2, 3}) // 1 + 2 + 6 = 9 switches
	if tr.N() != 9 {
		t.Fatalf("N=%d, want 9", tr.N())
	}
	if got := len(tr.Children(0)); got != 2 {
		t.Fatalf("root has %d children, want 2", got)
	}
	for _, v := range tr.NodesAtLevel(1) {
		if got := len(tr.Children(v)); got != 3 {
			t.Fatalf("level-1 switch %d has %d children, want 3", v, got)
		}
	}
	if got := len(tr.Leaves()); got != 6 {
		t.Fatalf("%d leaves, want 6", got)
	}
	if tr.Height() != 2 {
		t.Fatalf("height %d, want 2", tr.Height())
	}
}

func TestMultiLevelMatchesKAry(t *testing.T) {
	ml := MultiLevel([]int{3, 3})
	ka := CompleteKAry(3, 3)
	if ml.N() != ka.N() || ml.Height() != ka.Height() {
		t.Fatalf("MultiLevel(3,3) %d/%d vs CompleteKAry(3,3) %d/%d",
			ml.N(), ml.Height(), ka.N(), ka.Height())
	}
	for lvl := 0; lvl <= 2; lvl++ {
		if len(ml.NodesAtLevel(lvl)) != len(ka.NodesAtLevel(lvl)) {
			t.Fatalf("level %d widths differ", lvl)
		}
	}
}

func TestMultiLevelSingleLevel(t *testing.T) {
	tr := MultiLevel(nil) // just the root
	if tr.N() != 1 {
		t.Fatalf("N=%d, want 1", tr.N())
	}
	star := MultiLevel([]int{5})
	if star.N() != 6 || len(star.Children(0)) != 5 {
		t.Fatalf("MultiLevel({5}) N=%d children=%d", star.N(), len(star.Children(0)))
	}
}

func TestMultiLevelRejectsBadArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for arity 0")
		}
	}()
	MultiLevel([]int{2, 0})
}

func TestFatTreeAggregation(t *testing.T) {
	tr, err := FatTreeAggregation(4) // half=2: 1 + 2 + 4 + 8 = 15
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 15 {
		t.Fatalf("N=%d, want 15", tr.N())
	}
	if got := len(tr.Leaves()); got != 8 {
		t.Fatalf("%d ToRs, want 8", got)
	}
	for _, bad := range []int{0, 3, -2} {
		if _, err := FatTreeAggregation(bad); err == nil {
			t.Fatalf("FatTreeAggregation(%d) should fail", bad)
		}
	}
}

func TestQuickMultiLevelNodeCount(t *testing.T) {
	// Property: node count follows the geometric sum of arities and every
	// non-leaf level is fully populated.
	f := func(a, b uint8) bool {
		x, y := int(a%4)+1, int(b%4)+1
		tr := MultiLevel([]int{x, y})
		if tr.N() != 1+x+x*y {
			return false
		}
		for _, v := range tr.NodesAtLevel(0) {
			if len(tr.Children(v)) != x {
				return false
			}
		}
		for _, v := range tr.NodesAtLevel(1) {
			if len(tr.Children(v)) != y {
				return false
			}
		}
		return len(tr.NodesAtLevel(2)) == x*y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
