package main

import (
	"fmt"
	"math/rand"
	"os"

	"soar/internal/core"
	"soar/internal/load"
	"soar/internal/placement"
	"soar/internal/reduce"
	"soar/internal/topology"
)

// engineFunc adapts one of the SOAR engines to placement.Strategy so the
// -engine flag can swap it into the strategy line-up; every engine
// produces the same placements (verified by TestAllEnginesAgree and
// TestIncrementalMatchesFullEngines).
type engineFunc func(t *topology.Tree, loads []int, avail []bool, k int) []bool

func (engineFunc) Name() string { return "soar" }

func (f engineFunc) Place(t *topology.Tree, loads []int, avail []bool, k int) []bool {
	return f(t, loads, avail, k)
}

// soarEngine resolves the -engine flag to a SOAR strategy.
func soarEngine(name string) (placement.Strategy, error) {
	switch name {
	case "full":
		return core.Strategy{}, nil
	case "compact":
		return engineFunc(func(t *topology.Tree, loads []int, avail []bool, k int) []bool {
			return core.SolveCompact(t, loads, avail, k).Blue
		}), nil
	case "parallel":
		return engineFunc(func(t *topology.Tree, loads []int, avail []bool, k int) []bool {
			return core.SolveParallel(t, loads, avail, k, 0).Blue
		}), nil
	case "distributed":
		return engineFunc(func(t *topology.Tree, loads []int, avail []bool, k int) []bool {
			return core.SolveDistributed(t, loads, avail, k).Blue
		}), nil
	case "incremental":
		return engineFunc(func(t *topology.Tree, loads []int, avail []bool, k int) []bool {
			return core.NewIncremental(t, loads, avail, k).Solve().Blue
		}), nil
	default:
		return nil, fmt.Errorf("unknown -engine %q", name)
	}
}

// runPlace builds one instance and prints every strategy's placement and
// normalized utilization.
func runPlace(args []string) error {
	fs := newFlagSet("place")
	topo := fs.String("topo", "bt", "topology: bt (complete binary) or sf (scale-free)")
	n := fs.Int("n", 256, "network size (bt: including destination, power of two; sf: switches)")
	k := fs.Int("k", 16, "aggregation switch budget")
	dist := fs.String("dist", "powerlaw", "load distribution: uniform, powerlaw or one (unit)")
	rates := fs.String("rates", "constant", "link rates: constant, linear or exp")
	engine := fs.String("engine", "full", "SOAR engine: full, compact, parallel, distributed or incremental")
	seed := fs.Int64("seed", 1, "random seed")
	dot := fs.String("dot", "", "write the SOAR placement as Graphviz DOT to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(*seed))
	var tr *topology.Tree
	var where load.Placement
	switch *topo {
	case "bt":
		t, err := topology.BT(*n)
		if err != nil {
			return err
		}
		tr, where = t, load.LeavesOnly
	case "sf":
		tr, where = topology.ScaleFree(*n, rng), load.AllNodes
	default:
		return fmt.Errorf("unknown -topo %q", *topo)
	}
	switch *rates {
	case "constant":
	case "linear":
		tr = topology.ApplyRates(tr, topology.RatesLinear())
	case "exp":
		tr = topology.ApplyRates(tr, topology.RatesExponential())
	default:
		return fmt.Errorf("unknown -rates %q", *rates)
	}
	var d load.Distribution
	switch *dist {
	case "uniform":
		d = load.PaperUniform()
	case "powerlaw":
		d = load.PaperPowerLaw()
	case "one":
		d = load.Constant{V: 1}
	default:
		return fmt.Errorf("unknown -dist %q", *dist)
	}
	soar, err := soarEngine(*engine)
	if err != nil {
		return err
	}
	loads := load.Generate(tr, d, where, rng)

	allRed := reduce.Utilization(tr, loads, make([]bool, tr.N()))
	fmt.Printf("instance: %s n=%d switches=%d height=%d totalLoad=%d rates=%s dist=%s k=%d engine=%s\n",
		*topo, *n, tr.N(), tr.Height(), load.Total(loads), *rates, *dist, *k, *engine)
	fmt.Printf("%-12s %12s %12s  %s\n", "strategy", "phi", "vs all-red", "")
	strategies := []placement.Strategy{
		placement.AllRed{}, placement.Top{}, placement.Max{}, placement.MaxDegree{},
		placement.Level{}, placement.Greedy{}, soar, placement.AllBlue{},
	}
	var soarBlue []bool
	for _, s := range strategies {
		blue := s.Place(tr, loads, nil, *k)
		phi := reduce.Utilization(tr, loads, blue)
		fmt.Printf("%-12s %12.2f %12.4f\n", s.Name(), phi, phi/allRed)
		if s.Name() == "soar" {
			soarBlue = blue
		}
	}
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := tr.WriteDOT(f, loads, soarBlue); err != nil {
			return err
		}
		fmt.Printf("wrote SOAR placement to %s\n", *dot)
	}
	return nil
}
