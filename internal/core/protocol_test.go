package core

import (
	"testing"

	"soar/internal/paper"
	"soar/internal/reduce"
	"soar/internal/topology"
)

// buildStates runs the gather phase of the paper's example through the
// NodeState protocol engine, bottom-up, as a remote deployment would.
func buildStates(t *testing.T, tr *topology.Tree, loads []int, k int) []*NodeState {
	t.Helper()
	subLoad := tr.SubtreeLoads(loads)
	states := make([]*NodeState, tr.N())
	for _, v := range tr.PostOrder() {
		childX := make([][]float64, 0, tr.NumChildren(v))
		for _, c := range tr.Children(v) {
			childX = append(childX, states[c].XTable())
		}
		ns, err := NewNodeState(tr, v, loads[v], subLoad[v] > 0, true, k, childX)
		if err != nil {
			t.Fatalf("NewNodeState(%d): %v", v, err)
		}
		states[v] = ns
	}
	return states
}

func TestNodeStateReproducesPaperExample(t *testing.T) {
	tr, loads := paper.Figure2()
	const k = 2
	states := buildStates(t, tr, loads, k)
	if got := states[tr.Root()].Optimum(); got != 20 {
		t.Fatalf("root optimum %v, want 20", got)
	}

	// Color phase over the protocol engine.
	blue := make([]bool, tr.N())
	type frame struct{ v, i, l int }
	stack := []frame{{tr.Root(), k, 1}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		isBlue, childBudget, childL, err := states[f.v].Decide(f.i, f.l)
		if err != nil {
			t.Fatalf("Decide(%d): %v", f.v, err)
		}
		blue[f.v] = isBlue
		for m, c := range tr.Children(f.v) {
			stack = append(stack, frame{c, childBudget[m], childL})
		}
	}
	if phi := reduce.Utilization(tr, loads, blue); phi != 20 {
		t.Fatalf("protocol placement costs %v, want 20", phi)
	}
}

func TestNodeStateValidatesChildTables(t *testing.T) {
	tr, loads := paper.Figure2()
	// Wrong number of child tables.
	if _, err := NewNodeState(tr, 1, loads[1], true, true, 2, nil); err == nil {
		t.Fatal("missing child tables accepted")
	}
	// Wrong table size.
	bad := [][]float64{make([]float64, 3), make([]float64, 3)}
	if _, err := NewNodeState(tr, 1, loads[1], true, true, 2, bad); err == nil {
		t.Fatal("mis-sized child tables accepted")
	}
}

func TestNodeStateDecideValidatesInput(t *testing.T) {
	tr, loads := paper.Figure2()
	states := buildStates(t, tr, loads, 2)
	root := states[tr.Root()]
	if _, _, _, err := root.Decide(-1, 1); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, _, _, err := root.Decide(5, 1); err == nil {
		t.Fatal("budget beyond k accepted")
	}
	if _, _, _, err := root.Decide(2, 9); err == nil {
		t.Fatal("ℓ beyond depth accepted")
	}
}

func TestStrategyAdapter(t *testing.T) {
	tr, loads := paper.Figure2()
	s := Strategy{}
	if s.Name() != "soar" {
		t.Fatalf("Name() = %q", s.Name())
	}
	blue := s.Place(tr, loads, nil, 2)
	if phi := reduce.Utilization(tr, loads, blue); phi != 20 {
		t.Fatalf("adapter placement costs %v, want 20", phi)
	}
}

func TestTablesAccessors(t *testing.T) {
	tr, loads := paper.Figure2()
	tb := Gather(tr, loads, nil, 2)
	if tb.K() != 2 {
		t.Fatalf("K() = %d", tb.K())
	}
	if tb.Tree() != tr {
		t.Fatal("Tree() did not return the input tree")
	}
}
