module example.com/capclamp

go 1.24
