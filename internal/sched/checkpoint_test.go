package sched

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"soar/internal/load"
	"soar/internal/topology"
)

// placeSome admits count random sparse tenants and returns their leases.
func placeSome(t *testing.T, s *Scheduler, tr *topology.Tree, count int, seed int64) []*Lease {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	leases := make([]*Lease, 0, count)
	for i := 0; i < count; i++ {
		loads := load.GenerateSparse(tr, load.PaperPowerLaw(), 4, rng)
		l, err := s.Place(loads, 1+rng.Intn(4))
		if err != nil {
			t.Fatalf("place %d: %v", i, err)
		}
		leases = append(leases, l)
	}
	return leases
}

func TestCheckpointRestoreRecoversLeaseForLease(t *testing.T) {
	// The crash-restart acceptance test: place tenants, checkpoint,
	// destroy the scheduler, restore into a fresh one — every lease must
	// come back identical, residuals conserved, and new admissions must
	// not collide with recovered ids.
	tr := topology.MustBT(64)
	s := New(tr, Config{Capacity: 3})
	leases := placeSome(t, s, tr, 20, 1)
	for _, id := range []int{3, 7, 11} { // leave some churn scars
		if err := s.Release(leases[id].ID); err != nil {
			t.Fatal(err)
		}
	}
	live := append(append([]*Lease(nil), leases[:3]...), leases[4:7]...)
	live = append(live, leases[8:11]...)
	live = append(live, leases[12:]...)

	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	wantResidual := s.Residual()
	s.Close() // the "crash"

	fresh := New(tr, Config{Capacity: 3})
	defer fresh.Close()
	if err := fresh.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if err := fresh.Audit(); err != nil {
		t.Fatalf("audit after restore: %v", err)
	}
	if got := fresh.Residual(); !reflect.DeepEqual(got, wantResidual) {
		t.Fatalf("restored residuals %v, want %v", got, wantResidual)
	}
	for _, want := range live {
		got, err := fresh.Lookup(want.ID)
		if err != nil {
			t.Fatalf("lease %d lost in restore: %v", want.ID, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("lease %d differs after restore:\n  got  %+v\n  want %+v", want.ID, got, want)
		}
	}
	if _, err := fresh.Lookup(leases[3].ID); err == nil {
		t.Fatal("released lease resurrected by restore")
	}

	// Recovered scheduler keeps serving: releases of recovered leases
	// work, and fresh ids never collide with recovered ones.
	if err := fresh.Release(live[0].ID); err != nil {
		t.Fatalf("release recovered lease: %v", err)
	}
	loads := make([]int, tr.N())
	loads[tr.Leaves()[0]] = 5
	nl, err := fresh.Place(loads, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range leases {
		if nl.ID == old.ID {
			t.Fatalf("fresh lease reissued id %d", nl.ID)
		}
	}
	if err := fresh.Audit(); err != nil {
		t.Fatalf("audit after post-restore traffic: %v", err)
	}
}

func TestCheckpointRestoreEmptyScheduler(t *testing.T) {
	tr := topology.MustBT(16)
	s := New(tr, Config{Capacity: 2})
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	s.Close()
	fresh := New(tr, Config{Capacity: 2})
	defer fresh.Close()
	if err := fresh.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if err := fresh.Audit(); err != nil {
		t.Fatal(err)
	}
	if st := fresh.Snapshot(); st.Tenants != 0 {
		t.Fatalf("empty checkpoint restored %d tenants", st.Tenants)
	}
}

func TestRestoreRejectsCorruption(t *testing.T) {
	tr := topology.MustBT(32)
	s := New(tr, Config{Capacity: 2})
	placeSome(t, s, tr, 8, 2)
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	s.Close()
	good := buf.Bytes()

	cases := map[string][]byte{
		"truncated":    good[:len(good)-10],
		"bit flip":     flipByte(good, len(good)/2),
		"empty stream": {},
	}
	for name, data := range cases {
		fresh := New(tr, Config{Capacity: 2})
		if err := fresh.Restore(bytes.NewReader(data)); err == nil {
			t.Errorf("%s checkpoint restored without error", name)
		} else if err := fresh.Audit(); err != nil {
			t.Errorf("%s: failed restore left state behind: %v", name, err)
		}
		if st := fresh.Snapshot(); st.Tenants != 0 {
			t.Errorf("%s: failed restore installed %d tenants", name, st.Tenants)
		}
		fresh.Close()
	}
}

func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0xFF
	return out
}

func TestRestoreRejectsWrongTopology(t *testing.T) {
	tr := topology.MustBT(32)
	s := New(tr, Config{Capacity: 2})
	placeSome(t, s, tr, 4, 3)
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Same switch count, different shape: the fingerprint must catch
	// what the size check cannot.
	other := topology.ScaleFree(tr.N(), rand.New(rand.NewSource(9)))
	fresh := New(other, Config{Capacity: 2})
	defer fresh.Close()
	err := fresh.Restore(bytes.NewReader(buf.Bytes()))
	if err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("restore against a different topology: %v, want fingerprint error", err)
	}
}

func TestRestoreRejectsBusyScheduler(t *testing.T) {
	tr := topology.MustBT(16)
	s := New(tr, Config{Capacity: 2})
	placeSome(t, s, tr, 2, 4)
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	// Restoring into a scheduler that already has leases must refuse.
	if err := s.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("restore into a live scheduler succeeded")
	}
	s.Close()
}

func TestCheckpointIsConcurrencySafe(t *testing.T) {
	// Checkpoints taken while tenants churn must each be internally
	// consistent (restorable with a clean audit), whatever instant the
	// snapshot catches.
	tr := topology.MustBT(64)
	s := New(tr, Config{Capacity: 2, Workers: 4})
	defer s.Close()
	stop := make(chan struct{})
	go func() {
		rng := rand.New(rand.NewSource(5))
		var ids []int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			loads := load.GenerateSparse(tr, load.PaperPowerLaw(), 3, rng)
			if l, err := s.Place(loads, 2); err == nil {
				ids = append(ids, l.ID)
			}
			if len(ids) > 30 {
				s.Release(ids[0])
				ids = ids[1:]
			}
		}
	}()
	for i := 0; i < 10; i++ {
		var buf bytes.Buffer
		if err := s.Checkpoint(&buf); err != nil {
			t.Fatalf("checkpoint %d: %v", i, err)
		}
		fresh := New(tr, Config{Capacity: 2})
		if err := fresh.Restore(&buf); err != nil {
			t.Fatalf("restore of live checkpoint %d: %v", i, err)
		}
		if err := fresh.Audit(); err != nil {
			t.Fatalf("audit of live checkpoint %d: %v", i, err)
		}
		fresh.Close()
	}
	close(stop)
}

func TestAuditDetectsCorruption(t *testing.T) {
	tr := topology.MustBT(16)
	s := New(tr, Config{Capacity: 2})
	defer s.Close()
	leases := placeSome(t, s, tr, 3, 6)
	if err := s.Audit(); err != nil {
		t.Fatalf("clean scheduler fails audit: %v", err)
	}
	// Sabotage the ledger directly: the audit must notice the residual
	// no longer matches the lease set.
	if len(leases[0].Blue) == 0 {
		t.Fatal("test lease holds no switches")
	}
	s.mu.Lock()
	s.ledger.residual[leases[0].Blue[0]]++
	s.mu.Unlock()
	if err := s.Audit(); err == nil {
		t.Fatal("audit blessed a cooked ledger")
	}
	s.mu.Lock()
	s.ledger.residual[leases[0].Blue[0]]-- // restore sanity for Close
	s.mu.Unlock()
}
