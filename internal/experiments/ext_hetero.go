package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"soar/internal/core"
	"soar/internal/load"
	"soar/internal/reduce"
	"soar/internal/stats"
	"soar/internal/topology"
)

// ExtHeteroConfig parameterizes the heterogeneous-capacity extension
// experiment, following the deployment mixes of the follow-up paper
// ("Constrained In-network Computing with Low Congestion in Datacenter
// Networks"): real fabrics are not uniformly programmable, so the
// experiment sweeps the budget k under several per-switch capacity
// profiles and measures how much utilization the heterogeneity costs
// relative to the paper's uniform model.
type ExtHeteroConfig struct {
	// N is the BT network size (including the destination).
	N int
	// Ks are the capacity budgets to sweep.
	Ks []int
	// Reps averages over random workloads (and random profiles where the
	// profile is random).
	Reps int
	// Profile restricts the run to one profile by name prefix
	// ("uniform", "tiered", "tor", "powerlaw"); empty runs all.
	Profile string
	Seed    int64
}

// DefaultExtHetero mirrors the Fig. 6 setup.
func DefaultExtHetero() ExtHeteroConfig {
	return ExtHeteroConfig{N: 256, Ks: []int{1, 2, 4, 8, 16, 32, 64}, Reps: 10, Seed: 12}
}

// QuickExtHetero is a reduced instance for tests.
func QuickExtHetero() ExtHeteroConfig {
	return ExtHeteroConfig{N: 64, Ks: []int{1, 4, 8, 16}, Reps: 2, Seed: 12}
}

// heteroProfile is one capacity profile of the sweep. The salt keys the
// profile's private rng stream (see ExtHetero), so a run filtered to one
// profile reproduces exactly the series of the full sweep.
type heteroProfile struct {
	name  string
	salt  int64
	build func(t *topology.Tree, rng *rand.Rand) []int
}

// heteroProfiles names the capacity profiles the experiment compares.
// The random profiles re-draw per rep from their salted stream.
func heteroProfiles() []heteroProfile {
	return []heteroProfile{
		{"uniform(1)", 1, func(t *topology.Tree, _ *rand.Rand) []int {
			return topology.CapsUniform(t, 1)
		}},
		{"tiered(1,2,4)", 2, func(t *topology.Tree, _ *rand.Rand) []int {
			return topology.CapsTiered(t, 1, 2, 4)
		}},
		{"tor-only(p=0.5,c=2)", 3, func(t *topology.Tree, rng *rand.Rand) []int {
			return topology.CapsTorOnly(t, 2, 0.5, rng)
		}},
		{"powerlaw(max=8,α=2.5)", 4, func(t *topology.Tree, rng *rand.Rand) []int {
			return topology.CapsPowerLaw(t, 8, 2.5, rng)
		}},
	}
}

// ExtHetero sweeps the budget under heterogeneous capacity profiles:
// for each profile, SOAR's optimal utilization (normalized to all-red)
// as a function of k when a blue at v consumes caps[v] budget units.
// The uniform(1) series is the paper's model and lower-bounds the
// others at every k; the gap is the price of deploying on a
// heterogeneously provisioned fabric.
func ExtHetero(cfg ExtHeteroConfig) (*Figure, error) {
	tr, err := topology.BT(cfg.N)
	if err != nil {
		return nil, err
	}
	profiles := heteroProfiles()
	if cfg.Profile != "" {
		kept := profiles[:0]
		for _, p := range profiles {
			if strings.HasPrefix(p.name, cfg.Profile) {
				kept = append(kept, p)
			}
		}
		if len(kept) == 0 {
			return nil, fmt.Errorf("ext-hetero: unknown capacity profile %q (want a prefix of uniform, tiered, tor-only or powerlaw)", cfg.Profile)
		}
		profiles = kept
	}

	fig := &Figure{
		ID:    "ext-hetero",
		Title: fmt.Sprintf("Extension: heterogeneous per-switch capacities on BT(%d) (follow-up paper's deployment mixes)", cfg.N),
	}
	xs := make([]float64, len(cfg.Ks))
	for i, k := range cfg.Ks {
		xs[i] = float64(k)
	}
	sp := Subplot{
		Name:   "SOAR utilization by capacity profile",
		XLabel: "budget k (capacity units)",
		YLabel: "utilization (vs all-red)",
	}
	accs := make([]*stats.Accumulator, len(profiles))
	for i := range accs {
		accs[i] = stats.NewAccumulator(len(cfg.Ks))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for rep := 0; rep < cfg.Reps; rep++ {
		loads := load.Generate(tr, load.PaperPowerLaw(), load.LeavesOnly, rng)
		allRed := reduce.Utilization(tr, loads, make([]bool, tr.N()))
		for pi, p := range profiles {
			// Each (profile, rep) draws from its own derived stream:
			// filtering profiles away never shifts another's capacities.
			caps := p.build(tr, rand.New(rand.NewSource(cfg.Seed+p.salt*1009+int64(rep)*31)))
			row := make([]float64, len(cfg.Ks))
			for ki, k := range cfg.Ks {
				row[ki] = core.SolveCaps(tr, loads, caps, k).Cost / allRed
			}
			accs[pi].Add(row)
		}
	}
	for pi, p := range profiles {
		sp.Series = append(sp.Series, Series{Label: p.name, X: xs, Y: accs[pi].Mean(), Err: accs[pi].StdErr()})
	}
	fig.Subplots = append(fig.Subplots, sp)
	return fig, nil
}
