package core

import (
	"math/rand"
	"testing"

	"soar/internal/load"
	"soar/internal/topology"
)

// requireTablesBitwise fails unless got's tables match want's exactly —
// every X cell, every color flag, over every (v, ℓ ≤ Depth(v), i ≤ k).
// The memoized engines alias class tables, so "close enough" is not the
// contract: aliasing is only sound when the values are identical.
func requireTablesBitwise(t *testing.T, label string, tr *topology.Tree, got, want *Tables, k int) {
	t.Helper()
	for v := 0; v < tr.N(); v++ {
		for l := 0; l <= tr.Depth(v); l++ {
			for i := 0; i <= k; i++ {
				if got.X(v, l, i) != want.X(v, l, i) {
					t.Fatalf("%s: X_%d(%d,%d) = %v, want %v", label, v, l, i, got.X(v, l, i), want.X(v, l, i))
				}
				if got.Blue(v, l, i) != want.Blue(v, l, i) {
					t.Fatalf("%s: Blue_%d(%d,%d) = %v, want %v", label, v, l, i, got.Blue(v, l, i), want.Blue(v, l, i))
				}
			}
		}
	}
}

// requirePlacementBitwise fails unless both engines pick the identical
// blue set at the identical cost.
func requirePlacementBitwise(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.Cost != want.Cost {
		t.Fatalf("%s: φ=%v, want %v", label, got.Cost, want.Cost)
	}
	for v := range want.Blue {
		if got.Blue[v] != want.Blue[v] {
			t.Fatalf("%s: placement differs at switch %d", label, v)
		}
	}
}

// TestMemoMatchesGatherRandom drives every memoized engine — serial,
// class-parallel, compact and incremental — over randomized instances,
// cold and warm, and requires bitwise-identical tables and placements
// against the plain engines.
func TestMemoMatchesGatherRandom(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		tr, loads, avail, k := randomInstance(int64(1000+trial), 40, 8)
		want := Gather(tr, loads, avail, k)
		wantRes := Solve(tr, loads, avail, k)
		m := NewMemo(tr)
		for rep := 0; rep < 2; rep++ { // rep 0 cold, rep 1 warm
			tbm := GatherMemo(m, loads, avail, k)
			requireTablesBitwise(t, "memo", tr, tbm, want, k)
			blue, cost := ColorPhase(tbm)
			requirePlacementBitwise(t, "memo color", Result{Blue: blue, Cost: cost}, wantRes)

			par := GatherParallelMemo(m, loads, avail, k, 4)
			requireTablesBitwise(t, "parallel memo", tr, par, want, k)
			requirePlacementBitwise(t, "parallel memo solve", SolveParallelMemo(m, loads, avail, k, 4), wantRes)

			requirePlacementBitwise(t, "compact memo", SolveCompactMemo(m, loads, avail, k), wantRes)
		}

		// Incremental memo mode: random update batches, checked against a
		// from-scratch Gather after every flush.
		inc := NewIncrementalMemo(m, loads, avail, k)
		rng := rand.New(rand.NewSource(int64(5000 + trial)))
		cur := append([]int(nil), loads...)
		curAvail := append([]bool(nil), avail...)
		for step := 0; step < 6; step++ {
			for b := 1 + rng.Intn(3); b > 0; b-- {
				v := rng.Intn(tr.N())
				if rng.Intn(2) == 0 {
					cur[v] = rng.Intn(6)
					inc.SetLoad(v, cur[v])
				} else {
					curAvail[v] = !curAvail[v]
					inc.SetAvail(v, curAvail[v])
				}
			}
			got := inc.Solve()
			ref := Solve(tr, cur, curAvail, k)
			requirePlacementBitwise(t, "incremental memo", got, ref)
			requireTablesBitwise(t, "incremental memo tables", tr, inc.Tables(), Gather(tr, cur, curAvail, k), k)
		}
	}
}

// TestMemoCapsMatchesGatherCaps is the capacity-vector counterpart.
func TestMemoCapsMatchesGatherCaps(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		tr, loads, _, k := randomInstance(int64(2000+trial), 35, 8)
		rng := rand.New(rand.NewSource(int64(3000 + trial)))
		caps := make([]int, tr.N())
		for v := range caps {
			caps[v] = rng.Intn(4) // includes 0 = unavailable
		}
		want := GatherCaps(tr, loads, caps, k)
		wantRes := SolveCaps(tr, loads, caps, k)
		m := NewMemo(tr)
		for rep := 0; rep < 2; rep++ {
			tbm := GatherMemoCaps(m, loads, caps, k)
			requireTablesBitwise(t, "memo caps", tr, tbm, want, k)
			requirePlacementBitwise(t, "memo caps solve", SolveMemoCaps(m, loads, caps, k), wantRes)
			requireTablesBitwise(t, "parallel memo caps", tr, GatherParallelMemoCaps(m, loads, caps, k, 3), want, k)
			requirePlacementBitwise(t, "compact memo caps", SolveCompactMemoCaps(m, loads, caps, k), wantRes)
		}
		inc := NewIncrementalMemoCaps(m, loads, caps, k)
		for step := 0; step < 4; step++ {
			v := rng.Intn(tr.N())
			caps[v] = rng.Intn(4)
			inc.SetCap(v, caps[v])
			loads[v] = rng.Intn(6)
			inc.SetLoad(v, loads[v])
			requirePlacementBitwise(t, "incremental memo caps", inc.Solve(), SolveCaps(tr, loads, caps, k))
		}
	}
}

// TestMemoClassCollapse pins the headline collapse: on a complete binary
// tree with identical leaf loads every level is one equivalence class,
// so the memo computes exactly levels tables for the whole solve.
func TestMemoClassCollapse(t *testing.T) {
	tr := topology.MustBT(256) // 255 switches, 8 levels
	loads := make([]int, tr.N())
	for _, v := range tr.Leaves() {
		loads[v] = 5
	}
	m := NewMemo(tr)
	tbm := GatherMemo(m, loads, nil, 16)
	st := m.Stats()
	if st.Classes != 8 {
		t.Fatalf("BT(256) uniform load interned %d classes, want 8 (one per level)", st.Classes)
	}
	if st.Misses != 8 {
		t.Fatalf("%d misses, want 8", st.Misses)
	}
	requireTablesBitwise(t, "collapse", tr, tbm, Gather(tr, loads, nil, 16), 16)

	// Warm solve: zero new classes, zero new misses.
	GatherMemo(m, loads, nil, 16)
	if st2 := m.Stats(); st2.Misses != st.Misses {
		t.Fatalf("warm solve missed %d times", st2.Misses-st.Misses)
	}
}

// TestMemoZeroLoadSharing verifies the sparse fast path: every zero-load
// subtree's table is served from the single shared all-zero slab, across
// the serial, parallel and incremental memoized engines.
func TestMemoZeroLoadSharing(t *testing.T) {
	tr := topology.MustBT(64) // 63 switches
	loads := make([]int, tr.N())
	leaves := tr.Leaves()
	loads[leaves[0]] = 7 // exactly one loaded leaf; most subtrees are empty
	m := NewMemo(tr)

	subLoad := tr.SubtreeLoads(loads)
	engines := map[string]*Tables{
		"serial":      GatherMemo(m, loads, nil, 4),
		"parallel":    GatherParallelMemo(m, loads, nil, 4, 3),
		"incremental": NewIncrementalMemo(m, loads, nil, 4).Tables(),
	}
	base := &m.zeroX[0]
	for name, tb := range engines {
		zeros := 0
		for v := 0; v < tr.N(); v++ {
			if subLoad[v] != 0 {
				continue
			}
			zeros++
			if &tb.nodes[v].x[0] != base {
				t.Fatalf("%s: zero-load switch %d does not alias the shared zero slab", name, v)
			}
			if tb.nodes[v].splits != nil && &tb.nodes[v].splits[0][0] != &m.zeroSplits[0] {
				t.Fatalf("%s: zero-load switch %d has private split storage", name, v)
			}
		}
		if zeros == 0 {
			t.Fatal("instance has no zero-load subtrees; test is vacuous")
		}
	}

	// And the sparse instance still solves bitwise-identically.
	requireTablesBitwise(t, "sparse", tr, engines["serial"], Gather(tr, loads, nil, 4), 4)
}

// TestMemoEvictionKeepsCorrectness forces an eviction on every solve
// (1-byte budget) and checks both the stateless and the stateful paths
// survive the epoch changes bitwise.
func TestMemoEvictionKeepsCorrectness(t *testing.T) {
	tr, loads, avail, k := randomInstance(42, 30, 6)
	m := NewMemo(tr)
	m.SetBudget(1)
	want := Gather(tr, loads, avail, k)
	for rep := 0; rep < 3; rep++ {
		requireTablesBitwise(t, "evicting memo", tr, GatherMemo(m, loads, avail, k), want, k)
	}
	if m.Stats().Epoch == 0 {
		t.Fatal("budget of 1 byte never triggered an eviction")
	}

	inc := NewIncrementalMemo(m, loads, avail, k)
	rng := rand.New(rand.NewSource(7))
	cur := append([]int(nil), loads...)
	for step := 0; step < 8; step++ {
		v := rng.Intn(tr.N())
		cur[v] = rng.Intn(6)
		inc.SetLoad(v, cur[v])
		// Interleave stateless solves so the epoch advances between the
		// engine's flushes.
		GatherMemo(m, cur, avail, k)
		requirePlacementBitwise(t, "incremental across evictions", inc.Solve(), Solve(tr, cur, avail, k))
	}
}

// TestMemoAcrossBudgets shares one memo across solves with different k:
// the class tuples carry the effective budgets, so cross-k reuse is
// sound — and observable where the clamp makes tables k-independent.
func TestMemoAcrossBudgets(t *testing.T) {
	tr, loads, avail, _ := randomInstance(99, 30, 0)
	m := NewMemo(tr)
	for _, k := range []int{0, 3, 7, 3, 30} {
		requireTablesBitwise(t, "cross-k", tr, GatherMemo(m, loads, avail, k), Gather(tr, loads, avail, k), k)
	}
	st := m.Stats()
	if st.Hits == 0 {
		t.Fatal("re-solving at a previously seen budget produced no cache hits")
	}
}

// TestGatherMemoWarmAllocs bounds the warm-path allocations: a fully
// warm solve allocates only the per-solve bookkeeping (the Tables
// wrapper, the node alias array, class ids, subtree loads, caps), never
// per-switch table storage.
func TestGatherMemoWarmAllocs(t *testing.T) {
	tr := topology.MustBT(256)
	loads := load.Generate(tr, load.PaperPowerLaw(), load.LeavesOnly, rand.New(rand.NewSource(3)))
	m := NewMemo(tr)
	GatherMemo(m, loads, nil, 16) // warm
	allocs := testing.AllocsPerRun(10, func() {
		GatherMemo(m, loads, nil, 16)
	})
	if allocs > 8 {
		t.Fatalf("warm GatherMemo allocates %v objects per solve, want ≤ 8 (O(1) bookkeeping)", allocs)
	}
}
