package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("mean %v, want 5", m)
	}
	if s := Std(xs); math.Abs(s-2.138) > 0.01 {
		t.Fatalf("std %v, want ≈2.138", s)
	}
	if se := StdErr(xs); math.Abs(se-2.138/math.Sqrt(8)) > 0.01 {
		t.Fatalf("stderr %v", se)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Std(nil) != 0 || StdErr(nil) != 0 {
		t.Fatal("empty input should give zeros")
	}
	if Std([]float64{3}) != 0 {
		t.Fatal("singleton std should be 0")
	}
	if Mean([]float64{3}) != 3 {
		t.Fatal("singleton mean")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Fatalf("minmax = %v, %v", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Fatal("empty minmax should be 0,0")
	}
}

func TestAccumulator(t *testing.T) {
	a := NewAccumulator(3)
	a.Add([]float64{1, 2, 3})
	a.Add([]float64{3, 2, 1})
	if a.Reps() != 2 {
		t.Fatalf("reps %d", a.Reps())
	}
	m := a.Mean()
	if m[0] != 2 || m[1] != 2 || m[2] != 2 {
		t.Fatalf("mean %v", m)
	}
	se := a.StdErr()
	if se[1] != 0 || se[0] == 0 {
		t.Fatalf("stderr %v", se)
	}
}

func TestAccumulatorCopiesInput(t *testing.T) {
	a := NewAccumulator(2)
	run := []float64{1, 2}
	a.Add(run)
	run[0] = 100
	if a.Mean()[0] != 1 {
		t.Fatal("accumulator retained caller's slice")
	}
}

func TestAccumulatorLengthMismatchPanics(t *testing.T) {
	a := NewAccumulator(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Add([]float64{1})
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // sorted: 1 2 3 4
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {1.0 / 3, 2},
		{-0.5, 1}, {1.5, 4}, // clamped
	}
	for _, tc := range cases {
		if got := Quantile(xs, tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Quantile(q=%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := Quantile(xs, 0.5); xs[0] != 4 || got != 2.5 {
		t.Fatal("Quantile must not reorder its input")
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
	if Quantile([]float64{7}, 0.99) != 7 {
		t.Fatal("singleton quantile should be the value")
	}
	sorted := []float64{1, 2, 3}
	if QuantileSorted(sorted, 0.5) != 2 {
		t.Fatal("QuantileSorted median")
	}
}

func TestPercentileHelpers(t *testing.T) {
	xs := make([]float64, 101) // 0..100: P-th percentile is P exactly
	for i := range xs {
		xs[i] = float64(i)
	}
	if P50(xs) != 50 || P95(xs) != 95 || P99(xs) != 99 {
		t.Fatalf("P50/P95/P99 = %v/%v/%v, want 50/95/99", P50(xs), P95(xs), P99(xs))
	}
}

func TestQuickQuantileBounds(t *testing.T) {
	// Any quantile lies within [min, max] and is monotone in q.
	f := func(xs []float64, q1, q2 float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		if math.IsNaN(q1) || math.IsInf(q1, 0) || math.IsNaN(q2) || math.IsInf(q2, 0) {
			return true
		}
		q1, q2 = math.Abs(math.Mod(q1, 1)), math.Abs(math.Mod(q2, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		min, max := MinMax(clean)
		v1, v2 := Quantile(clean, q1), Quantile(clean, q2)
		return v1 >= min && v2 <= max && v1 <= v2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMeanBounds(t *testing.T) {
	// Mean lies within [min, max] for any non-empty input.
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		min, max := MinMax(clean)
		m := Mean(clean)
		return m >= min-1e-6 && m <= max+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
