package cluster

import (
	"context"
	"net"
	"testing"
	"time"

	"soar/internal/topology"
	"soar/internal/wire"
)

// withListenerHook installs a listener hook for one test.
func withListenerHook(t *testing.T, hook func([]net.Listener)) {
	t.Helper()
	testListenerHook = hook
	t.Cleanup(func() { testListenerHook = nil })
}

func failureCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestRogueHelloAbortsRun(t *testing.T) {
	// A connection claiming to be a switch that is not a child must abort
	// the run with an error, never hang it. The rogue targets the root,
	// whose real children dial only after their whole subtrees finish, so
	// the rogue always wins an accept slot.
	tr := topology.MustBT(16)
	loads := make([]int, tr.N())
	for _, v := range tr.Leaves() {
		loads[v] = 2
	}
	withListenerHook(t, func(ls []net.Listener) {
		addr := ls[tr.Root()].Addr().String()
		go func() {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return
			}
			defer conn.Close()
			wire.Write(conn, &wire.Hello{Child: 9999})
			time.Sleep(time.Second)
		}()
	})
	_, err := Run(failureCtx(t), tr, loads, nil, 2)
	if err == nil {
		t.Fatal("run with rogue connection succeeded, want error")
	}
}

func TestGarbageFrameAbortsRun(t *testing.T) {
	// Raw garbage instead of a framed Hello must be rejected by the
	// decoder and fail the run.
	tr := topology.MustBT(16)
	loads := make([]int, tr.N())
	for _, v := range tr.Leaves() {
		loads[v] = 2
	}
	withListenerHook(t, func(ls []net.Listener) {
		addr := ls[tr.Root()].Addr().String()
		go func() {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return
			}
			defer conn.Close()
			conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
			time.Sleep(time.Second)
		}()
	})
	_, err := Run(failureCtx(t), tr, loads, nil, 2)
	if err == nil {
		t.Fatal("run with garbage frames succeeded, want error")
	}
}

func TestImpostorDuplicateChildAbortsRun(t *testing.T) {
	// An impostor presenting a *valid* child id gets past the Hello
	// check; when the true child also connects, the duplicate must be
	// detected and the run torn down (never two accepted identities).
	tr := topology.MustBT(16)
	loads := make([]int, tr.N())
	for _, v := range tr.Leaves() {
		loads[v] = 2
	}
	child := tr.Children(tr.Root())[0]
	withListenerHook(t, func(ls []net.Listener) {
		addr := ls[tr.Root()].Addr().String()
		go func() {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return
			}
			defer conn.Close()
			wire.Write(conn, &wire.Hello{Child: uint32(child)})
			time.Sleep(2 * time.Second)
		}()
	})
	_, err := Run(failureCtx(t), tr, loads, nil, 2)
	if err == nil {
		t.Fatal("run with impostor child succeeded, want error")
	}
}

func TestCancellationNeverHangs(t *testing.T) {
	tr := topology.MustBT(16)
	loads := make([]int, tr.N())
	for _, v := range tr.Leaves() {
		loads[v] = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, tr, loads, nil, 2)
		done <- err
	}()
	cancel()
	select {
	case <-done:
		// Either the run won the race and finished, or it errored — both
		// acceptable; hanging is not.
	case <-time.After(15 * time.Second):
		t.Fatal("Run hung after cancellation")
	}
}

func TestRunManySequential(t *testing.T) {
	// Port / goroutine leak check: repeated runs must not accumulate
	// state or deadlock.
	tr := topology.MustBT(8)
	loads := make([]int, tr.N())
	for _, v := range tr.Leaves() {
		loads[v] = 3
	}
	for i := 0; i < 25; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		res, err := Run(ctx, tr, loads, nil, 2)
		cancel()
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if res.Cost <= 0 {
			t.Fatalf("run %d: cost %v", i, res.Cost)
		}
	}
}
