package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDemo(t *testing.T) {
	if err := runDemo(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunPlaceBT(t *testing.T) {
	dot := filepath.Join(t.TempDir(), "out.dot")
	err := runPlace([]string{"-topo", "bt", "-n", "32", "-k", "4", "-dist", "uniform", "-rates", "linear", "-dot", dot})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph") {
		t.Fatal("dot file missing digraph header")
	}
}

func TestRunPlaceScaleFree(t *testing.T) {
	if err := runPlace([]string{"-topo", "sf", "-n", "60", "-k", "4", "-dist", "one", "-rates", "exp"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPlaceRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-topo", "mesh"},
		{"-topo", "bt", "-n", "31"},
		{"-dist", "gaussian"},
		{"-rates", "quadratic"},
	} {
		if err := runPlace(args); err == nil {
			t.Fatalf("runPlace(%v) succeeded, want error", args)
		}
	}
}

func TestRunExpQuickAll(t *testing.T) {
	if testing.Short() {
		t.Skip("quick figures still take a few seconds")
	}
	dir := t.TempDir()
	if err := runExp([]string{"all", "-quick", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 11 { // fig6..fig11 + 5 extensions
		t.Fatalf("wrote %d csv files, want 11", len(entries))
	}
}

func TestRunExpIncrementalEngine(t *testing.T) {
	// fig7 with -engine incremental must run (its allocators swap to the
	// stateful SOAR engine) and reject unknown engines.
	if err := runExp([]string{"fig7", "-quick", "-reps", "1", "-engine", "incremental"}); err != nil {
		t.Fatal(err)
	}
	if err := runExp([]string{"fig7", "-quick", "-engine", "warp"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestRunPlaceEngines(t *testing.T) {
	for _, engine := range []string{"full", "compact", "parallel", "distributed", "incremental", "memo"} {
		if err := runPlace([]string{"-topo", "bt", "-n", "32", "-k", "4", "-engine", engine}); err != nil {
			t.Fatalf("engine %s: %v", engine, err)
		}
	}
	if err := runPlace([]string{"-topo", "bt", "-n", "32", "-engine", "warp"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestRunExpFlagOrder(t *testing.T) {
	// Both `exp fig6 -quick` and `exp -quick fig6` must work.
	if err := runExp([]string{"fig6", "-quick", "-reps", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := runExp([]string{"-quick", "-reps", "1", "fig6"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExpUnknownFigure(t *testing.T) {
	if err := runExp([]string{"fig99", "-quick"}); err == nil {
		t.Fatal("unknown figure accepted")
	}
	if err := runExp([]string{"-quick"}); err == nil {
		t.Fatal("missing figure accepted")
	}
}

func TestRunClusterSmall(t *testing.T) {
	if err := runCluster([]string{"-n", "16", "-k", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunVerifySmall(t *testing.T) {
	if err := runVerify([]string{"-trials", "25", "-max-n", "9", "-max-k", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPlaceCapsProfiles(t *testing.T) {
	for _, spec := range []string{
		"uniform:2",
		"tiered:1,2,4",
		"tor:0.5,2",
		"powerlaw:4,2.5",
	} {
		for _, engine := range []string{"full", "compact", "parallel", "distributed", "incremental", "memo"} {
			args := []string{"-topo", "bt", "-n", "32", "-k", "6", "-engine", engine, "-caps", spec}
			if err := runPlace(args); err != nil {
				t.Fatalf("caps %q engine %s: %v", spec, engine, err)
			}
		}
	}
}

// TestRunPlaceRejectsBadCapsProfiles pins the contract that malformed
// -caps strings error out instead of panicking: the parser fronts raw
// user input for topology builders whose panics are programmer errors.
func TestRunPlaceRejectsBadCapsProfiles(t *testing.T) {
	for _, spec := range []string{
		"mesh:1",          // unknown profile
		"uniform",         // missing argument
		"uniform:-1",      // negative capacity
		"uniform:x",       // non-integer
		"tiered:",         // empty levels
		"tiered:1,-2",     // negative level
		"tiered:1,two",    // non-integer level
		"tor:1.5,2",       // fraction out of range
		"tor:0.5",         // missing capacity
		"tor:0.5,0",       // zero capacity
		"powerlaw:0,2",    // max < 1
		"powerlaw:4,0",    // alpha ≤ 0
		"powerlaw:4",      // missing alpha
		"powerlaw:4,2,9",  // too many arguments
		"uniform:999,123", // trailing garbage
	} {
		args := []string{"-topo", "bt", "-n", "32", "-k", "4", "-caps", spec}
		if err := runPlace(args); err == nil {
			t.Fatalf("caps %q accepted, want error", spec)
		}
	}
}

func TestRunSchedCapsProfile(t *testing.T) {
	err := runSched([]string{
		"-n", "32", "-k", "2", "-caps", "tor:1,2", "-tenants", "30",
		"-clients", "2", "-racks", "4", "-window", "100us", "-baseline",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := runSched([]string{"-n", "32", "-caps", "bogus:1", "-tenants", "1"}); err == nil {
		t.Fatal("bad sched -caps accepted")
	}
}

func TestRunExpHeteroQuick(t *testing.T) {
	if err := runExp([]string{"ext-hetero", "-quick", "-reps", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := runExp([]string{"ext-hetero", "-quick", "-reps", "1", "-caps", "tiered"}); err != nil {
		t.Fatal(err)
	}
	if err := runExp([]string{"ext-hetero", "-quick", "-caps", "warp"}); err == nil {
		t.Fatal("unknown exp -caps accepted")
	}
}

func TestRunSchedQuick(t *testing.T) {
	err := runSched([]string{
		"-n", "64", "-k", "4", "-capacity", "2", "-tenants", "60",
		"-clients", "4", "-racks", "4", "-window", "100us",
		"-repack-every", "2ms", "-repack-moves", "4", "-baseline",
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunSchedRejectsBadTopology(t *testing.T) {
	if err := runSched([]string{"-n", "63"}); err == nil {
		t.Fatal("non-power-of-two BT accepted")
	}
}
