// Package soar is a from-scratch Go reproduction of
//
//	Segal, Avin, Scalosub: "SOAR: Minimizing Network Utilization with
//	Bounded In-network Computing", CoNEXT 2021 (arXiv:2110.14224).
//
// Given a tree network of switches with heterogeneous link rates, a
// per-switch server load, and a budget of k in-network aggregation
// ("blue") switches, SOAR computes a placement of the k switches that
// provably minimizes the network utilization cost of a Reduce operation
// (the φ-BIC problem), in O(n·h·k²) time.
//
// This root package is a thin facade over the implementation packages:
//
//   - internal/topology: weighted tree networks and builders
//   - internal/load: the paper's load distributions
//   - internal/reduce: the Reduce simulator (message and byte complexity)
//   - internal/placement: baseline strategies and a brute-force oracle
//   - internal/core: the SOAR dynamic program (serial and distributed)
//   - internal/workload: the online multiple-workload setting
//   - internal/sched: the concurrent multi-tenant placement scheduler
//   - internal/wordcount, internal/paramserver: the two use-case models
//   - internal/wire, internal/cluster: SOAR over loopback TCP
//   - internal/experiments: regeneration of every evaluation figure
//
// Quickstart:
//
//	t := soar.CompleteBinaryTree(3)               // 7 switches
//	loads := []int{0, 0, 0, 2, 6, 5, 4}           // racks at the leaves
//	res := soar.Solve(t, loads, 2)                // place 2 aggregators
//	fmt.Println(res.Cost)                         // 20, the paper's Fig. 2d
//	fmt.Println(soar.Utilization(t, loads, res.Blue))
package soar

import (
	"math/rand"

	"soar/internal/core"
	"soar/internal/load"
	"soar/internal/placement"
	"soar/internal/reduce"
	"soar/internal/sched"
	"soar/internal/topology"
)

// Tree is a weighted tree network of switches rooted next to the
// destination server d. See internal/topology for full documentation.
type Tree = topology.Tree

// Result is an optimal φ-BIC solution: the blue set and its utilization.
type Result = core.Result

// Strategy is a blue-switch placement policy (SOAR or a baseline).
type Strategy = placement.Strategy

// NoParent marks the root in a parent vector passed to NewTree.
const NoParent = topology.NoParent

// NewTree builds a tree from a parent vector (NoParent marks the root)
// and per-edge rates ω; the root's rate is that of the (r, d) edge.
func NewTree(parent []int, omega []float64) (*Tree, error) {
	return topology.New(parent, omega)
}

// CompleteBinaryTree returns a complete binary tree network with the
// given number of levels and unit link rates.
func CompleteBinaryTree(levels int) *Tree { return topology.CompleteBinary(levels) }

// BT returns the paper's BT(n) topology (n counts the destination; the
// switch network has n−1 switches). n must be a power of two.
func BT(n int) (*Tree, error) { return topology.BT(n) }

// ScaleFreeTree returns a random preferential-attachment tree with n
// switches, the paper's SF(n) topology.
func ScaleFreeTree(n int, seed int64) *Tree {
	return topology.ScaleFree(n, rand.New(rand.NewSource(seed)))
}

// Solve places at most k aggregation switches optimally (every switch
// available).
func Solve(t *Tree, loads []int, k int) Result {
	return core.Solve(t, loads, nil, k)
}

// SolveRestricted places at most k aggregation switches optimally among
// the available set Λ.
func SolveRestricted(t *Tree, loads []int, avail []bool, k int) Result {
	return core.Solve(t, loads, avail, k)
}

// SolveCaps solves the heterogeneous-capacity generalization: switch v
// consumes caps[v] units of the budget k when selected (caps[v] = 0
// marks a plain forwarder that may never aggregate). A 0/1 vector is
// exactly SolveRestricted; caps == nil is exactly Solve. The
// capacity-profile builders (CapsUniform, CapsTiered, CapsTorOnly,
// CapsPowerLaw) generate deployment mixes; see internal/core.SolveCaps
// for the model.
func SolveCaps(t *Tree, loads []int, caps []int, k int) Result {
	return core.SolveCaps(t, loads, caps, k)
}

// Memo is a reusable solve cache for one tree: switches with provably
// identical DP inputs (isomorphic subtrees, equal loads, capacities and
// ρ-up profiles) are grouped into hash-consed equivalence classes, the
// DP runs once per class, and warm tables persist across solves. See
// internal/core for the full model and ownership rules.
type Memo = core.Memo

// NewMemo returns an empty solve cache for t. Pass it to SolveMemo,
// SolveMemoCaps or NewIncrementalMemo; reuse it across solves to keep
// the class tables warm. A Memo is not safe for concurrent use.
func NewMemo(t *Tree) *Memo { return core.NewMemo(t) }

// SolveMemo is Solve through the solve cache: on symmetric topologies
// (the paper's BT family) the Gather phase collapses from O(n) to
// O(distinct classes) node computations, and repeated solves hit warm
// tables. The placement is bitwise identical to Solve.
func SolveMemo(m *Memo, loads []int, k int) Result {
	return core.SolveMemo(m, loads, nil, k)
}

// SolveMemoCaps is SolveCaps through the solve cache; one Memo serves
// uniform and capacity-vector solves interchangeably.
func SolveMemoCaps(m *Memo, loads []int, caps []int, k int) Result {
	return core.SolveMemoCaps(m, loads, caps, k)
}

// BatchSolver solves batches of sparse instances sharing one
// availability set and budget in a single fused pass over the tree,
// against shared zero-load class tables. Placements are bitwise
// identical to per-instance Solve calls. See internal/core.BatchSolver.
type BatchSolver = core.BatchSolver

// NewBatchSolver returns a reusable batch solver over the solve cache m.
// Like the Memo it wraps, it is not safe for concurrent use.
func NewBatchSolver(m *Memo) *BatchSolver { return core.NewBatchSolver(m) }

// SolveBatch solves every load vector of the batch (every switch
// available, shared budget k) through the solve cache and returns one
// Result per instance; each is bitwise identical to the corresponding
// Solve call.
func SolveBatch(m *Memo, loads [][]int, k int) []Result {
	return core.SolveBatch(m, loads, nil, k)
}

// NewIncrementalMemo is NewIncremental backed by a shared solve cache:
// point updates re-intern only the dirtied root path, and recurring
// subtree classes are pure cache hits — the engine behind the
// scheduler's `Memo` configuration.
func NewIncrementalMemo(m *Memo, loads []int, avail []bool, k int) *Incremental {
	return core.NewIncrementalMemo(m, loads, avail, k)
}

// SolveDistributed runs SOAR as an asynchronous message-passing protocol
// (one goroutine per switch); the result is identical to Solve.
func SolveDistributed(t *Tree, loads []int, k int) Result {
	return core.SolveDistributed(t, loads, nil, k)
}

// SolveParallel runs the parallel bottom-up SOAR-Gather (the speedup the
// paper's Sec. 5.4 leaves as future work) with the given worker count
// (≤ 0 selects GOMAXPROCS); the result is identical to Solve.
func SolveParallel(t *Tree, loads []int, k, workers int) Result {
	return core.SolveParallel(t, loads, nil, k, workers)
}

// SolveCompact runs the low-memory engine: no traceback breadcrumbs are
// stored, the color phase re-derives budget splits on demand. Identical
// results to Solve with a smaller peak footprint.
func SolveCompact(t *Tree, loads []int, k int) Result {
	return core.SolveCompact(t, loads, nil, k)
}

// Incremental is a stateful SOAR engine for online settings: it keeps
// the Gather tables alive across point updates to the loads and the
// availability set, recomputing only the dirtied root paths. See
// internal/core for full documentation.
type Incremental = core.Incremental

// NewIncremental runs one full SOAR-Gather and returns a stateful
// engine supporting UpdateLoad / SetAvail point updates and repeated
// Solve calls at O(h²k²) per flushed update instead of a full O(n·h·k²)
// re-solve. avail == nil means every switch may be blue.
func NewIncremental(t *Tree, loads []int, avail []bool, k int) *Incremental {
	return core.NewIncremental(t, loads, avail, k)
}

// NewIncrementalCaps is NewIncremental under the heterogeneous capacity
// model: a blue at v consumes caps[v] budget units, and SetCap point
// updates re-tier switches online.
func NewIncrementalCaps(t *Tree, loads []int, caps []int, k int) *Incremental {
	return core.NewIncrementalCaps(t, loads, caps, k)
}

// Scheduler is the concurrent multi-tenant placement service: batched
// admissions solved on a pool of incremental engines against per-switch
// lease capacities, with background re-packing. See internal/sched for
// full documentation.
type Scheduler = sched.Scheduler

// SchedulerConfig tunes a Scheduler (capacity, workers, batching
// window, re-packing); the zero value is usable.
type SchedulerConfig = sched.Config

// Lease describes one tenant's allocation from a Scheduler.
type Lease = sched.Lease

// NewScheduler starts a placement scheduler over tree t. Callers must
// Close it.
func NewScheduler(t *Tree, cfg SchedulerConfig) *Scheduler {
	return sched.New(t, cfg)
}

// CapsUniform returns the uniform capacity profile caps[v] = c.
func CapsUniform(t *Tree, c int) []int { return topology.CapsUniform(t, c) }

// CapsTiered assigns capacities by tree level (root level first, the
// last entry extends downward) — the tiered fat-tree profile.
func CapsTiered(t *Tree, byLevel ...int) []int { return topology.CapsTiered(t, byLevel...) }

// CapsTorOnly makes only leaf (ToR) switches available: each leaf gets
// capacity c with probability p, everything else is a plain forwarder.
func CapsTorOnly(t *Tree, c int, p float64, seed int64) []int {
	return topology.CapsTorOnly(t, c, p, rand.New(rand.NewSource(seed)))
}

// CapsPowerLaw draws capacities from a bounded power law over
// {1, …, max}: many cheap switches, a heavy tail of expensive ones.
func CapsPowerLaw(t *Tree, max int, alpha float64, seed int64) []int {
	return topology.CapsPowerLaw(t, max, alpha, rand.New(rand.NewSource(seed)))
}

// Utilization returns φ(T, L, U), the paper's network utilization cost of
// a Reduce with blue set U (Eq. 1).
func Utilization(t *Tree, loads []int, blue []bool) float64 {
	return reduce.Utilization(t, loads, blue)
}

// MessageCounts returns the number of messages crossing the edge above
// each switch during the Reduce.
func MessageCounts(t *Tree, loads []int, blue []bool) []int64 {
	return reduce.MessageCounts(t, loads, blue)
}

// SOAR returns the optimal strategy as a placement.Strategy, for use
// alongside Baselines.
func SOAR() Strategy { return core.Strategy{} }

// Baselines returns the paper's contending strategies: Top, Max, Level.
func Baselines() []Strategy {
	return []Strategy{placement.Top{}, placement.Max{}, placement.Level{}}
}

// UniformLoads draws the paper's uniform leaf loads (u.a.r. on {4,5,6}).
func UniformLoads(t *Tree, seed int64) []int {
	return load.Generate(t, load.PaperUniform(), load.LeavesOnly, rand.New(rand.NewSource(seed)))
}

// PowerLawLoads draws the paper's power-law leaf loads (mean 5, support
// [1, 63]).
func PowerLawLoads(t *Tree, seed int64) []int {
	return load.Generate(t, load.PaperPowerLaw(), load.LeavesOnly, rand.New(rand.NewSource(seed)))
}
