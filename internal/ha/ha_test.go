package ha

import (
	"errors"
	"math"
	"net"
	"sort"
	"testing"
	"time"

	"soar/internal/sched"
	"soar/internal/topology"
	"soar/internal/wire"
)

// fastOpts is the aggressive-cadence option set unit tests run under.
func fastOpts() Options {
	return Options{
		Level:      1,
		Replicas:   2,
		Heartbeat:  25 * time.Millisecond,
		MissBudget: 4,
		Sched:      sched.Config{Capacity: 2},
	}
}

// podLoad builds a global dense load confined to shard si: servers on
// every leaf of the pod, count 1 + (leaf index mod 3).
func podLoad(p *Partitioning, si int) []int {
	pod := p.Shards[si].Pod
	load := make([]int, p.Tree.N())
	for i, lv := range pod.Tree.Leaves() {
		load[pod.Global[lv]] = 1 + i%3
	}
	return load
}

func TestPartitionShape(t *testing.T) {
	tr := topology.CompleteKAry(3, 4)
	p, err := Partition(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Shards) != 3 {
		t.Fatalf("partitioned into %d shards, want 3", len(p.Shards))
	}
	if p.podOf[tr.Root()] != -1 {
		t.Fatalf("root assigned to shard %d, want spine", p.podOf[tr.Root()])
	}
	covered := 0
	for v := 0; v < tr.N(); v++ {
		if p.podOf[v] >= 0 {
			covered++
		}
	}
	if covered != tr.N()-1 {
		t.Fatalf("%d switches covered, want all but the root (%d)", covered, tr.N()-1)
	}
	// Partitioning at a level holding leaves must be rejected.
	if _, err := Partition(tr, 4); err == nil {
		t.Fatal("partition below the leaves accepted")
	}
}

func TestShardOfRouting(t *testing.T) {
	tr := topology.CompleteKAry(3, 3)
	p, err := Partition(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	load := podLoad(p, 1)
	si, err := p.ShardOf(load)
	if err != nil || si != 1 {
		t.Fatalf("ShardOf = %d, %v; want 1, nil", si, err)
	}
	// Spine load rejects.
	spine := make([]int, tr.N())
	spine[tr.Root()] = 1
	if _, err := p.ShardOf(spine); !errors.Is(err, ErrCrossShard) {
		t.Fatalf("spine load: %v, want ErrCrossShard", err)
	}
	// Cross-pod load rejects.
	cross := podLoad(p, 0)
	for v, n := range podLoad(p, 2) {
		cross[v] += n
	}
	if _, err := p.ShardOf(cross); !errors.Is(err, ErrCrossShard) {
		t.Fatalf("cross-pod load: %v, want ErrCrossShard", err)
	}
	if _, err := p.ShardOf(make([]int, tr.N())); err == nil {
		t.Fatal("empty load accepted")
	}
}

// TestPartitionMatchesGlobal proves the sharding exactness claim: for
// a pod-confined load, the shard-local solve (spine capacity 0) is
// bitwise identical — Φ and blue set — to a global solve with the same
// availability mask (only the pod's switches leasable).
func TestPartitionMatchesGlobal(t *testing.T) {
	for _, tc := range []struct {
		name  string
		tree  *topology.Tree
		level int
	}{
		{"kary-3x4", topology.CompleteKAry(3, 4), 1},
		{"bt-64", topology.MustBT(64), 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Partition(tc.tree, tc.level)
			if err != nil {
				t.Fatal(err)
			}
			const cap = 2
			for _, spec := range p.Shards {
				pod := spec.Pod
				local := sched.New(pod.Tree, sched.Config{Capacities: localCaps(pod, sched.Config{Capacity: cap})})
				globalCaps := make([]int, tc.tree.N())
				for _, gv := range pod.Global[pod.Spine:] {
					globalCaps[gv] = cap
				}
				global := sched.New(tc.tree, sched.Config{Capacities: globalCaps})

				for trial := 0; trial < 4; trial++ {
					gload := podLoad(p, spec.Index)
					for i := range gload {
						if gload[i] > 0 {
							gload[i] += trial % 2
						}
					}
					k := 2 + trial
					gl, gerr := global.Place(gload, k)
					ll, lerr := local.Place(p.Localize(spec.Index, gload), k)
					if (gerr == nil) != (lerr == nil) {
						t.Fatalf("shard %d trial %d: global err %v, local err %v", spec.Index, trial, gerr, lerr)
					}
					if gerr != nil {
						continue
					}
					if math.Float64bits(gl.Phi) != math.Float64bits(ll.Phi) {
						t.Fatalf("shard %d trial %d: global Φ %x, local Φ %x", spec.Index, trial,
							math.Float64bits(gl.Phi), math.Float64bits(ll.Phi))
					}
					mapped := make([]int, len(ll.Blue))
					for i, lv := range ll.Blue {
						mapped[i] = pod.Global[lv]
					}
					sort.Ints(mapped)
					gb := append([]int(nil), gl.Blue...)
					sort.Ints(gb)
					if len(gb) != len(mapped) {
						t.Fatalf("shard %d trial %d: blue sets differ: %v vs %v", spec.Index, trial, gb, mapped)
					}
					for i := range gb {
						if gb[i] != mapped[i] {
							t.Fatalf("shard %d trial %d: blue sets differ: %v vs %v", spec.Index, trial, gb, mapped)
						}
					}
				}
				local.Close()
				global.Close()
			}
		})
	}
}

func TestGlobalIDRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		shard int
		local int64
	}{{0, 0}, {1, 1}, {7, 12345}, {1<<15 - 1, 1<<48 - 1}} {
		id := GlobalID(tc.shard, tc.local)
		s, l := SplitID(id)
		if s != tc.shard || l != tc.local {
			t.Fatalf("GlobalID(%d,%d) → SplitID = (%d,%d)", tc.shard, tc.local, s, l)
		}
	}
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicationCatchUp: a standby attaches, receives the checkpoint
// and the delta suffix, and its replayed scheduler matches the primary
// lease for lease.
func TestReplicationCatchUp(t *testing.T) {
	tr := topology.CompleteKAry(3, 3)
	cl, err := NewCluster(tr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	p := cl.Partitioning()

	var ids []int64
	for i := 0; i < 8; i++ {
		lease, err := cl.Place(podLoad(p, 0), 2)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, lease.ID)
	}
	for _, id := range ids[:3] {
		if err := cl.Release(id); err != nil {
			t.Fatal(err)
		}
	}

	sh := cl.shards[0]
	primSeq := sh.scheduler().JournalSeq()
	var sb *standby
	waitFor(t, 5*time.Second, "standby caught up", func() bool {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		for _, cand := range sh.standbys {
			_, seq, journal, _, ok := cand.state()
			if ok && seq+uint64(len(journal)) >= primSeq {
				sb = cand
				return true
			}
		}
		return false
	})

	ckpt, seq, journal, _, _ := sb.state()
	replica := sched.New(p.Shards[0].Pod.Tree, sched.Config{Capacities: localCaps(p.Shards[0].Pod, sched.Config{Capacity: 2})})
	defer replica.Close()
	if err := replay(replica, ckpt, seq, journal); err != nil {
		t.Fatal(err)
	}
	prim := sh.scheduler()
	if got, want := replica.Snapshot().Tenants, prim.Snapshot().Tenants; got != want {
		t.Fatalf("replica has %d tenants, primary %d", got, want)
	}
	for _, id := range ids[3:] {
		_, local := SplitID(id)
		pl, err := prim.Lookup(local)
		if err != nil {
			t.Fatal(err)
		}
		rl, err := replica.Lookup(local)
		if err != nil {
			t.Fatalf("replica lost lease %d: %v", local, err)
		}
		if math.Float64bits(pl.Phi) != math.Float64bits(rl.Phi) || len(pl.Blue) != len(rl.Blue) {
			t.Fatalf("lease %d diverged: primary %+v, replica %+v", local, pl, rl)
		}
	}
}

// TestFailoverPreservesLeases: crash the primary, wait for promotion,
// and verify every replicated lease survived with identical placement,
// the epoch advanced, and the crashed scheduler's late commit fences.
func TestFailoverPreservesLeases(t *testing.T) {
	tr := topology.CompleteKAry(3, 3)
	cl, err := NewCluster(tr, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	p := cl.Partitioning()

	leases := make(map[int64]*sched.Lease)
	for i := 0; i < 6; i++ {
		l, err := cl.Place(podLoad(p, 0), 2)
		if err != nil {
			t.Fatal(err)
		}
		leases[l.ID] = l
	}
	// Let replication drain before the crash so every lease survives.
	primSeq := cl.shards[0].scheduler().JournalSeq()
	waitFor(t, 5*time.Second, "replication drained", func() bool {
		cl.shards[0].mu.Lock()
		defer cl.shards[0].mu.Unlock()
		for _, sb := range cl.shards[0].standbys {
			_, seq, journal, _, ok := sb.state()
			if ok && seq+uint64(len(journal)) >= primSeq {
				return true
			}
		}
		return false
	})

	oldSch := cl.CrashPrimary(0)
	if oldSch == nil {
		t.Fatal("no primary to crash")
	}
	waitFor(t, 10*time.Second, "promotion", func() bool {
		st := cl.Status()[0]
		return st.Epoch >= 2 && st.PrimaryNode >= 0
	})

	for id, want := range leases {
		got, err := cl.Lookup(id)
		if err != nil {
			t.Fatalf("lease %d lost in failover: %v", id, err)
		}
		if math.Float64bits(got.Phi) != math.Float64bits(want.Phi) {
			t.Fatalf("lease %d Φ changed across failover", id)
		}
	}
	if err := cl.Audit(); err != nil {
		t.Fatal(err)
	}

	// The crashed incarnation must fence, and an epoch-stale (healed)
	// incarnation must bump the rejection counter. CrashPrimary fences
	// via the crashed flag; flip it back to exercise the epoch path.
	before := cl.Metrics().EpochRejections()
	if _, err := oldSch.Place(p.Localize(0, podLoad(p, 0)), 2); !errors.Is(err, ErrFenced) {
		t.Fatalf("crashed primary Place: %v, want ErrFenced", err)
	}
	cl.shards[0].mu.Lock()
	for _, inc := range cl.shards[0].retired {
		inc.crashed.Store(false)
	}
	cl.shards[0].mu.Unlock()
	if _, err := oldSch.Place(p.Localize(0, podLoad(p, 0)), 2); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-epoch primary Place: %v, want ErrFenced", err)
	}
	if after := cl.Metrics().EpochRejections(); after <= before {
		t.Fatalf("epoch rejections %d → %d, want an increase", before, after)
	}

	// The cluster keeps serving through the new primary.
	if _, err := cl.Place(podLoad(p, 0), 2); err != nil {
		t.Fatal(err)
	}
	// The replica set refills (the dead slot returns as a standby).
	waitFor(t, 10*time.Second, "standby refill", func() bool {
		return cl.Status()[0].Standbys == 2
	})
}

// TestStalePrimaryNACK: a hello advertising a higher epoch makes the
// primary self-depose and stop serving.
func TestStalePrimaryNACK(t *testing.T) {
	tr := topology.CompleteKAry(2, 3)
	opts := fastOpts()
	opts.Replicas = 1
	cl, err := NewCluster(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	st := cl.Status()[0]
	conn, err := net.Dial("tcp", st.PrimaryAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := wire.Write(conn, &wire.Epoch{Shard: 0, Epoch: st.Epoch + 5, Node: 999}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "self-depose", func() bool {
		return cl.shards[0].cur.Load().prim.deposed.Load()
	})
}
