package core

import (
	"sync"

	"soar/internal/topology"
)

// SolveDistributed runs SOAR as the paper describes it operationally
// (Sec. 4.2): as a distributed, asynchronous message-passing protocol.
// One goroutine per switch; SOAR-Gather information flows leaf-to-root
// over per-switch channels (a switch proceeds once it has heard from all
// of its children), then the destination injects (k, ℓ=1) and SOAR-Color
// assignments flow root-to-leaf. The placement and cost are identical to
// the serial Solve; the tests assert this on randomized instances.
func SolveDistributed(t *topology.Tree, load []int, avail []bool, k int) Result {
	validate(t, load, avail)
	return solveDistributed(t, load, avail, nil, k)
}

// SolveDistributedCaps is SolveDistributed under the heterogeneous
// capacity model (see SolveCaps): a blue at v consumes caps[v] budget
// units. The result is identical to SolveCaps.
func SolveDistributedCaps(t *topology.Tree, load []int, caps []int, k int) Result {
	validateCaps(t, load, caps)
	return solveDistributed(t, load, nil, caps, k)
}

func solveDistributed(t *topology.Tree, load []int, avail []bool, caps []int, k int) Result {
	if k < 0 {
		k = 0
	}
	n := t.N()
	subLoad := t.SubtreeLoads(load)
	ecaps := effectiveCaps(t, avail, caps, k) // read-only; shared by all switches

	type gatherMsg struct {
		child  int
		tables *nodeTables
	}
	type colorMsg struct {
		i, l int
	}
	upstream := make([]chan gatherMsg, n)
	downstream := make([]chan colorMsg, n)
	for v := 0; v < n; v++ {
		upstream[v] = make(chan gatherMsg, t.NumChildren(v))
		downstream[v] = make(chan colorMsg, 1)
	}
	// The destination's inbox receives the root's table, then kicks off
	// coloring by sending the budget to the root (paper Alg. 4 line 2).
	destInbox := make(chan gatherMsg, 1)

	blue := make([]bool, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for v := 0; v < n; v++ {
		go func(v int) {
			defer wg.Done()
			// --- SOAR-Gather at v: wait for all children, compute, send up.
			children := t.Children(v)
			byChild := make(map[int]*nodeTables, len(children))
			for range children {
				m := <-upstream[v]
				byChild[m.child] = m.tables
			}
			ordered := make([]*nodeTables, len(children))
			for i, c := range children {
				ordered[i] = byChild[c]
			}
			nt := newNodeStorage(t.Depth(v), ecaps[v], len(children), true)
			computeNode(t, v, load[v], subLoad[v] > 0, capAt(avail, caps, v), &nt, ordered, newScratch(k))
			if p := t.Parent(v); p == topology.NoParent {
				destInbox <- gatherMsg{child: v, tables: &nt}
			} else {
				upstream[p] <- gatherMsg{child: v, tables: &nt}
			}

			// --- SOAR-Color at v: wait for (i, ℓ*) from the parent,
			// decide the color, split the budget among the children.
			cm := <-downstream[v]
			isBlue, childBudget, childL := decide(t, &nt, v, cm.i, cm.l, nil)
			blue[v] = isBlue // distinct index per goroutine; no race
			for m, c := range children {
				downstream[c] <- colorMsg{i: childBudget[m], l: childL}
			}
		}(v)
	}

	// The destination: receive the root's table, read off the optimum,
	// and start the color phase.
	rootMsg := <-destInbox
	cost := rootMsg.tables.at(1, k)
	downstream[t.Root()] <- colorMsg{i: k, l: 1}
	wg.Wait()
	return Result{Blue: blue, Cost: cost}
}
