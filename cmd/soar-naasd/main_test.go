package main

import (
	"os"
	"path/filepath"
	"testing"

	"soar/internal/naas"
	"soar/internal/paper"
)

func TestSaveAndRestoreCheckpointFile(t *testing.T) {
	tr, loads := paper.Figure2()
	svc := naas.NewService(tr, 2)
	lease, err := svc.Place(loads, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "naas.ckpt")
	size, err := saveCheckpoint(svc, path)
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	st, err := os.Stat(path)
	if err != nil || st.Size() != size {
		t.Fatalf("checkpoint file: %v (size %d, reported %d)", err, st.Size(), size)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	svc.Close()

	fresh := naas.NewService(tr, 2)
	t.Cleanup(fresh.Close)
	if err := restoreCheckpoint(fresh, path); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if _, err := fresh.Lookup(lease.ID); err != nil {
		t.Fatalf("lease lost across the daemon restart path: %v", err)
	}
}

func TestRestoreMissingFileIsFreshStart(t *testing.T) {
	tr, _ := paper.Figure2()
	svc := naas.NewService(tr, 2)
	t.Cleanup(svc.Close)
	if err := restoreCheckpoint(svc, filepath.Join(t.TempDir(), "absent.ckpt")); err != nil {
		t.Fatalf("missing checkpoint treated as error: %v", err)
	}
}
