package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Replication frames (internal/ha) continue the numbering. A primary
// scheduler streams its state to warm standbys over this framing:
//
//	Epoch       (either direction: announce/negotiate the shard's term)
//	CkptOffer   (primary → standby: a full PR-7 checkpoint follows)
//	...raw checkpoint stream, exactly CkptOffer.Bytes bytes...
//	LeaseDelta  × many (primary → standby: one committed mutation each)
//	Heartbeat   (primary → standby: liveness + journal high-water mark)
//
// Every frame carries the shard id and the sender's epoch; receivers
// reject frames from a lower epoch by answering with their own Epoch
// frame, which fences a stale primary at the wire as well as at the
// ledger (sched.Config.Fence).
const (
	TypeHeartbeat Type = iota + 32
	TypeEpoch
	TypeCkptOffer
	TypeLeaseDelta
)

// LeaseDelta operations: one committed control-plane mutation each.
const (
	// DeltaPlace admits a tenant: full lease (blues, costs, sparse load).
	DeltaPlace uint8 = 1 + iota
	// DeltaRelease frees a lease; only ID is meaningful.
	DeltaRelease
	// DeltaMigrate re-places a live lease (the re-packer moved its
	// blues); ID, K, PhiBits and Blue are meaningful, the load is not
	// resent.
	DeltaMigrate
)

// Heartbeat is the primary's periodic liveness beacon. Seq is the
// journal high-water mark, letting standbys measure replication lag.
type Heartbeat struct {
	Shard uint32
	Epoch uint64
	Seq   uint64
}

// Type implements Message.
func (Heartbeat) Type() Type { return TypeHeartbeat }

func (h Heartbeat) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, h.Shard)
	b = binary.BigEndian.AppendUint64(b, h.Epoch)
	return binary.BigEndian.AppendUint64(b, h.Seq)
}

func (h *Heartbeat) parseBody(b []byte) error {
	if len(b) != 20 {
		return fmt.Errorf("wire: heartbeat body %d bytes, want 20", len(b))
	}
	h.Shard = binary.BigEndian.Uint32(b)
	h.Epoch = binary.BigEndian.Uint64(b[4:])
	h.Seq = binary.BigEndian.Uint64(b[12:])
	return nil
}

// Epoch announces or rejects a term. A standby opens its attachment
// with the highest epoch it has seen; a primary answers with its own.
// Either side NACKs a stale peer by sending the higher epoch it knows,
// upon which the stale primary must stop committing (self-depose).
type Epoch struct {
	Shard uint32
	Epoch uint64
	// Node identifies the sender within the shard's membership.
	Node uint32
}

// Type implements Message.
func (Epoch) Type() Type { return TypeEpoch }

func (e Epoch) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, e.Shard)
	b = binary.BigEndian.AppendUint64(b, e.Epoch)
	return binary.BigEndian.AppendUint32(b, e.Node)
}

func (e *Epoch) parseBody(b []byte) error {
	if len(b) != 16 {
		return fmt.Errorf("wire: epoch body %d bytes, want 16", len(b))
	}
	e.Shard = binary.BigEndian.Uint32(b)
	e.Epoch = binary.BigEndian.Uint64(b[4:])
	e.Node = binary.BigEndian.Uint32(b[12:])
	return nil
}

// CkptOffer precedes a checkpoint stream on standby attach: exactly
// Bytes bytes of raw checkpoint frames (CkptHeader … CkptFooter)
// follow this frame. Seq is the journal sequence the snapshot reflects;
// deltas at or below it are already folded in and must be skipped.
type CkptOffer struct {
	Shard uint32
	Epoch uint64
	Seq   uint64
	Bytes uint64
}

// Type implements Message.
func (CkptOffer) Type() Type { return TypeCkptOffer }

func (o CkptOffer) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, o.Shard)
	b = binary.BigEndian.AppendUint64(b, o.Epoch)
	b = binary.BigEndian.AppendUint64(b, o.Seq)
	return binary.BigEndian.AppendUint64(b, o.Bytes)
}

func (o *CkptOffer) parseBody(b []byte) error {
	if len(b) != 28 {
		return fmt.Errorf("wire: ckpt offer body %d bytes, want 28", len(b))
	}
	o.Shard = binary.BigEndian.Uint32(b)
	o.Epoch = binary.BigEndian.Uint64(b[4:])
	o.Seq = binary.BigEndian.Uint64(b[12:])
	o.Bytes = binary.BigEndian.Uint64(b[20:])
	return nil
}

// LeaseDelta replicates one committed mutation of the primary's control
// plane, in commit order: Seq increases by exactly one per delta, so a
// gap tells the standby it fell behind and must re-attach for a fresh
// checkpoint. Loads are sparse (switch, count) pairs like CkptTenant.
type LeaseDelta struct {
	Shard      uint32
	Epoch      uint64
	Seq        uint64
	Op         uint8
	ID         uint64
	K          uint32
	PhiBits    uint64
	AllRedBits uint64
	Blue       []uint32
	LoadV      []uint32
	LoadN      []uint32
}

// Type implements Message.
func (LeaseDelta) Type() Type { return TypeLeaseDelta }

// Phi returns the lease's utilization cost.
func (d LeaseDelta) Phi() float64 { return math.Float64frombits(d.PhiBits) }

// SetPhi stores the lease's utilization cost.
func (d *LeaseDelta) SetPhi(phi float64) { d.PhiBits = math.Float64bits(phi) }

// AllRed returns the tenant's no-aggregation utilization.
func (d LeaseDelta) AllRed() float64 { return math.Float64frombits(d.AllRedBits) }

// SetAllRed stores the tenant's no-aggregation utilization.
func (d *LeaseDelta) SetAllRed(phi float64) { d.AllRedBits = math.Float64bits(phi) }

func (d LeaseDelta) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, d.Shard)
	b = binary.BigEndian.AppendUint64(b, d.Epoch)
	b = binary.BigEndian.AppendUint64(b, d.Seq)
	b = append(b, d.Op)
	b = binary.BigEndian.AppendUint64(b, d.ID)
	b = binary.BigEndian.AppendUint32(b, d.K)
	b = binary.BigEndian.AppendUint64(b, d.PhiBits)
	b = binary.BigEndian.AppendUint64(b, d.AllRedBits)
	b = binary.BigEndian.AppendUint32(b, uint32(len(d.Blue)))
	b = binary.BigEndian.AppendUint32(b, uint32(len(d.LoadV)))
	for _, v := range d.Blue {
		b = binary.BigEndian.AppendUint32(b, v)
	}
	for i, v := range d.LoadV {
		b = binary.BigEndian.AppendUint32(b, v)
		b = binary.BigEndian.AppendUint32(b, d.LoadN[i])
	}
	return b
}

func (d *LeaseDelta) parseBody(b []byte) error {
	const fixed = 4 + 8 + 8 + 1 + 8 + 4 + 8 + 8 + 4 + 4
	if len(b) < fixed {
		return fmt.Errorf("wire: lease delta body %d bytes, want ≥ %d", len(b), fixed)
	}
	d.Shard = binary.BigEndian.Uint32(b)
	d.Epoch = binary.BigEndian.Uint64(b[4:])
	d.Seq = binary.BigEndian.Uint64(b[12:])
	d.Op = b[20]
	d.ID = binary.BigEndian.Uint64(b[21:])
	d.K = binary.BigEndian.Uint32(b[29:])
	d.PhiBits = binary.BigEndian.Uint64(b[33:])
	d.AllRedBits = binary.BigEndian.Uint64(b[41:])
	nb := uint64(binary.BigEndian.Uint32(b[49:]))
	nl := uint64(binary.BigEndian.Uint32(b[53:]))
	if d.Op < DeltaPlace || d.Op > DeltaMigrate {
		return fmt.Errorf("wire: lease delta op %d unknown", d.Op)
	}
	if 4*nb+8*nl > MaxFrame {
		return fmt.Errorf("wire: lease delta with %d blues, %d loads too large", nb, nl)
	}
	if uint64(len(b)-fixed) != 4*nb+8*nl {
		return fmt.Errorf("wire: lease delta body %d bytes for %d blues, %d loads", len(b), nb, nl)
	}
	d.Blue = make([]uint32, nb)
	for i := range d.Blue {
		d.Blue[i] = binary.BigEndian.Uint32(b[fixed+4*i:])
	}
	off := fixed + 4*int(nb)
	d.LoadV = make([]uint32, nl)
	d.LoadN = make([]uint32, nl)
	for i := range d.LoadV {
		d.LoadV[i] = binary.BigEndian.Uint32(b[off+8*i:])
		d.LoadN[i] = binary.BigEndian.Uint32(b[off+8*i+4:])
	}
	return nil
}
