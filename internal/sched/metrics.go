package sched

import (
	"sort"
	"time"

	"soar/internal/core"
	"soar/internal/obs"
	"soar/internal/stats"
)

// This file is the scheduler's observability surface. Since PR 8 the
// counters live in an obs.Registry instead of a private struct: every
// count, histogram and gauge the scheduler keeps is a registered
// family, scrapeable as Prometheus text through Registry().WriteText
// (naas serves it as GET /metrics), while the exported Metrics()
// summary keeps its exact sliding-window quantiles via latRing. The
// note* recording methods stay //soar:hotpath — obs record ops are
// atomic slot updates, so instrumentation does not cost the admission
// path its 0 allocs/op contract (bench-smoke holds the line in CI).

// latWindow is the size of the sliding latency window the quantiles are
// computed over. A power of two keeps the ring index cheap; 4096
// requests is a few seconds of traffic at the throughputs the scheduler
// sustains, which is the horizon tail-latency numbers are useful at.
const latWindow = 4096

// latRing is a fixed-size sliding window of request latencies, in
// seconds. Recording is a store and an increment — no allocation, so
// the admission fast path can afford it unconditionally. It exists
// next to the obs histograms because quantiles from fixed buckets are
// estimates; Metrics() promises exact ones over the recent window.
type latRing struct {
	buf [latWindow]float64
	n   uint64 // total recorded; buf holds the last min(n, latWindow)
}

//soar:hotpath
func (r *latRing) record(d time.Duration) {
	r.buf[r.n%latWindow] = d.Seconds()
	r.n++
}

// snapshot appends the window's values to dst and returns it.
func (r *latRing) snapshot(dst []float64) []float64 {
	n := min(r.n, latWindow)
	return append(dst, r.buf[:n]...)
}

// metrics holds the scheduler's recording handles, all registered in
// New. The handles themselves are lock-free; the latRings and
// batchMaxN are guarded by Scheduler.mu (every note* call happens
// under it, except the span records which are seqlock-safe anywhere).
type metrics struct {
	reg *obs.Registry
	tr  *obs.Trace

	placed    *obs.Counter
	released  *obs.Counter
	notFound  *obs.Counter
	conflicts *obs.Counter
	batches   *obs.Counter
	batchSize *obs.Histogram
	batchMax  *obs.Gauge

	placeSeconds   *obs.Histogram
	releaseSeconds *obs.Histogram

	repackRounds *obs.Counter
	repackMoves  *obs.Counter
	phiRecovered *obs.Gauge

	ckptSaves           *obs.Counter
	ckptBytes           *obs.Counter
	ckptSaveSeconds     *obs.Histogram
	ckptRestores        *obs.Counter
	ckptRestoreAttempts *obs.Counter
	ckptRestoreFail     *obs.Counter
	ckptReject          map[string]*obs.Counter

	opPlace, opRelease, opBatch, opSolve, opRepack obs.OpID
	opCkptEncode, opCkptValidate, opCkptInstall    obs.OpID

	placeLat   latRing
	releaseLat latRing
	batchMaxN  int

	started time.Time
}

// initMetrics registers every scheduler family in reg and interns the
// span operations in tr. Called once from New, after the worker pool
// exists (the memo gauge funcs walk it) and before any goroutine
// starts. A registry belongs to one Scheduler: registering a second
// one in the same registry panics on the duplicate families.
func (s *Scheduler) initMetrics(reg *obs.Registry, tr *obs.Trace) {
	m := &s.met
	m.reg, m.tr = reg, tr
	m.started = time.Now()

	m.placed = reg.Counter("soar_sched_admissions_total",
		"Tenants admitted (successful Place commits).", nil)
	m.released = reg.Counter("soar_sched_releases_total",
		"Leases released.", nil)
	m.notFound = reg.Counter("soar_sched_release_notfound_total",
		"Releases of unknown tenant ids.", nil)
	m.conflicts = reg.Counter("soar_sched_conflicts_total",
		"Batch placements re-solved at commit after losing a capacity race.", nil)
	m.batches = reg.Counter("soar_sched_batches_total",
		"Batches dispatched.", nil)
	m.batchSize = reg.Histogram("soar_sched_batch_size",
		"Requests coalesced per batch.", nil, obs.SizeBuckets())
	m.batchMax = reg.Gauge("soar_sched_batch_max",
		"Largest batch observed.", nil)
	m.placeSeconds = reg.Histogram("soar_sched_place_seconds",
		"Admission latency, submission to commit.", nil, obs.LatencyBuckets())
	m.releaseSeconds = reg.Histogram("soar_sched_release_seconds",
		"Release latency, submission to ledger credit.", nil, obs.LatencyBuckets())
	m.repackRounds = reg.Counter("soar_sched_repack_rounds_total",
		"Background re-packing rounds run.", nil)
	m.repackMoves = reg.Counter("soar_sched_repack_moves_total",
		"Tenants migrated by the re-packer.", nil)
	m.phiRecovered = reg.Gauge("soar_sched_repack_phi_recovered",
		"Aggregate utilization cost recovered by re-packing.", nil)

	m.ckptSaves = reg.Counter("soar_ckpt_saves_total",
		"Checkpoints encoded.", nil)
	m.ckptBytes = reg.Counter("soar_ckpt_bytes_total",
		"Checkpoint bytes written.", nil)
	m.ckptSaveSeconds = reg.Histogram("soar_ckpt_save_seconds",
		"Checkpoint snapshot-and-encode duration.", nil, obs.LatencyBuckets())
	m.ckptRestores = reg.Counter("soar_ckpt_restores_total",
		"Checkpoints restored.", nil)
	m.ckptRestoreAttempts = reg.Counter("soar_ckpt_restore_attempts_total",
		"Checkpoint restores attempted (accepted plus rejected).", nil)
	m.ckptRestoreFail = reg.Counter("soar_ckpt_restore_failures_total",
		"Checkpoint restores rejected (version, fingerprint, checksum or conservation).", nil)
	m.ckptReject = make(map[string]*obs.Counter, len(restoreRejectReasons))
	for _, reason := range restoreRejectReasons {
		m.ckptReject[reason] = reg.Counter("soar_ckpt_restore_reject_total",
			"Checkpoint restores rejected, by rejection reason.", obs.Labels{"reason": reason})
	}

	reg.CounterFunc("soar_sched_rejected_total",
		"Requests failing validation before reaching the queue.", nil,
		func() float64 { return float64(s.rejected.Load()) })
	reg.GaugeFunc("soar_sched_uptime_seconds",
		"Seconds since the scheduler started.", nil,
		func() float64 { return time.Since(m.started).Seconds() })
	reg.GaugeFunc("soar_sched_tenants",
		"Active leases.", nil,
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.leases))
		})
	reg.GaugeFunc("soar_sched_capacity_used",
		"Lease slots currently charged across all switches.", nil,
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			var used int64
			for v := 0; v < s.ledger.N(); v++ {
				used += int64(s.ledger.Used(v))
			}
			return float64(used)
		})
	reg.GaugeFunc("soar_sched_capacity_total",
		"Total lease slots across all switches.", nil,
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			var total int64
			for v := 0; v < s.ledger.N(); v++ {
				total += int64(s.ledger.Initial(v))
			}
			return float64(total)
		})

	// Memo stats aggregate over the per-worker solve caches; the reads
	// are atomic (core.Memo.Stats is documented concurrency-safe), so no
	// lock is involved at scrape time.
	reg.CounterFunc("soar_memo_hits_total",
		"Solve-cache hits across the engine pool.", nil,
		func() float64 { return float64(s.MemoStats().Hits) })
	reg.CounterFunc("soar_memo_misses_total",
		"Solve-cache misses across the engine pool.", nil,
		func() float64 { return float64(s.MemoStats().Misses) })
	reg.GaugeFunc("soar_memo_classes",
		"Hash-consed subtree classes retained across the engine pool.", nil,
		func() float64 { return float64(s.MemoStats().Classes) })
	reg.GaugeFunc("soar_memo_bytes",
		"Bytes retained by the solve caches.", nil,
		func() float64 { return float64(s.MemoStats().Bytes) })

	m.opPlace = tr.Op("sched.place")
	m.opRelease = tr.Op("sched.release")
	m.opBatch = tr.Op("sched.batch")
	m.opSolve = tr.Op("sched.solve")
	m.opRepack = tr.Op("sched.repack")
	m.opCkptEncode = tr.Op("ckpt.encode")
	m.opCkptValidate = tr.Op("ckpt.validate")
	m.opCkptInstall = tr.Op("ckpt.install")
}

// notePlace records one committed admission: span v1 is the number of
// leased switches, v2 is 1 if the placement was re-solved at commit.
//
//soar:hotpath
func (m *metrics) notePlace(t0 time.Time, blues int64, conflicted bool) {
	d := time.Since(t0)
	m.placed.Inc()
	m.placeSeconds.Observe(d.Seconds())
	m.placeLat.record(d)
	v2 := int64(0)
	if conflicted {
		v2 = 1
	}
	m.tr.Record(m.opPlace, t0, d, blues, v2)
}

// noteRelease records one release: span v1 is 1 on success, 0 for an
// unknown tenant.
//
//soar:hotpath
func (m *metrics) noteRelease(ok bool, t0 time.Time) {
	d := time.Since(t0)
	v1 := int64(0)
	if ok {
		m.released.Inc()
		v1 = 1
	} else {
		m.notFound.Inc()
	}
	m.releaseSeconds.Observe(d.Seconds())
	m.releaseLat.record(d)
	m.tr.Record(m.opRelease, t0, d, v1, 0)
}

//soar:hotpath
func (m *metrics) noteBatch(size int) {
	m.batches.Inc()
	m.batchSize.Observe(float64(size))
	if size > m.batchMaxN {
		m.batchMaxN = size
		m.batchMax.Set(float64(size))
	}
}

// noteBatchSpan records the whole batch's span: v1 is the batch size,
// v2 the number of placements solved.
//
//soar:hotpath
func (m *metrics) noteBatchSpan(t0 time.Time, size, places int) {
	m.tr.Record(m.opBatch, t0, time.Since(t0), int64(size), int64(places))
}

// noteSolve records one engine solve's span: v1 is the budget k.
//
//soar:hotpath
func (m *metrics) noteSolve(t0 time.Time, k int64) {
	m.tr.Record(m.opSolve, t0, time.Since(t0), k, 0)
}

//soar:hotpath
func (m *metrics) noteRepack(moved int, recovered float64) {
	m.repackRounds.Inc()
	m.repackMoves.Add(uint64(moved))
	m.phiRecovered.Add(recovered)
}

// Metrics is a point-in-time summary of the scheduler's request stream.
// Latency quantiles are computed over a sliding window of the most
// recent latWindow requests of each kind.
type Metrics struct {
	// Placed and Released count successful admissions and releases;
	// NotFound counts releases of unknown tenants and Rejected counts
	// requests that failed validation before reaching the queue.
	Placed, Released, NotFound, Rejected uint64
	// Conflicts counts batch placements that lost a capacity race to an
	// earlier member of their own batch and were re-solved at commit.
	Conflicts uint64
	// Batches, MeanBatch and MaxBatch describe how well the batching
	// window coalesces the request stream.
	Batches   uint64
	MeanBatch float64
	MaxBatch  int
	// PlaceP50/P95/P99 are admission latency quantiles (submission to
	// commit); ReleaseP50 is the release median.
	PlaceP50, PlaceP95, PlaceP99 time.Duration
	ReleaseP50                   time.Duration
	// PlacePerSec is the lifetime admission throughput.
	PlacePerSec float64
	// RepackRounds/RepackMoves/PhiRecovered summarize the background
	// re-packer: rounds run, tenants migrated, and the aggregate Φ
	// (network utilization cost) those migrations recovered.
	RepackRounds uint64
	RepackMoves  uint64
	PhiRecovered float64
}

// Metrics returns current request-stream statistics.
func (s *Scheduler) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{
		Placed:       s.met.placed.Value(),
		Released:     s.met.released.Value(),
		NotFound:     s.met.notFound.Value(),
		Rejected:     s.rejected.Load(),
		Conflicts:    s.met.conflicts.Value(),
		Batches:      s.met.batches.Value(),
		MaxBatch:     s.met.batchMaxN,
		RepackRounds: s.met.repackRounds.Value(),
		RepackMoves:  s.met.repackMoves.Value(),
		PhiRecovered: s.met.phiRecovered.Value(),
	}
	if m.Batches > 0 {
		m.MeanBatch = s.met.batchSize.Sum() / float64(m.Batches)
	}
	if elapsed := time.Since(s.met.started).Seconds(); elapsed > 0 {
		m.PlacePerSec = float64(m.Placed) / elapsed
	}
	lat := s.met.placeLat.snapshot(nil)
	sort.Float64s(lat)
	m.PlaceP50 = secondsToDuration(stats.QuantileSorted(lat, 0.50))
	m.PlaceP95 = secondsToDuration(stats.QuantileSorted(lat, 0.95))
	m.PlaceP99 = secondsToDuration(stats.QuantileSorted(lat, 0.99))
	rel := s.met.releaseLat.snapshot(nil)
	sort.Float64s(rel)
	m.ReleaseP50 = secondsToDuration(stats.QuantileSorted(rel, 0.50))
	return m
}

// Registry returns the scheduler's metrics registry — the one Config.Obs
// supplied, or the private registry New created. Scrape it with
// WriteText; naas serves it as GET /metrics.
func (s *Scheduler) Registry() *obs.Registry { return s.met.reg }

// Trace returns the scheduler's span ring: per-stage timings for the
// most recent operations (sched.place, sched.batch, sched.solve,
// sched.release, sched.repack, ckpt.*).
func (s *Scheduler) Trace() *obs.Trace { return s.met.tr }

// MemoStats aggregates the solve-cache statistics across the engine
// pool (the dispatcher's background solver and every worker). Safe to
// call concurrently with serving traffic: the underlying Memo counters
// are atomic. Epoch reports the largest epoch among the caches. Zero
// when memoization is off.
func (s *Scheduler) MemoStats() core.MemoStats {
	var agg core.MemoStats
	add := func(m *core.Memo) {
		if m == nil {
			return
		}
		st := m.Stats()
		agg.Classes += st.Classes
		agg.Hits += st.Hits
		agg.Misses += st.Misses
		agg.Bytes += st.Bytes
		if st.Epoch > agg.Epoch {
			agg.Epoch = st.Epoch
		}
	}
	add(s.bgSol.memo)
	for _, w := range s.workers {
		add(w.sol.memo)
	}
	return agg
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
