package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerCapClamp enforces the effective-budget clamp on DP row
// construction: a make() whose length or capacity derives from the raw
// budget k — a parameter named k, a field named k (tb.k, inc.k, m.k)
// or a K() getter — is an error. Rows must be sized from the
// EffectiveCaps/EffectiveCapsVec result (or any other function result,
// which the analyzer treats as clamped) or through a min() clamp.
//
// Taint propagates through local assignments, arithmetic, conversions
// and max(); it is cut by min() (that is the clamp) and by ordinary
// call results. The analyzer skips _test.go files — tests legitimately
// exercise the unbounded reference engine at raw k+1 — and a statement
// under a //soar:rawk comment is waived.
var AnalyzerCapClamp = &Analyzer{
	Name:      "capclamp",
	Doc:       "DP rows sized from the raw budget k instead of the effective-cap clamp",
	SkipTests: true,
	Run:       runCapClamp,
}

func runCapClamp(p *Pass) {
	for _, f := range p.Unit.Files {
		if p.isTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			cc := &capChecker{p: p, tainted: make(map[types.Object]bool)}
			cc.seedParams(fd)
			cc.propagate(fd.Body)
			cc.checkMakes(fd.Body)
		}
	}
}

type capChecker struct {
	p       *Pass
	tainted map[types.Object]bool
}

// seedParams taints integer parameters named k.
func (cc *capChecker) seedParams(fd *ast.FuncDecl) {
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if name.Name != "k" {
				continue
			}
			obj := cc.p.Unit.Info.Defs[name]
			if obj != nil && isIntegral(obj.Type()) {
				cc.tainted[obj] = true
			}
		}
	}
}

func isIntegral(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// propagate iterates assignment-based taint flow to a fixed point.
func (cc *capChecker) propagate(body *ast.BlockStmt) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := cc.p.Unit.Info.Defs[id]
				if obj == nil {
					obj = cc.p.Unit.Info.Uses[id]
				}
				if obj == nil || cc.tainted[obj] {
					continue
				}
				if cc.taintedExpr(as.Rhs[i]) {
					cc.tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}
}

// taintedExpr reports whether the expression derives from the raw
// budget. min() and ordinary call results sanitize; field reads named
// k and K() getters are sources.
func (cc *capChecker) taintedExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := cc.p.Unit.Info.Uses[e]
		return obj != nil && cc.tainted[obj]
	case *ast.SelectorExpr:
		if sel, ok := cc.p.Unit.Info.Selections[e]; ok && sel.Kind() == types.FieldVal && e.Sel.Name == "k" {
			return true
		}
		return false
	case *ast.BinaryExpr:
		return cc.taintedExpr(e.X) || cc.taintedExpr(e.Y)
	case *ast.UnaryExpr:
		return cc.taintedExpr(e.X)
	case *ast.IndexExpr:
		return cc.taintedExpr(e.X)
	case *ast.CallExpr:
		if tv, ok := cc.p.Unit.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return cc.taintedExpr(e.Args[0]) // conversions keep the taint
		}
		if bi := calleeBuiltin(cc.p.Unit.Info, e); bi != "" {
			if bi == "min" {
				return false // min() is the clamp
			}
			for _, a := range e.Args {
				if cc.taintedExpr(a) {
					return true // max(k, 0) etc. stay raw
				}
			}
			return false
		}
		if fn := calleeFunc(cc.p.Unit.Info, e); fn != nil && fn.Name() == "K" && len(e.Args) == 0 {
			return true // budget getters re-introduce the raw k
		}
		return false // other call results are treated as clamped
	default:
		return false
	}
}

// checkMakes flags make() calls sized from tainted expressions.
func (cc *capChecker) checkMakes(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || calleeBuiltin(cc.p.Unit.Info, call) != "make" {
			return true
		}
		for _, size := range call.Args[1:] {
			if !cc.taintedExpr(size) {
				continue
			}
			pos := cc.p.Module.Fset.Position(call.Pos())
			if cc.p.Module.Notes.RawkAt(pos) {
				continue
			}
			cc.p.Reportf(call.Pos(), "DP row sized from the raw budget k; size from the EffectiveCaps/EffectiveCapsVec result (or a min clamp) instead")
			break
		}
		return true
	})
}
