package sched

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"soar/internal/chaos"
	"soar/internal/cluster"
	"soar/internal/core"
	"soar/internal/load"
	"soar/internal/topology"
)

// TestChaosSoak is the PR's acceptance test: tenants churn against a
// scheduler that is repeatedly checkpointed, killed and restored from
// its own checkpoint, while a cluster protocol loop runs under injected
// transport faults. Throughout, every kill/restore cycle must pass a
// full conservation audit (no lease lost that the snapshot held, no
// switch double-committed), churners must only ever observe the benign
// errors the recovery contract allows (ErrClosed during a restart,
// ErrNotFound for a lease admitted after the snapshot), and every
// cluster answer — degraded or not — must match the serial solver
// exactly. Run it under -race; CI's chaos-soak job does.
func TestChaosSoak(t *testing.T) {
	rounds, churners := 10, 4
	if testing.Short() {
		rounds, churners = 4, 2
	}
	// SOAR_SOAK_ROUNDS scales the kill/restore cycles: nightly CI soaks
	// at 4× the per-push depth without a second copy of this test.
	if s := os.Getenv("SOAR_SOAK_ROUNDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad SOAR_SOAK_ROUNDS=%q: %v", s, err)
		}
		rounds = n
	}

	tr := topology.MustBT(64)
	cfg := Config{Capacity: 2, Workers: 4, Memo: true}

	// cur always points at the serving scheduler; kill/restore swaps it.
	var cur atomic.Pointer[Scheduler]
	cur.Store(New(tr, cfg))

	var (
		stop     = make(chan struct{})
		wg       sync.WaitGroup
		placed   atomic.Int64 // successful admissions
		released atomic.Int64 // successful releases
		lostIDs  atomic.Int64 // leases the snapshot missed (benign)
		retried  atomic.Int64 // requests bounced off a closing scheduler
	)

	// Tenant churners: place and release against whatever scheduler is
	// current, treating the two recovery-contract errors as retries.
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var ids []int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := cur.Load()
				if len(ids) > 12 || (len(ids) > 0 && rng.Intn(3) == 0) {
					id := ids[0]
					switch err := s.Release(id); {
					case err == nil:
						ids = ids[1:]
						released.Add(1)
					case errors.Is(err, ErrClosed):
						retried.Add(1) // restart in progress; retry on the successor
					case errors.Is(err, ErrNotFound):
						// The lease was admitted after the snapshot the
						// restore replayed: it is gone by contract.
						ids = ids[1:]
						lostIDs.Add(1)
					default:
						t.Errorf("churner release: %v", err)
						return
					}
					continue
				}
				loads := load.GenerateSparse(tr, load.PaperPowerLaw(), 3, rng)
				switch l, err := s.Place(loads, 1+rng.Intn(3)); {
				case err == nil:
					ids = append(ids, l.ID)
					placed.Add(1)
				case errors.Is(err, ErrClosed):
					retried.Add(1)
				default:
					t.Errorf("churner place: %v", err)
					return
				}
			}
		}(int64(100 + c))
	}

	// Cluster loop: the distributed protocol keeps answering — and
	// answering exactly — under transport faults, concurrently with the
	// control-plane kill/restore churn.
	clTree := topology.MustBT(16)
	clLoads := make([]int, clTree.N())
	for _, v := range clTree.Leaves() {
		clLoads[v] = 2
	}
	clWant := core.Solve(clTree, clLoads, nil, 2)
	wg.Add(1)
	go func() {
		defer wg.Done()
		inj := chaos.New(chaos.Config{
			Seed:     7,
			DialFail: 0.05,
			Cut:      0.05,
			Reset:    0.05,
			Delay:    0.2,
			MaxDelay: time.Millisecond,
		})
		opts := &cluster.Options{
			Dial:         inj.Dial,
			WrapListener: inj.WrapListener,
			FrameTimeout: 2 * time.Second,
			Retry:        cluster.RetryPolicy{Attempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		}
		for {
			select {
			case <-stop:
				return
			default:
			}
			res, err := cluster.RunOrFallback(context.Background(), clTree, clLoads, nil, 2, opts)
			if err != nil {
				t.Errorf("cluster under chaos: %v", err)
				return
			}
			if res.Cost != clWant.Cost {
				t.Errorf("cluster cost %v under chaos, serial %v (degraded=%v)", res.Cost, clWant.Cost, res.Degraded)
				return
			}
		}
	}()

	// Kill/restore cycles: checkpoint the serving scheduler, close it
	// mid-churn, restore a fresh one from the bytes, audit, swap it in.
	for round := 0; round < rounds; round++ {
		time.Sleep(20 * time.Millisecond) // let churn build state
		s := cur.Load()
		var buf bytes.Buffer
		if err := s.Checkpoint(&buf); err != nil {
			t.Fatalf("round %d checkpoint: %v", round, err)
		}
		s.Close() // the crash: everything after the snapshot dies with it
		next := New(tr, cfg)
		if err := next.Restore(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("round %d restore: %v", round, err)
		}
		if err := next.Audit(); err != nil {
			t.Fatalf("round %d: restored scheduler fails audit: %v", round, err)
		}
		cur.Store(next)
	}

	close(stop)
	wg.Wait()
	final := cur.Load()
	defer final.Close()
	if err := final.Audit(); err != nil {
		t.Fatalf("final audit: %v", err)
	}
	if placed.Load() == 0 || released.Load() == 0 {
		t.Fatalf("soak exercised nothing: %d placed, %d released", placed.Load(), released.Load())
	}
	t.Logf("soak: %d rounds, %d placed, %d released, %d lost to snapshots, %d bounced off restarts, %d surviving leases",
		rounds, placed.Load(), released.Load(), lostIDs.Load(), retried.Load(), final.Snapshot().Tenants)
}
