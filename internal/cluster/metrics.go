package cluster

import (
	"time"

	"soar/internal/obs"
)

// This file is the cluster runtime's observability surface. A Metrics
// carries the obs handles one deployment's runs record into: run
// outcomes and durations, per-frame send/recv counts, dial retries,
// and the RunOrFallback degradation counters that satellite operators
// actually page on. Passing one through Options.Metrics is opt-in —
// a nil *Metrics is valid everywhere and records nothing, so tests
// and one-shot CLI runs pay nothing.

// Metrics holds the cluster families registered in one obs.Registry
// plus the span ring frame timings are recorded into. Create with
// NewMetrics; share one per registry (a second NewMetrics on the same
// registry panics on the duplicate families). All record paths are
// nil-receiver-safe.
type Metrics struct {
	runs        *obs.Counter
	runErrors   *obs.Counter
	degraded    *obs.Counter
	attempts    *obs.Counter
	dialRetries *obs.Counter
	framesSent  *obs.Counter
	framesRecv  *obs.Counter
	runSeconds  *obs.Histogram

	tr                            *obs.Trace
	opRun, opDial, opSend, opRecv obs.OpID
}

// NewMetrics registers the soar_cluster_* families in reg and interns
// the cluster span operations in tr (nil gets a private 256-span
// ring). The returned Metrics is safe for concurrent use by any
// number of simultaneous runs.
func NewMetrics(reg *obs.Registry, tr *obs.Trace) *Metrics {
	if tr == nil {
		tr = obs.NewTrace(256)
	}
	m := &Metrics{tr: tr}
	m.runs = reg.Counter("soar_cluster_runs_total",
		"Distributed runs attempted.", nil)
	m.runErrors = reg.Counter("soar_cluster_run_errors_total",
		"Distributed runs failed on a transport or protocol error.", nil)
	m.degraded = reg.Counter("soar_cluster_degraded_total",
		"RunOrFallback calls answered by the local fallback solve.", nil)
	m.attempts = reg.Counter("soar_cluster_attempts_total",
		"Whole-run attempts made by RunOrFallback.", nil)
	m.dialRetries = reg.Counter("soar_cluster_dial_retries_total",
		"Parent dial attempts beyond each first try.", nil)
	m.framesSent = reg.Counter("soar_cluster_frames_total",
		"Protocol frames moved, by direction.", obs.Labels{"dir": "send"})
	m.framesRecv = reg.Counter("soar_cluster_frames_total",
		"Protocol frames moved, by direction.", obs.Labels{"dir": "recv"})
	m.runSeconds = reg.Histogram("soar_cluster_run_seconds",
		"Distributed run duration, listeners up to Reduce done.", nil, obs.LatencyBuckets())
	m.opRun = tr.Op("cluster.run")
	m.opDial = tr.Op("cluster.dial")
	m.opSend = tr.Op("cluster.send")
	m.opRecv = tr.Op("cluster.recv")
	return m
}

// Trace returns the span ring cluster frame timings land in.
func (m *Metrics) Trace() *obs.Trace {
	if m == nil {
		return nil
	}
	return m.tr
}

// Degraded returns how many RunOrFallback calls fell back to the
// local solve.
func (m *Metrics) Degraded() uint64 {
	if m == nil {
		return 0
	}
	return m.degraded.Value()
}

// noteRun records one whole run's outcome. Span v1 is the switch
// count, v2 flags failure.
func (m *Metrics) noteRun(t0 time.Time, n int, err error) {
	if m == nil {
		return
	}
	d := time.Since(t0)
	m.runs.Inc()
	m.runSeconds.Observe(d.Seconds())
	v2 := int64(0)
	if err != nil {
		m.runErrors.Inc()
		v2 = 1
	}
	m.tr.Record(m.opRun, t0, d, int64(n), v2)
}

// noteFrame records one frame exchange. Span v1 flags failure.
func (m *Metrics) noteFrame(isRecv bool, t0 time.Time, err error) {
	if m == nil {
		return
	}
	v1 := int64(0)
	if err != nil {
		v1 = 1
	}
	op := m.opSend
	if isRecv {
		op = m.opRecv
		m.framesRecv.Inc()
	} else {
		m.framesSent.Inc()
	}
	m.tr.Record(op, t0, time.Since(t0), v1, 0)
}

// noteDial records one completed dial loop: attempts beyond the first
// count as retries. Span v1 is the total attempts, v2 flags failure.
func (m *Metrics) noteDial(t0 time.Time, attempts int, err error) {
	if m == nil {
		return
	}
	if attempts > 1 {
		m.dialRetries.Add(uint64(attempts - 1))
	}
	v2 := int64(0)
	if err != nil {
		v2 = 1
	}
	m.tr.Record(m.opDial, t0, time.Since(t0), int64(attempts), v2)
}

// noteAttempts adds RunOrFallback's whole-run attempt count.
func (m *Metrics) noteAttempts(n int) {
	if m == nil {
		return
	}
	m.attempts.Add(uint64(n))
}

// noteDegraded counts one fallback to the local solve.
func (m *Metrics) noteDegraded() {
	if m == nil {
		return
	}
	m.degraded.Inc()
}
