package core

import (
	"math"

	"soar/internal/topology"
)

// SolveCompact is the low-memory variant of Solve: SOAR-Gather stores
// only the X tables (no per-child argmin breadcrumbs), and SOAR-Color
// re-derives each visited node's budget splits for the single ℓ* it is
// assigned. This trades O(Σ_v C(v)·h·cap) split storage for an extra
// O(C(v)·k²) of arithmetic per *visited* node during coloring — the
// memory/time design choice recorded in DESIGN.md and measured by
// BenchmarkGatherMemory. Results are identical to Solve.
func SolveCompact(t *topology.Tree, load []int, avail []bool, k int) Result {
	tb := GatherCompact(t, load, avail, k)
	blue, cost := ColorPhaseCompact(tb, load)
	return Result{Blue: blue, Cost: cost}
}

// SolveCompactCaps is SolveCompact under the heterogeneous capacity
// model (see SolveCaps): a blue at v consumes caps[v] budget units.
func SolveCompactCaps(t *topology.Tree, load []int, caps []int, k int) Result {
	tb := GatherCompactCaps(t, load, caps, k)
	blue, cost := ColorPhaseCompact(tb, load)
	return Result{Blue: blue, Cost: cost}
}

// GatherCompact runs SOAR-Gather without recording split breadcrumbs.
// The returned tables support X, Blue and Optimum, but ColorPhase
// requires breadcrumbs — use ColorPhaseCompact instead.
func GatherCompact(t *topology.Tree, load []int, avail []bool, k int) *Tables {
	validate(t, load, avail)
	if k < 0 {
		k = 0
	}
	return gatherSerial(t, load, avail, nil, k, false)
}

// GatherCompactCaps is GatherCompact under the heterogeneous capacity
// model.
func GatherCompactCaps(t *topology.Tree, load []int, caps []int, k int) *Tables {
	validateCaps(t, load, caps)
	if k < 0 {
		k = 0
	}
	return gatherSerial(t, load, nil, caps, k, false)
}

// ColorPhaseCompact assigns colors from breadcrumb-free tables: at every
// visited node it recomputes the Y merge rows for its single assigned ℓ*
// and walks them backwards exactly as the paper's mSplit does. Child
// tables are read through their effective caps (reads past a cap clamp
// to the last column), which reproduces the unbounded scan bitwise.
// Color feasibility needs no availability input: the tables record each
// node's capacity weight, and an infeasible blue never wins a cell.
func ColorPhaseCompact(tb *Tables, load []int) ([]bool, float64) {
	t := tb.t
	k := tb.k
	stride := k + 1
	subLoad := t.SubtreeLoads(load)
	blue := make([]bool, t.N())

	type frame struct {
		v, i, l int
	}
	stack := []frame{{t.Root(), k, 1}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v := f.v
		children := t.Children(v)
		isBlue := tb.nodes[v].blueAt(f.l, f.i)
		blue[v] = isBlue
		if len(children) == 0 {
			continue
		}

		// Rebuild Y^m rows for this node's (ℓ*, color), m = 1..C.
		rho := t.RhoUp(v, f.l)
		capw := tb.nodes[v].capw // budget a blue v consumes (1 uniform)
		bsend := 0.0
		if subLoad[v] > 0 {
			bsend = 1
		}
		rows := make([][]float64, len(children)) // rows[m-1][i] = Y^m for v's color
		childX := func(m, j int) float64 {
			nt := &tb.nodes[children[m]]
			if isBlue {
				return nt.at(1, j) // child sees ℓ = 1 below a blue v
			}
			return nt.at(f.l+1, j)
		}
		first := make([]float64, stride)
		for i := 0; i <= k; i++ {
			if isBlue {
				if i >= capw {
					first[i] = childX(0, i-capw) + rho*bsend
				} else {
					first[i] = math.Inf(1)
				}
			} else {
				first[i] = childX(0, i) + rho*float64(load[v])
			}
		}
		rows[0] = first
		for m := 1; m < len(children); m++ {
			prev := rows[m-1]
			row := make([]float64, stride)
			for i := 0; i <= k; i++ {
				best := math.Inf(1)
				for j := 0; j <= i; j++ {
					if c := prev[i-j] + childX(m, j); c < best {
						best = c
					}
				}
				row[i] = best
			}
			rows[m] = row
		}

		// mSplit (paper Alg. 4 lines 18-22), children in reverse order.
		remaining := f.i
		childL := f.l + 1
		if isBlue {
			childL = 1
		}
		for m := len(children) - 1; m >= 1; m-- {
			prev := rows[m-1]
			bestJ, bestC := 0, math.Inf(1)
			for j := 0; j <= remaining; j++ {
				if c := prev[remaining-j] + childX(m, j); c < bestC {
					bestC, bestJ = c, j
				}
			}
			stack = append(stack, frame{children[m], bestJ, childL})
			remaining -= bestJ
		}
		if isBlue {
			remaining -= capw
		}
		stack = append(stack, frame{children[0], remaining, childL})
	}
	return blue, tb.Optimum()
}
