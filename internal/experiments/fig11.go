package experiments

import (
	"math/rand"

	"soar/internal/core"
	"soar/internal/placement"
	"soar/internal/reduce"
	"soar/internal/stats"
	"soar/internal/topology"
)

// Fig11Config parameterizes the paper's Appendix B study on scale-free
// (random preferential attachment) trees with unit load at every switch.
type Fig11Config struct {
	// ExampleN is the size of the Max-vs-SOAR example (paper: SF(128)).
	ExampleN int
	// ExampleK is its budget (paper: 4 blue switches).
	ExampleK int
	// ExampleReps is how many random SF(ExampleN) instances the
	// Max-vs-SOAR comparison aggregates over. The paper shows a single
	// (favourable) instance; reporting the distribution is more honest
	// since the gap is strongly instance-dependent (see EXPERIMENTS.md).
	ExampleReps int
	// Sizes are SF network sizes for the scaling plot (paper: 2^8..2^12).
	Sizes []int
	// Reps averages over random trees (paper: 10).
	Reps int
	Seed int64
}

// DefaultFig11 reproduces the paper's setup.
func DefaultFig11() Fig11Config {
	return Fig11Config{
		ExampleN: 128, ExampleK: 4, ExampleReps: 20,
		Sizes: []int{256, 512, 1024, 2048, 4096},
		Reps:  10, Seed: 6,
	}
}

// QuickFig11 is a reduced instance for tests.
func QuickFig11() Fig11Config {
	return Fig11Config{
		ExampleN: 64, ExampleK: 3, ExampleReps: 3,
		Sizes: []int{64, 128}, Reps: 2, Seed: 6,
	}
}

// Fig11 regenerates the paper's Fig. 11: (a/b) Max-degree versus SOAR on
// one scale-free tree (the paper's instance gives 621 vs 182, a ~70%
// saving; the ratio is the reproducible claim since the tree is random),
// and (c) normalized utilization for scaled budgets on growing SF trees.
func Fig11(cfg Fig11Config) (*Figure, error) {
	fig := &Figure{ID: "fig11", Title: "SOAR on scale-free (RPA) trees, unit loads"}

	// Subplot 1: the Max-vs-SOAR comparison, aggregated over random
	// SF(ExampleN) instances (one point per instance).
	exX := make([]float64, cfg.ExampleReps)
	maxY := make([]float64, cfg.ExampleReps)
	soarY := make([]float64, cfg.ExampleReps)
	ratioY := make([]float64, cfg.ExampleReps)
	for i := 0; i < cfg.ExampleReps; i++ {
		exRng := rand.New(rand.NewSource(cfg.Seed + int64(i)))
		ex := topology.ScaleFree(cfg.ExampleN, exRng)
		loads := make([]int, ex.N())
		for v := range loads {
			loads[v] = 1
		}
		maxBlue := placement.MaxDegree{}.Place(ex, loads, nil, cfg.ExampleK)
		maxPhi := reduce.Utilization(ex, loads, maxBlue)
		soar := core.Solve(ex, loads, nil, cfg.ExampleK)
		exX[i] = float64(i)
		maxY[i] = maxPhi
		soarY[i] = soar.Cost
		ratioY[i] = soar.Cost / maxPhi
	}
	fig.Subplots = append(fig.Subplots, Subplot{
		Name:   "SF instances: max-degree vs SOAR utilization (one column per random tree)",
		XLabel: "instance",
		YLabel: "utilization",
		Series: []Series{
			{Label: "max-degree", X: exX, Y: maxY},
			{Label: "soar", X: exX, Y: soarY},
			{Label: "soar/max ratio", X: exX, Y: ratioY},
		},
	})

	// Subplot 2: scaling with k = 1%·n, log2 n, √n, plus all-blue.
	rules := budgetRules()
	sizeX := make([]float64, len(cfg.Sizes))
	for i, n := range cfg.Sizes {
		sizeX[i] = float64(n)
	}
	ruleAcc := make([]*stats.Accumulator, len(rules))
	for i := range ruleAcc {
		ruleAcc[i] = stats.NewAccumulator(len(cfg.Sizes))
	}
	allBlueAcc := stats.NewAccumulator(len(cfg.Sizes))
	for rep := 0; rep < cfg.Reps; rep++ {
		ruleRows := make([][]float64, len(rules))
		for i := range ruleRows {
			ruleRows[i] = make([]float64, len(cfg.Sizes))
		}
		blueRow := make([]float64, len(cfg.Sizes))
		for si, n := range cfg.Sizes {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*7 + int64(n)))
			tr := topology.ScaleFree(n, rng)
			l := make([]int, tr.N())
			for v := range l {
				l[v] = 1
			}
			allRed := reduce.Utilization(tr, l, make([]bool, tr.N()))
			maxK := 0
			for _, r := range rules {
				if k := r.K(n); k > maxK {
					maxK = k
				}
			}
			tb := core.Gather(tr, l, nil, maxK)
			for ri, r := range rules {
				ruleRows[ri][si] = tb.X(tr.Root(), 1, r.K(n)) / allRed
			}
			allBlue := make([]bool, tr.N())
			for i := range allBlue {
				allBlue[i] = true
			}
			blueRow[si] = reduce.Utilization(tr, l, allBlue) / allRed
		}
		for ri := range rules {
			ruleAcc[ri].Add(ruleRows[ri])
		}
		allBlueAcc.Add(blueRow)
	}
	sp := Subplot{Name: "scaling on SF(n)", XLabel: "network size", YLabel: "normalized utilization"}
	for ri, r := range rules {
		sp.Series = append(sp.Series, Series{Label: r.Name, X: sizeX, Y: ruleAcc[ri].Mean(), Err: ruleAcc[ri].StdErr()})
	}
	sp.Series = append(sp.Series, Series{Label: "all-blue", X: sizeX, Y: allBlueAcc.Mean(), Err: allBlueAcc.StdErr()})
	fig.Subplots = append(fig.Subplots, sp)
	return fig, nil
}
