// Package wire defines the binary protocol spoken between switches in the
// TCP deployment of SOAR (internal/cluster).
//
// Every message is framed as
//
//	uint32 length (big endian, of everything after this field)
//	uint8  type
//	...    type-specific body
//
// Bodies use fixed-width big-endian integers and IEEE-754 float64 bits,
// all via encoding/binary; there is no reflection or allocation beyond
// the payload slices. Frames are capped at MaxFrame to bound memory at
// the receiver regardless of what a peer sends.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// MaxFrame caps the accepted frame body size (16 MiB covers an X table
// for n = 2^20, k = 512 with a wide margin).
const MaxFrame = 16 << 20

// Type tags the messages of the protocol.
type Type uint8

// Message types exchanged on an edge, in protocol order: the child
// identifies itself (Hello), sends its DP table up (Gather), receives its
// assignment down (Color), and finally streams the Reduce result up
// (ReduceDone).
const (
	TypeHello Type = iota + 1
	TypeGather
	TypeColor
	TypeReduceDone
)

// Checkpoint frame types (checkpoint.go) continue the numbering: the
// scheduler's crash-recovery snapshots reuse this framing so one decoder
// (and one fuzz target) covers every byte the system persists or ships.
const (
	TypeCkptHeader Type = iota + 16
	TypeCkptLedger
	TypeCkptTenant
	TypeCkptFooter
)

// Message is one protocol message.
type Message interface {
	// Type returns the message's wire tag.
	Type() Type
	appendBody(b []byte) []byte
	parseBody(b []byte) error
}

// Hello is the first frame on a connection: the dialing child announces
// which switch it is.
type Hello struct {
	Child uint32
}

// Type implements Message.
func (Hello) Type() Type { return TypeHello }

func (h Hello) appendBody(b []byte) []byte {
	return binary.BigEndian.AppendUint32(b, h.Child)
}

func (h *Hello) parseBody(b []byte) error {
	if len(b) != 4 {
		return fmt.Errorf("wire: hello body %d bytes, want 4", len(b))
	}
	h.Child = binary.BigEndian.Uint32(b)
	return nil
}

// Gather carries a switch's SOAR-Gather X table to its parent: Rows =
// depth+1 values of ℓ, Cols = cap+1 budgets where cap = min(k, |T_v ∩ Λ|)
// is the sender's effective budget (core.EffectiveCaps; receivers reject
// any other width), X in row-major order.
type Gather struct {
	Child uint32
	Rows  uint32
	Cols  uint32
	X     []float64
}

// Type implements Message.
func (Gather) Type() Type { return TypeGather }

func (g Gather) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, g.Child)
	b = binary.BigEndian.AppendUint32(b, g.Rows)
	b = binary.BigEndian.AppendUint32(b, g.Cols)
	for _, x := range g.X {
		b = binary.BigEndian.AppendUint64(b, math.Float64bits(x))
	}
	return b
}

func (g *Gather) parseBody(b []byte) error {
	if len(b) < 12 {
		return fmt.Errorf("wire: gather body %d bytes, want ≥ 12", len(b))
	}
	g.Child = binary.BigEndian.Uint32(b)
	g.Rows = binary.BigEndian.Uint32(b[4:])
	g.Cols = binary.BigEndian.Uint32(b[8:])
	n := uint64(g.Rows) * uint64(g.Cols)
	if n > MaxFrame/8 {
		return fmt.Errorf("wire: gather table %dx%d too large", g.Rows, g.Cols)
	}
	if uint64(len(b)-12) != 8*n {
		return fmt.Errorf("wire: gather body %d bytes for %dx%d table", len(b), g.Rows, g.Cols)
	}
	g.X = make([]float64, n)
	for i := range g.X {
		g.X[i] = math.Float64frombits(binary.BigEndian.Uint64(b[12+8*i:]))
	}
	return nil
}

// Color carries a SOAR-Color assignment from parent to child: the number
// of blue switches to place in the child's subtree and the child's
// distance ℓ to its nearest blue ancestor (or d).
type Color struct {
	Budget uint32
	L      uint32
}

// Type implements Message.
func (Color) Type() Type { return TypeColor }

func (c Color) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, c.Budget)
	return binary.BigEndian.AppendUint32(b, c.L)
}

func (c *Color) parseBody(b []byte) error {
	if len(b) != 8 {
		return fmt.Errorf("wire: color body %d bytes, want 8", len(b))
	}
	c.Budget = binary.BigEndian.Uint32(b)
	c.L = binary.BigEndian.Uint32(b[4:])
	return nil
}

// ReduceDone reports the Reduce outcome for the subtree below an edge:
// how many messages crossed the edge and the weighted utilization
// accumulated inside the subtree (Σ msg_e·ρ(e), float64 bits).
type ReduceDone struct {
	Child    uint32
	Messages uint64
	PhiBits  uint64
}

// Type implements Message.
func (ReduceDone) Type() Type { return TypeReduceDone }

// Phi returns the subtree's accumulated utilization.
func (r ReduceDone) Phi() float64 { return math.Float64frombits(r.PhiBits) }

// SetPhi stores the subtree's accumulated utilization.
func (r *ReduceDone) SetPhi(phi float64) { r.PhiBits = math.Float64bits(phi) }

func (r ReduceDone) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, r.Child)
	b = binary.BigEndian.AppendUint64(b, r.Messages)
	return binary.BigEndian.AppendUint64(b, r.PhiBits)
}

func (r *ReduceDone) parseBody(b []byte) error {
	if len(b) != 20 {
		return fmt.Errorf("wire: reduce-done body %d bytes, want 20", len(b))
	}
	r.Child = binary.BigEndian.Uint32(b)
	r.Messages = binary.BigEndian.Uint64(b[4:])
	r.PhiBits = binary.BigEndian.Uint64(b[12:])
	return nil
}

// Write frames and writes one message.
func Write(w io.Writer, m Message) error {
	body := m.appendBody(make([]byte, 0, 64))
	if len(body)+1 > MaxFrame {
		return fmt.Errorf("wire: frame %d bytes exceeds MaxFrame", len(body)+1)
	}
	hdr := binary.BigEndian.AppendUint32(make([]byte, 0, 5), uint32(len(body)+1))
	hdr = append(hdr, byte(m.Type()))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := w.Write(body); err != nil {
		return fmt.Errorf("wire: write body: %w", err)
	}
	return nil
}

// Read reads and parses one framed message.
func Read(r io.Reader) (Message, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("wire: read header: %w", err)
	}
	length := binary.BigEndian.Uint32(hdr[:4])
	if length == 0 {
		return nil, errors.New("wire: empty frame")
	}
	if length > MaxFrame {
		return nil, fmt.Errorf("wire: frame %d bytes exceeds MaxFrame", length)
	}
	body, err := readBody(r, int(length-1))
	if err != nil {
		return nil, err
	}
	var m Message
	switch Type(hdr[4]) {
	case TypeHello:
		m = &Hello{}
	case TypeGather:
		m = &Gather{}
	case TypeColor:
		m = &Color{}
	case TypeReduceDone:
		m = &ReduceDone{}
	case TypeCkptHeader:
		m = &CkptHeader{}
	case TypeCkptLedger:
		m = &CkptLedger{}
	case TypeCkptTenant:
		m = &CkptTenant{}
	case TypeCkptFooter:
		m = &CkptFooter{}
	case TypeHeartbeat:
		m = &Heartbeat{}
	case TypeEpoch:
		m = &Epoch{}
	case TypeCkptOffer:
		m = &CkptOffer{}
	case TypeLeaseDelta:
		m = &LeaseDelta{}
	default:
		return nil, fmt.Errorf("wire: unknown message type %d", hdr[4])
	}
	if err := m.parseBody(body); err != nil {
		return nil, err
	}
	return m, nil
}

// bodyChunk bounds how much readBody allocates ahead of the bytes the
// stream actually delivers.
const bodyChunk = 64 << 10

// readBody reads an n-byte frame body, growing the buffer in bounded
// chunks: a frame header lying about its length (truncated stream,
// corrupt peer, fuzz input) costs at most one chunk of allocation, never
// the full advertised MaxFrame.
func readBody(r io.Reader, n int) ([]byte, error) {
	body := make([]byte, 0, min(n, bodyChunk))
	for len(body) < n {
		step := min(n-len(body), bodyChunk)
		off := len(body)
		body = append(body, make([]byte, step)...)
		if _, err := io.ReadFull(r, body[off:]); err != nil {
			return nil, fmt.Errorf("wire: read body: %w", err)
		}
	}
	return body, nil
}

// ReadTyped reads one message and asserts its type, a convenience for
// lockstep protocol phases.
func ReadTyped[M Message](r io.Reader) (M, error) {
	var zero M
	m, err := Read(r)
	if err != nil {
		return zero, err
	}
	typed, ok := m.(M)
	if !ok {
		return zero, fmt.Errorf("wire: got %T, want %T", m, zero)
	}
	return typed, nil
}
