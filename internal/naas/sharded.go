package naas

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"

	"soar/internal/ha"
	"soar/internal/obs"
	"soar/internal/sched"
)

// Sharded is the shard-aware routing front over a replicated control
// plane (ha.Cluster): the same tenant API as Service, but admissions
// resolve to the pod shard their load lives in and ride out failovers
// behind the cluster's routing retries. It adds the operator surface a
// replicated deployment needs:
//
//	GET /v1/shards       → {"shards": [...]} membership per shard
//	GET /metrics         → cluster families (soar_ha_*)
//	GET /metrics?shard=K → shard K's serving scheduler families
//
// The split scrape keeps exposition well-formed: every shard registers
// the same scheduler families (soar_sched_*, soar_ckpt_*, …) in its
// own per-incarnation registry, so merging them into one page would
// emit duplicate family definitions.
type Sharded struct {
	cl       *ha.Cluster
	ready    atomic.Bool
	draining atomic.Bool
}

// NewSharded fronts an already-running cluster. The front does not own
// the cluster: closing it is the caller's job, after the HTTP listener
// stops.
func NewSharded(cl *ha.Cluster) *Sharded {
	f := &Sharded{cl: cl}
	f.ready.Store(true)
	return f
}

// Cluster exposes the replicated control plane behind the front.
func (f *Sharded) Cluster() *ha.Cluster { return f.cl }

// SetDraining marks the front as shutting down: GET /v1/readyz starts
// failing so load balancers drain while in-flight admissions finish.
func (f *Sharded) SetDraining(v bool) { f.draining.Store(v) }

// Ready reports whether the front should receive new traffic.
func (f *Sharded) Ready() bool { return f.ready.Load() && !f.draining.Load() }

// ShardInfo is the wire form of one shard's membership (GET
// /v1/shards), mirroring ha.ShardStatus. PrimaryNode is -1 while the
// shard is failing over.
type ShardInfo struct {
	Index       int    `json:"index"`
	Root        int    `json:"root"`
	Epoch       uint64 `json:"epoch"`
	PrimaryNode int    `json:"primary_node"`
	PrimaryAddr string `json:"primary_addr"`
	Standbys    int    `json:"standbys"`
	Seq         uint64 `json:"seq"`
	Tenants     int    `json:"tenants"`
}

// Handler returns the front's HTTP control plane.
func (f *Sharded) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/tenants", f.handleTenants)
	mux.HandleFunc("/v1/tenants/", f.handleTenantByID)
	mux.HandleFunc("/v1/shards", f.handleShards)
	mux.HandleFunc("/v1/healthz", f.handleHealthz)
	mux.HandleFunc("/v1/readyz", f.handleReadyz)
	mux.HandleFunc("/metrics", f.handleMetrics)
	return mux
}

// shardedStatus maps a routing error to its HTTP status: a load that
// no single shard can serve is the client's problem, a shard stuck
// without a primary past the routing budget is the cluster's.
func shardedStatus(err error) int {
	switch {
	case errors.Is(err, ha.ErrCrossShard):
		return http.StatusBadRequest
	case errors.Is(err, ha.ErrNoPrimary):
		return http.StatusServiceUnavailable
	case errors.Is(err, sched.ErrNotFound):
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

func (f *Sharded) handleTenants(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req placeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	lease, err := f.cl.Place(req.Load, req.K)
	if err != nil {
		httpError(w, shardedStatus(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, toLeaseJSON(lease))
}

func (f *Sharded) handleTenantByID(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/tenants/")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad tenant id %q", idStr))
		return
	}
	switch r.Method {
	case http.MethodGet:
		lease, err := f.cl.Lookup(id)
		if err != nil {
			httpError(w, shardedStatus(err), err)
			return
		}
		writeJSON(w, http.StatusOK, toLeaseJSON(lease))
	case http.MethodDelete:
		if err := f.cl.Release(id); err != nil {
			httpError(w, shardedStatus(err), err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET or DELETE only"))
	}
}

func (f *Sharded) handleShards(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	status := f.cl.Status()
	shards := make([]ShardInfo, len(status))
	for i, st := range status {
		shards[i] = ShardInfo{
			Index: st.Index, Root: st.Root, Epoch: st.Epoch,
			PrimaryNode: st.PrimaryNode, PrimaryAddr: st.PrimaryAddr,
			Standbys: st.Standbys, Seq: st.Seq, Tenants: st.Tenants,
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"shards": shards})
}

func (f *Sharded) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (f *Sharded) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	switch {
	case f.Ready():
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	case f.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	default:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not ready"})
	}
}

// handleMetrics serves the cluster's soar_ha_* families; ?shard=K
// serves shard K's scheduler registry instead (503 mid failover, when
// the shard has no serving incarnation to scrape).
func (f *Sharded) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	reg := f.cl.Registry()
	if q := r.URL.Query().Get("shard"); q != "" {
		k, err := strconv.Atoi(q)
		if err != nil || k < 0 || k >= f.cl.Shards() {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad shard %q", q))
			return
		}
		if reg = f.cl.ShardRegistry(k); reg == nil {
			httpError(w, http.StatusServiceUnavailable, fmt.Errorf("shard %d has no serving primary", k))
			return
		}
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", obs.TextContentType)
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	buf.WriteTo(w) // best effort; the status line is already out
}
