// Package workload implements the online multiple-workload setting of the
// SOAR paper's Sec. 5.2.
//
// Workloads L_0, L_1, ... arrive one at a time; the aggregation switches
// for workload L_t must be fixed before L_{t+1} is seen. Every switch s
// has an aggregation capacity a(s) bounding the number of workloads it
// can aggregate for; a_t(s) is the residual capacity before workload t,
// and the availability set for workload t is Λ_t = {s : a_t(s) > 0}.
// Whichever strategy is used picks at most k switches from Λ_t, and the
// chosen switches have their residual capacity decremented.
package workload

import (
	"fmt"
	"math/rand"

	"soar/internal/core"
	"soar/internal/load"
	"soar/internal/placement"
	"soar/internal/reduce"
	"soar/internal/topology"
)

// Allocator tracks residual aggregation capacities across an online
// sequence of workloads for one strategy.
type Allocator struct {
	t        *topology.Tree
	strategy placement.Strategy
	k        int
	residual []int
	// inc, when non-nil, is the stateful SOAR engine backing the
	// incremental fast path: Handle patches it with load deltas and
	// availability changes instead of re-running Gather from scratch.
	inc *core.Incremental
}

// NewAllocator creates an online allocator with uniform per-switch
// capacity. capacity ≤ 0 means unlimited.
func NewAllocator(t *topology.Tree, s placement.Strategy, k, capacity int) *Allocator {
	a := &Allocator{t: t, strategy: s, k: k, residual: make([]int, t.N())}
	for v := range a.residual {
		if capacity <= 0 {
			a.residual[v] = int(^uint(0) >> 1) // effectively unlimited
		} else {
			a.residual[v] = capacity
		}
	}
	return a
}

// NewIncrementalAllocator creates an online SOAR allocator backed by a
// stateful core.Incremental engine. Placements and φ values are exactly
// those of NewAllocator(t, core.Strategy{}, k, capacity): the engine's
// tables are bitwise identical to a from-scratch Gather. The difference
// is cost: between workloads only the switches whose load changed (or
// whose capacity ran out) have their v→root table paths recomputed, so
// sparse workload diffs cost O(h²·k²) per changed switch instead of a
// full O(n·h·k²) solve.
func NewIncrementalAllocator(t *topology.Tree, k, capacity int) *Allocator {
	a := NewAllocator(t, core.Strategy{}, k, capacity)
	a.inc = core.NewIncremental(t, make([]int, t.N()), a.Available(), k)
	return a
}

// SetCapacity overrides the residual capacity of one switch; useful for
// heterogeneous deployments.
func (a *Allocator) SetCapacity(v, c int) { a.residual[v] = c }

// Residual returns the residual capacity of switch v.
func (a *Allocator) Residual(v int) int { return a.residual[v] }

// Available returns Λ_t as a boolean vector.
func (a *Allocator) Available() []bool {
	avail := make([]bool, len(a.residual))
	for v, r := range a.residual {
		avail[v] = r > 0
	}
	return avail
}

// Handle places aggregation switches for one arriving workload, charges
// their capacity, and returns the chosen blue set together with the
// workload's utilization φ.
func (a *Allocator) Handle(loads []int) (blue []bool, phi float64) {
	if len(loads) != a.t.N() {
		panic(fmt.Sprintf("workload: load has %d entries for %d switches", len(loads), a.t.N()))
	}
	if a.inc != nil {
		blue = a.placeIncremental(loads)
	} else {
		blue = a.strategy.Place(a.t, loads, a.Available(), a.k)
	}
	for v, b := range blue {
		if b {
			if a.residual[v] <= 0 {
				panic(fmt.Sprintf("workload: strategy %q picked exhausted switch %d", a.strategy.Name(), v))
			}
			a.residual[v]--
		}
	}
	return blue, reduce.Utilization(a.t, loads, blue)
}

// placeIncremental is the incremental fast path: per-workload load
// deltas become a batched UpdateLoad sweep and capacity exhaustions
// become SetAvail updates, each dirtying only the changed switches'
// root paths before one coalesced re-sweep inside Solve. A budget
// change (HandleWithBudget / RunPolicy) rebuilds the engine, since the
// DP tables are sized by k.
func (a *Allocator) placeIncremental(loads []int) []bool {
	if a.inc.K() != a.k {
		a.inc = core.NewIncremental(a.t, loads, a.Available(), a.k)
	} else {
		for v := 0; v < a.t.N(); v++ {
			a.inc.SetLoad(v, loads[v])
			a.inc.SetAvail(v, a.residual[v] > 0)
		}
	}
	return a.inc.Solve().Blue
}

// Sequence generates the paper's online workload arrival process: each
// workload is drawn from the uniform distribution or the power-law
// distribution with probability 1/2 each, loads on leaves only.
type Sequence struct {
	t       *topology.Tree
	uniform load.Distribution
	power   load.Distribution
	rng     *rand.Rand
}

// NewSequence builds the paper's 50/50 uniform/power-law arrival process.
func NewSequence(t *topology.Tree, rng *rand.Rand) *Sequence {
	return &Sequence{t: t, uniform: load.PaperUniform(), power: load.PaperPowerLaw(), rng: rng}
}

// Next draws the next workload's load vector.
func (s *Sequence) Next() []int {
	d := s.uniform
	if s.rng.Intn(2) == 1 {
		d = s.power
	}
	return load.Generate(s.t, d, load.LeavesOnly, s.rng)
}

// RunResult summarizes an online run.
type RunResult struct {
	// PerWorkload[t] is φ of workload t under the strategy's placements.
	PerWorkload []float64
	// AllRed[t] is φ of workload t with no aggregation, the normalizer.
	AllRed []float64
	// CumulativeRatio[t] = Σ_{i≤t} PerWorkload / Σ_{i≤t} AllRed, the
	// quantity the paper's Fig. 7 plots as "network utilization".
	CumulativeRatio []float64
}

// Run drives an allocator over a fixed sequence of workloads.
func Run(a *Allocator, workloads [][]int) RunResult {
	res := RunResult{
		PerWorkload:     make([]float64, len(workloads)),
		AllRed:          make([]float64, len(workloads)),
		CumulativeRatio: make([]float64, len(workloads)),
	}
	allRed := make([]bool, a.t.N())
	var sumPhi, sumRed float64
	for i, l := range workloads {
		_, phi := a.Handle(l)
		res.PerWorkload[i] = phi
		res.AllRed[i] = phiAllRed(a, l, allRed)
		sumPhi += phi
		sumRed += res.AllRed[i]
		res.CumulativeRatio[i] = sumPhi / sumRed
	}
	return res
}

func phiAllRed(a *Allocator, l []int, allRed []bool) float64 {
	return reduce.Utilization(a.t, l, allRed)
}
