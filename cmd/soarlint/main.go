// Command soarlint runs the project's static analyzer suite
// (internal/lint) over the module: immutable, hotpath, lockdiscipline
// and capclamp — the invariants DESIGN.md's "Statically-checked
// invariants" section documents. The driver is pure stdlib (go/parser
// + go/types with a source-module importer), so the module stays at
// zero external dependencies.
//
// Usage:
//
//	soarlint [-C dir] [-json] [-run analyzer[,analyzer]] [packages]
//
// Packages are ./...-style patterns relative to the module root
// (default: everything). Exit status follows the benchgate convention:
// 0 clean, 1 findings, 2 driver error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"soar/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// report is the -json document: the findings plus the module they were
// found in, so CI artifacts are self-describing.
type report struct {
	Module   string         `json:"module"`
	Findings []lint.Finding `json:"findings"`
	Count    int            `json:"count"`
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("soarlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "module root directory")
	asJSON := fs.Bool("json", false, "emit findings as JSON")
	runNames := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := selectAnalyzers(*runNames)
	if err != nil {
		fmt.Fprintf(stderr, "soarlint: %v\n", err)
		return 2
	}
	findings, err := lint.RunAnalyzers(*dir, fs.Args(), analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "soarlint: %v\n", err)
		return 2
	}
	if *asJSON {
		out := report{Module: *dir, Findings: findings, Count: len(findings)}
		if out.Findings == nil {
			out.Findings = []lint.Finding{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "soarlint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		if !*asJSON {
			fmt.Fprintf(stdout, "soarlint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// selectAnalyzers resolves a -run list against the suite.
func selectAnalyzers(names string) ([]*lint.Analyzer, error) {
	if names == "" {
		return lint.All, nil
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, a := range lint.All {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q (have: %s)", name, analyzerNames())
		}
	}
	return out, nil
}

func analyzerNames() string {
	names := make([]string, len(lint.All))
	for i, a := range lint.All {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}
