package experiments

import (
	"math/rand"

	"soar/internal/core"
	"soar/internal/load"
	"soar/internal/paramserver"
	"soar/internal/reduce"
	"soar/internal/stats"
	"soar/internal/topology"
	"soar/internal/wordcount"
)

// Fig8Config parameterizes the paper's Fig. 8: the word-count (WC) and
// parameter-server (PS) use cases on BT(N) with constant rates,
// comparing utilization complexity with byte complexity.
type Fig8Config struct {
	// N is the BT network size (paper: 256).
	N int
	// Ks are the budgets to sweep (paper plots up to 64).
	Ks []int
	// Reps averages over workloads (byte simulations dominate runtime).
	Reps int
	// WC is the synthetic corpus configuration.
	WC wordcount.Config
	// PS is the gradient configuration.
	PS   paramserver.Config
	Seed int64
}

// DefaultFig8 reproduces the paper's setup with the scaled corpus
// documented in DESIGN.md.
func DefaultFig8() Fig8Config {
	return Fig8Config{
		N:    256,
		Ks:   []int{1, 2, 4, 8, 16, 32, 64},
		Reps: 3,
		WC:   wordcount.DefaultConfig(),
		PS:   paramserver.DefaultConfig(),
		Seed: 3,
	}
}

// QuickFig8 is a reduced instance for tests and benchmarks.
func QuickFig8() Fig8Config {
	return Fig8Config{
		N:    32,
		Ks:   []int{1, 2, 4, 8},
		Reps: 1,
		WC:   wordcount.TestConfig(),
		PS:   paramserver.TestConfig(),
		Seed: 3,
	}
}

// Fig8 regenerates the paper's Fig. 8: (a) normalized utilization, (b)
// byte complexity normalized to all-red, (c) byte complexity normalized
// to all-blue — for WC and PS under both load distributions. SOAR places
// the blue switches; the byte engines replay the Reduce with real
// payloads over those placements.
func Fig8(cfg Fig8Config) (*Figure, error) {
	base, err := topology.BT(cfg.N)
	if err != nil {
		return nil, err
	}
	tr := topology.ApplyRates(base, topology.RatesConstant(1))
	type useCase struct {
		name string
		dist load.Distribution
		// distSeed keys the load stream by distribution only, so WC and
		// PS see identical workloads per distribution and their
		// utilization curves coincide exactly, as in the paper's Fig. 8a.
		distSeed int64
		agg      func(servers int, seed int64) reduce.Aggregator
	}
	cases := []useCase{
		{"WC-uniform", load.PaperUniform(), 1, func(s int, seed int64) reduce.Aggregator {
			return wordcount.NewAggregator(cfg.WC, s, seed)
		}},
		{"WC-powerlaw", load.PaperPowerLaw(), 2, func(s int, seed int64) reduce.Aggregator {
			return wordcount.NewAggregator(cfg.WC, s, seed)
		}},
		{"PS-uniform", load.PaperUniform(), 1, func(_ int, seed int64) reduce.Aggregator {
			return paramserver.NewAggregator(cfg.PS, seed)
		}},
		{"PS-powerlaw", load.PaperPowerLaw(), 2, func(_ int, seed int64) reduce.Aggregator {
			return paramserver.NewAggregator(cfg.PS, seed)
		}},
	}

	xs := make([]float64, len(cfg.Ks))
	for i, k := range cfg.Ks {
		xs[i] = float64(k)
	}
	util := Subplot{Name: "utilization (vs all-red)", XLabel: "k", YLabel: "normalized utilization"}
	bytesRed := Subplot{Name: "bytes (vs all-red)", XLabel: "k", YLabel: "normalized bytes"}
	bytesBlue := Subplot{Name: "bytes (vs all-blue)", XLabel: "k", YLabel: "bytes / all-blue bytes"}

	for _, uc := range cases {
		utilAcc := stats.NewAccumulator(len(cfg.Ks))
		redAcc := stats.NewAccumulator(len(cfg.Ks))
		blueAcc := stats.NewAccumulator(len(cfg.Ks))
		rng := rand.New(rand.NewSource(cfg.Seed + uc.distSeed*7919))
		for rep := 0; rep < cfg.Reps; rep++ {
			loads := load.Generate(tr, uc.dist, load.LeavesOnly, rng)
			servers := int(load.Total(loads))
			agg := uc.agg(servers, cfg.Seed+int64(rep))

			allRed := make([]bool, tr.N())
			allBlue := make([]bool, tr.N())
			for i := range allBlue {
				allBlue[i] = true
			}
			utilRed := reduce.Utilization(tr, loads, allRed)
			bytesAllRed := reduce.ByteComplexity(tr, loads, allRed, agg).TotalBytes
			bytesAllBlue := reduce.ByteComplexity(tr, loads, allBlue, agg).TotalBytes

			utilRow := make([]float64, len(cfg.Ks))
			redRow := make([]float64, len(cfg.Ks))
			blueRow := make([]float64, len(cfg.Ks))
			for ki, k := range cfg.Ks {
				res := core.Solve(tr, loads, nil, k)
				utilRow[ki] = res.Cost / utilRed
				b := reduce.ByteComplexity(tr, loads, res.Blue, agg).TotalBytes
				redRow[ki] = float64(b) / float64(bytesAllRed)
				blueRow[ki] = float64(b) / float64(bytesAllBlue)
			}
			utilAcc.Add(utilRow)
			redAcc.Add(redRow)
			blueAcc.Add(blueRow)
		}
		util.Series = append(util.Series, Series{Label: uc.name, X: xs, Y: utilAcc.Mean(), Err: utilAcc.StdErr()})
		bytesRed.Series = append(bytesRed.Series, Series{Label: uc.name, X: xs, Y: redAcc.Mean(), Err: redAcc.StdErr()})
		bytesBlue.Series = append(bytesBlue.Series, Series{Label: uc.name, X: xs, Y: blueAcc.Mean(), Err: blueAcc.StdErr()})
	}

	return &Figure{
		ID:       "fig8",
		Title:    "WC and PS use cases: utilization vs byte complexity",
		Subplots: []Subplot{util, bytesRed, bytesBlue},
	}, nil
}
