package sched

import (
	"sort"
	"time"

	"soar/internal/stats"
)

// latWindow is the size of the sliding latency window the quantiles are
// computed over. A power of two keeps the ring index cheap; 4096
// requests is a few seconds of traffic at the throughputs the scheduler
// sustains, which is the horizon tail-latency numbers are useful at.
const latWindow = 4096

// latRing is a fixed-size sliding window of request latencies, in
// seconds. Recording is a store and an increment — no allocation, so
// the admission fast path can afford it unconditionally.
type latRing struct {
	buf [latWindow]float64
	n   uint64 // total recorded; buf holds the last min(n, latWindow)
}

//soar:hotpath
func (r *latRing) record(d time.Duration) {
	r.buf[r.n%latWindow] = d.Seconds()
	r.n++
}

// snapshot appends the window's values to dst and returns it.
func (r *latRing) snapshot(dst []float64) []float64 {
	n := min(r.n, latWindow)
	return append(dst, r.buf[:n]...)
}

// metrics is the scheduler-internal counter state, guarded by
// Scheduler.mu.
type metrics struct {
	placed    uint64
	released  uint64
	notFound  uint64
	conflicts uint64

	batches  uint64
	batchSum uint64
	batchMax int

	placeLat   latRing
	releaseLat latRing

	repackRounds uint64
	repackMoves  uint64
	phiRecovered float64

	started time.Time
}

//soar:hotpath
func (m *metrics) notePlace(d time.Duration) {
	m.placed++
	m.placeLat.record(d)
}

//soar:hotpath
func (m *metrics) noteRelease(ok bool, d time.Duration) {
	if ok {
		m.released++
	} else {
		m.notFound++
	}
	m.releaseLat.record(d)
}

//soar:hotpath
func (m *metrics) noteBatch(size int) {
	m.batches++
	m.batchSum += uint64(size)
	if size > m.batchMax {
		m.batchMax = size
	}
}

//soar:hotpath
func (m *metrics) noteRepack(moved int, recovered float64) {
	m.repackRounds++
	m.repackMoves += uint64(moved)
	m.phiRecovered += recovered
}

// Metrics is a point-in-time summary of the scheduler's request stream.
// Latency quantiles are computed over a sliding window of the most
// recent latWindow requests of each kind.
type Metrics struct {
	// Placed and Released count successful admissions and releases;
	// NotFound counts releases of unknown tenants and Rejected counts
	// requests that failed validation before reaching the queue.
	Placed, Released, NotFound, Rejected uint64
	// Conflicts counts batch placements that lost a capacity race to an
	// earlier member of their own batch and were re-solved at commit.
	Conflicts uint64
	// Batches, MeanBatch and MaxBatch describe how well the batching
	// window coalesces the request stream.
	Batches   uint64
	MeanBatch float64
	MaxBatch  int
	// PlaceP50/P95/P99 are admission latency quantiles (submission to
	// commit); ReleaseP50 is the release median.
	PlaceP50, PlaceP95, PlaceP99 time.Duration
	ReleaseP50                   time.Duration
	// PlacePerSec is the lifetime admission throughput.
	PlacePerSec float64
	// RepackRounds/RepackMoves/PhiRecovered summarize the background
	// re-packer: rounds run, tenants migrated, and the aggregate Φ
	// (network utilization cost) those migrations recovered.
	RepackRounds uint64
	RepackMoves  uint64
	PhiRecovered float64
}

// Metrics returns current request-stream statistics.
func (s *Scheduler) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{
		Placed:       s.met.placed,
		Released:     s.met.released,
		NotFound:     s.met.notFound,
		Rejected:     s.rejected.Load(),
		Conflicts:    s.met.conflicts,
		Batches:      s.met.batches,
		MaxBatch:     s.met.batchMax,
		RepackRounds: s.met.repackRounds,
		RepackMoves:  s.met.repackMoves,
		PhiRecovered: s.met.phiRecovered,
	}
	if s.met.batches > 0 {
		m.MeanBatch = float64(s.met.batchSum) / float64(s.met.batches)
	}
	if elapsed := time.Since(s.met.started).Seconds(); elapsed > 0 {
		m.PlacePerSec = float64(s.met.placed) / elapsed
	}
	lat := s.met.placeLat.snapshot(nil)
	sort.Float64s(lat)
	m.PlaceP50 = secondsToDuration(stats.QuantileSorted(lat, 0.50))
	m.PlaceP95 = secondsToDuration(stats.QuantileSorted(lat, 0.95))
	m.PlaceP99 = secondsToDuration(stats.QuantileSorted(lat, 0.99))
	rel := s.met.releaseLat.snapshot(nil)
	sort.Float64s(rel)
	m.ReleaseP50 = secondsToDuration(stats.QuantileSorted(rel, 0.50))
	return m
}

func secondsToDuration(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
