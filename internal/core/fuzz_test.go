package core

import (
	"math"
	"testing"

	"soar/internal/reduce"
)

// FuzzSolveMatchesReference drives the table engine against the
// independent recursive reference on fuzzer-chosen instances. Run the
// corpus as a normal test with `go test`, or explore with
// `go test -fuzz FuzzSolveMatchesReference ./internal/core`.
func FuzzSolveMatchesReference(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Add(int64(1 << 40))
	f.Fuzz(func(t *testing.T, seed int64) {
		tr, loads, avail, k := randomInstance(seed, 25, 6)
		res := Solve(tr, loads, avail, k)
		want := referenceCost(tr, loads, avail, k)
		if math.Abs(res.Cost-want) > 1e-9 {
			t.Fatalf("seed %d: Solve φ=%v, reference φ=%v", seed, res.Cost, want)
		}
		if sim := reduce.Utilization(tr, loads, res.Blue); math.Abs(sim-res.Cost) > 1e-9 {
			t.Fatalf("seed %d: reported φ=%v but placement costs %v", seed, res.Cost, sim)
		}
		if got := reduce.CountBlue(res.Blue); got > k {
			t.Fatalf("seed %d: %d blue switches exceed k=%d", seed, got, k)
		}
		dist := SolveDistributed(tr, loads, avail, k)
		if math.Abs(dist.Cost-res.Cost) > 1e-9 {
			t.Fatalf("seed %d: distributed φ=%v, serial φ=%v", seed, dist.Cost, res.Cost)
		}
		// The clamped engines share tables and tie-breaking with the
		// serial DP, so placements must match bitwise, not just in cost.
		compact := SolveCompact(tr, loads, avail, k)
		inc := NewIncremental(tr, loads, avail, k).Solve()
		for v := range res.Blue {
			if compact.Blue[v] != res.Blue[v] {
				t.Fatalf("seed %d: compact placement differs at switch %d", seed, v)
			}
			if inc.Blue[v] != res.Blue[v] {
				t.Fatalf("seed %d: incremental placement differs at switch %d", seed, v)
			}
			if dist.Blue[v] != res.Blue[v] {
				t.Fatalf("seed %d: distributed placement differs at switch %d", seed, v)
			}
		}
	})
}
