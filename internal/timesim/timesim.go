// Package timesim is a discrete-event simulator for the Reduce operation
// with explicit transmission times.
//
// The paper optimizes utilization complexity — the total transmission
// time summed over links — and conjectures (Sec. 8) that placements
// minimizing it also perform well for completion time (the makespan of
// the Reduce) and for bottleneck load. This simulator makes those claims
// measurable: it executes Algorithm 1 under a store-and-forward timing
// model where each message occupies the edge above switch v for ρ(v)
// seconds, links serialize messages FIFO, red switches forward messages
// as they arrive, and blue switches wait for their subtree to complete
// before emitting their single aggregate (the waiting behaviour the
// paper's Sec. 4.4 singles out as the practical cost of aggregation).
//
// Outputs: the completion time at the destination, per-link busy time,
// and the maximum link busy time (the bottleneck). Under this model the
// sum of busy times equals φ exactly, which the tests assert.
package timesim

import (
	"container/heap"
	"fmt"

	"soar/internal/topology"
)

// Result summarizes one timed Reduce execution.
type Result struct {
	// Completion is when the destination has received everything.
	Completion float64
	// LinkBusy[v] is the total time the edge above v spends transmitting.
	LinkBusy []float64
	// Bottleneck is the maximum entry of LinkBusy.
	Bottleneck float64
	// TotalBusy is the sum of LinkBusy; equals φ(T, L, U) by construction.
	TotalBusy float64
	// Messages[v] counts messages sent on the edge above v; equals the
	// analytic MessageCounts.
	Messages []int64
}

// event is a message arriving at switch `at` at time `t`.
type event struct {
	t  float64
	at int // receiving switch, or -1 for the destination
}

type eventQueue []event

func (q eventQueue) Len() int            { return len(q) }
func (q eventQueue) Less(i, j int) bool  { return q[i].t < q[j].t }
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// state tracks one switch mid-run.
type state struct {
	pending   int64   // messages still expected from the subtree (blue only)
	freeAt    float64 // time the edge above this switch next becomes free
	buffered  int64   // messages received and waiting (blue accumulates)
	delivered int64   // messages already pushed upward
}

// Run executes the Reduce of Algorithm 1 with timing. Servers inject
// their messages at time 0 at their switch. A red switch starts
// transmitting a message upward as soon as it arrives and the edge is
// free; a blue switch waits for its entire expected input (its load plus
// one message per loaded child subtree, recursively resolved), then
// sends a single message.
func Run(t *topology.Tree, load []int, blue []bool) Result {
	if len(load) != t.N() || len(blue) != t.N() {
		panic(fmt.Sprintf("timesim: tree has %d switches, load %d, blue %d",
			t.N(), len(load), len(blue)))
	}
	n := t.N()
	res := Result{
		LinkBusy: make([]float64, n),
		Messages: make([]int64, n),
	}
	// expected[v]: how many messages switch v will see in total (its own
	// load plus what each child forwards upward over the whole run).
	// Computed bottom-up from the coloring, mirroring reduce.MessageCounts.
	out := make([]int64, n) // messages each switch sends upward in total
	expected := make([]int64, n)
	for _, v := range t.PostOrder() {
		in := int64(load[v])
		for _, c := range t.Children(v) {
			in += out[c]
		}
		expected[v] = in
		o := in
		if blue[v] && o > 1 {
			o = 1
		}
		out[v] = o
	}

	st := make([]state, n)
	for v := 0; v < n; v++ {
		st[v].pending = expected[v]
	}

	var q eventQueue
	// Server messages materialize at their switch at time 0.
	for v := 0; v < n; v++ {
		for i := 0; i < load[v]; i++ {
			heap.Push(&q, event{t: 0, at: v})
		}
		if expected[v] == 0 && blue[v] {
			// Nothing will ever arrive; the blue switch stays silent.
			st[v].pending = -1
		}
	}

	send := func(v int, now float64) float64 {
		// Occupy the edge above v for ρ(v), FIFO.
		start := now
		if st[v].freeAt > start {
			start = st[v].freeAt
		}
		done := start + t.Rho(v)
		st[v].freeAt = done
		res.LinkBusy[v] += t.Rho(v)
		res.TotalBusy += t.Rho(v)
		res.Messages[v]++
		return done
	}

	completion := 0.0
	for q.Len() > 0 {
		ev := heap.Pop(&q).(event)
		v := ev.at
		if v == -1 {
			if ev.t > completion {
				completion = ev.t
			}
			continue
		}
		if blue[v] {
			st[v].buffered++
			if st[v].buffered < expected[v] {
				continue // still waiting for the rest of the subtree
			}
			// Everything arrived: emit the single aggregate.
			done := send(v, ev.t)
			heap.Push(&q, event{t: done, at: parentOrDest(t, v)})
			continue
		}
		// Red: store-and-forward immediately.
		done := send(v, ev.t)
		heap.Push(&q, event{t: done, at: parentOrDest(t, v)})
	}
	res.Completion = completion
	for _, b := range res.LinkBusy {
		if b > res.Bottleneck {
			res.Bottleneck = b
		}
	}
	return res
}

func parentOrDest(t *topology.Tree, v int) int {
	if p := t.Parent(v); p != topology.NoParent {
		return p
	}
	return -1
}
