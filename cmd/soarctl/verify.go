package main

import (
	"fmt"
	"math"
	"math/rand"

	"soar/internal/core"
	"soar/internal/placement"
	"soar/internal/reduce"
	"soar/internal/topology"
)

// runVerify certifies the installed solver against an exhaustive
// brute-force oracle on randomized instances — a self-check a downstream
// user can run to trust the binary (shape, loads, rates, availability
// and budget all randomized).
func runVerify(args []string) error {
	fs := newFlagSet("verify")
	trials := fs.Int("trials", 200, "number of random instances")
	maxN := fs.Int("max-n", 11, "maximum switches per instance (brute force is 2^n)")
	maxK := fs.Int("max-k", 4, "maximum budget per instance")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	bf := placement.BruteForce{MaxNodes: *maxN}
	for trial := 0; trial < *trials; trial++ {
		n := 1 + rng.Intn(*maxN)
		parent := make([]int, n)
		omega := make([]float64, n)
		parent[0] = topology.NoParent
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
		}
		for v := 0; v < n; v++ {
			omega[v] = []float64{0.5, 1, 2, 4}[rng.Intn(4)]
		}
		tr := topology.MustNew(parent, omega)
		loads := make([]int, n)
		avail := make([]bool, n)
		for v := 0; v < n; v++ {
			loads[v] = rng.Intn(6)
			avail[v] = rng.Intn(5) != 0
		}
		k := rng.Intn(*maxK + 1)

		res := core.Solve(tr, loads, avail, k)
		_, want := bf.Search(tr, loads, avail, k)
		if math.Abs(res.Cost-want) > 1e-9 {
			return fmt.Errorf("trial %d: SOAR φ=%v but brute force φ=%v (n=%d k=%d seed=%d)",
				trial, res.Cost, want, n, k, *seed)
		}
		if sim := reduce.Utilization(tr, loads, res.Blue); math.Abs(sim-res.Cost) > 1e-9 {
			return fmt.Errorf("trial %d: reported φ=%v but placement costs %v", trial, res.Cost, sim)
		}
	}
	fmt.Printf("verified: SOAR matched exhaustive search on %d randomized instances\n", *trials)
	return nil
}
