package cluster

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"soar/internal/core"
	"soar/internal/paper"
	"soar/internal/reduce"
	"soar/internal/topology"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestClusterPaperExample(t *testing.T) {
	tr, loads := paper.Figure2()
	res, err := Run(testCtx(t), tr, loads, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 20 {
		t.Fatalf("TCP cluster φ=%v, want 20", res.Cost)
	}
	want := []bool{false, false, true, false, true, false, false}
	for v := range want {
		if res.Blue[v] != want[v] {
			t.Fatalf("blue[%d]=%v, want %v", v, res.Blue[v], want[v])
		}
	}
	// The distributed Reduce must measure the same φ the DP predicted,
	// and d hears exactly the root's outgoing messages.
	if res.ReducePhi != 20 {
		t.Fatalf("measured Reduce φ=%v, want 20", res.ReducePhi)
	}
	counts := reduce.MessageCounts(tr, loads, res.Blue)
	if res.ReduceMessages != counts[tr.Root()] {
		t.Fatalf("destination saw %d messages, want %d", res.ReduceMessages, counts[tr.Root()])
	}
}

func TestClusterMatchesSerialRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 8; trial++ {
		n := 1 + rng.Intn(30)
		tr := topology.RandomRecursive(n, rng)
		loads := make([]int, n)
		avail := make([]bool, n)
		for v := 0; v < n; v++ {
			loads[v] = rng.Intn(5)
			avail[v] = rng.Intn(4) != 0
		}
		k := rng.Intn(5)
		serial := core.Solve(tr, loads, avail, k)
		res, err := Run(testCtx(t), tr, loads, avail, k)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(res.Cost-serial.Cost) > 1e-9 {
			t.Fatalf("trial %d: cluster φ=%v, serial φ=%v", trial, res.Cost, serial.Cost)
		}
		if math.Abs(res.ReducePhi-serial.Cost) > 1e-9 {
			t.Fatalf("trial %d: measured φ=%v, serial φ=%v", trial, res.ReducePhi, serial.Cost)
		}
		for v := range serial.Blue {
			if res.Blue[v] != serial.Blue[v] {
				t.Fatalf("trial %d: placements differ at %d", trial, v)
			}
		}
	}
}

// TestClusterCapsMatchesSerial runs the TCP deployment under random
// heterogeneous capacity vectors: the frames shrink or widen with the
// capacity-driven effective budgets, and the placement must still match
// core.SolveCaps bitwise.
func TestClusterCapsMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 6; trial++ {
		n := 1 + rng.Intn(30)
		tr := topology.RandomRecursive(n, rng)
		loads := make([]int, n)
		caps := make([]int, n)
		for v := 0; v < n; v++ {
			loads[v] = rng.Intn(5)
			caps[v] = rng.Intn(4)
		}
		k := rng.Intn(7)
		serial := core.SolveCaps(tr, loads, caps, k)
		res, err := RunCaps(testCtx(t), tr, loads, caps, k)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(res.Cost-serial.Cost) > 1e-9 {
			t.Fatalf("trial %d: cluster φ=%v, serial φ=%v", trial, res.Cost, serial.Cost)
		}
		if math.Abs(res.ReducePhi-serial.Cost) > 1e-9 {
			t.Fatalf("trial %d: measured φ=%v, serial φ=%v", trial, res.ReducePhi, serial.Cost)
		}
		for v := range serial.Blue {
			if res.Blue[v] != serial.Blue[v] {
				t.Fatalf("trial %d: placements differ at %d", trial, v)
			}
		}
	}
}

func TestClusterRejectsMalformedCaps(t *testing.T) {
	tr, loads := paper.Figure2()
	if _, err := RunCaps(testCtx(t), tr, loads, []int{1, 2}, 2); err == nil {
		t.Fatal("short caps vector accepted")
	}
	bad := make([]int, tr.N())
	bad[3] = -2
	if _, err := RunCaps(testCtx(t), tr, loads, bad, 2); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestClusterBinaryTree(t *testing.T) {
	tr := topology.MustBT(64) // 63 switches, 63 sockets
	rng := rand.New(rand.NewSource(5))
	loads := make([]int, tr.N())
	for _, v := range tr.Leaves() {
		loads[v] = 1 + rng.Intn(8)
	}
	serial := core.Solve(tr, loads, nil, 8)
	res, err := Run(testCtx(t), tr, loads, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-serial.Cost) > 1e-9 || math.Abs(res.ReducePhi-serial.Cost) > 1e-9 {
		t.Fatalf("cluster φ=%v measured=%v, serial=%v", res.Cost, res.ReducePhi, serial.Cost)
	}
}

func TestClusterHeterogeneousRates(t *testing.T) {
	tr := topology.ApplyRates(topology.MustBT(32), topology.RatesExponential())
	loads := make([]int, tr.N())
	for i, v := range tr.Leaves() {
		loads[v] = 2 + i%5
	}
	serial := core.Solve(tr, loads, nil, 4)
	res, err := Run(testCtx(t), tr, loads, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ReducePhi-serial.Cost) > 1e-9 {
		t.Fatalf("measured φ=%v, want %v", res.ReducePhi, serial.Cost)
	}
}

func TestClusterSingleSwitch(t *testing.T) {
	tr := topology.MustNew([]int{topology.NoParent}, []float64{1})
	res, err := Run(testCtx(t), tr, []int{5}, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 1 || !res.Blue[0] || res.ReduceMessages != 1 {
		t.Fatalf("got %+v", res)
	}
}

func TestClusterRejectsBadLoad(t *testing.T) {
	tr := topology.Path(3)
	if _, err := Run(testCtx(t), tr, []int{1}, nil, 1); err == nil {
		t.Fatal("expected error for short load vector")
	}
}

func TestClusterCanceledContext(t *testing.T) {
	tr := topology.MustBT(16)
	loads := make([]int, tr.N())
	for _, v := range tr.Leaves() {
		loads[v] = 3
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before starting
	_, err := Run(ctx, tr, loads, nil, 2)
	if err == nil {
		t.Fatal("expected error from pre-canceled context")
	}
}

func TestClusterTimeout(t *testing.T) {
	// A context that expires mid-run must unwind every goroutine instead
	// of deadlocking. Use a tiny deadline; whether the run manages to
	// finish first or errors, it must return promptly either way.
	tr := topology.MustBT(32)
	loads := make([]int, tr.N())
	for _, v := range tr.Leaves() {
		loads[v] = 2
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	done := make(chan struct{})
	go func() {
		Run(ctx, tr, loads, nil, 2)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cluster run did not unwind after context expiry")
	}
}
