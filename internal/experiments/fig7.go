package experiments

import (
	"fmt"
	"math/rand"

	"soar/internal/core"
	"soar/internal/placement"
	"soar/internal/stats"
	"soar/internal/topology"
	"soar/internal/workload"
)

// allocatorFactory resolves an Engine name to an allocator constructor.
// Only the SOAR strategy has an incremental engine; the baselines always
// take the plain allocator.
func allocatorFactory(engine string) (func(*topology.Tree, placement.Strategy, int, int) *workload.Allocator, error) {
	switch engine {
	case "", "full":
		return workload.NewAllocator, nil
	case "incremental":
		return func(t *topology.Tree, s placement.Strategy, k, capacity int) *workload.Allocator {
			if _, ok := s.(core.Strategy); ok {
				return workload.NewIncrementalAllocator(t, k, capacity)
			}
			return workload.NewAllocator(t, s, k, capacity)
		}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown engine %q", engine)
	}
}

// Fig7Config parameterizes the paper's Fig. 7: online multi-workload
// aggregation under bounded per-switch capacity.
type Fig7Config struct {
	// N is the BT network size (paper: 256).
	N int
	// K is the per-workload budget (paper: 16).
	K int
	// Capacity is the per-switch aggregation capacity for the
	// workload-count sweep (paper: 4).
	Capacity int
	// Workloads is the arrival-sequence length (paper: 32).
	Workloads int
	// CapacitySweep are the capacities for the bottom-row sweep
	// (paper plots 5..30; defaults cover 1..32).
	CapacitySweep []int
	// Reps averages over independent arrival sequences (paper: 10).
	Reps int
	Seed int64
	// Engine selects how the SOAR strategy solves each workload: "" or
	// "full" re-runs Gather from scratch, "incremental" patches a
	// stateful engine with the per-workload load and capacity deltas.
	// The placements (and hence the figure) are identical either way;
	// only the runtime differs.
	Engine string
}

// DefaultFig7 reproduces the paper's setup.
func DefaultFig7() Fig7Config {
	return Fig7Config{
		N: 256, K: 16, Capacity: 4, Workloads: 32,
		CapacitySweep: []int{1, 2, 4, 8, 12, 16, 20, 24, 28, 32},
		Reps:          10, Seed: 2,
	}
}

// QuickFig7 is a reduced instance for tests and benchmarks.
func QuickFig7() Fig7Config {
	return Fig7Config{
		N: 64, K: 8, Capacity: 2, Workloads: 10,
		CapacitySweep: []int{1, 2, 4, 8},
		Reps:          2, Seed: 2,
	}
}

// Fig7 regenerates the paper's Fig. 7. For each rate scheme it produces
// two subplots: cumulative normalized utilization versus the number of
// workloads handled (at fixed capacity), and the final cumulative ratio
// versus per-switch capacity (at a fixed number of workloads).
func Fig7(cfg Fig7Config) (*Figure, error) {
	base, err := topology.BT(cfg.N)
	if err != nil {
		return nil, err
	}
	fig := &Figure{ID: "fig7", Title: "Online multiple workloads under bounded switch capacity"}
	strategies := CompareStrategies()
	newAlloc, err := allocatorFactory(cfg.Engine)
	if err != nil {
		return nil, err
	}

	for _, rs := range RateSchemes() {
		tr := topology.ApplyRates(base, rs.Scheme)

		// Top row: utilization ratio as workloads accumulate.
		accSeq := make([]*stats.Accumulator, len(strategies))
		for i := range accSeq {
			accSeq[i] = stats.NewAccumulator(cfg.Workloads)
		}
		// Bottom row: final ratio per capacity.
		accCap := make([]*stats.Accumulator, len(strategies))
		for i := range accCap {
			accCap[i] = stats.NewAccumulator(len(cfg.CapacitySweep))
		}

		for rep := 0; rep < cfg.Reps; rep++ {
			// One arrival sequence shared by every strategy and sweep, so
			// the comparison is paired.
			seqRng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*1009))
			seq := workload.NewSequence(tr, seqRng)
			arrivals := make([][]int, cfg.Workloads)
			for i := range arrivals {
				arrivals[i] = seq.Next()
			}
			for si, s := range strategies {
				alloc := newAlloc(tr, s, cfg.K, cfg.Capacity)
				res := workload.Run(alloc, arrivals)
				accSeq[si].Add(res.CumulativeRatio)

				row := make([]float64, len(cfg.CapacitySweep))
				for ci, c := range cfg.CapacitySweep {
					a := newAlloc(tr, s, cfg.K, c)
					r := workload.Run(a, arrivals)
					row[ci] = r.CumulativeRatio[len(arrivals)-1]
				}
				accCap[si].Add(row)
			}
		}

		seqX := make([]float64, cfg.Workloads)
		for i := range seqX {
			seqX[i] = float64(i + 1)
		}
		spSeq := Subplot{
			Name:   fmt.Sprintf("%s: utilization vs number of workloads (capacity %d)", rs.Name, cfg.Capacity),
			XLabel: "workloads",
			YLabel: "cumulative utilization (vs all-red)",
		}
		for si, s := range strategies {
			spSeq.Series = append(spSeq.Series, Series{
				Label: s.Name(), X: seqX, Y: accSeq[si].Mean(), Err: accSeq[si].StdErr(),
			})
		}
		fig.Subplots = append(fig.Subplots, spSeq)

		capX := make([]float64, len(cfg.CapacitySweep))
		for i, c := range cfg.CapacitySweep {
			capX[i] = float64(c)
		}
		spCap := Subplot{
			Name:   fmt.Sprintf("%s: utilization vs switch capacity (%d workloads)", rs.Name, cfg.Workloads),
			XLabel: "capacity",
			YLabel: "cumulative utilization (vs all-red)",
		}
		for si, s := range strategies {
			spCap.Series = append(spCap.Series, Series{
				Label: s.Name(), X: capX, Y: accCap[si].Mean(), Err: accCap[si].StdErr(),
			})
		}
		fig.Subplots = append(fig.Subplots, spCap)
	}
	return fig, nil
}
