package sched

import (
	"soar/internal/core"
	"soar/internal/topology"
)

// solver is one reusable solving slot: an incremental engine plus,
// when Config.Memo is on, its private cross-request solve cache. Each
// pool worker (and the dispatcher's background slot) owns exactly one
// solver, so the memo's hot path needs no locking — the cost is a
// little redundant warmup per slot, paid once per recurring class.
type solver struct {
	eng  *core.Incremental
	memo *core.Memo
}

// ensure points the solver's engine at (load, avail, k) — rebuilding it
// only when the budget changed, otherwise patching loads and
// availability in place — and returns it. A rebuild keeps the memo, so
// even budget churn reuses warm class tables.
//
//soar:hotpath
func (sol *solver) ensure(t *topology.Tree, load []int, avail []bool, k int) *core.Incremental {
	if sol.eng == nil || sol.eng.K() != k {
		if sol.memo != nil {
			sol.eng = core.NewIncrementalMemo(sol.memo, load, avail, k) //soar:coldpath budget changed: rebuild
		} else {
			sol.eng = core.NewIncremental(t, load, avail, k) //soar:coldpath budget changed: rebuild
		}
	} else {
		sol.eng.SetLoads(load)
		sol.eng.SetAvails(avail)
	}
	return sol.eng
}

// worker is one slot of the engine pool: a goroutine owning one
// reusable solver. Workers steal placements from the current batch via
// the scheduler's atomic cursor, so a skewed batch (one huge tenant,
// many small ones) still balances.
//
// Engine reuse is the point: a warm engine is patched to the next
// tenant's load vector and the batch's availability snapshot with
// SetLoads/SetAvails, which recompute only the DP tables on the changed
// switches' root paths. For the sparse tenants a shared tree actually
// sees (a few racks each), that is an order of magnitude less work than
// the from-scratch solve the pre-scheduler serving path ran per
// admission — and it allocates nothing. With Config.Memo on, even the
// recomputed paths mostly alias tables the worker's solve cache already
// holds from earlier tenants.
type worker struct {
	s    *Scheduler
	sol  solver
	wake chan struct{}
}

//soar:hotpath
func (w *worker) loop() {
	defer w.s.bg.Done() //soar:coldpath runs once, at shutdown
	for range w.wake {
		for {
			i := int(w.s.batchNext.Add(1)) - 1
			if i >= len(w.s.places) {
				break
			}
			w.s.solveOn(&w.sol, w.s.places[i])
		}
		w.s.batchWG.Done()
	}
}
