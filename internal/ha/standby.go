package ha

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"soar/internal/sched"
	"soar/internal/wire"
)

// maxCkptStream bounds the checkpoint size a standby will accept from
// an offer — a corrupt or hostile primary cannot make it allocate
// unboundedly. Real checkpoints are a few MB even for large fabrics.
const maxCkptStream = 256 << 20

// defaultMaxJournal is the delta-journal length a standby accumulates
// before it prefers re-attaching for a fresh checkpoint over replaying
// an ever-longer suffix at promotion time.
const defaultMaxJournal = 1 << 15

// standbyConfig fixes one warm standby's identity and cadence.
type standbyConfig struct {
	shard      uint32
	node       int
	treeN      int // shard-local switch count, for delta validation
	heartbeat  time.Duration
	missBudget int
	maxJournal int
	dial       func(ctx context.Context, node int, addr string) (net.Conn, error)
	met        *Metrics
	logf       func(format string, args ...any)
	// onSilence fires (async, at most once per heartbeat budget) when
	// the standby has heard nothing from any primary for the full
	// missed-heartbeat budget. The shard uses it as the failover
	// trigger; repeated fires during continued silence let a failed
	// promotion retry.
	onSilence func(lastEpoch uint64)
}

// standby is one warm replica: it attaches to the shard's primary,
// receives a checkpoint stamped with its journal sequence, then
// accumulates per-commit lease deltas so promotion is checkpoint +
// replay, not a cold resync. It holds no scheduler of its own until
// promoted.
type standby struct {
	cfg standbyConfig

	addr atomic.Value // string: current primary address

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// lastHeard is the unix-nano time of the last frame received from
	// a primary; the watchdog measures silence against it.
	lastHeard atomic.Int64

	mu        sync.Mutex
	curConn   net.Conn
	haveState bool
	ckpt      []byte
	ckptSeq   uint64
	lastSeq   uint64
	epoch     uint64
	journal   []sched.JournalEvent
}

func newStandby(cfg standbyConfig, primaryAddr string) *standby {
	if cfg.maxJournal <= 0 {
		cfg.maxJournal = defaultMaxJournal
	}
	s := &standby{cfg: cfg, stop: make(chan struct{})}
	s.addr.Store(primaryAddr)
	s.lastHeard.Store(time.Now().UnixNano())
	s.wg.Add(2)
	go s.run()
	go s.watchdog()
	return s
}

// setPrimaryAddr re-points the standby (after a failover) and drops
// any connection to the old primary so it re-attaches promptly.
func (s *standby) setPrimaryAddr(addr string) {
	s.addr.Store(addr)
	s.mu.Lock()
	if s.curConn != nil {
		s.curConn.Close()
	}
	s.mu.Unlock()
}

// halt stops the standby's goroutines (promotion and shutdown path).
func (s *standby) halt() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.mu.Lock()
	if s.curConn != nil {
		s.curConn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

func (s *standby) stopped() bool {
	select {
	case <-s.stop:
		return true
	default:
		return false
	}
}

// state returns the standby's replication state: the last streamed
// checkpoint, the sequence it was stamped with, the delta journal
// accumulated since, and the epoch it was heard at. ok is false until
// a first checkpoint has landed.
func (s *standby) state() (ckpt []byte, seq uint64, journal []sched.JournalEvent, epoch uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ckpt, s.ckptSeq, s.journal, s.epoch, s.haveState
}

// knownEpoch is the newest epoch the standby has heard a primary at.
func (s *standby) knownEpoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

func (s *standby) markHeard() {
	s.lastHeard.Store(time.Now().UnixNano())
}

// watchdog fires onSilence while the primary stays silent past the
// missed-heartbeat budget, at most once per budget interval so a
// failed promotion can retry without a fire storm.
func (s *standby) watchdog() {
	defer s.wg.Done()
	budget := time.Duration(s.cfg.missBudget) * s.cfg.heartbeat
	t := time.NewTicker(s.cfg.heartbeat)
	defer t.Stop()
	var lastFire time.Time
	for {
		select {
		case <-s.stop:
			return
		case now := <-t.C:
			heard := time.Unix(0, s.lastHeard.Load())
			if now.Sub(heard) > budget && now.Sub(lastFire) > budget {
				lastFire = now
				go s.cfg.onSilence(s.knownEpoch())
			}
		}
	}
}

// run dials and attaches until halted, re-attaching after any stream
// error (connection death, journal gap or overflow, stale primary).
func (s *standby) run() {
	defer s.wg.Done()
	for !s.stopped() {
		addr, _ := s.addr.Load().(string)
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(s.cfg.missBudget)*s.cfg.heartbeat)
		conn, err := s.cfg.dial(ctx, s.cfg.node, addr)
		cancel()
		if err != nil {
			select {
			case <-s.stop:
				return
			case <-time.After(s.cfg.heartbeat):
			}
			continue
		}
		// Publish the conn under mu with a stop re-check: halt closes
		// stop before it closes curConn, so a conn that lands here
		// after halt's sweep must be closed by us, not attached — a
		// live primary's heartbeats would otherwise keep the frame
		// loop's read deadline fresh forever and halt would hang.
		s.mu.Lock()
		if s.stopped() {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.curConn = conn
		s.mu.Unlock()
		if err := s.attach(conn); err != nil && !s.stopped() && !streamNoise(err) {
			s.cfg.logf("ha: shard %d standby %d: stream ended: %v", s.cfg.shard, s.cfg.node, err)
		}
		s.mu.Lock()
		s.curConn = nil
		s.mu.Unlock()
		conn.Close()
	}
}

// attach runs one replication session: epoch handshake, checkpoint
// stream, then delta/heartbeat accumulation until the stream breaks.
func (s *standby) attach(conn net.Conn) error {
	budget := time.Duration(s.cfg.missBudget) * s.cfg.heartbeat
	hello := &wire.Epoch{Shard: s.cfg.shard, Epoch: s.knownEpoch(), Node: uint32(s.cfg.node)}
	conn.SetWriteDeadline(time.Now().Add(budget))
	if err := wire.Write(conn, hello); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Now().Add(2 * budget))
	reply, err := wire.ReadTyped[*wire.Epoch](conn)
	if err != nil {
		return err
	}
	if reply.Shard != s.cfg.shard {
		return fmt.Errorf("primary serves shard %d, want %d", reply.Shard, s.cfg.shard)
	}
	if reply.Epoch < s.knownEpoch() {
		// Stale primary: NACK with the newer epoch so it self-deposes,
		// then walk away.
		wire.Write(conn, &wire.Epoch{Shard: s.cfg.shard, Epoch: s.knownEpoch(), Node: uint32(s.cfg.node)})
		return fmt.Errorf("primary at stale epoch %d < %d", reply.Epoch, s.knownEpoch())
	}
	offer, err := wire.ReadTyped[*wire.CkptOffer](conn)
	if err != nil {
		return err
	}
	if offer.Shard != s.cfg.shard || offer.Epoch != reply.Epoch {
		return fmt.Errorf("checkpoint offer for shard %d epoch %d under epoch %d", offer.Shard, offer.Epoch, reply.Epoch)
	}
	if offer.Bytes > maxCkptStream {
		return fmt.Errorf("checkpoint offer of %d bytes exceeds cap", offer.Bytes)
	}
	ckpt := make([]byte, offer.Bytes)
	conn.SetReadDeadline(time.Now().Add(4 * budget))
	if _, err := io.ReadFull(conn, ckpt); err != nil {
		return err
	}
	s.mu.Lock()
	s.haveState = true
	s.ckpt = ckpt
	s.ckptSeq = offer.Seq
	s.lastSeq = offer.Seq
	s.epoch = reply.Epoch
	s.journal = nil
	s.mu.Unlock()
	s.markHeard()

	for {
		conn.SetReadDeadline(time.Now().Add(budget))
		m, err := wire.Read(conn)
		if err != nil {
			return err
		}
		switch f := m.(type) {
		case *wire.Heartbeat:
			if f.Shard == s.cfg.shard {
				s.markHeard()
			}
		case *wire.LeaseDelta:
			if f.Shard != s.cfg.shard {
				continue
			}
			s.markHeard()
			if err := s.absorb(f); err != nil {
				return err
			}
		case *wire.Epoch:
			// A newer-epoch announcement on a live stream is not part
			// of the protocol; ignore it.
		default:
			return fmt.Errorf("unexpected %T frame on replication stream", m)
		}
	}
}

// streamNoise reports the stream-end causes that are routine under
// churn and chaos — peer closes, resets, deadline kicks — and not
// worth a log line each (gaps, overflows and protocol violations are).
func streamNoise(err error) bool {
	var ne net.Error
	return errors.Is(err, io.EOF) || errors.As(err, &ne)
}

// absorb appends one delta to the journal, skipping the prefix the
// checkpoint already covers and treating any sequence gap or journal
// overflow as a resync trigger (error → re-attach for a fresh
// checkpoint).
func (s *standby) absorb(d *wire.LeaseDelta) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d.Seq <= s.lastSeq {
		return nil // covered by the checkpoint (or a duplicate)
	}
	if d.Seq != s.lastSeq+1 {
		return fmt.Errorf("journal gap: delta %d after %d", d.Seq, s.lastSeq)
	}
	if len(s.journal) >= s.cfg.maxJournal {
		return fmt.Errorf("journal overflow at %d events", len(s.journal))
	}
	ev, err := eventFromDelta(d, s.cfg.treeN)
	if err != nil {
		return err
	}
	s.journal = append(s.journal, ev)
	s.lastSeq = d.Seq
	return nil
}

// replay folds a standby's replication state into a fresh scheduler:
// restore the checkpoint, seed the journal sequence it was stamped
// with, apply the delta suffix, then prove conservation from first
// principles before the replica may serve.
func replay(sch *sched.Scheduler, ckpt []byte, seq uint64, journal []sched.JournalEvent) error {
	if err := sch.Restore(bytes.NewReader(ckpt)); err != nil {
		return fmt.Errorf("ha: replay restore: %w", err)
	}
	sch.SeedJournal(seq)
	for _, ev := range journal {
		if err := sch.ApplyEvent(ev); err != nil {
			return fmt.Errorf("ha: replay event %d: %w", ev.Seq, err)
		}
	}
	if err := sch.Audit(); err != nil {
		return fmt.Errorf("ha: replay audit: %w", err)
	}
	return nil
}
