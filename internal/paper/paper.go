// Package paper provides the concrete example instances used in the SOAR
// paper's figures, shared by tests, the CLI demo and the quickstart
// example. All values referenced in doc comments were hand-verified
// against the paper's Figs. 1-5 and the Sec. 4.3 walkthrough.
package paper

import "soar/internal/topology"

// Figure1 returns the 5-switch tree of the paper's Fig. 1, in which six
// servers send values x1..x6 to the destination. The all-red Reduce
// sends 14 messages (edge counts 2, 3, 1, 2 and 6 on the (r,d) edge);
// the all-blue Reduce sends 5 (one per edge).
//
// Layout: switch 0 is the root r holding x4; switch 1 holds x1, x2;
// switch 2 is empty; its children 3 (x3) and 4 (x5, x6).
func Figure1() (*topology.Tree, []int) {
	t := topology.MustNew(
		[]int{topology.NoParent, 0, 0, 2, 2},
		[]float64{1, 1, 1, 1, 1},
	)
	return t, []int{1, 2, 0, 1, 2}
}

// Figure2 returns the 7-switch complete binary tree of the paper's
// Figs. 2, 3 and 5: root r = 0, internal switches 1 (left) and 2 (right),
// and leaf ToR switches 3, 4, 5, 6 with rack loads 2, 6, 5, 4. All link
// rates are 1 and every switch may aggregate.
//
// Ground truth (paper):
//   - Fig. 2, k = 2: Top = 27, Max = 24, Level = 21, SOAR (optimal) = 20.
//   - Fig. 3: optimal φ = 35, 20, 15, 11 for k = 1, 2, 3, 4; the optima
//     for k = 2 ({2, 4}) and k = 3 ({4, 5, 6}) are unique.
//   - Fig. 5 (Sec. 4.3): X_r(0, ·) = (34, 24, 16) and
//     X_r(1, ·) = (51, 35, 20); the destination reads the optimum 20 at
//     X_r(1, 2).
func Figure2() (*topology.Tree, []int) {
	t := topology.CompleteBinary(3)
	return t, []int{0, 0, 0, 2, 6, 5, 4}
}
