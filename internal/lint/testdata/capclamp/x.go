// Package capclamp is golden-test input for the capclamp analyzer: DP
// rows must never be sized from the raw budget k — only from a clamped
// or computed effective cap.
package capclamp

type engine struct {
	k    int
	caps []int
}

func (e *engine) K() int { return e.k }

// effectiveCap mirrors the real EffectiveCaps contract: a call result
// sanitizes the taint.
func effectiveCap(k int, caps []int) int {
	sum := 0
	for _, c := range caps {
		sum += c
	}
	return min(k, sum)
}

func fromParam(k int) []float64 {
	return make([]float64, k+1) // want "DP row sized from the raw budget k"
}

func fromField(e *engine) []float64 {
	return make([]float64, e.k+1) // want "DP row sized from the raw budget k"
}

func fromGetter(e *engine) []float64 {
	return make([]float64, e.K()+1) // want "DP row sized from the raw budget k"
}

func viaLocal(k int) []float64 {
	rows := k + 1
	return make([]float64, rows) // want "DP row sized from the raw budget k"
}

// clamped sizes from min(k, capacity): clean.
func clamped(e *engine) []float64 {
	return make([]float64, min(e.k, len(e.caps))+1)
}

// viaResult sizes from a computed effective cap: clean.
func viaResult(e *engine) []float64 {
	return make([]float64, effectiveCap(e.k, e.caps)+1)
}

// waived documents why the raw budget is safe here.
func waived(k int) []float64 {
	return make([]float64, k+1) //soar:rawk the caller pre-clamps k
}
