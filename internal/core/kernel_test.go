package core

import (
	"math"
	"math/rand"
	"testing"

	"soar/internal/topology"
)

// scalarComputeNode is the pre-kernel merge loop kept as an executable
// reference: computeNode with every (min,+) merge done by the naive
// i-outer, branch-per-candidate scan (mergeScalar). The kernel variants
// must reproduce it bitwise — values, color flags and split breadcrumbs.
func scalarComputeNode(t *topology.Tree, v, load int, hasLoad bool, capw int, nt *nodeTables, children []*nodeTables, sc *scratch) {
	depth := t.Depth(v)
	capv := nt.cap
	nt.capw = capw
	w := capv + 1
	bsend := 0.0
	if hasLoad {
		bsend = 1.0
	}
	blueOK := capw >= 1 && capw <= capv
	if len(children) == 0 {
		for l := 0; l <= depth; l++ {
			rho := t.RhoUp(v, l)
			red := rho * float64(load)
			for i := 0; i <= capv; i++ {
				idx := l*w + i
				nt.x[idx] = red
				nt.isBlue[idx] = false
			}
			if blueOK {
				idx := l*w + capw
				if blue := rho * bsend; blue < red {
					nt.x[idx] = blue
					nt.isBlue[idx] = true
				}
			}
		}
		return
	}
	recordSplits := nt.splits != nil
	yr := sc.yr[:w]
	yb := sc.yb[:w]
	newYR := sc.newYR[:w]
	newYB := sc.newYB[:w]
	for l := 0; l <= depth; l++ {
		rho := t.RhoUp(v, l)
		c1 := children[0]
		w1 := c1.cap + 1
		redRow := c1.x[(l+1)*w1:]
		redBase := rho * float64(load)
		capR := min(capv, c1.cap)
		for i := 0; i <= capR; i++ {
			yr[i] = redRow[i] + redBase
		}
		for i := capR + 1; i <= capv; i++ {
			yr[i] = yr[capR]
		}
		capB := 0
		if blueOK {
			blueRow := c1.x[1*w1:]
			blueBase := rho * bsend
			capB = min(capv, c1.cap+capw)
			for i := 0; i < capw; i++ {
				yb[i] = math.Inf(1)
			}
			for i := capw; i <= capB; i++ {
				yb[i] = blueRow[i-capw] + blueBase
			}
			for i := capB + 1; i <= capv; i++ {
				yb[i] = yb[capB]
			}
		} else {
			for i := 0; i <= capv; i++ {
				yb[i] = math.Inf(1)
			}
		}
		for m := 1; m < len(children); m++ {
			cm := children[m]
			wcm := cm.cap + 1
			xBlue := cm.x[1*wcm : 1*wcm+wcm]
			xRed := cm.x[(l+1)*wcm : (l+1)*wcm+wcm]
			var spRed, spBlue []int32
			if recordSplits {
				sp := nt.splits[m-1]
				spRed = sp[(0*(depth+1)+l)*w:]
				spBlue = sp[(1*(depth+1)+l)*w:]
			}
			newCapR := min(capv, capR+cm.cap)
			mergeScalar(newYR, spRed, yr, xRed, 0, newCapR, cm.cap)
			for i := newCapR + 1; i <= capv; i++ {
				newYR[i] = newYR[newCapR]
				if recordSplits {
					spRed[i] = spRed[newCapR]
				}
			}
			yr, newYR = newYR, yr
			capR = newCapR
			if blueOK {
				newCapB := min(capv, capB+cm.cap)
				mergeScalar(newYB, spBlue, yb, xBlue, 0, newCapB, cm.cap)
				for i := newCapB + 1; i <= capv; i++ {
					newYB[i] = newYB[newCapB]
					if recordSplits {
						spBlue[i] = spBlue[newCapB]
					}
				}
				yb, newYB = newYB, yb
				capB = newCapB
			} else if recordSplits {
				for i := 0; i <= capv; i++ {
					spBlue[i] = 0
				}
			}
		}
		for i := 0; i <= capv; i++ {
			idx := l*w + i
			if yb[i] < yr[i] {
				nt.x[idx] = yb[i]
				nt.isBlue[idx] = true
			} else {
				nt.x[idx] = yr[i]
				nt.isBlue[idx] = false
			}
		}
	}
}

// gatherScalar is gatherSerial with scalarComputeNode: the whole-DP
// reference the kernel-backed Gather must match bitwise.
func gatherScalar(t *topology.Tree, load []int, avail []bool, caps []int, k int) *Tables {
	if k < 0 {
		k = 0
	}
	ecaps := effectiveCaps(t, avail, caps, k)
	tb := &Tables{t: t, load: load, k: k, nodes: make([]nodeTables, t.N())}
	subLoad := t.SubtreeLoads(load)
	sc := newScratch(ecaps[t.Root()])
	var cbuf []*nodeTables
	for _, v := range t.PostOrder() {
		nt := newNodeStorage(t.Depth(v), ecaps[v], t.NumChildren(v), true)
		cbuf = appendChildTables(cbuf[:0], tb, v)
		scalarComputeNode(t, v, load[v], subLoad[v] > 0, capAt(avail, caps, v), &nt, cbuf, sc)
		tb.nodes[v] = nt
	}
	return tb
}

// requireTablesBitwise fails unless got and want agree bitwise on every
// value, color flag and split breadcrumb of every switch.
func requireKernelTables(t *testing.T, seed int64, name string, tr *topology.Tree, got, want *Tables) {
	t.Helper()
	for v := 0; v < tr.N(); v++ {
		g, w := &got.nodes[v], &want.nodes[v]
		if g.cap != w.cap || g.capw != w.capw {
			t.Fatalf("seed %d: %s switch %d caps (%d,%d), want (%d,%d)", seed, name, v, g.cap, g.capw, w.cap, w.capw)
		}
		for i := range w.x {
			if g.x[i] != w.x[i] || g.isBlue[i] != w.isBlue[i] {
				t.Fatalf("seed %d: %s switch %d table cell %d: (%v,%v) want (%v,%v)",
					seed, name, v, i, g.x[i], g.isBlue[i], w.x[i], w.isBlue[i])
			}
		}
		if len(g.splits) != len(w.splits) {
			t.Fatalf("seed %d: %s switch %d has %d split tables, want %d", seed, name, v, len(g.splits), len(w.splits))
		}
		for m := range w.splits {
			for i := range w.splits[m] {
				if g.splits[m][i] != w.splits[m][i] {
					t.Fatalf("seed %d: %s switch %d merge %d split %d: %d want %d",
						seed, name, v, m, i, g.splits[m][i], w.splits[m][i])
				}
			}
		}
	}
}

// randomMergeRows builds one random kernel invocation: row widths, a Y
// row and a child row with occasional +Inf cells (the infeasible-blue
// prefix of real merges).
func randomMergeRows(rng *rand.Rand) (y, x []float64, hi, cw int) {
	hi = rng.Intn(41)
	cw = rng.Intn(13)
	y = make([]float64, hi+1)
	x = make([]float64, max(cw, hi)+1)
	fill := func(row []float64) {
		for i := range row {
			switch rng.Intn(8) {
			case 0:
				row[i] = math.Inf(1)
			case 1:
				row[i] = 0
			case 2:
				// Duplicate small integers force argmin ties.
				row[i] = float64(rng.Intn(3))
			default:
				row[i] = rng.Float64() * 10
			}
		}
	}
	fill(y)
	fill(x)
	return y, x, hi, cw
}

// TestMergeKernelMatchesScalar sweeps every (hi, cw) shape through the
// dispatcher and checks values and first-argmin breadcrumbs against
// mergeScalar bitwise, with and without split recording.
func TestMergeKernelMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 5000; round++ {
		y, x, hi, cw := randomMergeRows(rng)
		wantY := make([]float64, hi+1)
		wantSp := make([]int32, hi+1)
		mergeScalar(wantY, wantSp, y, x, 0, hi, min(cw, hi))
		gotY := make([]float64, hi+1)
		gotSp := make([]int32, hi+1)
		mergeMinPlus(gotY, gotSp, y, x, hi, cw)
		for i := 0; i <= hi; i++ {
			if gotY[i] != wantY[i] || gotSp[i] != wantSp[i] {
				t.Fatalf("round %d (hi=%d cw=%d): cell %d got (%v,%d) want (%v,%d)",
					round, hi, cw, i, gotY[i], gotSp[i], wantY[i], wantSp[i])
			}
		}
		for i := range gotY {
			gotY[i] = -1
		}
		mergeMinPlus(gotY, nil, y, x, hi, cw)
		for i := 0; i <= hi; i++ {
			if gotY[i] != wantY[i] {
				t.Fatalf("round %d (hi=%d cw=%d): no-split cell %d got %v want %v", round, hi, cw, i, gotY[i], wantY[i])
			}
		}
	}
}

// TestMergeKernelAllInfinite pins the all-infinite row convention: the
// merge of an unaffordable blue track keeps value +Inf and argmin 0 in
// every variant (the recycled-storage contract of computeNode).
func TestMergeKernelAllInfinite(t *testing.T) {
	for _, cw := range []int{0, 2, 5, 11} {
		hi := 20
		y := make([]float64, hi+1)
		x := make([]float64, cw+1)
		for i := range y {
			y[i] = math.Inf(1)
		}
		for j := range x {
			x[j] = math.Inf(1)
		}
		newY := make([]float64, hi+1)
		sp := make([]int32, hi+1)
		for i := range sp {
			sp[i] = 99
		}
		mergeMinPlus(newY, sp, y, x, hi, cw)
		for i := 0; i <= hi; i++ {
			if !math.IsInf(newY[i], 1) || sp[i] != 0 {
				t.Fatalf("cw=%d cell %d: got (%v,%d), want (+Inf,0)", cw, i, newY[i], sp[i])
			}
		}
	}
}

// FuzzKernelMatchesGather is the kernel's bitwise-identity fuzz target:
// on fuzzer-chosen instances the kernel-backed Gather must reproduce the
// scalar-merge reference gather cell for cell — values, color flags and
// split breadcrumbs — under uniform availability and capacity vectors,
// and the resulting placements must match. Random raw rows (widths the
// DP may never hit) are fuzzed against mergeScalar too.
func FuzzKernelMatchesGather(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-9))
	f.Add(int64(1 << 35))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		for round := 0; round < 32; round++ {
			y, x, hi, cw := randomMergeRows(rng)
			wantY := make([]float64, hi+1)
			wantSp := make([]int32, hi+1)
			mergeScalar(wantY, wantSp, y, x, 0, hi, min(cw, hi))
			gotY := make([]float64, hi+1)
			gotSp := make([]int32, hi+1)
			mergeMinPlus(gotY, gotSp, y, x, hi, cw)
			for i := 0; i <= hi; i++ {
				if gotY[i] != wantY[i] || gotSp[i] != wantSp[i] {
					t.Fatalf("seed %d row (hi=%d cw=%d): cell %d got (%v,%d) want (%v,%d)",
						seed, hi, cw, i, gotY[i], gotSp[i], wantY[i], wantSp[i])
				}
			}
		}

		tr, loads, avail, k := randomInstance(seed, 25, 6)
		requireKernelTables(t, seed, "uniform", tr, Gather(tr, loads, avail, k), gatherScalar(tr, loads, avail, nil, k))
		res := Solve(tr, loads, avail, k)
		wantBlue, wantCost := ColorPhase(gatherScalar(tr, loads, avail, nil, k))
		if res.Cost != wantCost {
			t.Fatalf("seed %d: kernel φ=%v, scalar φ=%v", seed, res.Cost, wantCost)
		}
		for v := range wantBlue {
			if res.Blue[v] != wantBlue[v] {
				t.Fatalf("seed %d: placement differs at switch %d", seed, v)
			}
		}

		caps := make([]int, tr.N())
		for v := range caps {
			caps[v] = rng.Intn(4)
		}
		requireKernelTables(t, seed, "caps", tr, GatherCaps(tr, loads, caps, k), gatherScalar(tr, loads, nil, caps, k))
	})
}
