// Package cluster deploys SOAR over a real transport: every switch is a
// node with its own TCP listener on the loopback interface, every tree
// edge is a TCP connection, and the SOAR-Gather tables, SOAR-Color
// assignments and Reduce results travel as binary frames (internal/wire).
//
// The paper describes SOAR-Gather and SOAR-Color as distributed
// asynchronous algorithms synchronized purely by message arrival
// (Sec. 4.2); this package is that description made concrete. A run
// performs, in order, on every edge's single connection:
//
//	child → parent   Hello      (identify the edge)
//	child → parent   Gather     (the child's X table)
//	parent → child   Color      (budget and barrier distance ℓ)
//	child → parent   ReduceDone (messages crossed + subtree φ)
//
// The destination d is played by the coordinator, which accepts the
// root's connection, reads the optimal cost from the root's table, sends
// the budget k down, and receives the final Reduce result.
package cluster

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"

	"soar/internal/core"
	"soar/internal/topology"
	"soar/internal/wire"
)

// Result is the outcome of a cluster run.
type Result struct {
	// Blue is the placement decided by the distributed SOAR-Color.
	Blue []bool
	// Cost is the optimal φ the destination read from the root's table.
	Cost float64
	// ReduceMessages is the number of messages the destination received
	// over the (r, d) edge during the distributed Reduce.
	ReduceMessages int64
	// ReducePhi is the utilization Σ msg_e·ρ(e) accumulated hop by hop
	// during the distributed Reduce; it must equal Cost.
	ReducePhi float64
}

// Run executes SOAR and a Reduce over a loopback TCP mesh and returns the
// placement, the DP cost, and the measured Reduce cost. It honors ctx
// cancellation and deadlines; on any node error the whole run is torn
// down and the first error returned.
func Run(ctx context.Context, t *topology.Tree, load []int, avail []bool, k int) (*Result, error) {
	if avail == nil {
		return RunCaps(ctx, t, load, nil, k) // nil caps already means weight 1 everywhere
	}
	weights := make([]int, t.N())
	for v := range weights {
		if avail[v] {
			weights[v] = 1
		}
	}
	return RunCaps(ctx, t, load, weights, k)
}

// RunCaps is Run under the heterogeneous capacity model (see
// core.SolveCaps): a blue at v consumes caps[v] of the budget and
// caps[v] = 0 means v may never aggregate. caps == nil means every
// switch has capacity 1. The wire protocol is unchanged — capacities
// only reshape the effective budgets, and with them the width of the
// Gather frames each parent accepts.
func RunCaps(ctx context.Context, t *topology.Tree, load []int, caps []int, k int) (*Result, error) {
	if len(load) != t.N() {
		return nil, fmt.Errorf("cluster: load has %d entries for %d switches", len(load), t.N())
	}
	if caps != nil && len(caps) != t.N() {
		return nil, fmt.Errorf("cluster: caps has %d entries for %d switches", len(caps), t.N())
	}
	for v, c := range caps {
		if c < 0 {
			return nil, fmt.Errorf("cluster: switch %d has negative capacity %d", v, c)
		}
	}
	if k < 0 {
		k = 0
	}
	n := t.N()
	subLoad := t.SubtreeLoads(load)
	// Effective budgets bound every table's width: a child's Gather
	// frame must carry exactly cap[c]+1 = min(k, Σ_{u ∈ T_c} c(u))+1
	// budget columns, which both shrinks the frames and lets each parent
	// reject mis-shaped tables.
	ecaps := core.EffectiveCapsVec(t, caps, k)

	// One listener per switch plus one for the destination, all created
	// up front so that children always find their parent listening.
	listeners := make([]net.Listener, n+1)
	var lc net.ListenConfig
	for i := range listeners {
		ln, err := lc.Listen(ctx, "tcp", "127.0.0.1:0")
		if err != nil {
			for _, l := range listeners[:i] {
				l.Close()
			}
			return nil, fmt.Errorf("cluster: listen: %w", err)
		}
		listeners[i] = ln
	}
	defer func() {
		for _, l := range listeners {
			l.Close()
		}
	}()
	if testListenerHook != nil {
		testListenerHook(listeners)
	}
	addrOf := func(v int) string { return listeners[v].Addr().String() }
	destListener := listeners[n]

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	res := &Result{Blue: make([]bool, n)}
	errCh := make(chan error, n+1)
	var wg sync.WaitGroup
	wg.Add(n)
	for v := 0; v < n; v++ {
		go func(v int) {
			defer wg.Done()
			capw := 1
			if caps != nil {
				capw = caps[v]
			}
			if err := runNode(runCtx, t, v, load[v], subLoad[v] > 0, capw, k, ecaps,
				listeners[v], addrOf, res.Blue); err != nil {
				errCh <- fmt.Errorf("switch %d: %w", v, err)
				cancel()
			}
		}(v)
	}

	// Play the destination.
	destErr := make(chan error, 1)
	go func() {
		err := runDestination(runCtx, destListener, k, ecaps[t.Root()], res)
		if err != nil {
			cancel() // unblock the switches before Run waits on them
		}
		destErr <- err
	}()

	// Tear down listeners if the context dies so Accept calls unblock.
	go func() {
		<-runCtx.Done()
		for _, l := range listeners {
			l.Close()
		}
	}()

	wg.Wait()
	if err := <-destErr; err != nil {
		select {
		case nodeErr := <-errCh:
			return nil, nodeErr // a node failure is the root cause
		default:
			return nil, err
		}
	}
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	return res, nil
}

// testListenerHook, when non-nil, receives the freshly created listeners
// (switch 0..n-1, destination last) before any node starts. Failure-
// injection tests use it to attack the protocol from outside.
var testListenerHook func([]net.Listener)

// edge wraps one tree-edge connection with buffered framing.
type edge struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

func newEdge(conn net.Conn) *edge {
	return &edge{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
}

func (e *edge) send(m wire.Message) error {
	if err := wire.Write(e.w, m); err != nil {
		return err
	}
	return e.w.Flush()
}

func (e *edge) close() {
	if e != nil {
		e.conn.Close()
	}
}

// runNode is the full lifecycle of one switch. capw is the switch's own
// capacity weight; ecaps the tree-wide effective budgets bounding every
// frame's width.
func runNode(ctx context.Context, t *topology.Tree, v, loadV int, hasLoad bool,
	capw, k int, ecaps []int, ln net.Listener, addrOf func(int) string, blueOut []bool) error {

	children := t.Children(v)

	// Accept one connection per child; Hello identifies which child.
	childEdge := make(map[int]*edge, len(children))
	defer func() {
		for _, e := range childEdge {
			e.close()
		}
	}()
	for range children {
		conn, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("accept: %w", err)
		}
		applyDeadline(ctx, conn)
		e := newEdge(conn)
		hello, err := wire.ReadTyped[*wire.Hello](e.r)
		if err != nil {
			conn.Close()
			return fmt.Errorf("hello: %w", err)
		}
		c := int(hello.Child)
		if c < 0 || c >= t.N() || t.Parent(c) != v {
			conn.Close()
			return fmt.Errorf("hello from %d, which is not a child", c)
		}
		if _, dup := childEdge[c]; dup {
			conn.Close()
			return fmt.Errorf("duplicate hello from child %d", c)
		}
		childEdge[c] = e
	}

	// SOAR-Gather: collect the children's X tables, in child order.
	childX := make([][]float64, len(children))
	for i, c := range children {
		g, err := wire.ReadTyped[*wire.Gather](childEdge[c].r)
		if err != nil {
			return fmt.Errorf("gather from %d: %w", c, err)
		}
		if int(g.Child) != c || int(g.Rows) != t.Depth(c)+1 || int(g.Cols) != ecaps[c]+1 {
			return fmt.Errorf("gather from %d has shape %dx%d for child %d (want %dx%d)",
				g.Child, g.Rows, g.Cols, c, t.Depth(c)+1, ecaps[c]+1)
		}
		childX[i] = g.X
	}
	ns, err := core.NewNodeStateCaps(t, v, loadV, hasLoad, capw, k, childX)
	if err != nil {
		return err
	}

	// Dial the parent (or the destination, for the root) and ship our table.
	parentAddr := addrOf(t.N()) // destination
	if p := t.Parent(v); p != topology.NoParent {
		parentAddr = addrOf(p)
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", parentAddr)
	if err != nil {
		return fmt.Errorf("dial parent: %w", err)
	}
	applyDeadline(ctx, conn)
	up := newEdge(conn)
	defer up.close()
	if err := up.send(&wire.Hello{Child: uint32(v)}); err != nil {
		return err
	}
	x := ns.XTable()
	if err := up.send(&wire.Gather{
		Child: uint32(v),
		Rows:  uint32(t.Depth(v) + 1),
		Cols:  uint32(ns.Cap() + 1),
		X:     x,
	}); err != nil {
		return err
	}

	// SOAR-Color: receive our assignment, decide, forward the splits.
	cm, err := wire.ReadTyped[*wire.Color](up.r)
	if err != nil {
		return fmt.Errorf("color: %w", err)
	}
	isBlue, childBudget, childL, err := ns.Decide(int(cm.Budget), int(cm.L))
	if err != nil {
		return err
	}
	blueOut[v] = isBlue // distinct index per goroutine
	for i, c := range children {
		if err := childEdge[c].send(&wire.Color{Budget: uint32(childBudget[i]), L: uint32(childL)}); err != nil {
			return fmt.Errorf("color to %d: %w", c, err)
		}
	}

	// Reduce: wait for the children's results, apply Algorithm 1 locally,
	// report upward.
	var inMsgs int64
	var phi float64
	for _, c := range children {
		rd, err := wire.ReadTyped[*wire.ReduceDone](childEdge[c].r)
		if err != nil {
			return fmt.Errorf("reduce from %d: %w", c, err)
		}
		inMsgs += int64(rd.Messages)
		phi += rd.Phi()
	}
	out := inMsgs + int64(loadV)
	if isBlue && out > 1 {
		out = 1
	}
	phi += float64(out) * t.Rho(v)
	done := &wire.ReduceDone{Child: uint32(v), Messages: uint64(out)}
	done.SetPhi(phi)
	return up.send(done)
}

// runDestination plays d: accept the root, read the optimum, start the
// color phase with budget k, and collect the Reduce result. capRoot is
// the root's effective budget min(k, Σ c(u)) — min(k, |Λ|) in the
// uniform model — the width (minus one) of the table frame the root must
// ship.
func runDestination(ctx context.Context, ln net.Listener, k, capRoot int, res *Result) error {
	conn, err := ln.Accept()
	if err != nil {
		return fmt.Errorf("destination accept: %w", err)
	}
	applyDeadline(ctx, conn)
	e := newEdge(conn)
	defer e.close()
	if _, err := wire.ReadTyped[*wire.Hello](e.r); err != nil {
		return fmt.Errorf("destination hello: %w", err)
	}
	g, err := wire.ReadTyped[*wire.Gather](e.r)
	if err != nil {
		return fmt.Errorf("destination gather: %w", err)
	}
	if g.Rows < 2 || g.Cols != uint32(capRoot+1) {
		return fmt.Errorf("root table has shape %dx%d, want 2x%d", g.Rows, g.Cols, capRoot+1)
	}
	res.Cost = g.X[1*(capRoot+1)+capRoot] // X_r(1, k) = X_r(1, cap), paper Eq. 6
	if err := e.send(&wire.Color{Budget: uint32(k), L: 1}); err != nil {
		return err
	}
	rd, err := wire.ReadTyped[*wire.ReduceDone](e.r)
	if err != nil {
		return fmt.Errorf("destination reduce: %w", err)
	}
	res.ReduceMessages = int64(rd.Messages)
	res.ReducePhi = rd.Phi()
	return nil
}

// applyDeadline binds a connection's lifetime to the context: any context
// deadline becomes the socket deadline, and cancellation closes the
// socket so blocked reads and writes unwind promptly. The registration is
// released when the run's context is canceled (Run always cancels on
// exit), so nothing leaks.
func applyDeadline(ctx context.Context, conn net.Conn) {
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	context.AfterFunc(ctx, func() { conn.Close() })
}
