// Multi-tenant online allocation (the paper's Sec. 5.2): workloads
// arrive one at a time, every switch can aggregate for at most a few
// workloads (bounded capacity), and each arrival gets its aggregation
// switches before the next is seen. SOAR applied online degrades
// gracefully as capacity fills, and stays ahead of the baselines.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"
	"math/rand"

	"soar/internal/core"
	"soar/internal/placement"
	"soar/internal/topology"
	"soar/internal/workload"
)

func main() {
	t, err := topology.BT(128)
	if err != nil {
		log.Fatal(err)
	}
	const (
		budget   = 8  // aggregation switches per workload
		capacity = 3  // workloads a switch can serve
		arrivals = 24 // tenants arriving online
	)

	// One shared arrival sequence makes the comparison paired.
	seq := workload.NewSequence(t, rand.New(rand.NewSource(3)))
	tenants := make([][]int, arrivals)
	for i := range tenants {
		tenants[i] = seq.Next()
	}

	strategies := []placement.Strategy{
		core.Strategy{}, placement.Top{}, placement.Max{}, placement.Level{},
	}
	fmt.Printf("%d tenants arriving online, k=%d per tenant, switch capacity %d\n\n",
		arrivals, budget, capacity)
	fmt.Printf("%-10s", "tenant")
	for _, s := range strategies {
		fmt.Printf(" %10s", s.Name())
	}
	fmt.Println(" (cumulative utilization vs all-red)")

	results := make([]workload.RunResult, len(strategies))
	for si, s := range strategies {
		alloc := workload.NewAllocator(t, s, budget, capacity)
		results[si] = workload.Run(alloc, tenants)
	}
	for i := 0; i < arrivals; i += 4 {
		fmt.Printf("%-10d", i+1)
		for si := range strategies {
			fmt.Printf(" %10.3f", results[si].CumulativeRatio[i])
		}
		fmt.Println()
	}
	fmt.Printf("%-10s", "final")
	for si := range strategies {
		fmt.Printf(" %10.3f", results[si].CumulativeRatio[arrivals-1])
	}
	fmt.Println()

	fmt.Println("\nEarly tenants enjoy deep savings; once capacities fill, later tenants")
	fmt.Println("run closer to all-red and the cumulative ratio climbs (paper Fig. 7).")
}
