// Command benchgate compares two `go test -bench` outputs and fails on
// performance regressions: CI runs the key benchmarks on the base commit
// and on the head commit, then gates the merge on the delta staying
// under a threshold (a benchstat-style comparison without external
// dependencies).
//
// Usage:
//
//	benchgate -base base.txt -head head.txt [-threshold 0.30] [-match regexp]
//
// Each benchmark's samples (from -count N) collapse to their minimum —
// the most noise-robust central tendency for "how fast can this go" on
// shared CI runners. A benchmark is a regression when
// min(head) > min(base)·(1+threshold); benchmarks present in only one
// file are reported but never fail the gate (they were added or
// removed). Exit status 1 on any regression.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	base := flag.String("base", "", "bench output of the base commit")
	head := flag.String("head", "", "bench output of the head commit")
	threshold := flag.Float64("threshold", 0.30, "maximum allowed relative slowdown (0.30 = +30%)")
	match := flag.String("match", "", "only gate benchmarks whose name matches this regexp (empty = all)")
	flag.Parse()
	if *base == "" || *head == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -base and -head are required")
		os.Exit(2)
	}
	re, err := compileMatch(*match)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: bad -match: %v\n", err)
		os.Exit(2)
	}
	baseNs, err := parseFile(*base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	headNs, err := parseFile(*head)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	report, regressions := Compare(baseNs, headNs, re, *threshold)
	fmt.Print(report)
	if len(regressions) > 0 {
		fmt.Printf("\nFAIL: %d benchmark(s) regressed beyond +%.0f%%: %s\n",
			len(regressions), *threshold*100, strings.Join(regressions, ", "))
		os.Exit(1)
	}
	fmt.Printf("\nPASS: no benchmark regressed beyond +%.0f%%\n", *threshold*100)
}

func compileMatch(expr string) (*regexp.Regexp, error) {
	if expr == "" {
		return nil, nil
	}
	return regexp.Compile(expr)
}

func parseFile(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseBench(f)
}

// ParseBench reads `go test -bench` text output and returns ns/op
// samples per benchmark name. The goroutine-count suffix (-8) is
// stripped so runs from differently sized machines still line up.
func ParseBench(r io.Reader) (map[string][]float64, error) {
	out := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := stripProcs(fields[0])
		// fields: name, iterations, value, unit, [more value/unit pairs].
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad ns/op value %q", sc.Text(), fields[i])
			}
			out[name] = append(out[name], v)
			break
		}
	}
	return out, sc.Err()
}

// stripProcs removes the trailing -GOMAXPROCS from a benchmark name.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Compare renders the delta table and returns the regressed benchmark
// names. Only benchmarks present in both maps (and matching re, when
// non-nil) are gated.
func Compare(base, head map[string][]float64, re *regexp.Regexp, threshold float64) (string, []string) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	for name := range head {
		if _, ok := base[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var b strings.Builder
	fmt.Fprintf(&b, "%-60s %14s %14s %9s\n", "benchmark", "base ns/op", "head ns/op", "delta")
	var regressions []string
	for _, name := range names {
		if re != nil && !re.MatchString(name) {
			continue
		}
		bs, inBase := base[name]
		hs, inHead := head[name]
		switch {
		case !inBase:
			fmt.Fprintf(&b, "%-60s %14s %14.0f %9s\n", name, "-", minOf(hs), "new")
		case !inHead:
			fmt.Fprintf(&b, "%-60s %14.0f %14s %9s\n", name, minOf(bs), "-", "gone")
		default:
			bm, hm := minOf(bs), minOf(hs)
			delta := hm/bm - 1
			mark := ""
			if delta > threshold {
				mark = " !"
				regressions = append(regressions, name)
			}
			fmt.Fprintf(&b, "%-60s %14.0f %14.0f %+8.1f%%%s\n", name, bm, hm, delta*100, mark)
		}
	}
	return b.String(), regressions
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
