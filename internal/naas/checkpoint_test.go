package naas

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"soar/internal/paper"
)

func TestServiceCheckpointRestore(t *testing.T) {
	tr, loads := paper.Figure2()
	s := NewService(tr, 2)
	lease, err := s.Place(loads, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	s.Close()

	fresh := NewService(tr, 2)
	t.Cleanup(fresh.Close)
	if err := fresh.Restore(&buf); err != nil {
		t.Fatalf("restore: %v", err)
	}
	got, err := fresh.Lookup(lease.ID)
	if err != nil {
		t.Fatalf("lease lost across restart: %v", err)
	}
	if got.Phi != lease.Phi || len(got.Blue) != len(lease.Blue) {
		t.Fatalf("restored lease %+v, placed %+v", got, lease)
	}
}

func TestHTTPCheckpointStreamIsRestorable(t *testing.T) {
	tr, loads := paper.Figure2()
	svc := NewService(tr, 2)
	t.Cleanup(svc.Close)
	lease, err := svc.Place(loads, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	var buf bytes.Buffer
	c := NewClient(ts.URL, nil)
	size, err := c.Checkpoint(context.Background(), &buf)
	if err != nil {
		t.Fatalf("GET /v1/checkpoint: %v", err)
	}
	if size != int64(buf.Len()) || size == 0 {
		t.Fatalf("checkpoint size %d, buffered %d", size, buf.Len())
	}

	fresh := NewService(tr, 2)
	t.Cleanup(fresh.Close)
	if err := fresh.Restore(&buf); err != nil {
		t.Fatalf("restore of HTTP checkpoint: %v", err)
	}
	if _, err := fresh.Lookup(lease.ID); err != nil {
		t.Fatalf("lease lost through the HTTP checkpoint: %v", err)
	}
}

func TestHTTPCheckpointSave(t *testing.T) {
	tr, _ := paper.Figure2()
	svc := NewService(tr, 2)
	t.Cleanup(svc.Close)

	// Without a configured saver, POST must refuse, not pretend.
	ts := httptest.NewServer(svc.Handler())
	resp, err := http.Post(ts.URL+"/v1/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST without saver: HTTP %d, want 503", resp.StatusCode)
	}
	ts.Close()

	saved := 0
	svc.SetCheckpointSaver(func() (string, int64, error) {
		saved++
		if saved > 1 {
			return "", 0, errors.New("disk full")
		}
		return "/tmp/ckpt", 123, nil
	})
	ts = httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL, nil)
	path, size, err := c.SaveCheckpoint(context.Background())
	if err != nil {
		t.Fatalf("POST /v1/checkpoint: %v", err)
	}
	if path != "/tmp/ckpt" || size != 123 {
		t.Fatalf("save reported %q/%d", path, size)
	}
	if _, _, err := c.SaveCheckpoint(context.Background()); err == nil {
		t.Fatal("failing saver reported success")
	}
}
