package naas

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"soar/internal/ha"
	"soar/internal/obs"
	"soar/internal/paper"
	"soar/internal/sched"
	"soar/internal/topology"
)

func newTestCluster(t *testing.T) *ha.Cluster {
	t.Helper()
	cl, err := ha.NewCluster(topology.CompleteKAry(3, 4), ha.Options{
		Level:      1,
		Replicas:   1,
		Heartbeat:  25 * time.Millisecond,
		MissBudget: 4,
		Sched:      sched.Config{Capacity: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// podLocalLoad builds a global load vector confined to one shard's pod.
func podLocalLoad(cl *ha.Cluster, shard int) []int {
	p := cl.Partitioning()
	pod := p.Shards[shard].Pod
	load := make([]int, p.Tree.N())
	for _, lv := range pod.Tree.Leaves() {
		load[pod.Global[lv]] = 1
	}
	return load
}

// TestShardedFront drives the shard-aware HTTP front end to end:
// admissions route to the pod their load lives in, leases come back
// with cluster-wide ids, /v1/shards mirrors membership, cross-pod
// loads are the client's error, and draining flips readiness while
// liveness stays green.
func TestShardedFront(t *testing.T) {
	cl := newTestCluster(t)
	front := NewSharded(cl)
	srv := httptest.NewServer(front.Handler())
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL, nil)
	ctx := context.Background()

	if ok, err := c.Ready(ctx); err != nil || !ok {
		t.Fatalf("Ready = %v, %v; want true", ok, err)
	}

	lease, err := c.Place(ctx, podLocalLoad(cl, 1), 2)
	if err != nil {
		t.Fatal(err)
	}
	if shard, _ := ha.SplitID(lease.ID); shard != 1 {
		t.Fatalf("lease %d routed to shard %d, want 1", lease.ID, shard)
	}
	got, err := c.Lookup(ctx, lease.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Phi != lease.Phi || len(got.Blue) != len(lease.Blue) {
		t.Fatalf("lookup %+v != placed %+v", got, lease)
	}

	shards, err := c.Shards(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != cl.Shards() {
		t.Fatalf("got %d shards, want %d", len(shards), cl.Shards())
	}
	for _, si := range shards {
		want := 0
		if si.Index == 1 {
			want = 1
		}
		if si.Tenants != want {
			t.Fatalf("shard %d tenants = %d, want %d", si.Index, si.Tenants, want)
		}
		if si.PrimaryNode < 0 || si.Epoch == 0 || si.PrimaryAddr == "" {
			t.Fatalf("shard %d not serving: %+v", si.Index, si)
		}
	}

	// A load spanning two pods cannot be served by any single shard.
	cross := podLocalLoad(cl, 0)
	for v, n := range podLocalLoad(cl, 2) {
		cross[v] += n
	}
	if _, err := c.Place(ctx, cross, 2); err == nil || !strings.Contains(err.Error(), "HTTP 400") {
		t.Fatalf("cross-pod place: %v, want HTTP 400", err)
	}

	if err := c.Release(ctx, lease.ID); err != nil {
		t.Fatal(err)
	}

	// Draining: readiness fails, liveness and the API keep answering.
	front.SetDraining(true)
	if ok, err := c.Ready(ctx); err != nil || ok {
		t.Fatalf("Ready while draining = %v, %v; want false", ok, err)
	}
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200", resp.StatusCode)
	}
	if _, err := c.Shards(ctx); err != nil {
		t.Fatalf("shards while draining: %v", err)
	}
}

// scrape fetches one /metrics page and returns both the raw text and
// the parsed families keyed by name.
func scrape(t *testing.T, url string) (string, map[string]float64) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d, want 200", url, resp.StatusCode)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	fams, err := obs.ParseText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("parse %s: %v", url, err)
	}
	sums := map[string]float64{}
	for _, f := range fams {
		for _, s := range f.Samples {
			sums[f.Name] += s.Value
		}
	}
	return buf.String(), sums
}

// TestShardedMetricsSplit proves the two-registry scrape: the default
// page carries the cluster's soar_ha_* families (epoch rejections,
// failovers, heartbeats), ?shard=K the shard's scheduler families —
// and never each other's, so both pages stay well-formed expositions.
// After a crash the cluster page shows the failover and the shard page
// is served by the promoted incarnation.
func TestShardedMetricsSplit(t *testing.T) {
	cl := newTestCluster(t)
	front := NewSharded(cl)
	srv := httptest.NewServer(front.Handler())
	t.Cleanup(srv.Close)

	text, sums := scrape(t, srv.URL+"/metrics")
	for _, fam := range []string{
		"soar_ha_epoch_rejections_total", "soar_ha_failovers_total", "soar_ha_heartbeats_total",
	} {
		if !strings.Contains(text, fam) {
			t.Fatalf("cluster page missing %s:\n%s", fam, text)
		}
	}
	if strings.Contains(text, "soar_sched_admissions_total") {
		t.Fatal("cluster page leaks per-shard scheduler families")
	}
	if sums["soar_ha_failovers_total"] != 0 {
		t.Fatalf("failovers = %v before any crash", sums["soar_ha_failovers_total"])
	}

	shardText, _ := scrape(t, srv.URL+"/metrics?shard=0")
	for _, fam := range []string{
		"soar_sched_admissions_total", "soar_ckpt_restore_attempts_total", "soar_ckpt_restore_reject_total",
	} {
		if !strings.Contains(shardText, fam) {
			t.Fatalf("shard page missing %s", fam)
		}
	}
	if strings.Contains(shardText, "soar_ha_heartbeats_total") {
		t.Fatal("shard page leaks cluster families")
	}

	resp, err := http.Get(srv.URL + "/metrics?shard=99")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad shard = %d, want 400", resp.StatusCode)
	}

	// Crash shard 0's primary; the standby promotes and both pages
	// reflect it: a counted failover, and a shard registry that is the
	// new incarnation's (fresh counters, same families).
	pre := cl.Status()[0]
	if cl.CrashPrimary(0) == nil {
		t.Fatal("no primary to crash")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := cl.Status()[0]
		if st.Epoch > pre.Epoch && st.PrimaryNode >= 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard 0 did not fail over (epoch %d)", st.Epoch)
		}
		time.Sleep(10 * time.Millisecond)
	}
	_, sums = scrape(t, srv.URL+"/metrics")
	if sums["soar_ha_failovers_total"] < 1 {
		t.Fatalf("failovers = %v after crash, want >= 1", sums["soar_ha_failovers_total"])
	}
	shardText, _ = scrape(t, srv.URL+"/metrics?shard=0") // the promoted incarnation serves it
	if !strings.Contains(shardText, "soar_sched_admissions_total") {
		t.Fatal("post-failover shard page missing scheduler families")
	}
}

// TestRestoreCountersOverMetrics drives the checkpoint-restore
// rejection counters through the HTTP scrape an operator actually
// watches: a flipped byte lands in reason="checksum", a checkpoint
// from a different fabric in reason="topology", and every try counts
// an attempt.
func TestRestoreCountersOverMetrics(t *testing.T) {
	tr, loads := paper.Figure2()
	src := NewServiceWith(tr, sched.Config{Capacity: 2})
	t.Cleanup(src.Close)
	if _, err := src.Place(loads, 2); err != nil {
		t.Fatal(err)
	}
	var good bytes.Buffer
	if err := src.Checkpoint(&good); err != nil {
		t.Fatal(err)
	}

	dst := NewServiceWith(tr, sched.Config{Capacity: 2})
	t.Cleanup(dst.Close)
	srv := httptest.NewServer(dst.Handler())
	t.Cleanup(srv.Close)

	// Flip a bit of the footer's FNV sum (the stream's last byte): the
	// footer still decodes, so the rejection is the checksum mismatch
	// itself, not a frame error.
	flipped := append([]byte(nil), good.Bytes()...)
	flipped[len(flipped)-1] ^= 0x40
	if err := dst.Restore(bytes.NewReader(flipped)); err == nil {
		t.Fatal("corrupt checkpoint restored")
	}
	other := NewServiceWith(topology.MustBT(32), sched.Config{Capacity: 2})
	t.Cleanup(other.Close)
	var wrongTopo bytes.Buffer
	if err := other.Checkpoint(&wrongTopo); err != nil {
		t.Fatal(err)
	}
	if err := dst.Restore(bytes.NewReader(wrongTopo.Bytes())); err == nil {
		t.Fatal("wrong-fabric checkpoint restored")
	}

	text, sums := scrape(t, srv.URL+"/metrics")
	if got := sums["soar_ckpt_restore_attempts_total"]; got != 2 {
		t.Fatalf("restore attempts = %v, want 2", got)
	}
	for _, want := range []string{
		`soar_ckpt_restore_reject_total{reason="checksum"} 1`,
		`soar_ckpt_restore_reject_total{reason="topology"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("scrape missing %q:\n%s", want, text)
		}
	}
}

// TestServiceProbes covers the plain (non-sharded) service's health
// surface: liveness always answers, readiness tracks restored-and-not-
// draining.
func TestServiceProbes(t *testing.T) {
	tr, _ := paper.Figure2()
	s := NewServiceWith(tr, sched.Config{Capacity: 2})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL, nil)
	ctx := context.Background()

	probe := func(path string) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	if got := probe("/v1/healthz"); got != http.StatusOK {
		t.Fatalf("healthz = %d", got)
	}
	if ok, err := c.Ready(ctx); err != nil || !ok {
		t.Fatalf("Ready = %v, %v; want true", ok, err)
	}

	s.SetReady(false) // the daemon's state while a restore is in flight
	if got := probe("/v1/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz unrestored = %d, want 503", got)
	}
	s.SetReady(true)
	s.SetDraining(true)
	if got := probe("/v1/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz draining = %d, want 503", got)
	}
	if got := probe("/v1/healthz"); got != http.StatusOK {
		t.Fatalf("healthz draining = %d, want 200", got)
	}
	s.SetDraining(false)
	if ok, _ := c.Ready(ctx); !ok {
		t.Fatal("readiness did not recover after drain cleared")
	}
}
