package ha

import (
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"soar/internal/obs"
	"soar/internal/sched"
	"soar/internal/topology"
)

// ErrFenced is returned for commits attempted by a scheduler
// incarnation whose epoch is no longer current (or whose process was
// crashed): the mutation was rejected and did not happen.
var ErrFenced = errors.New("ha: commit fenced: stale epoch")

// ErrNoPrimary is returned by routing when a shard had no serving
// primary for the whole route timeout (a failover that never
// converged).
var ErrNoPrimary = errors.New("ha: no serving primary")

// schedUnlimited mirrors the scheduler's internal unlimited-capacity
// sentinel for shards whose global config is uncapped.
const schedUnlimited = 1 << 30

// incarnation is one (scheduler, epoch) pairing: the unit fencing
// reasons about. Promotion builds a new incarnation; the old one's
// scheduler stays alive but every commit it attempts fences.
type incarnation struct {
	sch   *sched.Scheduler
	reg   *obs.Registry // the scheduler's private metrics registry
	epoch uint64
	node  int
	// crashed is the in-process stand-in for the primary's process
	// dying: set by CrashPrimary, read by the fence closure.
	crashed *atomic.Bool
	prim    *primary
}

// shard runs one pod's control plane: a primary incarnation plus warm
// standbys, with epoch-fenced failover between them.
type shard struct {
	idx  int
	spec ShardSpec
	opts *Options
	caps []int // local capacity vector (spine pinned to 0)
	met  *Metrics
	logf func(format string, args ...any)

	// epoch is the shard's fencing register: the single word every
	// incarnation's Fence closure compares itself against. Storing a
	// new epoch is THE failover commit point — it strictly orders
	// against every in-flight commit, because the scheduler consults
	// the fence under its commit lock.
	epoch atomic.Uint64

	// cur is the serving incarnation, nil while a promotion is being
	// built (routing retries until it lands).
	cur atomic.Pointer[incarnation]

	// mu serializes membership changes: promotion, crash, close.
	mu       sync.Mutex
	standbys []*standby
	retired  []*incarnation
	closed   bool
}

// localCaps builds the shard's capacity vector: spine switches are
// shared infrastructure and never leasable (capacity 0); pod switches
// inherit the global per-switch capacity.
func localCaps(pod *topology.Pod, base sched.Config) []int {
	caps := make([]int, pod.Tree.N())
	for lv := range caps {
		if lv < pod.Spine {
			continue // spine: capacity 0
		}
		gv := pod.Global[lv]
		switch {
		case base.Capacities != nil:
			caps[lv] = base.Capacities[gv]
		case base.Capacity > 0:
			caps[lv] = base.Capacity
		default:
			caps[lv] = schedUnlimited
		}
	}
	return caps
}

func newShard(spec ShardSpec, opts *Options, met *Metrics, reg *obs.Registry, logf func(string, ...any)) (*shard, error) {
	s := &shard{idx: spec.Index, spec: spec, opts: opts, met: met, logf: logf}
	s.caps = localCaps(spec.Pod, opts.Sched)
	s.epoch.Store(1)
	inc, err := s.spawnPrimary(s.nodeID(0), 1, nil)
	if err != nil {
		return nil, fmt.Errorf("ha: shard %d: %w", s.idx, err)
	}
	s.cur.Store(inc)
	for r := 0; r < opts.Replicas; r++ {
		s.standbys = append(s.standbys, s.spawnStandby(s.nodeID(r+1), inc.prim.addr()))
	}
	label := obs.Labels{"shard": strconv.Itoa(s.idx)}
	reg.GaugeFunc("soar_ha_shard_epoch", "Current fencing epoch per shard.", label,
		func() float64 { return float64(s.epoch.Load()) })
	reg.GaugeFunc("soar_ha_shard_standbys", "Attachable warm standbys per shard.", label,
		func() float64 { return float64(s.standbyCount()) })
	return s, nil
}

// nodeID gives replica slots of this shard stable identities for the
// chaos injector: slot 0 is the bootstrap primary.
func (s *shard) nodeID(slot int) int { return (s.idx+1)*100 + slot }

// fenceFor binds one incarnation's fence: the scheduler consults it
// under the commit lock before every mutation. An epoch mismatch means
// a standby was promoted past this incarnation — the late commit is
// rejected and counted, the paper trail the failover soak asserts on.
func (s *shard) fenceFor(epoch uint64, crashed *atomic.Bool) func() error {
	return func() error {
		if crashed.Load() {
			return ErrFenced
		}
		if s.epoch.Load() != epoch {
			s.met.epochRejections.Inc()
			return ErrFenced
		}
		return nil
	}
}

// spawnPrimary builds one serving incarnation at the given epoch: a
// fresh scheduler journaling into a fresh hub, fenced against the
// shard's epoch register, serving replication on its own listener.
// prep (the promotion replay) runs after the scheduler exists and
// before it is reachable; a prep failure tears the incarnation down.
func (s *shard) spawnPrimary(node int, epoch uint64, prep func(*sched.Scheduler) error) (*incarnation, error) {
	h := newHub()
	f := &feed{shard: uint32(s.idx), epoch: epoch, hub: h, met: s.met, logf: s.logf}
	crashed := new(atomic.Bool)
	cfg := s.opts.Sched
	cfg.Capacity = 0
	cfg.Capacities = s.caps
	cfg.Journal = f.journal
	cfg.Fence = s.fenceFor(epoch, crashed)
	cfg.Obs = obs.NewRegistry() // a registry belongs to one scheduler
	cfg.Trace = nil
	sch := sched.New(s.spec.Pod.Tree, cfg)
	if prep != nil {
		if err := prep(sch); err != nil {
			sch.Close()
			h.close()
			return nil, err
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		sch.Close()
		h.close()
		return nil, err
	}
	if s.opts.WrapListener != nil {
		ln = s.opts.WrapListener(node, ln)
	}
	prim := newPrimary(sch, f, h, ln, crashed, primaryConfig{
		shard:     uint32(s.idx),
		epoch:     epoch,
		node:      node,
		heartbeat: s.opts.Heartbeat,
		met:       s.met,
		logf:      s.logf,
	})
	return &incarnation{sch: sch, reg: cfg.Obs, epoch: epoch, node: node, crashed: crashed, prim: prim}, nil
}

func (s *shard) spawnStandby(node int, primaryAddr string) *standby {
	return newStandby(standbyConfig{
		shard:      uint32(s.idx),
		node:       node,
		treeN:      s.spec.Pod.Tree.N(),
		heartbeat:  s.opts.Heartbeat,
		missBudget: s.opts.MissBudget,
		maxJournal: s.opts.MaxJournal,
		dial:       s.opts.Dial,
		met:        s.met,
		logf:       s.logf,
		onSilence:  s.onSilence,
	}, primaryAddr)
}

// onSilence is the failover trigger: a standby heard nothing for the
// whole missed-heartbeat budget. obsEpoch is the epoch the standby
// last heard a primary at — a fire for an epoch that is no longer
// current is stale news (the promotion it asks for already happened),
// unless the shard has no serving incarnation at all (a previous
// promotion failed and must be retried).
func (s *shard) onSilence(obsEpoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if s.cur.Load() != nil && obsEpoch != s.epoch.Load() {
		return
	}
	s.promoteLocked()
}

// promoteLocked fails the shard over: advance the epoch (fencing every
// older incarnation), replay the freshest standby's checkpoint+journal
// into a new scheduler, audit it, and start serving. Caller holds mu.
func (s *shard) promoteLocked() {
	start := time.Now()
	best, bestSeq := -1, uint64(0)
	for i, sb := range s.standbys {
		_, seq, journal, _, ok := sb.state()
		if !ok {
			continue
		}
		last := seq + uint64(len(journal))
		// Freshest journal wins; node id breaks ties deterministically.
		if best == -1 || last > bestSeq || (last == bestSeq && sb.cfg.node < s.standbys[best].cfg.node) {
			best, bestSeq = i, last
		}
	}
	if best == -1 {
		s.logf("ha: shard %d: silence verdict but no standby has state; will retry", s.idx)
		return
	}

	newEpoch := s.epoch.Load() + 1
	s.epoch.Store(newEpoch) // fencing moment: older incarnations now reject

	old := s.cur.Load()
	s.cur.Store(nil)
	if old != nil {
		s.retired = append(s.retired, old)
		go old.prim.close()
	}

	sb := s.standbys[best]
	s.standbys = append(s.standbys[:best], s.standbys[best+1:]...)
	sb.halt()
	ckpt, seq, journal, _, _ := sb.state()
	inc, err := s.spawnPrimary(sb.cfg.node, newEpoch, func(sch *sched.Scheduler) error {
		return replay(sch, ckpt, seq, journal)
	})
	if err != nil {
		// The shard is headless until another silence verdict retries
		// with the remaining standbys; routing returns ErrNoPrimary
		// only after the route timeout.
		s.logf("ha: shard %d: promotion of node %d at epoch %d failed: %v", s.idx, sb.cfg.node, newEpoch, err)
		return
	}
	s.cur.Store(inc)
	s.met.failovers.Inc()
	s.met.promoteSeconds.Observe(time.Since(start).Seconds())
	s.logf("ha: shard %d: node %d promoted at epoch %d (seq %d, %d journal events)",
		s.idx, sb.cfg.node, newEpoch, seq, len(journal))
	for _, other := range s.standbys {
		other.setPrimaryAddr(inc.prim.addr())
	}
	// Refill the replica set: the dead primary's slot comes back as a
	// standby (its dials fail until the node heals, like a rebooting
	// machine).
	if old != nil {
		s.standbys = append(s.standbys, s.spawnStandby(old.node, inc.prim.addr()))
	}
}

// crashPrimary kills the serving incarnation the way a process death
// would: every future commit fails (fenced via the crashed flag, so
// in-flight requests get errors rather than ACKs) and its network goes
// away. Standbys notice the silence and fail over. Returns the crashed
// incarnation's scheduler so tests can assert its late commits fence,
// or nil if the shard had no serving primary.
func (s *shard) crashPrimary() *sched.Scheduler {
	s.mu.Lock()
	defer s.mu.Unlock()
	inc := s.cur.Load()
	if inc == nil {
		return nil
	}
	inc.crashed.Store(true)
	go inc.prim.close()
	return inc.sch
}

// retriable reports whether a routing error may resolve after a
// failover (the request never committed).
func retriable(err error) bool {
	return errors.Is(err, ErrFenced) || errors.Is(err, sched.ErrClosed)
}

// place routes one admission to the shard's serving incarnation,
// absorbing failovers: a fenced or closed scheduler means the commit
// did not happen, so the request retries against the next incarnation
// until the route timeout.
func (s *shard) place(load []int, k int) (*sched.Lease, error) {
	deadline := time.Now().Add(s.opts.RouteTimeout)
	for {
		if inc := s.cur.Load(); inc != nil && !inc.crashed.Load() {
			lease, err := inc.sch.Place(load, k)
			if err == nil || !retriable(err) {
				return lease, err
			}
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("ha: shard %d: %w", s.idx, ErrNoPrimary)
		}
		time.Sleep(s.opts.Heartbeat)
	}
}

// release routes one release; ErrNotFound passes through (the lease
// may have been lost with an un-replicated commit, which is the
// documented at-most-once admission contract under failover).
func (s *shard) release(id int64) error {
	deadline := time.Now().Add(s.opts.RouteTimeout)
	for {
		if inc := s.cur.Load(); inc != nil && !inc.crashed.Load() {
			err := inc.sch.Release(id)
			if err == nil || !retriable(err) {
				return err
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("ha: shard %d: %w", s.idx, ErrNoPrimary)
		}
		time.Sleep(s.opts.Heartbeat)
	}
}

func (s *shard) lookup(id int64) (*sched.Lease, error) {
	inc := s.cur.Load()
	if inc == nil {
		return nil, fmt.Errorf("ha: shard %d: %w", s.idx, ErrNoPrimary)
	}
	return inc.sch.Lookup(id)
}

func (s *shard) standbyCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.standbys)
}

// scheduler returns the serving incarnation's scheduler (nil mid
// failover).
func (s *shard) scheduler() *sched.Scheduler {
	if inc := s.cur.Load(); inc != nil {
		return inc.sch
	}
	return nil
}

// registry returns the serving incarnation's private scheduler
// registry (nil mid failover).
func (s *shard) registry() *obs.Registry {
	if inc := s.cur.Load(); inc != nil {
		return inc.reg
	}
	return nil
}

func (s *shard) status() ShardStatus {
	st := ShardStatus{
		Index: s.idx,
		Root:  s.spec.Pod.Root,
		Epoch: s.epoch.Load(),
	}
	st.Standbys = s.standbyCount()
	if inc := s.cur.Load(); inc != nil {
		st.PrimaryNode = inc.node
		st.PrimaryAddr = inc.prim.addr()
		st.Seq = inc.sch.JournalSeq()
		st.Tenants = inc.sch.Snapshot().Tenants
	} else {
		st.PrimaryNode = -1
	}
	return st
}

func (s *shard) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	standbys := s.standbys
	s.standbys = nil
	retired := s.retired
	cur := s.cur.Load()
	s.mu.Unlock()
	for _, sb := range standbys {
		sb.halt()
	}
	if cur != nil {
		cur.prim.close()
		cur.sch.Close()
	}
	for _, inc := range retired {
		inc.prim.close()
		inc.sch.Close()
	}
}
