// Package stats provides the small statistical helpers the experiment
// harness uses to aggregate repeated runs: means, standard deviations and
// standard errors, matching the paper's "average over ten experiments
// with error bars where variance is significant".
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the sample standard deviation of xs (0 for fewer than two
// samples).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// StdErr returns the standard error of the mean of xs.
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Std(xs) / math.Sqrt(float64(len(xs)))
}

// Quantile returns the q-quantile of xs (q in [0, 1]) using linear
// interpolation between closest ranks (the "R-7" estimator, the default
// of most statistics packages): for a sorted sample x_0..x_{n-1} it
// evaluates x at rank q·(n−1), interpolating between the two neighbours.
// It returns 0 for an empty sample, the single value for n = 1, and
// clamps q into [0, 1]. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// QuantileSorted is Quantile over an already ascending-sorted sample,
// avoiding the copy — the scheduler's metrics path calls it repeatedly
// on one sorted latency snapshot.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	return quantileSorted(sorted, q)
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q < 0 || math.IsNaN(q) {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// P50 returns the median of xs.
func P50(xs []float64) float64 { return Quantile(xs, 0.50) }

// P95 returns the 95th percentile of xs.
func P95(xs []float64) float64 { return Quantile(xs, 0.95) }

// P99 returns the 99th percentile of xs — the tail-latency figure the
// scheduler's per-request metrics report.
func P99(xs []float64) float64 { return Quantile(xs, 0.99) }

// MinMax returns the smallest and largest values of xs.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Accumulator collects repeated measurements of a vector-valued
// experiment (one value per x-axis point) and reports per-point means and
// standard errors.
type Accumulator struct {
	points int
	runs   [][]float64
}

// NewAccumulator creates an accumulator for the given number of x-axis
// points.
func NewAccumulator(points int) *Accumulator {
	return &Accumulator{points: points}
}

// Add records one repetition. It panics if the length disagrees with the
// accumulator's point count, which would silently misalign axes.
func (a *Accumulator) Add(run []float64) {
	if len(run) != a.points {
		panic("stats: repetition length mismatch")
	}
	cp := make([]float64, len(run))
	copy(cp, run)
	a.runs = append(a.runs, cp)
}

// Reps returns the number of repetitions recorded.
func (a *Accumulator) Reps() int { return len(a.runs) }

// Mean returns the per-point mean across repetitions.
func (a *Accumulator) Mean() []float64 {
	out := make([]float64, a.points)
	col := make([]float64, len(a.runs))
	for p := 0; p < a.points; p++ {
		for r, run := range a.runs {
			col[r] = run[p]
		}
		out[p] = Mean(col)
	}
	return out
}

// StdErr returns the per-point standard error across repetitions.
func (a *Accumulator) StdErr() []float64 {
	out := make([]float64, a.points)
	col := make([]float64, len(a.runs))
	for p := 0; p < a.points; p++ {
		for r, run := range a.runs {
			col[r] = run[p]
		}
		out[p] = StdErr(col)
	}
	return out
}
