// Package sched turns SOAR into a concurrent multi-tenant placement
// service: the serving layer between the paper's Sec. 5.2 online model
// and a NaaS control plane that must absorb many simultaneous request
// streams (the contention regime studied in the follow-up "Constrained
// In-network Computing with Low Congestion in Datacenter Networks").
//
// A Scheduler owns one tree network plus its per-switch lease capacities
// (a Ledger) and admits Place/Release requests from any number of
// goroutines. Requests are coalesced inside a short batching window and
// dispatched to a pool of reusable core.Incremental engines — one per
// worker, patched with load and availability deltas via SetLoads /
// SetAvails instead of re-solving from scratch — so steady-state
// admission is allocation-free and the solves of one batch run in
// parallel. Commits are serialized in arrival order against the ledger;
// a batch member whose optimistically-solved placement lost a capacity
// race to an earlier member is transparently re-solved against the
// updated availability set, so leases never oversubscribe a switch.
//
// A background re-packer (repack.go) periodically undoes the
// fragmentation that tenant departures leave behind: it re-solves the
// worst-ratio tenants against the freed capacity under a bounded
// migration budget (at most m tenants moved per round) and reports the
// aggregate Φ recovered. Per-request latency and throughput metrics
// (metrics.go) are built on internal/stats.
//
// Driven single-threaded, the scheduler is observably identical to the
// sequential online model: one request per batch, solved against the
// current residual capacities by an engine whose tables are bitwise
// equal to a from-scratch SOAR-Gather (see TestSchedulerMatchesSequential).
package sched

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"soar/internal/core"
	"soar/internal/obs"
	"soar/internal/topology"
)

// ErrNotFound is returned for operations on unknown tenant ids.
var ErrNotFound = errors.New("sched: no such tenant")

// ErrClosed is returned for requests submitted to a closed scheduler.
var ErrClosed = errors.New("sched: scheduler closed")

// Lease describes one tenant's allocation. Leases returned by Place and
// Lookup are caller-owned copies: mutating them cannot corrupt (or race
// with) the scheduler's internal state, and the re-packer migrating the
// tenant does not mutate them either — re-Lookup to observe migrations.
type Lease struct {
	// ID is the scheduler-assigned tenant identifier.
	ID int64
	// Blue lists the switch ids leased to the tenant for aggregation.
	Blue []int
	// K is the budget the tenant requested.
	K int
	// Phi is the utilization cost of the tenant's Reduce under the lease.
	Phi float64
	// AllRed is the tenant's utilization without any aggregation; the
	// ratio Phi/AllRed is the value delivered.
	AllRed float64
	// Load is the tenant's per-switch server counts (kept for audits).
	Load []int
}

// Ratio returns Phi/AllRed, the tenant's normalized utilization
// (1 means the lease bought nothing; lower is better).
func (l *Lease) Ratio() float64 {
	if l.AllRed == 0 {
		return 1
	}
	return l.Phi / l.AllRed
}

// Stats summarizes the scheduler's state.
type Stats struct {
	// Switches is the network size.
	Switches int
	// Tenants is the number of active leases.
	Tenants int
	// SwitchesInUse counts switches with at least one lease.
	SwitchesInUse int
	// CapacityUsed and CapacityTotal aggregate lease slots.
	CapacityUsed  int64
	CapacityTotal int64
	// MeanRatio is the mean normalized utilization across active leases
	// (1 if there are none).
	MeanRatio float64
}

// RepackConfig tunes the background re-packer.
type RepackConfig struct {
	// Every is the period between re-packing rounds; ≤ 0 disables the
	// background loop (RepackNow still works).
	Every time.Duration
	// MaxMoves is the migration budget m: at most this many tenants are
	// moved per round (default 8). Bounding m keeps the data-plane churn
	// of a round predictable.
	MaxMoves int
	// MinGain is the relative Φ improvement required to migrate a
	// tenant: a move happens only if newΦ < oldΦ·(1−MinGain). Zero means
	// any strict improvement.
	MinGain float64
}

// Config tunes a Scheduler. The zero value is usable: unlimited
// capacity, one worker per CPU, no batching delay, no background
// re-packing.
type Config struct {
	// Capacity is the uniform per-switch lease capacity (≤ 0 unlimited).
	Capacity int
	// Capacities, when non-nil, is the per-switch lease capacity vector
	// for heterogeneous deployments and overrides Capacity. Entries are
	// literal: 0 makes a switch permanently unavailable (a plain
	// forwarder), negative values clamp to 0. Its length must equal the
	// tree's switch count.
	Capacities []int
	// Workers is the engine-pool size: the number of concurrent SOAR
	// solves (default GOMAXPROCS). Each worker owns one reusable
	// core.Incremental engine.
	Workers int
	// Window is the batching window: after the first request of a batch
	// arrives, the dispatcher keeps admitting requests into the batch for
	// this long before solving. 0 still coalesces whatever is already
	// queued, without waiting.
	Window time.Duration
	// QueueDepth bounds the number of buffered requests (default
	// max(64, 4·Workers)); submitters beyond it block.
	QueueDepth int
	// Memo enables the cross-request solve cache: every engine of the
	// pool (and the dispatcher's background slot) keeps a core.Memo of
	// hash-consed subtree classes, so churning tenants whose sparse
	// loads revisit the same structures hit warm DP tables instead of
	// recomputing them. Placements are bitwise identical either way.
	Memo bool
	// MemoBudget bounds the bytes each solve cache retains before it
	// evicts (full reset; ≤ 0 selects the core default).
	MemoBudget int64
	// BatchSolve routes multi-placement batches through the fused batch
	// engine (core.BatchSolver): the dispatcher groups a batch's
	// placements by budget and solves each group in one pass over the
	// tree against shared zero-load class tables, instead of fanning the
	// placements out over per-worker engines. Placements are bitwise
	// identical either way (the batch engine is an exact rearrangement
	// of the memoized solve); the win is sparse tenants, whose solves
	// are dominated by the zero-load subtrees the batch engine shares.
	// Single-placement batches still use the incremental background
	// engine. BatchSolve implies its own solve cache and is independent
	// of Memo (which tunes the per-worker engines).
	BatchSolve bool
	// Repack tunes the background re-packer.
	Repack RepackConfig
	// Journal, when non-nil, receives one JournalEvent per committed
	// control-plane mutation (place, release, re-packer migration), in
	// commit order with densely increasing sequence numbers. It runs on
	// the dispatcher goroutine after the mutation is visible and outside
	// the commit lock; it must hand off quickly — internal/ha fans events
	// out to buffered per-standby streams. See journal.go.
	Journal func(JournalEvent)
	// Fence, when non-nil, is consulted under the commit lock before
	// every admission, release and migration commits; a non-nil error
	// aborts the mutation and is returned to the caller. internal/ha
	// installs an epoch check here so a deposed primary's late commits
	// are rejected instead of diverging from the promoted standby.
	Fence func() error
	// Obs, when non-nil, is the metrics registry the scheduler registers
	// its families in (soar_sched_*, soar_memo_*, soar_ckpt_*); nil gets
	// a private registry. A registry belongs to at most one Scheduler —
	// a second registration of the same families panics.
	Obs *obs.Registry
	// Trace, when non-nil, is the span ring per-stage timings are
	// recorded in; nil gets a private 1024-span ring.
	Trace *obs.Trace
}

type opcode uint8

const (
	opPlace opcode = iota
	opRelease
	opRepack
)

// request is one queued operation. Requests are pooled: the submitting
// goroutine owns the request until it is handed to the queue, the
// dispatcher owns it until the response is signalled on done, and the
// submitter reclaims it afterwards — so a steady-state round trip
// allocates nothing.
type request struct {
	op opcode
	// place inputs: load is borrowed from the caller for the duration of
	// the call (the caller blocks until done), lease is the caller-owned
	// destination commit fills in.
	load  []int
	k     int // place: budget; repack: migration budget override
	lease *Lease
	// release input
	id int64
	// solver outputs
	blue   []bool
	phi    float64
	allRed float64
	// repack outputs
	moved     int
	recovered float64
	// conflicted marks a placement re-solved during commit; the metric
	// is counted under mu, the detection happens outside it.
	conflicted bool

	err  error
	t0   time.Time
	done chan struct{}
}

// tenant is the scheduler-internal lease record. It never escapes:
// Lookup and Place hand out copies, so the re-packer may mutate blue and
// phi freely. Records are pooled across the place/release lifecycle.
type tenant struct {
	id     int64
	k      int
	phi    float64
	allRed float64
	blue   []int
	load   []int
}

func (t *tenant) ratio() float64 {
	if t.allRed == 0 {
		return 1
	}
	return t.phi / t.allRed
}

// Scheduler is a concurrent multi-tenant placement service over one
// tree. Construct with New; stop with Close. All exported methods are
// safe for concurrent use.
type Scheduler struct {
	t   *topology.Tree
	cfg Config

	reqs chan *request
	stop chan struct{}
	bg   sync.WaitGroup // dispatcher + workers + re-pack ticker
	// closeMu is write-held only by Close to flip closed. soarlint's
	// lockdiscipline analyzer enforces the discipline declared here: no
	// channel op, Solve* call or blocking pool Get while either critical
	// lock is held, and closeMu is only ever taken before mu.
	//
	//soar:lockorder closeMu mu
	closeMu  sync.RWMutex //soar:critical
	closed   bool
	inflight sync.WaitGroup // submitted requests not yet answered

	reqPool sync.Pool
	tenPool sync.Pool

	// Dispatch state. Touched only by the dispatcher goroutine; workers
	// read places/ledger.avail strictly inside the wake→batchWG window,
	// during which the dispatcher is quiescent.
	workers   []*worker
	batch     []*request
	places    []*request
	repacks   []*request
	batchNext atomic.Int64
	batchWG   sync.WaitGroup
	bgSol     solver // dispatcher-owned: single solves, conflicts, re-packing
	bgBlue    []bool
	timer     *time.Timer
	// Batch-solve state (nil/empty unless Config.BatchSolve): the fused
	// engine plus the reusable per-group marshalling buffers. Dispatcher-
	// owned, like the rest of the dispatch state.
	bsol  *core.BatchSolver
	bks   []int
	bgrp  []*request
	bload [][]int
	bblue [][]bool
	bcost []float64

	mu     sync.Mutex //soar:critical guards ledger, leases, nextID, journalSeq, met
	ledger *Ledger
	leases map[int64]*tenant
	nextID int64
	met    metrics

	// Replication journal state (journal.go): journalSeq is assigned
	// under mu at each mutation; jbuf is the dispatcher-owned buffer
	// flushed to Config.Journal outside the lock.
	journalSeq uint64
	jbuf       []JournalEvent

	rejected atomic.Uint64 // requests failing validation (pre-queue)
}

// New creates a scheduler over tree t and starts its dispatcher, worker
// pool and (if configured) re-packer. Callers must Close it.
func New(t *topology.Tree, cfg Config) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = max(64, 4*cfg.Workers)
	}
	if cfg.Repack.MaxMoves <= 0 {
		cfg.Repack.MaxMoves = 8
	}
	ledger := NewLedger(t.N(), cfg.Capacity)
	if cfg.Capacities != nil {
		if len(cfg.Capacities) != t.N() {
			panic(fmt.Sprintf("sched: Capacities has %d entries for %d switches", len(cfg.Capacities), t.N()))
		}
		ledger = NewLedgerFromCaps(cfg.Capacities)
	}
	s := &Scheduler{
		t:      t,
		cfg:    cfg,
		reqs:   make(chan *request, cfg.QueueDepth),
		stop:   make(chan struct{}),
		ledger: ledger,
		leases: make(map[int64]*tenant),
		bgBlue: make([]bool, t.N()),
		timer:  time.NewTimer(time.Hour),
	}
	s.timer.Stop()
	s.reqPool.New = func() any { return &request{done: make(chan struct{}, 1)} }
	s.tenPool.New = func() any { return new(tenant) }
	s.bgSol.memo = s.newMemo()
	if cfg.BatchSolve {
		m := core.NewMemo(t)
		m.SetBudget(cfg.MemoBudget)
		s.bsol = core.NewBatchSolver(m)
	}
	s.workers = make([]*worker, cfg.Workers)
	for i := range s.workers {
		s.workers[i] = &worker{s: s, sol: solver{memo: s.newMemo()}, wake: make(chan struct{}, 1)}
	}
	reg, trace := cfg.Obs, cfg.Trace
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if trace == nil {
		trace = obs.NewTrace(1024)
	}
	s.initMetrics(reg, trace)
	s.bg.Add(1 + len(s.workers))
	go s.dispatch()
	for _, w := range s.workers {
		go w.loop()
	}
	if cfg.Repack.Every > 0 {
		s.bg.Add(1)
		go s.repackTicker()
	}
	return s
}

// Tree returns the scheduler's network.
func (s *Scheduler) Tree() *topology.Tree { return s.t }

// Close stops the scheduler: in-flight and queued requests are answered
// (with ErrClosed if they had not been admitted yet), background
// goroutines exit, and subsequent requests fail with ErrClosed. Close is
// idempotent and safe to call concurrently with Place/Release.
func (s *Scheduler) Close() {
	s.closeMu.Lock()
	if s.closed {
		s.closeMu.Unlock()
		return
	}
	s.closed = true
	s.closeMu.Unlock()
	close(s.stop)
	s.bg.Wait()
}

// submit enqueues r unless the scheduler is closed. On success the
// caller must wait on r.done and then call finish.
//
// The queue send happens after closeMu is released: a submitter stuck
// on a full queue must not block Close (soarlint's lockdiscipline
// analyzer rejects channel ops under a critical lock). The inflight
// count — taken before the lock is dropped — is what keeps the late
// send safe: drainAndFail closes reqs only once every in-flight
// request has been answered and reclaimed.
//
//soar:hotpath
func (s *Scheduler) submit(r *request) error {
	s.closeMu.RLock()
	if s.closed {
		s.closeMu.RUnlock()
		return ErrClosed
	}
	s.inflight.Add(1)
	s.closeMu.RUnlock()
	s.reqs <- r
	return nil
}

// finish reclaims an answered request.
//
//soar:hotpath
func (s *Scheduler) finish(r *request) {
	r.load = nil
	r.lease = nil
	r.err = nil
	s.reqPool.Put(r)
	s.inflight.Done()
}

// PlaceInto admits one tenant, filling the caller-owned lease in place
// (its Blue and Load slices are reused if they have capacity, which is
// what makes steady-state admission allocation-free). load is borrowed
// for the duration of the call and not retained. It returns ErrClosed
// after Close, or a validation error for malformed input.
//
//soar:hotpath
func (s *Scheduler) PlaceInto(load []int, k int, lease *Lease) error {
	if lease == nil {
		panic("sched: PlaceInto with nil lease")
	}
	if len(load) != s.t.N() { //soar:coldpath rejected input
		s.rejected.Add(1)
		return fmt.Errorf("sched: load has %d entries for %d switches", len(load), s.t.N())
	}
	for v, l := range load {
		if l < 0 { //soar:coldpath rejected input
			s.rejected.Add(1)
			return fmt.Errorf("sched: negative load %d at switch %d", l, v)
		}
	}
	if k < 0 { //soar:coldpath rejected input
		s.rejected.Add(1)
		return fmt.Errorf("sched: negative budget %d", k)
	}
	r := s.reqPool.Get().(*request)
	r.op, r.load, r.k, r.lease, r.t0 = opPlace, load, k, lease, time.Now()
	if err := s.submit(r); err != nil {
		s.reqPool.Put(r)
		return err
	}
	<-r.done
	err := r.err
	s.finish(r)
	return err
}

// Place admits one tenant and returns its lease.
func (s *Scheduler) Place(load []int, k int) (*Lease, error) {
	lease := new(Lease)
	if err := s.PlaceInto(load, k, lease); err != nil {
		return nil, err
	}
	return lease, nil
}

// Release ends a tenant's lease and reclaims its switches.
//
//soar:hotpath
func (s *Scheduler) Release(id int64) error {
	r := s.reqPool.Get().(*request)
	r.op, r.id, r.t0 = opRelease, id, time.Now()
	if err := s.submit(r); err != nil {
		s.reqPool.Put(r)
		return err
	}
	<-r.done
	err := r.err
	s.finish(r)
	return err
}

// RepackNow runs one synchronous re-packing round with the given
// migration budget (≤ 0 uses the configured MaxMoves) and returns the
// number of tenants moved and the aggregate Φ recovered.
func (s *Scheduler) RepackNow(maxMoves int) (moved int, recovered float64, err error) {
	r := s.reqPool.Get().(*request)
	r.op, r.k, r.t0 = opRepack, maxMoves, time.Now()
	if err := s.submit(r); err != nil {
		s.reqPool.Put(r)
		return 0, 0, err
	}
	<-r.done
	moved, recovered, err = r.moved, r.recovered, r.err
	s.finish(r)
	return moved, recovered, err
}

// Lookup returns a copy of a lease. The copy reflects the tenant's
// current placement (the re-packer may have migrated it since Place).
func (s *Scheduler) Lookup(id int64) (*Lease, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ten, ok := s.leases[id]
	if !ok {
		return nil, ErrNotFound
	}
	return &Lease{
		ID:     ten.id,
		Blue:   append([]int(nil), ten.blue...),
		K:      ten.k,
		Phi:    ten.phi,
		AllRed: ten.allRed,
		Load:   append([]int(nil), ten.load...),
	}, nil
}

// Residual returns a copy of the per-switch residual capacities.
func (s *Scheduler) Residual() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ledger.Residuals(nil)
}

// Snapshot returns current scheduler statistics.
func (s *Scheduler) Snapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Switches: s.t.N(), Tenants: len(s.leases)}
	for v := 0; v < s.ledger.N(); v++ {
		used := s.ledger.Used(v)
		if used > 0 {
			st.SwitchesInUse++
		}
		st.CapacityUsed += int64(used)
		st.CapacityTotal += int64(s.ledger.Initial(v))
	}
	if len(s.leases) == 0 {
		st.MeanRatio = 1
		return st
	}
	sum := 0.0
	for _, ten := range s.leases {
		sum += ten.ratio()
	}
	st.MeanRatio = sum / float64(len(s.leases))
	return st
}

// --- dispatcher -------------------------------------------------------

// dispatch is the scheduler's serialization point: it owns batch
// formation, commit order and all ledger/lease mutation (the re-packer
// included), so the solve fan-out is the only concurrent part of the
// pipeline.
func (s *Scheduler) dispatch() {
	defer s.bg.Done()
	defer func() {
		for _, w := range s.workers {
			close(w.wake)
		}
	}()
	for {
		select {
		case <-s.stop:
			s.drainAndFail()
			return
		case r := <-s.reqs:
			s.collectBatch(r)
			s.runBatch()
		}
	}
}

// collectBatch forms one batch: the first request, everything that
// arrives inside the batching window, and everything already queued.
func (s *Scheduler) collectBatch(first *request) {
	s.batch = append(s.batch[:0], first)
	if s.cfg.Window > 0 {
		s.timer.Reset(s.cfg.Window)
		for open := true; open; {
			select {
			case r := <-s.reqs:
				s.batch = append(s.batch, r)
			case <-s.timer.C:
				open = false
			case <-s.stop:
				// Finish this batch; the main loop fails the rest.
				s.timer.Stop()
				open = false
			}
		}
	}
	for {
		select {
		case r := <-s.reqs:
			s.batch = append(s.batch, r)
		default:
			return
		}
	}
}

// runBatch executes one batch: releases first in arrival order, then
// re-pack rounds (so they see every freed slot), then all placements
// solved in parallel against the resulting availability snapshot and
// committed in arrival order.
//
//soar:hotpath
func (s *Scheduler) runBatch() {
	t0 := time.Now()
	s.places = s.places[:0]
	s.repacks = s.repacks[:0]
	s.mu.Lock()
	for _, r := range s.batch {
		switch r.op {
		case opRelease:
			r.err = s.releaseLocked(r.id)
			s.met.noteRelease(r.err == nil, r.t0)
		case opRepack:
			s.repacks = append(s.repacks, r)
		case opPlace:
			s.places = append(s.places, r)
		}
	}
	s.met.noteBatch(len(s.batch))
	s.mu.Unlock()
	s.flushJournal()
	// Re-pack rounds solve, so they run outside the lock (repack takes
	// and drops it around each candidate's ledger edits).
	for _, r := range s.repacks { //soar:coldpath re-packing is the low-priority slow path
		rt0 := time.Now()
		r.moved, r.recovered = s.repack(r.k)
		s.flushJournal()
		// Span v2 carries milli-Φ: spans are integer-valued.
		s.met.tr.Record(s.met.opRepack, rt0, time.Since(rt0), int64(r.moved), int64(r.recovered*1e3))
	}
	for _, r := range s.batch {
		if r.op != opPlace {
			r.done <- struct{}{}
		}
	}
	if len(s.places) == 0 {
		// The batch span is recorded at both exits: runBatch is a hotpath
		// function, so no defer.
		s.met.noteBatchSpan(t0, len(s.batch), 0)
		return
	}

	// Solve phase: every placement is solved against the same
	// availability snapshot; the ledger is quiescent until batchWG is
	// done, so workers read it without locks.
	if len(s.places) == 1 {
		s.solveOn(&s.bgSol, s.places[0])
	} else if s.bsol != nil {
		s.solveBatched()
	} else {
		s.batchNext.Store(0)
		n := min(len(s.places), len(s.workers))
		s.batchWG.Add(n)
		for i := 0; i < n; i++ {
			s.workers[i].wake <- struct{}{}
		}
		s.batchWG.Wait()
	}

	// Commit phase, in arrival order.
	for _, r := range s.places {
		s.commit(r)
	}
	s.flushJournal()
	for _, r := range s.places {
		r.done <- struct{}{}
	}
	s.met.noteBatchSpan(t0, len(s.batch), len(s.places))
}

// solveOn solves r's placement on sol's engine — rebuilt only if the
// budget changed, otherwise patched in place (see solver.ensure) — and
// records the outputs on r.
//
//soar:hotpath
func (s *Scheduler) solveOn(sol *solver, r *request) {
	t0 := time.Now()
	eng := sol.ensure(s.t, r.load, s.ledger.Avail(), r.k)
	if cap(r.blue) < s.t.N() {
		r.blue = make([]bool, s.t.N()) //soar:coldpath first use of a pooled request
	}
	r.blue = r.blue[:s.t.N()]
	r.phi = eng.SolveInto(r.blue)
	r.allRed = s.allRed(r.load)
	s.met.noteSolve(t0, int64(r.k))
}

// newMemo builds one solver's solve cache, or nil when memoization is
// off.
func (s *Scheduler) newMemo() *core.Memo {
	if !s.cfg.Memo {
		return nil
	}
	m := core.NewMemo(s.t)
	m.SetBudget(s.cfg.MemoBudget)
	return m
}

// allRed returns φ with no aggregation at all: every server's messages
// pay the full path to the destination. Equal to
// reduce.Utilization(t, load, no-blues) without the O(n) allocation.
//
//soar:hotpath
func (s *Scheduler) allRed(load []int) float64 {
	var phi float64
	for v, l := range load {
		if l != 0 {
			phi += float64(l) * s.t.RhoUp(v, s.t.Depth(v))
		}
	}
	return phi
}

// commit charges r's placement against the ledger and creates the
// lease. If an earlier commit of this batch exhausted a switch the
// optimistic solve picked, the placement is re-solved against the
// updated availability set first — the slow path that keeps optimistic
// batch parallelism oversubscription-free.
//
// The conflict check, the re-solve and the tenant-record pool Get all
// run before mu is taken: the dispatcher is the ledger's only writer,
// so its own unlocked reads cannot race, and soarlint's lockdiscipline
// analyzer proves no solve or blocking pool op ever happens under mu.
// The lock protects exactly the ledger/lease mutation, so a concurrent
// Lookup may observe a batch mid-commit — each lease appears atomically.
//
//soar:hotpath
func (s *Scheduler) commit(r *request) {
	for v, b := range r.blue {
		if b && s.ledger.Residual(v) <= 0 {
			s.solveOn(&s.bgSol, r)
			r.conflicted = true
			break
		}
	}
	ten := s.tenPool.Get().(*tenant)
	ten.k = r.k
	ten.phi = r.phi
	ten.allRed = r.allRed
	ten.blue = ten.blue[:0]
	ten.load = append(ten.load[:0], r.load...)

	s.mu.Lock()
	// The fence runs under the commit lock: internal/ha flips the shard
	// epoch before the promoted standby serves, so every mutation of a
	// deposed primary from that point on lands here and is rejected.
	if s.cfg.Fence != nil {
		if err := s.cfg.Fence(); err != nil { //soar:coldpath replication fencing enabled
			s.mu.Unlock()
			s.tenPool.Put(ten)
			r.err = err
			return
		}
	}
	ten.id = s.nextID
	s.nextID++
	for v, b := range r.blue {
		if b {
			s.ledger.Charge(v)
			ten.blue = append(ten.blue, v)
		}
	}
	s.leases[ten.id] = ten
	s.journalAppend(JournalPlace, ten.id, ten)
	conflicted := r.conflicted
	if conflicted {
		s.met.conflicts.Inc()
		r.conflicted = false
	}
	s.met.notePlace(r.t0, int64(len(ten.blue)), conflicted)
	s.mu.Unlock()

	// r.lease is owned by the blocked submitter until done is signalled.
	l := r.lease
	l.ID = ten.id
	l.K = ten.k
	l.Phi = ten.phi
	l.AllRed = ten.allRed
	l.Blue = append(l.Blue[:0], ten.blue...)
	l.Load = append(l.Load[:0], r.load...)
}

// releaseLocked reclaims a tenant's switches.
//
//soar:hotpath
func (s *Scheduler) releaseLocked(id int64) error {
	ten, ok := s.leases[id]
	if !ok {
		return ErrNotFound
	}
	if s.cfg.Fence != nil {
		if err := s.cfg.Fence(); err != nil { //soar:coldpath replication fencing enabled
			return err
		}
	}
	for _, v := range ten.blue {
		s.ledger.Credit(v)
	}
	delete(s.leases, id)
	s.journalAppend(JournalRelease, id, nil)
	s.tenPool.Put(ten)
	return nil
}

// drainAndFail answers every queued and late-arriving request with
// ErrClosed, then returns once no submitter is in flight.
func (s *Scheduler) drainAndFail() {
	go func() {
		s.inflight.Wait()
		close(s.reqs)
	}()
	for r := range s.reqs {
		r.err = ErrClosed
		r.moved, r.recovered = 0, 0
		r.done <- struct{}{}
	}
}
