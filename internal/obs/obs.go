// Package obs is the repo's zero-dependency observability substrate: a
// metrics registry (counters, gauges, fixed-bucket histograms) whose
// hot-path record operations are allocation-free and lock-free, a
// Prometheus-text-format exposition writer (expo.go) with a matching
// parser (parse.go), and a ring-buffered span trace (trace.go) that
// answers "where did this request's time go" on a live daemon.
//
// The split between registration and recording is the whole design:
// everything that allocates — family interning, label rendering, bucket
// sizing — happens once, at registration, under the registry lock.
// What remains on the serving path is an atomic add into a
// pre-allocated slot, which is why the scheduler's admission loop keeps
// its 0 allocs/op contract with metrics recording enabled (enforced by
// soarlint's hotpath analyzer on Counter.Inc/Add, Gauge.Set/Add,
// Histogram.Observe and Trace.Record, and by the bench-smoke
// allocation gate in CI).
//
// Concurrency: every recording method is safe for concurrent use from
// any number of goroutines. Scrapes (WriteText) run concurrently with
// recording; a scrape observes each slot atomically but the family as
// a whole is not a consistent cut — standard Prometheus semantics.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Labels is a set of constant label pairs attached to one metric at
// registration time. Label sets are rendered and interned once — the
// hot path never touches them again.
type Labels map[string]string

// Registry holds metric families and hands out recording handles. All
// registration methods are safe for concurrent use; they panic on
// invalid names, duplicate (name, labels) registrations, or a name
// re-registered as a different type, because every caller is
// initialization code where a silent mis-registration would surface as
// a missing time series much later.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is one exposition family: every sample sharing a metric name.
type family struct {
	name string
	help string
	typ  string // "counter", "gauge", "histogram"

	seen     map[string]bool // label bodies already registered
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
	funcs    []funcMetric
}

// funcMetric is a callback-valued sample, evaluated at scrape time:
// the bridge for subsystems that already keep their own atomic
// counters (chaos injector, memo stats) or need a locked read
// (tenant counts).
type funcMetric struct {
	labels string
	fn     func() float64
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help, typ string) *family {
	if err := checkMetricName(name); err != nil {
		panic("obs: " + err.Error())
	}
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, seen: make(map[string]bool)}
		r.families[name] = f
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: family %s registered as %s, re-registered as %s", name, f.typ, typ))
	}
	return f
}

func (f *family) addLabels(body string) {
	if f.seen[body] {
		panic(fmt.Sprintf("obs: duplicate registration of %s{%s}", f.name, body))
	}
	f.seen[body] = true
}

// Counter registers a monotonically increasing counter. labels may be
// nil for an unlabeled sample.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "counter")
	c := &Counter{labels: renderLabels(labels)}
	f.addLabels(c.labels)
	f.counters = append(f.counters, c)
	return c
}

// CounterFunc registers a counter-typed sample whose value is read
// from fn at scrape time. fn must be monotone non-decreasing and safe
// to call from any goroutine.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.registerFunc(name, help, "counter", labels, fn)
}

// Gauge registers a gauge: a float64 that can go up and down.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "gauge")
	g := &Gauge{labels: renderLabels(labels)}
	f.addLabels(g.labels)
	f.gauges = append(f.gauges, g)
	return g
}

// GaugeFunc registers a gauge-typed sample whose value is read from fn
// at scrape time. fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.registerFunc(name, help, "gauge", labels, fn)
}

func (r *Registry) registerFunc(name, help, typ string, labels Labels, fn func() float64) {
	if fn == nil {
		panic("obs: nil func for " + name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, typ)
	body := renderLabels(labels)
	f.addLabels(body)
	f.funcs = append(f.funcs, funcMetric{labels: body, fn: fn})
}

// Histogram registers a fixed-bucket histogram. bounds are the
// inclusive upper bounds of the buckets, strictly increasing and
// finite; the +Inf overflow bucket is implicit. The bucket layout is
// frozen here so Observe never allocates.
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram " + name + " needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsInf(b, 0) || math.IsNaN(b) {
			panic("obs: histogram " + name + " has a non-finite bucket bound")
		}
		if i > 0 && b <= bounds[i-1] {
			panic("obs: histogram " + name + " bounds are not strictly increasing")
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "histogram")
	h := &Histogram{
		labels: renderLabels(labels),
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	f.addLabels(h.labels)
	f.hists = append(f.hists, h)
	return h
}

// Counter is a monotone uint64 counter. The zero value is NOT usable:
// counters are created by Registry.Counter so their label set is
// interned before the first Inc.
type Counter struct {
	labels string
	v      atomic.Uint64
}

// Inc adds one.
//
//soar:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//soar:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 gauge stored as atomic bits.
type Gauge struct {
	labels string
	bits   atomic.Uint64
}

// Set stores v.
//
//soar:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (CAS loop; lock-free).
//
//soar:hotpath
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram. Observations land in the
// first bucket whose upper bound is ≥ v; counts[len(bounds)] is the
// +Inf overflow bucket. All slots are atomic, so Observe is lock-free
// and allocation-free.
type Histogram struct {
	labels string
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-accumulated
}

// Observe records one value.
//
//soar:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations (the sum of every
// bucket, so it is always consistent with a concurrently scraped
// bucket vector).
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// ExpBuckets returns n bucket bounds growing geometrically from start
// by factor — the standard layout for latencies and sizes.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n ≥ 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets is the default bucket layout for request latencies in
// seconds: 2µs to ~8.4s in powers of ~2, wide enough for both the
// sub-100µs admission path and multi-second cluster runs.
func LatencyBuckets() []float64 { return ExpBuckets(2e-6, 2, 22) }

// SizeBuckets is the default layout for counts and byte sizes: 1 to
// 32768 in powers of 2.
func SizeBuckets() []float64 { return ExpBuckets(1, 2, 16) }

// renderLabels interns a label set into its exposition body
// (`k1="v1",k2="v2"` with keys sorted), or "" for no labels.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if err := checkLabelName(k); err != nil {
			panic("obs: " + err.Error())
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	body := ""
	for i, k := range keys {
		if i > 0 {
			body += ","
		}
		body += k + `="` + escapeLabelValue(labels[k]) + `"`
	}
	return body
}

func checkMetricName(name string) error {
	if !validName(name, true) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	return nil
}

func checkLabelName(name string) error {
	if name == "le" {
		return fmt.Errorf("label name %q is reserved for histogram buckets", name)
	}
	if !validName(name, false) {
		return fmt.Errorf("invalid label name %q", name)
	}
	return nil
}

// validName implements the Prometheus name grammar:
// [a-zA-Z_:][a-zA-Z0-9_:]* for metrics, colons excluded for labels.
func validName(s string, allowColon bool) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c == ':' && allowColon:
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
