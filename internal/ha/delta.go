package ha

import (
	"fmt"

	"soar/internal/sched"
	"soar/internal/wire"
)

// deltaFromEvent converts one committed journal event into its wire
// frame. Blue and load switch ids are shard-local: primary and standby
// deterministically build the same pod tree, so local ids agree. The
// dense load vector travels sparse (LoadV/LoadN pairs).
func deltaFromEvent(shard uint32, epoch uint64, ev sched.JournalEvent) (*wire.LeaseDelta, error) {
	d := &wire.LeaseDelta{
		Shard: shard,
		Epoch: epoch,
		Seq:   ev.Seq,
		ID:    uint64(ev.ID),
		K:     uint32(ev.K),
	}
	d.SetPhi(ev.Phi)
	d.SetAllRed(ev.AllRed)
	switch ev.Op {
	case sched.JournalPlace:
		d.Op = wire.DeltaPlace
	case sched.JournalRelease:
		d.Op = wire.DeltaRelease
	case sched.JournalMigrate:
		d.Op = wire.DeltaMigrate
	default:
		return nil, fmt.Errorf("ha: journal op %d has no wire encoding", ev.Op)
	}
	if ev.Op != sched.JournalRelease {
		d.Blue = make([]uint32, len(ev.Blue))
		for i, v := range ev.Blue {
			d.Blue[i] = uint32(v)
		}
	}
	if ev.Op == sched.JournalPlace {
		for v, n := range ev.Load {
			if n > 0 {
				d.LoadV = append(d.LoadV, uint32(v))
				d.LoadN = append(d.LoadN, uint32(n))
			}
		}
	}
	return d, nil
}

// eventFromDelta converts a received lease-delta frame back into a
// journal event over a shard tree of n switches, validating ranges so
// a corrupt peer cannot panic the replica.
func eventFromDelta(d *wire.LeaseDelta, n int) (sched.JournalEvent, error) {
	ev := sched.JournalEvent{
		Seq:    d.Seq,
		ID:     int64(d.ID),
		K:      int(d.K),
		Phi:    d.Phi(),
		AllRed: d.AllRed(),
	}
	switch d.Op {
	case wire.DeltaPlace:
		ev.Op = sched.JournalPlace
	case wire.DeltaRelease:
		ev.Op = sched.JournalRelease
	case wire.DeltaMigrate:
		ev.Op = sched.JournalMigrate
	default:
		return ev, fmt.Errorf("ha: delta op %d unknown", d.Op)
	}
	if ev.Op != sched.JournalRelease {
		ev.Blue = make([]int, len(d.Blue))
		for i, v := range d.Blue {
			if int(v) >= n {
				return ev, fmt.Errorf("ha: delta blue switch %d of %d", v, n)
			}
			ev.Blue[i] = int(v)
		}
	}
	if ev.Op == sched.JournalPlace {
		ev.Load = make([]int, n)
		for i, v := range d.LoadV {
			if int(v) >= n {
				return ev, fmt.Errorf("ha: delta load switch %d of %d", v, n)
			}
			ev.Load[int(v)] = int(d.LoadN[i])
		}
	}
	return ev, nil
}
