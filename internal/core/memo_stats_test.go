package core

import (
	"sync"
	"testing"

	"soar/internal/topology"
)

// TestMemoStatsConcurrentWithSolves is Memo.Stats' documented
// concurrency exception made executable: the owning goroutine solves
// while others read Stats. Under -race (the race CI job runs the whole
// suite) this proves the counters are atomics; in any mode it checks
// the reads are sane (monotone hits+misses, non-negative bytes).
func TestMemoStatsConcurrentWithSolves(t *testing.T) {
	tr, err := topology.BT(64)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMemo(tr)
	load := make([]int, tr.N())
	avail := make([]bool, tr.N())
	for v := range avail {
		avail[v] = true
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			load[i%tr.N()] = i % 3
			SolveMemo(m, load, avail, 4)
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastOps uint64
			for {
				select {
				case <-done:
					return
				default:
				}
				st := m.Stats()
				if st.Bytes < 0 || st.Classes < 0 {
					t.Errorf("negative stats: %+v", st)
					return
				}
				if ops := st.Hits + st.Misses; ops < lastOps {
					t.Errorf("hits+misses went backwards: %d then %d", lastOps, ops)
					return
				} else {
					lastOps = ops
				}
			}
		}()
	}
	<-done
	wg.Wait()

	if st := m.Stats(); st.Hits+st.Misses == 0 {
		t.Fatal("no lookups recorded; the test exercised nothing")
	}
}
