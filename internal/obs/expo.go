package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file renders the registry in the Prometheus text exposition
// format (version 0.0.4): one `# HELP` and `# TYPE` line per family,
// then one sample line per series, histograms expanded into cumulative
// `_bucket{le="..."}` samples plus `_sum` and `_count`. parse.go is
// the inverse; the round-trip test in expo_test.go holds the two to
// each other.

// TextContentType is the Content-Type for a /metrics response.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText writes every registered family to w in the Prometheus text
// format. Families are sorted by name so scrapes are diffable. Safe to
// call concurrently with recording: each slot is read atomically, and
// a histogram's count is derived from the very bucket vector being
// written, so `le="+Inf"` always equals `_count` even mid-burst.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, c := range f.counters {
			writeSample(bw, f.name, c.labels, float64(c.Value()))
		}
		for _, g := range f.gauges {
			writeSample(bw, f.name, g.labels, g.Value())
		}
		for _, fm := range f.funcs {
			writeSample(bw, f.name, fm.labels, fm.fn())
		}
		for _, h := range f.hists {
			writeHistogram(bw, f.name, h)
		}
	}
	return bw.Flush()
}

func writeSample(w io.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatValue(v))
}

// writeHistogram expands one histogram into its cumulative bucket
// samples. Bucket counts are loaded exactly once into a local vector
// so the cumulative sums, the +Inf bucket and _count are all derived
// from the same snapshot.
func writeHistogram(w io.Writer, name string, h *Histogram) {
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += counts[i]
		writeBucket(w, name, h.labels, formatValue(b), cum)
	}
	cum += counts[len(counts)-1]
	writeBucket(w, name, h.labels, "+Inf", cum)
	writeSample(w, name+"_sum", h.labels, h.Sum())
	writeSample(w, name+"_count", h.labels, float64(cum))
}

func writeBucket(w io.Writer, name, labels, le string, cum uint64) {
	if labels == "" {
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, le, cum)
		return
	}
	fmt.Fprintf(w, "%s_bucket{%s,le=\"%s\"} %d\n", name, labels, le, cum)
}

// formatValue renders a float the way Prometheus expects: shortest
// round-trippable decimal, +Inf/-Inf/NaN spelled out.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double-quote and newline.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP text: backslash and newline (quotes are
// legal in help strings).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
