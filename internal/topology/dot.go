package topology

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT writes the tree in Graphviz DOT format. load may be nil; blue
// may be nil (all red). Blue (aggregating) switches are filled blue, red
// switches white, and the destination is a gray square. Edges are labeled
// with their rate ω.
func (t *Tree) WriteDOT(w io.Writer, load []int, blue []bool) error {
	var b strings.Builder
	b.WriteString("digraph soar {\n  rankdir=BT;\n")
	b.WriteString("  d [shape=square style=filled fillcolor=lightgray label=\"d\"];\n")
	for v := 0; v < t.N(); v++ {
		color := "white"
		if blue != nil && blue[v] {
			color = "lightblue"
		}
		label := fmt.Sprintf("%d", v)
		if load != nil && load[v] > 0 {
			label = fmt.Sprintf("%d\\nL=%d", v, load[v])
		}
		fmt.Fprintf(&b, "  n%d [shape=circle style=filled fillcolor=%s label=\"%s\"];\n", v, color, label)
	}
	for v := 0; v < t.N(); v++ {
		dst := "d"
		if p := t.parent[v]; p != NoParent {
			dst = fmt.Sprintf("n%d", p)
		}
		fmt.Fprintf(&b, "  n%d -> %s [label=\"%g\"];\n", v, dst, 1/t.rho[v])
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Sketch renders a compact ASCII view of the tree, one node per line,
// indented by depth, annotated with load and color. Useful in examples
// and CLI output for small trees.
func (t *Tree) Sketch(load []int, blue []bool) string {
	var b strings.Builder
	b.WriteString("d (destination)\n")
	var walk func(v, indent int)
	walk = func(v, indent int) {
		b.WriteString(strings.Repeat("  ", indent))
		switch {
		case blue != nil && blue[v]:
			fmt.Fprintf(&b, "[%d] BLUE", v)
		default:
			fmt.Fprintf(&b, "(%d) red ", v)
		}
		fmt.Fprintf(&b, " ω=%g", 1/t.rho[v])
		if load != nil && load[v] > 0 {
			fmt.Fprintf(&b, " load=%d", load[v])
		}
		b.WriteByte('\n')
		for _, c := range t.children[v] {
			walk(c, indent+1)
		}
	}
	walk(t.root, 1)
	return b.String()
}
