package sched

import "soar/internal/core"

// worker is one slot of the engine pool: a goroutine owning one
// reusable core.Incremental engine. Workers steal placements from the
// current batch via the scheduler's atomic cursor, so a skewed batch
// (one huge tenant, many small ones) still balances.
//
// Engine reuse is the point: a warm engine is patched to the next
// tenant's load vector and the batch's availability snapshot with
// SetLoads/SetAvails, which recompute only the DP tables on the changed
// switches' root paths. For the sparse tenants a shared tree actually
// sees (a few racks each), that is an order of magnitude less work than
// the from-scratch solve the pre-scheduler serving path ran per
// admission — and it allocates nothing.
type worker struct {
	s    *Scheduler
	eng  *core.Incremental
	wake chan struct{}
}

func (w *worker) loop() {
	defer w.s.bg.Done()
	for range w.wake {
		for {
			i := int(w.s.batchNext.Add(1)) - 1
			if i >= len(w.s.places) {
				break
			}
			w.eng = w.s.solveOn(w.eng, w.s.places[i])
		}
		w.s.batchWG.Done()
	}
}
