package sched

import (
	"errors"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"time"

	"soar/internal/wire"
)

// This file makes the scheduler's control-plane state durable. Before
// it, a crash lost every tenant: the ledger residuals and lease records
// lived only in process memory. Checkpoint serializes both as a stream
// of internal/wire frames (CkptHeader, CkptLedger, one CkptTenant per
// lease, CkptFooter carrying an FNV-1a checksum of everything before
// it); Restore validates the stream — format, topology fingerprint,
// checksum, and full capacity conservation — before installing any of
// it, so a truncated or corrupted checkpoint is rejected atomically.
//
// The recovery model is snapshot-consistency: a checkpoint taken under
// mu observes every lease either fully committed or not at all (commit
// publishes each lease atomically under the same lock). Leases admitted
// after the snapshot are lost on restore — exactly the contract of
// periodic checkpointing; the chaos soak (soak_test.go) churns tenants
// through kill/restore cycles and proves what survives is conserved:
// lease-for-lease identical, residuals non-negative, no switch ever
// double-committed.

// ckptSnapshot is the under-lock copy Checkpoint serializes after
// releasing mu, so slow sinks (disk, HTTP) never block admission.
type ckptSnapshot struct {
	initial  []int
	residual []int
	nextID   int64
	seq      uint64
	tenants  []*tenant
}

// snapshotState deep-copies the durable state under mu. The lock is
// the scheduler's //soar:critical commit lock, so soarlint's
// lockdiscipline analyzer proves this snapshot never blocks admission
// on a channel, a solve or a pool Get — it copies and releases.
func (s *Scheduler) snapshotState() ckptSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := ckptSnapshot{
		initial:  append([]int(nil), s.ledger.initial...),
		residual: append([]int(nil), s.ledger.residual...),
		nextID:   s.nextID,
		seq:      s.journalSeq,
		tenants:  make([]*tenant, 0, len(s.leases)),
	}
	for _, ten := range s.leases {
		snap.tenants = append(snap.tenants, &tenant{
			id:     ten.id,
			k:      ten.k,
			phi:    ten.phi,
			allRed: ten.allRed,
			blue:   append([]int(nil), ten.blue...),
			load:   append([]int(nil), ten.load...),
		})
	}
	return snap
}

// countingWriter counts bytes through to w, feeding the
// soar_ckpt_bytes_total family and the ckpt.encode span.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// Checkpoint writes the scheduler's durable state — capacity ledger,
// every active lease, and the tenant-id high-water mark — to w in the
// internal/wire checkpoint format. The snapshot is consistent: it is
// taken atomically with respect to commits and releases, then encoded
// outside the lock. Checkpoint is safe to call concurrently with
// serving traffic and with other Checkpoints.
func (s *Scheduler) Checkpoint(w io.Writer) error {
	_, err := s.CheckpointSeq(w)
	return err
}

// CheckpointSeq is Checkpoint returning the journal sequence number the
// snapshot reflects: every journaled mutation with Seq ≤ the returned
// value is folded into the stream, every later one is not. The
// replication layer (internal/ha) offers checkpoints to standbys
// stamped with this sequence so delta replay starts exactly where the
// snapshot ends.
func (s *Scheduler) CheckpointSeq(w io.Writer) (uint64, error) {
	t0 := time.Now()
	cw := &countingWriter{w: w}
	seq, err := s.checkpoint(cw)
	d := time.Since(t0)
	if err == nil {
		s.met.ckptSaves.Inc()
		s.met.ckptBytes.Add(uint64(cw.n))
		s.met.ckptSaveSeconds.Observe(d.Seconds())
	}
	// Span v1 is bytes encoded, v2 flags failure.
	v2 := int64(0)
	if err != nil {
		v2 = 1
	}
	s.met.tr.Record(s.met.opCkptEncode, t0, d, cw.n, v2)
	return seq, err
}

func (s *Scheduler) checkpoint(w io.Writer) (uint64, error) {
	snap := s.snapshotState()
	h := fnv.New64a()
	hw := io.MultiWriter(w, h)

	hdr := &wire.CkptHeader{
		Version:  wire.CkptVersion,
		Switches: uint32(s.t.N()),
		Tenants:  uint64(len(snap.tenants)),
		NextID:   uint64(snap.nextID),
		TreeSum:  s.t.Fingerprint(),
	}
	if err := wire.Write(hw, hdr); err != nil {
		return 0, fmt.Errorf("sched: checkpoint header: %w", err)
	}
	led := &wire.CkptLedger{
		Initial:  make([]int32, len(snap.initial)),
		Residual: make([]int32, len(snap.residual)),
	}
	for v := range snap.initial {
		led.Initial[v] = int32(snap.initial[v])
		led.Residual[v] = int32(snap.residual[v])
	}
	if err := wire.Write(hw, led); err != nil {
		return 0, fmt.Errorf("sched: checkpoint ledger: %w", err)
	}
	for _, ten := range snap.tenants {
		tf := &wire.CkptTenant{
			ID:   uint64(ten.id),
			K:    uint32(ten.k),
			Blue: make([]uint32, len(ten.blue)),
		}
		tf.SetPhi(ten.phi)
		tf.SetAllRed(ten.allRed)
		for i, v := range ten.blue {
			tf.Blue[i] = uint32(v)
		}
		for v, l := range ten.load {
			if l > 0 {
				tf.LoadV = append(tf.LoadV, uint32(v))
				tf.LoadN = append(tf.LoadN, uint32(l))
			}
		}
		if err := wire.Write(hw, tf); err != nil {
			return 0, fmt.Errorf("sched: checkpoint tenant %d: %w", ten.id, err)
		}
	}
	// The footer's checksum covers every byte before the footer; it goes
	// to w alone so reader and writer hash the same prefix.
	foot := &wire.CkptFooter{Tenants: uint64(len(snap.tenants)), Sum: h.Sum64()}
	if err := wire.Write(w, foot); err != nil {
		return 0, fmt.Errorf("sched: checkpoint footer: %w", err)
	}
	return snap.seq, nil
}

// Restore rejection reasons, the label values of the
// soar_ckpt_restore_reject_total counter family. "frame" is a stream
// that does not decode (truncation, garbage, wrong frame type);
// "topology" covers both a switch-count and a fingerprint mismatch;
// "checksum" covers the footer failing to authenticate the prefix;
// "ids" covers duplicate or out-of-range tenant ids and switches;
// "busy" is a restore into a scheduler that already holds leases.
var restoreRejectReasons = []string{
	"frame", "version", "topology", "checksum", "ids", "conservation", "busy",
}

// rejectError carries the rejection reason through the restore error
// chain so Restore can classify it into the labeled counter.
type rejectError struct {
	reason string
	err    error
}

func (e *rejectError) Error() string { return e.err.Error() }
func (e *rejectError) Unwrap() error { return e.err }

func rejectf(reason, format string, args ...any) error {
	return &rejectError{reason: reason, err: fmt.Errorf(format, args...)}
}

// readCkpt reads one typed frame through the checksum.
func readCkpt[M wire.Message](r io.Reader, h hash.Hash64) (M, error) {
	return wire.ReadTyped[M](io.TeeReader(r, h))
}

// Restore replays a checkpoint into a freshly constructed scheduler: it
// must be called before the scheduler has admitted any tenant (and
// before traffic is offered — restoring mid-serve races the solve
// pipeline's lock-free ledger reads). The entire stream is read and
// validated first — version, topology fingerprint, checksum, ledger
// shape, and conservation (residual[v] = initial[v] − Σ leases on v ≥ 0
// for every switch) — and only then installed, atomically: a bad
// checkpoint leaves the scheduler exactly as it was.
//
// The restored ledger replaces the capacities the scheduler was
// constructed with: recovery reproduces the crashed instance, config
// drift and all.
func (s *Scheduler) Restore(r io.Reader) error {
	s.met.ckptRestoreAttempts.Inc()
	if err := s.restore(r); err != nil {
		s.met.ckptRestoreFail.Inc()
		reason := "frame"
		var rej *rejectError
		if errors.As(err, &rej) {
			reason = rej.reason
		}
		if c := s.met.ckptReject[reason]; c != nil {
			c.Inc()
		}
		return err
	}
	s.met.ckptRestores.Inc()
	return nil
}

func (s *Scheduler) restore(r io.Reader) error {
	t0 := time.Now()
	h := fnv.New64a()
	hdr, err := readCkpt[*wire.CkptHeader](r, h)
	if err != nil {
		return rejectf("frame", "sched: restore header: %w", err)
	}
	if hdr.Version != wire.CkptVersion {
		return rejectf("version", "sched: restore: checkpoint version %d, want %d", hdr.Version, wire.CkptVersion)
	}
	n := s.t.N()
	if int(hdr.Switches) != n {
		return rejectf("topology", "sched: restore: checkpoint for %d switches, tree has %d", hdr.Switches, n)
	}
	if sum := s.t.Fingerprint(); hdr.TreeSum != sum {
		return rejectf("topology", "sched: restore: checkpoint topology fingerprint %x, tree is %x", hdr.TreeSum, sum)
	}
	led, err := readCkpt[*wire.CkptLedger](r, h)
	if err != nil {
		return rejectf("frame", "sched: restore ledger: %w", err)
	}
	if len(led.Initial) != n {
		return rejectf("topology", "sched: restore: ledger has %d switches, tree has %d", len(led.Initial), n)
	}

	tenants := make([]*tenant, 0, hdr.Tenants)
	used := make([]int, n)
	seen := make(map[int64]bool, hdr.Tenants)
	maxID := int64(-1)
	for i := uint64(0); i < hdr.Tenants; i++ {
		tf, err := readCkpt[*wire.CkptTenant](r, h)
		if err != nil {
			return rejectf("frame", "sched: restore tenant %d/%d: %w", i+1, hdr.Tenants, err)
		}
		ten := &tenant{
			id:     int64(tf.ID),
			k:      int(tf.K),
			phi:    tf.Phi(),
			allRed: tf.AllRed(),
			blue:   make([]int, len(tf.Blue)),
			load:   make([]int, n),
		}
		if seen[ten.id] {
			return rejectf("ids", "sched: restore: duplicate tenant id %d", ten.id)
		}
		seen[ten.id] = true
		if ten.id > maxID {
			maxID = ten.id
		}
		tenBlue := make(map[uint32]bool, len(tf.Blue))
		for j, v := range tf.Blue {
			if int(v) >= n {
				return rejectf("ids", "sched: restore: tenant %d leases switch %d of %d", ten.id, v, n)
			}
			if tenBlue[v] {
				return rejectf("ids", "sched: restore: tenant %d leases switch %d twice", ten.id, v)
			}
			tenBlue[v] = true
			ten.blue[j] = int(v)
			used[v]++
		}
		for j, v := range tf.LoadV {
			if int(v) >= n {
				return rejectf("ids", "sched: restore: tenant %d has load at switch %d of %d", ten.id, v, n)
			}
			ten.load[v] = int(tf.LoadN[j])
		}
		tenants = append(tenants, ten)
	}
	// Checksum before the footer: the footer authenticates the prefix.
	sum := h.Sum64()
	foot, err := readCkpt[*wire.CkptFooter](r, h)
	if err != nil {
		return rejectf("frame", "sched: restore footer: %w", err)
	}
	if foot.Tenants != hdr.Tenants {
		return rejectf("checksum", "sched: restore: footer counts %d tenants, header %d", foot.Tenants, hdr.Tenants)
	}
	if foot.Sum != sum {
		return rejectf("checksum", "sched: restore: checksum %x, stream hashes to %x — checkpoint truncated or corrupted", foot.Sum, sum)
	}
	// Conservation: the ledger must equal initial minus exactly the
	// restored leases — nothing double-committed, nothing leaked.
	for v := 0; v < n; v++ {
		if led.Residual[v] < 0 || led.Initial[v] < 0 {
			return rejectf("conservation", "sched: restore: negative capacity at switch %d", v)
		}
		if int(led.Initial[v])-used[v] != int(led.Residual[v]) {
			return rejectf("conservation", "sched: restore: switch %d conserves nothing: initial %d − %d leased ≠ residual %d",
				v, led.Initial[v], used[v], led.Residual[v])
		}
	}
	if nextID := int64(hdr.NextID); nextID <= maxID {
		return rejectf("ids", "sched: restore: next id %d would reissue live id %d", nextID, maxID)
	}
	// Everything read and proved; what remains is installation. The two
	// spans split restore latency into its phases.
	s.met.tr.Record(s.met.opCkptValidate, t0, time.Since(t0), int64(hdr.Tenants), 0)
	t1 := time.Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.leases) != 0 {
		return rejectf("busy", "sched: restore into a scheduler with %d active leases", len(s.leases))
	}
	for v := 0; v < n; v++ {
		s.ledger.initial[v] = int(led.Initial[v])
		s.ledger.residual[v] = int(led.Residual[v])
		s.ledger.avail[v] = led.Residual[v] > 0
	}
	for _, ten := range tenants {
		s.leases[ten.id] = ten
	}
	s.nextID = int64(hdr.NextID)
	s.met.tr.Record(s.met.opCkptInstall, t1, time.Since(t1), int64(len(tenants)), 0)
	return nil
}

// Audit recomputes the capacity invariant from first principles and
// returns an error if the ledger and the lease set disagree: for every
// switch, residual = initial − (leases holding it) and residual ≥ 0,
// with the availability set Λ exactly {v : residual > 0}. The chaos
// soak calls it after every kill/restore cycle; it is cheap enough
// (O(switches + leases)) to call in production health checks.
func (s *Scheduler) Audit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.ledger.N()
	used := make([]int, n)
	for id, ten := range s.leases {
		if ten.id != id {
			return fmt.Errorf("sched: audit: lease %d filed under id %d", ten.id, id)
		}
		if id >= s.nextID {
			return fmt.Errorf("sched: audit: lease %d at or above next id %d", id, s.nextID)
		}
		for _, v := range ten.blue {
			if v < 0 || v >= n {
				return fmt.Errorf("sched: audit: lease %d holds switch %d of %d", id, v, n)
			}
			used[v]++
		}
	}
	for v := 0; v < n; v++ {
		if s.ledger.residual[v] < 0 {
			return fmt.Errorf("sched: audit: switch %d residual %d < 0", v, s.ledger.residual[v])
		}
		if s.ledger.initial[v]-used[v] != s.ledger.residual[v] {
			return fmt.Errorf("sched: audit: switch %d over-committed: initial %d − %d leased ≠ residual %d",
				v, s.ledger.initial[v], used[v], s.ledger.residual[v])
		}
		if s.ledger.avail[v] != (s.ledger.residual[v] > 0) {
			return fmt.Errorf("sched: audit: switch %d availability %v disagrees with residual %d",
				v, s.ledger.avail[v], s.ledger.residual[v])
		}
	}
	return nil
}
