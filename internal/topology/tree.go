// Package topology models the weighted tree networks on which the
// φ-BIC problem (SOAR, CoNEXT 2021) is defined.
//
// A Tree is a rooted tree over n switches, numbered 0..n-1, with the root
// switch r connected to an implicit destination server d by one more edge.
// Every edge e carries a rate ω(e) (messages per second); its cost is
// ρ(e) = 1/ω(e), the per-message transmission time. All edges are directed
// toward d. Following the paper, depth is measured in hops to the
// destination d (the root has depth 1), and height h(T) is the maximum
// hop distance from a switch to the root r.
package topology

import (
	"errors"
	"fmt"
	"sync"
)

// NoParent marks the root in a parent vector.
const NoParent = -1

// Tree is an immutable weighted rooted tree of switches.
//
// Construct trees with New or one of the builders (CompleteBinary, BT,
// CompleteKAry, ScaleFree, RandomRecursive, Path, Star). A Tree carries
// the topology and link rates only; per-switch loads are handled by
// package load and passed alongside the tree. soarlint's immutable
// analyzer enforces the immutability: no field of a Tree is written
// outside its //soar:ctor construction functions.
//
//soar:immutable
type Tree struct {
	parent   []int
	children [][]int
	rho      []float64 // rho[v] = ρ of edge (v, parent(v)); rho[root] = ρ of (r, d)
	depth    []int     // hops from v to the destination d; depth[root] == 1
	post     []int     // post-order traversal (children before parents)
	bfs      []int     // breadth-first order (root first)
	leaves   []int     // switches with no children, in increasing id order
	// rhoUp rows live in one flat slab (better cache locality, one
	// allocation): row v is rhoUpFlat[rhoUpOff[v] : rhoUpOff[v]+depth[v]+1].
	rhoUpFlat []float64
	rhoUpOff  []int
	root      int
	height    int // h(T): max hops from a switch to the root r
	// dig caches the structural digests of digest.go. Built lazily on
	// first use; a Tree is immutable after New, so the cache can never go
	// stale (rate changes go through ApplyRates, which builds a fresh
	// Tree and therefore fresh digests — the "invalidation" story).
	dig treeDigests
}

// treeDigests holds the lazily built canonical-code caches (digest.go).
type treeDigests struct {
	once    sync.Once
	path    []int32 // path[v]: interned id of the ρ sequence v → root
	sub     []int32 // sub[v]: interned unordered canonical code of T_v
	numPath int
	numSub  int
}

// New builds a tree from a parent vector and per-edge rates.
//
// parent[v] is the parent switch of v, or NoParent for the single root.
// omega[v] is the rate ω of the edge from v to its parent; for the root it
// is the rate of the edge (r, d). All rates must be strictly positive.
//
//soar:ctor
func New(parent []int, omega []float64) (*Tree, error) {
	n := len(parent)
	if n == 0 {
		return nil, errors.New("topology: empty tree")
	}
	if len(omega) != n {
		return nil, fmt.Errorf("topology: got %d rates for %d nodes", len(omega), n)
	}
	t := &Tree{
		parent:   append([]int(nil), parent...),
		children: make([][]int, n),
		rho:      make([]float64, n),
		depth:    make([]int, n),
		root:     -1,
	}
	for v, p := range parent {
		switch {
		case p == NoParent:
			if t.root >= 0 {
				return nil, fmt.Errorf("topology: multiple roots (%d and %d)", t.root, v)
			}
			t.root = v
		case p < 0 || p >= n:
			return nil, fmt.Errorf("topology: node %d has out-of-range parent %d", v, p)
		case p == v:
			return nil, fmt.Errorf("topology: node %d is its own parent", v)
		default:
			t.children[p] = append(t.children[p], v)
		}
		if omega[v] <= 0 {
			return nil, fmt.Errorf("topology: node %d has non-positive rate %v", v, omega[v])
		}
		t.rho[v] = 1 / omega[v]
	}
	if t.root < 0 {
		return nil, errors.New("topology: no root node")
	}
	if err := t.index(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustNew is New but panics on error; intended for tests and literals.
func MustNew(parent []int, omega []float64) *Tree {
	t, err := New(parent, omega)
	if err != nil {
		panic(err)
	}
	return t
}

// index computes depths, traversal orders and ρ prefix sums, and rejects
// disconnected or cyclic parent vectors.
//
//soar:ctor
func (t *Tree) index() error {
	n := len(t.parent)
	// BFS from the root establishes depths and detects unreachable nodes.
	t.bfs = make([]int, 0, n)
	t.bfs = append(t.bfs, t.root)
	t.depth[t.root] = 1
	for i := 0; i < len(t.bfs); i++ {
		v := t.bfs[i]
		for _, c := range t.children[v] {
			t.depth[c] = t.depth[v] + 1
			t.bfs = append(t.bfs, c)
		}
	}
	if len(t.bfs) != n {
		return fmt.Errorf("topology: %d of %d nodes unreachable from root (cycle or forest)", n-len(t.bfs), n)
	}
	// Post-order: reverse BFS of a tree visits children before parents.
	t.post = make([]int, n)
	for i, v := range t.bfs {
		t.post[n-1-i] = v
	}
	t.height = 0
	for _, d := range t.depth {
		if d-1 > t.height {
			t.height = d - 1
		}
	}
	// Leaves, cached once: the incremental allocator's hot path asks for
	// them on every workload arrival.
	for v := 0; v < n; v++ {
		if len(t.children[v]) == 0 {
			t.leaves = append(t.leaves, v)
		}
	}
	// rhoUp row v, entry l = Σ ρ of the first l edges on the path from v
	// toward d. All rows share one flat slab, offset by rhoUpOff.
	t.rhoUpOff = make([]int, n+1)
	for v := 0; v < n; v++ {
		t.rhoUpOff[v+1] = t.rhoUpOff[v] + t.depth[v] + 1
	}
	t.rhoUpFlat = make([]float64, t.rhoUpOff[n])
	for _, v := range t.bfs { // parents before children
		d := t.depth[v]
		row := t.rhoUpFlat[t.rhoUpOff[v] : t.rhoUpOff[v]+d+1]
		row[1] = t.rho[v]
		if p := t.parent[v]; p != NoParent {
			prow := t.rhoUpFlat[t.rhoUpOff[p]:]
			for l := 2; l <= d; l++ {
				row[l] = t.rho[v] + prow[l-1]
			}
		}
	}
	return nil
}

// N returns the number of switches (the destination d is not counted).
func (t *Tree) N() int { return len(t.parent) } //soar:hotpath

// Root returns the root switch r, the switch adjacent to the destination.
func (t *Tree) Root() int { return t.root } //soar:hotpath

// Parent returns the parent of v, or NoParent if v is the root.
func (t *Tree) Parent(v int) int { return t.parent[v] } //soar:hotpath

// Children returns the children of v. The returned slice is shared and
// must not be modified.
func (t *Tree) Children(v int) []int { return t.children[v] } //soar:hotpath

// NumChildren returns C(v), the number of children of v.
func (t *Tree) NumChildren(v int) int { return len(t.children[v]) } //soar:hotpath

// IsLeaf reports whether v has no children.
func (t *Tree) IsLeaf(v int) bool { return len(t.children[v]) == 0 } //soar:hotpath

// Depth returns the number of hops from v to the destination d.
// The root has depth 1.
func (t *Tree) Depth(v int) int { return t.depth[v] } //soar:hotpath

// Height returns h(T), the maximum hop distance from any switch to the
// root r.
func (t *Tree) Height() int { return t.height } //soar:hotpath

// Rho returns ρ(v) = 1/ω of the edge from v to its parent (for the root,
// of the edge (r, d)).
func (t *Tree) Rho(v int) float64 { return t.rho[v] } //soar:hotpath

// RhoUp returns ρ(v, A^l_v): the summed ρ of the first l edges on the
// path from v toward the destination. RhoUp(v, 0) == 0 and
// RhoUp(v, Depth(v)) is the full path cost from v to d.
//
//soar:hotpath
func (t *Tree) RhoUp(v, l int) float64 {
	if l < 0 || l > t.depth[v] {
		panic("topology: RhoUp distance out of range")
	}
	return t.rhoUpFlat[t.rhoUpOff[v]+l]
}

// PostOrder returns a traversal visiting every child before its parent.
// The returned slice is shared and must not be modified.
func (t *Tree) PostOrder() []int { return t.post } //soar:hotpath

// BFSOrder returns a traversal visiting every parent before its children,
// starting at the root. The returned slice is shared and must not be
// modified.
func (t *Tree) BFSOrder() []int { return t.bfs } //soar:hotpath

// Leaves returns the switches with no children, in increasing id order.
// The returned slice is shared and must not be modified; it is computed
// once at construction time.
func (t *Tree) Leaves() []int { return t.leaves } //soar:hotpath

// NodesAtLevel returns the switches at hop distance lvl from the root
// (level 0 is the root itself), in increasing id order (the scan below
// already visits ids in increasing order).
func (t *Tree) NodesAtLevel(lvl int) []int {
	var ns []int
	for v := 0; v < t.N(); v++ {
		if t.depth[v]-1 == lvl {
			ns = append(ns, v)
		}
	}
	return ns
}

// Ancestor returns the ancestor of v at distance l (Ancestor(v, 0) == v).
// It panics if l exceeds the distance from v to the root plus one; the
// destination itself is not addressable.
func (t *Tree) Ancestor(v, l int) int {
	for ; l > 0; l-- {
		v = t.parent[v]
		if v == NoParent {
			panic("topology: Ancestor beyond root")
		}
	}
	return v
}

// PathToRoot returns the switches on the path from v to the root,
// inclusive of both endpoints.
func (t *Tree) PathToRoot(v int) []int {
	var p []int
	for {
		p = append(p, v)
		if v == t.root {
			return p
		}
		v = t.parent[v]
	}
}

// SubtreeSizes returns, for every switch v, the number of switches in the
// subtree rooted at v (including v).
func (t *Tree) SubtreeSizes() []int {
	sz := make([]int, t.N())
	for _, v := range t.post {
		sz[v] = 1
		for _, c := range t.children[v] {
			sz[v] += sz[c]
		}
	}
	return sz
}

// SubtreeLoads returns, for every switch v, the total load in the subtree
// rooted at v. load must have length N().
func (t *Tree) SubtreeLoads(load []int) []int64 {
	sub := make([]int64, t.N())
	for _, v := range t.post {
		sub[v] = int64(load[v])
		for _, c := range t.children[v] {
			sub[v] += sub[c]
		}
	}
	return sub
}

// SubtreeLoadsInto is SubtreeLoads writing into a caller-owned buffer
// (which must have length N()): stateful engines recompute subtree
// loads on every solve, so the buffer makes the pass allocation-free.
//
//soar:hotpath
func (t *Tree) SubtreeLoadsInto(sub []int64, load []int) {
	if len(sub) != t.N() {
		panic("topology: SubtreeLoadsInto buffer has wrong length")
	}
	for _, v := range t.post {
		s := int64(load[v])
		for _, c := range t.children[v] {
			s += sub[c]
		}
		sub[v] = s
	}
}

// Degree returns the undirected degree of v within the switch network
// (children plus parent edge; the root's edge to d is counted).
func (t *Tree) Degree(v int) int { return len(t.children[v]) + 1 }
