module example.com/immutable

go 1.24
