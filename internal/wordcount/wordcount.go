// Package wordcount models the paper's big-data use case (Sec. 5,
// "WC"): a MapReduce word-count whose per-server messages are
// word→count dictionaries and whose in-network aggregation merges
// dictionaries.
//
// Substitution (documented in DESIGN.md): the paper uses a Wikipedia dump
// with 54M words of which 800K are unique. We generate a synthetic corpus
// with Zipf-distributed word frequencies (stdlib math/rand.Zipf), scaled
// by default to 5.4M words over an 80K vocabulary, both configurable up
// to the paper's scale. What matters for byte complexity is how fast
// merged dictionaries saturate toward the vocabulary — a property of the
// frequency distribution, which Zipf reproduces for natural language.
// Word lengths follow Zipf's law of abbreviation: frequent words are
// short.
package wordcount

import (
	"math/bits"
	"math/rand"

	"soar/internal/reduce"
)

// Config describes the synthetic corpus.
type Config struct {
	// TotalWords is the corpus length; it is split evenly across servers.
	TotalWords int
	// Vocabulary is the number of distinct words.
	Vocabulary int
	// Exponent is the Zipf exponent (> 1); natural language is ≈ 1.1.
	Exponent float64
	// CountBytes is the wire size of one count field (default 8).
	CountBytes int
}

// DefaultConfig is a 1/10-scale stand-in for the paper's Wikipedia dump.
func DefaultConfig() Config {
	return Config{TotalWords: 5_400_000, Vocabulary: 80_000, Exponent: 1.1, CountBytes: 8}
}

// TestConfig is a small corpus for unit tests and examples.
func TestConfig() Config {
	return Config{TotalWords: 60_000, Vocabulary: 5_000, Exponent: 1.1, CountBytes: 8}
}

// Dict is a word→count dictionary payload.
type Dict struct {
	Counts map[int32]int64
	size   int64
	cfg    *Config
}

// SizeBytes implements reduce.Payload: the sum over entries of the word's
// length plus the count field.
func (d *Dict) SizeBytes() int64 { return d.size }

// TotalCount returns the number of corpus words represented (with
// multiplicity); conserved under Merge.
func (d *Dict) TotalCount() int64 {
	var s int64
	for _, c := range d.Counts {
		s += c
	}
	return s
}

// WordLen is the modeled byte length of a word id: ids are assigned by
// frequency rank (0 = most frequent), and per Zipf's law of abbreviation
// frequent words are shorter. Lengths grow logarithmically from 3 to ~13
// across an 80K vocabulary.
func WordLen(id int32) int64 {
	return 3 + int64(bits.Len32(uint32(id))/2)
}

// Aggregator produces per-server shard dictionaries and merges them. It
// implements reduce.Aggregator. Shards are regenerated deterministically
// from (seed, server index), so repeated simulations over the same
// aggregator see identical data without retaining the corpus in memory.
type Aggregator struct {
	cfg        Config
	numServers int
	seed       int64
}

// NewAggregator shards a synthetic corpus of cfg.TotalWords words across
// numServers servers (the last server absorbs the remainder).
func NewAggregator(cfg Config, numServers int, seed int64) *Aggregator {
	if cfg.CountBytes == 0 {
		cfg.CountBytes = 8
	}
	if numServers < 1 {
		panic("wordcount: need at least one server")
	}
	return &Aggregator{cfg: cfg, numServers: numServers, seed: seed}
}

// ShardWords returns how many corpus words server i maps over.
func (a *Aggregator) ShardWords(i int) int {
	per := a.cfg.TotalWords / a.numServers
	if i == a.numServers-1 {
		return a.cfg.TotalWords - per*(a.numServers-1)
	}
	return per
}

// Produce implements reduce.Aggregator: server i's message is the word
// count of its shard.
func (a *Aggregator) Produce(i int) reduce.Payload {
	rng := rand.New(rand.NewSource(a.seed ^ (int64(i)+1)*0x5851F42D4C957F2D))
	zipf := rand.NewZipf(rng, a.cfg.Exponent, 1, uint64(a.cfg.Vocabulary-1))
	d := &Dict{Counts: make(map[int32]int64), cfg: &a.cfg}
	for w := a.ShardWords(i); w > 0; w-- {
		id := int32(zipf.Uint64())
		if _, ok := d.Counts[id]; !ok {
			d.size += WordLen(id) + int64(a.cfg.CountBytes)
		}
		d.Counts[id]++
	}
	return d
}

// Merge implements reduce.Aggregator: dictionary union with count sums.
// Counts are conserved; the merged size is sub-additive, which is what
// makes in-network aggregation shrink WC traffic.
func (a *Aggregator) Merge(p, q reduce.Payload) reduce.Payload {
	dst, src := p.(*Dict), q.(*Dict)
	for id, c := range src.Counts {
		if _, ok := dst.Counts[id]; !ok {
			dst.size += WordLen(id) + int64(a.cfg.CountBytes)
		}
		dst.Counts[id] += c
	}
	return dst
}

var _ reduce.Aggregator = (*Aggregator)(nil)
