package wordcount

import (
	"testing"

	"soar/internal/paper"
	"soar/internal/reduce"
)

func TestShardWordsSumToCorpus(t *testing.T) {
	cfg := Config{TotalWords: 1003, Vocabulary: 50, Exponent: 1.2}
	a := NewAggregator(cfg, 7, 1)
	total := 0
	for i := 0; i < 7; i++ {
		total += a.ShardWords(i)
	}
	if total != 1003 {
		t.Fatalf("shards sum to %d, want 1003", total)
	}
}

func TestProduceDeterministic(t *testing.T) {
	a := NewAggregator(TestConfig(), 4, 42)
	d1 := a.Produce(2).(*Dict)
	d2 := a.Produce(2).(*Dict)
	if d1.TotalCount() != d2.TotalCount() || len(d1.Counts) != len(d2.Counts) {
		t.Fatalf("Produce not deterministic: %d/%d words vs %d/%d",
			d1.TotalCount(), len(d1.Counts), d2.TotalCount(), len(d2.Counts))
	}
	for id, c := range d1.Counts {
		if d2.Counts[id] != c {
			t.Fatalf("word %d count %d vs %d", id, c, d2.Counts[id])
		}
	}
}

func TestProduceCountsMatchShardSize(t *testing.T) {
	a := NewAggregator(TestConfig(), 5, 7)
	for i := 0; i < 5; i++ {
		d := a.Produce(i).(*Dict)
		if got, want := d.TotalCount(), int64(a.ShardWords(i)); got != want {
			t.Fatalf("server %d dictionary holds %d words, want %d", i, got, want)
		}
	}
}

func TestMergeConservesCountsAndIsSubadditive(t *testing.T) {
	a := NewAggregator(TestConfig(), 2, 9)
	d1 := a.Produce(0).(*Dict)
	d2 := a.Produce(1).(*Dict)
	c1, c2 := d1.TotalCount(), d2.TotalCount()
	s1, s2 := d1.SizeBytes(), d2.SizeBytes()
	m := a.Merge(d1, d2).(*Dict)
	if m.TotalCount() != c1+c2 {
		t.Fatalf("merge lost words: %d, want %d", m.TotalCount(), c1+c2)
	}
	if m.SizeBytes() > s1+s2 {
		t.Fatalf("merged size %d exceeds sum of parts %d", m.SizeBytes(), s1+s2)
	}
	if m.SizeBytes() >= s1+s2 {
		t.Fatalf("Zipf shards share no words? merged %d == %d+%d", m.SizeBytes(), s1, s2)
	}
}

func TestSizeMatchesRecount(t *testing.T) {
	a := NewAggregator(TestConfig(), 3, 5)
	d := a.Produce(0).(*Dict)
	var want int64
	for id := range d.Counts {
		want += WordLen(id) + 8
	}
	if d.SizeBytes() != want {
		t.Fatalf("cached size %d, recomputed %d", d.SizeBytes(), want)
	}
	m := a.Merge(d, a.Produce(1)).(*Dict)
	want = 0
	for id := range m.Counts {
		want += WordLen(id) + 8
	}
	if m.SizeBytes() != want {
		t.Fatalf("merged cached size %d, recomputed %d", m.SizeBytes(), want)
	}
}

func TestWordLenAbbreviation(t *testing.T) {
	if WordLen(0) >= WordLen(70_000) {
		t.Fatalf("frequent word len %d not shorter than rare word len %d",
			WordLen(0), WordLen(70_000))
	}
	if WordLen(0) < 1 {
		t.Fatalf("WordLen(0)=%d", WordLen(0))
	}
}

func TestEndToEndBytesShrinkWithAggregation(t *testing.T) {
	// On the paper's example tree, total WC bytes must strictly decrease
	// from all-red to the k=2 optimum to all-blue.
	tr, loads := paper.Figure2()
	servers := 0
	for _, l := range loads {
		servers += l
	}
	a := NewAggregator(TestConfig(), servers, 3)
	allRed := make([]bool, tr.N())
	opt := []bool{false, false, true, false, true, false, false} // SOAR k=2
	allBlue := []bool{true, true, true, true, true, true, true}
	red := reduce.ByteComplexity(tr, loads, allRed, a).TotalBytes
	mid := reduce.ByteComplexity(tr, loads, opt, a).TotalBytes
	blue := reduce.ByteComplexity(tr, loads, allBlue, a).TotalBytes
	if !(blue < mid && mid < red) {
		t.Fatalf("bytes not ordered: all-blue %d, k=2 %d, all-red %d", blue, mid, red)
	}
}

func TestVocabularyBound(t *testing.T) {
	a := NewAggregator(TestConfig(), 1, 11)
	d := a.Produce(0).(*Dict)
	for id := range d.Counts {
		if id < 0 || int(id) >= TestConfig().Vocabulary {
			t.Fatalf("word id %d outside vocabulary [0,%d)", id, TestConfig().Vocabulary)
		}
	}
	if len(d.Counts) < 100 {
		t.Fatalf("only %d distinct words in a %d-word shard", len(d.Counts), TestConfig().TotalWords)
	}
}

func TestNewAggregatorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero servers")
		}
	}()
	NewAggregator(TestConfig(), 0, 1)
}
