package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden harness: each directory under testdata/ is a tiny
// self-contained module exercising exactly one analyzer. Violating
// lines carry a trailing `// want "regexp"` comment; the harness
// requires a one-to-one correspondence — every want matched by a
// finding on its line, every finding claimed by a want. Unmarked
// lines are the negative cases: a finding there fails the test.

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// expectation is one `// want` comment: a message regexp anchored to a
// file and line of the golden module.
type expectation struct {
	file string // module-relative, matching Finding.File
	line int
	re   *regexp.Regexp
	hit  bool
}

// readWants scans every .go file of the golden module for want comments.
func readWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", e.Name(), line, m[1], err)
				}
				wants = append(wants, &expectation{file: e.Name(), line: line, re: re})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	if len(wants) == 0 {
		t.Fatalf("no want comments in %s — empty golden module", dir)
	}
	return wants
}

func TestGolden(t *testing.T) {
	for _, a := range All {
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", a.Name)
			wants := readWants(t, dir)
			findings, err := RunAnalyzers(dir, nil, []*Analyzer{a})
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range findings {
				if f.Analyzer != a.Name {
					t.Errorf("finding from analyzer %q in the %s golden run", f.Analyzer, a.Name)
				}
				claimed := false
				for _, w := range wants {
					if w.file == f.File && w.line == f.Line && w.re.MatchString(f.Message) {
						w.hit = true
						claimed = true
					}
				}
				if !claimed {
					t.Errorf("unexpected finding %s:%d: %s", f.File, f.Line, f.Message)
				}
			}
			for _, w := range wants {
				if !w.hit {
					t.Errorf("%s:%d: want %q, no matching finding", w.file, w.line, w.re)
				}
			}
		})
	}
}

// TestGoldenModulesAreComplete pins the testdata layout itself: one
// golden module per registered analyzer, so adding an analyzer without
// golden coverage fails loudly.
func TestGoldenModulesAreComplete(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	have := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() {
			have[e.Name()] = true
		}
	}
	for _, a := range All {
		if !have[a.Name] {
			t.Errorf("no testdata/%s golden module for analyzer %s", a.Name, a.Name)
		}
		delete(have, a.Name)
	}
	for name := range have {
		t.Errorf("testdata/%s matches no registered analyzer", name)
	}
}

// TestSelfClean runs the full suite over this repository's own module:
// the annotations in internal/core, internal/sched and friends must
// hold. This is the same gate CI runs via cmd/soarlint.
func TestSelfClean(t *testing.T) {
	findings, err := Run(filepath.Join("..", ".."), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		t.Logf("soarlint must stay clean on its own module; fix or annotate (see DESIGN.md)")
	}
}

// TestPatternFiltering exercises the package-pattern matcher against
// a golden module: a pattern naming a package restricts the run.
func TestPatternFiltering(t *testing.T) {
	dir := filepath.Join("testdata", "capclamp")
	all, err := RunAnalyzers(dir, []string{"./..."}, []*Analyzer{AnalyzerCapClamp})
	if err != nil {
		t.Fatal(err)
	}
	root, err := RunAnalyzers(dir, []string{"."}, []*Analyzer{AnalyzerCapClamp})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 || len(all) != len(root) {
		t.Fatalf("pattern runs disagree: ./... gave %d findings, . gave %d", len(all), len(root))
	}
	none, err := RunAnalyzers(dir, []string{"./nosuchpkg"}, []*Analyzer{AnalyzerCapClamp})
	if err == nil && len(none) != 0 {
		t.Fatalf("pattern ./nosuchpkg matched %d findings, want none", len(none))
	}
}

// TestFindingsAreOrdered pins the deterministic report order findings
// are promised in: by file, then line, then column.
func TestFindingsAreOrdered(t *testing.T) {
	findings, err := RunAnalyzers(filepath.Join("testdata", "lockdiscipline"), nil, All)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(findings); i++ {
		a, b := findings[i-1], findings[i]
		if a.File > b.File || (a.File == b.File && a.Line > b.Line) {
			t.Fatalf("findings out of order: %s:%d before %s:%d", a.File, a.Line, b.File, b.Line)
		}
	}
	if len(findings) == 0 {
		t.Fatal("lockdiscipline golden module produced no findings")
	}
}
