package main

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"soar/internal/core"
	"soar/internal/load"
	"soar/internal/reduce"
	"soar/internal/sched"
	"soar/internal/topology"
)

// runSched load-tests the concurrent placement scheduler: many client
// goroutines admit sparse tenants against one shared tree with bounded
// per-switch capacity, release a fraction of them (churn), and the
// command reports the scheduler's own metrics — throughput, admission
// latency quantiles, batch coalescing, commit conflicts, re-packer
// recoveries. With -baseline the same request mix is replayed against
// the pre-scheduler serving path (one mutex, a from-scratch solve per
// admission) and the speedup is printed.
func runSched(args []string) error {
	fs := newFlagSet("sched")
	n := fs.Int("n", 1024, "network size (complete binary tree, power of two)")
	k := fs.Int("k", 8, "aggregation switch budget per tenant")
	capacity := fs.Int("capacity", 16, "per-switch lease capacity (0 = unlimited)")
	capsSpec := fs.String("caps", "", capsProfileHelp+" — overrides -capacity; entries are tenant slots per switch")
	tenants := fs.Int("tenants", 2000, "total tenants to admit")
	clients := fs.Int("clients", 8, "concurrent client goroutines")
	workers := fs.Int("workers", 0, "scheduler engine-pool size (0 = GOMAXPROCS)")
	window := fs.Duration("window", 200*time.Microsecond, "batching window")
	racks := fs.Int("racks", 8, "leaves each tenant loads (sparse tenants)")
	churn := fs.Float64("churn", 0.5, "probability a client releases one of its tenants after an admission")
	repackEvery := fs.Duration("repack-every", 25*time.Millisecond, "background re-packing period (0 = off)")
	repackMoves := fs.Int("repack-moves", 16, "migration budget per re-packing round")
	memo := fs.Bool("memo", false, "enable the cross-request solve cache (one hash-consed class memo per engine)")
	seed := fs.Int64("seed", 1, "random seed")
	baseline := fs.Bool("baseline", false, "also run the mutex-serialized from-scratch baseline and report the speedup")
	if err := fs.Parse(args); err != nil {
		return err
	}

	tr, err := topology.BT(*n)
	if err != nil {
		return err
	}
	// The profile stream is salted away from the client streams
	// (*seed + c below), so a random profile never correlates with any
	// client's workload draws.
	caps, err := parseCapsProfile(*capsSpec, tr, rand.New(rand.NewSource(*seed^0x5ca1ab1e)))
	if err != nil {
		return err
	}
	s := sched.New(tr, sched.Config{
		Capacity:   *capacity,
		Capacities: caps,
		Workers:    *workers,
		Window:     *window,
		Memo:       *memo,
		Repack:     sched.RepackConfig{Every: *repackEvery, MaxMoves: *repackMoves},
	})
	defer s.Close()

	fmt.Printf("scheduler: BT(%d) switches=%d k=%d capacity=%d clients=%d window=%v repack=%v/%d memo=%v\n",
		*n, tr.N(), *k, *capacity, *clients, *window, *repackEvery, *repackMoves, *memo)
	if caps != nil {
		fmt.Printf("capacity profile: %s (%s)\n", *capsSpec, capsSummary(caps))
	}

	elapsed := driveClients(*clients, *tenants, func(c int) func() error {
		rng := rand.New(rand.NewSource(*seed + int64(c)))
		var lease sched.Lease
		var mine []int64
		return func() error {
			loads := load.GenerateSparse(tr, load.PaperPowerLaw(), *racks, rng)
			if err := s.PlaceInto(loads, *k, &lease); err != nil {
				return err
			}
			mine = append(mine, lease.ID)
			if rng.Float64() < *churn {
				j := rng.Intn(len(mine))
				id := mine[j]
				mine[j] = mine[len(mine)-1]
				mine = mine[:len(mine)-1]
				if err := s.Release(id); err != nil {
					return err
				}
			}
			return nil
		}
	})

	m := s.Metrics()
	st := s.Snapshot()
	fmt.Printf("\nadmitted %d tenants in %v (%.0f placements/s)\n",
		m.Placed, elapsed.Round(time.Millisecond), float64(m.Placed)/elapsed.Seconds())
	fmt.Printf("  latency    p50=%v p95=%v p99=%v\n", m.PlaceP50, m.PlaceP95, m.PlaceP99)
	fmt.Printf("  batching   %d batches, mean %.2f, max %d, %d commit conflicts re-solved\n",
		m.Batches, m.MeanBatch, m.MaxBatch, m.Conflicts)
	fmt.Printf("  re-packer  %d rounds, %d tenants moved, Φ recovered %.1f\n",
		m.RepackRounds, m.RepackMoves, m.PhiRecovered)
	fmt.Printf("  state      %d live tenants, %d/%d slots used, mean ratio %.3f\n",
		st.Tenants, st.CapacityUsed, st.CapacityTotal, st.MeanRatio)

	if !*baseline {
		return nil
	}
	fmt.Printf("\nbaseline: mutex-serialized from-scratch solves, same request mix\n")
	b := &serialBaseline{t: tr, residual: make([]int, tr.N()), leases: make(map[int64][]int)}
	for v := range b.residual {
		switch {
		case caps != nil:
			b.residual[v] = caps[v]
		case *capacity <= 0:
			b.residual[v] = int(^uint(0) >> 1)
		default:
			b.residual[v] = *capacity
		}
	}
	baseElapsed := driveClients(*clients, *tenants, func(c int) func() error {
		rng := rand.New(rand.NewSource(*seed + int64(c)))
		var mine []int64
		return func() error {
			loads := load.GenerateSparse(tr, load.PaperPowerLaw(), *racks, rng)
			mine = append(mine, b.place(loads, *k))
			if rng.Float64() < *churn {
				j := rng.Intn(len(mine))
				id := mine[j]
				mine[j] = mine[len(mine)-1]
				mine = mine[:len(mine)-1]
				b.release(id)
			}
			return nil
		}
	})
	basePerSec := float64(*tenants) / baseElapsed.Seconds()
	fmt.Printf("admitted %d tenants in %v (%.0f placements/s)\n",
		*tenants, baseElapsed.Round(time.Millisecond), basePerSec)
	fmt.Printf("scheduler speedup: %.1fx\n", baseElapsed.Seconds()/elapsed.Seconds())
	return nil
}

// driveClients runs `total` operations across `clients` goroutines and
// returns the wall-clock time. makeOp builds each client's closure (its
// private rng and lease state).
func driveClients(clients, total int, makeOp func(c int) func() error) time.Duration {
	var remaining atomic.Int64
	remaining.Store(int64(total))
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			op := makeOp(c)
			for remaining.Add(-1) >= 0 {
				if err := op(); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		fmt.Printf("client error: %v\n", err)
	}
	return elapsed
}

// serialBaseline is the pre-scheduler serving path: one big lock and a
// from-scratch solve per admission.
type serialBaseline struct {
	mu       sync.Mutex
	t        *topology.Tree
	residual []int
	leases   map[int64][]int
	nextID   int64
}

func (b *serialBaseline) place(loads []int, k int) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	avail := make([]bool, b.t.N())
	for v, c := range b.residual {
		avail[v] = c > 0
	}
	res := core.Solve(b.t, loads, avail, k)
	_ = reduce.Utilization(b.t, loads, make([]bool, b.t.N()))
	id := b.nextID
	b.nextID++
	var blue []int
	for v, isBlue := range res.Blue {
		if isBlue {
			b.residual[v]--
			blue = append(blue, v)
		}
	}
	b.leases[id] = blue
	return id
}

func (b *serialBaseline) release(id int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, v := range b.leases[id] {
		b.residual[v]++
	}
	delete(b.leases, id)
}
