package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"slices"
	"strings"
)

// AnalyzerLockDiscipline enforces the scheduler's locking contract on
// mutex fields annotated //soar:critical:
//
//   - while a critical mutex is held, no channel send, receive, select
//     or range-over-channel may execute, no Solve*-named function may be
//     called, and no sync.Pool Get may run — a solve under the
//     coordinator mutex serializes the whole scheduler, and a channel
//     op under it can deadlock against the dispatcher;
//   - the package's //soar:lockorder directive (outermost first) is
//     enforced: acquiring an earlier lock while holding a later one is
//     an inversion, and re-acquiring a held lock is a self-deadlock.
//
// The check is branch-sensitive (a branch that unlocks and returns does
// not poison the fall-through path) and transitive: every module
// function gets an effect summary (does it — directly or through
// callees — perform channel ops, call Solve*, call pool Get, acquire
// critical locks?), so a violation hidden behind a helper like the old
// repackLocked is still caught at the locked call site. Goroutine
// bodies are analyzed separately with no locks held, since they do not
// run under the spawner's locks.
var AnalyzerLockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "channel ops, Solve* calls or pool Gets under //soar:critical mutexes; lock-order violations",
	Run:  runLockDiscipline,
}

func runLockDiscipline(p *Pass) {
	notes := p.Module.Notes
	if len(notes.Critical) == 0 {
		return
	}
	ld := &lockChecker{p: p, effects: moduleEffects(p.Module)}
	for _, f := range p.Unit.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ld.fn(fd.Body)
		}
	}
}

// funcEffects summarizes what a module function does, transitively
// through module callees (goroutine bodies excluded — they run outside
// the spawner's critical section).
type funcEffects struct {
	chanOp  bool            // send, receive, select, range over channel
	solve   bool            // calls a Solve*/solve*-named function
	poolGet bool            // calls (*sync.Pool).Get
	locks   map[string]bool // critical lock fields acquired
	callees map[string]bool // module callee symbols (for propagation)
}

// moduleEffects computes (and caches on the module) the transitive
// effect summary of every module function.
func moduleEffects(mod *Module) map[string]*funcEffects {
	if mod.effects != nil {
		return mod.effects
	}
	eff := make(map[string]*funcEffects)
	for _, u := range mod.Units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := u.Info.Defs[fd.Name].(*types.Func)
				sym := symbolOf(obj)
				if sym == "" {
					continue
				}
				eff[sym] = directEffects(mod, u, fd.Body)
			}
		}
	}
	// Fixed-point propagation over the static module call graph.
	for changed := true; changed; {
		changed = false
		for _, e := range eff {
			for callee := range e.callees {
				ce := eff[callee]
				if ce == nil {
					continue
				}
				if ce.chanOp && !e.chanOp {
					e.chanOp = true
					changed = true
				}
				if ce.solve && !e.solve {
					e.solve = true
					changed = true
				}
				if ce.poolGet && !e.poolGet {
					e.poolGet = true
					changed = true
				}
				for l := range ce.locks {
					if !e.locks[l] {
						e.locks[l] = true
						changed = true
					}
				}
			}
		}
	}
	mod.effects = eff
	return eff
}

// directEffects scans one function body for its own effects and module
// call edges, skipping goroutine bodies.
func directEffects(mod *Module, u *Unit, body *ast.BlockStmt) *funcEffects {
	e := &funcEffects{locks: make(map[string]bool), callees: make(map[string]bool)}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false // runs concurrently, not under the caller's locks
		case *ast.SendStmt, *ast.SelectStmt:
			e.chanOp = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				e.chanOp = true
			}
		case *ast.RangeStmt:
			if t := u.Info.TypeOf(n.X); t != nil {
				if _, ok := types.Unalias(t).Underlying().(*types.Chan); ok {
					e.chanOp = true
				}
			}
		case *ast.CallExpr:
			fn := calleeFunc(u.Info, n)
			if fn == nil {
				break
			}
			sym := symbolOf(fn)
			if isSolveName(fn.Name()) {
				e.solve = true
			}
			if sym == "sync.Pool.Get" {
				e.poolGet = true
			}
			if strings.HasPrefix(sym, mod.Path+".") || strings.HasPrefix(sym, mod.Path+"/") {
				e.callees[sym] = true
			}
			if key, _ := criticalLockCall(mod.Notes, u.Info, n); key != "" {
				e.locks[key] = true
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return e
}

func isSolveName(name string) bool {
	return strings.HasPrefix(name, "Solve") || strings.HasPrefix(name, "solve")
}

// criticalLockCall matches m.Lock()/m.RLock() (and Try variants) on a
// //soar:critical field; it returns the field key and whether the call
// acquires (true) or releases (false). Empty key: not a lock call.
func criticalLockCall(notes *Notes, info *types.Info, call *ast.CallExpr) (key string, acquire bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	var isAcquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock":
		isAcquire = true
	case "Unlock", "RUnlock":
		isAcquire = false
	default:
		return "", false
	}
	field, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fsel, ok := info.Selections[field]
	if !ok {
		return "", false
	}
	k := fieldKey(fsel)
	if !notes.Critical[k] {
		return "", false
	}
	return k, isAcquire
}

type heldLock struct {
	key string // critical field key
}

// lockState is the ordered set of critical locks held at a program
// point, outermost first.
type lockState struct {
	held []heldLock
}

func (st *lockState) clone() *lockState {
	return &lockState{held: slices.Clone(st.held)}
}

func (st *lockState) holding() bool { return len(st.held) > 0 }

func (st *lockState) names() string {
	parts := make([]string, len(st.held))
	for i, h := range st.held {
		parts[i] = lockName(h.key)
	}
	return strings.Join(parts, ", ")
}

// lockName shortens "pkg.Type.field" to "field" for messages and for
// matching the //soar:lockorder directive.
func lockName(key string) string {
	if i := strings.LastIndex(key, "."); i >= 0 {
		return key[i+1:]
	}
	return key
}

type lockChecker struct {
	p       *Pass
	effects map[string]*funcEffects
	// queue holds FuncLits to analyze with a fresh (empty) lock state.
	queue []*ast.FuncLit
}

// fn analyzes a function body starting with no locks held, then drains
// any queued closures the same way.
func (ld *lockChecker) fn(body *ast.BlockStmt) {
	ld.stmts(body.List, &lockState{})
	for len(ld.queue) > 0 {
		fl := ld.queue[0]
		ld.queue = ld.queue[1:]
		ld.stmts(fl.Body.List, &lockState{})
	}
}

// stmts walks a statement list, returning whether control definitely
// leaves the enclosing function (return/panic) or block (branch).
func (ld *lockChecker) stmts(list []ast.Stmt, st *lockState) bool {
	for _, s := range list {
		if ld.stmt(s, st) {
			return true
		}
	}
	return false
}

func (ld *lockChecker) stmt(s ast.Stmt, st *lockState) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		return ld.stmts(s.List, st)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			ld.scanExpr(e, st)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if key, acquire := criticalLockCall(ld.p.Module.Notes, ld.p.Unit.Info, call); key != "" {
				if acquire {
					ld.acquire(key, call.Pos(), st)
				} else {
					ld.release(key, st)
				}
				return false
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				ld.scanExpr(s.X, st)
				return true
			}
		}
		ld.scanExpr(s.X, st)
		return false
	case *ast.SendStmt:
		if st.holding() {
			ld.p.Reportf(s.Pos(), "channel send while holding %s (//soar:critical)", st.names())
		}
		ld.scanExpr(s.Chan, st)
		ld.scanExpr(s.Value, st)
		return false
	case *ast.AssignStmt:
		for _, e := range s.Lhs {
			ld.scanExpr(e, st)
		}
		for _, e := range s.Rhs {
			ld.scanExpr(e, st)
		}
		return false
	case *ast.IncDecStmt:
		ld.scanExpr(s.X, st)
		return false
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				ld.scanExpr(e, st)
				return false
			}
			return true
		})
		return false
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end, which
		// is exactly what the discipline should check against; other
		// deferred calls only have their argument expressions scanned.
		for _, a := range s.Call.Args {
			ld.scanExpr(a, st)
		}
		return false
	case *ast.GoStmt:
		// The goroutine does not run under our locks; queue closures.
		ld.queueFuncLits(s.Call)
		for _, a := range s.Call.Args {
			ld.scanExpr(a, st)
		}
		return false
	case *ast.IfStmt:
		ld.stmt(s.Init, st)
		ld.scanExpr(s.Cond, st)
		thenSt := st.clone()
		thenTerm := ld.stmts(s.Body.List, thenSt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = ld.stmt(s.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			st.held = elseSt.held
		case elseTerm:
			st.held = thenSt.held
		default:
			st.held = mergeHeld(thenSt.held, elseSt.held)
		}
		return false
	case *ast.ForStmt:
		ld.stmt(s.Init, st)
		ld.scanExpr(s.Cond, st)
		body := st.clone()
		ld.stmts(s.Body.List, body)
		ld.stmt(s.Post, body)
		return false
	case *ast.RangeStmt:
		if st.holding() {
			if t := ld.p.Unit.Info.TypeOf(s.X); t != nil {
				if _, ok := types.Unalias(t).Underlying().(*types.Chan); ok {
					ld.p.Reportf(s.Pos(), "range over channel while holding %s (//soar:critical)", st.names())
				}
			}
		}
		ld.scanExpr(s.X, st)
		ld.stmts(s.Body.List, st.clone())
		return false
	case *ast.SelectStmt:
		if st.holding() {
			ld.p.Reportf(s.Pos(), "select while holding %s (//soar:critical)", st.names())
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				ld.stmts(cc.Body, st.clone())
			}
		}
		return false
	case *ast.SwitchStmt:
		ld.stmt(s.Init, st)
		ld.scanExpr(s.Tag, st)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					ld.scanExpr(e, st)
				}
				ld.stmts(cc.Body, st.clone())
			}
		}
		return false
	case *ast.TypeSwitchStmt:
		ld.stmt(s.Init, st)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ld.stmts(cc.Body, st.clone())
			}
		}
		return false
	case *ast.LabeledStmt:
		return ld.stmt(s.Stmt, st)
	default:
		return false
	}
}

// mergeHeld unions two branch outcomes conservatively: a lock held on
// either path counts as held afterwards.
func mergeHeld(a, b []heldLock) []heldLock {
	out := slices.Clone(a)
	for _, h := range b {
		found := false
		for _, g := range out {
			if g.key == h.key {
				found = true
				break
			}
		}
		if !found {
			out = append(out, h)
		}
	}
	return out
}

// acquire pushes a lock, checking re-acquisition and the declared
// //soar:lockorder.
func (ld *lockChecker) acquire(key string, pos token.Pos, st *lockState) {
	order := ld.p.Module.Notes.LockOrder[unitPkgPath(ld.p.Unit)]
	for _, h := range st.held {
		if h.key == key {
			ld.p.Reportf(pos, "acquires %s while already holding it (self-deadlock)", lockName(key))
			continue
		}
		ni, hi := slices.Index(order, lockName(key)), slices.Index(order, lockName(h.key))
		if ni >= 0 && hi >= 0 && ni < hi {
			ld.p.Reportf(pos, "acquires %s while holding %s; //soar:lockorder requires %s", lockName(key), lockName(h.key), strings.Join(order, " before "))
		}
	}
	st.held = append(st.held, heldLock{key: key})
}

func (ld *lockChecker) release(key string, st *lockState) {
	for i := len(st.held) - 1; i >= 0; i-- {
		if st.held[i].key == key {
			st.held = slices.Delete(st.held, i, i+1)
			return
		}
	}
}

// scanExpr checks an expression tree for channel receives and for
// calls whose direct or summarized effects violate the discipline.
// FuncLits are queued for separate analysis with no locks held only
// when they sit under a go statement (handled by the caller); inline
// FuncLits (e.g. sort comparators) run synchronously and are scanned
// under the current state.
func (ld *lockChecker) scanExpr(e ast.Expr, st *lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && st.holding() {
				ld.p.Reportf(n.Pos(), "channel receive while holding %s (//soar:critical)", st.names())
			}
		case *ast.CallExpr:
			ld.checkCall(n, st)
		}
		return true
	})
}

// checkCall applies the held-lock rules to one call site.
func (ld *lockChecker) checkCall(call *ast.CallExpr, st *lockState) {
	info := ld.p.Unit.Info
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	sym := symbolOf(fn)
	if st.holding() {
		switch {
		case isSolveName(fn.Name()):
			ld.p.Reportf(call.Pos(), "calls %s while holding %s (//soar:critical): no Solve* under a critical mutex", sym, st.names())
		case sym == "sync.Pool.Get":
			ld.p.Reportf(call.Pos(), "sync.Pool Get while holding %s (//soar:critical)", st.names())
		default:
			if eff := ld.effects[sym]; eff != nil {
				if eff.chanOp {
					ld.p.Reportf(call.Pos(), "calls %s, which performs a channel operation, while holding %s (//soar:critical)", sym, st.names())
				}
				if eff.solve {
					ld.p.Reportf(call.Pos(), "calls %s, which reaches a Solve* call, while holding %s (//soar:critical)", sym, st.names())
				}
				if eff.poolGet {
					ld.p.Reportf(call.Pos(), "calls %s, which reaches a sync.Pool Get, while holding %s (//soar:critical)", sym, st.names())
				}
			}
		}
	}
	// Lock-order through callees: calling a function that acquires a
	// critical lock is an acquisition at this site.
	if eff := ld.effects[sym]; eff != nil && st.holding() {
		order := ld.p.Module.Notes.LockOrder[unitPkgPath(ld.p.Unit)]
		for lkey := range eff.locks {
			for _, h := range st.held {
				if h.key == lkey {
					ld.p.Reportf(call.Pos(), "calls %s, which acquires %s, while already holding it (self-deadlock)", sym, lockName(lkey))
					continue
				}
				ni, hi := slices.Index(order, lockName(lkey)), slices.Index(order, lockName(h.key))
				if ni >= 0 && hi >= 0 && ni < hi {
					ld.p.Reportf(call.Pos(), "calls %s, which acquires %s, while holding %s; //soar:lockorder requires %s", sym, lockName(lkey), lockName(h.key), strings.Join(order, " before "))
				}
			}
		}
	}
}

// queueFuncLits schedules closures under a go statement for analysis
// with an empty lock state.
func (ld *lockChecker) queueFuncLits(call *ast.CallExpr) {
	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ld.queue = append(ld.queue, fl)
	}
	for _, a := range call.Args {
		if fl, ok := ast.Unparen(a).(*ast.FuncLit); ok {
			ld.queue = append(ld.queue, fl)
		}
	}
}
