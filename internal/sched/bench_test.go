package sched

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"soar/internal/core"
	"soar/internal/load"
	"soar/internal/reduce"
	"soar/internal/topology"
)

// mutexSerialService replicates the pre-scheduler naas.Service serving
// path exactly: one big lock, a fresh availability vector and a
// from-scratch core.Solve per admission. It is the baseline the
// scheduler's throughput is measured against.
type mutexSerialService struct {
	mu       sync.Mutex
	t        *topology.Tree
	residual []int
	leases   map[int64][]int
	nextID   int64
}

func newMutexSerialService(t *topology.Tree, capacity int) *mutexSerialService {
	s := &mutexSerialService{t: t, residual: make([]int, t.N()), leases: make(map[int64][]int)}
	for v := range s.residual {
		s.residual[v] = capacity
	}
	return s
}

func (s *mutexSerialService) place(loads []int, k int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	avail := make([]bool, s.t.N())
	for v, c := range s.residual {
		avail[v] = c > 0
	}
	res := core.Solve(s.t, loads, avail, k)
	_ = reduce.Utilization(s.t, loads, make([]bool, s.t.N())) // the all-red normalizer every lease reports
	id := s.nextID
	s.nextID++
	var blue []int
	for v, b := range res.Blue {
		if b {
			s.residual[v]--
			blue = append(blue, v)
		}
	}
	s.leases[id] = blue
	return id
}

func (s *mutexSerialService) release(id int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, v := range s.leases[id] {
		s.residual[v]++
	}
	delete(s.leases, id)
}

// benchTenants pre-draws a pool of sparse tenant load vectors (each
// tenant occupies `racks` leaves of the tree) so the measured loop does
// no generation work.
func benchTenants(tr *topology.Tree, n, racks int) [][]int {
	rng := rand.New(rand.NewSource(17))
	pool := make([][]int, n)
	for i := range pool {
		pool[i] = load.GenerateSparse(tr, load.PaperPowerLaw(), racks, rng)
	}
	return pool
}

// BenchmarkScheduler measures a parallel Place/Release mix at the
// paper's largest evaluation network, BT(2048), with an 8-worker engine
// pool, against the mutex-serialized from-scratch baseline (the
// pre-scheduler naas.Service path). Tenants are sparse (8 racks each),
// the regime a shared tree actually serves — and the one the patched
// incremental engines exploit: expect several times the baseline's
// throughput with 0 allocs per steady-state admission, on top of
// whatever multi-core fan-out adds.
func BenchmarkScheduler(b *testing.B) {
	tr := topology.MustBT(2048)
	const (
		k        = 8
		capacity = 64
		racks    = 8
		clients  = 8
	)
	pool := benchTenants(tr, 256, racks)

	b.Run("scheduler/workers=8", func(b *testing.B) {
		s := New(tr, Config{Capacity: capacity, Workers: 8})
		defer s.Close()
		var next int64
		b.ReportAllocs()
		b.SetParallelism(clients)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			var lease Lease
			i := int(nextSeed(&next)) * 31
			for pb.Next() {
				if err := s.PlaceInto(pool[i%len(pool)], k, &lease); err != nil {
					b.Error(err)
					return
				}
				if err := s.Release(lease.ID); err != nil {
					b.Error(err)
					return
				}
				i++
			}
		})
	})

	b.Run("baseline/mutex-serial", func(b *testing.B) {
		s := newMutexSerialService(tr, capacity)
		var next int64
		b.ReportAllocs()
		b.SetParallelism(clients)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := int(nextSeed(&next)) * 31
			for pb.Next() {
				id := s.place(pool[i%len(pool)], k)
				s.release(id)
				i++
			}
		})
	})
}

var seedMu sync.Mutex

func nextSeed(next *int64) int64 {
	seedMu.Lock()
	defer seedMu.Unlock()
	*next++
	return *next
}

// BenchmarkSchedulerSparse gates the cross-request solve cache: a
// single-stream churn of sparse tenants (8 racks each on BT(2048),
// k=32 — budgets large enough that the per-admission DP recompute
// dominates) admitted with the memo on versus the cold-cache scheduler.
// With Memo, a recurring tenant's dirtied root paths re-intern to
// classes whose tables the engine's cache already holds, so the solve
// collapses to hash-cons lookups; expect a multiple of the cold
// configuration's throughput (≥ 2× is the acceptance bar).
func BenchmarkSchedulerSparse(b *testing.B) {
	tr := topology.MustBT(2048)
	const (
		k        = 32
		capacity = 64
		racks    = 8
	)
	pool := benchTenants(tr, 256, racks)
	for _, cfg := range []struct {
		name string
		memo bool
	}{{"cold", false}, {"memo", true}} {
		// The explicit k level keeps the name three segments deep, same
		// as the Fig. 9 grid, so CI's bench-gate pattern addresses it.
		b.Run(fmt.Sprintf("%s/k=%d", cfg.name, k), func(b *testing.B) {
			s := New(tr, Config{Capacity: capacity, Workers: 1, Memo: cfg.memo})
			defer s.Close()
			var lease Lease
			// Warm: one full cycle through the tenant pool, so the memoized
			// run measures the steady state, not the first-touch misses.
			for _, loads := range pool {
				if err := s.PlaceInto(loads, k, &lease); err != nil {
					b.Fatal(err)
				}
				if err := s.Release(lease.ID); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.PlaceInto(pool[i%len(pool)], k, &lease); err != nil {
					b.Fatal(err)
				}
				if err := s.Release(lease.ID); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchedulerSteadyState isolates the single-stream admission
// cost (one tenant in flight at a time): the floor the batching and
// engine pool build on, and the configuration the 0-alloc claim is
// strictest in.
func BenchmarkSchedulerSteadyState(b *testing.B) {
	tr := topology.MustBT(2048)
	pool := benchTenants(tr, 256, 16)
	s := New(tr, Config{Capacity: 64, Workers: 1})
	defer s.Close()
	var lease Lease
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.PlaceInto(pool[i%len(pool)], 8, &lease); err != nil {
			b.Fatal(err)
		}
		if err := s.Release(lease.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepackRound measures one background re-packing round over a
// fragmented BT(2048) tenant population with migration budget 16.
func BenchmarkRepackRound(b *testing.B) {
	tr := topology.MustBT(2048)
	pool := benchTenants(tr, 128, 16)
	s := New(tr, Config{Capacity: 2, Workers: 1})
	defer s.Close()
	var ids []int64
	for _, loads := range pool {
		lease, err := s.Place(loads, 8)
		if err != nil {
			b.Fatal(err)
		}
		ids = append(ids, lease.ID)
	}
	for i, id := range ids {
		if i%2 == 0 {
			if err := s.Release(id); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.RepackNow(16); err != nil {
			b.Fatal(err)
		}
	}
}
