// Command soar-naasd runs the SOAR Network-as-a-Service control plane:
// an HTTP daemon that leases in-network aggregation switches to tenants
// on a shared tree network (the NaaS offering the paper's introduction
// sketches).
//
//	soar-naasd -addr 127.0.0.1:7070 -topo bt -n 256 -capacity 4
//
// Admission is served by the internal/sched scheduler: arrivals batch
// inside -window, solve on a pool of -workers incremental engines, and
// a background re-packer (-repack-every, -repack-moves) recovers the
// utilization that tenant departures fragment away.
//
// The control plane is crash-recoverable: with -checkpoint set, the
// daemon restores the lease ledger from the file on start, snapshots it
// every -checkpoint-every (atomic rename, never a torn file), on demand
// via POST /v1/checkpoint, and once more on graceful shutdown (SIGINT
// or SIGTERM).
//
// The daemon is observable in production terms: GET /metrics serves a
// Prometheus text scrape of every subsystem (admissions, batching,
// solve and memo behavior, re-packing, checkpoints, cluster runs),
// GET /v1/trace dumps the newest per-stage spans from the in-memory
// ring, and -debug-addr starts a second listener serving
// net/http/pprof — kept off the tenant-facing address so profiling
// endpoints are never exposed by accident. Degraded cluster runs
// (transport faults answered by the local fallback solve) are logged
// and summarized in /v1/stats.
//
// API (JSON):
//
//	POST   /v1/tenants    {"load": [...], "k": 4} → lease
//	GET    /v1/tenants/{id}
//	DELETE /v1/tenants/{id}
//	GET    /v1/stats
//	GET    /v1/residual
//	GET    /v1/checkpoint  (octet-stream snapshot)
//	POST   /v1/checkpoint  (persist to -checkpoint path)
//	POST   /v1/cluster     {"id": 7} → loopback cluster replay of a lease
//	GET    /v1/trace?n=64  (newest spans, JSON)
//	GET    /metrics        (Prometheus text exposition)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"soar/internal/naas"
	"soar/internal/sched"
	"soar/internal/topology"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	topo := flag.String("topo", "bt", "topology: bt or sf")
	topoFile := flag.String("topo-file", "", "load the network from a JSON file (overrides -topo; see topology.Encode)")
	n := flag.Int("n", 256, "network size")
	capacity := flag.Int("capacity", 4, "per-switch aggregation capacity (0 = unlimited)")
	seed := flag.Int64("seed", 1, "seed for random topologies")
	workers := flag.Int("workers", 0, "scheduler engine-pool size (0 = GOMAXPROCS)")
	window := flag.Duration("window", 200*time.Microsecond, "admission batching window")
	repackEvery := flag.Duration("repack-every", time.Second, "background re-packing period (0 = off)")
	repackMoves := flag.Int("repack-moves", 8, "migration budget per re-packing round")
	ckptPath := flag.String("checkpoint", "", "checkpoint file: restored on start if present, written periodically, on POST /v1/checkpoint and on shutdown (empty = off)")
	ckptEvery := flag.Duration("checkpoint-every", 30*time.Second, "periodic checkpoint interval (0 = only on demand and shutdown)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this second address (empty = off; keep it private)")
	flag.Parse()

	var tr *topology.Tree
	switch {
	case *topoFile != "":
		f, err := os.Open(*topoFile)
		if err != nil {
			log.Fatal(err)
		}
		tr, err = topology.Decode(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	case *topo == "bt":
		t, err := topology.BT(*n)
		if err != nil {
			log.Fatal(err)
		}
		tr = t
	case *topo == "sf":
		tr = topology.ScaleFree(*n, rand.New(rand.NewSource(*seed)))
	default:
		log.Fatalf("unknown -topo %q", *topo)
	}

	svc := naas.NewServiceWith(tr, sched.Config{
		Capacity: *capacity,
		Workers:  *workers,
		Window:   *window,
		Repack:   sched.RepackConfig{Every: *repackEvery, MaxMoves: *repackMoves},
	})
	defer svc.Close()
	svc.SetLogf(log.Printf) // surface degraded cluster runs in the daemon log

	// Crash recovery: restore the control plane from the last checkpoint
	// before any traffic is served (Restore requires a quiescent
	// scheduler), then keep the file fresh — periodically, on demand via
	// POST /v1/checkpoint, and on shutdown.
	if *ckptPath != "" {
		if err := restoreCheckpoint(svc, *ckptPath); err != nil {
			log.Fatalf("soar-naasd: restore %s: %v", *ckptPath, err)
		}
		svc.SetCheckpointSaver(func() (string, int64, error) {
			size, err := saveCheckpoint(svc, *ckptPath)
			return *ckptPath, size, err
		})
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Profiling lives on its own listener so an operator can bind it to
	// localhost while tenants reach the control plane on a shared
	// address; it dies with the process, no graceful shutdown needed.
	if *debugAddr != "" {
		go func() {
			dsrv := &http.Server{
				Addr:              *debugAddr,
				Handler:           debugMux(),
				ReadHeaderTimeout: 5 * time.Second,
			}
			log.Printf("soar-naasd: pprof on http://%s/debug/pprof/", *debugAddr)
			if err := dsrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("soar-naasd: debug server: %v", err)
			}
		}()
	}

	// SIGTERM is how process supervisors (systemd, Kubernetes) stop a
	// daemon; catching only os.Interrupt used to turn every supervised
	// stop into a crash that lost the final checkpoint.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()
	if *ckptPath != "" && *ckptEvery > 0 {
		go func() {
			tick := time.NewTicker(*ckptEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if _, err := saveCheckpoint(svc, *ckptPath); err != nil {
						log.Printf("soar-naasd: periodic checkpoint: %v", err)
					}
				}
			}
		}()
	}

	fmt.Printf("soar-naasd: %d switches (%s), capacity %d, listening on %s (metrics at /metrics)\n",
		tr.N(), *topo, *capacity, *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// The listener has drained: no admission can race the final snapshot
	// into staleness that matters. Checkpoint before Close.
	if *ckptPath != "" {
		if size, err := saveCheckpoint(svc, *ckptPath); err != nil {
			log.Printf("soar-naasd: shutdown checkpoint: %v", err)
		} else {
			log.Printf("soar-naasd: checkpointed %d bytes to %s", size, *ckptPath)
		}
	}
}

// debugMux routes the standard pprof surface explicitly rather than
// leaning on DefaultServeMux, so nothing else the process imports can
// sneak handlers onto the debug listener.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// restoreCheckpoint replays path into svc; a missing file is a fresh
// start, not an error.
func restoreCheckpoint(svc *naas.Service, path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	if err := svc.Restore(f); err != nil {
		return err
	}
	log.Printf("soar-naasd: restored %d tenants from %s", svc.Snapshot().Tenants, path)
	return nil
}

// ckptMu serializes savers: the periodic ticker, POST /v1/checkpoint
// and the shutdown save all share one temp file.
var ckptMu sync.Mutex //soar:critical guards the checkpoint temp file

// saveCheckpoint writes a checkpoint to path atomically: a crash while
// writing leaves the previous checkpoint intact, never a torn file.
func saveCheckpoint(svc *naas.Service, path string) (int64, error) {
	ckptMu.Lock()
	defer ckptMu.Unlock()
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	if err := svc.Checkpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	size, err := f.Seek(0, io.SeekCurrent)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return size, nil
}
