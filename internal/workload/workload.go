// Package workload implements the online multiple-workload setting of the
// SOAR paper's Sec. 5.2.
//
// Workloads L_0, L_1, ... arrive one at a time; the aggregation switches
// for workload L_t must be fixed before L_{t+1} is seen. Every switch s
// has an aggregation capacity a(s) bounding the number of workloads it
// can aggregate for; a_t(s) is the residual capacity before workload t,
// and the availability set for workload t is Λ_t = {s : a_t(s) > 0}.
// Whichever strategy is used picks at most k switches from Λ_t, and the
// chosen switches have their residual capacity decremented.
//
// Capacity bookkeeping is shared with the serving layer: an Allocator
// embeds a sched.Ledger (the same type the concurrent scheduler charges
// leases against), and NewSchedulerBacked routes every arrival through
// a live sched.Scheduler so online experiments can measure the
// production admission path instead of a private solver.
package workload

import (
	"fmt"
	"math/rand"

	"soar/internal/core"
	"soar/internal/load"
	"soar/internal/placement"
	"soar/internal/reduce"
	"soar/internal/sched"
	"soar/internal/topology"
)

// Allocator tracks residual aggregation capacities across an online
// sequence of workloads for one strategy.
type Allocator struct {
	t        *topology.Tree
	strategy placement.Strategy
	k        int
	ledger   *sched.Ledger
	// inc, when non-nil, is the stateful SOAR engine backing the
	// incremental fast path: Handle patches it with load deltas and
	// availability changes instead of re-running Gather from scratch.
	inc *core.Incremental
	// sched, when non-nil, admits every workload through the concurrent
	// placement scheduler instead of a private solver; lease is its
	// reusable admission destination.
	sched *sched.Scheduler
	lease sched.Lease
}

// NewAllocator creates an online allocator with uniform per-switch
// capacity. capacity ≤ 0 means unlimited.
func NewAllocator(t *topology.Tree, s placement.Strategy, k, capacity int) *Allocator {
	return &Allocator{t: t, strategy: s, k: k, ledger: sched.NewLedger(t.N(), capacity)}
}

// NewAllocatorCaps creates an online allocator over a heterogeneous
// deployment: caps[v] is the aggregation capacity a(v) of switch v, with
// 0 marking a switch that may never aggregate (entries are literal, as
// in sched.NewLedgerFromCaps). For uniform or unlimited capacity use
// NewAllocator; caps must be a full-length vector here.
func NewAllocatorCaps(t *topology.Tree, s placement.Strategy, k int, caps []int) *Allocator {
	if caps == nil {
		panic("workload: NewAllocatorCaps needs a capacity vector; use NewAllocator for uniform capacity")
	}
	if len(caps) != t.N() {
		panic(fmt.Sprintf("workload: caps has %d entries for %d switches", len(caps), t.N()))
	}
	return &Allocator{t: t, strategy: s, k: k, ledger: sched.NewLedgerFromCaps(caps)}
}

// NewIncrementalAllocator creates an online SOAR allocator backed by a
// stateful core.Incremental engine. Placements and φ values are exactly
// those of NewAllocator(t, core.Strategy{}, k, capacity): the engine's
// tables are bitwise identical to a from-scratch Gather. The difference
// is cost: between workloads only the switches whose load changed (or
// whose capacity ran out) have their v→root table paths recomputed, so
// sparse workload diffs cost O(h²·k²) per changed switch instead of a
// full O(n·h·k²) solve.
func NewIncrementalAllocator(t *topology.Tree, k, capacity int) *Allocator {
	a := NewAllocator(t, core.Strategy{}, k, capacity)
	a.inc = core.NewIncremental(t, make([]int, t.N()), a.ledger.Avail(), k)
	return a
}

// NewSchedulerBacked creates an allocator whose every Handle admits the
// workload through s — the concurrent serving path of internal/sched —
// so the Sec. 5.2 experiments exercise batching, the engine pool and
// commit-order conflict resolution instead of a private solver. Driven
// single-threaded it produces exactly the placements of
// NewAllocator(t, core.Strategy{}, k, ...) over the scheduler's own
// capacity configuration. The allocator never releases tenants
// (arrivals only, as in the paper); SetCapacity is unsupported.
func NewSchedulerBacked(s *sched.Scheduler, k int) *Allocator {
	return &Allocator{t: s.Tree(), strategy: core.Strategy{}, k: k, sched: s}
}

// SetCapacity overrides the residual capacity of one switch (0 makes it
// permanently unavailable); useful for heterogeneous deployments. It
// panics on a scheduler-backed allocator, whose ledger belongs to the
// scheduler.
func (a *Allocator) SetCapacity(v, c int) {
	if a.sched != nil {
		panic("workload: SetCapacity on a scheduler-backed allocator")
	}
	a.ledger.SetCapacity(v, c)
}

// Residual returns the residual capacity of switch v.
func (a *Allocator) Residual(v int) int {
	if a.sched != nil {
		return a.sched.Residual()[v]
	}
	return a.ledger.Residual(v)
}

// Available returns Λ_t as a boolean vector (a defensive copy).
func (a *Allocator) Available() []bool {
	if a.sched != nil {
		res := a.sched.Residual()
		avail := make([]bool, len(res))
		for v, r := range res {
			avail[v] = r > 0
		}
		return avail
	}
	return a.ledger.AvailCopy()
}

// Handle places aggregation switches for one arriving workload, charges
// their capacity, and returns the chosen blue set together with the
// workload's utilization φ.
func (a *Allocator) Handle(loads []int) (blue []bool, phi float64) {
	if len(loads) != a.t.N() {
		panic(fmt.Sprintf("workload: load has %d entries for %d switches", len(loads), a.t.N()))
	}
	switch {
	case a.sched != nil:
		// The lease's φ is the DP optimum for the returned blue set,
		// which equals reduce.Utilization exactly (the repo-wide
		// invariant); no need to re-simulate.
		blue = a.placeScheduler(loads)
		return blue, a.lease.Phi
	case a.inc != nil:
		blue = a.placeIncremental(loads)
	default:
		blue = a.strategy.Place(a.t, loads, a.ledger.AvailCopy(), a.k)
	}
	for v, b := range blue {
		if b {
			if a.ledger.Residual(v) <= 0 {
				panic(fmt.Sprintf("workload: strategy %q picked exhausted switch %d", a.strategy.Name(), v))
			}
			a.ledger.Charge(v)
		}
	}
	return blue, reduce.Utilization(a.t, loads, blue)
}

// placeIncremental is the incremental fast path: per-workload load
// deltas become a batched SetLoads sweep and capacity exhaustions
// become SetAvails updates, each dirtying only the changed switches'
// root paths before one coalesced re-sweep inside Solve. A budget
// change (HandleWithBudget / RunPolicy) rebuilds the engine, since the
// DP tables are sized by k.
func (a *Allocator) placeIncremental(loads []int) []bool {
	if a.inc.K() != a.k {
		a.inc = core.NewIncremental(a.t, loads, a.ledger.Avail(), a.k)
	} else {
		a.inc.SetLoads(loads)
		a.inc.SetAvails(a.ledger.Avail())
	}
	return a.inc.Solve().Blue
}

// placeScheduler admits the workload through the scheduler, which does
// its own charging, and converts the lease to the strategy interface's
// blue-vector form.
func (a *Allocator) placeScheduler(loads []int) []bool {
	if err := a.sched.PlaceInto(loads, a.k, &a.lease); err != nil {
		panic(fmt.Sprintf("workload: scheduler admission failed: %v", err))
	}
	blue := make([]bool, a.t.N())
	for _, v := range a.lease.Blue {
		blue[v] = true
	}
	return blue
}

// Sequence generates the paper's online workload arrival process: each
// workload is drawn from the uniform distribution or the power-law
// distribution with probability 1/2 each, loads on leaves only.
type Sequence struct {
	t       *topology.Tree
	uniform load.Distribution
	power   load.Distribution
	rng     *rand.Rand
}

// NewSequence builds the paper's 50/50 uniform/power-law arrival process.
func NewSequence(t *topology.Tree, rng *rand.Rand) *Sequence {
	return &Sequence{t: t, uniform: load.PaperUniform(), power: load.PaperPowerLaw(), rng: rng}
}

// Next draws the next workload's load vector.
func (s *Sequence) Next() []int {
	d := s.uniform
	if s.rng.Intn(2) == 1 {
		d = s.power
	}
	return load.Generate(s.t, d, load.LeavesOnly, s.rng)
}

// RunResult summarizes an online run.
type RunResult struct {
	// PerWorkload[t] is φ of workload t under the strategy's placements.
	PerWorkload []float64
	// AllRed[t] is φ of workload t with no aggregation, the normalizer.
	AllRed []float64
	// CumulativeRatio[t] = Σ_{i≤t} PerWorkload / Σ_{i≤t} AllRed, the
	// quantity the paper's Fig. 7 plots as "network utilization".
	CumulativeRatio []float64
}

// Run drives an allocator over a fixed sequence of workloads.
func Run(a *Allocator, workloads [][]int) RunResult {
	res := RunResult{
		PerWorkload:     make([]float64, len(workloads)),
		AllRed:          make([]float64, len(workloads)),
		CumulativeRatio: make([]float64, len(workloads)),
	}
	allRed := make([]bool, a.t.N())
	var sumPhi, sumRed float64
	for i, l := range workloads {
		_, phi := a.Handle(l)
		res.PerWorkload[i] = phi
		res.AllRed[i] = phiAllRed(a, l, allRed)
		sumPhi += phi
		sumRed += res.AllRed[i]
		res.CumulativeRatio[i] = sumPhi / sumRed
	}
	return res
}

func phiAllRed(a *Allocator, l []int, allRed []bool) float64 {
	return reduce.Utilization(a.t, l, allRed)
}
