package topology

import "math"

// RateScheme assigns a rate ω to every edge of a tree, identified by its
// lower endpoint. The paper's evaluation uses three schemes: constant,
// linearly increasing toward the root, and exponentially increasing
// toward the root (Sec. 5).
type RateScheme func(t *Tree, v int) float64

// RatesConstant assigns rate c to every edge.
func RatesConstant(c float64) RateScheme {
	return func(*Tree, int) float64 { return c }
}

// RatesLinear increases rates by 1 per level from the leaf level toward
// the root: an edge whose lower endpoint is at hop distance D from the
// root gets rate h(T)−D+1, so the deepest edges have rate 1 and the
// (r, d) edge has rate h(T)+1.
func RatesLinear() RateScheme {
	return func(t *Tree, v int) float64 {
		return float64(t.Height()-(t.Depth(v)-1)) + 1
	}
}

// RatesExponential doubles rates per level from the leaf level toward
// the root: an edge whose lower endpoint is at hop distance D from the
// root gets rate 2^(h(T)−D), so the deepest edges have rate 1 and the
// (r, d) edge has rate 2^h(T).
func RatesExponential() RateScheme {
	return func(t *Tree, v int) float64 {
		return math.Exp2(float64(t.Height() - (t.Depth(v) - 1)))
	}
}

// ApplyRates returns a copy of t whose edge rates are given by scheme.
// The input tree is not modified.
func ApplyRates(t *Tree, scheme RateScheme) *Tree {
	omega := make([]float64, t.N())
	for v := 0; v < t.N(); v++ {
		omega[v] = scheme(t, v)
	}
	return MustNew(t.parent, omega)
}
