package main

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"soar/internal/chaos"
	"soar/internal/cluster"
	"soar/internal/core"
	"soar/internal/load"
	"soar/internal/reduce"
	"soar/internal/topology"
)

// runCluster deploys SOAR over a loopback TCP mesh and cross-checks the
// distributed result against the serial solver. The -chaos flags turn
// the mesh hostile: injected dial failures, mid-frame cuts, connection
// resets and delays, absorbed by bounded retries and — when a run still
// cannot complete — a local fallback solve flagged as degraded.
func runCluster(args []string) error {
	fs := newFlagSet("cluster")
	n := fs.Int("n", 64, "BT network size (including destination, power of two)")
	k := fs.Int("k", 8, "aggregation switch budget")
	seed := fs.Int64("seed", 1, "random seed")
	timeout := fs.Duration("timeout", 30*time.Second, "overall deadline")
	faults := fs.Float64("chaos", 0, "fault probability per injection point (0 = clean transport)")
	delay := fs.Float64("chaos-delay", 0, "probability of an injected delay per I/O")
	retries := fs.Int("retries", 4, "bounded retry attempts under chaos")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := topology.BT(*n)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	loads := load.Generate(tr, load.PaperPowerLaw(), load.LeavesOnly, rng)

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	var inj *chaos.Injector
	opts := &cluster.Options{Retry: cluster.RetryPolicy{Attempts: *retries}}
	if *faults > 0 || *delay > 0 {
		inj = chaos.New(chaos.Config{
			Seed:     *seed,
			DialFail: *faults,
			Cut:      *faults,
			Reset:    *faults,
			Delay:    *delay,
			MaxDelay: 2 * time.Millisecond,
		})
		opts.Dial = inj.Dial
		opts.WrapListener = inj.WrapListener
	}
	start := time.Now()
	res, err := cluster.RunOrFallback(ctx, tr, loads, nil, *k, opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	serial := core.Solve(tr, loads, nil, *k)
	allRed := reduce.Utilization(tr, loads, make([]bool, tr.N()))
	fmt.Printf("cluster: %d switches, %d TCP links, k=%d, elapsed %v\n",
		tr.N(), tr.N(), *k, elapsed.Round(time.Millisecond))
	fmt.Printf("  optimal φ (from root's table) : %.2f\n", res.Cost)
	fmt.Printf("  measured φ (distributed run)  : %.2f\n", res.ReducePhi)
	fmt.Printf("  serial solver φ               : %.2f\n", serial.Cost)
	fmt.Printf("  vs all-red                    : %.4f\n", res.Cost/allRed)
	fmt.Printf("  messages reaching destination : %d\n", res.ReduceMessages)
	if inj != nil {
		st := inj.Stats()
		fmt.Printf("  chaos: %d dials (%d failed), %d cuts, %d resets, %d delays\n",
			st.Dials, st.DialsFailed, st.Cuts, st.Resets, st.Delays)
	}
	if res.Degraded {
		fmt.Printf("  DEGRADED: distributed run failed after %d attempts (%v); result from local fallback solve\n",
			res.Attempts, res.Cause)
	} else if res.Attempts > 1 {
		fmt.Printf("  recovered after %d attempts\n", res.Attempts)
	}
	if res.Cost != serial.Cost {
		return fmt.Errorf("distributed cost %v disagrees with serial %v", res.Cost, serial.Cost)
	}
	fmt.Println("  distributed == serial ✓")
	return nil
}
