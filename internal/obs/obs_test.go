package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("soar_test_total", "help", nil)
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("soar_test_gauge", "help", nil)
	g.Set(3.5)
	g.Add(-1.25)
	if got := g.Value(); got != 2.25 {
		t.Fatalf("gauge = %v, want 2.25", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("soar_test_seconds", "help", nil, []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	// Bucket assignment: ≤1 gets 0.5 and 1; ≤2 gets 1.5; ≤4 gets 3;
	// +Inf gets 100.
	want := []uint64{2, 1, 1, 1}
	for i := range want {
		if got := h.counts[i].Load(); got != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, got, want[i])
		}
	}
	if got := h.Count(); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
	if got := h.Sum(); got != 106 {
		t.Errorf("sum = %v, want 106", got)
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("soar_test_total", "h", nil)
	g := r.Gauge("soar_test_gauge", "h", nil)
	h := r.Histogram("soar_test_seconds", "h", nil, []float64{1, 10})
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j % 20))
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*per {
		t.Errorf("counter = %d, want %d", got, goroutines*per)
	}
	if got := g.Value(); got != goroutines*per {
		t.Errorf("gauge = %v, want %d", got, goroutines*per)
	}
	if got := h.Count(); got != goroutines*per {
		t.Errorf("histogram count = %d, want %d", got, goroutines*per)
	}
}

func TestRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"bad metric name", func(r *Registry) { r.Counter("1bad", "", nil) }},
		{"bad label name", func(r *Registry) { r.Counter("ok_total", "", Labels{"1bad": "v"}) }},
		{"reserved le label", func(r *Registry) { r.Histogram("ok_seconds", "", Labels{"le": "x"}, []float64{1}) }},
		{"duplicate registration", func(r *Registry) {
			r.Counter("dup_total", "", Labels{"a": "b"})
			r.Counter("dup_total", "", Labels{"a": "b"})
		}},
		{"type conflict", func(r *Registry) {
			r.Counter("both", "", nil)
			r.Gauge("both", "", Labels{"a": "b"})
		}},
		{"empty histogram bounds", func(r *Registry) { r.Histogram("h_seconds", "", nil, nil) }},
		{"non-increasing bounds", func(r *Registry) { r.Histogram("h_seconds", "", nil, []float64{2, 1}) }},
		{"infinite bound", func(r *Registry) { r.Histogram("h_seconds", "", nil, []float64{1, math.Inf(1)}) }},
		{"nil func", func(r *Registry) { r.GaugeFunc("g", "", nil, nil) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

func TestDifferentLabelsSameFamily(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("soar_multi_total", "h", Labels{"dir": "send"})
	b := r.Counter("soar_multi_total", "h", Labels{"dir": "recv"})
	a.Inc()
	b.Add(2)
	if a.Value() != 1 || b.Value() != 2 {
		t.Fatalf("labeled counters share state: %d, %d", a.Value(), b.Value())
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	for _, bounds := range [][]float64{LatencyBuckets(), SizeBuckets()} {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("default buckets not increasing: %v", bounds)
			}
		}
	}
}
