package topology

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(50)
		parent := make([]int, n)
		omega := make([]float64, n)
		parent[0] = NoParent
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
		}
		for v := 0; v < n; v++ {
			omega[v] = 0.25 + rng.Float64()*4
		}
		orig := MustNew(parent, omega)

		var buf bytes.Buffer
		if err := orig.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.N() != orig.N() || got.Root() != orig.Root() {
			t.Fatalf("shape changed: %d/%d vs %d/%d", got.N(), got.Root(), orig.N(), orig.Root())
		}
		for v := 0; v < n; v++ {
			if got.Parent(v) != orig.Parent(v) {
				t.Fatalf("parent of %d changed", v)
			}
			if d := got.Rho(v) - orig.Rho(v); d > 1e-12 || d < -1e-12 {
				t.Fatalf("rho of %d changed: %v vs %v", v, got.Rho(v), orig.Rho(v))
			}
		}
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"not json":       "hello",
		"unknown fields": `{"parents":[-1],"omega":[1],"extra":1}`,
		"two roots":      `{"parents":[-1,-1],"omega":[1,1]}`,
		"cycle":          `{"parents":[-1,2,1],"omega":[1,1,1]}`,
		"bad rate":       `{"parents":[-1],"omega":[0]}`,
		"length skew":    `{"parents":[-1,0],"omega":[1]}`,
	}
	for name, doc := range cases {
		if _, err := Decode(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: Decode accepted %q", name, doc)
		}
	}
}
