package viz

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func render(t *testing.T, series []Series, opt Options) string {
	t.Helper()
	var sb strings.Builder
	if err := Chart(&sb, series, opt); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestChartBasics(t *testing.T) {
	out := render(t, []Series{
		{Label: "down", X: []float64{0, 1, 2, 3}, Y: []float64{3, 2, 1, 0}},
		{Label: "flat", X: []float64{0, 1, 2, 3}, Y: []float64{1, 1, 1, 1}},
	}, Options{Title: "demo", XLabel: "k", Width: 40, Height: 10})
	for _, want := range []string{"demo", "* down", "o flat", "(k)", "|"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	// Axis labels carry the y extremes.
	if !strings.Contains(out, "3") || !strings.Contains(out, "0") {
		t.Fatalf("missing y extremes:\n%s", out)
	}
}

func TestChartMonotoneSeriesSlopesCorrectly(t *testing.T) {
	// For a strictly decreasing series the first column's marker must sit
	// above the last column's marker.
	out := render(t, []Series{
		{Label: "s", X: []float64{0, 1, 2, 3, 4}, Y: []float64{4, 3, 2, 1, 0}},
	}, Options{Width: 30, Height: 8})
	lines := strings.Split(out, "\n")
	firstRow, lastRow := -1, -1
	for r, line := range lines {
		idx := strings.IndexByte(line, '*')
		if idx < 0 {
			continue
		}
		if firstRow == -1 {
			firstRow = r
		}
		lastRow = r
	}
	if firstRow == -1 || firstRow == lastRow {
		t.Fatalf("series not rendered with slope:\n%s", out)
	}
}

func TestChartSinglePoint(t *testing.T) {
	out := render(t, []Series{{Label: "dot", X: []float64{5}, Y: []float64{2}}},
		Options{Width: 20, Height: 5})
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not drawn:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	out := render(t, nil, Options{})
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty chart output %q", out)
	}
	out = render(t, []Series{{Label: "nan", X: []float64{1}, Y: []float64{math.NaN()}}}, Options{})
	if !strings.Contains(out, "no data") {
		t.Fatalf("all-NaN chart output %q", out)
	}
}

func TestChartSkipsNaNSegments(t *testing.T) {
	out := render(t, []Series{
		{Label: "gap", X: []float64{0, 1, 2}, Y: []float64{1, math.NaN(), 3}},
	}, Options{Width: 20, Height: 5})
	if strings.Contains(out, "no data") {
		t.Fatalf("chart dropped everything:\n%s", out)
	}
}

func TestChartFixedRange(t *testing.T) {
	out := render(t, []Series{{Label: "s", X: []float64{0, 1}, Y: []float64{0.4, 0.6}}},
		Options{YMin: 0, YMax: 1, Width: 20, Height: 5})
	if !strings.Contains(out, "1") {
		t.Fatalf("fixed y max missing:\n%s", out)
	}
}

func TestQuickChartNeverPanics(t *testing.T) {
	// Robustness: arbitrary finite inputs must render without panicking
	// and keep every marker inside the grid.
	f := func(xs, ys []float64, w, h uint8) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		xs, ys = xs[:n], ys[:n]
		var sb strings.Builder
		err := Chart(&sb, []Series{{Label: "q", X: xs, Y: ys}},
			Options{Width: int(w%80) + 2, Height: int(h%24) + 2})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLegendCyclesMarkers(t *testing.T) {
	series := make([]Series, 10)
	for i := range series {
		series[i] = Series{Label: "s", X: []float64{0, 1}, Y: []float64{float64(i), float64(i)}}
	}
	out := render(t, series, Options{Width: 20, Height: 12})
	if !strings.Contains(out, "* s") || !strings.Contains(out, "# s") {
		t.Fatalf("legend missing markers:\n%s", out)
	}
}
