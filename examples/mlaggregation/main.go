// Distributed ML gradient aggregation (the paper's PS use case,
// Sec. 5.3): workers push sparse gradient updates (10K features, dropout
// 0.5) toward a parameter server; aggregation switches sum gradients
// in-network. Because a sum of sparse gradients stays bounded by the
// feature space, PS message sizes barely grow — so byte savings track
// utilization savings closely, unlike word count.
//
//	go run ./examples/mlaggregation
package main

import (
	"fmt"
	"log"
	"math/rand"

	"soar/internal/core"
	"soar/internal/load"
	"soar/internal/paramserver"
	"soar/internal/reduce"
	"soar/internal/topology"
)

func main() {
	t, err := topology.BT(64)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	loads := load.Generate(t, load.PaperUniform(), load.LeavesOnly, rng)
	workers := load.Total(loads)

	agg := paramserver.NewAggregator(paramserver.DefaultConfig(), 1)

	allRed := make([]bool, t.N())
	allBlue := make([]bool, t.N())
	for i := range allBlue {
		allBlue[i] = true
	}
	utilRed := reduce.Utilization(t, loads, allRed)
	bytesRed := reduce.ByteComplexity(t, loads, allRed, agg).TotalBytes
	bytesBlue := reduce.ByteComplexity(t, loads, allBlue, agg).TotalBytes

	fmt.Printf("gradient aggregation: %d workers, 10K features, dropout 0.5\n", workers)
	fmt.Printf("all-red bytes per training step:  %6.1f MB\n", mb(bytesRed))
	fmt.Printf("all-blue bytes per training step: %6.1f MB\n\n", mb(bytesBlue))

	fmt.Printf("%-4s %12s %12s %16s\n", "k", "util ratio", "byte ratio", "MB per step")
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		res := core.Solve(t, loads, nil, k)
		b := reduce.ByteComplexity(t, loads, res.Blue, agg).TotalBytes
		fmt.Printf("%-4d %12.3f %12.3f %16.1f\n",
			k, res.Cost/utilRed, float64(b)/float64(bytesRed), mb(b))
	}
	fmt.Println("\nPS byte ratios stay close to the utilization ratios (paper Fig. 8b):")
	fmt.Println("gradient messages do not shrink much when merged, so the win comes")
	fmt.Println("entirely from sending fewer of them — exactly what SOAR minimizes.")
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }
