package sched

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"soar/internal/load"
	"soar/internal/reduce"
	"soar/internal/topology"
)

// fragment fills a capacity-1 tree with identical tenants (later ones
// are pushed onto ever-worse switches), then releases the early, well-
// placed half — the classic departure-fragmentation state the re-packer
// exists for. Returns the surviving tenant ids.
func fragment(t *testing.T, s *Scheduler, tr *topology.Tree, loads []int, tenants int) []int64 {
	t.Helper()
	ids := make([]int64, 0, tenants)
	for i := 0; i < tenants; i++ {
		lease, err := s.Place(loads, 2)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, lease.ID)
	}
	for _, id := range ids[:tenants/2] {
		if err := s.Release(id); err != nil {
			t.Fatal(err)
		}
	}
	return ids[tenants/2:]
}

func TestRepackRecoversPhi(t *testing.T) {
	tr := topology.MustBT(64)
	rng := rand.New(rand.NewSource(3))
	loads := load.Generate(tr, load.PaperPowerLaw(), load.LeavesOnly, rng)
	s := New(tr, Config{Capacity: 1, Workers: 2})
	defer s.Close()

	live := fragment(t, s, tr, loads, 8)
	var before float64
	for _, id := range live {
		lease, err := s.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		before += lease.Phi
	}

	moved, recovered, err := s.RepackNow(len(live))
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 || recovered <= 0 {
		t.Fatalf("re-pack moved %d tenants, recovered %v; fragmentation should be repairable", moved, recovered)
	}

	// Aggregate Φ dropped by exactly the reported amount, and every
	// lease's recorded φ still matches a from-scratch simulation of its
	// (possibly migrated) placement.
	var after float64
	used := make([]int, tr.N())
	for _, id := range live {
		lease, err := s.Lookup(id)
		if err != nil {
			t.Fatal(err)
		}
		after += lease.Phi
		blue := make([]bool, tr.N())
		for _, v := range lease.Blue {
			used[v]++
			blue[v] = true
		}
		if phi := reduce.Utilization(tr, lease.Load, blue); phi != lease.Phi {
			t.Fatalf("lease %d: recorded φ=%v but placement costs %v", id, lease.Phi, phi)
		}
	}
	if diff := before - after; diff != recovered {
		t.Fatalf("aggregate Φ dropped by %v, re-packer reported %v", diff, recovered)
	}
	// Ledger conservation after migrations.
	for v, res := range s.Residual() {
		if res != 1-used[v] {
			t.Fatalf("switch %d: residual %d with %d slots held", v, res, used[v])
		}
	}
	m := s.Metrics()
	if m.RepackRounds != 1 || m.RepackMoves != uint64(moved) || m.PhiRecovered != recovered {
		t.Fatalf("repack metrics %+v", m)
	}
}

func TestRepackHonorsMigrationBudget(t *testing.T) {
	tr := topology.MustBT(64)
	rng := rand.New(rand.NewSource(4))
	loads := load.Generate(tr, load.PaperPowerLaw(), load.LeavesOnly, rng)
	s := New(tr, Config{Capacity: 1, Workers: 2})
	defer s.Close()
	fragment(t, s, tr, loads, 8)

	moved, _, err := s.RepackNow(1)
	if err != nil {
		t.Fatal(err)
	}
	if moved > 1 {
		t.Fatalf("budget 1 round moved %d tenants", moved)
	}
}

func TestRepackNoopWhenOptimal(t *testing.T) {
	// Fresh tenants with ample capacity are already optimally placed: a
	// round must move nothing and recover zero.
	tr := topology.MustBT(64)
	rng := rand.New(rand.NewSource(5))
	s := New(tr, Config{Capacity: 8, Workers: 2})
	defer s.Close()
	for i := 0; i < 4; i++ {
		if _, err := s.Place(load.GenerateSparse(tr, load.PaperUniform(), 6, rng), 4); err != nil {
			t.Fatal(err)
		}
	}
	moved, recovered, err := s.RepackNow(8)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 || recovered != 0 {
		t.Fatalf("optimal state re-packed: moved %d recovered %v", moved, recovered)
	}
}

func TestRepackBackgroundLoop(t *testing.T) {
	tr := topology.MustBT(64)
	rng := rand.New(rand.NewSource(6))
	loads := load.Generate(tr, load.PaperPowerLaw(), load.LeavesOnly, rng)
	s := New(tr, Config{
		Capacity: 1,
		Workers:  2,
		Repack:   RepackConfig{Every: 2 * time.Millisecond, MaxMoves: 4},
	})
	defer s.Close()
	live := fragment(t, s, tr, loads, 8)

	deadline := time.Now().Add(2 * time.Second)
	for {
		m := s.Metrics()
		if m.RepackRounds > 0 && m.PhiRecovered > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background re-packer never recovered Φ: %+v", m)
		}
		time.Sleep(time.Millisecond)
	}
	// The service keeps serving during and after background rounds.
	lease, err := s.Place(loads, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Release(lease.ID); err != nil {
		t.Fatal(err)
	}
	for _, id := range live {
		if _, err := s.Lookup(id); err != nil {
			t.Fatalf("tenant %d lost by re-packer: %v", id, err)
		}
	}
}

func TestRepackDeterministicGivenState(t *testing.T) {
	// Two schedulers brought to the same state re-pack identically —
	// rounds are ordered by (ratio, id), not map iteration order.
	run := func() (int, float64, [][]int) {
		tr := topology.MustBT(64)
		rng := rand.New(rand.NewSource(7))
		loads := load.Generate(tr, load.PaperPowerLaw(), load.LeavesOnly, rng)
		s := New(tr, Config{Capacity: 1, Workers: 2})
		defer s.Close()
		live := fragment(t, s, tr, loads, 8)
		moved, recovered, err := s.RepackNow(2)
		if err != nil {
			t.Fatal(err)
		}
		blues := make([][]int, 0, len(live))
		for _, id := range live {
			lease, err := s.Lookup(id)
			if err != nil {
				t.Fatal(err)
			}
			blues = append(blues, lease.Blue)
		}
		return moved, recovered, blues
	}
	m1, r1, b1 := run()
	m2, r2, b2 := run()
	if m1 != m2 || r1 != r2 || !reflect.DeepEqual(b1, b2) {
		t.Fatalf("re-packing diverged: (%d, %v) vs (%d, %v)", m1, r1, m2, r2)
	}
}
