package workload

import (
	"math/rand"
	"testing"

	"soar/internal/core"
	"soar/internal/load"
	"soar/internal/reduce"
	"soar/internal/topology"
)

func TestFixedBudgetPolicy(t *testing.T) {
	p := FixedBudget(7)
	if p([]int{1, 2, 3}) != 7 || p(nil) != 7 {
		t.Fatal("FixedBudget should ignore the workload")
	}
}

func TestLoadProportionalBudget(t *testing.T) {
	p := LoadProportionalBudget(10, 1, 8)
	cases := []struct {
		total int
		want  int
	}{
		{0, 1},   // clamped to min
		{35, 3},  // 35/10 = 3
		{200, 8}, // clamped to max
	}
	for _, tc := range cases {
		loads := []int{tc.total}
		if got := p(loads); got != tc.want {
			t.Fatalf("total %d: k=%d, want %d", tc.total, got, tc.want)
		}
	}
}

func TestLoadProportionalValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for serversPerSwitch 0")
		}
	}()
	LoadProportionalBudget(0, 1, 4)
}

func TestHandleWithBudgetRestoresK(t *testing.T) {
	tr := topology.CompleteBinary(3)
	a := NewAllocator(tr, core.Strategy{}, 2, 0)
	loads := []int{0, 0, 0, 2, 6, 5, 4}
	blue, phi := a.HandleWithBudget(loads, 4)
	if got := reduce.CountBlue(blue); got > 4 {
		t.Fatalf("override placed %d > 4", got)
	}
	if phi != 11 { // the k=4 optimum of the paper's Fig. 3d
		t.Fatalf("override φ=%v, want 11", phi)
	}
	// The allocator's own budget is untouched afterwards.
	_, phi2 := a.Handle(loads)
	if phi2 != 20 { // back to k=2
		t.Fatalf("post-override φ=%v, want the k=2 optimum 20", phi2)
	}
}

func TestRunPolicyRespectsCapacity(t *testing.T) {
	tr := topology.MustBT(64)
	rng := rand.New(rand.NewSource(21))
	seq := NewSequence(tr, rng)
	workloads := make([][]int, 20)
	for i := range workloads {
		workloads[i] = seq.Next()
	}
	a := NewAllocator(tr, core.Strategy{}, 0, 2)
	res := RunPolicy(a, workloads, LoadProportionalBudget(20, 1, 12))
	for v := 0; v < tr.N(); v++ {
		if a.Residual(v) < 0 {
			t.Fatalf("switch %d over capacity", v)
		}
	}
	for i, r := range res.CumulativeRatio {
		if r <= 0 || r > 1+1e-9 {
			t.Fatalf("ratio[%d]=%v out of range", i, r)
		}
	}
}

func TestProportionalBeatsFixedOnMixedArrivals(t *testing.T) {
	// The Sec. 8 open question, measured: with the same total switch
	// capacity, spending budget where the load is should do at least as
	// well as a uniform budget on a 50/50 uniform/power-law arrival mix.
	tr := topology.MustBT(128)
	rng := rand.New(rand.NewSource(33))
	seq := NewSequence(tr, rng)
	workloads := make([][]int, 30)
	for i := range workloads {
		workloads[i] = seq.Next()
	}
	// Calibrate the proportional policy to the same mean budget as fixed.
	var totalServers int64
	for _, w := range workloads {
		totalServers += load.Total(w)
	}
	meanServers := int(totalServers) / len(workloads)
	const fixedK = 8
	perSwitch := meanServers / fixedK
	if perSwitch < 1 {
		perSwitch = 1
	}

	fixed := RunPolicy(NewAllocator(tr, core.Strategy{}, 0, 3), workloads, FixedBudget(fixedK))
	prop := RunPolicy(NewAllocator(tr, core.Strategy{}, 0, 3), workloads,
		LoadProportionalBudget(perSwitch, 1, 4*fixedK))
	f := fixed.CumulativeRatio[len(workloads)-1]
	p := prop.CumulativeRatio[len(workloads)-1]
	if p > f+0.03 {
		t.Fatalf("proportional budgets (%.3f) clearly worse than fixed (%.3f)", p, f)
	}
	t.Logf("final cumulative ratio: fixed=%.4f proportional=%.4f", f, p)
}
