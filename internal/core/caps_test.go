package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"soar/internal/placement"
	"soar/internal/reduce"
	"soar/internal/topology"
)

// randomCapsInstance decodes a seed into a well-formed heterogeneous
// φ-BIC instance: random recursive tree, random loads, and a capacity
// vector mixing forwarders (0), standard switches (1) and heavier
// multi-unit switches (up to maxC).
func randomCapsInstance(seed int64, maxN, maxK, maxC int) (*topology.Tree, []int, []int, int) {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(maxN)
	parent := make([]int, n)
	omega := make([]float64, n)
	parent[0] = topology.NoParent
	for v := 1; v < n; v++ {
		parent[v] = rng.Intn(v)
	}
	for v := 0; v < n; v++ {
		omega[v] = []float64{0.5, 1, 2, 4}[rng.Intn(4)]
	}
	t := topology.MustNew(parent, omega)
	loads := make([]int, n)
	caps := make([]int, n)
	for v := 0; v < n; v++ {
		loads[v] = rng.Intn(6)
		caps[v] = rng.Intn(maxC + 1)
	}
	return t, loads, caps, rng.Intn(maxK + 1)
}

// TestCapsZeroOneBitwiseIdentical pins the regression contract of the
// generalization: with a 0/1 capacity vector, the capacity engines
// produce exactly the uniform engines' tables (values, colors, caps) and
// placement — bit for bit, not within tolerance.
func TestCapsZeroOneBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(50)
		tr := topology.RandomRecursive(n, rng)
		loads := make([]int, n)
		avail := make([]bool, n)
		caps := make([]int, n)
		for v := 0; v < n; v++ {
			loads[v] = rng.Intn(6)
			avail[v] = rng.Intn(4) != 0
			if avail[v] {
				caps[v] = 1
			}
		}
		k := rng.Intn(8)
		if trial%5 == 0 {
			k = n + 1 // clamp-at-sum corner
		}
		legacy := Gather(tr, loads, avail, k)
		viaCaps := GatherCaps(tr, loads, caps, k)
		for v := 0; v < n; v++ {
			if legacy.Cap(v) != viaCaps.Cap(v) {
				t.Fatalf("trial %d: Cap(%d): legacy %d, caps %d", trial, v, legacy.Cap(v), viaCaps.Cap(v))
			}
			for l := 0; l <= tr.Depth(v); l++ {
				for i := 0; i <= k; i++ {
					if legacy.X(v, l, i) != viaCaps.X(v, l, i) {
						t.Fatalf("trial %d: X_%d(%d,%d): legacy %v, caps %v",
							trial, v, l, i, legacy.X(v, l, i), viaCaps.X(v, l, i))
					}
					if legacy.Blue(v, l, i) != viaCaps.Blue(v, l, i) {
						t.Fatalf("trial %d: Blue_%d(%d,%d) differs", trial, v, l, i)
					}
				}
			}
		}
		a := Solve(tr, loads, avail, k)
		b := SolveCaps(tr, loads, caps, k)
		if a.Cost != b.Cost {
			t.Fatalf("trial %d: Solve φ=%v, SolveCaps φ=%v", trial, a.Cost, b.Cost)
		}
		for v := range a.Blue {
			if a.Blue[v] != b.Blue[v] {
				t.Fatalf("trial %d: placements differ at switch %d", trial, v)
			}
		}
	}
}

// TestCapsNilIsUniform: caps == nil must mean "capacity 1 everywhere",
// i.e. exactly Solve with every switch available.
func TestCapsNilIsUniform(t *testing.T) {
	tr, loads, _, k := randomInstance(3, 40, 6)
	a := Solve(tr, loads, nil, k)
	b := SolveCaps(tr, loads, nil, k)
	if a.Cost != b.Cost {
		t.Fatalf("Solve φ=%v, SolveCaps(nil) φ=%v", a.Cost, b.Cost)
	}
	for v := range a.Blue {
		if a.Blue[v] != b.Blue[v] {
			t.Fatalf("placements differ at switch %d", v)
		}
	}
}

// TestAllEnginesAgreeCaps drives every engine — serial, parallel,
// goroutine-distributed, compact, incremental — over randomized
// heterogeneous capacity profiles and requires identical costs and
// bitwise-identical placements, plus budget feasibility
// (Σ_{blue} caps[v] ≤ k, no blue where caps[v] = 0).
func TestAllEnginesAgreeCaps(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(60)
		tr := topology.RandomRecursive(n, rng)
		loads := make([]int, n)
		caps := make([]int, n)
		for v := 0; v < n; v++ {
			loads[v] = rng.Intn(6)
			caps[v] = rng.Intn(4) // 0 = forwarder .. 3 = heavy switch
		}
		var k int
		switch trial % 4 {
		case 0:
			k = 0
		case 1:
			k = 3*n + rng.Intn(4) // beyond every subtree's capacity sum
		default:
			k = rng.Intn(10)
		}

		serial := SolveCaps(tr, loads, caps, k)
		inc := NewIncrementalCaps(tr, loads, caps, k)

		for name, res := range map[string]Result{
			"parallel":    SolveParallelCaps(tr, loads, caps, k, 4),
			"distributed": SolveDistributedCaps(tr, loads, caps, k),
			"compact":     SolveCompactCaps(tr, loads, caps, k),
			"incremental": inc.Solve(),
		} {
			if math.Abs(res.Cost-serial.Cost) > 1e-9 {
				t.Fatalf("trial %d: %s φ=%v, serial φ=%v", trial, name, res.Cost, serial.Cost)
			}
			if sim := reduce.Utilization(tr, loads, res.Blue); math.Abs(sim-res.Cost) > 1e-9 {
				t.Fatalf("trial %d: %s placement costs %v, reported %v", trial, name, sim, res.Cost)
			}
			used := 0
			for v, b := range res.Blue {
				if b {
					if caps[v] == 0 {
						t.Fatalf("trial %d: %s colored zero-capacity switch %d", trial, name, v)
					}
					used += caps[v]
				}
				if b != serial.Blue[v] {
					t.Fatalf("trial %d: %s placement differs from serial at switch %d", trial, name, v)
				}
			}
			if used > k {
				t.Fatalf("trial %d: %s spent %d capacity units with budget %d", trial, name, used, k)
			}
		}
	}
}

// TestCapsMatchesBruteForce certifies the weighted DP against exhaustive
// enumeration of every feasible subset on small instances.
func TestCapsMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	bf := placement.BruteForce{}
	for trial := 0; trial < 120; trial++ {
		tr, loads, caps, k := randomCapsInstance(rng.Int63(), 11, 6, 3)
		res := SolveCaps(tr, loads, caps, k)
		_, want := bf.SearchCaps(tr, loads, caps, k)
		if math.Abs(res.Cost-want) > 1e-9 {
			t.Fatalf("trial %d: SolveCaps φ=%v, brute force φ=%v (n=%d k=%d caps=%v loads=%v)",
				trial, res.Cost, want, tr.N(), k, caps, loads)
		}
	}
}

// TestQuickCapsMatchesReference cross-checks the weighted table engine
// against the independent recursive reference on mid-size instances
// beyond brute force.
func TestQuickCapsMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		tr, loads, caps, k := randomCapsInstance(seed, 60, 10, 4)
		got := SolveCaps(tr, loads, caps, k).Cost
		want := referenceCostCaps(tr, loads, caps, k)
		return math.Abs(got-want) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCapsUniformWeightReduction: if every switch costs the same c,
// a budget of k buys exactly ⌊k/c⌋ switches — the instance reduces to
// the uniform model with budget ⌊k/c⌋.
func TestQuickCapsUniformWeightReduction(t *testing.T) {
	f := func(seed int64, cRaw uint8) bool {
		c := 1 + int(cRaw%5)
		tr, loads, _, k := randomInstance(seed, 40, 8)
		caps := make([]int, tr.N())
		for v := range caps {
			caps[v] = c
		}
		weighted := SolveCaps(tr, loads, caps, k*c+rand.New(rand.NewSource(seed)).Intn(c)).Cost
		uniform := Solve(tr, loads, nil, k).Cost
		return math.Abs(weighted-uniform) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCapsMonotone pins the two monotonicity directions of the
// model: cheapening a positive capacity (keeping it positive) can only
// improve the optimum, and zeroing a capacity (removing the switch from
// Λ) can only worsen it. Raising k can only improve it.
func TestQuickCapsMonotone(t *testing.T) {
	f := func(seed int64) bool {
		tr, loads, caps, k := randomCapsInstance(seed, 40, 8, 4)
		base := SolveCaps(tr, loads, caps, k).Cost
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		v := rng.Intn(tr.N())

		cheaper := append([]int(nil), caps...)
		if cheaper[v] > 1 {
			cheaper[v]--
			if SolveCaps(tr, loads, cheaper, k).Cost > base+1e-9 {
				return false
			}
		}
		zeroed := append([]int(nil), caps...)
		zeroed[v] = 0
		if SolveCaps(tr, loads, zeroed, k).Cost < base-1e-9 {
			return false
		}
		return SolveCaps(tr, loads, caps, k+1+rng.Intn(3)).Cost <= base+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalCapsChurn drives the stateful engine through random
// SetCap / SetLoad sequences over heterogeneous profiles and, after
// every flush, requires bitwise agreement with a from-scratch GatherCaps
// and placement agreement with the other capacity engines.
func TestIncrementalCapsChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 30; trial++ {
		tr, loads, caps, k := randomCapsInstance(rng.Int63(), 45, 7, 3)
		n := tr.N()
		inc := NewIncrementalCaps(tr, loads, caps, k)
		for step := 0; step < 10; step++ {
			for b := 1 + rng.Intn(4); b > 0; b-- {
				v := rng.Intn(n)
				if rng.Intn(2) == 0 {
					loads[v] = rng.Intn(6)
					inc.SetLoad(v, loads[v])
				} else {
					caps[v] = rng.Intn(4)
					inc.SetCap(v, caps[v])
				}
			}
			got := inc.Solve()
			ref := SolveCaps(tr, loads, caps, k)
			if math.Abs(got.Cost-ref.Cost) > 1e-9 {
				t.Fatalf("trial %d step %d: incremental φ=%v, serial φ=%v", trial, step, got.Cost, ref.Cost)
			}
			for v := range got.Blue {
				if got.Blue[v] != ref.Blue[v] {
					t.Fatalf("trial %d step %d: placement differs at switch %d", trial, step, v)
				}
			}
			full := GatherCaps(tr, loads, caps, k)
			itb := inc.Tables()
			for v := 0; v < n; v++ {
				if itb.Cap(v) != full.Cap(v) || itb.Capacity(v) != full.Capacity(v) {
					t.Fatalf("trial %d step %d: switch %d cap/capacity drifted", trial, step, v)
				}
				for l := 0; l <= tr.Depth(v); l++ {
					for i := 0; i <= k; i++ {
						if itb.X(v, l, i) != full.X(v, l, i) {
							t.Fatalf("trial %d step %d: X_%d(%d,%d): incremental %v, full %v",
								trial, step, v, l, i, itb.X(v, l, i), full.X(v, l, i))
						}
					}
				}
			}
		}
	}
}

// TestCapsRejectsMalformed pins the validation contract: negative
// capacities and wrong-length vectors panic rather than mis-solve.
func TestCapsRejectsMalformed(t *testing.T) {
	tr := topology.MustBT(8)
	loads := make([]int, tr.N())
	for _, caps := range [][]int{
		{-1, 0, 0, 0, 0, 0, 0},
		make([]int, tr.N()+1),
		{MaxCapacity + 1, 0, 0, 0, 0, 0, 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("caps %v accepted", caps)
				}
			}()
			SolveCaps(tr, loads, caps, 2)
		}()
	}
}

// FuzzSolveCapsMatchesReference extends the fuzz surface to the
// heterogeneous model: fuzzer-chosen seeds decode into capacity-vector
// instances solved by every engine and checked against the independent
// reference. Explore with
// `go test -fuzz FuzzSolveCapsMatchesReference ./internal/core`.
func FuzzSolveCapsMatchesReference(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(99))
	f.Add(int64(-3))
	f.Add(int64(1 << 33))
	f.Fuzz(func(t *testing.T, seed int64) {
		tr, loads, caps, k := randomCapsInstance(seed, 25, 8, 4)
		res := SolveCaps(tr, loads, caps, k)
		want := referenceCostCaps(tr, loads, caps, k)
		if math.Abs(res.Cost-want) > 1e-9 {
			t.Fatalf("seed %d: SolveCaps φ=%v, reference φ=%v", seed, res.Cost, want)
		}
		if sim := reduce.Utilization(tr, loads, res.Blue); math.Abs(sim-res.Cost) > 1e-9 {
			t.Fatalf("seed %d: reported φ=%v but placement costs %v", seed, res.Cost, sim)
		}
		used := 0
		for v, b := range res.Blue {
			if b {
				used += caps[v]
			}
		}
		if used > k {
			t.Fatalf("seed %d: placement spends %d capacity units, budget %d", seed, used, k)
		}
		for name, other := range map[string]Result{
			"parallel":    SolveParallelCaps(tr, loads, caps, k, 3),
			"distributed": SolveDistributedCaps(tr, loads, caps, k),
			"compact":     SolveCompactCaps(tr, loads, caps, k),
			"incremental": NewIncrementalCaps(tr, loads, caps, k).Solve(),
		} {
			if math.Abs(other.Cost-res.Cost) > 1e-9 {
				t.Fatalf("seed %d: %s φ=%v, serial φ=%v", seed, name, other.Cost, res.Cost)
			}
			for v := range res.Blue {
				if other.Blue[v] != res.Blue[v] {
					t.Fatalf("seed %d: %s placement differs at switch %d", seed, name, v)
				}
			}
		}
	})
}
