// Package reduce simulates the Reduce operation of the SOAR paper
// (Algorithm 1) on a tree network and computes its costs.
//
// Two engines are provided. The counting engine computes, for a given
// coloring U of aggregating ("blue") switches, the per-link message
// counts msg_e and the network utilization cost
//
//	φ(T, L, U) = Σ_e msg_e · ρ(e)            (paper Eq. 1)
//
// together with the equivalent closest-blue-ancestor ("barrier")
// formulation of Lemma 4.2 (Eq. 3), which the tests cross-check. The
// payload engine runs the same Reduce with real per-message payloads and
// a pluggable Aggregator, yielding the byte complexity studied in
// Sec. 5.3.
//
// Model refinement: a blue switch whose subtree carries zero load sends
// nothing (Algorithm 1 terminates when d has heard from every positive-
// load node), so its upward message count is min(1, subtree load). For
// strictly positive loads this is exactly the paper's model.
package reduce

import (
	"fmt"

	"soar/internal/topology"
)

// MessageCounts returns, for every switch v, the number of messages
// crossing the edge from v to its parent (for the root, the edge (r, d))
// during a Reduce with blue set U.
func MessageCounts(t *topology.Tree, load []int, blue []bool) []int64 {
	mustMatch(t, load, blue)
	out := make([]int64, t.N())
	for _, v := range t.PostOrder() {
		var in int64
		for _, c := range t.Children(v) {
			in += out[c]
		}
		total := in + int64(load[v])
		if blue[v] && total > 1 {
			total = 1
		}
		out[v] = total
	}
	return out
}

// Utilization returns φ(T, L, U) per Eq. 1: the sum over all edges of the
// per-edge message count times the edge's per-message time ρ(e).
func Utilization(t *topology.Tree, load []int, blue []bool) float64 {
	counts := MessageCounts(t, load, blue)
	var phi float64
	for v, m := range counts {
		phi += float64(m) * t.Rho(v)
	}
	return phi
}

// TotalMessages returns the message complexity: the total number of
// messages sent during the Reduce (φ under constant rate 1).
func TotalMessages(t *topology.Tree, load []int, blue []bool) int64 {
	counts := MessageCounts(t, load, blue)
	var n int64
	for _, m := range counts {
		n += m
	}
	return n
}

// UtilizationBarrier returns φ(T, L, U) computed by the alternative
// formulation of Lemma 4.2 (Eq. 3): every node pays its outgoing weight
// times the path cost to its closest blue ancestor (or d if none). It
// must equal Utilization for every input; the tests rely on this.
func UtilizationBarrier(t *topology.Tree, load []int, blue []bool) float64 {
	mustMatch(t, load, blue)
	subLoad := t.SubtreeLoads(load)
	var phi float64
	// distUp[v] = Σρ from v to its closest blue strict ancestor, or to d.
	distUp := make([]float64, t.N())
	for _, v := range t.BFSOrder() {
		p := t.Parent(v)
		switch {
		case p == topology.NoParent:
			distUp[v] = t.Rho(v) // root: barrier is d itself
		case blue[p]:
			distUp[v] = t.Rho(v)
		default:
			distUp[v] = t.Rho(v) + distUp[p]
		}
		if blue[v] {
			if subLoad[v] > 0 {
				phi += distUp[v] // one aggregated message
			}
		} else {
			phi += float64(load[v]) * distUp[v]
		}
	}
	return phi
}

// CountBlue returns |U|.
func CountBlue(blue []bool) int {
	n := 0
	for _, b := range blue {
		if b {
			n++
		}
	}
	return n
}

func mustMatch(t *topology.Tree, load []int, blue []bool) {
	if len(load) != t.N() || len(blue) != t.N() {
		panic(fmt.Sprintf("reduce: tree has %d switches, load %d, blue %d",
			t.N(), len(load), len(blue)))
	}
}
