package sched

import "fmt"

// unlimited stands in for "no capacity bound" (capacity ≤ 0 at
// construction): large enough to never exhaust, small enough to be a
// portable int (32-bit platforms included) and to keep the int64
// aggregates in Stats from overflowing for any real tree.
const unlimited = 1 << 30

// Ledger is the single source of truth for per-switch lease capacity:
// how many tenants each switch may aggregate for (initial), how many
// slots remain (residual), and — maintained incrementally — the
// availability set Λ = {v : residual[v] > 0} every SOAR solve is
// restricted to.
//
// Before this package, naas.Service and workload.Allocator each kept
// their own residual/availability bookkeeping; both now share this type
// (the Scheduler owns one, the allocator embeds one), so the invariant
// "residual = initial − active leases, Λ = residual > 0" lives in one
// place.
//
// A Ledger does no locking: the owner serializes access (the Scheduler
// charges and credits only from its dispatch goroutine, the allocator is
// single-threaded by contract).
type Ledger struct {
	initial  []int
	residual []int
	avail    []bool
}

// NewLedger creates a ledger for n switches with a uniform capacity
// (capacity ≤ 0 means unlimited).
func NewLedger(n, capacity int) *Ledger {
	if capacity <= 0 {
		capacity = unlimited
	}
	l := &Ledger{
		initial:  make([]int, n),
		residual: make([]int, n),
		avail:    make([]bool, n),
	}
	for v := 0; v < n; v++ {
		l.initial[v] = capacity
		l.residual[v] = capacity
		l.avail[v] = true
	}
	return l
}

// NewLedgerFromCaps creates a ledger with a per-switch capacity vector —
// the heterogeneous-deployment constructor. Unlike NewLedger's uniform
// capacity, entries are literal (as in SetCapacity): caps[v] = 0 makes
// switch v permanently unavailable, negative values clamp to 0. The
// vector is copied.
func NewLedgerFromCaps(caps []int) *Ledger {
	l := &Ledger{
		initial:  make([]int, len(caps)),
		residual: make([]int, len(caps)),
		avail:    make([]bool, len(caps)),
	}
	for v, c := range caps {
		if c < 0 {
			c = 0
		}
		l.initial[v] = c
		l.residual[v] = c
		l.avail[v] = c > 0
	}
	return l
}

// N returns the number of switches tracked.
func (l *Ledger) N() int { return len(l.residual) } //soar:hotpath

// SetCapacity overrides both the initial and the residual capacity of
// one switch; useful for heterogeneous deployments. Unlike the
// constructor's uniform capacity, c here is literal: 0 makes the switch
// permanently unavailable (negative values clamp to 0). It must not be
// called once leases are outstanding on v (the residual is reset).
func (l *Ledger) SetCapacity(v, c int) {
	if c < 0 {
		c = 0
	}
	l.initial[v] = c
	l.residual[v] = c
	l.avail[v] = c > 0
}

// Residual returns the residual capacity of switch v.
func (l *Ledger) Residual(v int) int { return l.residual[v] } //soar:hotpath

// Initial returns the configured capacity of switch v.
func (l *Ledger) Initial(v int) int { return l.initial[v] } //soar:hotpath

// Used returns the number of slots currently leased on switch v.
func (l *Ledger) Used(v int) int { return l.initial[v] - l.residual[v] } //soar:hotpath

// Avail returns the maintained availability vector Λ. The slice is the
// ledger's own storage: callers may read it (engines do, between
// mutations) but must never modify it and must not retain it across a
// Charge/Credit.
func (l *Ledger) Avail() []bool { return l.avail } //soar:hotpath

// AvailCopy returns a defensive copy of Λ.
func (l *Ledger) AvailCopy() []bool {
	return append([]bool(nil), l.avail...)
}

// Residuals appends a copy of the residual vector to dst (pass nil for
// fresh storage).
func (l *Ledger) Residuals(dst []int) []int {
	return append(dst[:0], l.residual...)
}

// Charge takes one slot on switch v. It panics if v is exhausted: every
// caller picks v from a solve restricted to Λ, so an exhausted pick is a
// bookkeeping bug, not an input error.
//
//soar:hotpath
func (l *Ledger) Charge(v int) {
	if l.residual[v] <= 0 {
		panic(fmt.Sprintf("sched: charge on exhausted switch %d", v))
	}
	l.residual[v]--
	l.avail[v] = l.residual[v] > 0
}

// Credit returns one slot on switch v. It panics if the slot was never
// taken, which would silently inflate capacity.
//
//soar:hotpath
func (l *Ledger) Credit(v int) {
	if l.residual[v] >= l.initial[v] {
		panic(fmt.Sprintf("sched: credit on full switch %d", v))
	}
	l.residual[v]++
	l.avail[v] = true
}
