package core

import "math"

// This file is the (min,+) merge kernel behind computeNode (see
// DESIGN.md "SoA merge kernel"): the inner loop of SOAR-Gather's child
// merge (paper Alg. 3 lines 20-25),
//
//	newY[i] = min_{0 ≤ j ≤ min(i, cw)} y[i-j] + x[j],   i ∈ [0, hi]
//
// with the first argmin j (the lowest j attaining the minimum) recorded
// into sp when breadcrumbs are requested. Every engine funnels its
// merges through mergeMinPlus, so the kernel's tie-break contract IS
// the bitwise-identity contract of the whole repo:
//
//   - min over a fixed candidate set of float64s is order-independent
//     (no NaNs can arise: all table values are ≥ 0 or +Inf, and the
//     kernel only adds), so any evaluation order yields the same value;
//   - the recorded argmin must be the LOWEST j attaining that value,
//     which every variant preserves by scanning j ascending and
//     replacing only on strict <.
//
// Three variants cover the width spectrum of real instances:
//
//	merge4 / merge8   cap width ≤ 4 / ≤ 8: the candidate chain is
//	                  fully unrolled against a fixed-size x buffer
//	                  padded with +Inf, so the inner loop has no
//	                  j-bound branch at all (padded candidates can
//	                  never win a strict <, even against +Inf).
//	mergeGeneric      arbitrary width: j-outer passes over contiguous
//	                  i-ranges, keeping both streams sequential so the
//	                  compiler's bounds-check elimination and the
//	                  prefetcher see straight-line strided loads.
//
// Effective caps keep real cap widths tiny (min(k, subtree capacity)),
// so on the paper's fat-tree instances nearly every merge takes an
// unrolled variant.

// mergeMinPlus computes the bounded (min,+) convolution above, writing
// newY[0..hi] and, when sp is non-nil, the first-argmin breadcrumbs
// sp[0..hi]. y must have at least hi+1 entries and x at least
// min(cw, hi)+1. cw is the merged child's effective cap.
//
//soar:hotpath
func mergeMinPlus(newY []float64, sp []int32, y, x []float64, hi, cw int) {
	if cw > hi {
		// j ≤ min(i, cw) ≤ hi: a wider child row contributes nothing
		// past column hi, and clamping here lets the variants below
		// index y[i-j] without a per-candidate guard.
		cw = hi
	}
	switch {
	case cw < 4:
		merge4(newY, sp, y, x, hi, cw)
	case cw < 8:
		merge8(newY, sp, y, x, hi, cw)
	default:
		mergeGeneric(newY, sp, y, x, hi, cw)
	}
}

// mergeScalar is the reference scan shared by the unrolled variants'
// short prefixes (i < chain width, where j is bounded by i, not cw).
// It is also the kernel's executable specification: FuzzKernelMatchesGather
// and the kernel unit tests compare every variant against it bitwise.
//
//soar:hotpath
func mergeScalar(newY []float64, sp []int32, y, x []float64, lo, hi, cw int) {
	for i := lo; i <= hi; i++ {
		best, arg := math.Inf(1), int32(0)
		jm := min(i, cw)
		for j := 0; j <= jm; j++ {
			if c := y[i-j] + x[j]; c < best {
				best, arg = c, int32(j)
			}
		}
		newY[i] = best
		if sp != nil {
			sp[i] = arg
		}
	}
}

// merge4 is the unrolled kernel for cap widths ≤ 4: x is copied into a
// fixed 4-wide register block padded with +Inf, and each output cell is
// a straight-line 4-candidate min chain. A padded candidate is +Inf and
// can never pass a strict <, so values and argmins match mergeScalar
// exactly (including all-infinite rows, where both keep arg 0).
//
//soar:hotpath
func merge4(newY []float64, sp []int32, y, x []float64, hi, cw int) {
	var xb [4]float64
	for j := 0; j <= cw; j++ {
		xb[j] = x[j]
	}
	for j := cw + 1; j < 4; j++ {
		xb[j] = math.Inf(1)
	}
	mergeScalar(newY, sp, y, x, 0, min(2, hi), cw)
	if sp == nil {
		for i := 3; i <= hi; i++ {
			best := y[i] + xb[0]
			if c := y[i-1] + xb[1]; c < best {
				best = c
			}
			if c := y[i-2] + xb[2]; c < best {
				best = c
			}
			if c := y[i-3] + xb[3]; c < best {
				best = c
			}
			newY[i] = best
		}
		return
	}
	for i := 3; i <= hi; i++ {
		best, arg := y[i]+xb[0], int32(0)
		if c := y[i-1] + xb[1]; c < best {
			best, arg = c, 1
		}
		if c := y[i-2] + xb[2]; c < best {
			best, arg = c, 2
		}
		if c := y[i-3] + xb[3]; c < best {
			best, arg = c, 3
		}
		newY[i] = best
		sp[i] = arg
	}
}

// merge8 is merge4 at chain width 8, for cap widths ≤ 8.
//
//soar:hotpath
func merge8(newY []float64, sp []int32, y, x []float64, hi, cw int) {
	var xb [8]float64
	for j := 0; j <= cw; j++ {
		xb[j] = x[j]
	}
	for j := cw + 1; j < 8; j++ {
		xb[j] = math.Inf(1)
	}
	mergeScalar(newY, sp, y, x, 0, min(6, hi), cw)
	if sp == nil {
		for i := 7; i <= hi; i++ {
			best := y[i] + xb[0]
			if c := y[i-1] + xb[1]; c < best {
				best = c
			}
			if c := y[i-2] + xb[2]; c < best {
				best = c
			}
			if c := y[i-3] + xb[3]; c < best {
				best = c
			}
			if c := y[i-4] + xb[4]; c < best {
				best = c
			}
			if c := y[i-5] + xb[5]; c < best {
				best = c
			}
			if c := y[i-6] + xb[6]; c < best {
				best = c
			}
			if c := y[i-7] + xb[7]; c < best {
				best = c
			}
			newY[i] = best
		}
		return
	}
	for i := 7; i <= hi; i++ {
		best, arg := y[i]+xb[0], int32(0)
		if c := y[i-1] + xb[1]; c < best {
			best, arg = c, 1
		}
		if c := y[i-2] + xb[2]; c < best {
			best, arg = c, 2
		}
		if c := y[i-3] + xb[3]; c < best {
			best, arg = c, 3
		}
		if c := y[i-4] + xb[4]; c < best {
			best, arg = c, 4
		}
		if c := y[i-5] + xb[5]; c < best {
			best, arg = c, 5
		}
		if c := y[i-6] + xb[6]; c < best {
			best, arg = c, 6
		}
		if c := y[i-7] + xb[7]; c < best {
			best, arg = c, 7
		}
		newY[i] = best
		sp[i] = arg
	}
}

// mergeGeneric handles arbitrary cap widths with j-outer passes: pass j
// streams y[0..hi-j] and newY[j..hi] sequentially with one hoisted x[j],
// so every iteration is two strided loads, an add, a compare and a
// conditional store — no inner j-bound branch, no gather. Ascending j
// with strict < replacement keeps the recorded argmin the lowest
// minimizing j, identical to the ascending i-inner scan.
//
//soar:hotpath
func mergeGeneric(newY []float64, sp []int32, y, x []float64, hi, cw int) {
	x0 := x[0]
	for i := 0; i <= hi; i++ {
		newY[i] = y[i] + x0
	}
	if sp != nil {
		for i := 0; i <= hi; i++ {
			sp[i] = 0
		}
	}
	for j := 1; j <= cw; j++ {
		xj := x[j]
		if sp == nil {
			for i := j; i <= hi; i++ {
				if c := y[i-j] + xj; c < newY[i] {
					newY[i] = c
				}
			}
		} else {
			for i := j; i <= hi; i++ {
				if c := y[i-j] + xj; c < newY[i] {
					newY[i] = c
					sp[i] = int32(j)
				}
			}
		}
	}
}
