package ha

import (
	"soar/internal/obs"
)

// Metrics is the cluster-level replication instrumentation, registered
// in the cluster registry (Options.Obs) — distinct from the per-shard
// scheduler registries, which each belong to exactly one scheduler
// incarnation. All families are soar_ha_*.
type Metrics struct {
	// EpochRejections counts commits a stale primary attempted after a
	// newer epoch was installed — the fencing proof the failover soak
	// asserts on.
	epochRejections *obs.Counter
	// failovers counts promotions (one per epoch bump).
	failovers *obs.Counter
	// heartbeats counts heartbeat frames published by primaries.
	heartbeats *obs.Counter
	// deltas counts lease-delta frames published by primaries.
	deltas *obs.Counter
	// ckptStreams counts checkpoint streams served to attaching standbys.
	ckptStreams *obs.Counter
	// attaches counts standby attach attempts that reached the epoch
	// handshake (successful or NACKed).
	attaches *obs.Counter
	// promoteSeconds observes silence-to-serving promotion latency.
	promoteSeconds *obs.Histogram
}

// NewMetrics registers the soar_ha_* families in reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		epochRejections: reg.Counter("soar_ha_epoch_rejections_total",
			"Commits rejected by epoch fencing (stale primary).", nil),
		failovers: reg.Counter("soar_ha_failovers_total",
			"Standby promotions performed.", nil),
		heartbeats: reg.Counter("soar_ha_heartbeats_total",
			"Heartbeat frames published by primaries.", nil),
		deltas: reg.Counter("soar_ha_deltas_total",
			"Lease-delta frames published by primaries.", nil),
		ckptStreams: reg.Counter("soar_ha_ckpt_streams_total",
			"Checkpoint streams served to attaching standbys.", nil),
		attaches: reg.Counter("soar_ha_attaches_total",
			"Standby attach attempts reaching the epoch handshake.", nil),
		promoteSeconds: reg.Histogram("soar_ha_promote_seconds",
			"Promotion latency from silence verdict to serving standby.",
			nil, obs.ExpBuckets(1e-4, 2, 18)),
	}
}

// EpochRejections returns the fencing counter's current value — the
// soak asserts it advances when a deposed primary's late commit is
// rejected.
func (m *Metrics) EpochRejections() uint64 { return m.epochRejections.Value() }

// Failovers returns the number of promotions performed.
func (m *Metrics) Failovers() uint64 { return m.failovers.Value() }
