package naas

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"soar/internal/obs"
)

// Client consumes the NaaS HTTP API from Go.
type Client struct {
	base string
	http *http.Client
}

// NewClient targets a service at baseURL (e.g. "http://127.0.0.1:7070").
// httpClient may be nil for http.DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: baseURL, http: httpClient}
}

// ClientLease is the client-side view of a lease.
type ClientLease struct {
	ID     int64   `json:"id"`
	Blue   []int   `json:"blue"`
	K      int     `json:"k"`
	Phi    float64 `json:"phi"`
	AllRed float64 `json:"all_red"`
	Ratio  float64 `json:"ratio"`
}

// Place admits a tenant with the given load vector and budget.
func (c *Client) Place(ctx context.Context, load []int, k int) (*ClientLease, error) {
	body, err := json.Marshal(placeRequest{Load: load, K: k})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/tenants", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	var lease ClientLease
	if err := c.do(req, http.StatusCreated, &lease); err != nil {
		return nil, err
	}
	return &lease, nil
}

// Lookup fetches a lease by id.
func (c *Client) Lookup(ctx context.Context, id int64) (*ClientLease, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/tenants/%d", c.base, id), nil)
	if err != nil {
		return nil, err
	}
	var lease ClientLease
	if err := c.do(req, http.StatusOK, &lease); err != nil {
		return nil, err
	}
	return &lease, nil
}

// Release ends a lease.
func (c *Client) Release(ctx context.Context, id int64) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		fmt.Sprintf("%s/v1/tenants/%d", c.base, id), nil)
	if err != nil {
		return err
	}
	return c.do(req, http.StatusNoContent, nil)
}

// Stats fetches the service summary.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	var st Stats
	if err := c.do(req, http.StatusOK, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Residual fetches the per-switch residual capacities.
func (c *Client) Residual(ctx context.Context) ([]int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/residual", nil)
	if err != nil {
		return nil, err
	}
	var out struct {
		Residual []int `json:"residual"`
	}
	if err := c.do(req, http.StatusOK, &out); err != nil {
		return nil, err
	}
	return out.Residual, nil
}

// Checkpoint streams a consistent checkpoint of the service's control
// plane into w (the bytes a fresh Service.Restore accepts) and returns
// the size.
func (c *Client) Checkpoint(ctx context.Context, w io.Writer) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/checkpoint", nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("naas: HTTP %d", resp.StatusCode)
	}
	return io.Copy(w, resp.Body)
}

// SaveCheckpoint asks the daemon to persist a checkpoint to its
// configured path and returns where it landed.
func (c *Client) SaveCheckpoint(ctx context.Context) (path string, size int64, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/checkpoint", nil)
	if err != nil {
		return "", 0, err
	}
	var out struct {
		Path  string `json:"path"`
		Bytes int64  `json:"bytes"`
	}
	if err := c.do(req, http.StatusOK, &out); err != nil {
		return "", 0, err
	}
	return out.Path, out.Bytes, nil
}

// ClientClusterResult is the client-side view of a loopback cluster
// replay (POST /v1/cluster).
type ClientClusterResult struct {
	Blue           []int   `json:"blue"`
	Cost           float64 `json:"cost"`
	ReduceMessages int64   `json:"reduce_messages"`
	ReducePhi      float64 `json:"reduce_phi"`
	Degraded       bool    `json:"degraded"`
	Attempts       int     `json:"attempts"`
	Cause          string  `json:"cause,omitempty"`
}

// ClusterRun asks the daemon to replay lease id's problem over its
// loopback cluster runtime.
func (c *Client) ClusterRun(ctx context.Context, id int64) (*ClientClusterResult, error) {
	body, err := json.Marshal(clusterRequest{ID: id})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/cluster", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	var out ClientClusterResult
	if err := c.do(req, http.StatusOK, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Shards fetches per-shard membership from a sharded daemon (GET
// /v1/shards). A non-sharded daemon answers 404.
func (c *Client) Shards(ctx context.Context) ([]ShardInfo, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/shards", nil)
	if err != nil {
		return nil, err
	}
	var out struct {
		Shards []ShardInfo `json:"shards"`
	}
	if err := c.do(req, http.StatusOK, &out); err != nil {
		return nil, err
	}
	return out.Shards, nil
}

// Ready probes GET /v1/readyz: true on 200, false on 503, an error on
// anything else (including an unreachable daemon).
func (c *Client) Ready(ctx context.Context) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/readyz", nil)
	if err != nil {
		return false, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusServiceUnavailable:
		return false, nil
	default:
		return false, fmt.Errorf("naas: HTTP %d", resp.StatusCode)
	}
}

// Metrics scrapes GET /metrics and parses the exposition into
// families (obs.ParseText).
func (c *Client) Metrics(ctx context.Context) ([]obs.TextFamily, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("naas: HTTP %d", resp.StatusCode)
	}
	return obs.ParseText(resp.Body)
}

// Trace fetches the newest n spans from the daemon's trace ring.
func (c *Client) Trace(ctx context.Context, n int) ([]obs.SpanEvent, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/trace?n=%d", c.base, n), nil)
	if err != nil {
		return nil, err
	}
	var out struct {
		Spans []obs.SpanEvent `json:"spans"`
	}
	if err := c.do(req, http.StatusOK, &out); err != nil {
		return nil, err
	}
	return out.Spans, nil
}

func (c *Client) do(req *http.Request, wantStatus int, out interface{}) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var apiErr struct {
			Error string `json:"error"`
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			return fmt.Errorf("naas: %s (HTTP %d)", apiErr.Error, resp.StatusCode)
		}
		return fmt.Errorf("naas: HTTP %d", resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("naas: decode response: %w", err)
	}
	return nil
}
