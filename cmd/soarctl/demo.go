package main

import (
	"fmt"

	"soar/internal/core"
	"soar/internal/paper"
	"soar/internal/placement"
	"soar/internal/reduce"
)

// runDemo replays the paper's motivating example (Figs. 2 and 3): the
// 7-switch binary tree with rack loads (2, 6, 5, 4).
func runDemo(args []string) error {
	fs := newFlagSet("demo")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, loads := paper.Figure2()
	fmt.Println("The paper's example network (Figs. 2-3): 7 switches, rack loads 2, 6, 5, 4.")
	fmt.Print(tr.Sketch(loads, nil))

	fmt.Println("\nStrategy comparison at k = 2 (paper Fig. 2):")
	strategies := []placement.Strategy{
		placement.Top{}, placement.Max{}, placement.Level{}, core.Strategy{},
	}
	for _, s := range strategies {
		blue := s.Place(tr, loads, nil, 2)
		fmt.Printf("  %-8s blue=%-8s φ=%g\n", s.Name(), placement.String(blue),
			reduce.Utilization(tr, loads, blue))
	}

	fmt.Println("\nOptimal cost as the budget grows (paper Fig. 3):")
	for k := 0; k <= 4; k++ {
		res := core.Solve(tr, loads, nil, k)
		fmt.Printf("  k=%d  φ*=%-4g blue=%s\n", k, res.Cost, placement.String(res.Blue))
	}
	fmt.Println("\nNote the non-monotone blue sets: the unique k=2 optimum uses switch 2,")
	fmt.Println("the unique k=3 optimum does not (paper Sec. 3).")

	fmt.Println("\nThe k=2 optimum, drawn:")
	res := core.Solve(tr, loads, nil, 2)
	fmt.Print(tr.Sketch(loads, res.Blue))
	return nil
}
