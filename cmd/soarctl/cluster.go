package main

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"soar/internal/cluster"
	"soar/internal/core"
	"soar/internal/load"
	"soar/internal/reduce"
	"soar/internal/topology"
)

// runCluster deploys SOAR over a loopback TCP mesh and cross-checks the
// distributed result against the serial solver.
func runCluster(args []string) error {
	fs := newFlagSet("cluster")
	n := fs.Int("n", 64, "BT network size (including destination, power of two)")
	k := fs.Int("k", 8, "aggregation switch budget")
	seed := fs.Int64("seed", 1, "random seed")
	timeout := fs.Duration("timeout", 30*time.Second, "overall deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := topology.BT(*n)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	loads := load.Generate(tr, load.PaperPowerLaw(), load.LeavesOnly, rng)

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	start := time.Now()
	res, err := cluster.Run(ctx, tr, loads, nil, *k)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	serial := core.Solve(tr, loads, nil, *k)
	allRed := reduce.Utilization(tr, loads, make([]bool, tr.N()))
	fmt.Printf("cluster: %d switches, %d TCP links, k=%d, elapsed %v\n",
		tr.N(), tr.N(), *k, elapsed.Round(time.Millisecond))
	fmt.Printf("  optimal φ (from root's table) : %.2f\n", res.Cost)
	fmt.Printf("  measured φ (distributed run)  : %.2f\n", res.ReducePhi)
	fmt.Printf("  serial solver φ               : %.2f\n", serial.Cost)
	fmt.Printf("  vs all-red                    : %.4f\n", res.Cost/allRed)
	fmt.Printf("  messages reaching destination : %d\n", res.ReduceMessages)
	if res.Cost != serial.Cost {
		return fmt.Errorf("distributed cost %v disagrees with serial %v", res.Cost, serial.Cost)
	}
	fmt.Println("  distributed == serial ✓")
	return nil
}
