package core

import (
	"math"
	"math/rand"
	"testing"

	"soar/internal/paper"
	"soar/internal/reduce"
	"soar/internal/topology"
)

func TestDistributedMatchesSerialPaperExample(t *testing.T) {
	tr, loads := paper.Figure2()
	for k := 0; k <= 5; k++ {
		serial := Solve(tr, loads, nil, k)
		dist := SolveDistributed(tr, loads, nil, k)
		if serial.Cost != dist.Cost {
			t.Fatalf("k=%d: serial φ=%v, distributed φ=%v", k, serial.Cost, dist.Cost)
		}
		for v := range serial.Blue {
			if serial.Blue[v] != dist.Blue[v] {
				t.Fatalf("k=%d: placements differ at switch %d", k, v)
			}
		}
	}
}

func TestDistributedMatchesSerialRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(50)
		tr := topology.RandomRecursive(n, rng)
		loads := make([]int, n)
		avail := make([]bool, n)
		for v := 0; v < n; v++ {
			loads[v] = rng.Intn(6)
			avail[v] = rng.Intn(4) != 0
		}
		k := rng.Intn(6)
		serial := Solve(tr, loads, avail, k)
		dist := SolveDistributed(tr, loads, avail, k)
		if math.Abs(serial.Cost-dist.Cost) > 1e-9 {
			t.Fatalf("trial %d: serial φ=%v, distributed φ=%v", trial, serial.Cost, dist.Cost)
		}
		for v := range serial.Blue {
			if serial.Blue[v] != dist.Blue[v] {
				t.Fatalf("trial %d: placements differ at switch %d", trial, v)
			}
		}
		if sim := reduce.Utilization(tr, loads, dist.Blue); math.Abs(sim-dist.Cost) > 1e-9 {
			t.Fatalf("trial %d: distributed cost %v but simulation %v", trial, dist.Cost, sim)
		}
	}
}

func TestDistributedDeepTree(t *testing.T) {
	// Exercise long dependency chains (every switch waits for one child).
	tr := topology.Path(200)
	loads := make([]int, 200)
	loads[199] = 9
	serial := Solve(tr, loads, nil, 3)
	dist := SolveDistributed(tr, loads, nil, 3)
	if serial.Cost != dist.Cost {
		t.Fatalf("serial φ=%v, distributed φ=%v", serial.Cost, dist.Cost)
	}
}

func TestDistributedWideTree(t *testing.T) {
	// Exercise high fan-in (root waits for many children at once).
	tr := topology.Star(300)
	loads := make([]int, 300)
	for v := 1; v < 300; v++ {
		loads[v] = 1 + v%4
	}
	serial := Solve(tr, loads, nil, 10)
	dist := SolveDistributed(tr, loads, nil, 10)
	if serial.Cost != dist.Cost {
		t.Fatalf("serial φ=%v, distributed φ=%v", serial.Cost, dist.Cost)
	}
	for v := range serial.Blue {
		if serial.Blue[v] != dist.Blue[v] {
			t.Fatalf("placements differ at switch %d", v)
		}
	}
}
