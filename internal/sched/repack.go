package sched

import (
	"sort"
	"time"
)

// The background re-packer. The online model is arrival-only in the
// paper; once departures exist (Release), early tenants keep the
// placements they were given under *old* contention, and the capacity
// departures free is only picked up by new arrivals. A fragmented
// steady state follows: the availability set is rich again, but
// standing tenants still pay the φ of the congested past.
//
// A re-packing round undoes a bounded amount of that: it considers
// tenants in decreasing order of their current normalized utilization
// (worst value delivered first), re-solves each against today's
// residual capacity with the tenant's own switches temporarily freed,
// and migrates the tenant only if the fresh placement improves its φ by
// the configured margin. At most MaxMoves tenants migrate per round —
// the migration budget m — because each move is data-plane churn
// (aggregation state moves between switches); the loop also yields as
// soon as foreground requests queue up, keeping re-packing strictly
// low-priority.

// repackTicker drives periodic rounds through the request queue so that
// all ledger mutation stays on the dispatcher goroutine.
func (s *Scheduler) repackTicker() {
	defer s.bg.Done()
	ticker := time.NewTicker(s.cfg.Repack.Every)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			// Synchronous: a slow round naturally back-pressures the
			// ticker instead of piling up repack requests.
			s.RepackNow(0)
		}
	}
}

// repack runs one re-packing round on the dispatcher goroutine. The
// solve of each candidate runs outside s.mu — soarlint's lockdiscipline
// analyzer proves no Solve* call ever happens under it — so the lock is
// cycled per candidate: credit the tenant's slots under mu, solve
// unlocked (the dispatcher is the ledger's only writer, so its own
// unlocked availability reads cannot race), then re-take mu to either
// commit the migration or restore the slots. A concurrent Residual or
// Snapshot may therefore observe the candidate's slots transiently
// free mid-migration; Lookup still sees each lease atomically old or
// new. Returns the number of tenants migrated and the aggregate Φ
// recovered.
func (s *Scheduler) repack(maxMoves int) (moved int, recovered float64) {
	if maxMoves <= 0 {
		maxMoves = s.cfg.Repack.MaxMoves
	}
	// Worst value delivered first; ids break ties so rounds are
	// deterministic for a given lease set.
	type cand struct {
		id    int64
		ratio float64
	}
	s.mu.Lock()
	if len(s.leases) == 0 {
		s.met.noteRepack(0, 0)
		s.mu.Unlock()
		return 0, 0
	}
	cands := make([]cand, 0, len(s.leases))
	for id, ten := range s.leases {
		cands = append(cands, cand{id, ten.ratio()})
	}
	s.mu.Unlock()
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].ratio != cands[j].ratio {
			return cands[i].ratio > cands[j].ratio
		}
		return cands[i].id < cands[j].id
	})

	// A round inspects at most scanBudget candidates: solving is the
	// expensive part, and a round that cannot find improvements among
	// the worst-off tenants should end, not scan the whole tenant set.
	scanBudget := 4 * maxMoves
	for _, c := range cands {
		if moved >= maxMoves || scanBudget == 0 {
			break
		}
		if len(s.reqs) > 0 {
			break // foreground traffic waiting: yield
		}
		scanBudget--
		// Free the tenant's own slots so the solver may keep any of them.
		// Only the dispatcher mutates leases, so ten cannot be released
		// between the unlock and the commit below.
		s.mu.Lock()
		ten := s.leases[c.id]
		for _, v := range ten.blue {
			s.ledger.Credit(v)
		}
		oldPhi := ten.phi
		s.mu.Unlock()

		eng := s.bgSol.ensure(s.t, ten.load, s.ledger.Avail(), ten.k)
		newPhi := eng.SolveInto(s.bgBlue)

		s.mu.Lock()
		fenced := false
		if s.cfg.Fence != nil && s.cfg.Fence() != nil {
			// A deposed primary must not migrate: restore the slots and
			// end the round (every further candidate would fence too).
			fenced = true
		}
		if !fenced && newPhi < oldPhi*(1-s.cfg.Repack.MinGain) && newPhi < oldPhi {
			moved++
			recovered += oldPhi - newPhi
			ten.phi = newPhi
			ten.blue = ten.blue[:0]
			for v, b := range s.bgBlue {
				if b {
					s.ledger.Charge(v)
					ten.blue = append(ten.blue, v)
				}
			}
			s.journalAppend(JournalMigrate, ten.id, ten)
		} else {
			// Not worth the churn: restore the tenant's slots untouched.
			for _, v := range ten.blue {
				s.ledger.Charge(v)
			}
		}
		s.mu.Unlock()
		if fenced {
			break
		}
	}
	s.mu.Lock()
	s.met.noteRepack(moved, recovered)
	s.mu.Unlock()
	return moved, recovered
}
