package experiments

import (
	"fmt"
	"math/rand"

	"soar/internal/core"
	"soar/internal/load"
	"soar/internal/placement"
	"soar/internal/reduce"
	"soar/internal/stats"
	"soar/internal/timesim"
	"soar/internal/topology"
)

// ExtObjectivesConfig parameterizes the extension experiment probing the
// paper's Sec. 8 conjecture: that a placement minimizing the utilization
// complexity φ also performs well for the Reduce completion time
// (makespan) and for the bottleneck-link load. Neither quantity is
// plotted in the paper; this experiment makes the conjecture measurable
// using the discrete-event simulator (internal/timesim).
type ExtObjectivesConfig struct {
	// N is the BT network size.
	N int
	// Ks are the budgets to sweep.
	Ks []int
	// Reps averages over workloads.
	Reps int
	Seed int64
}

// DefaultExtObjectives mirrors the Fig. 6 setup.
func DefaultExtObjectives() ExtObjectivesConfig {
	return ExtObjectivesConfig{N: 256, Ks: []int{1, 2, 4, 8, 16, 32}, Reps: 10, Seed: 8}
}

// QuickExtObjectives is a reduced instance for tests.
func QuickExtObjectives() ExtObjectivesConfig {
	return ExtObjectivesConfig{N: 64, Ks: []int{1, 4, 8}, Reps: 2, Seed: 8}
}

// ExtObjectives compares SOAR against Top/Max/Level on three metrics —
// φ (what SOAR provably minimizes), Reduce completion time, and
// bottleneck-link time — each normalized to the all-red run.
func ExtObjectives(cfg ExtObjectivesConfig) (*Figure, error) {
	base, err := topology.BT(cfg.N)
	if err != nil {
		return nil, err
	}
	tr := base
	strategies := CompareStrategies()
	metrics := []struct {
		name string
		eval func(blue []bool, loads []int) float64
	}{
		{"utilization", func(blue []bool, loads []int) float64 {
			return reduce.Utilization(tr, loads, blue)
		}},
		{"completion time", func(blue []bool, loads []int) float64 {
			return timesim.Run(tr, loads, blue).Completion
		}},
		{"bottleneck link", func(blue []bool, loads []int) float64 {
			return reduce.BottleneckUtilization(tr, loads, blue)
		}},
	}

	fig := &Figure{
		ID:    "ext-objectives",
		Title: "Extension: does minimizing φ also minimize completion time and bottleneck load? (Sec. 8 conjecture)",
	}
	xs := make([]float64, len(cfg.Ks))
	for i, k := range cfg.Ks {
		xs[i] = float64(k)
	}
	for _, metric := range metrics {
		accs := make([]*stats.Accumulator, len(strategies))
		for i := range accs {
			accs[i] = stats.NewAccumulator(len(cfg.Ks))
		}
		rng := rand.New(rand.NewSource(cfg.Seed))
		for rep := 0; rep < cfg.Reps; rep++ {
			loads := load.Generate(tr, load.PaperPowerLaw(), load.LeavesOnly, rng)
			allRed := metric.eval(make([]bool, tr.N()), loads)
			for si, s := range strategies {
				row := make([]float64, len(cfg.Ks))
				for ki, k := range cfg.Ks {
					blue := s.Place(tr, loads, nil, k)
					row[ki] = metric.eval(blue, loads) / allRed
				}
				accs[si].Add(row)
			}
		}
		sp := Subplot{Name: metric.name + " (vs all-red)", XLabel: "k", YLabel: "normalized " + metric.name}
		for si, s := range strategies {
			sp.Series = append(sp.Series, Series{Label: s.Name(), X: xs, Y: accs[si].Mean(), Err: accs[si].StdErr()})
		}
		fig.Subplots = append(fig.Subplots, sp)
	}
	return fig, nil
}

// ExtTopologiesConfig parameterizes the robustness extension: SOAR's
// advantage over the best baseline across tree families beyond the
// paper's complete binary trees.
type ExtTopologiesConfig struct {
	// Switches is the approximate network size per family.
	Switches int
	// K is the aggregation budget.
	K int
	// Reps averages over random workloads (and random trees where the
	// family is random).
	Reps int
	Seed int64
}

// DefaultExtTopologies uses paper-comparable sizes.
func DefaultExtTopologies() ExtTopologiesConfig {
	return ExtTopologiesConfig{Switches: 255, K: 16, Reps: 10, Seed: 9}
}

// QuickExtTopologies is a reduced instance for tests.
func QuickExtTopologies() ExtTopologiesConfig {
	return ExtTopologiesConfig{Switches: 40, K: 4, Reps: 2, Seed: 9}
}

// ExtTopologies runs SOAR and the baselines over binary, 4-ary, path,
// star, random-recursive and scale-free trees with power-law loads,
// reporting each strategy's mean normalized utilization. It demonstrates
// that SOAR's dominance is structural, not an artifact of balanced
// binary trees.
func ExtTopologies(cfg ExtTopologiesConfig) (*Figure, error) {
	type family struct {
		name  string
		build func(rng *rand.Rand) *topology.Tree
		place load.Placement
	}
	families := []family{
		{"binary tree", func(*rand.Rand) *topology.Tree {
			lv := 1
			for (1<<lv)-1 < cfg.Switches {
				lv++
			}
			return topology.CompleteBinary(lv)
		}, load.LeavesOnly},
		{"4-ary tree", func(*rand.Rand) *topology.Tree {
			lv, n := 1, 1
			for n < cfg.Switches {
				lv++
				n = n*4 + 1
			}
			return topology.CompleteKAry(4, lv)
		}, load.LeavesOnly},
		{"path", func(*rand.Rand) *topology.Tree {
			return topology.Path(cfg.Switches)
		}, load.AllNodes},
		{"star", func(*rand.Rand) *topology.Tree {
			return topology.Star(cfg.Switches)
		}, load.AllNodes},
		{"random recursive", func(rng *rand.Rand) *topology.Tree {
			return topology.RandomRecursive(cfg.Switches, rng)
		}, load.AllNodes},
		{"scale-free", func(rng *rand.Rand) *topology.Tree {
			return topology.ScaleFree(cfg.Switches, rng)
		}, load.AllNodes},
	}
	strategies := []placement.Strategy{
		core.Strategy{}, placement.Top{}, placement.Max{},
		placement.MaxDegree{}, placement.Greedy{},
	}
	fig := &Figure{
		ID:    "ext-topologies",
		Title: fmt.Sprintf("Extension: strategy robustness across tree families (k=%d)", cfg.K),
	}
	sp := Subplot{Name: "normalized utilization by family", XLabel: "family index", YLabel: "utilization (vs all-red)"}
	xs := make([]float64, len(families))
	for i := range xs {
		xs[i] = float64(i)
	}
	accs := make([]*stats.Accumulator, len(strategies))
	for i := range accs {
		accs[i] = stats.NewAccumulator(len(families))
	}
	for rep := 0; rep < cfg.Reps; rep++ {
		rows := make([][]float64, len(strategies))
		for i := range rows {
			rows[i] = make([]float64, len(families))
		}
		for fi, fam := range families {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*31 + int64(fi)))
			tr := fam.build(rng)
			loads := load.Generate(tr, load.PaperPowerLaw(), fam.place, rng)
			allRed := reduce.Utilization(tr, loads, make([]bool, tr.N()))
			for si, s := range strategies {
				rows[si][fi] = placement.Evaluate(s, tr, loads, nil, cfg.K) / allRed
			}
		}
		for si := range strategies {
			accs[si].Add(rows[si])
		}
	}
	for si, s := range strategies {
		sp.Series = append(sp.Series, Series{Label: s.Name(), X: xs, Y: accs[si].Mean(), Err: accs[si].StdErr()})
	}
	sp.Name += " (0=binary, 1=4-ary, 2=path, 3=star, 4=random, 5=scale-free)"
	fig.Subplots = append(fig.Subplots, sp)
	return fig, nil
}
