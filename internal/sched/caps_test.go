package sched

import (
	"testing"

	"soar/internal/topology"
)

// TestSchedulerHeterogeneousCapacities runs the scheduler over a
// ToR-only deployment: leaves serve two tenants each, every internal
// switch is a plain forwarder. Leases must only ever land on leaves,
// capacity accounting must stay exact, and exhausting the fabric must
// degrade to all-red placements instead of oversubscribing.
func TestSchedulerHeterogeneousCapacities(t *testing.T) {
	tr := topology.MustBT(32)
	caps := make([]int, tr.N())
	for _, v := range tr.Leaves() {
		caps[v] = 2
	}
	s := New(tr, Config{Capacities: caps, Workers: 2})
	defer s.Close()

	leaves := tr.Leaves()
	totalSlots := 2 * len(leaves)
	used := 0
	for i := 0; i < totalSlots+5; i++ {
		load := make([]int, tr.N())
		for j, v := range leaves {
			if (i+j)%3 == 0 {
				load[v] = 1 + j%4
			}
		}
		load[leaves[i%len(leaves)]] += 2
		lease, err := s.Place(load, 3)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range lease.Blue {
			if !tr.IsLeaf(v) {
				t.Fatalf("tenant %d leased internal switch %d", i, v)
			}
		}
		used += len(lease.Blue)
	}
	if used > totalSlots {
		t.Fatalf("leased %d slots, fabric has %d", used, totalSlots)
	}

	st := s.Snapshot()
	if st.CapacityTotal != int64(totalSlots) {
		t.Fatalf("CapacityTotal = %d, want %d", st.CapacityTotal, totalSlots)
	}
	if st.CapacityUsed != int64(used) {
		t.Fatalf("CapacityUsed = %d, want %d", st.CapacityUsed, used)
	}
	for v, r := range s.Residual() {
		if r < 0 || r > caps[v] {
			t.Fatalf("switch %d residual %d outside [0, %d]", v, r, caps[v])
		}
	}
}

func TestSchedulerRejectsBadCapacities(t *testing.T) {
	tr := topology.MustBT(8)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-length Capacities accepted")
		}
	}()
	s := New(tr, Config{Capacities: []int{1, 2}})
	s.Close()
}

func TestLedgerFromCaps(t *testing.T) {
	l := NewLedgerFromCaps([]int{0, 3, -2})
	if l.N() != 3 {
		t.Fatalf("N = %d, want 3", l.N())
	}
	for v, want := range []int{0, 3, 0} {
		if l.Initial(v) != want || l.Residual(v) != want {
			t.Fatalf("switch %d: initial %d residual %d, want %d", v, l.Initial(v), l.Residual(v), want)
		}
		if l.Avail()[v] != (want > 0) {
			t.Fatalf("switch %d availability wrong", v)
		}
	}
	l.Charge(1)
	if l.Residual(1) != 2 || !l.Avail()[1] {
		t.Fatal("charge bookkeeping wrong")
	}
}
