package naas

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"soar/internal/obs"
)

// HTTP API
//
//	POST   /v1/tenants        {"load": [...], "k": 4}      → Lease JSON
//	GET    /v1/tenants/{id}                                 → Lease JSON
//	DELETE /v1/tenants/{id}                                 → 204
//	GET    /v1/stats                                        → Stats JSON (+ cluster-run summary)
//	GET    /v1/residual                                     → {"residual": [...]}
//	GET    /v1/checkpoint                                   → checkpoint stream (octet-stream)
//	POST   /v1/checkpoint                                   → {"path": ..., "bytes": n} (durable save)
//	POST   /v1/cluster        {"id": 7}                     → cluster-run JSON (loopback replay)
//	GET    /v1/trace?n=64                                   → {"spans": [...]} newest first
//	GET    /v1/healthz                                      → 200 {"status":"ok"} (liveness)
//	GET    /v1/readyz                                       → 200 ready / 503 not restored or draining
//	GET    /metrics                                         → Prometheus text exposition
//
// All request and response bodies are JSON — except /metrics, which
// speaks the Prometheus text format (obs.TextContentType) and
// /v1/checkpoint GET, which streams the binary checkpoint; errors come
// back as {"error": "..."} with an appropriate status code.

// placeRequest is the admission request body.
type placeRequest struct {
	Load []int `json:"load"`
	K    int   `json:"k"`
}

// leaseJSON is the wire form of a Lease.
type leaseJSON struct {
	ID     int64   `json:"id"`
	Blue   []int   `json:"blue"`
	K      int     `json:"k"`
	Phi    float64 `json:"phi"`
	AllRed float64 `json:"all_red"`
	Ratio  float64 `json:"ratio"`
}

func toLeaseJSON(l *Lease) leaseJSON {
	blue := l.Blue
	if blue == nil {
		blue = []int{}
	}
	return leaseJSON{
		ID: l.ID, Blue: blue, K: l.K, Phi: l.Phi, AllRed: l.AllRed, Ratio: l.Ratio(),
	}
}

// Handler returns the service's HTTP control plane.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/tenants", s.handleTenants)
	mux.HandleFunc("/v1/tenants/", s.handleTenantByID)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/residual", s.handleResidual)
	mux.HandleFunc("/v1/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("/v1/cluster", s.handleCluster)
	mux.HandleFunc("/v1/trace", s.handleTrace)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// handleHealthz is the liveness probe: answering at all is the signal,
// so it never consults service state.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is the readiness probe: 200 only when the service has
// its state in place (restored, for a daemon with a checkpoint) and is
// not draining toward shutdown.
func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	switch {
	case s.Ready():
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	case s.Draining():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	default:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not ready"})
	}
}

func (s *Service) handleTenants(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req placeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	lease, err := s.Place(req.Load, req.K)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, toLeaseJSON(lease))
}

func (s *Service) handleTenantByID(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/tenants/")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad tenant id %q", idStr))
		return
	}
	switch r.Method {
	case http.MethodGet:
		lease, err := s.Lookup(id)
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, toLeaseJSON(lease))
	case http.MethodDelete:
		if err := s.Release(id); err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET or DELETE only"))
	}
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	// The cluster summary rides along as extra JSON fields; clients
	// decoding into the bare Stats struct silently ignore them.
	writeJSON(w, http.StatusOK, struct {
		Stats
		ClusterStats
	}{s.Snapshot(), s.ClusterSnapshot()})
}

func (s *Service) handleResidual(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	writeJSON(w, http.StatusOK, map[string][]int{"residual": s.Residual()})
}

// handleCheckpoint serves the crash-recovery surface: GET streams a
// consistent checkpoint of the control plane to the caller (an operator
// pulling a backup), POST asks the daemon to persist one to its
// configured path (503 when the daemon runs without one).
func (s *Service) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		// Encode to a buffer first so a failure can still produce an
		// error status instead of a torn stream.
		var buf bytes.Buffer
		if err := s.Checkpoint(&buf); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
		w.WriteHeader(http.StatusOK)
		buf.WriteTo(w) // best effort; the status line is already out
	case http.MethodPost:
		if s.save == nil {
			httpError(w, http.StatusServiceUnavailable, errors.New("no checkpoint path configured"))
			return
		}
		path, size, err := s.save()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{"path": path, "bytes": size})
	default:
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET or POST only"))
	}
}

// clusterRequest asks for a loopback cluster replay of one lease.
type clusterRequest struct {
	ID int64 `json:"id"`
}

// clusterResultJSON is the wire form of a cluster.Result. Blue is the
// list of blue switch ids, matching the lease JSON convention.
type clusterResultJSON struct {
	Blue           []int   `json:"blue"`
	Cost           float64 `json:"cost"`
	ReduceMessages int64   `json:"reduce_messages"`
	ReducePhi      float64 `json:"reduce_phi"`
	Degraded       bool    `json:"degraded"`
	Attempts       int     `json:"attempts"`
	Cause          string  `json:"cause,omitempty"`
}

// handleCluster replays a lease's problem over the loopback cluster
// runtime (see Service.ClusterRun).
func (s *Service) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req clusterRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	res, err := s.ClusterRun(r.Context(), req.ID)
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, ErrNotFound) {
			status = http.StatusNotFound
		}
		httpError(w, status, err)
		return
	}
	out := clusterResultJSON{
		Blue:           []int{},
		Cost:           res.Cost,
		ReduceMessages: res.ReduceMessages,
		ReducePhi:      res.ReducePhi,
		Degraded:       res.Degraded,
		Attempts:       res.Attempts,
	}
	for v, b := range res.Blue {
		if b {
			out.Blue = append(out.Blue, v)
		}
	}
	if res.Cause != nil {
		out.Cause = res.Cause.Error()
	}
	writeJSON(w, http.StatusOK, out)
}

// handleTrace dumps the newest spans from the service's trace ring.
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	n := 64
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad span count %q", q))
			return
		}
		n = v
	}
	spans := s.Trace().Dump(n)
	if spans == nil {
		spans = []obs.SpanEvent{}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"spans": spans})
}

// handleMetrics serves the Prometheus text exposition of every family
// the service records: scheduler admission/batch/solve, memo, repack,
// checkpoint, and loopback cluster runs.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	// Render to a buffer first so a (never-expected) encoding failure
	// cannot emit a torn scrape.
	var buf bytes.Buffer
	if err := s.Registry().WriteText(&buf); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", obs.TextContentType)
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	w.WriteHeader(http.StatusOK)
	buf.WriteTo(w) // best effort; the status line is already out
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v) // best effort; the status line is already out
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
