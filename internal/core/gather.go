package core

import (
	"math"

	"soar/internal/topology"
)

// nodeTables holds the DP state of one switch.
type nodeTables struct {
	// x[l*(k+1)+i] = X_v(ℓ=l, i): minimal potential over colorings of T_v
	// with at most i blue switches, given the nearest blue ancestor (or
	// d) is l hops above v. Non-increasing in i.
	x []float64
	// isBlue mirrors x and records whether the minimum colors v blue
	// (strictly better than red; ties resolve to red, as in the paper's
	// Alg. 4 line 6).
	isBlue []bool
	// splits[m-2] records, for the merge of child m (m = 2..C(v)), the
	// optimal number of blue switches assigned to that child's subtree.
	// Layout: color (0 red, 1 blue) major, then l, then i:
	// splits[m-2][(color*(depth+1)+l)*(k+1)+i].
	splits [][]int32
}

// Gather runs SOAR-Gather (paper Alg. 3) serially in post-order and
// returns the full DP state. avail == nil means every switch may be blue.
// A negative k is treated as 0.
func Gather(t *topology.Tree, load []int, avail []bool, k int) *Tables {
	validate(t, load, avail)
	if k < 0 {
		k = 0
	}
	tb := &Tables{
		t:     t,
		load:  load,
		k:     k,
		nodes: make([]nodeTables, t.N()),
	}
	subLoad := t.SubtreeLoads(load)
	for _, v := range t.PostOrder() {
		tb.nodes[v] = computeNode(t, v, load[v], subLoad[v] > 0, isAvail(avail, v), k, childTables(tb, v), true)
	}
	return tb
}

func isAvail(avail []bool, v int) bool { return avail == nil || avail[v] }

func childTables(tb *Tables, v int) []*nodeTables {
	cs := tb.t.Children(v)
	out := make([]*nodeTables, len(cs))
	for i, c := range cs {
		out[i] = &tb.nodes[c]
	}
	return out
}

// computeNode fills the DP tables of one switch from its children's
// tables. It is shared by the serial, distributed and TCP engines.
//
// Parameters: load is L(v); hasLoad is whether T_v's total load is
// positive (a blue v sends min(1, subtree load) messages upward — see the
// package comment of internal/reduce); avail is v ∈ Λ.
func computeNode(t *topology.Tree, v, load int, hasLoad, avail bool, k int, children []*nodeTables, recordSplits bool) nodeTables {
	depth := t.Depth(v)
	stride := k + 1
	nt := nodeTables{
		x:      make([]float64, (depth+1)*stride),
		isBlue: make([]bool, (depth+1)*stride),
	}
	bsend := 0.0
	if hasLoad {
		bsend = 1.0
	}
	if len(children) == 0 {
		// Leaf (paper Alg. 3 lines 1-9, with the min() refinement so the
		// table stays optimal under "at most i" semantics and zero loads).
		for l := 0; l <= depth; l++ {
			rho := t.RhoUp(v, l)
			red := rho * float64(load)
			blue := rho * bsend
			nt.x[l*stride] = red
			for i := 1; i <= k; i++ {
				idx := l*stride + i
				if avail && blue < red {
					nt.x[idx] = blue
					nt.isBlue[idx] = true
				} else {
					nt.x[idx] = red
				}
			}
		}
		return nt
	}

	if recordSplits {
		nt.splits = make([][]int32, len(children)-1)
		for m := range nt.splits {
			nt.splits[m] = make([]int32, 2*(depth+1)*stride)
		}
	}
	yr := make([]float64, stride)
	yb := make([]float64, stride)
	newYR := make([]float64, stride)
	newYB := make([]float64, stride)
	for l := 0; l <= depth; l++ {
		rho := t.RhoUp(v, l)
		// m = 1 (paper Alg. 3 lines 14-19): fold in the first child.
		c1 := children[0]
		for i := 0; i <= k; i++ {
			yr[i] = c1.x[(l+1)*stride+i] + rho*float64(load)
			if avail && i >= 1 {
				yb[i] = c1.x[1*stride+(i-1)] + rho*bsend
			} else {
				yb[i] = math.Inf(1)
			}
		}
		// m ≥ 2 (paper Alg. 3 lines 20-25): min-plus merge per child,
		// recording the argmin split for the traceback (unless the caller
		// chose the low-memory engine, which re-derives argmins on demand).
		for m := 1; m < len(children); m++ {
			cm := children[m]
			xBlue := cm.x[1*stride : 1*stride+stride]        // child sees ℓ = 1 below a blue v
			xRed := cm.x[(l+1)*stride : (l+1)*stride+stride] // child sees ℓ+1 below a red v
			for i := 0; i <= k; i++ {
				bestR, argR := math.Inf(1), 0
				bestB, argB := math.Inf(1), 0
				for j := 0; j <= i; j++ {
					if c := yr[i-j] + xRed[j]; c < bestR {
						bestR, argR = c, j
					}
					if c := yb[i-j] + xBlue[j]; c < bestB {
						bestB, argB = c, j
					}
				}
				newYR[i], newYB[i] = bestR, bestB
				if recordSplits {
					sp := nt.splits[m-1]
					sp[(0*(depth+1)+l)*stride+i] = int32(argR)
					sp[(1*(depth+1)+l)*stride+i] = int32(argB)
				}
			}
			yr, newYR = newYR, yr
			yb, newYB = newYB, yb
		}
		// X_v(ℓ, i) = min over v's color (paper Alg. 3 line 28).
		for i := 0; i <= k; i++ {
			idx := l*stride + i
			if yb[i] < yr[i] {
				nt.x[idx] = yb[i]
				nt.isBlue[idx] = true
			} else {
				nt.x[idx] = yr[i]
			}
		}
	}
	return nt
}
