// Package chaos injects deterministic, seeded faults into network
// transports. It wraps net.Conn, net.Listener and dial functions so that
// the TCP deployment of SOAR (internal/cluster) can be exercised — in
// tests, in the chaos soak, and interactively from soarctl — against the
// failure modes the paper's asynchronous message-passing model (Sec. 4.2)
// must survive in a long-running deployment:
//
//   - dial failures: a dial attempt errors before any byte is exchanged,
//     the classic transient fault a retry policy must absorb;
//   - connection resets: a connection is closed with SO_LINGER(0) so the
//     peer observes a hard RST instead of a clean FIN;
//   - mid-frame cuts: a connection is severed after a byte budget drawn
//     to land *inside* a frame, so receivers see truncated messages;
//   - delays: individual reads/writes stall, exercising per-frame I/O
//     deadlines independent of any context deadline;
//   - per-node crash schedules: all connections belonging to one node
//     share a byte budget after which every one of them is severed,
//     simulating the node's process dying mid-protocol;
//   - targeted kills: KillNode severs a node's live connections with a
//     hard RST and fails its future dials and accepts until HealNode,
//     the primitive the failover soak (internal/ha) uses to take a
//     shard primary down at a chosen moment rather than a drawn one.
//
// All randomness flows from one seeded source, so a given seed yields a
// reproducible sequence of fault draws (the interleaving of concurrent
// connections still depends on goroutine scheduling; determinism here
// means the fates drawn, not the wall-clock schedule).
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"soar/internal/obs"
)

// ErrInjected is the error returned by operations on a connection the
// injector severed (cut, reset or node crash) and by injected dial
// failures. Transports should treat it — like any I/O error from a
// faulty peer — as transient and retriable.
var ErrInjected = errors.New("chaos: injected fault")

// Config tunes an Injector. The zero value injects nothing; every
// probability is in [0, 1] and evaluated independently per connection
// (Cut, Reset) or per dial attempt (DialFail). Delay is evaluated per
// read/write operation.
type Config struct {
	// Seed feeds the injector's random source; equal seeds draw equal
	// fault sequences.
	Seed int64
	// DialFail is the probability a dial attempt fails outright.
	DialFail float64
	// Cut is the probability a new connection is severed after a random
	// byte budget (uniform in [1, CutBytes]), which lands mid-frame for
	// any multi-byte frame.
	Cut float64
	// CutBytes bounds the cut byte budget (default 256).
	CutBytes int
	// Reset is the probability a new connection is closed with
	// SO_LINGER(0) — a hard TCP RST — after a random byte budget.
	Reset float64
	// Delay is the probability one read or write stalls for a random
	// duration in (0, MaxDelay].
	Delay float64
	// MaxDelay bounds injected stalls (default 2ms).
	MaxDelay time.Duration
	// Crash schedules node deaths: Crash[v] = b severs every connection
	// belonging to node v (dialed by it or accepted on its listener)
	// once the node has moved b bytes in total; b = 0 kills the node's
	// very first operation. Nodes absent from the map never crash.
	Crash map[int]int64
}

// Stats counts the faults an injector has actually delivered. All
// counters are cumulative and safe to read concurrently via
// Injector.Stats (see its doc comment for the exact guarantee).
type Stats struct {
	// Dials counts dial attempts seen; DialsFailed those injected to fail.
	Dials, DialsFailed int64
	// Conns counts connections wrapped.
	Conns int64
	// Cuts, Resets count connections severed mid-stream, by kind.
	Cuts, Resets int64
	// Delays counts stalled read/write operations.
	Delays int64
	// Crashes counts connections severed by a node crash schedule.
	Crashes int64
	// Kills counts connections severed or refused by KillNode.
	Kills int64
}

// Injector draws fault fates from one seeded source and applies them to
// the connections it wraps. Safe for concurrent use.
type Injector struct {
	cfg Config

	// mu guards rng, the single source every fate is drawn from.
	//
	//soar:lockorder mu
	mu  sync.Mutex //soar:critical guards rng
	rng *rand.Rand

	crash sync.Map // node int → *atomic.Int64 remaining byte budget

	// killMu guards the administrative kill state: which nodes are down
	// and which wrapped connections are live per node. Never nested with
	// mu (fate draws and kill bookkeeping are separate steps).
	//
	//soar:lockorder killMu
	killMu sync.Mutex //soar:critical guards killed, live
	killed map[int]bool
	live   map[int]map[*faultConn]struct{}

	dials, dialsFailed, conns, cuts, resets, delays, crashes, kills atomic.Int64
}

// New creates an injector for the given fault plan.
func New(cfg Config) *Injector {
	if cfg.CutBytes <= 0 {
		cfg.CutBytes = 256
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 2 * time.Millisecond
	}
	in := &Injector{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		killed: make(map[int]bool),
		live:   make(map[int]map[*faultConn]struct{}),
	}
	for v, b := range cfg.Crash {
		if b < 0 {
			b = 0
		}
		left := new(atomic.Int64)
		left.Store(b)
		in.crash.Store(v, left)
	}
	return in
}

// Stats returns a snapshot of the faults delivered so far.
//
// Concurrency: Stats is safe to call from any goroutine at any time,
// including while connections are being wrapped, severed and stalled —
// every counter is an atomic the fault paths update individually. The
// snapshot is not a consistent cut across counters (a scrape may
// observe a connection counted in Conns before its cut lands in Cuts),
// but each field is a valid point-in-time read and all are monotone.
// TestStatsConcurrentWithFaults drives this under the race detector.
func (in *Injector) Stats() Stats {
	return Stats{
		Dials:       in.dials.Load(),
		DialsFailed: in.dialsFailed.Load(),
		Conns:       in.conns.Load(),
		Cuts:        in.cuts.Load(),
		Resets:      in.resets.Load(),
		Delays:      in.delays.Load(),
		Crashes:     in.crashes.Load(),
		Kills:       in.kills.Load(),
	}
}

// RegisterMetrics exposes the injector's counters in reg as the
// soar_chaos_* families: dial attempts, wrapped connections, and one
// soar_chaos_faults_total series per fault kind (dial_failure, cut,
// reset, delay, crash). The samples read the same atomics Stats does,
// at scrape time — registering costs the fault paths nothing.
func (in *Injector) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("soar_chaos_dials_total",
		"Dial attempts seen by the fault injector.", nil,
		func() float64 { return float64(in.dials.Load()) })
	reg.CounterFunc("soar_chaos_conns_total",
		"Connections wrapped by the fault injector.", nil,
		func() float64 { return float64(in.conns.Load()) })
	for _, f := range []struct {
		kind string
		c    *atomic.Int64
	}{
		{"dial_failure", &in.dialsFailed},
		{"cut", &in.cuts},
		{"reset", &in.resets},
		{"delay", &in.delays},
		{"crash", &in.crashes},
		{"kill", &in.kills},
	} {
		c := f.c
		reg.CounterFunc("soar_chaos_faults_total",
			"Faults delivered by the injector, by kind.", obs.Labels{"kind": f.kind},
			func() float64 { return float64(c.Load()) })
	}
}

// KillNode takes node down administratively: every live connection the
// injector has wrapped for it — dialed by it or accepted on its
// listener — is severed with a hard RST, and until HealNode every
// future dial from it fails and every connection accepted on its
// listener arrives already dead. Unlike the seeded Crash schedule this
// is deterministic in time, not in bytes: the failover soak calls it to
// kill a shard primary at a chosen moment mid-batch. Returns the number
// of live connections severed; killing an already-dead node is a no-op.
func (in *Injector) KillNode(node int) int {
	in.killMu.Lock()
	if in.killed[node] {
		in.killMu.Unlock()
		return 0
	}
	in.killed[node] = true
	conns := in.live[node]
	delete(in.live, node)
	in.killMu.Unlock()
	severed := 0
	for c := range conns {
		if c.downed.CompareAndSwap(false, true) {
			if tc, ok := c.Conn.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
			c.Conn.Close()
			in.kills.Add(1)
			severed++
		}
	}
	return severed
}

// HealNode brings a killed node back: future dials and accepts for it
// behave normally again (connections severed by the kill stay dead —
// the node's transport must reconnect, as a restarted process would).
func (in *Injector) HealNode(node int) {
	in.killMu.Lock()
	delete(in.killed, node)
	in.killMu.Unlock()
}

// NodeKilled reports whether node is currently administratively down.
func (in *Injector) NodeKilled(node int) bool {
	in.killMu.Lock()
	defer in.killMu.Unlock()
	return in.killed[node]
}

// dropLive removes a closed connection from the node registry.
func (in *Injector) dropLive(c *faultConn) {
	in.killMu.Lock()
	if set := in.live[c.node]; set != nil {
		delete(set, c)
	}
	in.killMu.Unlock()
}

// fate is one connection's drawn fault plan.
type fate struct {
	cutAfter  int64 // sever after this many bytes (-1: never)
	reset     bool  // sever with SO_LINGER(0) instead of a plain close
	delayProb float64
	maxDelay  time.Duration
	delaySeed int64
	crashLeft *atomic.Int64 // shared per-node byte budget (nil: no schedule)
}

// draw rolls one connection's fate under mu, keeping the draw sequence a
// pure function of the seed and draw order.
func (in *Injector) draw(node int) fate {
	in.mu.Lock()
	defer in.mu.Unlock()
	f := fate{cutAfter: -1, delayProb: in.cfg.Delay, maxDelay: in.cfg.MaxDelay, delaySeed: in.rng.Int63()}
	if in.cfg.Cut > 0 && in.rng.Float64() < in.cfg.Cut {
		f.cutAfter = 1 + in.rng.Int63n(int64(in.cfg.CutBytes))
	} else if in.cfg.Reset > 0 && in.rng.Float64() < in.cfg.Reset {
		f.cutAfter = 1 + in.rng.Int63n(int64(in.cfg.CutBytes))
		f.reset = true
	}
	if left, ok := in.crash.Load(node); ok {
		f.crashLeft = left.(*atomic.Int64)
	}
	return f
}

// Dial returns a dialer compatible with cluster.Options.Dial: node is
// the dialing switch. With probability DialFail the attempt fails before
// touching the network; otherwise the established connection is wrapped
// with the node's drawn fate.
func (in *Injector) Dial(ctx context.Context, node int, addr string) (net.Conn, error) {
	in.dials.Add(1)
	in.killMu.Lock()
	dead := in.killed[node]
	in.killMu.Unlock()
	if dead {
		in.kills.Add(1)
		return nil, fmt.Errorf("chaos: dial %s from killed node %d: %w", addr, node, ErrInjected)
	}
	in.mu.Lock()
	fail := in.cfg.DialFail > 0 && in.rng.Float64() < in.cfg.DialFail
	in.mu.Unlock()
	if fail {
		in.dialsFailed.Add(1)
		return nil, fmt.Errorf("chaos: dial %s from node %d: %w", addr, node, ErrInjected)
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return in.wrapConn(node, conn), nil
}

// WrapListener wraps a node's listener so every accepted connection
// carries an injected fate. Compatible with cluster.Options.WrapListener.
func (in *Injector) WrapListener(node int, ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, in: in, node: node}
}

func (in *Injector) wrapConn(node int, conn net.Conn) net.Conn {
	in.conns.Add(1)
	f := in.draw(node)
	c := &faultConn{
		Conn: conn,
		in:   in,
		node: node,
		fate: f,
		rng:  rand.New(rand.NewSource(f.delaySeed)),
	}
	in.killMu.Lock()
	dead := in.killed[node]
	if !dead {
		set := in.live[node]
		if set == nil {
			set = make(map[*faultConn]struct{})
			in.live[node] = set
		}
		set[c] = struct{}{}
	}
	in.killMu.Unlock()
	if dead {
		// A killed node's listener still accepts at the TCP layer, but
		// the connection arrives already severed: returning it (rather
		// than an Accept error) keeps the host's accept loop alive.
		c.downed.Store(true)
		conn.Close()
		in.kills.Add(1)
	}
	return c
}

// faultListener wraps Accept; deadline control is forwarded so the
// cluster runtime's per-accept deadlines survive the wrapping.
type faultListener struct {
	net.Listener
	in   *Injector
	node int
}

func (l *faultListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.in.wrapConn(l.node, conn), nil
}

// SetDeadline forwards to the underlying listener when it supports
// deadlines (*net.TCPListener does).
func (l *faultListener) SetDeadline(t time.Time) error {
	if d, ok := l.Listener.(interface{ SetDeadline(time.Time) error }); ok {
		return d.SetDeadline(t)
	}
	return nil
}

// faultConn applies one fate to a real connection. The per-operation rng
// is connection-local but still locked: replication streams (internal/ha)
// drive one conn from a reader and a writer goroutine concurrently.
type faultConn struct {
	net.Conn
	in   *Injector
	node int
	fate fate

	rngMu sync.Mutex
	rng   *rand.Rand

	moved  atomic.Int64 // bytes moved through this conn (reads + writes)
	downed atomic.Bool  // severed by cut/reset/crash
}

// sever kills the connection, optionally with a hard RST.
func (c *faultConn) sever(reset bool) {
	if !c.downed.CompareAndSwap(false, true) {
		return
	}
	if reset {
		if tc, ok := c.Conn.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		c.in.resets.Add(1)
	} else {
		c.in.cuts.Add(1)
	}
	c.Conn.Close()
}

// charge accounts n transferred bytes against the cut and crash budgets
// and reports whether the connection should now be severed.
func (c *faultConn) charge(n int) bool {
	moved := c.moved.Add(int64(n))
	if c.fate.crashLeft != nil && c.fate.crashLeft.Add(-int64(n)) < 0 {
		c.in.crashes.Add(1)
		if c.downed.CompareAndSwap(false, true) {
			c.Conn.Close()
		}
		return true
	}
	if c.fate.cutAfter >= 0 && moved >= c.fate.cutAfter {
		c.sever(c.fate.reset)
		return true
	}
	return false
}

// stall injects one optional delay. The draw happens under rngMu; the
// sleep itself does not, so a stalled read never delays a concurrent
// write's fate draw.
func (c *faultConn) stall() {
	if c.fate.delayProb <= 0 {
		return
	}
	c.rngMu.Lock()
	var d time.Duration
	if c.rng.Float64() < c.fate.delayProb {
		d = time.Duration(1 + c.rng.Int63n(int64(c.fate.maxDelay)))
	}
	c.rngMu.Unlock()
	if d > 0 {
		c.in.delays.Add(1)
		time.Sleep(d)
	}
}

// Close deregisters the connection from the kill registry before
// closing it, so KillNode never holds references to gone connections.
func (c *faultConn) Close() error {
	c.in.dropLive(c)
	return c.Conn.Close()
}

func (c *faultConn) Read(p []byte) (int, error) {
	if c.downed.Load() {
		return 0, ErrInjected
	}
	c.stall()
	// Cap the read so a cut lands exactly on its byte budget, mid-frame.
	if c.fate.cutAfter >= 0 {
		if left := c.fate.cutAfter - c.moved.Load(); left > 0 && int64(len(p)) > left {
			p = p[:left]
		}
	}
	n, err := c.Conn.Read(p)
	if c.charge(n) && err == nil {
		return n, ErrInjected
	}
	return n, err
}

func (c *faultConn) Write(p []byte) (int, error) {
	if c.downed.Load() {
		return 0, ErrInjected
	}
	c.stall()
	if c.fate.cutAfter >= 0 {
		if left := c.fate.cutAfter - c.moved.Load(); left > 0 && int64(len(p)) > left {
			n, err := c.Conn.Write(p[:left])
			if c.charge(n) && err == nil {
				return n, ErrInjected
			}
			return n, err
		}
	}
	n, err := c.Conn.Write(p)
	if c.charge(n) && err == nil {
		return n, ErrInjected
	}
	return n, err
}
