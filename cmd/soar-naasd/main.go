// Command soar-naasd runs the SOAR Network-as-a-Service control plane:
// an HTTP daemon that leases in-network aggregation switches to tenants
// on a shared tree network (the NaaS offering the paper's introduction
// sketches).
//
//	soar-naasd -addr 127.0.0.1:7070 -topo bt -n 256 -capacity 4
//
// Admission is served by the internal/sched scheduler: arrivals batch
// inside -window, solve on a pool of -workers incremental engines, and
// a background re-packer (-repack-every, -repack-moves) recovers the
// utilization that tenant departures fragment away.
//
// The control plane is crash-recoverable: with -checkpoint set, the
// daemon restores the lease ledger from the file on start, snapshots it
// every -checkpoint-every (atomic rename, never a torn file), on demand
// via POST /v1/checkpoint, and once more on graceful shutdown (SIGINT
// or SIGTERM). Every save is bounded by -checkpoint-timeout: a hung
// disk abandons the write (it finishes in the background if the disk
// recovers) instead of wedging the ticker or blocking shutdown.
//
// The daemon is also replication-aware (internal/ha):
//
//	soar-naasd -shard 1 -replicas 2        # replicated, sharded control plane
//	soar-naasd -shard 1 -join HOST:PORT -join-shard 0
//
// With -shard L the fabric splits into per-pod shards rooted at tree
// level L, each served by one primary scheduler with -replicas warm
// standbys; failover is automatic and epoch-fenced, and clients keep
// talking to this one endpoint (admissions route to the shard their
// load lives in). GET /v1/shards shows membership. With -join the
// daemon instead attaches to a running primary's replication listener
// as an out-of-process warm replica: it mirrors the checkpoint and
// per-commit deltas, serves /v1/readyz as a standby (503), and
// promotes itself into a serving primary when the primary falls silent
// past the heartbeat budget.
//
// The daemon is observable in production terms: GET /metrics serves a
// Prometheus text scrape of every subsystem, GET /v1/trace dumps the
// newest per-stage spans, GET /v1/healthz and /v1/readyz are the
// probes a supervisor points at (readiness means restored and not
// draining — it flips before the final checkpoint so routing stops
// during drain), and -debug-addr starts a second listener serving
// net/http/pprof.
//
// API (JSON):
//
//	POST   /v1/tenants    {"load": [...], "k": 4} → lease
//	GET    /v1/tenants/{id}
//	DELETE /v1/tenants/{id}
//	GET    /v1/stats
//	GET    /v1/residual
//	GET    /v1/healthz     (liveness)
//	GET    /v1/readyz      (readiness: restored + not draining)
//	GET    /v1/shards      (sharded and join modes: membership)
//	GET    /v1/checkpoint  (octet-stream snapshot)
//	POST   /v1/checkpoint  (persist to -checkpoint path)
//	POST   /v1/cluster     {"id": 7} → loopback cluster replay of a lease
//	GET    /v1/trace?n=64  (newest spans, JSON)
//	GET    /metrics        (Prometheus text; sharded mode: ?shard=K)
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"soar/internal/ha"
	"soar/internal/naas"
	"soar/internal/sched"
	"soar/internal/topology"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	topo := flag.String("topo", "bt", "topology: bt or sf")
	topoFile := flag.String("topo-file", "", "load the network from a JSON file (overrides -topo; see topology.Encode)")
	n := flag.Int("n", 256, "network size")
	capacity := flag.Int("capacity", 4, "per-switch aggregation capacity (0 = unlimited)")
	seed := flag.Int64("seed", 1, "seed for random topologies")
	workers := flag.Int("workers", 0, "scheduler engine-pool size (0 = GOMAXPROCS)")
	window := flag.Duration("window", 200*time.Microsecond, "admission batching window")
	repackEvery := flag.Duration("repack-every", time.Second, "background re-packing period (0 = off)")
	repackMoves := flag.Int("repack-moves", 8, "migration budget per re-packing round")
	ckptPath := flag.String("checkpoint", "", "checkpoint file: restored on start if present, written periodically, on POST /v1/checkpoint and on shutdown (empty = off)")
	ckptEvery := flag.Duration("checkpoint-every", 30*time.Second, "periodic checkpoint interval (0 = only on demand and shutdown)")
	ckptTimeout := flag.Duration("checkpoint-timeout", 10*time.Second, "deadline per checkpoint save; a write that outlives it is abandoned to the background instead of wedging the ticker or shutdown (0 = wait forever)")
	shardLevel := flag.Int("shard", -1, "replicated mode: shard the fabric into per-pod subtrees rooted at this tree level, one primary + -replicas standbys each (-1 = single-node)")
	replicas := flag.Int("replicas", 1, "warm standbys per shard (with -shard)")
	haHeartbeat := flag.Duration("ha-heartbeat", 250*time.Millisecond, "primary heartbeat period (with -shard or -join)")
	haMiss := flag.Int("ha-miss", 4, "missed heartbeats before failover (with -shard or -join)")
	joinAddr := flag.String("join", "", "join a running primary's replication listener (host:port) as an out-of-process warm replica; requires -shard for the pod level")
	joinShard := flag.Int("join-shard", 0, "shard index to mirror (with -join)")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this second address (empty = off; keep it private)")
	flag.Parse()

	var tr *topology.Tree
	switch {
	case *topoFile != "":
		f, err := os.Open(*topoFile)
		if err != nil {
			log.Fatal(err)
		}
		tr, err = topology.Decode(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	case *topo == "bt":
		t, err := topology.BT(*n)
		if err != nil {
			log.Fatal(err)
		}
		tr = t
	case *topo == "sf":
		tr = topology.ScaleFree(*n, rand.New(rand.NewSource(*seed)))
	default:
		log.Fatalf("unknown -topo %q", *topo)
	}

	schedCfg := sched.Config{
		Capacity: *capacity,
		Workers:  *workers,
		Window:   *window,
		Repack:   sched.RepackConfig{Every: *repackEvery, MaxMoves: *repackMoves},
	}

	// SIGTERM is how process supervisors (systemd, Kubernetes) stop a
	// daemon; catching only os.Interrupt used to turn every supervised
	// stop into a crash that lost the final checkpoint.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Profiling lives on its own listener so an operator can bind it to
	// localhost while tenants reach the control plane on a shared
	// address; it dies with the process, no graceful shutdown needed.
	if *debugAddr != "" {
		go func() {
			dsrv := &http.Server{
				Addr:              *debugAddr,
				Handler:           debugMux(),
				ReadHeaderTimeout: 5 * time.Second,
			}
			log.Printf("soar-naasd: pprof on http://%s/debug/pprof/", *debugAddr)
			if err := dsrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("soar-naasd: debug server: %v", err)
			}
		}()
	}

	switch {
	case *joinAddr != "":
		if *shardLevel < 0 {
			log.Fatal("soar-naasd: -join requires -shard (the pod level the primary's cluster was built at)")
		}
		runJoin(ctx, tr, schedCfg, *addr, *joinAddr, *shardLevel, *joinShard, *haHeartbeat, *haMiss)
	case *shardLevel >= 0:
		if *ckptPath != "" {
			log.Fatal("soar-naasd: -checkpoint is incompatible with -shard: shards replicate to standbys instead of a file")
		}
		runSharded(ctx, tr, schedCfg, *addr, *shardLevel, *replicas, *haHeartbeat, *haMiss)
	default:
		runSingle(ctx, tr, schedCfg, *addr, *topo, *ckptPath, *ckptEvery, *ckptTimeout)
	}
}

// runSingle is the original one-process control plane, now with probe
// wiring (drain flips readiness before the final checkpoint) and
// deadline-bounded checkpoint saves.
func runSingle(ctx context.Context, tr *topology.Tree, cfg sched.Config, addr, topo, ckptPath string, ckptEvery, ckptTimeout time.Duration) {
	svc := naas.NewServiceWith(tr, cfg)
	defer svc.Close()
	svc.SetLogf(log.Printf) // surface degraded cluster runs in the daemon log

	bounded := func() (int64, error) {
		sctx := context.Background()
		if ckptTimeout > 0 {
			var cancel context.CancelFunc
			sctx, cancel = context.WithTimeout(sctx, ckptTimeout)
			defer cancel()
		}
		return saveCheckpointBounded(sctx, svc, ckptPath, writeCkptFile)
	}

	// Crash recovery: restore the control plane from the last checkpoint
	// before any traffic is served (Restore requires a quiescent
	// scheduler), then keep the file fresh — periodically, on demand via
	// POST /v1/checkpoint, and on shutdown. The service is not ready
	// until the restore lands.
	if ckptPath != "" {
		svc.SetReady(false)
		if err := restoreCheckpoint(svc, ckptPath); err != nil {
			log.Fatalf("soar-naasd: restore %s: %v", ckptPath, err)
		}
		svc.SetReady(true)
		svc.SetCheckpointSaver(func() (string, int64, error) {
			size, err := bounded()
			return ckptPath, size, err
		})
	}

	srv := &http.Server{
		Addr:              addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		<-ctx.Done()
		// Flip readiness first so supervisors stop routing, then drain
		// in-flight requests; the final checkpoint happens after the
		// listener closes, while /v1/readyz has long answered 503.
		svc.SetDraining(true)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()
	if ckptPath != "" && ckptEvery > 0 {
		go func() {
			tick := time.NewTicker(ckptEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if _, err := bounded(); err != nil {
						log.Printf("soar-naasd: periodic checkpoint: %v", err)
					}
				}
			}
		}()
	}

	fmt.Printf("soar-naasd: %d switches (%s), listening on %s (metrics at /metrics)\n",
		tr.N(), topo, addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// The listener has drained: no admission can race the final snapshot
	// into staleness that matters. Checkpoint before Close.
	if ckptPath != "" {
		if size, err := bounded(); err != nil {
			log.Printf("soar-naasd: shutdown checkpoint: %v", err)
		} else {
			log.Printf("soar-naasd: checkpointed %d bytes to %s", size, ckptPath)
		}
	}
}

// runSharded serves the fabric as a replicated, sharded control plane:
// per-pod primaries with warm standbys, epoch-fenced failover, and a
// shard-aware routing front on one address.
func runSharded(ctx context.Context, tr *topology.Tree, cfg sched.Config, addr string, level, replicas int, heartbeat time.Duration, miss int) {
	cl, err := ha.NewCluster(tr, ha.Options{
		Level:      level,
		Replicas:   replicas,
		Heartbeat:  heartbeat,
		MissBudget: miss,
		Sched:      cfg,
		Logf:       log.Printf,
	})
	if err != nil {
		log.Fatalf("soar-naasd: %v", err)
	}
	defer cl.Close()
	front := naas.NewSharded(cl)

	srv := &http.Server{
		Addr:              addr,
		Handler:           front.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		<-ctx.Done()
		front.SetDraining(true)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	fmt.Printf("soar-naasd: %d switches, %d shards × (1 primary + %d standbys), listening on %s\n",
		tr.N(), cl.Shards(), replicas, addr)
	for _, st := range cl.Status() {
		log.Printf("soar-naasd: shard %d: pod root %d, primary node %d at %s",
			st.Index, st.Root, st.PrimaryNode, st.PrimaryAddr)
	}
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}

// joinNode tags the out-of-process replica in logs and protocol frames;
// in-process replicas use (shard+1)*100+slot, so 999 cannot collide.
const joinNode = 999

// runJoin attaches to a running primary as an out-of-process warm
// replica. While mirroring it serves probes and metrics only (readyz
// 503 standby); when the primary falls silent past the heartbeat
// budget it promotes — checkpoint restore, delta replay, Audit — and
// swaps in the full serving API.
func runJoin(ctx context.Context, tr *topology.Tree, cfg sched.Config, addr, primary string, level, shard int, heartbeat time.Duration, miss int) {
	var handler atomic.Value // http.Handler, swapped on promotion
	var promoted atomic.Bool
	var mirror *ha.Mirror

	promote := func(lastEpoch uint64) {
		if !promoted.CompareAndSwap(false, true) {
			return
		}
		log.Printf("soar-naasd: primary silent past budget (last epoch %d), promoting", lastEpoch)
		sch, err := mirror.Promote(cfg)
		if err != nil {
			// The mirror is spent; without state there is nothing to
			// serve and a supervisor should restart us to re-join.
			log.Fatalf("soar-naasd: promotion failed: %v", err)
		}
		svc := naas.FromScheduler(sch)
		svc.SetLogf(log.Printf)
		handler.Store(svc.Handler())
		log.Printf("soar-naasd: serving shard %d as promoted primary (%d tenants)", shard, svc.Snapshot().Tenants)
	}

	m, err := ha.NewMirror(tr, level, primary, ha.MirrorConfig{
		Shard:      shard,
		Node:       joinNode,
		Heartbeat:  heartbeat,
		MissBudget: miss,
		Logf:       log.Printf,
		OnSilence:  promote,
	})
	if err != nil {
		log.Fatalf("soar-naasd: %v", err)
	}
	mirror = m
	defer m.Close()
	handler.Store(standbyMux(m))

	srv := &http.Server{
		Addr: addr,
		Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			handler.Load().(http.Handler).ServeHTTP(w, r)
		}),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	fmt.Printf("soar-naasd: joined %s as warm replica of shard %d, probes on %s\n", primary, shard, addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}

// standbyMux is the join-mode surface before promotion: liveness,
// standby readiness, replication progress, and the mirror's metrics.
func standbyMux(m *ha.Mirror) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/v1/readyz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "standby"})
	})
	mux.HandleFunc("/v1/shards", func(w http.ResponseWriter, r *http.Request) {
		st := m.Status()
		writeJSON(w, http.StatusOK, map[string]interface{}{
			"shard": m.Shard(), "synced": st.Synced, "epoch": st.Epoch,
			"seq": st.Seq, "journal": st.Journal,
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		if err := m.Registry().WriteText(&buf); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		buf.WriteTo(w)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// debugMux routes the standard pprof surface explicitly rather than
// leaning on DefaultServeMux, so nothing else the process imports can
// sneak handlers onto the debug listener.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// restoreCheckpoint replays path into svc; a missing file is a fresh
// start, not an error.
func restoreCheckpoint(svc *naas.Service, path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	if err := svc.Restore(f); err != nil {
		return err
	}
	log.Printf("soar-naasd: restored %d tenants from %s", svc.Snapshot().Tenants, path)
	return nil
}

// ckptMu serializes savers: the periodic ticker, POST /v1/checkpoint
// and the shutdown save all share one temp file. Saves try the lock
// rather than queue on it, so a save wedged on a hung disk surfaces as
// errCkptBusy instead of a pileup of blocked goroutines.
var ckptMu sync.Mutex //soar:critical guards the checkpoint temp file

// errCkptBusy reports a save attempted while another holds the disk.
var errCkptBusy = errors.New("a checkpoint save is already in flight")

// ckptSink persists encoded checkpoint bytes durably; split out so the
// hung-disk regression test can inject a sink that never returns.
type ckptSink func(path string, data []byte) (int64, error)

// saveCheckpoint writes a checkpoint to path with no deadline, for
// callers that own their own timeout.
func saveCheckpoint(svc *naas.Service, path string) (int64, error) {
	return saveCheckpointBounded(context.Background(), svc, path, writeCkptFile)
}

// saveCheckpointBounded snapshots svc in memory (fast, in-process) and
// hands the bytes to sink with ctx as the deadline. A sink that
// outlives ctx is abandoned: it keeps ckptMu until it returns — so no
// second writer can race it for the temp file and no goroutines pile
// up behind it — while the caller (the periodic ticker, the SIGTERM
// path) gets its error and moves on.
func saveCheckpointBounded(ctx context.Context, svc *naas.Service, path string, sink ckptSink) (int64, error) {
	if !ckptMu.TryLock() {
		return 0, errCkptBusy
	}
	var buf bytes.Buffer
	if err := svc.Checkpoint(&buf); err != nil {
		ckptMu.Unlock()
		return 0, err
	}
	type result struct {
		size int64
		err  error
	}
	done := make(chan result, 1)
	go func() {
		defer ckptMu.Unlock()
		size, err := sink(path, buf.Bytes())
		done <- result{size, err}
	}()
	select {
	case r := <-done:
		return r.size, r.err
	case <-ctx.Done():
		return 0, fmt.Errorf("save to %s abandoned: %w", path, ctx.Err())
	}
}

// writeCkptFile lands data at path atomically: a crash while writing
// leaves the previous checkpoint intact, never a torn file.
func writeCkptFile(path string, data []byte) (int64, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return int64(len(data)), nil
}
