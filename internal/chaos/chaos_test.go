package chaos

import (
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// echoServer accepts connections on ln and echoes bytes back until EOF.
func echoServer(t *testing.T, ln net.Listener) {
	t.Helper()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				io.Copy(conn, conn)
			}()
		}
	}()
}

func newLoopListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	return ln
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	ln := newLoopListener(t)
	echoServer(t, ln)
	in := New(Config{Seed: 1})
	conn, err := in.Dial(context.Background(), 0, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("hello, network")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != string(msg) {
		t.Fatalf("echoed %q, want %q", buf, msg)
	}
	st := in.Stats()
	if st.DialsFailed+st.Cuts+st.Resets+st.Crashes != 0 {
		t.Fatalf("zero config delivered faults: %+v", st)
	}
}

func TestDialFailuresAreInjectedAndCounted(t *testing.T) {
	ln := newLoopListener(t)
	echoServer(t, ln)
	in := New(Config{Seed: 7, DialFail: 1})
	_, err := in.Dial(context.Background(), 3, ln.Addr().String())
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("dial error %v, want ErrInjected", err)
	}
	if st := in.Stats(); st.DialsFailed != 1 || st.Dials != 1 {
		t.Fatalf("stats %+v, want 1 failed dial of 1", st)
	}
}

func TestCutSeversMidStream(t *testing.T) {
	ln := newLoopListener(t)
	echoServer(t, ln)
	in := New(Config{Seed: 42, Cut: 1, CutBytes: 8})
	conn, err := in.Dial(context.Background(), 0, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Move more than CutBytes through the connection; the cut must fire.
	var sawErr error
	for i := 0; i < 8 && sawErr == nil; i++ {
		_, sawErr = conn.Write(make([]byte, 4))
	}
	if sawErr == nil {
		t.Fatal("connection survived writes beyond its cut budget")
	}
	if st := in.Stats(); st.Cuts != 1 {
		t.Fatalf("stats %+v, want 1 cut", st)
	}
	// Subsequent operations fail fast.
	if _, err := conn.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-cut write error %v, want ErrInjected", err)
	}
	if _, err := conn.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-cut read error %v, want ErrInjected", err)
	}
}

func TestCrashScheduleSeversEveryNodeConn(t *testing.T) {
	ln := newLoopListener(t)
	echoServer(t, ln)
	in := New(Config{Seed: 3, Crash: map[int]int64{5: 10}})
	// Two connections for node 5 share the 10-byte budget.
	c1, err := in.Dial(context.Background(), 5, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := in.Dial(context.Background(), 5, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c1.Write(make([]byte, 8)); err != nil {
		t.Fatalf("write within budget: %v", err)
	}
	if _, err := c2.Write(make([]byte, 8)); err == nil {
		t.Fatal("second conn exceeded the node budget without error")
	}
	if st := in.Stats(); st.Crashes == 0 {
		t.Fatalf("stats %+v, want ≥ 1 crash", st)
	}
	// A non-scheduled node is unaffected.
	c3, err := in.Dial(context.Background(), 6, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if _, err := c3.Write(make([]byte, 64)); err != nil {
		t.Fatalf("unscheduled node write: %v", err)
	}
}

func TestWrapListenerInjectsOnAccept(t *testing.T) {
	raw := newLoopListener(t)
	in := New(Config{Seed: 9, Cut: 1, CutBytes: 4})
	ln := in.WrapListener(2, raw)
	got := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			got <- err
			return
		}
		defer conn.Close()
		_, err = io.Copy(io.Discard, conn)
		got <- err
	}()
	conn, err := net.Dial("tcp", raw.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write(make([]byte, 64))
	select {
	case err := <-got:
		if err == nil {
			t.Fatal("accepted conn read 64 bytes through a 4-byte cut")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("accept-side read never unblocked")
	}
	if st := in.Stats(); st.Conns != 1 || st.Cuts != 1 {
		t.Fatalf("stats %+v, want 1 conn with 1 cut", st)
	}
}

func TestDeterministicDrawSequence(t *testing.T) {
	// Equal seeds must draw equal fates when connections are created in
	// the same order.
	fates := func(seed int64) []fate {
		in := New(Config{Seed: seed, Cut: 0.5, Reset: 0.5, CutBytes: 100})
		out := make([]fate, 16)
		for i := range out {
			out[i] = in.draw(i)
		}
		return out
	}
	a, b := fates(11), fates(11)
	for i := range a {
		if a[i].cutAfter != b[i].cutAfter || a[i].reset != b[i].reset || a[i].delaySeed != b[i].delaySeed {
			t.Fatalf("draw %d differs across equal seeds: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := fates(12)
	same := true
	for i := range a {
		if a[i].cutAfter != c[i].cutAfter || a[i].delaySeed != c[i].delaySeed {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds drew identical fate sequences")
	}
}

func TestConcurrentDrawsAreRaceFree(t *testing.T) {
	in := New(Config{Seed: 5, Cut: 0.3, Delay: 0.3, Crash: map[int]int64{1: 100}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				in.draw(g % 3)
			}
		}(g)
	}
	wg.Wait()
}

func TestKillNodeSeversAndBlocksUntilHeal(t *testing.T) {
	ln := newLoopListener(t)
	echoServer(t, ln)
	in := New(Config{Seed: 7})

	conn, err := in.Dial(context.Background(), 3, ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(conn, buf); err != nil {
		t.Fatal(err)
	}

	if n := in.KillNode(3); n != 1 {
		t.Fatalf("KillNode severed %d conns, want 1", n)
	}
	if !in.NodeKilled(3) {
		t.Fatal("NodeKilled(3) = false after KillNode")
	}
	if _, err := conn.Write([]byte("dead")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write on killed conn: %v, want ErrInjected", err)
	}
	if _, err := conn.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("read on killed conn: %v, want ErrInjected", err)
	}
	if _, err := in.Dial(context.Background(), 3, ln.Addr().String()); !errors.Is(err, ErrInjected) {
		t.Fatalf("dial from killed node: %v, want ErrInjected", err)
	}
	if n := in.KillNode(3); n != 0 {
		t.Fatalf("second KillNode severed %d conns, want 0", n)
	}

	in.HealNode(3)
	if in.NodeKilled(3) {
		t.Fatal("NodeKilled(3) = true after HealNode")
	}
	conn2, err := in.Dial(context.Background(), 3, ln.Addr().String())
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	defer conn2.Close()
	if _, err := conn2.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(conn2, buf); err != nil {
		t.Fatal(err)
	}

	st := in.Stats()
	if st.Kills < 2 { // one severed conn + one refused dial
		t.Fatalf("Stats.Kills = %d, want >= 2", st.Kills)
	}
}

func TestKillNodeDeadensAcceptedConns(t *testing.T) {
	in := New(Config{Seed: 8})
	raw := newLoopListener(t)
	ln := in.WrapListener(9, raw)
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		accepted <- conn
	}()

	in.KillNode(9)
	peer, err := net.Dial("tcp", raw.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	var conn net.Conn
	select {
	case conn = <-accepted:
	case <-time.After(5 * time.Second):
		t.Fatal("accept did not complete")
	}
	defer conn.Close()
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("read on conn accepted by killed node: %v, want ErrInjected", err)
	}
	if _, err := conn.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write on conn accepted by killed node: %v, want ErrInjected", err)
	}
}
