package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerHotpath enforces the allocation-free contract on functions
// annotated //soar:hotpath.
//
// Inside a hotpath function the analyzer flags every allocating
// construct: make/new, map and slice composite literals, &composite
// literals, closures and method values (unless passed to an allowlisted
// callee), interface boxing at calls/assignments/returns, non-constant
// string concatenation, string<->[]byte conversions, go statements,
// defer and panic. Calls are checked transitively over the module call
// graph by contract: a module callee must itself be annotated
// //soar:hotpath (so its body is checked in turn), and a stdlib callee
// must be on the small known-non-allocating allowlist.
//
// Two escape hatches keep the contract honest rather than aspirational:
// a statement (or a block, via its opening-brace line) under a
// //soar:coldpath comment is skipped — growth, rebuild and eviction
// branches — and an if-body ending in panic() is skipped automatically,
// since allocations on the way to a crash are irrelevant.
var AnalyzerHotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "allocating constructs or un-annotated calls in //soar:hotpath functions",
	Run:  runHotpath,
}

// hotpathStdlib is the allowlist of stdlib functions a hotpath may
// call: synchronization leaves, in-place sorts and clock reads, all
// non-allocating on the steady state.
var hotpathStdlib = map[string]bool{
	"sync.Mutex.Lock":       true,
	"sync.Mutex.Unlock":     true,
	"sync.Mutex.TryLock":    true,
	"sync.RWMutex.Lock":     true,
	"sync.RWMutex.Unlock":   true,
	"sync.RWMutex.RLock":    true,
	"sync.RWMutex.RUnlock":  true,
	"sync.Once.Do":          true,
	"sync.Pool.Get":         true,
	"sync.Pool.Put":         true,
	"sync.WaitGroup.Add":    true,
	"sync.WaitGroup.Done":   true,
	"sync.WaitGroup.Wait":   true,
	"slices.Sort":           true,
	"slices.SortFunc":       true,
	"time.Now":              true,
	"time.Since":            true,
	"time.Duration.Seconds": true,
	"time.Time.UnixNano":    true,
}

// stdlibAllowed reports whether a non-module callee is allowlisted.
func stdlibAllowed(sym string) bool {
	return hotpathStdlib[sym] ||
		strings.HasPrefix(sym, "math.") ||
		strings.HasPrefix(sym, "math/bits.") ||
		strings.HasPrefix(sym, "sync/atomic.")
}

func runHotpath(p *Pass) {
	notes := p.Module.Notes
	for _, f := range p.Unit.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := p.Unit.Info.Defs[fd.Name].(*types.Func)
			sym := symbolOf(obj)
			if _, hot := notes.Hotpath[sym]; !hot {
				continue
			}
			hc := &hotChecker{p: p, fname: fd.Name.Name}
			if sig, ok := obj.Type().(*types.Signature); ok {
				hc.sigs = append(hc.sigs, sig)
			}
			hc.stmt(fd.Body)
		}
	}
}

type hotChecker struct {
	p     *Pass
	fname string
	// sigs is the enclosing-function signature stack, for return-value
	// boxing checks inside nested FuncLits.
	sigs []*types.Signature
}

func (hc *hotChecker) reportf(pos token.Pos, format string, args ...any) {
	args = append(args, hc.fname)
	hc.p.Reportf(pos, format+" in //soar:hotpath function %s", args...)
}

// cold reports whether a //soar:coldpath waiver covers the statement.
func (hc *hotChecker) cold(s ast.Stmt) bool {
	return hc.p.Module.Notes.ColdAt(hc.p.Module.Fset.Position(s.Pos()))
}

func (hc *hotChecker) stmt(s ast.Stmt) {
	if s == nil {
		return
	}
	if hc.cold(s) {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			hc.stmt(st)
		}
	case *ast.IfStmt:
		hc.stmt(s.Init)
		hc.expr(s.Cond)
		if !guardPanic(s.Body) {
			hc.stmt(s.Body)
		}
		hc.stmt(s.Else)
	case *ast.ForStmt:
		hc.stmt(s.Init)
		hc.expr(s.Cond)
		hc.stmt(s.Post)
		hc.stmt(s.Body)
	case *ast.RangeStmt:
		hc.expr(s.X)
		hc.stmt(s.Body)
	case *ast.AssignStmt:
		hc.assign(s)
	case *ast.ExprStmt:
		hc.expr(s.X)
	case *ast.IncDecStmt:
		hc.expr(s.X)
	case *ast.ReturnStmt:
		hc.ret(s)
	case *ast.SendStmt:
		hc.expr(s.Chan)
		hc.expr(s.Value)
	case *ast.DeferStmt:
		hc.reportf(s.Pos(), "defer")
		hc.call(s.Call)
	case *ast.GoStmt:
		hc.reportf(s.Pos(), "go statement (spawns a goroutine)")
		hc.call(s.Call)
	case *ast.SwitchStmt:
		hc.stmt(s.Init)
		hc.expr(s.Tag)
		hc.stmt(s.Body)
	case *ast.TypeSwitchStmt:
		hc.stmt(s.Init)
		hc.stmt(s.Assign)
		hc.stmt(s.Body)
	case *ast.SelectStmt:
		hc.stmt(s.Body)
	case *ast.CaseClause:
		for _, e := range s.List {
			hc.expr(e)
		}
		for _, st := range s.Body {
			hc.stmt(st)
		}
	case *ast.CommClause:
		hc.stmt(s.Comm)
		for _, st := range s.Body {
			hc.stmt(st)
		}
	case *ast.LabeledStmt:
		hc.stmt(s.Stmt)
	case *ast.DeclStmt:
		hc.declStmt(s)
	}
}

// guardPanic reports whether the block is a validation guard: its last
// statement is a panic call. Such blocks are auto-cold — the program
// is crashing, the allocation does not matter.
func guardPanic(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	es, ok := b.List[len(b.List)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func (hc *hotChecker) assign(s *ast.AssignStmt) {
	for _, lhs := range s.Lhs {
		hc.expr(lhs)
	}
	for _, rhs := range s.Rhs {
		hc.expr(rhs)
	}
	// Interface-boxing check on 1:1 assignments (x = v, x := v).
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			if dst := hc.p.Unit.Info.TypeOf(s.Lhs[i]); dst != nil {
				hc.boxing(dst, s.Rhs[i], "assignment")
			}
		}
	}
}

func (hc *hotChecker) declStmt(s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, v := range vs.Values {
			hc.expr(v)
			if i < len(vs.Names) {
				if obj := hc.p.Unit.Info.Defs[vs.Names[i]]; obj != nil {
					hc.boxing(obj.Type(), v, "declaration")
				}
			}
		}
	}
}

func (hc *hotChecker) ret(s *ast.ReturnStmt) {
	for _, e := range s.Results {
		hc.expr(e)
	}
	if len(hc.sigs) == 0 {
		return
	}
	sig := hc.sigs[len(hc.sigs)-1]
	if sig.Results().Len() != len(s.Results) {
		return
	}
	for i, e := range s.Results {
		hc.boxing(sig.Results().At(i).Type(), e, "return")
	}
}

func (hc *hotChecker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		hc.call(e)
	case *ast.CompositeLit:
		hc.compositeLit(e)
	case *ast.FuncLit:
		hc.reportf(e.Pos(), "function literal (closure may escape)")
		hc.funcLitBody(e)
	case *ast.UnaryExpr:
		if cl, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok && e.Op == token.AND {
			hc.reportf(e.Pos(), "&composite literal allocates")
			hc.compositeElems(cl)
			return
		}
		hc.expr(e.X)
	case *ast.BinaryExpr:
		hc.binary(e)
	case *ast.ParenExpr:
		hc.expr(e.X)
	case *ast.IndexExpr:
		hc.expr(e.X)
		hc.expr(e.Index)
	case *ast.IndexListExpr:
		hc.expr(e.X)
	case *ast.SliceExpr:
		hc.expr(e.X)
		hc.expr(e.Low)
		hc.expr(e.High)
		hc.expr(e.Max)
	case *ast.StarExpr:
		hc.expr(e.X)
	case *ast.SelectorExpr:
		if sel, ok := hc.p.Unit.Info.Selections[e]; ok && sel.Kind() == types.MethodVal {
			// A method value in value position binds its receiver: a
			// closure allocation. (Call sites never reach here — call()
			// walks only the receiver expression.)
			hc.reportf(e.Pos(), "method value %s (bound closure allocates)", e.Sel.Name)
		}
		hc.expr(e.X)
	case *ast.KeyValueExpr:
		hc.expr(e.Key)
		hc.expr(e.Value)
	case *ast.TypeAssertExpr:
		hc.expr(e.X)
	}
}

func (hc *hotChecker) binary(e *ast.BinaryExpr) {
	if e.Op == token.ADD {
		tv := hc.p.Unit.Info.Types[e]
		if tv.Value == nil && tv.Type != nil && isString(tv.Type) {
			hc.reportf(e.Pos(), "string concatenation allocates")
		}
	}
	hc.expr(e.X)
	hc.expr(e.Y)
}

func (hc *hotChecker) compositeLit(cl *ast.CompositeLit) {
	t := hc.p.Unit.Info.TypeOf(cl)
	if t != nil {
		switch types.Unalias(t).Underlying().(type) {
		case *types.Map:
			hc.reportf(cl.Pos(), "map literal allocates")
		case *types.Slice:
			hc.reportf(cl.Pos(), "slice literal allocates")
		}
	}
	// Struct and array literals are stack values; only their elements
	// need checking.
	hc.compositeElems(cl)
}

func (hc *hotChecker) compositeElems(cl *ast.CompositeLit) {
	for _, el := range cl.Elts {
		hc.expr(el)
	}
}

// funcLitBody checks a closure's body with the closure's own signature
// pushed for return-boxing checks.
func (hc *hotChecker) funcLitBody(fl *ast.FuncLit) {
	sig, _ := hc.p.Unit.Info.TypeOf(fl).(*types.Signature)
	if sig != nil {
		hc.sigs = append(hc.sigs, sig)
		defer func() { hc.sigs = hc.sigs[:len(hc.sigs)-1] }()
	}
	hc.stmt(fl.Body)
}

func (hc *hotChecker) call(call *ast.CallExpr) {
	info := hc.p.Unit.Info
	// Conversion?
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		hc.conversion(tv.Type, call)
		hc.expr(call.Args[0])
		return
	}
	calleeAllowed := false
	fn := calleeFunc(info, call)
	switch {
	case fn != nil:
		sym := symbolOf(fn)
		mod := hc.p.Module
		if sym != "" && (strings.HasPrefix(sym, mod.Path+".") || strings.HasPrefix(sym, mod.Path+"/")) {
			if _, hot := mod.Notes.Hotpath[sym]; !hot {
				hc.reportf(call.Pos(), "calls %s, which is not annotated //soar:hotpath", sym)
			} else {
				calleeAllowed = true
			}
		} else if stdlibAllowed(sym) {
			calleeAllowed = true
		} else {
			hc.reportf(call.Pos(), "calls %s (outside the hotpath stdlib allowlist)", sym)
		}
		if sig, ok := fn.Type().(*types.Signature); ok {
			hc.callBoxing(sig, call)
		}
	default:
		if bi := calleeBuiltin(info, call); bi != "" {
			switch bi {
			case "make":
				hc.reportf(call.Pos(), "make allocates")
			case "new":
				hc.reportf(call.Pos(), "new allocates")
			case "panic":
				hc.reportf(call.Pos(), "panic outside a guard position (argument escapes)")
			case "print", "println":
				hc.reportf(call.Pos(), "%s", bi)
			}
			calleeAllowed = true // builtins take FuncLit args never
		} else {
			hc.reportf(call.Pos(), "dynamic call (func value or interface method)")
		}
	}
	// Walk the callee expression's receiver chain (not the selector
	// itself: a called method is not a method value).
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		hc.expr(fun.X)
	case *ast.IndexExpr:
		if base, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
			hc.expr(base.X)
		}
	}
	for _, arg := range call.Args {
		switch a := ast.Unparen(arg).(type) {
		case *ast.FuncLit:
			// A closure handed to an allowlisted or annotated callee
			// (slices.SortFunc comparators, sync.Once.Do bodies) does not
			// escape; its body is still checked.
			if !calleeAllowed {
				hc.reportf(a.Pos(), "function literal argument (closure may escape)")
			}
			hc.funcLitBody(a)
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[a]; ok && sel.Kind() == types.MethodVal && !calleeAllowed {
				hc.reportf(a.Pos(), "method value %s (bound closure allocates)", a.Sel.Name)
			}
			hc.expr(a.X)
		default:
			hc.expr(arg)
		}
	}
}

// conversion flags allocating conversions: string<->[]byte/[]rune.
func (hc *hotChecker) conversion(dst types.Type, call *ast.CallExpr) {
	src := hc.p.Unit.Info.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	if isString(dst) && isByteOrRuneSlice(src) {
		hc.reportf(call.Pos(), "string conversion from slice allocates")
	}
	if isByteOrRuneSlice(dst) && isString(src) {
		hc.reportf(call.Pos(), "slice conversion from string allocates")
	}
}

// callBoxing flags concrete non-pointer-shaped arguments passed into
// interface parameters.
func (hc *hotChecker) callBoxing(sig *types.Signature, call *ast.CallExpr) {
	if call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if params.Len() == 0 {
				return
			}
			if sl, ok := params.At(params.Len() - 1).Type().Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil {
			hc.boxing(pt, arg, "argument")
		}
	}
}

// boxing flags a concrete, non-pointer-shaped value converted to an
// interface type — the conversion heap-allocates the boxed copy.
func (hc *hotChecker) boxing(dst types.Type, src ast.Expr, context string) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	// A type parameter's underlying is its interface constraint, but
	// passing a value to a generic parameter instantiates it with the
	// concrete type — no interface is built, nothing is boxed.
	if _, isTP := types.Unalias(dst).(*types.TypeParam); isTP {
		return
	}
	tv, ok := hc.p.Unit.Info.Types[src]
	if !ok || tv.Type == nil || tv.IsNil() || tv.Value != nil {
		return // untyped nil and constants are immaterial
	}
	st := tv.Type
	if types.IsInterface(st) || pointerShaped(st) {
		return
	}
	hc.reportf(src.Pos(), "%s boxes %s into %s (interface conversion allocates)", context, st, dst)
}

// pointerShaped reports whether values of t fit an interface word
// without boxing.
func pointerShaped(t types.Type) bool {
	switch types.Unalias(t).Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

func isString(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := types.Unalias(t).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// calleeFunc resolves a call's static callee, unwrapping generic
// instantiation; nil for builtins and dynamic calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	if ix, ok := fun.(*ast.IndexExpr); ok {
		fun = ast.Unparen(ix.X)
	}
	if ix, ok := fun.(*ast.IndexListExpr); ok {
		fun = ast.Unparen(ix.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// calleeBuiltin returns the builtin's name if the call targets one.
func calleeBuiltin(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}
