package core

import (
	"math"

	"soar/internal/topology"
)

// nodeTables holds the DP state of one switch. All rows are stored at
// the effective width cap+1 (see EffectiveCaps): X_v(ℓ, i) is constant
// for i ≥ cap, so wider storage would only repeat the last column.
// Readers clamp i to cap via at/blueAt/splitAt.
type nodeTables struct {
	// cap = min(k, Σ_{u ∈ T_v} c(u)): the largest budget T_v can use
	// (|T_v ∩ Λ| in the uniform model, where every capacity is 0 or 1).
	cap int
	// capw = c(v): the capacity weight a blue v consumes from the budget.
	// 0 means v ∉ Λ; the uniform model uses 1 for every available switch.
	// SOAR-Color needs it to keep the budget bookkeeping of the traceback
	// exact, so every engine records it alongside the tables.
	capw int
	// x[l*(cap+1)+i] = X_v(ℓ=l, i): minimal potential over colorings of
	// T_v with at most i blue switches, given the nearest blue ancestor
	// (or d) is l hops above v. Non-increasing in i.
	x []float64
	// isBlue mirrors x and records whether the minimum colors v blue
	// (strictly better than red; ties resolve to red, as in the paper's
	// Alg. 4 line 6).
	isBlue []bool
	// splits[m-2] records, for the merge of child m (m = 2..C(v)), the
	// optimal number of blue switches assigned to that child's subtree.
	// Layout: color (0 red, 1 blue) major, then l, then i:
	// splits[m-2][(color*(depth+1)+l)*(cap+1)+i].
	splits [][]int32
}

// at returns X_v(ℓ=l, i), clamping i to the effective cap.
//
//soar:hotpath
func (nt *nodeTables) at(l, i int) float64 {
	if i > nt.cap {
		i = nt.cap
	}
	return nt.x[l*(nt.cap+1)+i]
}

// blueAt reports whether the optimum at X_v(ℓ=l, i) colors v blue,
// clamping i to the effective cap.
//
//soar:hotpath
func (nt *nodeTables) blueAt(l, i int) bool {
	if i > nt.cap {
		i = nt.cap
	}
	return nt.isBlue[l*(nt.cap+1)+i]
}

// splitAt returns the recorded argmin split of merge m (m = 2..C(v)) at
// (color, l, i), clamping i to the effective cap: for i ≥ cap the
// unbounded DP records the same split at every column (the merge costs
// no longer depend on i), so the cap column stands in for the tail.
//
//soar:hotpath
func (nt *nodeTables) splitAt(m1, colorIdx, depth, l, i int) int {
	if i > nt.cap {
		i = nt.cap
	}
	return int(nt.splits[m1][(colorIdx*(depth+1)+l)*(nt.cap+1)+i])
}

// Gather runs SOAR-Gather (paper Alg. 3) serially in post-order and
// returns the full DP state. avail == nil means every switch may be blue.
// A negative k is treated as 0.
func Gather(t *topology.Tree, load []int, avail []bool, k int) *Tables {
	validate(t, load, avail)
	if k < 0 {
		k = 0
	}
	return gatherSerial(t, load, avail, nil, k, true)
}

// GatherCaps is Gather under the heterogeneous capacity model: a blue at
// v consumes caps[v] of the budget (caps[v] = 0 means v may not be blue;
// caps == nil means every switch has capacity 1, i.e. the uniform model).
func GatherCaps(t *topology.Tree, load []int, caps []int, k int) *Tables {
	validateCaps(t, load, caps)
	if k < 0 {
		k = 0
	}
	return gatherSerial(t, load, nil, caps, k, true)
}

func gatherSerial(t *topology.Tree, load []int, avail []bool, caps []int, k int, recordSplits bool) *Tables {
	ecaps := effectiveCaps(t, avail, caps, k)
	ar := newArena(t, ecaps, recordSplits)
	tb := &Tables{
		t:     t,
		load:  load,
		k:     k,
		nodes: make([]nodeTables, t.N()),
	}
	subLoad := t.SubtreeLoads(load)
	sc := newScratch(ecaps[t.Root()])
	var cbuf []*nodeTables // reused across nodes: one growth, not one make per node
	for _, v := range t.PostOrder() {
		nt := ar.node(t, v)
		cbuf = appendChildTables(cbuf[:0], tb, v)
		computeNode(t, v, load[v], subLoad[v] > 0, capAt(avail, caps, v), &nt, cbuf, sc)
		tb.nodes[v] = nt
	}
	return tb
}

func isAvail(avail []bool, v int) bool { return avail == nil || avail[v] } //soar:hotpath

// capAt returns the capacity weight of switch v: caps[v] when a capacity
// vector is present, else 1 when v is available (the uniform model, in
// which selecting any available switch consumes one unit of the budget).
//
//soar:hotpath
func capAt(avail []bool, caps []int, v int) int {
	if caps != nil {
		return caps[v]
	}
	if avail == nil || avail[v] {
		return 1
	}
	return 0
}

// appendChildTables appends pointers to v's children's tables to dst, in
// child order. Engines pass a reused buffer to keep the sweep
// allocation-free; pass nil for fresh storage.
//
//soar:hotpath
func appendChildTables(dst []*nodeTables, tb *Tables, v int) []*nodeTables {
	for _, c := range tb.t.Children(v) {
		dst = append(dst, &tb.nodes[c])
	}
	return dst
}

// computeNode fills the DP tables of one switch from its children's
// tables. It is shared by every engine: serial, parallel, distributed,
// TCP and incremental.
//
// nt must arrive pre-sized for cap (arena.node, newNodeStorage or
// ensureNodeStorage); splits == nil selects the low-memory engine, which
// re-derives argmins on demand. Every cell of nt is overwritten, so
// recycled storage needs no clearing.
//
// Parameters: load is L(v); hasLoad is whether T_v's total load is
// positive (a blue v sends min(1, subtree load) messages upward — see the
// package comment of internal/reduce); capw is v's capacity weight c(v) —
// the budget a blue v consumes — with 0 meaning v ∉ Λ and 1 the uniform
// model (so capw ∈ {0, 1} reproduces the original engine bitwise).
//
// The inner loops run over the effective budgets only: a row's columns
// beyond the merged prefix's cap are filled by copying the cap column
// (they are provably equal — see DESIGN.md), and a child's table is read
// through its own cap+1 columns. This turns the paper's O(n·h·k²) sweep
// into ~O(n·h·k) (the tree-knapsack bound Σ_v Σ_m cap_prefix·cap_child =
// O(n·k)) while keeping tables, breadcrumbs and placements bitwise
// identical to the unbounded DP.
//
//soar:hotpath
func computeNode(t *topology.Tree, v, load int, hasLoad bool, capw int, nt *nodeTables, children []*nodeTables, sc *scratch) {
	depth := t.Depth(v)
	capv := nt.cap
	nt.capw = capw
	w := capv + 1
	bsend := 0.0
	if hasLoad {
		bsend = 1.0
	}
	// Blue is feasible at all iff some budget column can pay for v:
	// capw ≤ capv ⟺ capw ≤ k (capv ≥ min(k, capw) and capv ≤ k).
	blueOK := capw >= 1 && capw <= capv
	if len(children) == 0 {
		// Leaf (paper Alg. 3 lines 1-9, with the min() refinement so the
		// table stays optimal under "at most i" semantics and zero loads).
		// capv = min(k, capw) for a leaf: red everywhere, plus a blue
		// column at i = capw when v ∈ Λ and capw ≤ k (i.e. exactly the
		// last column, which all wider reads clamp to).
		for l := 0; l <= depth; l++ {
			rho := t.RhoUp(v, l)
			red := rho * float64(load)
			for i := 0; i <= capv; i++ {
				idx := l*w + i
				nt.x[idx] = red
				nt.isBlue[idx] = false // recycled storage: every cell is rewritten
			}
			if blueOK {
				idx := l*w + capw
				if blue := rho * bsend; blue < red {
					nt.x[idx] = blue
					nt.isBlue[idx] = true
				}
			}
		}
		return
	}

	recordSplits := nt.splits != nil
	yr := sc.yr[:w]
	yb := sc.yb[:w]
	newYR := sc.newYR[:w]
	newYB := sc.newYB[:w]
	for l := 0; l <= depth; l++ {
		rho := t.RhoUp(v, l)
		// m = 1 (paper Alg. 3 lines 14-19): fold in the first child.
		// capR / capB track the effective cap of the running Y rows:
		// min(capv, Σ caps of the merged children [+ capw for a blue v]).
		c1 := children[0]
		w1 := c1.cap + 1
		redRow := c1.x[(l+1)*w1:]
		redBase := rho * float64(load)
		capR := min(capv, c1.cap)
		for i := 0; i <= capR; i++ {
			yr[i] = redRow[i] + redBase
		}
		for i := capR + 1; i <= capv; i++ {
			yr[i] = yr[capR]
		}
		capB := 0
		if blueOK {
			blueRow := c1.x[1*w1:]
			blueBase := rho * bsend
			capB = min(capv, c1.cap+capw)
			for i := 0; i < capw; i++ {
				yb[i] = math.Inf(1) // budget below c(v): blue unaffordable
			}
			for i := capw; i <= capB; i++ {
				yb[i] = blueRow[i-capw] + blueBase
			}
			for i := capB + 1; i <= capv; i++ {
				yb[i] = yb[capB]
			}
		} else {
			for i := 0; i <= capv; i++ {
				yb[i] = math.Inf(1)
			}
		}
		// m ≥ 2 (paper Alg. 3 lines 20-25): min-plus merge per child via
		// the SoA kernel (kernel.go), recording the argmin split for the
		// traceback. The assignment j to child m never usefully exceeds
		// cap[c_m] (its table is constant there and Y is non-increasing,
		// so j = cap[c_m] is at least as good and scanned first), hence
		// j ≤ min(i, cap[c_m]) visits every candidate the unbounded scan
		// could have picked.
		for m := 1; m < len(children); m++ {
			cm := children[m]
			wcm := cm.cap + 1
			xBlue := cm.x[1*wcm : 1*wcm+wcm]        // child sees ℓ = 1 below a blue v
			xRed := cm.x[(l+1)*wcm : (l+1)*wcm+wcm] // child sees ℓ+1 below a red v
			var spRed, spBlue []int32
			if recordSplits {
				sp := nt.splits[m-1]
				spRed = sp[(0*(depth+1)+l)*w:]
				spBlue = sp[(1*(depth+1)+l)*w:]
			}
			newCapR := min(capv, capR+cm.cap)
			mergeMinPlus(newYR, spRed, yr, xRed, newCapR, cm.cap)
			for i := newCapR + 1; i <= capv; i++ {
				newYR[i] = newYR[newCapR]
				if recordSplits {
					spRed[i] = spRed[newCapR]
				}
			}
			yr, newYR = newYR, yr
			capR = newCapR
			if blueOK {
				newCapB := min(capv, capB+cm.cap)
				mergeMinPlus(newYB, spBlue, yb, xBlue, newCapB, cm.cap)
				for i := newCapB + 1; i <= capv; i++ {
					newYB[i] = newYB[newCapB]
					if recordSplits {
						spBlue[i] = spBlue[newCapB]
					}
				}
				yb, newYB = newYB, yb
				capB = newCapB
			} else if recordSplits {
				// The unbounded DP records argmin 0 on the all-infinite
				// blue track of a switch that can never afford blue
				// (unavailable, or c(v) > k); keep recycled storage
				// identical.
				for i := 0; i <= capv; i++ {
					spBlue[i] = 0
				}
			}
		}
		// X_v(ℓ, i) = min over v's color (paper Alg. 3 line 28).
		for i := 0; i <= capv; i++ {
			idx := l*w + i
			if yb[i] < yr[i] {
				nt.x[idx] = yb[i]
				nt.isBlue[idx] = true
			} else {
				nt.x[idx] = yr[i]
				nt.isBlue[idx] = false
			}
		}
	}
}
