package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func findSeries(t *testing.T, sp Subplot, label string) Series {
	t.Helper()
	for _, s := range sp.Series {
		if s.Label == label {
			return s
		}
	}
	t.Fatalf("subplot %q has no series %q", sp.Name, label)
	return Series{}
}

func TestFig6Shapes(t *testing.T) {
	fig, err := Fig6(QuickFig6())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Subplots) != 6 { // 3 rate schemes × 2 load distributions
		t.Fatalf("got %d subplots, want 6", len(fig.Subplots))
	}
	for _, sp := range fig.Subplots {
		soar := findSeries(t, sp, "soar")
		blue := findSeries(t, sp, "all-blue")
		for i := range soar.X {
			// SOAR is optimal: no strategy may dip below it, and it is
			// bracketed by all-blue and all-red (ratio 1).
			for _, s := range sp.Series {
				if s.Label == "all-blue" {
					continue
				}
				if s.Y[i] < soar.Y[i]-1e-9 {
					t.Fatalf("%s: %s beats SOAR at k=%v (%v < %v)",
						sp.Name, s.Label, soar.X[i], s.Y[i], soar.Y[i])
				}
				if s.Y[i] > 1+1e-9 {
					t.Fatalf("%s: %s ratio %v above all-red", sp.Name, s.Label, s.Y[i])
				}
			}
			if soar.Y[i] < blue.Y[i]-1e-9 {
				t.Fatalf("%s: SOAR %v below all-blue %v", sp.Name, soar.Y[i], blue.Y[i])
			}
		}
		// SOAR utilisation is non-increasing in k.
		for i := 1; i < len(soar.Y); i++ {
			if soar.Y[i] > soar.Y[i-1]+1e-9 {
				t.Fatalf("%s: SOAR ratio increased from %v to %v", sp.Name, soar.Y[i-1], soar.Y[i])
			}
		}
	}
}

func TestFig7Shapes(t *testing.T) {
	fig, err := Fig7(QuickFig7())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Subplots) != 6 { // 3 rate schemes × 2 sweeps
		t.Fatalf("got %d subplots, want 6", len(fig.Subplots))
	}
	for _, sp := range fig.Subplots {
		soar := findSeries(t, sp, "soar")
		for i := range soar.Y {
			if soar.Y[i] <= 0 || soar.Y[i] > 1+1e-9 {
				t.Fatalf("%s: SOAR ratio %v outside (0,1]", sp.Name, soar.Y[i])
			}
		}
		if strings.Contains(sp.Name, "number of workloads") {
			// With bounded capacity the cumulative ratio degrades as
			// workloads accumulate.
			if soar.Y[len(soar.Y)-1] < soar.Y[0] {
				t.Fatalf("%s: SOAR ratio improved from %v to %v despite capacity exhaustion",
					sp.Name, soar.Y[0], soar.Y[len(soar.Y)-1])
			}
		}
		if strings.Contains(sp.Name, "switch capacity") {
			// More capacity can only help SOAR.
			first, last := soar.Y[0], soar.Y[len(soar.Y)-1]
			if last > first+0.02 {
				t.Fatalf("%s: SOAR ratio worsened with capacity: %v -> %v", sp.Name, first, last)
			}
		}
	}
}

func TestFig8Shapes(t *testing.T) {
	fig, err := Fig8(QuickFig8())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Subplots) != 3 {
		t.Fatalf("got %d subplots, want 3", len(fig.Subplots))
	}
	util, bytesRed, bytesBlue := fig.Subplots[0], fig.Subplots[1], fig.Subplots[2]

	// Utilization is use-case independent: WC and PS curves coincide for
	// the same load distribution (paper Fig. 8a).
	wcU := findSeries(t, util, "WC-uniform")
	psU := findSeries(t, util, "PS-uniform")
	for i := range wcU.Y {
		if math.Abs(wcU.Y[i]-psU.Y[i]) > 1e-9 {
			t.Fatalf("utilization differs across use cases: %v vs %v", wcU.Y[i], psU.Y[i])
		}
	}
	// Byte ratios normalized to all-red stay in (0, 1]; normalized to
	// all-blue they are ≥ 1 and approach 1 as k grows.
	for _, s := range bytesRed.Series {
		for i, y := range s.Y {
			if y <= 0 || y > 1+1e-9 {
				t.Fatalf("bytes/all-red %s[%d] = %v outside (0,1]", s.Label, i, y)
			}
		}
	}
	for _, s := range bytesBlue.Series {
		if s.Y[0] < 1-1e-9 {
			t.Fatalf("bytes/all-blue %s starts at %v, want ≥ 1", s.Label, s.Y[0])
		}
		if s.Y[len(s.Y)-1] > s.Y[0]+1e-9 {
			t.Fatalf("bytes/all-blue %s should approach 1: %v -> %v", s.Label, s.Y[0], s.Y[len(s.Y)-1])
		}
	}
	// PS bytes track utilization closely (paper Sec. 5.3).
	psB := findSeries(t, bytesRed, "PS-uniform")
	for i := range psB.Y {
		if math.Abs(psB.Y[i]-psU.Y[i]) > 0.2 {
			t.Fatalf("PS bytes ratio %v far from utilization %v", psB.Y[i], psU.Y[i])
		}
	}
}

func TestFig9Shapes(t *testing.T) {
	fig, err := Fig9(QuickFig9())
	if err != nil {
		t.Fatal(err)
	}
	gather, color := fig.Subplots[0], fig.Subplots[1]
	if len(gather.Series) != 2 || len(color.Series) != 2 {
		t.Fatalf("series counts %d/%d, want 2 sizes each", len(gather.Series), len(color.Series))
	}
	for si := range gather.Series {
		for i := range gather.Series[si].Y {
			g, c := gather.Series[si].Y[i], color.Series[si].Y[i]
			if g <= 0 || c < 0 {
				t.Fatalf("non-positive timings g=%v c=%v", g, c)
			}
			if c > g {
				t.Fatalf("SOAR-Color (%v s) slower than SOAR-Gather (%v s)", c, g)
			}
		}
	}
}

func TestFig10Shapes(t *testing.T) {
	fig, err := Fig10(QuickFig10())
	if err != nil {
		t.Fatal(err)
	}
	spA, spB := fig.Subplots[0], fig.Subplots[1]
	onePct := findSeries(t, spA, "1% of n")
	blue := findSeries(t, spA, "all-blue")
	for i := range onePct.Y {
		if onePct.Y[i] < blue.Y[i]-1e-9 || onePct.Y[i] > 1+1e-9 {
			t.Fatalf("1%% ratio %v outside [all-blue %v, 1]", onePct.Y[i], blue.Y[i])
		}
	}
	for _, s := range spB.Series {
		for i, y := range s.Y {
			if !math.IsNaN(y) && (y < 0 || y > 100) {
				t.Fatalf("%s blue-fraction %v%% at size %v out of range", s.Label, y, s.X[i])
			}
		}
	}
	// Reaching 50% savings needs at least as many switches as 30%.
	s30 := findSeries(t, spB, "30% saving")
	s50 := findSeries(t, spB, "50% saving")
	for i := range s30.Y {
		if !math.IsNaN(s30.Y[i]) && !math.IsNaN(s50.Y[i]) && s50.Y[i] < s30.Y[i]-1e-9 {
			t.Fatalf("50%% target needs %v%% < 30%% target %v%%", s50.Y[i], s30.Y[i])
		}
	}
}

func TestFig11Shapes(t *testing.T) {
	fig, err := Fig11(QuickFig11())
	if err != nil {
		t.Fatal(err)
	}
	example, scaling := fig.Subplots[0], fig.Subplots[1]
	maxPhi := findSeries(t, example, "max-degree").Y[0]
	soarPhi := findSeries(t, example, "soar").Y[0]
	if soarPhi > maxPhi+1e-9 {
		t.Fatalf("SOAR φ=%v worse than max-degree φ=%v on SF example", soarPhi, maxPhi)
	}
	for _, s := range scaling.Series {
		for i, y := range s.Y {
			if y <= 0 || y > 1+1e-9 {
				t.Fatalf("scaling %s[%d] = %v outside (0,1]", s.Label, i, y)
			}
		}
	}
}

func TestRenderAndCSV(t *testing.T) {
	fig, err := Fig6(QuickFig6())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fig.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"fig6", "soar", "all-blue", "k"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q", want)
		}
	}
	buf.Reset()
	if err := fig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "figure,subplot,series,x,y,stderr" {
		t.Fatalf("csv header %q", lines[0])
	}
	wantRows := 6 * 5 * len(QuickFig6().Ks) // subplots × series × points
	if len(lines)-1 != wantRows {
		t.Fatalf("csv has %d rows, want %d", len(lines)-1, wantRows)
	}
	if !strings.Contains(buf.String(), `"constant (w=1), power-law load"`) {
		t.Fatal("csv did not quote subplot names containing commas")
	}
}
