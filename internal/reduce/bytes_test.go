package reduce

import (
	"math/rand"
	"testing"

	"soar/internal/paper"
	"soar/internal/topology"
)

func TestUnitAggregatorMatchesMessageComplexity(t *testing.T) {
	// With 1-byte unmergeable-size payloads, byte complexity must equal
	// message complexity on every instance.
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(30)
		tr := topology.RandomRecursive(n, rng)
		loads := make([]int, n)
		blue := make([]bool, n)
		for v := 0; v < n; v++ {
			loads[v] = rng.Intn(4)
			blue[v] = rng.Intn(3) == 0
		}
		bc := ByteComplexity(tr, loads, blue, UnitAggregator{})
		msgs := MessageCounts(tr, loads, blue)
		for v := 0; v < n; v++ {
			if bc.PerLink[v] != msgs[v] || bc.Messages[v] != msgs[v] {
				t.Fatalf("trial %d: link %d bytes=%d msgs(bc)=%d msgs=%d",
					trial, v, bc.PerLink[v], bc.Messages[v], msgs[v])
			}
		}
		if bc.TotalBytes != TotalMessages(tr, loads, blue) {
			t.Fatalf("trial %d: total bytes %d != total messages %d",
				trial, bc.TotalBytes, TotalMessages(tr, loads, blue))
		}
	}
}

func TestFixedSizeAggregator(t *testing.T) {
	tr, loads := paper.Figure2()
	blue := make([]bool, tr.N())
	bc := ByteComplexity(tr, loads, blue, FixedSizeAggregator{Size: 100})
	// All-red: bytes = 100 × messages on every link.
	if bc.TotalBytes != 100*51 {
		t.Fatalf("all-red fixed bytes = %d, want %d", bc.TotalBytes, 100*51)
	}
	allBlue := make([]bool, tr.N())
	for i := range allBlue {
		allBlue[i] = true
	}
	bc = ByteComplexity(tr, loads, allBlue, FixedSizeAggregator{Size: 100})
	if bc.TotalBytes != 100*7 {
		t.Fatalf("all-blue fixed bytes = %d, want %d", bc.TotalBytes, 100*7)
	}
}

func TestWeightedBytesUseRho(t *testing.T) {
	tr, loads := paper.Figure2()
	fast := topology.ApplyRates(tr, topology.RatesConstant(4))
	blue := make([]bool, tr.N())
	bc := ByteComplexity(fast, loads, blue, UnitAggregator{})
	if bc.Weighted != 51.0/4 {
		t.Fatalf("weighted bytes = %v, want %v", bc.Weighted, 51.0/4)
	}
	if bc.TotalBytes != 51 {
		t.Fatalf("raw bytes = %v, want 51", bc.TotalBytes)
	}
}

// countingAggregator tracks how many Produce calls occur and asserts each
// server index is produced exactly once.
type countingAggregator struct {
	produced map[int]int
}

type countPayload struct{ n int64 }

func (p countPayload) SizeBytes() int64 { return p.n }

func (c *countingAggregator) Produce(idx int) Payload {
	c.produced[idx]++
	return countPayload{1}
}

func (c *countingAggregator) Merge(a, b Payload) Payload {
	return countPayload{a.(countPayload).n + b.(countPayload).n}
}

func TestEveryServerProducedOnce(t *testing.T) {
	tr, loads := paper.Figure2()
	agg := &countingAggregator{produced: map[int]int{}}
	blue := []bool{true, false, false, false, false, false, false}
	ByteComplexity(tr, loads, blue, agg)
	total := 0
	for _, l := range loads {
		total += l
	}
	if len(agg.produced) != total {
		t.Fatalf("produced %d distinct servers, want %d", len(agg.produced), total)
	}
	for idx, n := range agg.produced {
		if n != 1 {
			t.Fatalf("server %d produced %d times", idx, n)
		}
	}
}

func TestMergePreservesCountMass(t *testing.T) {
	// With a size-counting payload, the root's outgoing payload under
	// all-blue must carry the total number of servers.
	tr, loads := paper.Figure2()
	agg := &countingAggregator{produced: map[int]int{}}
	allBlue := make([]bool, tr.N())
	for i := range allBlue {
		allBlue[i] = true
	}
	bc := ByteComplexity(tr, loads, allBlue, agg)
	// Root link carries one payload whose "size" is the server count 17.
	if bc.PerLink[tr.Root()] != 17 {
		t.Fatalf("root payload mass = %d, want 17", bc.PerLink[tr.Root()])
	}
	if bc.Messages[tr.Root()] != 1 {
		t.Fatalf("root messages = %d, want 1", bc.Messages[tr.Root()])
	}
}
