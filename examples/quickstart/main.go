// Quickstart: place a bounded number of in-network aggregation switches
// optimally with SOAR and compare against the paper's baseline
// strategies, using only the public facade (package soar).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"soar"
)

func main() {
	// A small datacenter aggregation tree: BT(64) is a complete binary
	// tree of 63 switches whose 32 leaves are top-of-rack switches.
	t, err := soar.BT(64)
	if err != nil {
		log.Fatal(err)
	}
	// Racks hold a heavy-tailed number of servers, as in the paper's
	// power-law workload (mean 5, up to 63 servers per rack).
	loads := soar.PowerLawLoads(t, 42)

	allRed := soar.Utilization(t, loads, make([]bool, t.N()))
	fmt.Printf("network: %d switches, height %d\n", t.N(), t.Height())
	fmt.Printf("all-red Reduce utilization: %.0f\n\n", allRed)

	fmt.Printf("%-6s %-10s %12s %10s\n", "k", "strategy", "utilization", "vs all-red")
	for _, k := range []int{1, 2, 4, 8, 16} {
		// SOAR: the provably optimal placement.
		res := soar.Solve(t, loads, k)
		fmt.Printf("%-6d %-10s %12.0f %10.3f\n", k, "soar", res.Cost, res.Cost/allRed)
		// The natural heuristics it beats (paper Sec. 3).
		for _, s := range soar.Baselines() {
			blue := s.Place(t, loads, nil, k)
			phi := soar.Utilization(t, loads, blue)
			fmt.Printf("%-6s %-10s %12.0f %10.3f\n", "", s.Name(), phi, phi/allRed)
		}
	}

	// The placement itself: which switches should aggregate at k = 8?
	res := soar.Solve(t, loads, 8)
	fmt.Println("\noptimal aggregation switches at k=8:")
	for v, b := range res.Blue {
		if b {
			fmt.Printf("  switch %d (depth %d, subtree load %d)\n",
				v, t.Depth(v), t.SubtreeLoads(loads)[v])
		}
	}

	// The distributed solver produces the identical answer via
	// message passing (one goroutine per switch).
	dist := soar.SolveDistributed(t, loads, 8)
	fmt.Printf("\ndistributed solver agrees: φ=%.0f (serial %.0f)\n", dist.Cost, res.Cost)

	// Heterogeneous fabric: core switches are fully programmable
	// (weight 1), the aggregation layer is half-provisioned (weight 2)
	// and ToRs are expensive to enable (weight 4). The same budget now
	// buys fewer, better-placed aggregators; uniform provisioning
	// lower-bounds every mix.
	caps := soar.CapsTiered(t, 1, 2, 4)
	fmt.Println("\ntiered capacities (1/2/4 by level) vs uniform:")
	for _, k := range []int{4, 8, 16} {
		het := soar.SolveCaps(t, loads, caps, k)
		uni := soar.Solve(t, loads, k)
		fmt.Printf("  k=%-3d uniform %.3f  tiered %.3f\n", k, uni.Cost/allRed, het.Cost/allRed)
	}
}
