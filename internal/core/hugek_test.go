package core

import (
	"math"
	"math/rand"
	"testing"

	"soar/internal/reduce"
	"soar/internal/topology"
)

// This file is the regression net for the scratch-row clamping (see
// arena.go newScratch and ColorPhaseCompact): every engine must size its
// merge rows by the root's *effective* cap, never the raw budget k.
// Before the clamping, a budget of 1<<30 allocated four ~8 GiB scratch
// rows per engine and the compact traceback rebuilt (k+1)-wide Y rows
// per visited node — these tests would die on memory long before
// asserting anything.

// TestHugeBudgetRowsClampToCapacity solves with k = 1<<30 over a sparse
// availability set. The optimum must match the k = |Λ| solve (a budget
// beyond the capacity sum buys nothing), and the run must complete in
// test-scale memory, which it only does if all scratch is cap-clamped.
func TestHugeBudgetRowsClampToCapacity(t *testing.T) {
	const hugeK = 1 << 30
	tr := topology.MustBT(256)
	rng := rand.New(rand.NewSource(41))
	n := tr.N()
	loads := make([]int, n)
	avail := make([]bool, n)
	navail := 0
	for v := 0; v < n; v++ {
		loads[v] = rng.Intn(5)
		if rng.Intn(8) == 0 {
			avail[v] = true
			navail++
		}
	}

	want := Solve(tr, loads, avail, navail)
	inc := NewIncremental(tr, loads, avail, hugeK)
	memo := NewMemo(tr)

	for name, res := range map[string]Result{
		"serial":       Solve(tr, loads, avail, hugeK),
		"compact":      SolveCompact(tr, loads, avail, hugeK),
		"memo":         SolveMemo(memo, loads, avail, hugeK),
		"compact-memo": SolveCompactMemo(memo, loads, avail, hugeK),
		"parallel":     SolveParallel(tr, loads, avail, hugeK, 4),
		"incremental":  inc.Solve(),
	} {
		if math.Abs(res.Cost-want.Cost) > 1e-9 {
			t.Fatalf("%s: huge-k φ=%v, |Λ|-budget φ=%v", name, res.Cost, want.Cost)
		}
		if sim := reduce.Utilization(tr, loads, res.Blue); math.Abs(sim-res.Cost) > 1e-9 {
			t.Fatalf("%s: placement costs %v, reported %v", name, sim, res.Cost)
		}
	}

	// The message-passing protocol engine sizes per-switch scratch the
	// same way; a leaf's state under the huge budget must stay tiny.
	leaf := tr.Leaves()[0]
	ns, err := NewNodeState(tr, leaf, loads[leaf], loads[leaf] > 0, true, hugeK, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := ns.Cap(); got != 1 {
		t.Fatalf("leaf cap under huge budget = %d, want 1", got)
	}
}

// TestIncrementalScratchRegrowOnCapRaise raises the root's capacity sum
// after construction: SetCap can widen the widest DP row past what the
// engine's merge scratch was built for, so Flush must regrow it. Without
// the regrow, computeNode slices the stale scratch out of range.
func TestIncrementalScratchRegrowOnCapRaise(t *testing.T) {
	tr := topology.MustBT(64)
	n := tr.N()
	rng := rand.New(rand.NewSource(43))
	loads := make([]int, n)
	caps := make([]int, n)
	for v := 0; v < n; v++ {
		loads[v] = rng.Intn(4)
	}
	caps[tr.Root()] = 1 // root cap sum starts at 1: minimal scratch

	const k = 1 << 20
	inc := NewIncrementalCaps(tr, loads, caps, k)
	if got := inc.Cost(); got != SolveCaps(tr, loads, caps, k).Cost {
		t.Fatalf("pre-raise cost %v diverges", got)
	}

	// Raise capacities in waves; each wave widens the root's effective
	// cap, and heavy weights push it far past the initial scratch width.
	for wave := 0; wave < 3; wave++ {
		for v := 0; v < n; v++ {
			if rng.Intn(3) == 0 {
				inc.SetCap(v, 1+rng.Intn(50))
			}
		}
		got := inc.Solve()
		ref := SolveCaps(tr, loads, inc.Capacities(), k)
		if math.Abs(got.Cost-ref.Cost) > 1e-9 {
			t.Fatalf("wave %d: incremental φ=%v, from-scratch φ=%v", wave, got.Cost, ref.Cost)
		}
		for v := range got.Blue {
			if got.Blue[v] != ref.Blue[v] {
				t.Fatalf("wave %d: placement differs at switch %d", wave, v)
			}
		}
	}
}
