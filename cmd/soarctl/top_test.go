package main

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"soar/internal/naas"
	"soar/internal/paper"
)

// TestTopLoopAgainstLiveService boots a real naas control plane,
// admits a tenant, and runs two polling rounds of the top view: the
// scrape must parse, the quantiles must compute, and the rendered
// table must reflect the admission.
func TestTopLoopAgainstLiveService(t *testing.T) {
	tr, loads := paper.Figure2()
	svc := naas.NewService(tr, 2)
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	if _, err := svc.Place(loads, 2); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := topLoop(&sb, srv.URL, time.Millisecond, 2); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "adm/s") {
		t.Fatalf("missing header:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 poll lines, got %d:\n%s", len(lines), out)
	}
	// One tenant is active; the tenants column must say so on each line.
	for _, ln := range lines[1:] {
		if !strings.Contains(ln, " 1 ") {
			t.Fatalf("poll line does not show the active tenant: %q", ln)
		}
	}
}

// TestTopOnceFlag pins the -once shorthand against a live service.
func TestTopOnceFlag(t *testing.T) {
	tr, _ := paper.Figure2()
	svc := naas.NewService(tr, 2)
	t.Cleanup(svc.Close)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	if err := runTop([]string{"-addr", srv.URL, "-once"}); err != nil {
		t.Fatal(err)
	}
}
