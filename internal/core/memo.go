package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"soar/internal/topology"
)

// This file implements the structural solve cache behind the memoized
// SOAR engines (see DESIGN.md "Structural memoization"). Fat-tree-like
// evaluation topologies are overwhelmingly symmetric: in BT(2048)
// thousands of subtrees are pairwise isomorphic with identical loads,
// capacities and ρ-up profiles, yet the plain engines recompute every
// switch's nodeTables on every solve. A Memo groups switches into exact
// equivalence classes — switches whose computeNode inputs are provably
// identical — runs the DP once per class, and aliases the resulting
// tables across all class members. Because the representative runs the
// very same computeNode, the aliased tables, breadcrumbs and placements
// are bitwise identical to the unmemoized engines for every member.
//
// A class is the hash-consed tuple
//
//	(path digest, L(v), 1{subtree load > 0}, c(v), cap(v), children classes)
//
// where the path digest (topology.PathDigest) pins depth(v) and the full
// ρ-up vector, cap(v) is the effective budget the tables are clamped to,
// and the children classes appear in child order (the merge order and
// the split breadcrumbs depend on it, so unordered canonization would
// break bitwise traceback equality). Every component computeNode reads
// is in the tuple, and interning compares tuples exactly — this is
// hash-consing, not fingerprint hashing, so equal class ids imply equal
// inputs with no collision risk.
//
// Zero-load subtrees — the dominant case under sparse multi-tenant
// workloads — get a dedicated fast path: their tables are provably
// all-zero (red everywhere, zero potential, zero splits), so every such
// class is served by slicing one shared all-zero slab instead of
// running computeNode.
//
// Ownership: tables inserted into a Memo are immutable from then on.
// Engines alias them (struct copies sharing the backing slices) and must
// never write through them; the incremental engine therefore computes
// into fresh storage when a dirty switch misses the cache, instead of
// recycling its (possibly shared) old storage in place.

// defaultMemoBudget bounds the bytes a Memo retains before evicting.
const defaultMemoBudget = 256 << 20

// memo bookkeeping constants: rough per-entry overheads used for the
// byte budget (struct headers, slice headers).
const (
	memoEntryOverhead = 128
	sliceHeaderBytes  = 24
)

// classKey is the exact equivalence-class tuple of one switch. The
// children's class ids are inlined for the common fan-outs — kid0/kid1
// hold them directly for ≤ 2 children (-1 absent) — so interning a
// binary-tree switch costs one map operation, not one per cons cell.
// Wider switches fall back to the cons-list: kid0 is then the interned
// list id over all children and kid1 is listSentinel, a value no class
// id can take, so the two encodings can never collide.
type classKey struct {
	load    int64
	ecap    int64
	path    int32
	kid0    int32
	kid1    int32
	capw    int32
	hasLoad bool
}

// listSentinel marks kid0 as a cons-list id (> 2 children).
const listSentinel int32 = -2

// listKey interns child-class lists as cons cells.
type listKey struct{ prev, child int32 }

// cachedClass is one slot of the per-switch class cache: the last
// classKey interned at a switch and the id it resolved to. Hash-consing
// makes the memo exact, but on a warm solve the map lookups ARE the
// solve — and a switch's key stream is extremely repetitive (sparse
// churn leaves most switches in one of two states: their zero class and
// their last loaded class). A 2-slot direct-mapped cache in front of
// the map turns those into two struct compares.
type cachedClass struct {
	key classKey
	cid int32 // -1: empty slot
}

// memoEntry is one class: its canonical tables, once computed. The nt
// field is the aliasing contract of the cache made checkable: once an
// entry is published, engines share its backing slices, so only the
// constructors below may ever store through it.
type memoEntry struct {
	ok    bool
	bytes int64
	//soar:immutable
	nt nodeTables
}

// MemoStats reports a Memo's cumulative behavior.
type MemoStats struct {
	// Classes is the number of distinct equivalence classes interned in
	// the current epoch.
	Classes int
	// Hits and Misses count class-table lookups across all solves.
	Hits, Misses uint64
	// Bytes approximates the retained table storage.
	Bytes int64
	// Epoch counts evictions: it increments every time the byte budget
	// forces a full reset.
	Epoch uint64
}

// Memo is a reusable cache of class tables for one tree. It serves any
// number of solves — across differing loads, availability sets,
// capacity vectors and budgets k — and keeps warm tables between them,
// so request streams with recurring structure (symmetric topologies,
// churning sparse tenants) skip most of the DP.
//
// A Memo is NOT safe for concurrent use: share one per goroutine (the
// scheduler gives each pool worker its own, trading a little redundant
// warmup for a lock-free hot path). GatherParallelMemo fans its own
// workers out internally and is safe to call like any other method.
//
// Stats is the one exception to the single-goroutine rule: its
// counters (classes, hits, misses, bytes, epoch) are atomics, so any
// goroutine may read Stats while the owning goroutine solves — this is
// how the scheduler's metrics registry scrapes per-worker caches
// without stopping them. The values form no consistent cut (a scrape
// may see a miss counted before its bytes land), but each one is a
// valid point-in-time read.
type Memo struct {
	t      *topology.Tree
	budget int64
	epoch  atomic.Uint64

	classes map[classKey]int32
	lists   map[listKey]int32
	entries []memoEntry
	// nclasses mirrors len(entries) atomically: Stats must not read the
	// entries slice header while the owner appends to it.
	nclasses atomic.Int64

	hits, misses atomic.Uint64
	bytes        atomic.Int64

	sc    *scratch
	scCap int
	cbuf  []*nodeTables

	// ccache is the per-switch 2-way class cache (2 slots per switch,
	// most recent first); see cachedClass. Invalidated on Reset: slot
	// hits must never resurrect a pre-eviction class id.
	ccache []cachedClass

	// slab backs the class tables computed on misses (newNodeStorageSlab):
	// classes interned together share chunks, so a warm epoch's working
	// set is a few dense slabs instead of thousands of small objects.
	slab slabAlloc

	// Reused per-solve scratch (effective caps, subtree loads, class
	// ids): a warm gather allocates nothing but the returned Tables.
	ecapsBuf []int
	subBuf   []int64
	classBuf []int32

	// Shared all-zero storage for the zero-load fast path. Grows to the
	// largest table shape seen; superseded slabs stay referenced by the
	// tables sliced from them (still all zeros, still immutable).
	//soar:immutable
	zeroX []float64
	//soar:immutable
	zeroIsBlue []bool
	//soar:immutable
	zeroSplits []int32
}

// NewMemo returns an empty solve cache for tree t with the default
// eviction budget.
func NewMemo(t *topology.Tree) *Memo {
	m := &Memo{
		t:       t,
		budget:  defaultMemoBudget,
		classes: make(map[classKey]int32),
		lists:   make(map[listKey]int32),
		ccache:  make([]cachedClass, 2*t.N()),
	}
	for i := range m.ccache {
		m.ccache[i].cid = -1
	}
	return m
}

// Tree returns the tree the memo caches solves for.
func (m *Memo) Tree() *topology.Tree { return m.t }

// SetBudget sets the byte budget above which the next solve evicts the
// cache (full reset). Non-positive values are ignored.
func (m *Memo) SetBudget(bytes int64) {
	if bytes > 0 {
		m.budget = bytes
	}
}

// Stats returns the memo's cumulative counters. Unlike every other
// method, Stats is safe to call from any goroutine while the owner
// solves: each counter is read atomically (see the type comment for
// the consistency caveat).
func (m *Memo) Stats() MemoStats {
	return MemoStats{
		Classes: int(m.nclasses.Load()),
		Hits:    m.hits.Load(),
		Misses:  m.misses.Load(),
		Bytes:   m.bytes.Load(),
		Epoch:   m.epoch.Load(),
	}
}

// Reset evicts every cached class and bumps the epoch. Tables already
// aliased by live engines stay valid (they are immutable and keep their
// backing slabs alive); the engines re-intern against the new epoch on
// their next flush.
func (m *Memo) Reset() {
	m.epoch.Add(1)
	clear(m.classes)
	clear(m.lists)
	m.entries = m.entries[:0]
	for i := range m.ccache {
		m.ccache[i].cid = -1 // stale class ids must never hit
	}
	m.nclasses.Store(0)
	m.bytes.Store(0)
}

// maybeEvict resets the memo when the retained bytes exceed the budget.
// Called between solves only, never mid-solve.
//
//soar:hotpath
func (m *Memo) maybeEvict() {
	if m.bytes.Load() > m.budget {
		m.Reset() //soar:coldpath eviction
	}
}

// internList interns one cons cell of a child-class list.
//
//soar:hotpath
func (m *Memo) internList(prev, child int32) int32 {
	key := listKey{prev, child}
	id, ok := m.lists[key]
	if !ok {
		id = int32(len(m.lists))
		m.lists[key] = id
	}
	return id
}

// internClass interns a class tuple, growing the entry table on first
// sight.
//
//soar:hotpath
func (m *Memo) internClass(key classKey) int32 {
	id, ok := m.classes[key]
	if !ok {
		id = int32(len(m.entries))
		m.classes[key] = id
		m.entries = append(m.entries, memoEntry{})
		m.nclasses.Add(1)
	}
	return id
}

// classKeyFor builds the class tuple of one switch: the first two
// children's class ids inline (in child order — merge order and split
// breadcrumbs depend on it), a cons-list id for wider fan-outs.
//
//soar:hotpath
func (m *Memo) classKeyFor(v int, classOf, pd []int32, loadV int, hasLoad bool, capw, ecap int) classKey {
	kids := m.t.Children(v)
	k0, k1 := int32(-1), int32(-1)
	switch len(kids) {
	case 0:
	case 1:
		k0 = classOf[kids[0]]
	case 2:
		k0, k1 = classOf[kids[0]], classOf[kids[1]]
	default:
		cons := int32(-1)
		for _, c := range kids {
			cons = m.internList(cons, classOf[c])
		}
		k0, k1 = cons, listSentinel
	}
	return classKey{
		load:    int64(loadV),
		ecap:    int64(ecap),
		path:    pd[v],
		kid0:    k0,
		kid1:    k1,
		capw:    int32(capw),
		hasLoad: hasLoad,
	}
}

// internClassFor classifies one switch: build its class tuple, then
// resolve it to a class id — through the per-switch cache when the
// switch was recently in the same state, through the hash-consing map
// otherwise. Every call site that classifies a switch — the serial,
// parallel and batch gathers, the incremental flush and the
// post-eviction reclass — MUST go through this single helper: table
// aliasing is sound only if all paths derive identical keys from
// identical components.
//
//soar:hotpath
func (m *Memo) internClassFor(v int, classOf, pd []int32, loadV int, hasLoad bool, capw, ecap int) int32 {
	key := m.classKeyFor(v, classOf, pd, loadV, hasLoad, capw, ecap)
	s0 := &m.ccache[2*v]
	if s0.cid >= 0 && s0.key == key {
		return s0.cid
	}
	s1 := &m.ccache[2*v+1]
	if s1.cid >= 0 && s1.key == key {
		*s0, *s1 = *s1, *s0 // promote: keep the most recent state first
		return s0.cid
	}
	cid := m.internClass(key)
	*s1 = *s0
	*s0 = cachedClass{key, cid}
	return cid
}

// ensureScratch sizes the merge scratch and the shared zero slabs for
// a solve whose root effective cap is maxCap — the widest row any node
// can need (cap(v) ≤ cap(root) for all v), so sizing from it instead of
// the raw budget keeps huge-k/sparse-Λ solves cheap. The zero slabs are
// pre-sized to the largest table shape the tree can produce under
// maxCap, so every zero-load class of a solve slices the same slab (the
// aliasing the sparse fast path promises) instead of racing a growing
// one.
//
//soar:hotpath
//soar:ctor grows the shared zero slabs
func (m *Memo) ensureScratch(maxCap int) {
	if m.sc == nil || m.scCap < maxCap {
		m.sc = newScratch(maxCap) //soar:coldpath first use or cap raise
		m.scCap = maxCap
	}
	sz := (m.t.Height() + 2) * (maxCap + 1) // rows ≤ height+2, width ≤ maxCap+1
	if len(m.zeroX) < sz {
		m.zeroX = make([]float64, sz)   //soar:coldpath first use or cap raise
		m.zeroIsBlue = make([]bool, sz) //soar:coldpath first use or cap raise
	}
	if len(m.zeroSplits) < 2*sz {
		m.zeroSplits = make([]int32, 2*sz) //soar:coldpath first use or cap raise
	}
}

// zeroTable builds the canonical trivial table of a zero-load subtree:
// X ≡ 0, red everywhere, zero splits — exactly what computeNode produces
// when no message ever leaves the subtree. All zero classes slice the
// same shared slabs, so the fast path allocates only the split headers.
func (m *Memo) zeroTable(depth, capw, ecap, numChildren int) (nodeTables, int64) {
	rows, w := depth+1, ecap+1
	sz := rows * w
	rowLen := 2 * sz
	nt := nodeTables{
		cap:    ecap,
		capw:   capw,
		x:      m.zeroX[:sz:sz],
		isBlue: m.zeroIsBlue[:sz:sz],
	}
	bytes := int64(memoEntryOverhead)
	if merges := numChildren - 1; merges > 0 {
		nt.splits = make([][]int32, merges)
		for i := range nt.splits {
			nt.splits[i] = m.zeroSplits[:rowLen:rowLen]
		}
		bytes += int64(merges) * sliceHeaderBytes
	}
	return nt, bytes
}

// zeroTableBytes is the byte accounting of a zero-slab table (used when
// seeding the memo from an engine's live tables after an eviction).
func zeroTableBytes(numChildren int) int64 {
	b := int64(memoEntryOverhead)
	if merges := numChildren - 1; merges > 0 {
		b += int64(merges) * sliceHeaderBytes
	}
	return b
}

// tableBytes approximates the retained storage of a computed table.
func tableBytes(nt *nodeTables) int64 {
	b := int64(memoEntryOverhead) + int64(len(nt.x))*9 // 8B float64 + 1B bool
	for _, sp := range nt.splits {
		b += int64(len(sp))*4 + sliceHeaderBytes
	}
	return b
}

// computeEntry fills entry e for a class, with v as its representative.
// Zero-load classes take the shared-slab fast path; loaded classes run
// the ordinary computeNode into fresh memo-owned storage.
//
//soar:ctor publishes memoEntry.nt
func (m *Memo) computeEntry(e *memoEntry, v, loadV int, hasLoad bool, capw, ecap int, children []*nodeTables, sc *scratch) {
	if !hasLoad {
		e.nt, e.bytes = m.zeroTable(m.t.Depth(v), capw, ecap, m.t.NumChildren(v))
	} else {
		nt := newNodeStorageSlab(&m.slab, m.t.Depth(v), ecap, m.t.NumChildren(v))
		computeNode(m.t, v, loadV, hasLoad, capw, &nt, children, sc)
		e.nt = nt
		e.bytes = tableBytes(&nt)
	}
	e.ok = true
	m.bytes.Add(e.bytes)
}

// gather is the memoized SOAR-Gather shared by the serial entry points
// and the stateful engines: one bottom-up pass interns every switch's
// class and computes each class table at most once. classOf, when
// non-nil, receives the per-switch class ids (the incremental engine
// keeps them to re-intern only dirty paths later).
func (m *Memo) gather(load []int, avail []bool, caps []int, k int, classOf []int32) *Tables {
	m.maybeEvict()
	t := m.t
	n := t.N()
	if classOf == nil {
		classOf = m.classScratch()
	}
	ecaps, subLoad := m.solveScratch()
	pd := t.PathDigests()
	if k < 0 {
		k = 0
	}
	k64 := int64(k)
	tb := &Tables{t: t, load: load, k: k, nodes: make([]nodeTables, n)}
	// The atomic hit/miss counters batch per solve: Stats readers only
	// need monotone totals, and per-switch atomic adds were measurable
	// on the warm path. Effective caps and subtree loads are postorder
	// recurrences over the very values this loop walks, so they fuse
	// into the classification sweep instead of running as two extra
	// O(n) passes (the clamp matches effectiveCaps: children are
	// already clamped to k, so the int64 sum cannot wrap).
	var hits, misses uint64
	scratchReady := false
	for _, v := range t.PostOrder() {
		capw := capAt(avail, caps, v)
		sub := int64(load[v])
		c := int64(capw)
		for _, ch := range t.Children(v) {
			sub += subLoad[ch]
			c += int64(ecaps[ch])
		}
		if c > k64 {
			c = k64
		}
		ecap := int(c)
		ecaps[v] = ecap
		subLoad[v] = sub
		hasLoad := sub > 0
		cid := m.internClassFor(v, classOf, pd, load[v], hasLoad, capw, ecap)
		classOf[v] = cid
		e := &m.entries[cid]
		if !e.ok {
			misses++
			if !scratchReady {
				// Sized from the root cap = min(k, whole-tree capacity),
				// which bounds every cap this solve can see.
				m.ensureScratch(effectiveCapRoot(t, avail, caps, k)) //soar:coldpath miss in this solve
				scratchReady = true
			}
			m.cbuf = m.cbuf[:0]
			for _, ch := range t.Children(v) {
				m.cbuf = append(m.cbuf, &m.entries[classOf[ch]].nt)
			}
			m.computeEntry(e, v, load[v], hasLoad, capw, ecap, m.cbuf, m.sc)
		} else {
			hits++
		}
		tb.nodes[v] = e.nt
	}
	m.hits.Add(hits)
	m.misses.Add(misses)
	return tb
}

// classScratch returns the memo-owned class-id buffer for solves whose
// caller does not keep class ids (GatherMemo and friends; the
// incremental engine passes its own persistent classOf).
//
//soar:hotpath
func (m *Memo) classScratch() []int32 {
	if len(m.classBuf) != m.t.N() {
		m.classBuf = make([]int32, m.t.N()) //soar:coldpath first use
	}
	return m.classBuf
}

// solveScratch returns the memo-owned effective-caps and subtree-load
// buffers recomputed by every solve.
//
//soar:hotpath
func (m *Memo) solveScratch() ([]int, []int64) {
	if len(m.ecapsBuf) != m.t.N() {
		m.ecapsBuf = make([]int, m.t.N()) //soar:coldpath first use
		m.subBuf = make([]int64, m.t.N()) //soar:coldpath first use
	}
	return m.ecapsBuf, m.subBuf
}

// GatherMemo is Gather through the solve cache: tables, breadcrumbs and
// placements are bitwise identical to Gather on the same inputs, but the
// DP runs once per equivalence class instead of once per switch, and a
// warm memo skips even that.
func GatherMemo(m *Memo, load []int, avail []bool, k int) *Tables {
	validate(m.t, load, avail)
	if k < 0 {
		k = 0
	}
	return m.gather(load, avail, nil, k, nil)
}

// GatherMemoCaps is GatherMemo under the heterogeneous capacity model
// (see GatherCaps). One Memo may serve uniform and capacity-vector
// solves interchangeably: the class tuples carry the weights.
func GatherMemoCaps(m *Memo, load []int, caps []int, k int) *Tables {
	validateCaps(m.t, load, caps)
	if k < 0 {
		k = 0
	}
	return m.gather(load, nil, caps, k, nil)
}

// SolveMemo is Solve through the solve cache; the placement is bitwise
// identical to Solve.
func SolveMemo(m *Memo, load []int, avail []bool, k int) Result {
	tb := GatherMemo(m, load, avail, k)
	blue, cost := ColorPhase(tb)
	return Result{Blue: blue, Cost: cost}
}

// SolveMemoCaps is SolveCaps through the solve cache.
func SolveMemoCaps(m *Memo, load []int, caps []int, k int) Result {
	tb := GatherMemoCaps(m, load, caps, k)
	blue, cost := ColorPhase(tb)
	return Result{Blue: blue, Cost: cost}
}

// SolveCompactMemo is SolveCompact through the solve cache: the compact
// traceback (ColorPhaseCompact) re-derives splits against the aliased
// class tables. The memoized engine already collapses table storage to
// O(classes), so the compact and full memoized engines share the same
// cached tables.
func SolveCompactMemo(m *Memo, load []int, avail []bool, k int) Result {
	tb := GatherMemo(m, load, avail, k)
	blue, cost := ColorPhaseCompact(tb, load)
	return Result{Blue: blue, Cost: cost}
}

// SolveCompactMemoCaps is SolveCompactCaps through the solve cache.
func SolveCompactMemoCaps(m *Memo, load []int, caps []int, k int) Result {
	tb := GatherMemoCaps(m, load, caps, k)
	blue, cost := ColorPhaseCompact(tb, load)
	return Result{Blue: blue, Cost: cost}
}

// GatherParallelMemo is the memoized parallel Gather: instead of
// GatherParallel's node-level dependency counting, workers steal whole
// equivalence classes from the class DAG, so symmetric trees schedule
// O(classes) units of work rather than O(n). Tables are identical to
// Gather. workers ≤ 0 selects GOMAXPROCS.
func GatherParallelMemo(m *Memo, load []int, avail []bool, k, workers int) *Tables {
	validate(m.t, load, avail)
	if k < 0 {
		k = 0
	}
	return m.gatherParallel(load, avail, nil, k, workers)
}

// GatherParallelMemoCaps is GatherParallelMemo under the heterogeneous
// capacity model.
func GatherParallelMemoCaps(m *Memo, load []int, caps []int, k, workers int) *Tables {
	validateCaps(m.t, load, caps)
	if k < 0 {
		k = 0
	}
	return m.gatherParallel(load, nil, caps, k, workers)
}

// SolveParallelMemo runs the class-parallel Gather followed by the
// serial Color phase; the result is identical to Solve.
func SolveParallelMemo(m *Memo, load []int, avail []bool, k, workers int) Result {
	tb := GatherParallelMemo(m, load, avail, k, workers)
	blue, cost := ColorPhase(tb)
	return Result{Blue: blue, Cost: cost}
}

// gatherParallel interns classes serially (the pass is inherently
// bottom-up and cheap), then fans the uncached, loaded classes out over
// a worker pool along the class DAG: a class becomes ready when all its
// children classes have tables. Zero-load classes are served from the
// shared slab during the interning pass itself.
//
//soar:ctor publishes memoEntry.nt (zero-load fast path and worker loop)
func (m *Memo) gatherParallel(load []int, avail []bool, caps []int, k, workers int) *Tables {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m.maybeEvict()
	t := m.t
	n := t.N()
	ecaps, subLoad := m.solveScratch()
	effectiveCapsInto(ecaps, t, avail, caps, k)
	t.SubtreeLoadsInto(subLoad, load)
	pd := t.PathDigests()
	m.ensureScratch(ecaps[t.Root()])
	classOf := make([]int32, n)
	firstNew := int32(len(m.entries))
	var reps []int32 // rep node of each class interned by this pass
	var hits, misses uint64
	for _, v := range t.PostOrder() {
		hasLoad := subLoad[v] > 0
		capw := capAt(avail, caps, v)
		cid := m.internClassFor(v, classOf, pd, load[v], hasLoad, capw, ecaps[v])
		classOf[v] = cid
		if int(cid-firstNew) == len(reps) {
			reps = append(reps, int32(v))
			misses++
			if !hasLoad {
				e := &m.entries[cid]
				e.nt, e.bytes = m.zeroTable(t.Depth(v), capw, ecaps[v], t.NumChildren(v))
				e.ok = true
				m.bytes.Add(e.bytes)
			}
		} else {
			hits++
		}
	}
	m.hits.Add(hits)
	m.misses.Add(misses)

	// Class DAG over the still-uncomputed classes: one pending unit per
	// (parent, child-occurrence) edge, mirroring gatherParallel's
	// node-level dependency counting at class granularity.
	nNew := len(reps)
	pending := make([]int32, nNew)
	parents := make([][]int32, nNew)
	count := 0
	for li := 0; li < nNew; li++ {
		cid := firstNew + int32(li)
		if m.entries[cid].ok {
			continue
		}
		count++
		for _, c := range t.Children(int(reps[li])) {
			ccid := classOf[c]
			if ccid >= firstNew && !m.entries[ccid].ok {
				pending[li]++
				parents[ccid-firstNew] = append(parents[ccid-firstNew], int32(li))
			}
		}
	}
	if count > 0 {
		ready := make(chan int32, count)
		for li := 0; li < nNew; li++ {
			if !m.entries[firstNew+int32(li)].ok && pending[li] == 0 {
				ready <- int32(li)
			}
		}
		if workers > count {
			workers = count
		}
		var done int64
		var retained atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				sc := newScratch(ecaps[t.Root()])
				var cbuf []*nodeTables
				for li := range ready {
					cid := firstNew + li
					rep := int(reps[li])
					e := &m.entries[cid]
					cbuf = cbuf[:0]
					for _, c := range t.Children(rep) {
						cbuf = append(cbuf, &m.entries[classOf[c]].nt)
					}
					nt := newNodeStorage(t.Depth(rep), ecaps[rep], t.NumChildren(rep), true)
					computeNode(t, rep, load[rep], true, capAt(avail, caps, rep), &nt, cbuf, sc)
					e.nt = nt
					e.bytes = tableBytes(&nt)
					e.ok = true
					retained.Add(e.bytes)
					for _, p := range parents[li] {
						if atomic.AddInt32(&pending[p], -1) == 0 {
							ready <- p
						}
					}
					if atomic.AddInt64(&done, 1) == int64(count) {
						close(ready) // all classes computed; release workers
					}
				}
			}()
		}
		wg.Wait()
		m.bytes.Add(retained.Load())
	}

	tb := &Tables{t: t, load: load, k: k, nodes: make([]nodeTables, n)}
	for v := 0; v < n; v++ {
		tb.nodes[v] = m.entries[classOf[v]].nt
	}
	return tb
}
