package core

import (
	"math"
	"math/rand"
	"testing"

	"soar/internal/paper"
	"soar/internal/reduce"
	"soar/internal/topology"
)

// TestAllEnginesAgree drives every engine — serial, parallel,
// goroutine-distributed, compact — over randomized instances and
// requires identical costs and (for the deterministic engines)
// identical placements.
func TestAllEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(60)
		tr := topology.RandomRecursive(n, rng)
		loads := make([]int, n)
		avail := make([]bool, n)
		for v := 0; v < n; v++ {
			loads[v] = rng.Intn(6)
			avail[v] = rng.Intn(4) != 0
		}
		k := rng.Intn(8)

		serial := Solve(tr, loads, avail, k)
		parallel := SolveParallel(tr, loads, avail, k, 4)
		dist := SolveDistributed(tr, loads, avail, k)
		compact := SolveCompact(tr, loads, avail, k)

		for name, res := range map[string]Result{
			"parallel": parallel, "distributed": dist, "compact": compact,
		} {
			if math.Abs(res.Cost-serial.Cost) > 1e-9 {
				t.Fatalf("trial %d: %s φ=%v, serial φ=%v", trial, name, res.Cost, serial.Cost)
			}
			if sim := reduce.Utilization(tr, loads, res.Blue); math.Abs(sim-res.Cost) > 1e-9 {
				t.Fatalf("trial %d: %s placement costs %v, reported %v", trial, name, sim, res.Cost)
			}
			for v, b := range res.Blue {
				if b && !avail[v] {
					t.Fatalf("trial %d: %s colored unavailable switch %d", trial, name, v)
				}
			}
		}
		// Serial and parallel build identical tables, so identical sets.
		for v := range serial.Blue {
			if serial.Blue[v] != parallel.Blue[v] {
				t.Fatalf("trial %d: parallel placement differs at %d", trial, v)
			}
		}
	}
}

func TestParallelPaperExample(t *testing.T) {
	tr, loads := paper.Figure2()
	for _, workers := range []int{0, 1, 2, 8, 64} {
		res := SolveParallel(tr, loads, nil, 2, workers)
		if res.Cost != 20 {
			t.Fatalf("workers=%d: φ=%v, want 20", workers, res.Cost)
		}
	}
}

func TestCompactPaperExample(t *testing.T) {
	tr, loads := paper.Figure2()
	res := SolveCompact(tr, loads, nil, 2)
	if res.Cost != 20 {
		t.Fatalf("compact φ=%v, want 20", res.Cost)
	}
	want := []bool{false, false, true, false, true, false, false}
	for v := range want {
		if res.Blue[v] != want[v] {
			t.Fatalf("compact placement differs at %d", v)
		}
	}
}

func TestCompactTablesMatchStandard(t *testing.T) {
	tr, loads := paper.Figure2()
	full := Gather(tr, loads, nil, 3)
	compact := GatherCompact(tr, loads, nil, 3)
	for v := 0; v < tr.N(); v++ {
		for l := 0; l <= tr.Depth(v); l++ {
			for i := 0; i <= 3; i++ {
				if full.X(v, l, i) != compact.X(v, l, i) {
					t.Fatalf("X_%d(%d,%d): full %v, compact %v",
						v, l, i, full.X(v, l, i), compact.X(v, l, i))
				}
			}
		}
	}
}

func TestParallelBigTree(t *testing.T) {
	tr := topology.MustBT(1024)
	rng := rand.New(rand.NewSource(5))
	loads := make([]int, tr.N())
	for _, v := range tr.Leaves() {
		loads[v] = 1 + rng.Intn(10)
	}
	serial := Solve(tr, loads, nil, 32)
	par := SolveParallel(tr, loads, nil, 32, 0)
	if serial.Cost != par.Cost {
		t.Fatalf("parallel φ=%v, serial φ=%v", par.Cost, serial.Cost)
	}
}

func TestParallelStarHighFanIn(t *testing.T) {
	// A star maximizes contention on the single parent's dependency
	// counter.
	tr := topology.Star(500)
	loads := make([]int, 500)
	for v := 1; v < 500; v++ {
		loads[v] = v % 5
	}
	serial := Solve(tr, loads, nil, 12)
	par := SolveParallel(tr, loads, nil, 12, 16)
	if serial.Cost != par.Cost {
		t.Fatalf("parallel φ=%v, serial φ=%v", par.Cost, serial.Cost)
	}
}
