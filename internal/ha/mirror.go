package ha

import (
	"context"
	"fmt"
	"net"
	"time"

	"soar/internal/obs"
	"soar/internal/sched"
	"soar/internal/topology"
)

// Mirror is an out-of-process warm replica: the standby protocol
// (attach, checkpoint stream, delta journal) exported for a separate
// daemon to run against a primary's replication listener. Where the
// in-process shard replicas of Cluster promote themselves behind an
// epoch fence, a mirror lives in another process and cannot reach the
// primary's fencing register — Promote therefore only builds the
// scheduler; deciding that the old primary is dead is the operator's
// (or the joining daemon's silence watchdog's) call.
type Mirror struct {
	part  *Partitioning
	shard int
	st    *standby
	met   *Metrics
	reg   *obs.Registry
}

// MirrorConfig tunes a joining replica. Zero values take the Options
// defaults (250ms heartbeat, budget of 4 misses).
type MirrorConfig struct {
	// Shard is the index of the shard the primary serves; Node tags
	// this replica in logs and protocol frames.
	Shard int
	Node  int
	// Heartbeat and MissBudget must match the primary's cadence: the
	// silence watchdog measures against MissBudget×Heartbeat.
	Heartbeat  time.Duration
	MissBudget int
	// MaxJournal bounds the accumulated delta journal before the
	// mirror resyncs from a fresh checkpoint.
	MaxJournal int
	// Dial opens the replication connection; nil uses plain TCP.
	Dial func(ctx context.Context, node int, addr string) (net.Conn, error)
	// Obs receives the mirror's soar_ha_* families; nil gets a private
	// registry.
	Obs *obs.Registry
	// Logf receives stream events; nil discards them.
	Logf func(format string, args ...any)
	// OnSilence fires (async) when the primary has been silent past
	// the missed-heartbeat budget — the joining daemon's cue to
	// Promote. Nil means the mirror only reports staleness via Status.
	OnSilence func(lastEpoch uint64)
}

// MirrorStatus is a replication-progress snapshot.
type MirrorStatus struct {
	// Synced is false until the first checkpoint lands.
	Synced bool
	// Epoch is the newest epoch heard; Seq the last absorbed journal
	// sequence; Journal the delta count held beyond the checkpoint.
	Epoch   uint64
	Seq     uint64
	Journal int
}

// NewMirror partitions t at level (the same level the primary's
// cluster used) and starts a replica of cfg.Shard attached to addr.
// Close releases it; Promote consumes it.
func NewMirror(t *topology.Tree, level int, addr string, cfg MirrorConfig) (*Mirror, error) {
	part, err := Partition(t, level)
	if err != nil {
		return nil, err
	}
	if cfg.Shard < 0 || cfg.Shard >= len(part.Shards) {
		return nil, fmt.Errorf("ha: mirror shard %d of %d", cfg.Shard, len(part.Shards))
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 250 * time.Millisecond
	}
	if cfg.MissBudget <= 0 {
		cfg.MissBudget = 4
	}
	if cfg.Dial == nil {
		cfg.Dial = func(ctx context.Context, _ int, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	onSilence := cfg.OnSilence
	if onSilence == nil {
		onSilence = func(uint64) {}
	}
	m := &Mirror{part: part, shard: cfg.Shard, met: NewMetrics(cfg.Obs), reg: cfg.Obs}
	m.st = newStandby(standbyConfig{
		shard:      uint32(cfg.Shard),
		node:       cfg.Node,
		treeN:      part.Shards[cfg.Shard].Pod.Tree.N(),
		heartbeat:  cfg.Heartbeat,
		missBudget: cfg.MissBudget,
		maxJournal: cfg.MaxJournal,
		dial:       cfg.Dial,
		met:        m.met,
		logf:       cfg.Logf,
		onSilence:  onSilence,
	}, addr)
	cfg.Obs.GaugeFunc("soar_ha_mirror_seq",
		"Last journal sequence the mirror absorbed.", nil,
		func() float64 { return float64(m.Status().Seq) })
	cfg.Obs.GaugeFunc("soar_ha_mirror_epoch",
		"Newest primary epoch the mirror has heard.", nil,
		func() float64 { return float64(m.Status().Epoch) })
	cfg.Obs.GaugeFunc("soar_ha_mirror_journal_events",
		"Delta-journal events held beyond the last checkpoint.", nil,
		func() float64 { return float64(m.Status().Journal) })
	return m, nil
}

// Status reports replication progress.
func (m *Mirror) Status() MirrorStatus {
	_, ckptSeq, journal, epoch, ok := m.st.state()
	return MirrorStatus{
		Synced:  ok,
		Epoch:   epoch,
		Seq:     ckptSeq + uint64(len(journal)),
		Journal: len(journal),
	}
}

// Shard returns the mirrored shard's index.
func (m *Mirror) Shard() int { return m.shard }

// Registry returns the mirror's metrics registry.
func (m *Mirror) Registry() *obs.Registry { return m.reg }

// Promote stops replicating and folds the mirror's state into a fresh
// serving scheduler over the shard's pod tree: checkpoint restore,
// delta replay, then Audit proves conservation before it is returned.
// base carries the caller's scheduler tuning; its capacity fields are
// replaced by the shard-local vector (spine switches pinned to zero),
// exactly as the primary configured them, so replayed admissions meet
// the residual checks they originally passed. The mirror is spent
// afterwards, whether promotion succeeded or not.
func (m *Mirror) Promote(base sched.Config) (*sched.Scheduler, error) {
	m.st.halt()
	ckpt, seq, journal, _, ok := m.st.state()
	if !ok {
		return nil, fmt.Errorf("ha: mirror of shard %d has no checkpoint to promote", m.shard)
	}
	pod := m.part.Shards[m.shard].Pod
	cfg := base
	cfg.Capacity = 0
	cfg.Capacities = localCaps(pod, base)
	cfg.Journal = nil
	cfg.Fence = nil
	sch := sched.New(pod.Tree, cfg)
	if err := replay(sch, ckpt, seq, journal); err != nil {
		sch.Close()
		return nil, err
	}
	return sch, nil
}

// Close stops the mirror's goroutines.
func (m *Mirror) Close() { m.st.halt() }
