package reduce

import "soar/internal/topology"

// Payload is one application message traveling up the tree. Payload
// implementations are owned by the engine after being produced: Merge may
// mutate and return its first argument.
type Payload interface {
	// SizeBytes is the wire size of the payload in bytes.
	SizeBytes() int64
}

// Aggregator produces per-server payloads and merges them, defining an
// application's byte-complexity behaviour (word-count dictionaries,
// parameter-server gradients, ...).
type Aggregator interface {
	// Produce returns the payload emitted by one server. Servers are
	// numbered 0..totalLoad-1 in switch-id order (all servers of switch 0
	// first, and so on), so implementations can pre-shard data.
	Produce(serverIdx int) Payload
	// Merge combines two payloads into one, as a blue switch does. It may
	// mutate and return a; it must not retain b.
	Merge(a, b Payload) Payload
}

// ByteCosts holds the outcome of a payload-level Reduce simulation.
type ByteCosts struct {
	// PerLink[v] is the number of payload bytes crossing the edge from v
	// to its parent (for the root, the edge (r, d)).
	PerLink []int64
	// TotalBytes is the plain sum of PerLink.
	TotalBytes int64
	// Weighted is Σ_e bytes_e · ρ(e), the byte analogue of φ. Under
	// constant rate 1 it equals TotalBytes.
	Weighted float64
	// Messages[v] is the number of payloads crossing the edge above v;
	// it must agree with MessageCounts.
	Messages []int64
}

// ByteComplexity runs the Reduce of Algorithm 1 carrying real payloads:
// red switches forward every incoming payload plus one payload per local
// server; blue switches merge everything into a single payload. It
// returns per-link byte counts and totals.
func ByteComplexity(t *topology.Tree, load []int, blue []bool, agg Aggregator) ByteCosts {
	mustMatch(t, load, blue)
	res := ByteCosts{
		PerLink:  make([]int64, t.N()),
		Messages: make([]int64, t.N()),
	}
	// serverBase[v] = first server index at switch v.
	serverBase := make([]int, t.N())
	next := 0
	for v := 0; v < t.N(); v++ {
		serverBase[v] = next
		next += load[v]
	}
	up := make([][]Payload, t.N()) // payloads leaving each switch upward
	for _, v := range t.PostOrder() {
		var msgs []Payload
		for _, c := range t.Children(v) {
			msgs = append(msgs, up[c]...)
			up[c] = nil // release
		}
		for s := 0; s < load[v]; s++ {
			msgs = append(msgs, agg.Produce(serverBase[v]+s))
		}
		if blue[v] && len(msgs) > 1 {
			merged := msgs[0]
			for _, m := range msgs[1:] {
				merged = agg.Merge(merged, m)
			}
			msgs = msgs[:1]
			msgs[0] = merged
		}
		var bytes int64
		for _, m := range msgs {
			bytes += m.SizeBytes()
		}
		res.PerLink[v] = bytes
		res.Messages[v] = int64(len(msgs))
		res.TotalBytes += bytes
		res.Weighted += float64(bytes) * t.Rho(v)
		up[v] = msgs
	}
	return res
}

// UnitPayload has size 1; with UnitAggregator the byte complexity
// coincides with the message complexity, a cross-check used in tests.
type UnitPayload struct{}

// SizeBytes implements Payload.
func (UnitPayload) SizeBytes() int64 { return 1 }

// UnitAggregator produces and merges UnitPayloads.
type UnitAggregator struct{}

// Produce implements Aggregator.
func (UnitAggregator) Produce(int) Payload { return UnitPayload{} }

// Merge implements Aggregator.
func (UnitAggregator) Merge(a, b Payload) Payload { return a }

// FixedSizeAggregator models applications whose aggregated message is the
// same size as any input message (e.g. dense gradient sum, max/min,
// bitwise ops): every payload is Size bytes.
type FixedSizeAggregator struct{ Size int64 }

type fixedPayload struct{ size int64 }

func (p fixedPayload) SizeBytes() int64 { return p.size }

// Produce implements Aggregator.
func (f FixedSizeAggregator) Produce(int) Payload { return fixedPayload{f.Size} }

// Merge implements Aggregator.
func (f FixedSizeAggregator) Merge(a, b Payload) Payload { return a }
