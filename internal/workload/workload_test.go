package workload

import (
	"math/rand"
	"testing"

	"soar/internal/core"
	"soar/internal/load"
	"soar/internal/placement"
	"soar/internal/reduce"
	"soar/internal/sched"
	"soar/internal/topology"
)

func TestCapacityBookkeeping(t *testing.T) {
	tr := topology.CompleteBinary(3)
	a := NewAllocator(tr, core.Strategy{}, 2, 2)
	rng := rand.New(rand.NewSource(1))
	loads := load.Generate(tr, load.PaperUniform(), load.LeavesOnly, rng)
	blue, _ := a.Handle(loads)
	for v, b := range blue {
		want := 2
		if b {
			want = 1
		}
		if a.Residual(v) != want {
			t.Fatalf("switch %d residual %d, want %d", v, a.Residual(v), want)
		}
	}
}

func TestExhaustedSwitchesBecomeUnavailable(t *testing.T) {
	tr := topology.CompleteBinary(3)
	a := NewAllocator(tr, core.Strategy{}, 7, 1) // enough budget for all-blue
	loads := []int{0, 0, 0, 2, 6, 5, 4}
	blue, _ := a.Handle(loads)
	if got := reduce.CountBlue(blue); got != 7 {
		t.Fatalf("first workload used %d switches, want all 7", got)
	}
	// All capacity is now spent: the next workload must run all-red.
	blue2, phi2 := a.Handle(loads)
	if got := reduce.CountBlue(blue2); got != 0 {
		t.Fatalf("second workload used %d switches, want 0", got)
	}
	if phi2 != 51 {
		t.Fatalf("second workload φ=%v, want all-red 51", phi2)
	}
}

func TestAvailabilityVector(t *testing.T) {
	tr := topology.Path(3)
	a := NewAllocator(tr, placement.Top{}, 1, 1)
	a.SetCapacity(1, 0)
	avail := a.Available()
	if avail[1] || !avail[0] || !avail[2] {
		t.Fatalf("availability %v, want switch 1 exhausted", avail)
	}
}

func TestUnlimitedCapacity(t *testing.T) {
	tr := topology.CompleteBinary(3)
	a := NewAllocator(tr, core.Strategy{}, 2, 0) // unlimited
	loads := []int{0, 0, 0, 2, 6, 5, 4}
	for i := 0; i < 50; i++ {
		_, phi := a.Handle(loads)
		if phi != 20 {
			t.Fatalf("round %d: φ=%v, want the offline optimum 20 every time", i, phi)
		}
	}
}

func TestRunCumulativeRatioConvergesTowardAllRed(t *testing.T) {
	// With bounded capacity, late workloads find no aggregation switches,
	// so the cumulative ratio must climb toward 1 (paper Sec. 5.2).
	tr := topology.MustBT(64)
	rng := rand.New(rand.NewSource(7))
	seq := NewSequence(tr, rng)
	workloads := make([][]int, 40)
	for i := range workloads {
		workloads[i] = seq.Next()
	}
	a := NewAllocator(tr, core.Strategy{}, 8, 2)
	res := Run(a, workloads)
	if len(res.CumulativeRatio) != 40 {
		t.Fatalf("got %d ratios", len(res.CumulativeRatio))
	}
	early, late := res.CumulativeRatio[4], res.CumulativeRatio[39]
	if late <= early {
		t.Fatalf("ratio should degrade as capacity exhausts: early %v, late %v", early, late)
	}
	if late > 1+1e-9 {
		t.Fatalf("ratio %v exceeds all-red", late)
	}
	for i, r := range res.CumulativeRatio {
		if r <= 0 || r > 1+1e-9 {
			t.Fatalf("ratio[%d]=%v out of (0,1]", i, r)
		}
	}
}

func TestSOARBeatsBaselinesOnline(t *testing.T) {
	// The paper is explicit that SOAR is not provably optimal online, but
	// across a capacity-constrained run it should not lose to the simple
	// baselines on cumulative utilization.
	tr := topology.MustBT(64)
	rng := rand.New(rand.NewSource(11))
	seq := NewSequence(tr, rng)
	workloads := make([][]int, 24)
	for i := range workloads {
		workloads[i] = seq.Next()
	}
	final := func(s placement.Strategy) float64 {
		a := NewAllocator(tr, s, 4, 3)
		res := Run(a, workloads)
		return res.CumulativeRatio[len(workloads)-1]
	}
	soar := final(core.Strategy{})
	for _, s := range []placement.Strategy{placement.Top{}, placement.Max{}, placement.Level{}} {
		if v := final(s); soar > v+0.02 {
			t.Fatalf("online SOAR ratio %v clearly worse than %s ratio %v", soar, s.Name(), v)
		}
	}
}

func TestSequence5050Mix(t *testing.T) {
	tr := topology.MustBT(256)
	rng := rand.New(rand.NewSource(3))
	seq := NewSequence(tr, rng)
	// Power-law draws can produce loads > 6; uniform cannot. Over many
	// draws we should see both distributions.
	sawHigh, sawUniformOnly := 0, 0
	for i := 0; i < 40; i++ {
		l := seq.Next()
		high := false
		for _, x := range l {
			if x > 6 {
				high = true
				break
			}
		}
		if high {
			sawHigh++
		} else {
			sawUniformOnly++
		}
	}
	if sawHigh == 0 || sawUniformOnly == 0 {
		t.Fatalf("sequence not mixing: %d power-law-ish, %d uniform-ish", sawHigh, sawUniformOnly)
	}
}

func TestIncrementalAllocatorMatchesFromScratch(t *testing.T) {
	// The incremental allocator must be observationally identical to the
	// from-scratch SOAR allocator: same placements, exactly the same
	// per-workload φ, same residual capacities — across a whole online
	// sequence including the capacity-exhaustion tail.
	tr := topology.MustBT(64)
	rng := rand.New(rand.NewSource(21))
	seq := NewSequence(tr, rng)
	full := NewAllocator(tr, core.Strategy{}, 8, 2)
	inc := NewIncrementalAllocator(tr, 8, 2)
	for i := 0; i < 24; i++ {
		loads := seq.Next()
		fBlue, fPhi := full.Handle(loads)
		iBlue, iPhi := inc.Handle(loads)
		if fPhi != iPhi {
			t.Fatalf("workload %d: incremental φ=%v, from-scratch φ=%v", i, iPhi, fPhi)
		}
		for v := range fBlue {
			if fBlue[v] != iBlue[v] {
				t.Fatalf("workload %d: placements differ at switch %d", i, v)
			}
			if full.Residual(v) != inc.Residual(v) {
				t.Fatalf("workload %d: residual differs at switch %d: %d vs %d",
					i, v, full.Residual(v), inc.Residual(v))
			}
		}
	}
}

func TestIncrementalAllocatorBudgetChange(t *testing.T) {
	// HandleWithBudget changes k mid-stream; the incremental allocator
	// rebuilds its engine and must keep matching the from-scratch one.
	tr := topology.MustBT(32)
	rng := rand.New(rand.NewSource(5))
	seq := NewSequence(tr, rng)
	full := NewAllocator(tr, core.Strategy{}, 4, 3)
	inc := NewIncrementalAllocator(tr, 4, 3)
	for i, k := range []int{4, 2, 2, 7, 0, 4} {
		loads := seq.Next()
		_, fPhi := full.HandleWithBudget(loads, k)
		_, iPhi := inc.HandleWithBudget(loads, k)
		if fPhi != iPhi {
			t.Fatalf("workload %d (k=%d): incremental φ=%v, from-scratch φ=%v", i, k, iPhi, fPhi)
		}
	}
}

func TestHandleRejectsBadLoad(t *testing.T) {
	tr := topology.Path(3)
	a := NewAllocator(tr, placement.Top{}, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short load vector")
		}
	}()
	a.Handle([]int{1})
}

func TestSchedulerBackedMatchesFromScratch(t *testing.T) {
	// The scheduler-backed allocator routes arrivals through the full
	// concurrent serving stack (queue, batch, engine pool, commit); for
	// a single-threaded workload sequence it must still be observably
	// identical to the plain Sec. 5.2 allocator.
	tr := topology.MustBT(64)
	rng := rand.New(rand.NewSource(33))
	seq := NewSequence(tr, rng)
	workloads := make([][]int, 20)
	for i := range workloads {
		workloads[i] = seq.Next()
	}
	s := sched.New(tr, sched.Config{Capacity: 2, Workers: 2})
	defer s.Close()
	viaSched := Run(NewSchedulerBacked(s, 8), workloads)
	direct := Run(NewAllocator(tr, core.Strategy{}, 8, 2), workloads)
	for i := range workloads {
		if viaSched.PerWorkload[i] != direct.PerWorkload[i] {
			t.Fatalf("workload %d: scheduler-backed φ=%v, direct φ=%v",
				i, viaSched.PerWorkload[i], direct.PerWorkload[i])
		}
		if viaSched.CumulativeRatio[i] != direct.CumulativeRatio[i] {
			t.Fatalf("workload %d: cumulative ratio diverged", i)
		}
	}
	// The scheduler's ledger saw the same charges.
	a := NewAllocator(tr, core.Strategy{}, 8, 2)
	for _, l := range workloads {
		a.Handle(l)
	}
	for v, r := range s.Residual() {
		if r != a.Residual(v) {
			t.Fatalf("switch %d: scheduler residual %d, direct %d", v, r, a.Residual(v))
		}
	}
}

func TestSchedulerBackedGuards(t *testing.T) {
	tr := topology.MustBT(32)
	s := sched.New(tr, sched.Config{Capacity: 1})
	defer s.Close()
	a := NewSchedulerBacked(s, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("SetCapacity on scheduler-backed allocator must panic")
		}
	}()
	a.SetCapacity(0, 1)
}
