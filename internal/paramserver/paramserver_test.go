package paramserver

import (
	"math"
	"testing"

	"soar/internal/paper"
	"soar/internal/reduce"
)

func TestDropoutDensity(t *testing.T) {
	a := NewAggregator(DefaultConfig(), 1)
	g := a.Produce(0).(*Gradient)
	density := float64(g.NNZ()) / 10_000
	if math.Abs(density-0.5) > 0.03 {
		t.Fatalf("density %v, want ≈0.5", density)
	}
}

func TestProduceDeterministic(t *testing.T) {
	a := NewAggregator(TestConfig(), 8)
	g1 := a.Produce(3).(*Gradient)
	g2 := a.Produce(3).(*Gradient)
	if g1.NNZ() != g2.NNZ() || g1.Sum() != g2.Sum() {
		t.Fatalf("Produce not deterministic: %d/%v vs %d/%v", g1.NNZ(), g1.Sum(), g2.NNZ(), g2.Sum())
	}
}

func TestWorkersDiffer(t *testing.T) {
	a := NewAggregator(TestConfig(), 8)
	g1 := a.Produce(0).(*Gradient)
	g2 := a.Produce(1).(*Gradient)
	if g1.Sum() == g2.Sum() && g1.NNZ() == g2.NNZ() {
		t.Fatal("two workers produced identical gradients")
	}
}

func TestMergeSumsValues(t *testing.T) {
	a := NewAggregator(TestConfig(), 8)
	g1 := a.Produce(0).(*Gradient)
	g2 := a.Produce(1).(*Gradient)
	s1, s2 := g1.Sum(), g2.Sum()
	n1, n2 := g1.NNZ(), g2.NNZ()
	m := a.Merge(g1, g2).(*Gradient)
	if math.Abs(m.Sum()-(s1+s2)) > 1e-3 {
		t.Fatalf("merged sum %v, want %v", m.Sum(), s1+s2)
	}
	// Union bound: max(n1,n2) ≤ nnz ≤ n1+n2, strictly between for
	// overlapping dropout masks.
	if m.NNZ() < n1 || m.NNZ() < n2 || m.NNZ() > n1+n2 {
		t.Fatalf("merged nnz %d outside [%d, %d]", m.NNZ(), maxInt(n1, n2), n1+n2)
	}
	if m.NNZ() == n1+n2 {
		t.Fatal("no coordinate overlap at dropout 0.5 is vanishingly unlikely")
	}
}

func TestSizeBytes(t *testing.T) {
	a := NewAggregator(TestConfig(), 1)
	g := a.Produce(0).(*Gradient)
	if g.SizeBytes() != int64(g.NNZ())*8 {
		t.Fatalf("size %d, want %d", g.SizeBytes(), g.NNZ()*8)
	}
}

func TestUnionSaturates(t *testing.T) {
	// Merging many workers approaches the full feature space: size growth
	// is mild, the property the paper leans on in Sec. 5.3.
	cfg := TestConfig()
	a := NewAggregator(cfg, 1)
	m := a.Produce(0).(*Gradient)
	for i := 1; i < 10; i++ {
		m = a.Merge(m, a.Produce(i)).(*Gradient)
	}
	if m.NNZ() < cfg.Features*99/100 {
		t.Fatalf("after 10 merges nnz=%d, want ≈%d", m.NNZ(), cfg.Features)
	}
	if m.NNZ() > cfg.Features {
		t.Fatalf("nnz %d exceeds the feature space %d", m.NNZ(), cfg.Features)
	}
}

func TestEndToEndPSBytesTrackUtilization(t *testing.T) {
	// With near-constant message sizes (dropout keeps sizes within 2× of
	// each other), normalized byte complexity should sit close to
	// normalized utilization (paper Sec. 5.3).
	tr, loads := paper.Figure2()
	a := NewAggregator(TestConfig(), 1)
	allRed := make([]bool, tr.N())
	opt := []bool{false, false, true, false, true, false, false}
	redB := reduce.ByteComplexity(tr, loads, allRed, a).TotalBytes
	optB := reduce.ByteComplexity(tr, loads, opt, a).TotalBytes
	byteRatio := float64(optB) / float64(redB)
	utilRatio := reduce.Utilization(tr, loads, opt) / reduce.Utilization(tr, loads, allRed)
	if math.Abs(byteRatio-utilRatio) > 0.25 {
		t.Fatalf("PS byte ratio %v far from utilization ratio %v", byteRatio, utilRatio)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
