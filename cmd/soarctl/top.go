package main

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"time"

	"soar/internal/naas"
	"soar/internal/obs"
)

// runTop polls a running soar-naasd and renders a terminal summary of
// the numbers an operator watches: admission rate and latency
// quantiles (from the soar_sched_place_seconds histogram), batch
// coalescing, memo hit ratio, conflicts, degraded cluster runs and
// re-packer Φ recovered. It is a scrape consumer like any other — it
// reads GET /metrics and computes rates from successive snapshots, so
// what it shows is exactly what a Prometheus dashboard would.
func runTop(args []string) error {
	fs := newFlagSet("top")
	addr := fs.String("addr", "http://127.0.0.1:7070", "daemon base URL")
	every := fs.Duration("every", time.Second, "polling interval")
	count := fs.Int("n", 0, "number of polls before exiting (0 = until interrupted)")
	once := fs.Bool("once", false, "poll once and exit (shorthand for -n 1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	polls := *count
	if *once {
		polls = 1
	}
	return topLoop(os.Stdout, *addr, *every, polls)
}

// topSnapshot is one scrape reduced to the dashboard's numbers.
type topSnapshot struct {
	admissions, releases, rejected, conflicts float64
	batches, batchSizeSum                     float64
	hits, misses                              float64
	degraded, clusterRuns                     float64
	phiRecovered                              float64
	tenants, capUsed, capTotal                float64
	p50, p95, p99                             float64
}

func scrapeTop(ctx context.Context, c *naas.Client) (*topSnapshot, error) {
	fams, err := c.Metrics(ctx)
	if err != nil {
		return nil, err
	}
	byName := map[string]obs.TextFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	val := func(name string) float64 {
		var total float64
		for _, s := range byName[name].Samples {
			total += s.Value
		}
		return total
	}
	snap := &topSnapshot{
		admissions:   val("soar_sched_admissions_total"),
		releases:     val("soar_sched_releases_total"),
		rejected:     val("soar_sched_rejected_total"),
		conflicts:    val("soar_sched_conflicts_total"),
		batches:      val("soar_sched_batches_total"),
		hits:         val("soar_memo_hits_total"),
		misses:       val("soar_memo_misses_total"),
		degraded:     val("soar_cluster_degraded_total"),
		clusterRuns:  val("soar_cluster_runs_total"),
		phiRecovered: val("soar_sched_repack_phi_recovered"),
		tenants:      val("soar_sched_tenants"),
		capUsed:      val("soar_sched_capacity_used"),
		capTotal:     val("soar_sched_capacity_total"),
	}
	if f, ok := byName["soar_sched_batch_size"]; ok {
		for _, s := range f.Samples {
			if s.Name == "soar_sched_batch_size_sum" {
				snap.batchSizeSum = s.Value
			}
		}
	}
	if f, ok := byName["soar_sched_place_seconds"]; ok {
		bounds, cum, _, err := obs.HistogramSeries(f, nil)
		if err != nil {
			return nil, fmt.Errorf("place_seconds histogram: %w", err)
		}
		snap.p50 = obs.HistogramQuantile(0.50, bounds, cum)
		snap.p95 = obs.HistogramQuantile(0.95, bounds, cum)
		snap.p99 = obs.HistogramQuantile(0.99, bounds, cum)
	}
	return snap, nil
}

func topLoop(w io.Writer, addr string, every time.Duration, polls int) error {
	if every <= 0 {
		every = time.Second
	}
	c := naas.NewClient(addr, nil)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	fmt.Fprintf(w, "%-8s %9s %8s %8s %8s %8s %8s %7s %7s %9s %9s\n",
		"time", "adm/s", "p50", "p95", "p99", "tenants", "cap%", "batch", "memo%", "degraded", "Φrec")
	var prev *topSnapshot
	prevAt := time.Now()
	for i := 0; polls <= 0 || i < polls; i++ {
		if i > 0 {
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(every):
			}
		}
		snap, err := scrapeTop(ctx, c)
		if err != nil {
			return err
		}
		now := time.Now()
		rate := 0.0
		if prev != nil {
			if dt := now.Sub(prevAt).Seconds(); dt > 0 {
				rate = (snap.admissions - prev.admissions) / dt
			}
		}
		capPct := 0.0
		if snap.capTotal > 0 {
			capPct = 100 * snap.capUsed / snap.capTotal
		}
		meanBatch := 0.0
		if snap.batches > 0 {
			meanBatch = snap.batchSizeSum / snap.batches
		}
		memoPct := "-"
		if ops := snap.hits + snap.misses; ops > 0 {
			memoPct = fmt.Sprintf("%.1f", 100*snap.hits/ops)
		}
		fmt.Fprintf(w, "%-8s %9.1f %8s %8s %8s %8.0f %7.1f%% %7.2f %7s %9.0f %9.3f\n",
			now.Format("15:04:05"), rate,
			fmtSeconds(snap.p50), fmtSeconds(snap.p95), fmtSeconds(snap.p99),
			snap.tenants, capPct, meanBatch, memoPct, snap.degraded, snap.phiRecovered)
		prev, prevAt = snap, now
	}
	return nil
}

// fmtSeconds renders a latency in the friendliest unit.
func fmtSeconds(s float64) string {
	switch {
	case math.IsNaN(s):
		return "-"
	case s < 1e-3:
		return fmt.Sprintf("%.0fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.2fs", s)
	}
}
