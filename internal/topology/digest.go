package topology

import (
	"math"
	"slices"
)

// This file computes two families of structural digests used by the
// memoized SOAR engines (internal/core.Memo) and by the symmetry
// analytics of the ext-memo experiment:
//
//   - PathDigest(v): the identity of the ρ-up profile of v. Two switches
//     share a path digest iff they sit at the same depth and the ρ
//     sequence along their paths to the destination is identical, i.e.
//     iff RhoUp(u, l) == RhoUp(v, l) for every l. Non-uniform ω therefore
//     breaks sharing between positions whose upward paths price
//     differently — exactly the false sharing the DP must not alias.
//   - SubtreeDigest(v): the canonical code of the ρ-weighted subtree
//     T_v as an *unordered* rooted tree (the AHU canonization with child
//     codes sorted). Two switches share a subtree digest iff their
//     subtrees are isomorphic under an isomorphism preserving every
//     edge's ρ.
//
// Both digests are computed by hash-consing — interning exact keys in a
// map, not hashing to a fixed-width value — so equal digests mean equal
// structures, never a collision. Ids are small dense int32s, comparable
// only within one Tree.
//
// The caches are built once, lazily, under a sync.Once. A Tree is
// immutable after New (re-rating goes through ApplyRates, which
// constructs a new Tree), so the cached digests can never go stale.

// pathDigestKey interns one path step: the ρ of v's parent edge plus the
// digest of the parent's path (-1 above the root).
type pathDigestKey struct {
	rho    float64
	parent int32
}

// subDigestKey interns one subtree: the ρ of v's parent edge plus the
// interned, sorted list of the children's subtree digests.
type subDigestKey struct {
	rho  float64
	kids int32
}

// subListKey interns sorted child-digest lists as cons cells.
type subListKey struct{ prev, child int32 }

//soar:ctor
func (t *Tree) buildDigests() {
	n := t.N()
	t.dig.path = make([]int32, n)
	t.dig.sub = make([]int32, n)

	pathIDs := make(map[pathDigestKey]int32, n)
	for _, v := range t.bfs { // parents before children
		p := int32(-1)
		if t.parent[v] != NoParent {
			p = t.dig.path[t.parent[v]]
		}
		key := pathDigestKey{rho: t.rho[v], parent: p}
		id, ok := pathIDs[key]
		if !ok {
			id = int32(len(pathIDs))
			pathIDs[key] = id
		}
		t.dig.path[v] = id
	}
	t.dig.numPath = len(pathIDs)

	subIDs := make(map[subDigestKey]int32, n)
	listIDs := make(map[subListKey]int32)
	var kidbuf []int32
	for _, v := range t.post { // children before parents
		kidbuf = kidbuf[:0]
		for _, c := range t.children[v] {
			kidbuf = append(kidbuf, t.dig.sub[c])
		}
		// Sorting the child codes makes the code canonical for unordered
		// isomorphism: mirror-image subtrees share a digest.
		slices.Sort(kidbuf)
		kids := int32(-1)
		for _, cid := range kidbuf {
			key := subListKey{prev: kids, child: cid}
			id, ok := listIDs[key]
			if !ok {
				id = int32(len(listIDs))
				listIDs[key] = id
			}
			kids = id
		}
		key := subDigestKey{rho: t.rho[v], kids: kids}
		id, ok := subIDs[key]
		if !ok {
			id = int32(len(subIDs))
			subIDs[key] = id
		}
		t.dig.sub[v] = id
	}
	t.dig.numSub = len(subIDs)
}

//soar:hotpath (the once.Do is a no-op after first use)
func (t *Tree) digests() *treeDigests {
	t.dig.once.Do(t.buildDigests)
	return &t.dig
}

// PathDigests returns, for every switch v, the interned identity of its
// ρ-up profile: PathDigests()[u] == PathDigests()[v] iff Depth(u) ==
// Depth(v) and RhoUp(u, l) == RhoUp(v, l) for every l. The returned
// slice is shared and must not be modified.
func (t *Tree) PathDigests() []int32 { return t.digests().path } //soar:hotpath

// PathDigest returns PathDigests()[v].
func (t *Tree) PathDigest(v int) int32 { return t.digests().path[v] } //soar:hotpath

// PathClasses returns the number of distinct path digests: how many
// genuinely different upward price profiles the tree has. On a
// uniform-ω complete tree this is the number of levels.
func (t *Tree) PathClasses() int { return t.digests().numPath } //soar:hotpath

// SubtreeDigests returns, for every switch v, the canonical code of the
// ρ-weighted subtree T_v: SubtreeDigests()[u] == SubtreeDigests()[v] iff
// T_u and T_v are isomorphic as unordered rooted trees under an
// isomorphism preserving every edge's ρ. The returned slice is shared
// and must not be modified.
func (t *Tree) SubtreeDigests() []int32 { return t.digests().sub } //soar:hotpath

// SubtreeDigest returns SubtreeDigests()[v].
func (t *Tree) SubtreeDigest(v int) int32 { return t.digests().sub[v] } //soar:hotpath

// SubtreeClasses returns the number of distinct subtree digests — a
// direct measure of the tree's structural symmetry (h(T)+1 classes for a
// complete uniform tree, n for a path).
func (t *Tree) SubtreeClasses() int { return t.digests().numSub } //soar:hotpath

// Fingerprint returns a stable 64-bit identity of the tree: FNV-1a over
// the switch count and every switch's (parent, ρ) pair, in id order.
// Unlike the interned digests above — dense ids meaningful only within
// one Tree — the fingerprint is comparable across processes, so durable
// state (scheduler checkpoints, internal/wire.CkptHeader.TreeSum) can
// verify it is being restored against the network it was taken from.
// Isomorphic but differently-numbered trees fingerprint differently by
// design: leases name switches by id.
func (t *Tree) Fingerprint() uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	mix := func(x uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (x >> s) & 0xFF
			h *= prime64
		}
	}
	mix(uint64(t.N()))
	for v := 0; v < t.N(); v++ {
		mix(uint64(int64(t.Parent(v))))
		mix(math.Float64bits(t.Rho(v)))
	}
	return h
}
