// Command benchgate compares two `go test -bench` outputs and fails on
// performance regressions: CI runs the key benchmarks on the base commit
// and on the head commit, then gates the merge on the delta staying
// under a threshold (a benchstat-style comparison without external
// dependencies).
//
// Usage:
//
//	benchgate -base base.txt -head head.txt [-threshold 0.30] [-match regexp]
//	          [-min-speedup ratio -speedup-match regexp]
//
// Each benchmark's samples (from -count N) collapse to their minimum —
// the most noise-robust central tendency for "how fast can this go" on
// shared CI runners. A benchmark is a regression when
// min(head) > min(base)·(1+threshold); benchmarks present in only one
// file are reported but never fail the gate (they were added or
// removed). Exit status 1 on any regression.
//
// The -min-speedup mode is the inverse gate, for PRs that land an
// optimization and must prove it: every benchmark matching
// -speedup-match and present in BOTH files must satisfy
// min(base)/min(head) ≥ ratio. A match with no benchmark present on
// both sides fails too — a renamed benchmark must not silently disarm
// the gate.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	base := flag.String("base", "", "bench output of the base commit")
	head := flag.String("head", "", "bench output of the head commit")
	threshold := flag.Float64("threshold", 0.30, "maximum allowed relative slowdown (0.30 = +30%)")
	match := flag.String("match", "", "only gate benchmarks whose name matches this regexp (empty = all)")
	minSpeedup := flag.Float64("min-speedup", 0, "require min(base)/min(head) ≥ this ratio for benchmarks matching -speedup-match (0 disables)")
	speedupMatch := flag.String("speedup-match", "", "regexp selecting the benchmarks the -min-speedup requirement applies to")
	flag.Parse()
	if *base == "" || *head == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -base and -head are required")
		os.Exit(2)
	}
	re, err := compileMatch(*match)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: bad -match: %v\n", err)
		os.Exit(2)
	}
	baseNs, err := parseFile(*base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	headNs, err := parseFile(*head)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	report, regressions := Compare(baseNs, headNs, re, *threshold)
	fmt.Print(report)
	failed := false
	if len(regressions) > 0 {
		fmt.Printf("\nFAIL: %d benchmark(s) regressed beyond +%.0f%%: %s\n",
			len(regressions), *threshold*100, strings.Join(regressions, ", "))
		failed = true
	} else {
		fmt.Printf("\nPASS: no benchmark regressed beyond +%.0f%%\n", *threshold*100)
	}
	if *minSpeedup > 0 {
		spRe, err := compileMatch(*speedupMatch)
		if err != nil || spRe == nil {
			fmt.Fprintf(os.Stderr, "benchgate: -min-speedup needs a valid -speedup-match: %v\n", err)
			os.Exit(2)
		}
		spReport, misses := CompareSpeedup(baseNs, headNs, spRe, *minSpeedup)
		fmt.Print(spReport)
		if len(misses) > 0 {
			fmt.Printf("\nFAIL: %d benchmark(s) below the required %.2fx speedup: %s\n",
				len(misses), *minSpeedup, strings.Join(misses, ", "))
			failed = true
		} else {
			fmt.Printf("\nPASS: all gated benchmarks hold ≥ %.2fx over base\n", *minSpeedup)
		}
	}
	if failed {
		os.Exit(1)
	}
}

func compileMatch(expr string) (*regexp.Regexp, error) {
	if expr == "" {
		return nil, nil
	}
	return regexp.Compile(expr)
}

func parseFile(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseBench(f)
}

// ParseBench reads `go test -bench` text output and returns ns/op
// samples per benchmark name. The goroutine-count suffix (-8) is
// stripped so runs from differently sized machines still line up.
func ParseBench(r io.Reader) (map[string][]float64, error) {
	out := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := stripProcs(fields[0])
		// fields: name, iterations, value, unit, [more value/unit pairs].
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad ns/op value %q", sc.Text(), fields[i])
			}
			out[name] = append(out[name], v)
			break
		}
	}
	return out, sc.Err()
}

// stripProcs removes the trailing -GOMAXPROCS from a benchmark name.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// Compare renders the delta table and returns the regressed benchmark
// names. Only benchmarks present in both maps (and matching re, when
// non-nil) are gated.
func Compare(base, head map[string][]float64, re *regexp.Regexp, threshold float64) (string, []string) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	for name := range head {
		if _, ok := base[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var b strings.Builder
	fmt.Fprintf(&b, "%-60s %14s %14s %9s\n", "benchmark", "base ns/op", "head ns/op", "delta")
	var regressions []string
	for _, name := range names {
		if re != nil && !re.MatchString(name) {
			continue
		}
		bs, inBase := base[name]
		hs, inHead := head[name]
		switch {
		case !inBase:
			fmt.Fprintf(&b, "%-60s %14s %14.0f %9s\n", name, "-", minOf(hs), "new")
		case !inHead:
			fmt.Fprintf(&b, "%-60s %14.0f %14s %9s\n", name, minOf(bs), "-", "gone")
		default:
			bm, hm := minOf(bs), minOf(hs)
			delta := hm/bm - 1
			mark := ""
			if delta > threshold {
				mark = " !"
				regressions = append(regressions, name)
			}
			fmt.Fprintf(&b, "%-60s %14.0f %14.0f %+8.1f%%%s\n", name, bm, hm, delta*100, mark)
		}
	}
	return b.String(), regressions
}

// CompareSpeedup renders the speedup table and returns the names
// failing the ≥ minRatio requirement. Only benchmarks matching re and
// present in both maps count; if re selects nothing present on both
// sides, the gate fails with a synthetic "(no benchmark matched)"
// entry, so a renamed benchmark cannot silently disarm it.
func CompareSpeedup(base, head map[string][]float64, re *regexp.Regexp, minRatio float64) (string, []string) {
	names := make([]string, 0, len(base))
	for name := range base {
		if _, ok := head[name]; ok && re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var b strings.Builder
	fmt.Fprintf(&b, "\n%-60s %14s %14s %9s\n", "speedup gate", "base ns/op", "head ns/op", "ratio")
	var misses []string
	if len(names) == 0 {
		fmt.Fprintf(&b, "%-60s\n", "(no benchmark matched on both sides)")
		return b.String(), []string{"(no benchmark matched)"}
	}
	for _, name := range names {
		bm, hm := minOf(base[name]), minOf(head[name])
		ratio := bm / hm
		mark := ""
		if ratio < minRatio {
			mark = " !"
			misses = append(misses, name)
		}
		fmt.Fprintf(&b, "%-60s %14.0f %14.0f %8.2fx%s\n", name, bm, hm, ratio, mark)
	}
	return b.String(), misses
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
