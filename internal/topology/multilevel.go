package topology

import "fmt"

// MultiLevel returns a complete tree whose fan-out varies by level:
// every switch at level i (the root is level 0) has arities[i] children,
// and the switches at level len(arities) are leaves. All rates are 1.
//
// This generalizes CompleteKAry and models the aggregation tree seen by
// a single destination in multi-tier datacenter fabrics whose tiers have
// different radices (e.g. core / aggregation / ToR).
func MultiLevel(arities []int) *Tree {
	for i, a := range arities {
		if a < 1 {
			panic(fmt.Sprintf("topology: MultiLevel arity[%d] = %d must be ≥ 1", i, a))
		}
	}
	// Count nodes level by level.
	total := 1
	width := 1
	for _, a := range arities {
		width *= a
		total += width
	}
	parent := make([]int, total)
	parent[0] = NoParent
	// Assign ids breadth-first: level boundaries are cumulative widths.
	next := 1
	prevStart, prevWidth := 0, 1
	for _, a := range arities {
		for p := prevStart; p < prevStart+prevWidth; p++ {
			for c := 0; c < a; c++ {
				parent[next] = p
				next++
			}
		}
		prevStart += prevWidth
		prevWidth *= a
	}
	return MustNew(parent, ones(total))
}

// FatTreeAggregation returns the tree a single destination sees in a
// k-port fat-tree datacenter (paper Sec. 1.1 cites fat-trees as the
// motivating topology class): traffic from every ToR switch converges
// over aggregation and core tiers toward the destination's pod. For a
// k-port fabric this is a three-tier MultiLevel tree with fan-outs
// (k/2, k/2, k/2): core level, aggregation level, and ToR level, the
// ToRs carrying the server load. k must be even and ≥ 2.
func FatTreeAggregation(kports int) (*Tree, error) {
	if kports < 2 || kports%2 != 0 {
		return nil, fmt.Errorf("topology: fat-tree needs an even port count ≥ 2, got %d", kports)
	}
	half := kports / 2
	return MultiLevel([]int{half, half, half}), nil
}
