package naas

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"soar/internal/load"
	"soar/internal/paper"
	"soar/internal/reduce"
	"soar/internal/topology"
)

func TestPlaceAndRelease(t *testing.T) {
	tr, loads := paper.Figure2()
	s := NewService(tr, 1)
	t.Cleanup(s.Close)
	lease, err := s.Place(loads, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Phi != 20 || lease.AllRed != 51 {
		t.Fatalf("lease φ=%v all-red=%v, want 20, 51", lease.Phi, lease.AllRed)
	}
	if len(lease.Blue) != 2 {
		t.Fatalf("leased %d switches, want 2", len(lease.Blue))
	}
	// Capacity 1: the second identical tenant cannot reuse switches 2, 4.
	lease2, err := s.Place(loads, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lease2.Phi <= lease.Phi {
		t.Fatalf("second tenant φ=%v should be worse than first %v", lease2.Phi, lease.Phi)
	}
	// Release the first tenant; a third tenant recovers the optimum.
	if err := s.Release(lease.ID); err != nil {
		t.Fatal(err)
	}
	lease3, err := s.Place(loads, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lease3.Phi != 20 {
		t.Fatalf("after release φ=%v, want 20", lease3.Phi)
	}
}

func TestReleaseUnknown(t *testing.T) {
	tr, _ := paper.Figure2()
	s := NewService(tr, 1)
	t.Cleanup(s.Close)
	if err := s.Release(42); err != ErrNotFound {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestPlaceValidation(t *testing.T) {
	tr, loads := paper.Figure2()
	s := NewService(tr, 1)
	t.Cleanup(s.Close)
	if _, err := s.Place([]int{1}, 2); err == nil {
		t.Fatal("short load accepted")
	}
	if _, err := s.Place([]int{-1, 0, 0, 0, 0, 0, 0}, 2); err == nil {
		t.Fatal("negative load accepted")
	}
	if _, err := s.Place(loads, -1); err == nil {
		t.Fatal("negative k accepted")
	}
}

func TestSnapshot(t *testing.T) {
	tr, loads := paper.Figure2()
	s := NewService(tr, 2)
	t.Cleanup(s.Close)
	st := s.Snapshot()
	if st.Tenants != 0 || st.CapacityUsed != 0 || st.MeanRatio != 1 {
		t.Fatalf("fresh stats %+v", st)
	}
	lease, _ := s.Place(loads, 2)
	st = s.Snapshot()
	if st.Tenants != 1 || st.CapacityUsed != 2 || st.SwitchesInUse != 2 {
		t.Fatalf("stats %+v", st)
	}
	if got, want := st.MeanRatio, lease.Ratio(); got != want {
		t.Fatalf("mean ratio %v, want %v", got, want)
	}
	if st.CapacityTotal != int64(2*tr.N()) {
		t.Fatalf("capacity total %d", st.CapacityTotal)
	}
}

func TestConcurrentTenantsNeverOversubscribe(t *testing.T) {
	tr := topology.MustBT(64)
	s := NewService(tr, 2)
	t.Cleanup(s.Close)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 10; i++ {
				loads := load.Generate(tr, load.PaperUniform(), load.LeavesOnly, rng)
				lease, err := s.Place(loads, 4)
				if err != nil {
					t.Error(err)
					return
				}
				if rng.Intn(2) == 0 {
					if err := s.Release(lease.ID); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for v, c := range s.Residual() {
		if c < 0 {
			t.Fatalf("switch %d oversubscribed: residual %d", v, c)
		}
	}
}

// --- HTTP round trips -------------------------------------------------

func newTestServer(t *testing.T) (*Service, *Client) {
	t.Helper()
	tr, _ := paper.Figure2()
	svc := NewService(tr, 2)
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	return svc, NewClient(ts.URL, ts.Client())
}

func TestHTTPLifecycle(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	loads := []int{0, 0, 0, 2, 6, 5, 4}

	lease, err := c.Place(ctx, loads, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Phi != 20 || lease.Ratio != 20.0/51 {
		t.Fatalf("lease %+v", lease)
	}
	got, err := c.Lookup(ctx, lease.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.Phi != lease.Phi || len(got.Blue) != len(lease.Blue) {
		t.Fatalf("lookup %+v vs %+v", got, lease)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenants != 1 {
		t.Fatalf("stats %+v", st)
	}
	res, err := c.Residual(ctx)
	if err != nil {
		t.Fatal(err)
	}
	used := 0
	for _, r := range res {
		if r == 1 {
			used++
		}
	}
	if used != 2 {
		t.Fatalf("%d switches show one slot used, want 2", used)
	}
	if err := c.Release(ctx, lease.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup(ctx, lease.ID); err == nil {
		t.Fatal("lookup after release succeeded")
	}
}

func TestHTTPErrors(t *testing.T) {
	_, c := newTestServer(t)
	ctx := context.Background()
	if _, err := c.Place(ctx, []int{1, 2}, 1); err == nil || !strings.Contains(err.Error(), "naas:") {
		t.Fatalf("short load over HTTP: err=%v", err)
	}
	if err := c.Release(ctx, 999); err == nil {
		t.Fatal("release of unknown tenant succeeded")
	}
	if _, err := c.Lookup(ctx, 999); err == nil {
		t.Fatal("lookup of unknown tenant succeeded")
	}
}

func TestHTTPMethodGuards(t *testing.T) {
	tr, _ := paper.Figure2()
	svc := NewService(tr, 1)
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	cases := []struct {
		method, path string
		wantStatus   int
	}{
		{http.MethodGet, "/v1/tenants", http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/stats", http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/residual", http.StatusMethodNotAllowed},
		{http.MethodPut, "/v1/tenants/1", http.StatusMethodNotAllowed},
		{http.MethodGet, "/v1/tenants/abc", http.StatusBadRequest},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
	}
}

func TestHTTPRejectsUnknownFields(t *testing.T) {
	tr, _ := paper.Figure2()
	svc := NewService(tr, 1)
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	resp, err := ts.Client().Post(ts.URL+"/v1/tenants", "application/json",
		strings.NewReader(`{"load":[0,0,0,1,1,1,1],"k":1,"surprise":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field accepted: status %d", resp.StatusCode)
	}
}

func TestCapacityExhaustionDegradesGracefully(t *testing.T) {
	// When every switch is leased out, new tenants still get (all-red)
	// placements rather than errors — mirroring the paper's online model.
	tr, loads := paper.Figure2()
	s := NewService(tr, 1)
	t.Cleanup(s.Close)
	if _, err := s.Place(loads, 7); err != nil { // takes everything useful
		t.Fatal(err)
	}
	lease, err := s.Place(loads, 7)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Ratio() != 1 || len(lease.Blue) != 0 {
		t.Fatalf("exhausted service gave ratio %v with %d switches", lease.Ratio(), len(lease.Blue))
	}
	if lease.Phi != reduce.Utilization(tr, loads, make([]bool, tr.N())) {
		t.Fatalf("exhausted lease φ=%v, want the all-red cost", lease.Phi)
	}
}

// --- Aliasing audit (regression) --------------------------------------

// TestNoAliasedState is the aliasing regression test: every slice the
// service hands out (Lease.Blue, Lease.Load, the residual vector) must
// be a defensive copy, so a caller mutating — or racing on — a returned
// value can never corrupt the service's bookkeeping.
func TestNoAliasedState(t *testing.T) {
	tr, loads := paper.Figure2()
	s := NewService(tr, 2)
	t.Cleanup(s.Close)

	lease, err := s.Place(loads, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantBlue := append([]int(nil), lease.Blue...)
	wantLoad := append([]int(nil), lease.Load...)

	// Vandalize everything Place returned.
	for i := range lease.Blue {
		lease.Blue[i] = -1
	}
	for i := range lease.Load {
		lease.Load[i] = -1
	}
	got, err := s.Lookup(lease.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Blue, wantBlue) || !reflect.DeepEqual(got.Load, wantLoad) {
		t.Fatalf("caller mutation reached the service: %+v", got)
	}

	// Vandalize everything Lookup returned; a fresh Lookup is pristine.
	for i := range got.Blue {
		got.Blue[i] = -2
	}
	for i := range got.Load {
		got.Load[i] = -2
	}
	again, err := s.Lookup(lease.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Blue, wantBlue) || !reflect.DeepEqual(again.Load, wantLoad) {
		t.Fatal("Lookup result aliases service state")
	}

	// Vandalize the residual vector; release must still reclaim cleanly.
	res := s.Residual()
	for i := range res {
		res[i] = -3
	}
	if err := s.Release(lease.ID); err != nil {
		t.Fatal(err)
	}
	for v, c := range s.Residual() {
		if c != 2 {
			t.Fatalf("switch %d residual %d after full release, want 2", v, c)
		}
	}
}

// --- HTTP API under concurrent clients --------------------------------

// TestHTTPConcurrentClients drives the HTTP control plane from many
// parallel clients on a capacity-1 network and audits the end state:
// live leases must be pairwise disjoint (capacity 1 admits no sharing)
// and the advertised residuals must conserve capacity exactly.
func TestHTTPConcurrentClients(t *testing.T) {
	tr := topology.MustBT(64)
	svc := NewService(tr, 1)
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	const clients = 8
	ctx := context.Background()
	kept := make([][]ClientLease, clients)
	var wg sync.WaitGroup
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := NewClient(ts.URL, ts.Client())
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < 8; i++ {
				loads := load.GenerateSparse(tr, load.PaperUniform(), 4, rng)
				lease, err := c.Place(ctx, loads, 3)
				if err != nil {
					t.Errorf("client %d: place: %v", g, err)
					return
				}
				if rng.Intn(2) == 0 {
					if err := c.Release(ctx, lease.ID); err != nil {
						t.Errorf("client %d: release: %v", g, err)
						return
					}
				} else {
					kept[g] = append(kept[g], *lease)
				}
			}
		}(g)
	}
	wg.Wait()

	// Disjointness: with capacity 1 no switch can appear in two live
	// leases.
	owner := make(map[int]int64)
	live := 0
	for _, ls := range kept {
		for _, l := range ls {
			live++
			for _, v := range l.Blue {
				if prev, taken := owner[v]; taken {
					t.Fatalf("switch %d leased to both tenant %d and %d", v, prev, l.ID)
				}
				owner[v] = l.ID
			}
		}
	}

	// Conservation: the residual the API advertises equals capacity
	// minus exactly the switches held by live leases.
	c := NewClient(ts.URL, ts.Client())
	res, err := c.Residual(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for v, r := range res {
		want := 1
		if _, taken := owner[v]; taken {
			want = 0
		}
		if r != want {
			t.Fatalf("switch %d residual %d, want %d", v, r, want)
		}
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenants != live {
		t.Fatalf("stats report %d tenants, want %d", st.Tenants, live)
	}
	if st.CapacityUsed != int64(len(owner)) {
		t.Fatalf("capacity used %d, want %d", st.CapacityUsed, len(owner))
	}
}
