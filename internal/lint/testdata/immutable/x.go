// Package immutable is golden-test input for the immutable analyzer:
// writes through //soar:immutable types and fields outside //soar:ctor
// functions must be flagged; constructor writes and ordinary fields
// must not.
package immutable

// Table freezes its rows after construction.
type Table struct {
	rows []int //soar:immutable
	name string
}

// Frozen is wholly immutable after construction.
//
//soar:immutable
type Frozen struct {
	vals []int
}

// NewTable builds the table; as the constructor it may write rows.
//
//soar:ctor
func NewTable(n int) *Table {
	t := &Table{}
	t.rows = make([]int, n)
	t.rows[0] = 1
	fill := func() { t.rows[1] = 2 } // FuncLits inside a ctor inherit the exemption
	fill()
	return t
}

func mutate(t *Table, f *Frozen) {
	t.rows[0] = 2         // want "assignment writes through example.com/immutable.Table.rows annotated //soar:immutable"
	t.rows = nil          // want "assignment writes through example.com/immutable.Table.rows"
	t.rows[0]++           // want "update writes through example.com/immutable.Table.rows"
	_ = append(t.rows, 3) // want "append into example.com/immutable.Table.rows"
	copy(t.rows, f.vals)  // want "copy into example.com/immutable.Table.rows"
	clear(f.vals)         // want "clear into example.com/immutable.Frozen"
	f.vals[1] = 9         // want "assignment writes through example.com/immutable.Frozen"

	t.name = "renamed" // plain field: fine
	local := t.rows[0]
	local++ // rebinding/updating a plain local: fine
	_ = local
}
