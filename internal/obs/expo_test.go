package obs

import (
	"math"
	"strings"
	"testing"
)

// TestRoundTrip is the satellite exposition-format test: write a
// registry with every metric kind and hostile label values, re-parse
// the output, and check type lines, label escaping, and the histogram
// invariants (bucket monotonicity, +Inf == _count, sum).
func TestRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("soar_rt_total", "a counter", Labels{"path": `C:\soar "quoted"` + "\nline2"})
	c.Add(7)
	g := r.Gauge("soar_rt_gauge", "a gauge\nwith newline", nil)
	g.Set(-2.5)
	h := r.Histogram("soar_rt_seconds", "a histogram", Labels{"op": "solve"}, []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	r.CounterFunc("soar_rt_func_total", "func-valued", Labels{"kind": "x"}, func() float64 { return 3 })

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	fams, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("re-parse failed: %v\npayload:\n%s", err, text)
	}
	byName := make(map[string]TextFamily)
	for _, f := range fams {
		byName[f.Name] = f
	}

	cf, ok := byName["soar_rt_total"]
	if !ok {
		t.Fatalf("counter family missing; payload:\n%s", text)
	}
	if cf.Type != "counter" {
		t.Errorf("counter TYPE = %q", cf.Type)
	}
	if len(cf.Samples) != 1 || cf.Samples[0].Value != 7 {
		t.Errorf("counter samples = %+v", cf.Samples)
	}
	if got := cf.Samples[0].Labels["path"]; got != `C:\soar "quoted"`+"\nline2" {
		t.Errorf("label escaping broke round-trip: %q", got)
	}

	gf := byName["soar_rt_gauge"]
	if gf.Type != "gauge" || len(gf.Samples) != 1 || gf.Samples[0].Value != -2.5 {
		t.Errorf("gauge family = %+v", gf)
	}
	if gf.Help != "a gauge\nwith newline" {
		t.Errorf("help escaping broke round-trip: %q", gf.Help)
	}

	ff := byName["soar_rt_func_total"]
	if ff.Type != "counter" || len(ff.Samples) != 1 || ff.Samples[0].Value != 3 {
		t.Errorf("func family = %+v", ff)
	}

	hf, ok := byName["soar_rt_seconds"]
	if !ok {
		t.Fatalf("histogram family missing; payload:\n%s", text)
	}
	if hf.Type != "histogram" {
		t.Errorf("histogram TYPE = %q", hf.Type)
	}
	bounds, cum, sum, err := HistogramSeries(hf, Labels{"op": "solve"})
	if err != nil {
		t.Fatalf("histogram invariants: %v\npayload:\n%s", err, text)
	}
	wantBounds := []float64{0.001, 0.01, 0.1, math.Inf(1)}
	wantCum := []uint64{1, 2, 3, 5}
	if len(bounds) != len(wantBounds) {
		t.Fatalf("bounds = %v, want %v", bounds, wantBounds)
	}
	for i := range wantBounds {
		if bounds[i] != wantBounds[i] || cum[i] != wantCum[i] {
			t.Errorf("bucket %d = (%v, %d), want (%v, %d)", i, bounds[i], cum[i], wantBounds[i], wantCum[i])
		}
	}
	if math.Abs(sum-5.5555) > 1e-9 {
		t.Errorf("sum = %v, want 5.5555", sum)
	}
}

func TestWriteTextSortsFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "", nil)
	r.Counter("aaa_total", "", nil)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Index(b.String(), "aaa_total") > strings.Index(b.String(), "zzz_total") {
		t.Fatalf("families not sorted:\n%s", b.String())
	}
}

func TestHistogramCountConsistentUnderConcurrency(t *testing.T) {
	// The +Inf bucket must equal _count in any scrape, even one racing
	// a recorder: both are derived from the same bucket snapshot.
	r := NewRegistry()
	h := r.Histogram("soar_rt_conc_seconds", "", nil, []float64{1, 2})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 5000; i++ {
			h.Observe(float64(i % 4))
		}
	}()
	for i := 0; i < 50; i++ {
		var b strings.Builder
		if err := r.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		fams, err := ParseText(strings.NewReader(b.String()))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range fams {
			if f.Name != "soar_rt_conc_seconds" {
				continue
			}
			if _, _, _, err := HistogramSeries(f, nil); err != nil {
				t.Fatalf("scrape %d: %v\npayload:\n%s", i, err, b.String())
			}
		}
	}
	<-done
}

func TestHistogramQuantile(t *testing.T) {
	bounds := []float64{1, 2, 4, math.Inf(1)}
	cum := []uint64{10, 20, 40, 40}
	if got := HistogramQuantile(0.5, bounds, cum); math.Abs(got-2) > 1e-9 {
		t.Errorf("p50 = %v, want 2", got)
	}
	// p95 → rank 38 of 40, inside (2,4]: 2 + 2*(38-20)/20 = 3.8
	if got := HistogramQuantile(0.95, bounds, cum); math.Abs(got-3.8) > 1e-9 {
		t.Errorf("p95 = %v, want 3.8", got)
	}
	// Empty histogram → NaN.
	if got := HistogramQuantile(0.5, bounds, []uint64{0, 0, 0, 0}); !math.IsNaN(got) {
		t.Errorf("empty quantile = %v, want NaN", got)
	}
	// Quantile in the +Inf bucket caps at the last finite bound.
	if got := HistogramQuantile(0.99, []float64{1, math.Inf(1)}, []uint64{1, 100}); got != 1 {
		t.Errorf("overflow quantile = %v, want 1", got)
	}
}

func TestParseTolerance(t *testing.T) {
	payload := "# some random comment\n" +
		"# TYPE x_total counter\n" +
		"x_total 5 1700000000\n" + // trailing timestamp tolerated
		"\n" +
		"naked_sample 1.5\n"
	fams, err := ParseText(strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]TextFamily)
	for _, f := range fams {
		byName[f.Name] = f
	}
	if byName["x_total"].Samples[0].Value != 5 {
		t.Errorf("timestamped sample = %+v", byName["x_total"])
	}
	if byName["naked_sample"].Type != "untyped" {
		t.Errorf("untyped family = %+v", byName["naked_sample"])
	}
	if _, err := ParseText(strings.NewReader("garbage without value\n")); err == nil {
		t.Error("unparseable sample line did not error")
	}
}
