package sched

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"soar/internal/load"
	"soar/internal/topology"
)

// Regression tests for the lock restructuring soarlint's lockdiscipline
// analyzer demanded: the queue send moved out from under closeMu, and
// the re-packer cycles mu around each candidate's solve instead of
// holding it across the round.

// TestCloseDoesNotBlockOnFullQueue pins the deadlock the old submit
// could cause: a submitter blocked on a full request queue while holding
// closeMu.RLock would stall Close's write-lock forever. With the send
// outside the lock, Close must return promptly no matter how many
// submitters are wedged on the queue, and every one of them must still
// get an answer (success or ErrClosed — never a hang).
func TestCloseDoesNotBlockOnFullQueue(t *testing.T) {
	tr := topology.MustBT(64)
	s := New(tr, Config{Capacity: 8, Workers: 1, QueueDepth: 1})
	rng := rand.New(rand.NewSource(7))
	loads := load.GenerateSparse(tr, load.PaperUniform(), 4, rng)

	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			var lease Lease
			for i := 0; i < 8; i++ {
				if err := s.PlaceInto(loads, 4, &lease); err != nil {
					if !errors.Is(err, ErrClosed) {
						t.Errorf("place: %v, want success or ErrClosed", err)
					}
					return
				}
				if err := s.Release(lease.ID); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("release: %v, want success or ErrClosed", err)
					return
				}
			}
		}()
	}
	close(start)
	time.Sleep(2 * time.Millisecond) // let submitters stack up on the depth-1 queue

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close blocked behind submitters stuck on a full queue")
	}
	wg.Wait()
}

// TestRepackConcurrentObservers hammers the re-packer's per-candidate
// lock cycling with concurrent foreground traffic and observers. Lookup
// must always see a lease atomically old or new, and once everything is
// released the ledger must balance back to its initial capacities —
// a mid-migration credit that leaked would leave it off. Run with -race
// to certify the unlocked availability reads of the dispatcher.
func TestRepackConcurrentObservers(t *testing.T) {
	tr := topology.MustBT(64)
	s := New(tr, Config{
		Capacity: 2,
		Workers:  2,
		Repack:   RepackConfig{Every: time.Millisecond, MaxMoves: 4},
	})
	defer s.Close()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Residual()
				s.Snapshot()
				time.Sleep(100 * time.Microsecond) // observer cadence; keep race pressure without spinning
				if l, err := s.Lookup(int64(g)); err == nil {
					if len(l.Blue) > l.K {
						t.Errorf("lookup saw torn lease: %d blues for k=%d", len(l.Blue), l.K)
					}
				}
			}
		}(g)
	}

	rng := rand.New(rand.NewSource(11))
	var live []int64
	for i := 0; i < 120; i++ {
		loads := load.GenerateSparse(tr, load.PaperUniform(), 4, rng)
		lease, err := s.Place(loads, 4)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, lease.ID)
		// Release roughly half as we go, so the re-packer always has
		// fragmentation to chew on while we run.
		if len(live) > 4 && rng.Intn(2) == 0 {
			idx := rng.Intn(len(live))
			if err := s.Release(live[idx]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:idx], live[idx+1:]...)
		}
	}
	for _, id := range live {
		if err := s.Release(id); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	readers.Wait()

	st := s.Snapshot()
	if st.Tenants != 0 || st.CapacityUsed != 0 {
		t.Fatalf("after releasing everything: %d tenants, %d capacity used", st.Tenants, st.CapacityUsed)
	}
	for _, r := range s.Residual() {
		if r != 2 {
			t.Fatalf("residual %d after full drain, want 2", r)
		}
	}
}
