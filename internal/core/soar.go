// Package core implements SOAR, the optimal dynamic-programming algorithm
// for the Bounded In-network Computing problem (φ-BIC) of
//
//	Segal, Avin, Scalosub: "SOAR: Minimizing Network Utilization with
//	Bounded In-network Computing", CoNEXT 2021.
//
// Given a weighted tree network T, a load vector L, an availability set
// Λ and a budget k, SOAR finds a set U ⊆ Λ of at most k aggregating
// ("blue") switches minimizing the network utilization cost
// φ(T, L, U) = Σ_e msg_e·ρ(e). The paper costs the sweep at O(n·h(T)·k²)
// (Thm. 4.1); this implementation clamps every subtree to its effective
// budget cap[v] = min(k, |T_v ∩ Λ|) (see EffectiveCaps and DESIGN.md),
// which brings the practical cost down to ~O(n·h(T)·k) with bitwise
// identical results.
//
// The implementation follows the paper's two phases:
//
//   - SOAR-Gather (paper Alg. 3) sweeps the tree bottom-up and fills, for
//     every switch v, a table X_v(ℓ, i): the minimal potential π of the
//     subtree T_v when i blue switches are placed inside it and the
//     nearest blue ancestor (or the destination d) is ℓ hops above v. The
//     potential (paper Eq. 4) charges T_v's internal edges plus the cost
//     its outgoing message(s) will incur on the ℓ links above.
//   - SOAR-Color (paper Alg. 4) walks top-down along the recorded argmin
//     "breadcrumbs" and assigns the colors.
//
// Both a serial engine (this file, gather.go, color.go) and a distributed
// message-passing engine (distributed.go) are provided; they produce
// identical placements.
package core

import (
	"fmt"

	"soar/internal/reduce"
	"soar/internal/topology"
)

// Result is an optimal φ-BIC solution.
type Result struct {
	// Blue[v] reports whether switch v aggregates.
	Blue []bool
	// Cost is φ(T, L, Blue), as computed by the DP. It always equals
	// reduce.Utilization(t, load, Blue).
	Cost float64
}

// Solve runs both SOAR phases and returns an optimal placement of at most
// k blue switches chosen from avail (nil means all switches available).
func Solve(t *topology.Tree, load []int, avail []bool, k int) Result {
	tb := Gather(t, load, avail, k)
	blue, cost := ColorPhase(tb)
	return Result{Blue: blue, Cost: cost}
}

// SolveCaps solves the heterogeneous-capacity generalization of φ-BIC:
// every switch v has a capacity weight caps[v] ≥ 0 and a blue at v
// consumes caps[v] units of the budget k, so the placement U minimizes
// φ(T, L, U) subject to Σ_{v ∈ U} caps[v] ≤ k over U ⊆ {v : caps[v] ≥ 1}.
// caps[v] = 0 is exactly v ∉ Λ, and a 0/1 capacity vector reproduces
// Solve's uniform model bitwise (tables, breadcrumbs and placement);
// caps == nil means every switch has capacity 1. The generalized sweep
// keeps the clamped engines' ~O(n·h(T)·k) cost: only the effective
// budgets cap[v] = min(k, Σ subtree caps) change.
func SolveCaps(t *topology.Tree, load []int, caps []int, k int) Result {
	tb := GatherCaps(t, load, caps, k)
	blue, cost := ColorPhase(tb)
	return Result{Blue: blue, Cost: cost}
}

// Strategy adapts SOAR to the placement.Strategy interface so that
// experiments can treat it uniformly with the baselines.
type Strategy struct{}

// Name implements placement.Strategy.
func (Strategy) Name() string { return "soar" }

// Place implements placement.Strategy.
func (Strategy) Place(t *topology.Tree, load []int, avail []bool, k int) []bool {
	return Solve(t, load, avail, k).Blue
}

// Tables is the dynamic-programming state produced by Gather and
// consumed by ColorPhase. It retains, per switch, the X table, the
// color choice at each (ℓ, i), and the budget-split breadcrumbs used by
// the traceback.
type Tables struct {
	t     *topology.Tree
	load  []int
	k     int
	nodes []nodeTables
}

// K returns the budget the tables were computed for.
func (tb *Tables) K() int { return tb.k } //soar:hotpath

// Tree returns the tree the tables were computed on.
func (tb *Tables) Tree() *topology.Tree { return tb.t }

// X returns X_v(ℓ, i): the minimal subtree potential for switch v with i
// blue switches in T_v and the nearest blue ancestor (or d) ℓ hops up.
// ℓ must be in [0, Depth(v)] and i in [0, k]. Storage is clamped to the
// effective budget (see EffectiveCaps): columns beyond Cap(v) read the
// cap column, which the unbounded DP proves equal.
//
//soar:hotpath
func (tb *Tables) X(v, l, i int) float64 {
	return tb.nodes[v].at(l, i)
}

// Blue reports whether the optimum at X_v(ℓ, i) colors v blue.
//
//soar:hotpath
func (tb *Tables) Blue(v, l, i int) bool {
	return tb.nodes[v].blueAt(l, i)
}

// Cap returns the effective budget cap[v] = min(k, Σ_{u ∈ T_v} c(u)) the
// tables of switch v were clamped to (min(k, |T_v ∩ Λ|) in the uniform
// model).
func (tb *Tables) Cap(v int) int { return tb.nodes[v].cap } //soar:hotpath

// Capacity returns the capacity weight c(v) the tables were computed
// with: the budget a blue at v consumes. It is 1 for available switches
// and 0 for unavailable ones in the uniform model.
func (tb *Tables) Capacity(v int) int { return tb.nodes[v].capw } //soar:hotpath

// Optimum returns the optimal utilization cost φ-BIC(T, L, Λ, k), which
// is X_r(1, k) for the root r (paper Eq. 6).
//
//soar:hotpath
func (tb *Tables) Optimum() float64 {
	return tb.X(tb.t.Root(), 1, tb.k)
}

//soar:hotpath
func validate(t *topology.Tree, load []int, avail []bool) {
	if len(load) != t.N() {
		panic(fmt.Sprintf("core: tree has %d switches but load has %d entries", t.N(), len(load)))
	}
	if avail != nil && len(avail) != t.N() {
		panic(fmt.Sprintf("core: tree has %d switches but avail has %d entries", t.N(), len(avail)))
	}
	for v, l := range load {
		if l < 0 {
			panic(fmt.Sprintf("core: switch %d has negative load %d", v, l))
		}
	}
}

// MaxCapacity bounds a single switch's capacity weight; it keeps the
// effective-budget prefix sums far from integer overflow on every
// platform while allowing any realistic heterogeneity.
const MaxCapacity = 1 << 30

func validateCaps(t *topology.Tree, load []int, caps []int) {
	validate(t, load, nil)
	if caps == nil {
		return
	}
	if len(caps) != t.N() {
		panic(fmt.Sprintf("core: tree has %d switches but caps has %d entries", t.N(), len(caps)))
	}
	for v, c := range caps {
		if c < 0 || c > MaxCapacity {
			panic(fmt.Sprintf("core: switch %d has capacity %d outside [0, %d]", v, c, MaxCapacity))
		}
	}
}

// sanity check that the DP cost of a placement matches the simulator;
// used by tests via ColorPhase's return contract.
var _ = reduce.Utilization
