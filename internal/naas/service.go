// Package naas turns SOAR into the Network-as-a-Service building block
// the paper sketches in its introduction: "cloud providers can offer
// such a service as part of their NaaS offerings, where each client can
// choose its required amount of aggregation switches based on the
// performance it needs."
//
// A Service owns one tree network and its per-switch aggregation
// capacities. Tenants arrive online with a load vector and a requested
// budget k; the service places their aggregation switches with SOAR
// against the residual capacities (exactly the Sec. 5.2 online model),
// leases the switches to the tenant, and — extending the paper's model,
// which has arrivals only — reclaims them when the tenant departs.
//
// Since the internal/sched subsystem landed, Service is a thin facade:
// all admission, concurrency control, residual bookkeeping and
// background re-packing live in sched.Scheduler (batched arrivals, a
// pool of incremental SOAR engines, commit-time conflict resolution).
// The HTTP API (server.go) exposes the service as a JSON control plane;
// Client (client.go) is its Go consumer.
package naas

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"soar/internal/cluster"
	"soar/internal/obs"
	"soar/internal/sched"
	"soar/internal/topology"
)

// ErrNotFound is returned for operations on unknown tenant ids.
var ErrNotFound = sched.ErrNotFound

// Lease describes one tenant's allocation. Leases are caller-owned
// copies of the scheduler's records: mutating one cannot corrupt or
// race the service's internal state.
type Lease = sched.Lease

// Stats summarizes the service's state.
type Stats = sched.Stats

// Service is a concurrency-safe allocator over one physical tree.
type Service struct {
	s *sched.Scheduler
	// save, when set, persists a checkpoint durably (POST /v1/checkpoint
	// and the daemon's periodic/shutdown saves all funnel through it).
	save func() (path string, size int64, err error)

	// cmet records the loopback cluster runs (POST /v1/cluster) into
	// the scheduler's registry and trace ring, so one scrape covers
	// scheduler, memo, checkpoint and cluster families alike.
	cmet *cluster.Metrics

	// cmu guards the last-run summary surfaced by ClusterSnapshot.
	cmu          sync.Mutex
	clusterRuns  int64
	lastAttempts int
	lastCause    string

	// logf, when set, receives operational log lines (degraded or
	// retried cluster runs). See SetLogf.
	logf func(format string, args ...interface{})

	// ready and draining gate GET /v1/readyz: a service reports ready
	// once its state is in place (constructors start true; a daemon
	// restoring a checkpoint clears it until the restore lands) and
	// stops the moment draining begins — before the final checkpoint —
	// so load balancers stop routing while in-flight requests still
	// complete. GET /v1/healthz ignores both: it only proves the
	// process answers.
	ready    atomic.Bool
	draining atomic.Bool
}

// NewService creates a service over tree t where every switch can serve
// at most capacity tenants simultaneously (capacity ≤ 0 means
// unlimited), with the scheduler's default batching, worker-pool and
// re-packing settings. Callers must Close the service.
func NewService(t *topology.Tree, capacity int) *Service {
	return NewServiceWith(t, sched.Config{Capacity: capacity})
}

// NewServiceCaps creates a service over a heterogeneous deployment:
// caps[v] is the number of tenants switch v can aggregate for
// simultaneously, with 0 marking a plain forwarder that never
// aggregates. Callers must Close the service.
func NewServiceCaps(t *topology.Tree, caps []int) *Service {
	return NewServiceWith(t, sched.Config{Capacities: caps})
}

// NewServiceWith creates a service with full control over the
// scheduler's configuration (batching window, engine-pool size,
// per-switch capacity vector, background re-packing).
func NewServiceWith(t *topology.Tree, cfg sched.Config) *Service {
	return FromScheduler(sched.New(t, cfg))
}

// FromScheduler wraps an already-running scheduler in the service
// facade — the path a replicated deployment takes, where the scheduler
// is owned by a shard (a promoted standby) rather than built from a
// topology here. The service serves the scheduler's HTTP surface but
// does not own its lifecycle beyond Close.
func FromScheduler(sc *sched.Scheduler) *Service {
	s := &Service{s: sc, cmet: cluster.NewMetrics(sc.Registry(), sc.Trace())}
	s.ready.Store(true)
	return s
}

// Tree returns the service's network.
func (s *Service) Tree() *topology.Tree { return s.s.Tree() }

// Scheduler exposes the underlying placement scheduler (metrics,
// explicit re-packing).
func (s *Service) Scheduler() *sched.Scheduler { return s.s }

// Close stops the service's scheduler: pending requests are answered,
// background goroutines exit, and later calls fail with
// sched.ErrClosed.
func (s *Service) Close() { s.s.Close() }

// Place admits one tenant: it runs SOAR restricted to switches with
// residual capacity, charges the chosen switches, and returns the lease.
func (s *Service) Place(load []int, k int) (*Lease, error) {
	return s.s.Place(load, k)
}

// Release ends a tenant's lease and reclaims its switches — the
// departure half of the arrival/departure lifecycle (the paper's online
// model covers arrivals only; see DESIGN.md).
func (s *Service) Release(id int64) error { return s.s.Release(id) }

// Lookup returns a copy of a lease, reflecting any re-packer migration
// since it was placed.
func (s *Service) Lookup(id int64) (*Lease, error) { return s.s.Lookup(id) }

// Snapshot returns current service statistics.
func (s *Service) Snapshot() Stats { return s.s.Snapshot() }

// Residual returns a copy of the per-switch residual capacities.
func (s *Service) Residual() []int { return s.s.Residual() }

// Checkpoint writes the service's durable control-plane state — the
// capacity ledger and every active lease — to w in the internal/wire
// checkpoint format. Safe to call while serving traffic; the snapshot
// is consistent (see sched.Scheduler.Checkpoint).
func (s *Service) Checkpoint(w io.Writer) error { return s.s.Checkpoint(w) }

// Restore replays a checkpoint into a freshly created service. It must
// run before the service admits any tenant or serves HTTP traffic; a
// corrupted, truncated or wrong-topology checkpoint is rejected without
// installing anything (see sched.Scheduler.Restore).
func (s *Service) Restore(r io.Reader) error { return s.s.Restore(r) }

// Registry returns the service's metrics registry: every scheduler,
// memo, checkpoint and cluster family this service records, ready for
// GET /metrics (obs.Registry.WriteText).
func (s *Service) Registry() *obs.Registry { return s.s.Registry() }

// Trace returns the service's span ring: per-stage timings for
// admissions, batches, solves, checkpoints and cluster frames, newest
// first via Dump (GET /v1/trace).
func (s *Service) Trace() *obs.Trace { return s.s.Trace() }

// ClusterStats summarizes the service's loopback cluster runs for
// /v1/stats. Degraded counts runs answered by the local fallback
// solve after transport retries were exhausted.
type ClusterStats struct {
	ClusterRuns     int64  `json:"cluster_runs"`
	ClusterDegraded int64  `json:"cluster_degraded"`
	LastRunAttempts int    `json:"last_run_attempts"`
	LastCause       string `json:"last_degraded_cause,omitempty"`
}

// ClusterSnapshot returns the cluster-run summary.
func (s *Service) ClusterSnapshot() ClusterStats {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	return ClusterStats{
		ClusterRuns:     s.clusterRuns,
		ClusterDegraded: int64(s.cmet.Degraded()),
		LastRunAttempts: s.lastAttempts,
		LastCause:       s.lastCause,
	}
}

// ClusterRun replays lease id's placement problem over the loopback
// cluster runtime (internal/cluster): every switch gets a real TCP
// listener, the SOAR tables travel as wire frames, and transport
// faults degrade to a local solve instead of erroring
// (cluster.RunOrFallback). The run solves the tenant's problem on the
// bare tree — residual capacities from other tenants are not charged —
// so it verifies the wire protocol against the tenant's own optimum,
// not the admission-time placement. Results feed the soar_cluster_*
// metric families and /v1/stats' degradation summary.
func (s *Service) ClusterRun(ctx context.Context, id int64) (*cluster.Result, error) {
	lease, err := s.Lookup(id)
	if err != nil {
		return nil, err
	}
	res, err := cluster.RunOrFallback(ctx, s.Tree(), lease.Load, nil, lease.K,
		&cluster.Options{Metrics: s.cmet})
	if err != nil {
		return nil, err
	}
	s.cmu.Lock()
	s.clusterRuns++
	s.lastAttempts = res.Attempts
	if res.Degraded {
		s.lastCause = fmt.Sprint(res.Cause)
	}
	logf := s.logf
	s.cmu.Unlock()
	if logf != nil {
		switch {
		case res.Degraded:
			logf("naas: cluster run for lease %d DEGRADED after %d attempts: %v", id, res.Attempts, res.Cause)
		case res.Attempts > 1:
			logf("naas: cluster run for lease %d recovered on attempt %d", id, res.Attempts)
		}
	}
	return res, nil
}

// SetLogf routes the service's operational log lines — degraded or
// retried cluster runs — to fn (e.g. log.Printf). It must be called
// before the service serves traffic; nil (the default) silences them.
func (s *Service) SetLogf(fn func(format string, args ...interface{})) {
	s.cmu.Lock()
	s.logf = fn
	s.cmu.Unlock()
}

// SetReady flips the readiness half of GET /v1/readyz. The daemon
// clears it before restoring a checkpoint and sets it once the restore
// (or an empty start) completes.
func (s *Service) SetReady(v bool) { s.ready.Store(v) }

// SetDraining marks the service as shutting down: GET /v1/readyz
// starts failing immediately so load balancers drain, while every
// other endpoint keeps answering until the listener closes. Call it
// before the final checkpoint save, not after.
func (s *Service) SetDraining(v bool) { s.draining.Store(v) }

// Ready reports whether the service should receive new traffic:
// restored and not draining.
func (s *Service) Ready() bool { return s.ready.Load() && !s.draining.Load() }

// Draining reports whether shutdown has begun.
func (s *Service) Draining() bool { return s.draining.Load() }

// SetCheckpointSaver registers the durable checkpoint sink invoked by
// POST /v1/checkpoint: fn persists a checkpoint and reports where and
// how many bytes. It must be called before the service starts serving
// HTTP traffic (it is not synchronized against the handler).
func (s *Service) SetCheckpointSaver(fn func() (path string, size int64, err error)) {
	s.save = fn
}
