package core

import (
	"math"

	"soar/internal/topology"
)

// SolveCompact is the low-memory variant of Solve: SOAR-Gather stores
// only the X tables (no per-child argmin breadcrumbs), and SOAR-Color
// re-derives each visited node's budget splits for the single ℓ* it is
// assigned. This trades O(Σ_v C(v)·h·cap) split storage for an extra
// O(C(v)·k²) of arithmetic per *visited* node during coloring — the
// memory/time design choice recorded in DESIGN.md and measured by
// BenchmarkGatherMemory. Results are identical to Solve.
func SolveCompact(t *topology.Tree, load []int, avail []bool, k int) Result {
	tb := GatherCompact(t, load, avail, k)
	blue, cost := ColorPhaseCompact(tb, load)
	return Result{Blue: blue, Cost: cost}
}

// SolveCompactCaps is SolveCompact under the heterogeneous capacity
// model (see SolveCaps): a blue at v consumes caps[v] budget units.
func SolveCompactCaps(t *topology.Tree, load []int, caps []int, k int) Result {
	tb := GatherCompactCaps(t, load, caps, k)
	blue, cost := ColorPhaseCompact(tb, load)
	return Result{Blue: blue, Cost: cost}
}

// GatherCompact runs SOAR-Gather without recording split breadcrumbs.
// The returned tables support X, Blue and Optimum, but ColorPhase
// requires breadcrumbs — use ColorPhaseCompact instead.
func GatherCompact(t *topology.Tree, load []int, avail []bool, k int) *Tables {
	validate(t, load, avail)
	if k < 0 {
		k = 0
	}
	return gatherSerial(t, load, avail, nil, k, false)
}

// GatherCompactCaps is GatherCompact under the heterogeneous capacity
// model.
func GatherCompactCaps(t *topology.Tree, load []int, caps []int, k int) *Tables {
	validateCaps(t, load, caps)
	if k < 0 {
		k = 0
	}
	return gatherSerial(t, load, nil, caps, k, false)
}

// ColorPhaseCompact assigns colors from breadcrumb-free tables: at every
// visited node it recomputes the Y merge rows for its single assigned ℓ*
// and walks them backwards exactly as the paper's mSplit does. Child
// tables are read through their effective caps (reads past a cap clamp
// to the last column), which reproduces the unbounded scan bitwise.
// Color feasibility needs no availability input: the tables record each
// node's capacity weight, and an infeasible blue never wins a cell.
func ColorPhaseCompact(tb *Tables, load []int) ([]bool, float64) {
	t := tb.t
	k := tb.k
	subLoad := t.SubtreeLoads(load)
	blue := make([]bool, t.N())

	type frame struct {
		v, i, l int
	}
	stack := []frame{{t.Root(), k, 1}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v := f.v
		children := t.Children(v)
		isBlue := tb.nodes[v].blueAt(f.l, f.i)
		blue[v] = isBlue
		if len(children) == 0 {
			continue
		}

		// Rebuild Y^m rows for this node's (ℓ*, color), m = 1..C. Rows
		// are capv+1 wide — the node's effective cap, not the raw budget
		// k: every Y^m is constant beyond its running prefix cap, the
		// prefix cap never exceeds capv, and reads past capv clamp to
		// the last column exactly like nodeTables.at. That keeps the
		// rebuild identical to the unbounded scan (same values, same
		// first-improvement argmins) while a huge-k sparse-Λ solve costs
		// rows of width |Λ|+1 instead of k+1.
		rho := t.RhoUp(v, f.l)
		capv := tb.nodes[v].cap
		capw := tb.nodes[v].capw // budget a blue v consumes (1 uniform)
		bsend := 0.0
		if subLoad[v] > 0 {
			bsend = 1
		}
		rows := make([][]float64, len(children)) // rows[m-1][i] = Y^m for v's color
		childCap := func(m int) int { return tb.nodes[children[m]].cap }
		childX := func(m, j int) float64 {
			nt := &tb.nodes[children[m]]
			if isBlue {
				return nt.at(1, j) // child sees ℓ = 1 below a blue v
			}
			return nt.at(f.l+1, j)
		}
		first := make([]float64, capv+1)
		var capP int // running prefix cap; rows are constant beyond it
		if isBlue {
			capP = min(capv, capw+childCap(0)) // blue ⇒ capw ≤ capv
			for i := 0; i < capw; i++ {
				first[i] = math.Inf(1)
			}
			for i := capw; i <= capP; i++ {
				first[i] = childX(0, i-capw) + rho*bsend
			}
		} else {
			capP = min(capv, childCap(0))
			for i := 0; i <= capP; i++ {
				first[i] = childX(0, i) + rho*float64(load[v])
			}
		}
		for i := capP + 1; i <= capv; i++ {
			first[i] = first[capP]
		}
		rows[0] = first
		for m := 1; m < len(children); m++ {
			prev := rows[m-1]
			row := make([]float64, capv+1)
			cm := childCap(m)
			newCapP := min(capv, capP+cm)
			for i := 0; i <= newCapP; i++ {
				best := math.Inf(1)
				for j := 0; j <= min(i, cm); j++ {
					if c := prev[i-j] + childX(m, j); c < best {
						best = c
					}
				}
				row[i] = best
			}
			for i := newCapP + 1; i <= capv; i++ {
				row[i] = row[newCapP]
			}
			rows[m] = row
			capP = newCapP
		}

		// mSplit (paper Alg. 4 lines 18-22), children in reverse order.
		// remaining may exceed capv (the root frame starts at the raw
		// k), so prev reads clamp; truncating the scan at cap(c_m) picks
		// the same argmin because Y^m is non-increasing and X_{c_m} is
		// constant beyond the child's cap.
		remaining := f.i
		childL := f.l + 1
		if isBlue {
			childL = 1
		}
		for m := len(children) - 1; m >= 1; m-- {
			prev := rows[m-1]
			cm := childCap(m)
			bestJ, bestC := 0, math.Inf(1)
			for j := 0; j <= min(remaining, cm); j++ {
				if c := prev[min(remaining-j, capv)] + childX(m, j); c < bestC {
					bestC, bestJ = c, j
				}
			}
			stack = append(stack, frame{children[m], bestJ, childL})
			remaining -= bestJ
		}
		if isBlue {
			remaining -= capw
		}
		stack = append(stack, frame{children[0], remaining, childL})
	}
	return blue, tb.Optimum()
}
