# Developer entry points. CI runs the same targets; see
# .github/workflows/ci.yml.

GO ?= go

.PHONY: all build test race soak bench cover fmt vet lint soarlint clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrent scheduler makes race detection mandatory.
race:
	$(GO) test -race ./...

# The robustness acceptance test: churning tenants under checkpoint/
# kill/restore cycles plus the cluster protocol under injected
# transport faults, all under the race detector (CI's chaos-soak job).
soak:
	$(GO) test -race -count=1 -run '^TestChaosSoak$$' -v ./internal/sched
	$(GO) test -race -count=1 -run 'Chaos|Fallback|Retry|FrameTimeout' ./internal/cluster

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

# Same pinned staticcheck CI runs (network required on first run),
# then the in-repo analyzer suite (pure stdlib, no network). soarlint
# proves the //soar: annotation contracts: immutable, hotpath,
# lockdiscipline, capclamp — see DESIGN.md "Statically-checked
# invariants".
lint:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@2025.1.1 ./...
	$(GO) run ./cmd/soarlint ./...

# Just the in-repo suite: fast, offline, run it on every save.
soarlint:
	$(GO) run ./cmd/soarlint ./...

# Bench trajectory: run the key benchmarks once and keep the raw
# test2json streams as artifacts, so performance history accumulates
# alongside the code (both files are also uploaded by CI). One
# iteration per benchmark keeps this fast enough to run on every push;
# use `go test -bench . -benchtime 3s ./...` for real measurements.
# BENCH_sched.json tracks the serving layer (scheduler, re-packer);
# BENCH_core.json tracks the solver hot path (plain, memoized, sparse
# and incremental Gather).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkScheduler|BenchmarkRepackRound' \
		-benchtime 1x -json ./internal/sched > BENCH_sched.json
	@echo "BENCH_sched.json: $$(grep -c 'ns/op' BENCH_sched.json) benchmark results"
	$(GO) test -run '^$$' -bench 'BenchmarkGather$$|BenchmarkGatherMemo|BenchmarkGatherSparse|BenchmarkIncremental' \
		-benchtime 1x -json . > BENCH_core.json
	@echo "BENCH_core.json: $$(grep -c 'ns/op' BENCH_core.json) benchmark results"

# Coverage gate (CI's coverage job): the solver core must stay at or
# above 85% statement coverage and the module overall at or above 70%.
# cover.html is the browsable annotated source. The core floor uses a
# dedicated profile so cross-package test coverage cannot inflate it.
cover:
	$(GO) test -coverprofile=cover.out ./...
	$(GO) test -coverprofile=cover_core.out ./internal/core
	$(GO) tool cover -html=cover.out -o cover.html
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	core=$$($(GO) tool cover -func=cover_core.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	echo "coverage: module $$total% (floor 70%), internal/core $$core% (floor 85%)"; \
	awk -v t="$$total" -v c="$$core" 'BEGIN { \
		bad = 0; \
		if (t+0 < 70) { print "FAIL: module coverage " t "% below the 70% floor"; bad = 1 } \
		if (c+0 < 85) { print "FAIL: internal/core coverage " c "% below the 85% floor"; bad = 1 } \
		exit bad }'

clean:
	rm -f BENCH_sched.json BENCH_core.json cover.out cover_core.out cover.html
