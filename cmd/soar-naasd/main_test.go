package main

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"soar/internal/naas"
	"soar/internal/paper"
)

// TestDebugMuxServesPprof pins the -debug-addr surface: the explicit
// mux must serve the pprof index and subhandlers, and nothing else.
func TestDebugMuxServesPprof(t *testing.T) {
	srv := httptest.NewServer(debugMux())
	t.Cleanup(srv.Close)
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("debug listener must not serve the control plane")
	}
}

func TestSaveAndRestoreCheckpointFile(t *testing.T) {
	tr, loads := paper.Figure2()
	svc := naas.NewService(tr, 2)
	lease, err := svc.Place(loads, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "naas.ckpt")
	size, err := saveCheckpoint(svc, path)
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	st, err := os.Stat(path)
	if err != nil || st.Size() != size {
		t.Fatalf("checkpoint file: %v (size %d, reported %d)", err, st.Size(), size)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	svc.Close()

	fresh := naas.NewService(tr, 2)
	t.Cleanup(fresh.Close)
	if err := restoreCheckpoint(fresh, path); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if _, err := fresh.Lookup(lease.ID); err != nil {
		t.Fatalf("lease lost across the daemon restart path: %v", err)
	}
}

// TestSaveCheckpointBoundedHungDisk is the satellite regression test:
// a sink wedged on a hung disk must not wedge the caller. The bounded
// save returns the deadline error, concurrent saves surface as
// errCkptBusy rather than queueing goroutines behind the dead disk,
// and once the disk recovers the saver works again.
func TestSaveCheckpointBoundedHungDisk(t *testing.T) {
	tr, loads := paper.Figure2()
	svc := naas.NewService(tr, 2)
	t.Cleanup(svc.Close)
	if _, err := svc.Place(loads, 2); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "naas.ckpt")

	release := make(chan struct{})
	hung := func(path string, data []byte) (int64, error) {
		<-release
		return writeCkptFile(path, data)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := saveCheckpointBounded(ctx, svc, path, hung); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hung sink: err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("bounded save blocked %v on a hung disk", elapsed)
	}

	// The abandoned write still owns the temp file: a second save must
	// fail fast with busy, not stack up behind it.
	if _, err := saveCheckpointBounded(context.Background(), svc, path, writeCkptFile); !errors.Is(err, errCkptBusy) {
		t.Fatalf("save during hung save: err = %v, want errCkptBusy", err)
	}

	// Disk recovers: the abandoned write completes in the background and
	// the saver is usable again.
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := saveCheckpoint(svc, path); err == nil {
			break
		} else if !errors.Is(err, errCkptBusy) {
			t.Fatalf("save after recovery: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("saver never recovered after the disk unwedged")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint landed after recovery: %v", err)
	}
}

func TestRestoreMissingFileIsFreshStart(t *testing.T) {
	tr, _ := paper.Figure2()
	svc := naas.NewService(tr, 2)
	t.Cleanup(svc.Close)
	if err := restoreCheckpoint(svc, filepath.Join(t.TempDir(), "absent.ckpt")); err != nil {
		t.Fatalf("missing checkpoint treated as error: %v", err)
	}
}
