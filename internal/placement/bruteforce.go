package placement

import (
	"math"

	"soar/internal/reduce"
	"soar/internal/topology"
)

// BruteForce enumerates every subset U ⊆ Λ with |U| ≤ k and returns a
// minimizer of φ. It is exponential and guarded by MaxNodes; it exists to
// certify SOAR's optimality on small random instances in tests and to
// check the uniqueness claims of the paper's Fig. 3.
type BruteForce struct {
	// MaxNodes caps |Λ|; Place panics beyond it (default 20).
	MaxNodes int
}

// Name implements Strategy.
func (BruteForce) Name() string { return "brute-force" }

// Place implements Strategy.
func (b BruteForce) Place(t *topology.Tree, load []int, avail []bool, k int) []bool {
	blue, _ := b.Search(t, load, avail, k)
	return blue
}

// Search returns an optimal blue set and its φ.
func (b BruteForce) Search(t *topology.Tree, load []int, avail []bool, k int) ([]bool, float64) {
	best := make([]bool, t.N())
	bestCost := math.Inf(1)
	b.enumerate(t, load, avail, k, func(cur []bool, cost float64) {
		if cost < bestCost {
			bestCost = cost
			copy(best, cur)
		}
	})
	return best, bestCost
}

// AllOptima returns every subset U ⊆ Λ with |U| ≤ k achieving the optimal
// φ (within tolerance eps), each subset exactly once. Used to verify the
// paper's uniqueness claims for Fig. 3 (k = 2, 3).
func (b BruteForce) AllOptima(t *topology.Tree, load []int, avail []bool, k int, eps float64) ([][]bool, float64) {
	_, bestCost := b.Search(t, load, avail, k)
	var optima [][]bool
	b.enumerate(t, load, avail, k, func(cur []bool, cost float64) {
		if math.Abs(cost-bestCost) <= eps {
			optima = append(optima, append([]bool(nil), cur...))
		}
	})
	return optima, bestCost
}

// SearchCaps returns an optimal blue set and its φ under the
// heterogeneous capacity model: U ranges over subsets of {v : caps[v] ≥ 1}
// with Σ_{v ∈ U} caps[v] ≤ k (a blue at v consumes caps[v] of the
// budget; caps == nil means every switch has capacity 1). It is the
// exponential oracle certifying core.SolveCaps on small instances.
func (b BruteForce) SearchCaps(t *topology.Tree, load []int, caps []int, k int) ([]bool, float64) {
	best := make([]bool, t.N())
	bestCost := math.Inf(1)
	b.enumerateCaps(t, load, caps, k, func(cur []bool, cost float64) {
		if cost < bestCost {
			bestCost = cost
			copy(best, cur)
		}
	})
	return best, bestCost
}

// enumerate visits every subset of the available switches of size ≤ k
// exactly once and reports its φ.
func (b BruteForce) enumerate(t *topology.Tree, load []int, avail []bool, k int, visit func(cur []bool, cost float64)) {
	max := b.MaxNodes
	if max == 0 {
		max = 20
	}
	a := availOrAll(t, avail)
	cand := candidateIDs(t, a)
	if len(cand) > max {
		panic("placement: BruteForce beyond MaxNodes")
	}
	cur := make([]bool, t.N())
	var rec func(idx, budget int)
	rec = func(idx, budget int) {
		if idx == len(cand) || budget == 0 {
			visit(cur, reduce.Utilization(t, load, cur))
			return
		}
		cur[cand[idx]] = true
		rec(idx+1, budget-1)
		cur[cand[idx]] = false
		rec(idx+1, budget)
	}
	rec(0, k)
}

// enumerateCaps visits every subset U of {v : caps[v] ≥ 1} with
// Σ caps ≤ k exactly once and reports its φ.
func (b BruteForce) enumerateCaps(t *topology.Tree, load []int, caps []int, k int, visit func(cur []bool, cost float64)) {
	max := b.MaxNodes
	if max == 0 {
		max = 20
	}
	capOf := func(v int) int {
		if caps == nil {
			return 1
		}
		return caps[v]
	}
	cand := make([]int, 0, t.N())
	for v := 0; v < t.N(); v++ {
		if capOf(v) >= 1 {
			cand = append(cand, v)
		}
	}
	if len(cand) > max {
		panic("placement: BruteForce beyond MaxNodes")
	}
	cur := make([]bool, t.N())
	var rec func(idx, budget int)
	rec = func(idx, budget int) {
		if idx == len(cand) {
			visit(cur, reduce.Utilization(t, load, cur))
			return
		}
		if c := capOf(cand[idx]); c <= budget {
			cur[cand[idx]] = true
			rec(idx+1, budget-c)
			cur[cand[idx]] = false
		}
		rec(idx+1, budget)
	}
	rec(0, k)
}
