package main

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"soar/internal/naas"
	"soar/internal/paper"
)

// TestDebugMuxServesPprof pins the -debug-addr surface: the explicit
// mux must serve the pprof index and subhandlers, and nothing else.
func TestDebugMuxServesPprof(t *testing.T) {
	srv := httptest.NewServer(debugMux())
	t.Cleanup(srv.Close)
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("debug listener must not serve the control plane")
	}
}

func TestSaveAndRestoreCheckpointFile(t *testing.T) {
	tr, loads := paper.Figure2()
	svc := naas.NewService(tr, 2)
	lease, err := svc.Place(loads, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "naas.ckpt")
	size, err := saveCheckpoint(svc, path)
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	st, err := os.Stat(path)
	if err != nil || st.Size() != size {
		t.Fatalf("checkpoint file: %v (size %d, reported %d)", err, st.Size(), size)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	svc.Close()

	fresh := naas.NewService(tr, 2)
	t.Cleanup(fresh.Close)
	if err := restoreCheckpoint(fresh, path); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if _, err := fresh.Lookup(lease.ID); err != nil {
		t.Fatalf("lease lost across the daemon restart path: %v", err)
	}
}

func TestRestoreMissingFileIsFreshStart(t *testing.T) {
	tr, _ := paper.Figure2()
	svc := naas.NewService(tr, 2)
	t.Cleanup(svc.Close)
	if err := restoreCheckpoint(svc, filepath.Join(t.TempDir(), "absent.ckpt")); err != nil {
		t.Fatalf("missing checkpoint treated as error: %v", err)
	}
}
