// MapReduce word count (the paper's WC use case, Sec. 5.3): servers hold
// shards of a Zipf-distributed corpus, each emits a word→count
// dictionary, and in-network aggregation switches merge dictionaries on
// the way to the destination. The example contrasts utilization (what
// SOAR optimizes) with actual bytes on the wire (which benefit even
// faster, because merged dictionaries saturate).
//
//	go run ./examples/mapreduce
package main

import (
	"fmt"
	"log"
	"math/rand"

	"soar/internal/core"
	"soar/internal/load"
	"soar/internal/reduce"
	"soar/internal/topology"
	"soar/internal/wordcount"
)

func main() {
	t, err := topology.BT(64)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	loads := load.Generate(t, load.PaperPowerLaw(), load.LeavesOnly, rng)
	servers := int(load.Total(loads))

	// A 600K-word corpus over a 20K vocabulary, sharded evenly across
	// the servers (a scaled-down Wikipedia; see DESIGN.md).
	cfg := wordcount.Config{TotalWords: 600_000, Vocabulary: 20_000, Exponent: 1.1}
	agg := wordcount.NewAggregator(cfg, servers, 1)

	allRed := make([]bool, t.N())
	allBlue := make([]bool, t.N())
	for i := range allBlue {
		allBlue[i] = true
	}
	utilRed := reduce.Utilization(t, loads, allRed)
	bytesRed := reduce.ByteComplexity(t, loads, allRed, agg).TotalBytes
	bytesBlue := reduce.ByteComplexity(t, loads, allBlue, agg).TotalBytes

	fmt.Printf("word count over %d servers (%d words, vocab %d)\n",
		servers, cfg.TotalWords, cfg.Vocabulary)
	fmt.Printf("all-red:  %8.0f utilization, %6.2f MB on the wire\n",
		utilRed, mb(bytesRed))
	fmt.Printf("all-blue: %8.0f utilization, %6.2f MB on the wire\n\n",
		reduce.Utilization(t, loads, allBlue), mb(bytesBlue))

	fmt.Printf("%-4s %12s %12s %12s %14s\n", "k", "util ratio", "bytes (MB)", "vs all-red", "vs all-blue")
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		res := core.Solve(t, loads, nil, k)
		b := reduce.ByteComplexity(t, loads, res.Blue, agg).TotalBytes
		fmt.Printf("%-4d %12.3f %12.2f %12.3f %14.3f\n",
			k, res.Cost/utilRed, mb(b),
			float64(b)/float64(bytesRed), float64(b)/float64(bytesBlue))
	}
	fmt.Println("\nNote how WC bytes approach the all-blue floor after just a few")
	fmt.Println("aggregation switches — the paper's Fig. 8c takeaway.")
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }
