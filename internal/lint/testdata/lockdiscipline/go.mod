module example.com/lockdiscipline

go 1.24
