package sched

import (
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"soar/internal/core"
	"soar/internal/load"
	"soar/internal/paper"
	"soar/internal/reduce"
	"soar/internal/topology"
)

// seqBaseline replicates the pre-scheduler serving path: one mutex-free
// sequential loop running a from-scratch core.Solve per arrival against
// the residual capacities — the Sec. 5.2 online model verbatim. The
// scheduler must be observably identical to it for single-threaded
// request orders.
type seqBaseline struct {
	t        *topology.Tree
	residual []int
	leases   map[int64][]int
	nextID   int64
}

func newSeqBaseline(t *topology.Tree, capacity int) *seqBaseline {
	b := &seqBaseline{t: t, residual: make([]int, t.N()), leases: make(map[int64][]int)}
	for v := range b.residual {
		b.residual[v] = capacity
	}
	return b
}

func (b *seqBaseline) place(loads []int, k int) *Lease {
	avail := make([]bool, b.t.N())
	for v, c := range b.residual {
		avail[v] = c > 0
	}
	res := core.Solve(b.t, loads, avail, k)
	lease := &Lease{
		ID:     b.nextID,
		K:      k,
		Phi:    res.Cost,
		AllRed: reduce.Utilization(b.t, loads, make([]bool, b.t.N())),
		Load:   append([]int(nil), loads...),
	}
	b.nextID++
	for v, blue := range res.Blue {
		if blue {
			b.residual[v]--
			lease.Blue = append(lease.Blue, v)
		}
	}
	b.leases[lease.ID] = lease.Blue
	return lease
}

func (b *seqBaseline) release(id int64) bool {
	blue, ok := b.leases[id]
	if !ok {
		return false
	}
	for _, v := range blue {
		b.residual[v]++
	}
	delete(b.leases, id)
	return true
}

// TestSchedulerMatchesSequential is the equivalence acceptance test:
// for an identical single-threaded order of Place/Release requests, the
// scheduler issues leases identical (ids, switches, φ, all-red) to the
// sequential from-scratch baseline, and ends in the same residual
// state. Run twice: with no batching window and with one, since the
// window only changes coalescing, never results.
func TestSchedulerMatchesSequential(t *testing.T) {
	runSequentialEquivalence(t, false)
}

// TestSchedulerMemoMatchesSequential is the same acceptance test with
// the cross-request solve cache on: memoized engines must stay
// lease-for-lease identical to the from-scratch sequential model.
func TestSchedulerMemoMatchesSequential(t *testing.T) {
	runSequentialEquivalence(t, true)
}

func runSequentialEquivalence(t *testing.T, memo bool) {
	for _, window := range []time.Duration{0, 200 * time.Microsecond} {
		tr := topology.MustBT(128)
		s := New(tr, Config{Capacity: 2, Workers: 3, Window: window, Memo: memo})
		base := newSeqBaseline(tr, 2)
		rng := rand.New(rand.NewSource(42))
		var live []int64

		for step := 0; step < 160; step++ {
			if len(live) > 0 && rng.Intn(5) < 2 {
				id := live[rng.Intn(len(live))]
				gotErr := s.Release(id)
				if ok := base.release(id); ok != (gotErr == nil) {
					t.Fatalf("window=%v step %d: release(%d) scheduler err=%v baseline ok=%v", window, step, id, gotErr, ok)
				}
				for i, l := range live {
					if l == id {
						live = append(live[:i], live[i+1:]...)
						break
					}
				}
				continue
			}
			loads := load.GenerateSparse(tr, load.PaperPowerLaw(), 4+rng.Intn(8), rng)
			k := []int{2, 4, 8}[rng.Intn(3)]
			got, err := s.Place(loads, k)
			if err != nil {
				t.Fatalf("window=%v step %d: place: %v", window, step, err)
			}
			want := base.place(loads, k)
			if got.ID != want.ID || got.K != want.K || got.Phi != want.Phi || got.AllRed != want.AllRed {
				t.Fatalf("window=%v step %d: lease %+v, want %+v", window, step, got, want)
			}
			if !reflect.DeepEqual(got.Blue, want.Blue) {
				t.Fatalf("window=%v step %d: blue %v, want %v", window, step, got.Blue, want.Blue)
			}
			if !reflect.DeepEqual(got.Load, want.Load) {
				t.Fatalf("window=%v step %d: lease load mismatch", window, step)
			}
			live = append(live, got.ID)
		}
		if got := s.Residual(); !reflect.DeepEqual(got, base.residual) {
			t.Fatalf("window=%v: final residuals diverge", window)
		}
		st := s.Snapshot()
		if st.Tenants != len(base.leases) {
			t.Fatalf("window=%v: %d tenants, want %d", window, st.Tenants, len(base.leases))
		}
		s.Close()
	}
}

// TestConcurrentPlaceRelease hammers the scheduler from many goroutines
// and then audits the ledger: residuals never negative, and the slots
// in use equal exactly the switches held by live leases.
func TestConcurrentPlaceRelease(t *testing.T) {
	tr := topology.MustBT(64)
	s := New(tr, Config{Capacity: 2, Workers: 4, Window: 100 * time.Microsecond})
	defer s.Close()

	const goroutines = 8
	var mu sync.Mutex
	live := make(map[int64][]int)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			var lease Lease
			var mine []int64
			for i := 0; i < 25; i++ {
				loads := load.GenerateSparse(tr, load.PaperUniform(), 4, rng)
				if err := s.PlaceInto(loads, 4, &lease); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				live[lease.ID] = append([]int(nil), lease.Blue...)
				mu.Unlock()
				mine = append(mine, lease.ID)
				if rng.Intn(2) == 0 {
					id := mine[rng.Intn(len(mine))]
					mu.Lock()
					_, held := live[id]
					delete(live, id)
					mu.Unlock()
					if held {
						if err := s.Release(id); err != nil {
							t.Errorf("release(%d): %v", id, err)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Audit: the re-packer is off, so live leases still hold exactly the
	// switches they were granted.
	used := make([]int, tr.N())
	for id, blue := range live {
		got, err := s.Lookup(id)
		if err != nil {
			t.Fatalf("lookup(%d): %v", id, err)
		}
		if !reflect.DeepEqual(got.Blue, blue) {
			t.Fatalf("lease %d drifted: %v vs %v", id, got.Blue, blue)
		}
		for _, v := range blue {
			used[v]++
		}
	}
	for v, res := range s.Residual() {
		if res < 0 {
			t.Fatalf("switch %d oversubscribed: residual %d", v, res)
		}
		if res != 2-used[v] {
			t.Fatalf("switch %d: residual %d with %d slots held", v, res, used[v])
		}
	}
	st := s.Snapshot()
	if st.Tenants != len(live) {
		t.Fatalf("snapshot has %d tenants, want %d", st.Tenants, len(live))
	}
	m := s.Metrics()
	if m.Placed != goroutines*25 {
		t.Fatalf("placed %d, want %d", m.Placed, goroutines*25)
	}
	if m.Batches == 0 || m.MeanBatch < 1 {
		t.Fatalf("batch metrics %+v", m)
	}
	if m.PlaceP99 < m.PlaceP50 || m.PlaceP50 <= 0 {
		t.Fatalf("latency quantiles inconsistent: %+v", m)
	}
}

func TestPlaceValidation(t *testing.T) {
	tr, loads := paper.Figure2()
	s := New(tr, Config{Capacity: 1, Workers: 1})
	defer s.Close()
	if _, err := s.Place([]int{1}, 2); err == nil {
		t.Fatal("short load accepted")
	}
	if _, err := s.Place([]int{-1, 0, 0, 0, 0, 0, 0}, 2); err == nil {
		t.Fatal("negative load accepted")
	}
	if _, err := s.Place(loads, -1); err == nil {
		t.Fatal("negative k accepted")
	}
	if err := s.Release(99); err != ErrNotFound {
		t.Fatalf("release unknown: %v, want ErrNotFound", err)
	}
	if m := s.Metrics(); m.Rejected != 3 || m.NotFound != 1 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestPaperExampleLease(t *testing.T) {
	// The scheduler serves the paper's Fig. 2 walkthrough exactly like
	// the sequential model: φ=20 vs all-red 51 with k=2.
	tr, loads := paper.Figure2()
	s := New(tr, Config{Capacity: 1, Workers: 2})
	defer s.Close()
	lease, err := s.Place(loads, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Phi != 20 || lease.AllRed != 51 || len(lease.Blue) != 2 {
		t.Fatalf("lease %+v", lease)
	}
	lease2, err := s.Place(loads, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lease2.Phi <= lease.Phi {
		t.Fatalf("second tenant φ=%v should be worse than %v", lease2.Phi, lease.Phi)
	}
	if err := s.Release(lease.ID); err != nil {
		t.Fatal(err)
	}
	lease3, err := s.Place(loads, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lease3.Phi != 20 {
		t.Fatalf("after release φ=%v, want 20", lease3.Phi)
	}
}

// TestLeaseCopies verifies the aliasing contract: leases handed out are
// defensive copies, so caller mutations cannot corrupt scheduler state.
func TestLeaseCopies(t *testing.T) {
	tr, loads := paper.Figure2()
	s := New(tr, Config{Capacity: 2, Workers: 1})
	defer s.Close()
	lease, err := s.Place(loads, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantBlue := append([]int(nil), lease.Blue...)
	lease.Blue[0] = -77
	lease.Load[0] = -77

	got, err := s.Lookup(lease.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Blue, wantBlue) {
		t.Fatalf("caller mutation reached scheduler: %v vs %v", got.Blue, wantBlue)
	}
	if !reflect.DeepEqual(got.Load, loads) {
		t.Fatal("caller mutation reached stored load")
	}
	got.Blue[0] = -88
	again, _ := s.Lookup(lease.ID)
	if !reflect.DeepEqual(again.Blue, wantBlue) {
		t.Fatal("lookup result aliases scheduler state")
	}
	res := s.Residual()
	res[0] = -99
	if s.Residual()[0] == -99 {
		t.Fatal("residual slice aliases ledger")
	}
}

func TestCloseUnblocksAndRejects(t *testing.T) {
	tr := topology.MustBT(64)
	s := New(tr, Config{Capacity: 4, Workers: 2, Window: time.Millisecond})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 4; i++ {
				loads := load.GenerateSparse(tr, load.PaperUniform(), 4, rng)
				if _, err := s.Place(loads, 4); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	s.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("in-flight place failed with %v, want ErrClosed or success", err)
		}
	}
	if _, err := s.Place(make([]int, tr.N()), 2); !errors.Is(err, ErrClosed) {
		t.Fatalf("place after close: %v, want ErrClosed", err)
	}
	if err := s.Release(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("release after close: %v, want ErrClosed", err)
	}
	if _, _, err := s.RepackNow(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("repack after close: %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

func TestMixedBudgetsRebuildEngines(t *testing.T) {
	// Budgets size the DP tables, so engines rebuild on k changes; the
	// results must stay identical to from-scratch solves regardless.
	tr := topology.MustBT(64)
	s := New(tr, Config{Capacity: 3, Workers: 2})
	defer s.Close()
	base := newSeqBaseline(tr, 3)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 24; i++ {
		loads := load.GenerateSparse(tr, load.PaperUniform(), 6, rng)
		k := 1 + rng.Intn(9)
		got, err := s.Place(loads, k)
		if err != nil {
			t.Fatal(err)
		}
		want := base.place(loads, k)
		if got.Phi != want.Phi || !reflect.DeepEqual(got.Blue, want.Blue) {
			t.Fatalf("step %d (k=%d): lease diverged", i, k)
		}
	}
}

func TestLedgerInvariants(t *testing.T) {
	l := NewLedger(3, 2)
	l.Charge(1)
	l.Charge(1)
	if l.Avail()[1] {
		t.Fatal("exhausted switch still available")
	}
	if l.Residual(1) != 0 || l.Used(1) != 2 {
		t.Fatalf("residual %d used %d", l.Residual(1), l.Used(1))
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("charge on exhausted switch must panic")
			}
		}()
		l.Charge(1)
	}()
	l.Credit(1)
	if !l.Avail()[1] {
		t.Fatal("credited switch unavailable")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("credit on full switch must panic")
			}
		}()
		l.Credit(0)
	}()
	l.SetCapacity(2, 0)
	if l.Avail()[2] {
		t.Fatal("zero-capacity switch available")
	}
	cp := l.AvailCopy()
	cp[0] = false
	if !l.Avail()[0] {
		t.Fatal("AvailCopy aliases ledger")
	}
}
