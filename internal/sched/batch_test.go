package sched

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"soar/internal/core"
	"soar/internal/load"
	"soar/internal/reduce"
	"soar/internal/topology"
)

// TestSolveBatchedMatchesSolve drives the batch solve phase directly
// (dispatcher quiescent after Close, exactly the ownership window
// solveBatched runs in) and pins its bitwise-identity contract: every
// placement equals a from-scratch core.Solve against the same
// availability snapshot, across mixed budgets in one batch.
func TestSolveBatchedMatchesSolve(t *testing.T) {
	tr := topology.MustBT(128)
	s := New(tr, Config{Capacity: 2, Workers: 1, BatchSolve: true})
	s.Close() // quiesce the dispatcher; state remains usable in-process
	if s.bsol == nil {
		t.Fatal("BatchSolve config did not build a batch solver")
	}

	rng := rand.New(rand.NewSource(5))
	var reqs []*request
	for i := 0; i < 12; i++ {
		r := &request{op: opPlace, k: []int{4, 4, 6, 8}[i%4]}
		r.load = load.GenerateSparse(tr, load.PaperUniform(), 3, rng)
		reqs = append(reqs, r)
	}
	s.places = append(s.places[:0], reqs...)
	s.solveBatched()

	avail := s.ledger.Avail()
	for i, r := range reqs {
		want := core.Solve(tr, r.load, avail, r.k)
		if r.phi != want.Cost {
			t.Fatalf("request %d: phi %v, want %v", i, r.phi, want.Cost)
		}
		for v := range want.Blue {
			if r.blue[v] != want.Blue[v] {
				t.Fatalf("request %d: blue[%d] = %v, want %v", i, v, r.blue[v], want.Blue[v])
			}
		}
		if r.allRed != reduce.Utilization(tr, r.load, make([]bool, tr.N())) {
			t.Fatalf("request %d: allRed %v mismatch", i, r.allRed)
		}
	}

	// Second batch on the same (now warm) solver: same contract.
	s.solveBatched()
	for i, r := range reqs {
		want := core.Solve(tr, r.load, avail, r.k)
		if r.phi != want.Cost {
			t.Fatalf("warm request %d: phi %v, want %v", i, r.phi, want.Cost)
		}
	}
}

// TestSchedulerBatchSolveInvariants hammers a BatchSolve scheduler from
// many goroutines with mixed budgets and audits the same end-state
// invariants as the per-engine path: every lease's reported Φ is
// exactly the utilization of its blue set, no switch oversubscribed,
// residuals consistent with the held slots.
func TestSchedulerBatchSolveInvariants(t *testing.T) {
	tr := topology.MustBT(64)
	s := New(tr, Config{Capacity: 2, Workers: 4, Window: 100 * time.Microsecond, BatchSolve: true})
	defer s.Close()

	const goroutines = 8
	var mu sync.Mutex
	live := make(map[int64]*Lease)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			var mine []int64
			for i := 0; i < 25; i++ {
				loads := load.GenerateSparse(tr, load.PaperUniform(), 4, rng)
				k := []int{3, 4, 6}[rng.Intn(3)]
				lease, err := s.Place(loads, k)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				live[lease.ID] = lease
				mu.Unlock()
				mine = append(mine, lease.ID)
				if rng.Intn(2) == 0 {
					id := mine[rng.Intn(len(mine))]
					mu.Lock()
					_, held := live[id]
					delete(live, id)
					mu.Unlock()
					if held {
						if err := s.Release(id); err != nil {
							t.Errorf("release(%d): %v", id, err)
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()

	used := make([]int, tr.N())
	for id := range live {
		got, err := s.Lookup(id)
		if err != nil {
			t.Fatalf("lookup(%d): %v", id, err)
		}
		blue := make([]bool, tr.N())
		for _, v := range got.Blue {
			blue[v] = true
			used[v]++
		}
		if len(got.Blue) > got.K {
			t.Fatalf("lease %d holds %d switches with budget %d", id, len(got.Blue), got.K)
		}
		if phi := reduce.Utilization(tr, got.Load, blue); phi != got.Phi {
			t.Fatalf("lease %d: reported Φ %v, placement costs %v", id, got.Phi, phi)
		}
	}
	for v, res := range s.Residual() {
		if res < 0 {
			t.Fatalf("switch %d oversubscribed: residual %d", v, res)
		}
		if res != 2-used[v] {
			t.Fatalf("switch %d: residual %d with %d slots held", v, res, used[v])
		}
	}
	if m := s.Metrics(); m.Placed != goroutines*25 {
		t.Fatalf("placed %d, want %d", m.Placed, goroutines*25)
	}
}
