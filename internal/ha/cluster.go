package ha

import (
	"context"
	"fmt"
	"net"
	"time"

	"soar/internal/obs"
	"soar/internal/sched"
	"soar/internal/topology"
)

// shardIDBits is where the shard index lives in a global lease id:
// the low 48 bits are the shard-local id, the high bits the shard.
const shardIDBits = 48

// GlobalID combines a shard index and a shard-local lease id into the
// cluster-wide id handed to clients.
func GlobalID(shard int, local int64) int64 {
	return int64(shard)<<shardIDBits | local
}

// SplitID is the inverse of GlobalID.
func SplitID(id int64) (shard int, local int64) {
	return int(id >> shardIDBits), id & (1<<shardIDBits - 1)
}

// Options tunes a Cluster. Heartbeat, MissBudget and Replicas have
// working defaults; Sched carries the per-shard scheduler tuning
// (capacity, batching, re-packing) — its Journal, Fence, Obs and Trace
// fields are owned by the cluster and must be left nil.
type Options struct {
	// Level is the depth pod roots live at (root = 0); one shard per
	// switch at this level.
	Level int
	// Replicas is the number of warm standbys per shard (default 1).
	Replicas int
	// Heartbeat is the primary's heartbeat period (default 250ms).
	Heartbeat time.Duration
	// MissBudget is the number of missed heartbeats before a standby
	// declares the primary dead (default 4).
	MissBudget int
	// RouteTimeout bounds how long routing retries across a failover
	// before giving up with ErrNoPrimary (default 12×Heartbeat×MissBudget).
	RouteTimeout time.Duration
	// MaxJournal bounds a standby's accumulated delta journal before it
	// resyncs from a fresh checkpoint (default 32768 events).
	MaxJournal int
	// Sched is the base scheduler configuration applied to every shard.
	Sched sched.Config
	// Obs is the cluster metrics registry (soar_ha_*); nil gets a
	// private one. Per-shard scheduler families live in per-incarnation
	// registries, see ShardRegistry.
	Obs *obs.Registry
	// Dial opens a connection from the given replica node; nil uses a
	// plain TCP dialer. chaos.Injector.Dial plugs in here.
	Dial func(ctx context.Context, node int, addr string) (net.Conn, error)
	// WrapListener wraps a replica node's listener; nil leaves it bare.
	// chaos.Injector.WrapListener plugs in here.
	WrapListener func(node int, ln net.Listener) net.Listener
	// Logf receives membership and failover events; nil discards them.
	Logf func(format string, args ...any)
}

// ShardStatus is one shard's membership snapshot.
type ShardStatus struct {
	// Index is the shard number; Root the global id of its pod root.
	Index, Root int
	// Epoch is the shard's current fencing epoch.
	Epoch uint64
	// PrimaryNode is the serving replica's node id (-1 mid failover);
	// PrimaryAddr its replication listener.
	PrimaryNode int
	PrimaryAddr string
	// Standbys is the number of warm standbys attached or attaching.
	Standbys int
	// Seq is the primary's journal sequence; Tenants its live leases.
	Seq     uint64
	Tenants int
}

// Cluster is the replicated, sharded control plane: a Partitioning of
// the fabric with one primary scheduler and N warm standbys per pod,
// and a router that translates between global and shard-local ids.
type Cluster struct {
	part   *Partitioning
	opts   Options
	met    *Metrics
	reg    *obs.Registry
	shards []*shard
}

// NewCluster partitions t at opts.Level and starts every shard's
// primary and standbys. Close releases everything.
func NewCluster(t *topology.Tree, opts Options) (*Cluster, error) {
	part, err := Partition(t, opts.Level)
	if err != nil {
		return nil, err
	}
	if len(part.Shards) > 1<<15 {
		return nil, fmt.Errorf("ha: %d shards exceed the id space", len(part.Shards))
	}
	if opts.Replicas <= 0 {
		opts.Replicas = 1
	}
	if opts.Heartbeat <= 0 {
		opts.Heartbeat = 250 * time.Millisecond
	}
	if opts.MissBudget <= 0 {
		opts.MissBudget = 4
	}
	if opts.RouteTimeout <= 0 {
		opts.RouteTimeout = 12 * time.Duration(opts.MissBudget) * opts.Heartbeat
	}
	if opts.MaxJournal <= 0 {
		opts.MaxJournal = defaultMaxJournal
	}
	if opts.Dial == nil {
		opts.Dial = func(ctx context.Context, _ int, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.Obs == nil {
		opts.Obs = obs.NewRegistry()
	}
	c := &Cluster{part: part, opts: opts, reg: opts.Obs, met: NewMetrics(opts.Obs)}
	for _, spec := range part.Shards {
		sh, err := newShard(spec, &c.opts, c.met, c.reg, opts.Logf)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.shards = append(c.shards, sh)
	}
	return c, nil
}

// Partitioning exposes the fabric split (read-only).
func (c *Cluster) Partitioning() *Partitioning { return c.part }

// Shards returns the shard count.
func (c *Cluster) Shards() int { return len(c.shards) }

// Metrics returns the cluster's soar_ha_* instrumentation.
func (c *Cluster) Metrics() *Metrics { return c.met }

// Registry returns the cluster metrics registry.
func (c *Cluster) Registry() *obs.Registry { return c.reg }

// ShardRegistry returns shard s's serving scheduler registry
// (soar_sched_*, soar_ckpt_*, …), or nil mid failover.
func (c *Cluster) ShardRegistry(s int) *obs.Registry {
	if s < 0 || s >= len(c.shards) {
		return nil
	}
	return c.shards[s].registry()
}

// ShardScheduler returns shard s's serving scheduler, or nil mid
// failover. Commits issued directly on a returned handle after a
// subsequent failover are fenced — tests use exactly that to prove a
// stale primary cannot diverge the cluster.
func (c *Cluster) ShardScheduler(s int) *sched.Scheduler {
	if s < 0 || s >= len(c.shards) {
		return nil
	}
	return c.shards[s].scheduler()
}

// Place routes one admission: the global dense load vector resolves to
// a shard (ErrCrossShard if it spans pods or touches spine), the shard
// solves it over its pod tree, and the lease comes back re-mapped to
// global switch ids with a cluster-wide lease id.
func (c *Cluster) Place(load []int, k int) (*sched.Lease, error) {
	si, err := c.part.ShardOf(load)
	if err != nil {
		return nil, err
	}
	lease, err := c.shards[si].place(c.part.Localize(si, load), k)
	if err != nil {
		return nil, err
	}
	return c.globalize(si, lease), nil
}

// Release frees a lease by its global id. sched.ErrNotFound means the
// shard does not know the lease — possibly admitted by a primary that
// died before replicating it (at-most-once admission under failover).
func (c *Cluster) Release(id int64) error {
	si, local := SplitID(id)
	if si < 0 || si >= len(c.shards) {
		return fmt.Errorf("ha: lease %d names shard %d of %d: %w", id, si, len(c.shards), sched.ErrNotFound)
	}
	return c.shards[si].release(local)
}

// Lookup returns a lease by its global id, re-mapped to global switch
// ids.
func (c *Cluster) Lookup(id int64) (*sched.Lease, error) {
	si, local := SplitID(id)
	if si < 0 || si >= len(c.shards) {
		return nil, fmt.Errorf("ha: lease %d names shard %d of %d: %w", id, si, len(c.shards), sched.ErrNotFound)
	}
	lease, err := c.shards[si].lookup(local)
	if err != nil {
		return nil, err
	}
	return c.globalize(si, lease), nil
}

// globalize re-maps a shard-local lease to the global view: cluster
// lease id, global switch ids, global-length load vector.
func (c *Cluster) globalize(si int, lease *sched.Lease) *sched.Lease {
	pod := c.part.Shards[si].Pod
	out := &sched.Lease{
		ID:     GlobalID(si, lease.ID),
		K:      lease.K,
		Phi:    lease.Phi,
		AllRed: lease.AllRed,
		Blue:   make([]int, len(lease.Blue)),
	}
	for i, lv := range lease.Blue {
		out.Blue[i] = pod.Global[lv]
	}
	if lease.Load != nil {
		out.Load = make([]int, c.part.Tree.N())
		for lv, n := range lease.Load {
			if n > 0 {
				out.Load[pod.Global[lv]] = n
			}
		}
	}
	return out
}

// LeaseIDs inventories every live lease across serving shards as
// global ids: what a drain loop must release. Shards mid-failover
// contribute nothing.
func (c *Cluster) LeaseIDs() []int64 {
	var out []int64
	for i, sh := range c.shards {
		sch := sh.scheduler()
		if sch == nil {
			continue
		}
		for _, id := range sch.LeaseIDs() {
			out = append(out, GlobalID(i, id))
		}
	}
	return out
}

// CrashPrimary kills shard s's serving primary as a process death
// would (future commits fence, its network closes) and returns the
// crashed scheduler handle, or nil if the shard had none. The shard's
// standbys fail over on their own.
func (c *Cluster) CrashPrimary(s int) *sched.Scheduler {
	if s < 0 || s >= len(c.shards) {
		return nil
	}
	return c.shards[s].crashPrimary()
}

// Status snapshots every shard's membership.
func (c *Cluster) Status() []ShardStatus {
	out := make([]ShardStatus, len(c.shards))
	for i, sh := range c.shards {
		out[i] = sh.status()
	}
	return out
}

// Audit proves conservation from first principles on every serving
// scheduler; shards mid-failover are reported, not skipped silently.
func (c *Cluster) Audit() error {
	for i, sh := range c.shards {
		sch := sh.scheduler()
		if sch == nil {
			return fmt.Errorf("ha: shard %d: no serving scheduler to audit", i)
		}
		if err := sch.Audit(); err != nil {
			return fmt.Errorf("ha: shard %d: %w", i, err)
		}
	}
	return nil
}

// Close stops every shard: standbys halt, primaries close, schedulers
// (serving and retired) shut down.
func (c *Cluster) Close() {
	for _, sh := range c.shards {
		sh.close()
	}
}
