package naas

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"soar/internal/obs"
	"soar/internal/paper"
	"soar/internal/sched"
)

// TestObservabilityEndpoints drives the full HTTP surface the way a
// monitoring stack would: admit and release tenants, pull a
// checkpoint, replay a lease over the loopback cluster, then scrape
// GET /metrics and assert every subsystem's families are present and
// moving; /v1/trace must show the per-stage spans and /v1/stats the
// cluster-run summary.
func TestObservabilityEndpoints(t *testing.T) {
	tr, loads := paper.Figure2()
	s := NewServiceWith(tr, sched.Config{Capacity: 2, Memo: true})
	t.Cleanup(s.Close)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL, nil)
	ctx := context.Background()

	lease, err := c.Place(ctx, loads, 2)
	if err != nil {
		t.Fatal(err)
	}
	lease2, err := c.Place(ctx, loads, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Release(ctx, lease2.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkpoint(ctx, io.Discard); err != nil {
		t.Fatal(err)
	}
	cres, err := c.ClusterRun(ctx, lease.ID)
	if err != nil {
		t.Fatal(err)
	}
	if cres.Degraded {
		t.Fatalf("loopback cluster run degraded: %+v", cres)
	}
	if cres.Cost != lease.Phi {
		t.Fatalf("cluster replay cost %v != lease φ %v (same problem, same DP)", cres.Cost, lease.Phi)
	}

	// Scrape and parse. Every subsystem must have registered, and the
	// families the calls above touched must be nonzero.
	fams, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]obs.TextFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	sum := func(name string) float64 {
		f, ok := byName[name]
		if !ok {
			t.Fatalf("family %s missing from scrape", name)
		}
		var total float64
		for _, smp := range f.Samples {
			total += smp.Value
		}
		return total
	}
	for name, want := range map[string]float64{
		"soar_sched_admissions_total": 2,
		"soar_sched_releases_total":   1,
		"soar_ckpt_saves_total":       1,
		"soar_cluster_runs_total":     1,
	} {
		if got := sum(name); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	sum("soar_memo_hits_total") // present even when this tiny workload never re-hits a class
	for _, name := range []string{
		"soar_sched_batches_total", "soar_memo_misses_total",
		"soar_cluster_frames_total", "soar_ckpt_bytes_total",
	} {
		if got := sum(name); got <= 0 {
			t.Errorf("%s = %v, want > 0", name, got)
		}
	}
	if got := sum("soar_cluster_degraded_total"); got != 0 {
		t.Errorf("degraded = %v on a healthy loopback", got)
	}

	// The histogram invariants must hold on a real scrape too.
	raw, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Body.Close()
	if ct := raw.Header.Get("Content-Type"); ct != obs.TextContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, obs.TextContentType)
	}
	var buf bytes.Buffer
	io.Copy(&buf, raw.Body)
	parsed, err := obs.ParseText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	var hist obs.TextFamily
	for _, f := range parsed {
		if f.Name == "soar_sched_place_seconds" {
			hist = f
		}
	}
	bounds, cum, _, err := obs.HistogramSeries(hist, nil)
	if err != nil {
		t.Fatalf("place_seconds histogram invalid: %v", err)
	}
	if len(bounds) == 0 || cum[len(cum)-1] != 2 {
		t.Fatalf("place_seconds count = %v, want 2 admissions", cum)
	}

	// Trace: the ring must hold spans for admission and cluster stages.
	spans, err := c.Trace(ctx, 512)
	if err != nil {
		t.Fatal(err)
	}
	ops := map[string]bool{}
	for _, ev := range spans {
		ops[ev.Op] = true
	}
	for _, want := range []string{"sched.place", "sched.batch", "ckpt.encode", "cluster.run", "cluster.send"} {
		if !ops[want] {
			t.Errorf("trace ring has no %s span (saw %v)", want, ops)
		}
	}

	// Stats: the cluster summary rides along and old clients still parse.
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenants != 1 {
		t.Fatalf("stats tenants = %d, want 1", st.Tenants)
	}
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var full struct {
		Tenants int   `json:"Tenants"`
		Runs    int64 `json:"cluster_runs"`
		Last    int   `json:"last_run_attempts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&full); err != nil {
		t.Fatal(err)
	}
	if full.Runs != 1 || full.Last != 1 || full.Tenants != 1 {
		t.Fatalf("stats cluster summary = %+v, want 1 run in 1 attempt", full)
	}
}
