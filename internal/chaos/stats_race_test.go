package chaos

import (
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"soar/internal/obs"
)

// TestStatsConcurrentWithFaults is the documented concurrency contract
// of Injector.Stats made executable: read stats (directly and through
// a registered metrics registry) while other goroutines wrap
// connections and absorb injected faults. Run under -race in the race
// CI job, it proves the counters are atomics, not "usually fine"
// plain fields.
func TestStatsConcurrentWithFaults(t *testing.T) {
	in := New(Config{Seed: 7, Cut: 0.6, Reset: 0.3, Delay: 0.4, CutBytes: 32, MaxDelay: 50 * time.Microsecond})
	reg := obs.NewRegistry()
	in.RegisterMetrics(reg)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(node int) {
			defer wg.Done()
			buf := make([]byte, 64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				a, b := net.Pipe()
				drained := make(chan struct{})
				go func() {
					io.Copy(io.Discard, b)
					close(drained)
				}()
				wa := in.wrapConn(node, a)
				wa.Write(buf)
				wa.Write(buf)
				wa.Close()
				b.Close()
				<-drained
			}
		}(g)
	}

	// Keep scraping until the workers have wrapped a healthy number of
	// connections, so readers and fault paths genuinely overlap.
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; in.Stats().Conns < 100 || i < 100; i++ {
		if time.Now().After(deadline) {
			t.Fatal("workers wrapped no connections within the deadline")
		}
		st := in.Stats()
		// At most one of cut/reset severs any one connection.
		if st.Cuts+st.Resets > st.Conns {
			t.Fatalf("severed %d+%d connections out of %d wrapped", st.Cuts, st.Resets, st.Conns)
		}
		var sb strings.Builder
		if err := reg.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(sb.String(), `soar_chaos_faults_total{kind="cut"}`) {
			t.Fatalf("registered chaos families missing from scrape:\n%s", sb.String())
		}
	}
	close(stop)
	wg.Wait()

	if st := in.Stats(); st.Conns == 0 {
		t.Fatal("no connections wrapped; the test exercised nothing")
	}
}
