package topology

import "testing"

func TestDigestsCompleteBinary(t *testing.T) {
	tr := CompleteBinary(5) // 31 switches, 5 levels
	// All switches of one level are pairwise isomorphic and price their
	// upward paths identically; switches of different levels never do
	// (different subtree sizes, different depths).
	for u := 0; u < tr.N(); u++ {
		for v := 0; v < tr.N(); v++ {
			same := tr.Depth(u) == tr.Depth(v)
			if got := tr.SubtreeDigest(u) == tr.SubtreeDigest(v); got != same {
				t.Fatalf("SubtreeDigest(%d)==SubtreeDigest(%d) = %v, want %v", u, v, got, same)
			}
			if got := tr.PathDigest(u) == tr.PathDigest(v); got != same {
				t.Fatalf("PathDigest(%d)==PathDigest(%d) = %v, want %v", u, v, got, same)
			}
		}
	}
	if got := tr.SubtreeClasses(); got != 5 {
		t.Fatalf("SubtreeClasses = %d, want 5", got)
	}
	if got := tr.PathClasses(); got != 5 {
		t.Fatalf("PathClasses = %d, want 5", got)
	}
}

func TestSubtreeDigestUnorderedIsomorphism(t *testing.T) {
	// Subtrees at 1 and 2 are mirror images: 1 has (leaf, cherry) in that
	// child order, 2 has (cherry, leaf). The canonical code must identify
	// them; the path digests must too (same depth, unit rates).
	//
	//            0
	//          /   \
	//         1     2
	//        / \   / \
	//       3   4 7  10
	//          / \ \
	//         5  6  8,9
	parent := []int{NoParent, 0, 0, 1, 1, 4, 4, 2, 7, 7, 2}
	tr := MustNew(parent, ones(len(parent)))
	if tr.SubtreeDigest(1) != tr.SubtreeDigest(2) {
		t.Fatal("mirror-image subtrees got different canonical codes")
	}
	if tr.SubtreeDigest(3) != tr.SubtreeDigest(10) {
		t.Fatal("unit leaves got different canonical codes")
	}
	if tr.SubtreeDigest(1) == tr.SubtreeDigest(4) {
		t.Fatal("non-isomorphic subtrees share a canonical code")
	}
}

func TestDigestsNonUniformOmega(t *testing.T) {
	// Same shape as a balanced cherry pair, but the edge above switch 2
	// is twice as fast: the ρ-up profiles of the two subtrees now differ,
	// so path digests must separate them (ρ-up must break false sharing),
	// and the ρ-weighted canonical codes must separate the subtrees too.
	parent := []int{NoParent, 0, 0, 1, 1, 2, 2}
	uniform := MustNew(parent, []float64{1, 1, 1, 1, 1, 1, 1})
	skewed := MustNew(parent, []float64{1, 1, 2, 1, 1, 1, 1})

	if uniform.PathDigest(1) != uniform.PathDigest(2) {
		t.Fatal("uniform ω: symmetric positions must share a path digest")
	}
	if uniform.SubtreeDigest(1) != uniform.SubtreeDigest(2) {
		t.Fatal("uniform ω: symmetric subtrees must share a canonical code")
	}
	if skewed.PathDigest(1) == skewed.PathDigest(2) {
		t.Fatal("non-uniform ω: different ρ-up profiles must not share a path digest")
	}
	if skewed.SubtreeDigest(1) == skewed.SubtreeDigest(2) {
		t.Fatal("non-uniform ω: subtrees hanging off differently priced edges must not share a canonical code")
	}
	// The leaves below the fast edge still have identical subtrees (a
	// bare unit-ρ leaf) but different ρ-up profiles.
	if skewed.SubtreeDigest(3) != skewed.SubtreeDigest(5) {
		t.Fatal("identical ρ-weighted leaf subtrees must share a canonical code")
	}
	if skewed.PathDigest(3) == skewed.PathDigest(5) {
		t.Fatal("leaves whose paths price differently must not share a path digest")
	}
}

func TestPathDigestMatchesRhoUp(t *testing.T) {
	// Exhaustive cross-check on an irregular weighted tree: path digests
	// coincide exactly when the full ρ-up vectors coincide.
	parent := []int{NoParent, 0, 0, 1, 1, 2, 2, 3, 4, 5}
	omega := []float64{1, 2, 2, 1, 4, 1, 4, 2, 2, 0.5}
	tr := MustNew(parent, omega)
	for u := 0; u < tr.N(); u++ {
		for v := 0; v < tr.N(); v++ {
			want := tr.Depth(u) == tr.Depth(v)
			if want {
				for l := 0; l <= tr.Depth(u); l++ {
					if tr.RhoUp(u, l) != tr.RhoUp(v, l) {
						want = false
						break
					}
				}
			}
			if got := tr.PathDigest(u) == tr.PathDigest(v); got != want {
				t.Fatalf("PathDigest(%d)==PathDigest(%d) = %v, want %v", u, v, got, want)
			}
		}
	}
}

func TestDigestsPathTopology(t *testing.T) {
	tr := Path(16)
	if got := tr.SubtreeClasses(); got != 16 {
		t.Fatalf("path SubtreeClasses = %d, want 16 (no symmetry)", got)
	}
	if got := tr.PathClasses(); got != 16 {
		t.Fatalf("path PathClasses = %d, want 16", got)
	}
}
