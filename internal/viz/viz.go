// Package viz renders experiment series as ASCII line charts so that
// `soarctl exp -plot` can show the *shape* of every reproduced figure
// directly in a terminal — the closest a CLI gets to the paper's plots.
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one plotted line.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Options controls chart geometry.
type Options struct {
	// Width and Height are the plot area in characters (defaults 64×16).
	Width, Height int
	// YMin/YMax fix the y range; both zero means auto-scale.
	YMin, YMax float64
	// Title is printed above the chart.
	Title string
	// XLabel annotates the x axis.
	XLabel string
}

// markers distinguish series; they cycle if there are more series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Chart renders the series into w as a fixed-width ASCII chart with a
// y-axis scale, per-series markers, and a legend.
func Chart(w io.Writer, series []Series, opt Options) error {
	width, height := opt.Width, opt.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.Y[i]) || math.IsNaN(s.X[i]) {
				continue
			}
			points++
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if points == 0 {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}
	if opt.YMin != 0 || opt.YMax != 0 {
		ymin, ymax = opt.YMin, opt.YMax
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		return clamp(c, 0, width-1)
	}
	row := func(y float64) int {
		r := int(math.Round((ymax - y) / (ymax - ymin) * float64(height-1)))
		return clamp(r, 0, height-1)
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		// Connect consecutive points with linear interpolation so trends
		// read as lines rather than scattered dots.
		for i := 1; i < len(s.X); i++ {
			if badPoint(s.X[i-1], s.Y[i-1]) || badPoint(s.X[i], s.Y[i]) {
				continue
			}
			c0, r0 := col(s.X[i-1]), row(s.Y[i-1])
			c1, r1 := col(s.X[i]), row(s.Y[i])
			drawLine(grid, c0, r0, c1, r1, mark)
		}
		if len(s.X) == 1 && !badPoint(s.X[0], s.Y[0]) {
			grid[row(s.Y[0])][col(s.X[0])] = mark
		}
	}

	if opt.Title != "" {
		if _, err := fmt.Fprintln(w, opt.Title); err != nil {
			return err
		}
	}
	for r, line := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.3g", ymax)
		case height - 1:
			label = fmt.Sprintf("%8.3g", ymin)
		case (height - 1) / 2:
			label = fmt.Sprintf("%8.3g", (ymax+ymin)/2)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width)); err != nil {
		return err
	}
	xAxis := fmt.Sprintf("%-*s", width, fmt.Sprintf("%g", xmin))
	right := fmt.Sprintf("%g", xmax)
	if len(right) < width {
		xAxis = xAxis[:width-len(right)] + right
	}
	if _, err := fmt.Fprintf(w, "%s  %s  (%s)\n", strings.Repeat(" ", 8), xAxis, opt.XLabel); err != nil {
		return err
	}
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Label))
	}
	_, err := fmt.Fprintf(w, "%s\n", strings.Join(legend, "   "))
	return err
}

func badPoint(x, y float64) bool {
	return math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0)
}

// drawLine rasterizes a segment with the classic integer Bresenham walk
// (the guarded variant that can never step past either endpoint).
func drawLine(grid [][]byte, c0, r0, c1, r1 int, mark byte) {
	dc, dr := absInt(c1-c0), -absInt(r1-r0)
	sc, sr := 1, 1
	if c0 > c1 {
		sc = -1
	}
	if r0 > r1 {
		sr = -1
	}
	err := dc + dr
	for {
		grid[r0][c0] = mark
		if c0 == c1 && r0 == r1 {
			return
		}
		e2 := 2 * err
		if e2 >= dr {
			if c0 == c1 {
				return
			}
			err += dr
			c0 += sc
		}
		if e2 <= dc {
			if r0 == r1 {
				return
			}
			err += dc
			r0 += sr
		}
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
