package load

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"soar/internal/topology"
)

func TestUniformBoundsAndMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u := PaperUniform()
	sum := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		x := u.Sample(rng)
		if x < 4 || x > 6 {
			t.Fatalf("sample %d outside [4,6]", x)
		}
		sum += x
	}
	mean := float64(sum) / trials
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("uniform mean %v, want ≈5", mean)
	}
}

func TestPowerLawCalibration(t *testing.T) {
	p := PaperPowerLaw()
	if math.Abs(p.Mean()-5) > 1e-6 {
		t.Fatalf("calibrated mean %v, want 5", p.Mean())
	}
	// The paper reports variance 97.1 for its power-law load; a bounded
	// power law on [1,63] with mean 5 has variance in that region.
	if v := p.Variance(); v < 60 || v > 140 {
		t.Fatalf("variance %v far from the paper's ≈97", v)
	}
}

func TestPowerLawBounds(t *testing.T) {
	p := PaperPowerLaw()
	rng := rand.New(rand.NewSource(2))
	seen1, seenBig := false, false
	for i := 0; i < 50000; i++ {
		x := p.Sample(rng)
		if x < 1 || x > 63 {
			t.Fatalf("sample %d outside [1,63]", x)
		}
		if x == 1 {
			seen1 = true
		}
		if x > 30 {
			seenBig = true
		}
	}
	if !seen1 || !seenBig {
		t.Fatalf("power law not heavy-tailed: seen1=%v seenBig=%v", seen1, seenBig)
	}
}

func TestPowerLawEmpiricalMean(t *testing.T) {
	p := PaperPowerLaw()
	rng := rand.New(rand.NewSource(3))
	sum := 0
	const trials = 200000
	for i := 0; i < trials; i++ {
		sum += p.Sample(rng)
	}
	mean := float64(sum) / trials
	if math.Abs(mean-5) > 0.2 {
		t.Fatalf("empirical mean %v, want ≈5", mean)
	}
}

func TestCalibrateArbitraryTargets(t *testing.T) {
	for _, mean := range []float64{2, 5, 10, 20} {
		p := CalibratePowerLaw(mean, 1, 63)
		if math.Abs(p.Mean()-mean) > 1e-6 {
			t.Fatalf("target %v: got mean %v", mean, p.Mean())
		}
	}
}

func TestCalibratePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unachievable mean")
		}
	}()
	CalibratePowerLaw(100, 1, 10)
}

func TestGeneratePlacement(t *testing.T) {
	tr := topology.CompleteBinary(4)
	rng := rand.New(rand.NewSource(4))
	l := Generate(tr, Constant{V: 3}, LeavesOnly, rng)
	for v := 0; v < tr.N(); v++ {
		if tr.IsLeaf(v) && l[v] != 3 {
			t.Fatalf("leaf %d load %d, want 3", v, l[v])
		}
		if !tr.IsLeaf(v) && l[v] != 0 {
			t.Fatalf("internal %d load %d, want 0", v, l[v])
		}
	}
	all := Generate(tr, Constant{V: 1}, AllNodes, rng)
	if Total(all) != int64(tr.N()) {
		t.Fatalf("AllNodes total %d, want %d", Total(all), tr.N())
	}
}

func TestGenerateDeterministicBySeed(t *testing.T) {
	tr := topology.CompleteBinary(5)
	a := Generate(tr, PaperPowerLaw(), LeavesOnly, rand.New(rand.NewSource(42)))
	b := Generate(tr, PaperPowerLaw(), LeavesOnly, rand.New(rand.NewSource(42)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestQuickUniformWithinBounds(t *testing.T) {
	f := func(seed int64, lo uint8, span uint8) bool {
		min := int(lo % 50)
		max := min + int(span%50)
		u := Uniform{Min: min, Max: max}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			x := u.Sample(rng)
			if x < min || x > max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPowerLawCDFMonotone(t *testing.T) {
	f := func(a uint8) bool {
		alpha := float64(a%40)/10 - 1 // [-1.0, 2.9]
		p := NewPowerLaw(alpha, 1, 63)
		prev := 0.0
		for _, c := range p.cdf {
			if c < prev {
				return false
			}
			prev = c
		}
		return math.Abs(prev-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTotal(t *testing.T) {
	if got := Total([]int{1, 2, 3}); got != 6 {
		t.Fatalf("Total = %d, want 6", got)
	}
	if got := Total(nil); got != 0 {
		t.Fatalf("Total(nil) = %d, want 0", got)
	}
}

func TestDistributionStrings(t *testing.T) {
	for _, d := range []Distribution{PaperUniform(), PaperPowerLaw(), Constant{V: 2}} {
		if d.String() == "" {
			t.Fatalf("%T has empty String()", d)
		}
	}
}

func TestGenerateSparse(t *testing.T) {
	tr, err := topology.BT(128)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for _, m := range []int{1, 8, 17, 64} {
		l := GenerateSparse(tr, Uniform{Min: 1, Max: 9}, m, rng)
		loaded := 0
		for v, x := range l {
			if x == 0 {
				continue
			}
			loaded++
			if !tr.IsLeaf(v) {
				t.Fatalf("m=%d: non-leaf switch %d has load %d", m, v, x)
			}
			if x < 1 || x > 9 {
				t.Fatalf("m=%d: load %d outside distribution support", m, x)
			}
		}
		if loaded != m {
			t.Fatalf("m=%d: %d leaves loaded", m, loaded)
		}
	}
}

func TestGenerateSparseClampsToLeafCount(t *testing.T) {
	tr, err := topology.BT(16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	l := GenerateSparse(tr, Constant{V: 2}, 10*tr.N(), rng)
	for _, v := range tr.Leaves() {
		if l[v] != 2 {
			t.Fatalf("leaf %d not loaded under clamped m", v)
		}
	}
	if int(Total(l)) != 2*len(tr.Leaves()) {
		t.Fatal("non-leaves received load")
	}
}
