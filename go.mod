module soar

go 1.24
