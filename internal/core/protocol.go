package core

import (
	"fmt"

	"soar/internal/topology"
)

// decide performs one switch's SOAR-Color step: given the budget i and
// barrier distance l received from the parent, it returns the switch's
// color and, for each child in order, the (budget, l) pair to forward.
// Shared by ColorPhase, SolveDistributed and the TCP cluster engine.
func decide(t *topology.Tree, nt *nodeTables, k, v, budget, l int) (isBlue bool, childBudget []int, childL int) {
	stride := k + 1
	isBlue = nt.isBlue[l*stride+budget]
	children := t.Children(v)
	if len(children) == 0 {
		return isBlue, nil, 0
	}
	colorIdx := 0
	childL = l + 1
	if isBlue {
		colorIdx, childL = 1, 1
	}
	depth := t.Depth(v)
	childBudget = make([]int, len(children))
	remaining := budget
	for m := len(children) - 1; m >= 1; m-- {
		j := int(nt.splits[m-1][(colorIdx*(depth+1)+l)*stride+remaining])
		childBudget[m] = j
		remaining -= j
	}
	if isBlue {
		remaining--
	}
	childBudget[0] = remaining
	return isBlue, childBudget, childL
}

// NodeState is the per-switch protocol engine behind the message-passing
// deployments of SOAR (the goroutine engine and the TCP cluster). A
// switch constructs its state from the X tables its children sent, ships
// XTable() to its parent, and later answers the parent's (budget, ℓ)
// assignment with Decide.
type NodeState struct {
	t  *topology.Tree
	v  int
	k  int
	nt nodeTables
}

// NewNodeState runs the SOAR-Gather step of switch v. childX must hold
// one flattened X table per child, in child order, each of length
// (Depth(child)+1)·(k+1) as produced by XTable on the child.
func NewNodeState(t *topology.Tree, v int, loadV int, hasLoad, avail bool, k int, childX [][]float64) (*NodeState, error) {
	children := t.Children(v)
	if len(childX) != len(children) {
		return nil, fmt.Errorf("core: switch %d has %d children but got %d tables", v, len(children), len(childX))
	}
	tables := make([]*nodeTables, len(children))
	for i, c := range children {
		want := (t.Depth(c) + 1) * (k + 1)
		if len(childX[i]) != want {
			return nil, fmt.Errorf("core: child %d table has %d entries, want %d", c, len(childX[i]), want)
		}
		tables[i] = &nodeTables{x: childX[i]}
	}
	return &NodeState{
		t:  t,
		v:  v,
		k:  k,
		nt: computeNode(t, v, loadV, hasLoad, avail, k, tables, true),
	}, nil
}

// XTable returns the flattened X table to send to the parent, of length
// (Depth(v)+1)·(k+1), row-major in ℓ.
func (ns *NodeState) XTable() []float64 {
	out := make([]float64, len(ns.nt.x))
	copy(out, ns.nt.x)
	return out
}

// Optimum returns X_v(1, k); meaningful at the root, where it is the
// optimal φ the destination reads off (paper Eq. 6).
func (ns *NodeState) Optimum() float64 {
	return ns.nt.x[1*(ns.k+1)+ns.k]
}

// Decide answers the parent's SOAR-Color assignment: it returns whether v
// is blue and the (budget, ℓ) to forward to each child in child order.
func (ns *NodeState) Decide(budget, l int) (isBlue bool, childBudget []int, childL int, err error) {
	if budget < 0 || budget > ns.k {
		return false, nil, 0, fmt.Errorf("core: switch %d got budget %d outside [0,%d]", ns.v, budget, ns.k)
	}
	if l < 0 || l > ns.t.Depth(ns.v) {
		return false, nil, 0, fmt.Errorf("core: switch %d got ℓ=%d outside [0,%d]", ns.v, l, ns.t.Depth(ns.v))
	}
	isBlue, childBudget, childL = decide(ns.t, &ns.nt, ns.k, ns.v, budget, l)
	return isBlue, childBudget, childL, nil
}
