package wire

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestCkptHeaderRoundTrip(t *testing.T) {
	in := &CkptHeader{Version: CkptVersion, Switches: 255, Tenants: 1 << 40, NextID: 77, TreeSum: 0xABCDEF0123456789}
	got, ok := roundTrip(t, in).(*CkptHeader)
	if !ok || *got != *in {
		t.Fatalf("round trip %+v -> %+v", in, got)
	}
}

func TestCkptLedgerRoundTrip(t *testing.T) {
	in := &CkptLedger{
		Initial:  []int32{0, 1, 4, 1 << 30},
		Residual: []int32{0, 0, 3, 1 << 30},
	}
	got, ok := roundTrip(t, in).(*CkptLedger)
	if !ok {
		t.Fatalf("round trip returned %T", got)
	}
	for i := range in.Initial {
		if got.Initial[i] != in.Initial[i] || got.Residual[i] != in.Residual[i] {
			t.Fatalf("ledger differs at %d: %+v vs %+v", i, in, got)
		}
	}
}

func TestCkptLedgerEmptyRoundTrip(t *testing.T) {
	got, ok := roundTrip(t, &CkptLedger{}).(*CkptLedger)
	if !ok || len(got.Initial) != 0 || len(got.Residual) != 0 {
		t.Fatalf("empty ledger round trip: %+v", got)
	}
}

func TestCkptTenantRoundTrip(t *testing.T) {
	in := &CkptTenant{ID: 42, K: 3, Blue: []uint32{1, 9, 31}, LoadV: []uint32{7, 15}, LoadN: []uint32{2, 8}}
	in.SetPhi(123.456)
	in.SetAllRed(789.5)
	got, ok := roundTrip(t, in).(*CkptTenant)
	if !ok {
		t.Fatalf("round trip returned %T", got)
	}
	if got.ID != in.ID || got.K != in.K || got.Phi() != 123.456 || got.AllRed() != 789.5 {
		t.Fatalf("tenant scalars differ: %+v vs %+v", in, got)
	}
	for i := range in.Blue {
		if got.Blue[i] != in.Blue[i] {
			t.Fatalf("blue differs at %d", i)
		}
	}
	for i := range in.LoadV {
		if got.LoadV[i] != in.LoadV[i] || got.LoadN[i] != in.LoadN[i] {
			t.Fatalf("load differs at %d", i)
		}
	}
}

func TestCkptTenantNoBlueNoLoad(t *testing.T) {
	// A tenant with zero load has no blues and no load entries; the
	// frame must still round-trip (the paper's model allows it).
	got, ok := roundTrip(t, &CkptTenant{ID: 1}).(*CkptTenant)
	if !ok || got.ID != 1 || len(got.Blue) != 0 || len(got.LoadV) != 0 {
		t.Fatalf("empty tenant round trip: %+v", got)
	}
}

func TestCkptFooterRoundTrip(t *testing.T) {
	in := &CkptFooter{Tenants: 12, Sum: 0x1122334455667788}
	got, ok := roundTrip(t, in).(*CkptFooter)
	if !ok || *got != *in {
		t.Fatalf("round trip %+v -> %+v", in, got)
	}
}

func TestCkptRejectsMalformedBodies(t *testing.T) {
	cases := []struct {
		name string
		m    Message
		body []byte
	}{
		{"header short", &CkptHeader{}, make([]byte, 31)},
		{"header long", &CkptHeader{}, make([]byte, 33)},
		{"ledger empty", &CkptLedger{}, nil},
		{"ledger count lies", &CkptLedger{}, []byte{0, 0, 0, 9, 1, 2, 3}},
		{"ledger oversized", &CkptLedger{}, []byte{0xFF, 0xFF, 0xFF, 0xFF}},
		{"tenant short", &CkptTenant{}, make([]byte, 10)},
		{"tenant counts lie", &CkptTenant{}, append(make([]byte, 28), 0, 0, 0, 200, 0, 0, 0, 0)},
		{"footer short", &CkptFooter{}, make([]byte, 8)},
	}
	for _, tc := range cases {
		if err := tc.m.parseBody(tc.body); err == nil {
			t.Errorf("%s: parsed, want error", tc.name)
		}
	}
}

func TestCkptTenantOversizedCountsRejected(t *testing.T) {
	// Counts whose implied body would exceed MaxFrame must be rejected
	// before any allocation is attempted.
	body := make([]byte, 36)
	body[28], body[29], body[30], body[31] = 0xFF, 0xFF, 0xFF, 0xFF // nb
	if err := (&CkptTenant{}).parseBody(body); err == nil || !strings.Contains(err.Error(), "too large") {
		t.Fatalf("oversized blue count: %v, want too-large error", err)
	}
}

func TestLargeFrameCrossesReadChunks(t *testing.T) {
	// A frame bigger than one readBody chunk (64 KiB) must reassemble
	// exactly.
	x := make([]float64, 20_000) // 160 KB body
	for i := range x {
		x[i] = float64(i) * 0.5
	}
	in := &Gather{Child: 1, Rows: 100, Cols: 200, X: x}
	got, ok := roundTrip(t, in).(*Gather)
	if !ok || len(got.X) != len(x) {
		t.Fatalf("large gather round trip: %T len %d", got, len(got.X))
	}
	for i := range x {
		if got.X[i] != x[i] {
			t.Fatalf("large gather differs at %d", i)
		}
	}
}

func TestLyingLengthHeaderFailsFast(t *testing.T) {
	// A header claiming MaxFrame over a short stream must error via
	// ReadFull, not hang or succeed.
	var hdr bytes.Buffer
	Write(&hdr, &Hello{Child: 1})
	b := hdr.Bytes()
	b[0], b[1], b[2], b[3] = 0x00, 0xFF, 0xFF, 0xFF // claim ~16 MiB
	if _, err := Read(bytes.NewReader(b)); err == nil {
		t.Fatal("lying length header decoded")
	}
}

func TestReadBodyBoundedFirstAllocation(t *testing.T) {
	// readBody must not allocate the advertised size up front: reading a
	// claimed 8 MiB body from an empty stream errors after at most one
	// chunk.
	if _, err := readBody(io.MultiReader(), 8<<20); err == nil {
		t.Fatal("readBody of empty stream succeeded")
	}
}
