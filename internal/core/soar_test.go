package core

import (
	"math"
	"math/rand"
	"testing"

	"soar/internal/paper"
	"soar/internal/placement"
	"soar/internal/reduce"
	"soar/internal/topology"
)

func TestFigure2SOAROptimum(t *testing.T) {
	tr, loads := paper.Figure2()
	res := Solve(tr, loads, nil, 2)
	if res.Cost != 20 {
		t.Fatalf("SOAR k=2 φ = %v, want 20 (Fig. 2d)", res.Cost)
	}
	// The unique optimum is {2, 4}: the right mid switch and the load-6 leaf.
	want := []bool{false, false, true, false, true, false, false}
	for v := range want {
		if res.Blue[v] != want[v] {
			t.Fatalf("SOAR k=2 blue set %s, want {2,4}", placement.String(res.Blue))
		}
	}
}

func TestFigure3OptimaAllK(t *testing.T) {
	tr, loads := paper.Figure2()
	want := map[int]float64{0: 51, 1: 35, 2: 20, 3: 15, 4: 11, 5: 9, 7: 7}
	for k, w := range want {
		res := Solve(tr, loads, nil, k)
		if res.Cost != w {
			t.Errorf("SOAR k=%d: φ = %v, want %v", k, res.Cost, w)
		}
		if sim := reduce.Utilization(tr, loads, res.Blue); sim != res.Cost {
			t.Errorf("k=%d: reported %v but placement simulates to %v", k, res.Cost, sim)
		}
		if got := reduce.CountBlue(res.Blue); got > k {
			t.Errorf("k=%d: placed %d blue switches", k, got)
		}
	}
}

func TestFigure3UniqueSetK3(t *testing.T) {
	tr, loads := paper.Figure2()
	res := Solve(tr, loads, nil, 3)
	want := []bool{false, false, false, false, true, true, true}
	for v := range want {
		if res.Blue[v] != want[v] {
			t.Fatalf("SOAR k=3 blue set %s, want {4,5,6} (unique per Fig. 3c)",
				placement.String(res.Blue))
		}
	}
}

func TestFigure5GatherTables(t *testing.T) {
	// Sec. 4.3 walkthrough: values hand-recomputed from the paper's text
	// (the root's ℓ=0 row matches the figure; the figure's ℓ=1 row in the
	// arXiv scan is corrupted, but the text pins X_r(1,2)=20 and Fig. 3
	// pins X_r(1,1)=35 and X_r(1,0)=51 = all-red φ).
	tr, loads := paper.Figure2()
	tb := Gather(tr, loads, nil, 2)

	root := tr.Root()
	wantRoot := map[[2]int]float64{
		{0, 0}: 34, {0, 1}: 24, {0, 2}: 16,
		{1, 0}: 51, {1, 1}: 35, {1, 2}: 20,
	}
	for li, w := range wantRoot {
		if got := tb.X(root, li[0], li[1]); got != w {
			t.Errorf("X_r(%d,%d) = %v, want %v", li[0], li[1], got, w)
		}
	}

	// Left mid switch (children loads 2, 6), paper Fig. 5a (min over colors).
	wantLeft := [][]float64{
		{8, 3, 2},
		{16, 6, 4},
		{24, 9, 5},
	}
	for l, row := range wantLeft {
		for i, w := range row {
			if got := tb.X(1, l, i); got != w {
				t.Errorf("X_left(%d,%d) = %v, want %v", l, i, got, w)
			}
		}
	}

	// Right mid switch (children loads 5, 4).
	wantRight := [][]float64{
		{9, 5, 2},
		{18, 10, 4},
		{27, 11, 6},
	}
	for l, row := range wantRight {
		for i, w := range row {
			if got := tb.X(2, l, i); got != w {
				t.Errorf("X_right(%d,%d) = %v, want %v", l, i, got, w)
			}
		}
	}

	// Load-2 leaf (switch 3): X(ℓ,0) = 2ℓ, X(ℓ,i≥1) = ℓ.
	for l := 0; l <= 3; l++ {
		if got := tb.X(3, l, 0); got != float64(2*l) {
			t.Errorf("X_leaf2(%d,0) = %v, want %v", l, got, 2*l)
		}
		if got := tb.X(3, l, 1); got != float64(l) {
			t.Errorf("X_leaf2(%d,1) = %v, want %v", l, got, l)
		}
	}

	if got := tb.Optimum(); got != 20 {
		t.Errorf("Optimum() = %v, want 20", got)
	}

	// The Sec. 4.3 text: at (ℓ=1, i=2) the root's red configuration (20)
	// beats its blue one (25), so r is colored red.
	if tb.Blue(root, 1, 2) {
		t.Error("root should be red at (ℓ=1, i=2)")
	}
}

func TestSOARMatchesBruteForceRandomized(t *testing.T) {
	// The central optimality check: on hundreds of random instances
	// (random shape, loads including zeros, heterogeneous rates, partial
	// availability, varying k), SOAR must match exhaustive search and its
	// reported cost must match the Reduce simulator.
	rng := rand.New(rand.NewSource(77))
	bf := placement.BruteForce{}
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(11)
		parent := make([]int, n)
		omega := make([]float64, n)
		parent[0] = topology.NoParent
		for v := 1; v < n; v++ {
			parent[v] = rng.Intn(v)
		}
		for v := 0; v < n; v++ {
			omega[v] = []float64{0.5, 1, 2, 4}[rng.Intn(4)]
		}
		tr := topology.MustNew(parent, omega)
		loads := make([]int, n)
		for v := range loads {
			loads[v] = rng.Intn(5) // includes zeros
		}
		avail := make([]bool, n)
		anyAvail := false
		for v := range avail {
			avail[v] = rng.Intn(5) != 0
			anyAvail = anyAvail || avail[v]
		}
		_ = anyAvail
		k := rng.Intn(5)

		res := Solve(tr, loads, avail, k)
		_, bfCost := bf.Search(tr, loads, avail, k)
		if math.Abs(res.Cost-bfCost) > 1e-9 {
			t.Fatalf("trial %d: SOAR φ=%v, brute force φ=%v\nn=%d parents=%v omega=%v loads=%v avail=%v k=%d",
				trial, res.Cost, bfCost, n, parent, omega, loads, avail, k)
		}
		if sim := reduce.Utilization(tr, loads, res.Blue); math.Abs(sim-res.Cost) > 1e-9 {
			t.Fatalf("trial %d: reported φ=%v but placement simulates to %v (blue %s)",
				trial, res.Cost, sim, placement.String(res.Blue))
		}
		if got := reduce.CountBlue(res.Blue); got > k {
			t.Fatalf("trial %d: %d blue > k=%d", trial, got, k)
		}
		for v, b := range res.Blue {
			if b && !avail[v] {
				t.Fatalf("trial %d: unavailable switch %d colored blue", trial, v)
			}
		}
	}
}

func TestSOARDominatesBaselines(t *testing.T) {
	// Optimality implies SOAR ≤ every strategy on every instance.
	rng := rand.New(rand.NewSource(99))
	strategies := []placement.Strategy{
		placement.Top{}, placement.Max{}, placement.Level{},
		placement.Greedy{}, placement.Random{Rng: rng},
	}
	for trial := 0; trial < 60; trial++ {
		tr := topology.RandomRecursive(2+rng.Intn(40), rng)
		loads := make([]int, tr.N())
		for v := range loads {
			loads[v] = rng.Intn(8)
		}
		k := 1 + rng.Intn(6)
		opt := Solve(tr, loads, nil, k).Cost
		for _, s := range strategies {
			c := placement.Evaluate(s, tr, loads, nil, k)
			if opt > c+1e-9 {
				t.Fatalf("trial %d: SOAR φ=%v beats %s φ=%v the wrong way (k=%d)",
					trial, opt, s.Name(), c, k)
			}
		}
	}
}

func TestCostMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 30; trial++ {
		tr := topology.RandomRecursive(2+rng.Intn(30), rng)
		loads := make([]int, tr.N())
		for v := range loads {
			loads[v] = rng.Intn(6)
		}
		prev := math.Inf(1)
		for k := 0; k <= 8; k++ {
			c := Solve(tr, loads, nil, k).Cost
			if c > prev+1e-9 {
				t.Fatalf("trial %d: φ increased from %v (k=%d) to %v (k=%d)", trial, prev, k-1, c, k)
			}
			prev = c
		}
	}
}

func TestKZeroIsAllRed(t *testing.T) {
	tr, loads := paper.Figure2()
	res := Solve(tr, loads, nil, 0)
	if res.Cost != 51 || reduce.CountBlue(res.Blue) != 0 {
		t.Fatalf("k=0: φ=%v blue=%d, want 51, 0", res.Cost, reduce.CountBlue(res.Blue))
	}
	neg := Solve(tr, loads, nil, -3)
	if neg.Cost != 51 {
		t.Fatalf("negative k: φ=%v, want 51", neg.Cost)
	}
}

func TestLargeKEqualsAllBlue(t *testing.T) {
	tr, loads := paper.Figure2()
	res := Solve(tr, loads, nil, tr.N()+5)
	allBlue := make([]bool, tr.N())
	for i := range allBlue {
		allBlue[i] = true
	}
	if want := reduce.Utilization(tr, loads, allBlue); res.Cost != want {
		t.Fatalf("k=n: φ=%v, want all-blue %v", res.Cost, want)
	}
}

func TestEmptyAvailability(t *testing.T) {
	tr, loads := paper.Figure2()
	avail := make([]bool, tr.N())
	res := Solve(tr, loads, avail, 4)
	if res.Cost != 51 || reduce.CountBlue(res.Blue) != 0 {
		t.Fatalf("Λ=∅: φ=%v blue=%d, want all-red 51", res.Cost, reduce.CountBlue(res.Blue))
	}
}

func TestHeterogeneousRatesChangeTheOptimum(t *testing.T) {
	// Under exponentially increasing rates toward the root, aggregating
	// near the root is cheap to skip; the optimum placement moves down.
	tr, loads := paper.Figure2()
	exp := topology.ApplyRates(tr, topology.RatesExponential())
	resConst := Solve(tr, loads, nil, 1)
	resExp := Solve(exp, loads, nil, 1)
	if resConst.Cost <= resExp.Cost {
		// Expected: higher rates near the root shrink total cost.
		t.Fatalf("exp-rate φ=%v should be below const-rate φ=%v", resExp.Cost, resConst.Cost)
	}
}

func TestSingleSwitch(t *testing.T) {
	tr := topology.MustNew([]int{topology.NoParent}, []float64{1})
	res := Solve(tr, []int{5}, nil, 1)
	if res.Cost != 1 || !res.Blue[0] {
		t.Fatalf("single switch k=1: φ=%v blue=%v, want 1, true", res.Cost, res.Blue[0])
	}
	res0 := Solve(tr, []int{5}, nil, 0)
	if res0.Cost != 5 {
		t.Fatalf("single switch k=0: φ=%v, want 5", res0.Cost)
	}
}

func TestPathTreeDeepDependencies(t *testing.T) {
	// On a path with load only at the bottom, a single blue switch should
	// sit at the deepest loaded switch.
	tr := topology.Path(6)
	loads := []int{0, 0, 0, 0, 0, 7}
	res := Solve(tr, loads, nil, 1)
	if !res.Blue[5] {
		t.Fatalf("blue set %s, want {5}", placement.String(res.Blue))
	}
	// 7 messages over the bottom edge... no: blue at 5 → 1 message over
	// each of the 6 edges.
	if res.Cost != 6 {
		t.Fatalf("φ=%v, want 6", res.Cost)
	}
}

func TestValidatePanics(t *testing.T) {
	tr := topology.Path(3)
	for _, tc := range []struct {
		name  string
		load  []int
		avail []bool
	}{
		{"short load", []int{1}, nil},
		{"short avail", []int{1, 1, 1}, []bool{true}},
		{"negative load", []int{1, -1, 1}, nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			Solve(tr, tc.load, tc.avail, 1)
		})
	}
}
