package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecodeFrame drives the frame decoder with arbitrary bytes: it must
// return an error on truncated, corrupt or oversized-length frames —
// never panic, and never allocate beyond the bytes the stream actually
// delivers (readBody grows in bounded chunks). Frames that do decode
// must re-encode canonically: encode(decode(frame)) is byte-identical,
// which pins the format for checkpoints that outlive the process that
// wrote them.
func FuzzDecodeFrame(f *testing.F) {
	seed := func(m Message) {
		var buf bytes.Buffer
		if err := Write(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	seed(&Hello{Child: 3})
	seed(&Gather{Child: 1, Rows: 2, Cols: 3, X: []float64{1, 2, 3, 4.5, -1, 0}})
	seed(&Color{Budget: 4, L: 2})
	seed(&ReduceDone{Child: 7, Messages: 9, PhiBits: 0x3FF0000000000000})
	seed(&CkptHeader{Version: CkptVersion, Switches: 8, Tenants: 2, NextID: 5, TreeSum: 0xDEADBEEF})
	seed(&CkptLedger{Initial: []int32{4, 4, 0, 1 << 30}, Residual: []int32{4, 2, 0, 1 << 30}})
	seed(&CkptTenant{ID: 3, K: 2, PhiBits: 1, AllRedBits: 2, Blue: []uint32{1, 5}, LoadV: []uint32{6, 7}, LoadN: []uint32{2, 9}})
	seed(&CkptFooter{Tenants: 2, Sum: 0xFEEDFACE})
	// Adversarial shapes: oversized length claim, length lying about a
	// short stream, zero length, unknown type, truncated header.
	f.Add(binary.BigEndian.AppendUint32(nil, MaxFrame+1))
	f.Add(append(binary.BigEndian.AppendUint32(nil, 1<<20), byte(TypeGather)))
	f.Add([]byte{0, 0, 0, 0, 1})
	f.Add([]byte{0, 0, 0, 2, 99, 0})
	f.Add([]byte{0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input: exactly what malformed bytes deserve
		}
		var first bytes.Buffer
		if err := Write(&first, m); err != nil {
			t.Fatalf("decoded %T does not re-encode: %v", m, err)
		}
		m2, err := Read(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded %T does not decode: %v", m, err)
		}
		var second bytes.Buffer
		if err := Write(&second, m2); err != nil {
			t.Fatalf("re-decoded %T does not encode: %v", m2, err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("%T encoding is not canonical:\n  %x\nvs\n  %x", m, first.Bytes(), second.Bytes())
		}
	})
}
