package main

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"soar/internal/ha"
	"soar/internal/naas"
	"soar/internal/sched"
	"soar/internal/topology"
)

// TestShardsRendersMembership runs `soarctl shards` against a real
// sharded front and checks every shard shows up with a serving primary.
func TestShardsRendersMembership(t *testing.T) {
	cl, err := ha.NewCluster(topology.CompleteKAry(3, 4), ha.Options{
		Level:      1,
		Replicas:   1,
		Heartbeat:  25 * time.Millisecond,
		MissBudget: 4,
		Sched:      sched.Config{Capacity: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	srv := httptest.NewServer(naas.NewSharded(cl).Handler())
	t.Cleanup(srv.Close)

	if err := runShards([]string{"-addr", srv.URL}); err != nil {
		t.Fatal(err)
	}

	shards, err := naas.NewClient(srv.URL, nil).Shards(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := printShards(&out, shards); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 1+cl.Shards() {
		t.Fatalf("got %d lines, want header + %d shards:\n%s", len(lines), cl.Shards(), out.String())
	}
	if !strings.HasPrefix(lines[0], "SHARD") {
		t.Fatalf("missing header: %q", lines[0])
	}
	for _, line := range lines[1:] {
		if !strings.Contains(line, "node ") {
			t.Fatalf("shard row without a serving primary: %q", line)
		}
	}
}
