package topology

import (
	"fmt"
	"math"
	"math/rand"
)

// This file builds per-switch capacity profiles for the heterogeneous
// deployments of the follow-up literature ("Constrained In-network
// Computing with Low Congestion in Datacenter Networks"): real fabrics
// mix fully-programmable switches, half-provisioned aggregation layers
// and plain forwarders. A profile is a []int aligned with the tree's
// switch ids; consumers interpret an entry either as a budget weight
// (core.SolveCaps: a blue at v consumes caps[v] units) or as a lease
// slot count (sched.Ledger: v serves at most caps[v] tenants). 0 always
// means "plain forwarder — never aggregates".

// CapsUniform returns the uniform profile caps[v] = c for every switch.
// c must be ≥ 0; CapsUniform(t, 1) is exactly the classic model.
func CapsUniform(t *Tree, c int) []int {
	if c < 0 {
		panic(fmt.Sprintf("topology: CapsUniform(%d): capacity must be ≥ 0", c))
	}
	caps := make([]int, t.N())
	for v := range caps {
		caps[v] = c
	}
	return caps
}

// CapsTiered assigns capacity by tree level, the tiered fat-tree
// profile: byLevel[l] is the capacity of every switch at level l (the
// root is level 0, i.e. Depth(v)−1), and the last entry extends to all
// deeper levels. For example CapsTiered(t, 1, 2, 4) models cheap
// programmable core switches above half-provisioned aggregation above
// expensive-to-enable ToRs. At least one level must be given; entries
// must be ≥ 0.
func CapsTiered(t *Tree, byLevel ...int) []int {
	if len(byLevel) == 0 {
		panic("topology: CapsTiered needs at least one level capacity")
	}
	for i, c := range byLevel {
		if c < 0 {
			panic(fmt.Sprintf("topology: CapsTiered level %d capacity %d must be ≥ 0", i, c))
		}
	}
	caps := make([]int, t.N())
	for v := range caps {
		l := t.Depth(v) - 1
		if l >= len(byLevel) {
			l = len(byLevel) - 1
		}
		caps[v] = byLevel[l]
	}
	return caps
}

// CapsTorOnly is the rack-local profile: only leaf (ToR) switches can
// aggregate. Each leaf independently gets capacity c with probability p,
// every other switch is a plain forwarder (capacity 0). p must be in
// [0, 1] and c ≥ 1.
func CapsTorOnly(t *Tree, c int, p float64, rng *rand.Rand) []int {
	if c < 1 {
		panic(fmt.Sprintf("topology: CapsTorOnly(%d): capacity must be ≥ 1", c))
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("topology: CapsTorOnly probability %v outside [0, 1]", p))
	}
	caps := make([]int, t.N())
	for _, v := range t.Leaves() {
		if rng.Float64() < p {
			caps[v] = c
		}
	}
	return caps
}

// CapsPowerLaw draws every switch's capacity from a bounded power law
// P(c) ∝ c^(−alpha) over {1, …, max}: many cheap switches, a heavy tail
// of expensive ones — the skew scale-free provisioning studies assume.
// max must be ≥ 1 and alpha > 0.
func CapsPowerLaw(t *Tree, max int, alpha float64, rng *rand.Rand) []int {
	if max < 1 {
		panic(fmt.Sprintf("topology: CapsPowerLaw(%d): max must be ≥ 1", max))
	}
	if alpha <= 0 {
		panic(fmt.Sprintf("topology: CapsPowerLaw alpha %v must be > 0", alpha))
	}
	// Cumulative weights for inverse-CDF sampling; max is small (a
	// hardware tier count), so the table is negligible.
	cum := make([]float64, max)
	total := 0.0
	for c := 1; c <= max; c++ {
		total += math.Pow(float64(c), -alpha)
		cum[c-1] = total
	}
	caps := make([]int, t.N())
	for v := range caps {
		u := rng.Float64() * total
		lo := 0
		for lo < max-1 && cum[lo] < u {
			lo++
		}
		caps[v] = lo + 1
	}
	return caps
}
