package core

import (
	"fmt"

	"soar/internal/topology"
)

// Incremental is a stateful SOAR engine for online settings: it keeps the
// SOAR-Gather tables of one tree alive across a stream of point updates
// to the load vector and the availability set, recomputing only the
// tables invalidated by each change.
//
// A switch's table depends solely on its children's tables and its own
// (load, availability, subtree-load) inputs, so an update at v dirties
// exactly the v→root path. Flushing a batch recomputes each dirty switch
// once, children before parents, via the same computeNode as the full
// Gather — the tables are therefore bitwise identical to a from-scratch
// Gather on the current inputs, and Solve returns the same placement.
//
// Costs: an update dirties ≤ h(T)+1 switches; recomputing switch v costs
// O(Depth(v)·Σ_m cap_prefix·cap[c_m]) with the effective-budget clamping
// of computeNode (at most O(Depth(v)·C(v)·k²), usually far less), so one
// flushed update is roughly O(h²·C·k) versus the full sweep's O(n·h·k) —
// a ~n/h saving (about two orders of magnitude on the paper's BT(2048)).
// The engine maintains the subtree capacity sums Σ_{u ∈ T_v} c(u) under
// SetAvail/SetCap, so the caps the tables are clamped to always match a
// from-scratch EffectiveCaps/EffectiveCapsVec. Batched updates coalesce:
// paths sharing a prefix mark each shared switch once, so b leaf updates
// cost at most min(b·h, n) node recomputations in one flush. Recomputed
// tables reuse their existing backing arrays and one engine-lifetime
// merge scratch, so steady-state flushes are allocation-free.
//
// The zero value is not usable; construct with NewIncremental (uniform
// model) or NewIncrementalCaps (heterogeneous capacities). The engine is
// not safe for concurrent use.
type Incremental struct {
	t       *topology.Tree
	load    []int   // owned copy; also aliased by tb.load
	caps    []int   // owned capacity weights, never nil (0/1 in the uniform model)
	subLoad []int64 // subtree loads, maintained under UpdateLoad
	capSum  []int64 // Σ_{u ∈ T_v} caps[u] (int64: exact even for MaxCapacity weights on 32-bit); cap[v] = min(k, capSum[v])
	k       int
	tb      *Tables
	dirty   []bool
	queue   []int   // dirty switches, unordered; invariant: upward-closed
	dcount  []int32 // depth-bucket counters for the flush order (len height+2)
	qbuf    []int   // scatter buffer for the counting sort
	sc      *scratch
	scCap   int           // the root effective cap sc is sized for
	cbuf    []*nodeTables // reusable child-table buffer for flushes
	cs      colorState    // reusable SOAR-Color scratch for SolveInto

	// Memo mode (NewIncrementalMemo): tables alias the shared solve
	// cache and are immutable, so a flush re-interns the dirty classes
	// instead of recomputing in place — a dirty-path update invalidates
	// only the classes on the root path, and recurring classes (churning
	// sparse tenants on a symmetric tree) are pure cache hits. classOf
	// tracks each switch's current class; memoEpoch detects evictions.
	memo      *Memo
	classOf   []int32
	memoEpoch uint64
}

// NewIncremental runs one full SOAR-Gather and returns an engine holding
// its tables. avail == nil means every switch may be blue; load and avail
// are copied, so later caller mutations do not affect the engine. A
// negative k is treated as 0.
func NewIncremental(t *topology.Tree, load []int, avail []bool, k int) *Incremental {
	validate(t, load, avail)
	return newIncremental(t, load, capsFromAvail(t, avail), k, nil)
}

// NewIncrementalCaps is NewIncremental under the heterogeneous capacity
// model (see SolveCaps): a blue at v consumes caps[v] budget units,
// caps[v] = 0 means v may never be blue, and caps == nil means every
// switch has capacity 1. caps is copied; mutate the engine's view with
// SetCap.
func NewIncrementalCaps(t *topology.Tree, load []int, caps []int, k int) *Incremental {
	validateCaps(t, load, caps)
	return newIncremental(t, load, copyCaps(t, caps), k, nil)
}

// NewIncrementalMemo is NewIncremental backed by a shared solve cache:
// the initial Gather and every subsequent flush run through m, so
// recurring subtree classes — across updates and across engines sharing
// the memo's goroutine — reuse cached tables instead of recomputing.
// Results stay bitwise identical to NewIncremental. The memo's tables
// are immutable; the engine never writes through them.
func NewIncrementalMemo(m *Memo, load []int, avail []bool, k int) *Incremental {
	t := m.Tree()
	validate(t, load, avail)
	return newIncremental(t, load, capsFromAvail(t, avail), k, m)
}

// NewIncrementalMemoCaps is NewIncrementalCaps backed by a shared solve
// cache (see NewIncrementalMemo).
func NewIncrementalMemoCaps(m *Memo, load []int, caps []int, k int) *Incremental {
	t := m.Tree()
	validateCaps(t, load, caps)
	return newIncremental(t, load, copyCaps(t, caps), k, m)
}

// capsFromAvail lowers a uniform-model availability set (already
// validated; nil = all available) to the 0/1 capacity vector the engine
// owns.
func capsFromAvail(t *topology.Tree, avail []bool) []int {
	caps := make([]int, t.N())
	for v := range caps {
		if isAvail(avail, v) {
			caps[v] = 1
		}
	}
	return caps
}

// copyCaps returns an engine-owned copy of a (validated) capacity
// vector; nil means capacity 1 everywhere.
func copyCaps(t *topology.Tree, caps []int) []int {
	owned := make([]int, t.N())
	if caps == nil {
		for v := range owned {
			owned[v] = 1
		}
	} else {
		copy(owned, caps)
	}
	return owned
}

// newIncremental takes ownership of caps (already validated, never
// nil). A non-nil memo selects memo mode: tables alias the cache and
// flushes go through flushMemo.
func newIncremental(t *topology.Tree, load []int, caps []int, k int, memo *Memo) *Incremental {
	if k < 0 {
		k = 0
	}
	n := t.N()
	inc := &Incremental{
		t:     t,
		load:  append([]int(nil), load...),
		caps:  caps,
		k:     k,
		dirty: make([]bool, n),
		memo:  memo,
	}
	inc.subLoad = t.SubtreeLoads(inc.load)
	inc.capSum = make([]int64, n)
	for _, v := range t.PostOrder() {
		s := int64(caps[v])
		for _, ch := range t.Children(v) {
			s += inc.capSum[ch]
		}
		inc.capSum[v] = s
	}
	if memo != nil {
		inc.classOf = make([]int32, n)
		inc.tb = memo.gather(inc.load, nil, inc.caps, k, inc.classOf)
		inc.memoEpoch = memo.epoch.Load()
		return inc
	}
	inc.scCap = inc.cap(t.Root())
	inc.sc = newScratch(inc.scCap)
	inc.tb = gatherSerial(t, inc.load, nil, inc.caps, k, true)
	return inc
}

// cap returns the effective budget min(k, Σ_{u ∈ T_v} c(u)) under the
// engine's current capacity vector.
//
//soar:hotpath
func (inc *Incremental) cap(v int) int {
	return int(min(int64(inc.k), inc.capSum[v]))
}

// K returns the budget the engine solves for.
func (inc *Incremental) K() int { return inc.k } //soar:hotpath

// Tree returns the tree the engine operates on.
func (inc *Incremental) Tree() *topology.Tree { return inc.t } //soar:hotpath

// Load returns the engine's current load at switch v.
func (inc *Incremental) Load(v int) int { return inc.load[v] } //soar:hotpath

// Loads returns a copy of the engine's current load vector.
func (inc *Incremental) Loads() []int { return append([]int(nil), inc.load...) }

// Avail reports whether switch v is currently available (v ∈ Λ, i.e. its
// capacity weight is positive).
func (inc *Incremental) Avail(v int) bool { return inc.caps[v] > 0 } //soar:hotpath

// Capacity returns the engine's current capacity weight of switch v (the
// budget a blue at v consumes; 0 means v may never be blue).
func (inc *Incremental) Capacity(v int) int { return inc.caps[v] } //soar:hotpath

// Capacities returns a copy of the engine's current capacity vector.
func (inc *Incremental) Capacities() []int { return append([]int(nil), inc.caps...) }

// Pending returns the number of switches whose tables are stale; it is
// zero right after a flush (Flush, Solve, Cost or Tables).
func (inc *Incremental) Pending() int { return len(inc.queue) } //soar:hotpath

// UpdateLoad adds delta to the load of switch v and marks the v→root
// path dirty. It panics if the load would become negative. The
// recomputation is deferred until the next flush, so consecutive updates
// batch.
//
//soar:hotpath
func (inc *Incremental) UpdateLoad(v, delta int) {
	if delta == 0 {
		return
	}
	if inc.load[v]+delta < 0 {
		panic(fmt.Sprintf("core: incremental update drives switch %d load to %d", v, inc.load[v]+delta))
	}
	inc.load[v] += delta
	for u := v; ; u = inc.t.Parent(u) {
		inc.subLoad[u] += int64(delta)
		inc.markDirty(u)
		if u == inc.t.Root() {
			return
		}
	}
}

// SetLoad sets the load of switch v to value (a convenience wrapper
// around UpdateLoad).
//
//soar:hotpath
func (inc *Incremental) SetLoad(v, value int) {
	if value < 0 {
		panic(fmt.Sprintf("core: incremental SetLoad(%d, %d): negative load", v, value))
	}
	inc.UpdateLoad(v, value-inc.load[v])
}

// SetAvail inserts v into (ok == true) or removes v from (ok == false)
// the availability set Λ, marking the v→root path dirty: the uniform-
// model wrapper of SetCap, setting the capacity weight to 1 or 0. A
// no-op change dirties nothing. On an engine tracking heterogeneous
// capacities, SetAvail(v, true) resets c(v) to 1 — use SetCap to restore
// a different weight.
//
//soar:hotpath
func (inc *Incremental) SetAvail(v int, ok bool) {
	c := 0
	if ok {
		c = 1
	}
	inc.SetCap(v, c)
}

// SetCap sets the capacity weight of switch v to c (≥ 0; 0 removes v
// from Λ), marking the v→root path dirty. A no-op change dirties
// nothing.
//
//soar:hotpath
func (inc *Incremental) SetCap(v, c int) {
	if c < 0 || c > MaxCapacity {
		panic(fmt.Sprintf("core: incremental SetCap(%d, %d): capacity outside [0, %d]", v, c, MaxCapacity))
	}
	delta := int64(c) - int64(inc.caps[v])
	if delta == 0 {
		return
	}
	inc.caps[v] = c
	for u := v; ; u = inc.t.Parent(u) {
		inc.capSum[u] += delta
		inc.markDirty(u)
		if u == inc.t.Root() {
			return
		}
	}
}

// SetCaps patches the engine's whole capacity vector to equal caps (nil
// means capacity 1 everywhere), dirtying only the root paths of switches
// whose weight actually changed — the bulk companion of SetLoads for the
// heterogeneous model.
//
//soar:hotpath
func (inc *Incremental) SetCaps(caps []int) {
	if caps != nil && len(caps) != inc.t.N() {
		panic(fmt.Sprintf("core: incremental SetCaps has %d entries for %d switches", len(caps), inc.t.N()))
	}
	for v := 0; v < inc.t.N(); v++ {
		c := 1
		if caps != nil {
			c = caps[v]
		}
		inc.SetCap(v, c)
	}
}

// SetLoads patches the engine's whole load vector to equal loads,
// dirtying only the root paths of switches whose load actually changed.
// It is the bulk reset used by pooled engines (internal/sched): repointing
// a warm engine at a different tenant's load vector costs one O(n)
// comparison scan plus recomputation of the changed paths only, instead
// of a from-scratch Gather.
//
//soar:hotpath
func (inc *Incremental) SetLoads(loads []int) {
	if len(loads) != inc.t.N() {
		panic(fmt.Sprintf("core: incremental SetLoads has %d entries for %d switches", len(loads), inc.t.N()))
	}
	for v, l := range loads {
		if l != inc.load[v] {
			inc.SetLoad(v, l)
		}
	}
}

// SetAvails patches the engine's availability set to equal avail
// (nil means every switch available), dirtying only the root paths of
// switches whose membership in Λ actually changed — the bulk companion
// of SetLoads for engine pooling. Like SetAvail, it is a uniform-model
// operation: every available switch's capacity weight becomes 1, so on
// an engine tracking heterogeneous capacities it discards the weights —
// use SetCaps to bulk-patch those instead.
//
//soar:hotpath
func (inc *Incremental) SetAvails(avail []bool) {
	if avail != nil && len(avail) != inc.t.N() {
		panic(fmt.Sprintf("core: incremental SetAvails has %d entries for %d switches", len(avail), inc.t.N()))
	}
	for v := 0; v < inc.t.N(); v++ {
		inc.SetAvail(v, isAvail(avail, v))
	}
}

// markDirty enqueues u once. Because every mutation marks a full
// suffix-path up to the root, the dirty set is upward-closed; callers
// that walk upward may stop at the first already-dirty switch.
//
//soar:hotpath
func (inc *Incremental) markDirty(u int) {
	if !inc.dirty[u] {
		inc.dirty[u] = true
		inc.queue = append(inc.queue, u)
	}
}

// Flush recomputes every dirty table, children before parents. Shared
// path prefixes from a batch of updates are recomputed once. In memo
// mode the dirty switches are re-interned instead: only switches whose
// class actually changed touch the cache, and of those only cache
// misses run computeNode.
//
//soar:hotpath
func (inc *Incremental) Flush() {
	if len(inc.queue) == 0 {
		return
	}
	inc.orderQueue()
	if inc.memo != nil {
		inc.flushMemo()
		return
	}
	if rootCap := inc.cap(inc.t.Root()); rootCap > inc.scCap {
		// SetCap raised the root's capacity sum past the width the merge
		// scratch was built for: regrow it (rare; capacity raises only).
		inc.scCap = rootCap
		inc.sc = newScratch(rootCap) //soar:coldpath capacity raise
	}
	for _, v := range inc.queue {
		// Reuse the node's existing backing arrays (resized if SetAvail
		// moved its cap), plus the engine-lifetime merge scratch and
		// child buffer: a steady-state flush allocates nothing.
		nt := &inc.tb.nodes[v]
		ensureNodeStorage(nt, inc.t.Depth(v), inc.cap(v), inc.t.NumChildren(v), true)
		inc.cbuf = appendChildTables(inc.cbuf[:0], inc.tb, v)
		computeNode(inc.t, v, inc.load[v], inc.subLoad[v] > 0,
			inc.caps[v], nt, inc.cbuf, inc.sc)
		inc.dirty[v] = false
	}
	inc.queue = inc.queue[:0]
}

// orderQueue orders the dirty queue deeper switches first; a parent on
// the queue is always strictly shallower than its dirty children, so
// this is a valid bottom-up order over the (upward-closed) dirty set.
// Depths are bounded by the tree height, so a counting sort over
// engine-owned depth buckets replaces the comparison sort: O(q + h),
// no comparator calls, no allocation once warm.
//
//soar:hotpath
func (inc *Incremental) orderQueue() {
	t := inc.t
	if inc.dcount == nil {
		inc.dcount = make([]int32, t.Height()+2) //soar:coldpath first flush
	}
	maxd := 0
	for _, v := range inc.queue {
		d := t.Depth(v)
		inc.dcount[d]++
		if d > maxd {
			maxd = d
		}
	}
	pos := int32(0)
	for d := maxd; d >= 0; d-- { // deepest bucket first
		c := inc.dcount[d]
		inc.dcount[d] = pos
		pos += c
	}
	if cap(inc.qbuf) < len(inc.queue) {
		inc.qbuf = make([]int, len(inc.queue)) //soar:coldpath queue grew
	}
	qb := inc.qbuf[:len(inc.queue)]
	for _, v := range inc.queue {
		d := t.Depth(v)
		qb[inc.dcount[d]] = v
		inc.dcount[d]++
	}
	copy(inc.queue, qb)
	for d := 0; d <= maxd; d++ {
		inc.dcount[d] = 0 // leave the buckets clean for the next flush
	}
}

// flushMemo is the memo-mode flush: re-intern each dirty switch's class
// bottom-up (the queue is already sorted deepest-first) and realias its
// table. Memo tables are immutable, so a miss computes into fresh
// storage instead of recycling the old (possibly shared) arrays.
//
//soar:hotpath
func (inc *Incremental) flushMemo() {
	m := inc.memo
	m.maybeEvict()
	if m.epoch.Load() != inc.memoEpoch {
		inc.reclassAll() //soar:coldpath eviction recovery
	}
	t := inc.t
	pd := t.PathDigests()
	m.ensureScratch(inc.cap(t.Root()))
	var hits, misses uint64
	for _, v := range inc.queue {
		hasLoad := inc.subLoad[v] > 0
		cid := m.internClassFor(v, inc.classOf, pd, inc.load[v], hasLoad, inc.caps[v], inc.cap(v))
		inc.dirty[v] = false
		if cid == inc.classOf[v] {
			// The update restored this switch's exact inputs (or two
			// updates cancelled): the aliased table is already right.
			hits++
			continue
		}
		inc.classOf[v] = cid
		e := &m.entries[cid]
		if e.ok {
			hits++
		} else { //soar:coldpath cache miss: compute into fresh immutable storage
			misses++
			inc.cbuf = appendChildTables(inc.cbuf[:0], inc.tb, v)
			m.computeEntry(e, v, inc.load[v], hasLoad, inc.caps[v], inc.cap(v), inc.cbuf, m.sc)
		}
		inc.tb.nodes[v] = e.nt
	}
	m.hits.Add(hits)
	m.misses.Add(misses)
	inc.queue = inc.queue[:0]
}

// reclassAll rebuilds classOf against the memo's current epoch after an
// eviction. Clean switches — whose tables are still exactly right —
// re-intern and seed the fresh cache with their live tables; dirty
// switches get the sentinel class -1 so the flush loop never skips
// them. The dirty set is upward-closed, so every descendant of a clean
// switch is clean and its children's fresh class ids are available
// bottom-up.
//
//soar:ctor seeds memo entries (writes memoEntry.nt)
func (inc *Incremental) reclassAll() {
	m := inc.memo
	t := inc.t
	pd := t.PathDigests()
	for _, v := range t.PostOrder() {
		if inc.dirty[v] {
			inc.classOf[v] = -1
			continue
		}
		hasLoad := inc.subLoad[v] > 0
		cid := m.internClassFor(v, inc.classOf, pd, inc.load[v], hasLoad, inc.caps[v], inc.cap(v))
		inc.classOf[v] = cid
		e := &m.entries[cid]
		if !e.ok {
			e.nt = inc.tb.nodes[v]
			if hasLoad {
				e.bytes = tableBytes(&e.nt)
			} else {
				e.bytes = zeroTableBytes(t.NumChildren(v))
			}
			e.ok = true
			m.bytes.Add(e.bytes)
		}
		// Realias so duplicate storage among class members can be freed.
		inc.tb.nodes[v] = e.nt
	}
	inc.memoEpoch = m.epoch.Load()
}

// Cost flushes pending updates and returns the optimal utilization
// φ-BIC(T, L, Λ, k) for the current inputs.
//
//soar:hotpath
func (inc *Incremental) Cost() float64 {
	inc.Flush()
	return inc.tb.Optimum()
}

// Solve flushes pending updates and runs SOAR-Color over the maintained
// tables, returning the same placement a from-scratch Solve would.
func (inc *Incremental) Solve() Result {
	inc.Flush()
	blue, cost := ColorPhase(inc.tb)
	return Result{Blue: blue, Cost: cost}
}

// SolveInto is Solve writing the optimal blue set into a caller-owned
// buffer (which must have length N) and returning φ. It reuses the
// engine's color scratch and the engine's maintained subtree loads to
// skip zero-load subtrees (colorIntoSparse — identical placement), so a
// steady-state admission — SetLoads / SetAvails followed by SolveInto —
// performs no allocations and touches O(loaded spine) switches in the
// traceback.
//
//soar:hotpath
func (inc *Incremental) SolveInto(blue []bool) float64 {
	inc.Flush()
	return inc.cs.colorIntoSparse(inc.tb, blue, inc.subLoad)
}

// Tables flushes pending updates and exposes the maintained DP state.
// The returned tables stay owned by the engine: they are valid until the
// next mutating call.
//
//soar:hotpath
func (inc *Incremental) Tables() *Tables {
	inc.Flush()
	return inc.tb
}
