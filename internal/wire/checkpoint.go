package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Checkpoint frames serialize the scheduler control plane's durable
// state (internal/sched): the capacity ledger and every active lease.
// A checkpoint stream is
//
//	CkptHeader  (version, tree fingerprint, counts)
//	CkptLedger  (initial + residual capacity vectors)
//	CkptTenant  × Tenants (one frame per lease, loads stored sparse)
//	CkptFooter  (tenant count echo + FNV-1a checksum of all prior frames)
//
// Every frame reuses the package's length+type framing, so the one
// decoder — and the FuzzDecodeFrame target — covers recovery inputs the
// same way it covers network inputs: truncated, corrupt or oversized
// checkpoints must produce errors, never panics or unbounded buffers.

// CkptVersion is the current checkpoint stream version.
const CkptVersion = 1

// CkptHeader opens a checkpoint stream.
type CkptHeader struct {
	// Version is the stream format version (CkptVersion).
	Version uint32
	// Switches is the network size the ledger vectors must match.
	Switches uint32
	// Tenants is the number of CkptTenant frames that follow.
	Tenants uint64
	// NextID is the scheduler's next tenant id, preserved so recovered
	// schedulers never reissue a live id.
	NextID uint64
	// TreeSum is the topology fingerprint (topology.Tree.Fingerprint)
	// the checkpoint was taken against; restore refuses a different tree.
	TreeSum uint64
}

// Type implements Message.
func (CkptHeader) Type() Type { return TypeCkptHeader }

func (h CkptHeader) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, h.Version)
	b = binary.BigEndian.AppendUint32(b, h.Switches)
	b = binary.BigEndian.AppendUint64(b, h.Tenants)
	b = binary.BigEndian.AppendUint64(b, h.NextID)
	return binary.BigEndian.AppendUint64(b, h.TreeSum)
}

func (h *CkptHeader) parseBody(b []byte) error {
	if len(b) != 32 {
		return fmt.Errorf("wire: ckpt header body %d bytes, want 32", len(b))
	}
	h.Version = binary.BigEndian.Uint32(b)
	h.Switches = binary.BigEndian.Uint32(b[4:])
	h.Tenants = binary.BigEndian.Uint64(b[8:])
	h.NextID = binary.BigEndian.Uint64(b[16:])
	h.TreeSum = binary.BigEndian.Uint64(b[24:])
	return nil
}

// CkptLedger carries the capacity ledger: per-switch initial and
// residual lease capacities, both of length CkptHeader.Switches.
type CkptLedger struct {
	Initial  []int32
	Residual []int32
}

// Type implements Message.
func (CkptLedger) Type() Type { return TypeCkptLedger }

func (l CkptLedger) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint32(b, uint32(len(l.Initial)))
	for _, v := range l.Initial {
		b = binary.BigEndian.AppendUint32(b, uint32(v))
	}
	for _, v := range l.Residual {
		b = binary.BigEndian.AppendUint32(b, uint32(v))
	}
	return b
}

func (l *CkptLedger) parseBody(b []byte) error {
	if len(b) < 4 {
		return fmt.Errorf("wire: ckpt ledger body %d bytes, want ≥ 4", len(b))
	}
	n := uint64(binary.BigEndian.Uint32(b))
	if 8*n > MaxFrame {
		return fmt.Errorf("wire: ckpt ledger for %d switches too large", n)
	}
	if uint64(len(b)-4) != 8*n {
		return fmt.Errorf("wire: ckpt ledger body %d bytes for %d switches", len(b), n)
	}
	l.Initial = make([]int32, n)
	l.Residual = make([]int32, n)
	for i := range l.Initial {
		l.Initial[i] = int32(binary.BigEndian.Uint32(b[4+4*i:]))
	}
	off := 4 + 4*int(n)
	for i := range l.Residual {
		l.Residual[i] = int32(binary.BigEndian.Uint32(b[off+4*i:]))
	}
	return nil
}

// CkptTenant carries one lease: identity, budget, the two costs, the
// leased (blue) switches, and the tenant's load stored sparse as
// (switch, count) pairs — loads are overwhelmingly leaf-sparse, so dense
// n-vectors per tenant would dominate the checkpoint.
type CkptTenant struct {
	ID         uint64
	K          uint32
	PhiBits    uint64
	AllRedBits uint64
	Blue       []uint32
	// LoadV[i] carries LoadN[i] servers; the two slices are parallel.
	LoadV []uint32
	LoadN []uint32
}

// Type implements Message.
func (CkptTenant) Type() Type { return TypeCkptTenant }

// Phi returns the lease's utilization cost.
func (t CkptTenant) Phi() float64 { return math.Float64frombits(t.PhiBits) }

// SetPhi stores the lease's utilization cost.
func (t *CkptTenant) SetPhi(phi float64) { t.PhiBits = math.Float64bits(phi) }

// AllRed returns the tenant's no-aggregation utilization.
func (t CkptTenant) AllRed() float64 { return math.Float64frombits(t.AllRedBits) }

// SetAllRed stores the tenant's no-aggregation utilization.
func (t *CkptTenant) SetAllRed(phi float64) { t.AllRedBits = math.Float64bits(phi) }

func (t CkptTenant) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, t.ID)
	b = binary.BigEndian.AppendUint32(b, t.K)
	b = binary.BigEndian.AppendUint64(b, t.PhiBits)
	b = binary.BigEndian.AppendUint64(b, t.AllRedBits)
	b = binary.BigEndian.AppendUint32(b, uint32(len(t.Blue)))
	b = binary.BigEndian.AppendUint32(b, uint32(len(t.LoadV)))
	for _, v := range t.Blue {
		b = binary.BigEndian.AppendUint32(b, v)
	}
	for i, v := range t.LoadV {
		b = binary.BigEndian.AppendUint32(b, v)
		b = binary.BigEndian.AppendUint32(b, t.LoadN[i])
	}
	return b
}

func (t *CkptTenant) parseBody(b []byte) error {
	const fixed = 8 + 4 + 8 + 8 + 4 + 4
	if len(b) < fixed {
		return fmt.Errorf("wire: ckpt tenant body %d bytes, want ≥ %d", len(b), fixed)
	}
	t.ID = binary.BigEndian.Uint64(b)
	t.K = binary.BigEndian.Uint32(b[8:])
	t.PhiBits = binary.BigEndian.Uint64(b[12:])
	t.AllRedBits = binary.BigEndian.Uint64(b[20:])
	nb := uint64(binary.BigEndian.Uint32(b[28:]))
	nl := uint64(binary.BigEndian.Uint32(b[32:]))
	if 4*nb+8*nl > MaxFrame {
		return fmt.Errorf("wire: ckpt tenant with %d blues, %d loads too large", nb, nl)
	}
	if uint64(len(b)-fixed) != 4*nb+8*nl {
		return fmt.Errorf("wire: ckpt tenant body %d bytes for %d blues, %d loads", len(b), nb, nl)
	}
	t.Blue = make([]uint32, nb)
	for i := range t.Blue {
		t.Blue[i] = binary.BigEndian.Uint32(b[fixed+4*i:])
	}
	off := fixed + 4*int(nb)
	t.LoadV = make([]uint32, nl)
	t.LoadN = make([]uint32, nl)
	for i := range t.LoadV {
		t.LoadV[i] = binary.BigEndian.Uint32(b[off+8*i:])
		t.LoadN[i] = binary.BigEndian.Uint32(b[off+8*i+4:])
	}
	return nil
}

// CkptFooter closes a checkpoint stream: Tenants must echo the header
// and Sum is the FNV-1a hash of every frame byte written before the
// footer, so a truncated or corrupted checkpoint is detected before any
// of it is trusted.
type CkptFooter struct {
	Tenants uint64
	Sum     uint64
}

// Type implements Message.
func (CkptFooter) Type() Type { return TypeCkptFooter }

func (f CkptFooter) appendBody(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, f.Tenants)
	return binary.BigEndian.AppendUint64(b, f.Sum)
}

func (f *CkptFooter) parseBody(b []byte) error {
	if len(b) != 16 {
		return fmt.Errorf("wire: ckpt footer body %d bytes, want 16", len(b))
	}
	f.Tenants = binary.BigEndian.Uint64(b)
	f.Sum = binary.BigEndian.Uint64(b[8:])
	return nil
}
