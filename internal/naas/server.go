package naas

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// HTTP API
//
//	POST   /v1/tenants        {"load": [...], "k": 4}      → Lease JSON
//	GET    /v1/tenants/{id}                                 → Lease JSON
//	DELETE /v1/tenants/{id}                                 → 204
//	GET    /v1/stats                                        → Stats JSON
//	GET    /v1/residual                                     → {"residual": [...]}
//	GET    /v1/checkpoint                                   → checkpoint stream (octet-stream)
//	POST   /v1/checkpoint                                   → {"path": ..., "bytes": n} (durable save)
//
// All request and response bodies are JSON; errors come back as
// {"error": "..."} with an appropriate status code.

// placeRequest is the admission request body.
type placeRequest struct {
	Load []int `json:"load"`
	K    int   `json:"k"`
}

// leaseJSON is the wire form of a Lease.
type leaseJSON struct {
	ID     int64   `json:"id"`
	Blue   []int   `json:"blue"`
	K      int     `json:"k"`
	Phi    float64 `json:"phi"`
	AllRed float64 `json:"all_red"`
	Ratio  float64 `json:"ratio"`
}

func toLeaseJSON(l *Lease) leaseJSON {
	blue := l.Blue
	if blue == nil {
		blue = []int{}
	}
	return leaseJSON{
		ID: l.ID, Blue: blue, K: l.K, Phi: l.Phi, AllRed: l.AllRed, Ratio: l.Ratio(),
	}
}

// Handler returns the service's HTTP control plane.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/tenants", s.handleTenants)
	mux.HandleFunc("/v1/tenants/", s.handleTenantByID)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/residual", s.handleResidual)
	mux.HandleFunc("/v1/checkpoint", s.handleCheckpoint)
	return mux
}

func (s *Service) handleTenants(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	var req placeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	lease, err := s.Place(req.Load, req.K)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, toLeaseJSON(lease))
}

func (s *Service) handleTenantByID(w http.ResponseWriter, r *http.Request) {
	idStr := strings.TrimPrefix(r.URL.Path, "/v1/tenants/")
	id, err := strconv.ParseInt(idStr, 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad tenant id %q", idStr))
		return
	}
	switch r.Method {
	case http.MethodGet:
		lease, err := s.Lookup(id)
		if err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, toLeaseJSON(lease))
	case http.MethodDelete:
		if err := s.Release(id); err != nil {
			httpError(w, http.StatusNotFound, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET or DELETE only"))
	}
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	writeJSON(w, http.StatusOK, s.Snapshot())
}

func (s *Service) handleResidual(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	writeJSON(w, http.StatusOK, map[string][]int{"residual": s.Residual()})
}

// handleCheckpoint serves the crash-recovery surface: GET streams a
// consistent checkpoint of the control plane to the caller (an operator
// pulling a backup), POST asks the daemon to persist one to its
// configured path (503 when the daemon runs without one).
func (s *Service) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		// Encode to a buffer first so a failure can still produce an
		// error status instead of a torn stream.
		var buf bytes.Buffer
		if err := s.Checkpoint(&buf); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
		w.WriteHeader(http.StatusOK)
		buf.WriteTo(w) // best effort; the status line is already out
	case http.MethodPost:
		if s.save == nil {
			httpError(w, http.StatusServiceUnavailable, errors.New("no checkpoint path configured"))
			return
		}
		path, size, err := s.save()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]interface{}{"path": path, "bytes": size})
	default:
		httpError(w, http.StatusMethodNotAllowed, errors.New("GET or POST only"))
	}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v) // best effort; the status line is already out
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
