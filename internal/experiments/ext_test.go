package experiments

import (
	"testing"
)

func TestExtIncrementalShapes(t *testing.T) {
	fig, err := ExtIncremental(QuickExtIncremental())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Subplots) != 3 {
		t.Fatalf("got %d subplots, want 3 (full, incremental, speedup)", len(fig.Subplots))
	}
	for _, sp := range fig.Subplots[:2] {
		for _, s := range sp.Series {
			for i, y := range s.Y {
				if y <= 0 {
					t.Fatalf("%s %s: non-positive time %v at k=%v", sp.Name, s.Label, y, s.X[i])
				}
			}
		}
	}
}

func TestExtMemoShapes(t *testing.T) {
	fig, err := ExtMemo(QuickExtMemo())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Subplots) != 2 {
		t.Fatalf("got %d subplots, want 2 (speedup, classes)", len(fig.Subplots))
	}
	for _, s := range fig.Subplots[0].Series {
		for i, y := range s.Y {
			if y <= 0 {
				t.Fatalf("speedup %s: non-positive ratio %v at frac=%v", s.Label, y, s.X[i])
			}
		}
	}
	for _, s := range fig.Subplots[1].Series {
		for i, y := range s.Y {
			if y <= 0 || y > 1 {
				t.Fatalf("classes %s: fraction %v at frac=%v outside (0, 1]", s.Label, y, s.X[i])
			}
		}
	}
}

func TestFig7IncrementalEngineMatchesFull(t *testing.T) {
	// The incremental allocator is observationally identical to the
	// from-scratch one, so fig7 must come out the same point for point.
	cfg := QuickFig7()
	cfg.Reps = 1
	full, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = "incremental"
	inc, err := Fig7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for si, sp := range full.Subplots {
		for ri, s := range sp.Series {
			for i, y := range s.Y {
				if got := inc.Subplots[si].Series[ri].Y[i]; got != y {
					t.Fatalf("%s/%s: incremental %v, full %v", sp.Name, s.Label, got, y)
				}
			}
		}
	}
}

func TestFig7RejectsUnknownEngine(t *testing.T) {
	cfg := QuickFig7()
	cfg.Engine = "warp"
	if _, err := Fig7(cfg); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestExtObjectivesShapes(t *testing.T) {
	fig, err := ExtObjectives(QuickExtObjectives())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Subplots) != 3 {
		t.Fatalf("got %d subplots, want 3 (utilization, completion, bottleneck)", len(fig.Subplots))
	}
	// On the utilization metric SOAR must dominate outright.
	util := fig.Subplots[0]
	soar := findSeries(t, util, "soar")
	for _, s := range util.Series {
		for i := range s.Y {
			if s.Y[i] < soar.Y[i]-1e-9 {
				t.Fatalf("%s beats SOAR on φ at k=%v", s.Label, s.X[i])
			}
		}
	}
	// On the other metrics SOAR is a heuristic (the paper's conjecture):
	// sanity-check only that ratios are positive and ≤ a loose bound, and
	// that completion time improves from k=min to k=max.
	for _, sp := range fig.Subplots[1:] {
		soar := findSeries(t, sp, "soar")
		for i, y := range soar.Y {
			if y <= 0 || y > 1.5 {
				t.Fatalf("%s: SOAR ratio %v at k=%v implausible", sp.Name, y, soar.X[i])
			}
		}
		if last := soar.Y[len(soar.Y)-1]; last > soar.Y[0]+1e-9 {
			t.Fatalf("%s: SOAR ratio worsened with k: %v -> %v", sp.Name, soar.Y[0], last)
		}
	}
}

func TestExtHeteroShapes(t *testing.T) {
	fig, err := ExtHetero(QuickExtHetero())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Subplots) != 1 {
		t.Fatalf("got %d subplots, want 1", len(fig.Subplots))
	}
	sp := fig.Subplots[0]
	if len(sp.Series) != 4 {
		t.Fatalf("got %d profiles, want 4", len(sp.Series))
	}
	uniform := findSeries(t, sp, "uniform(1)")
	for _, s := range sp.Series {
		for i, y := range s.Y {
			if y <= 0 || y > 1+1e-9 {
				t.Fatalf("%s: ratio %v out of range at k=%v", s.Label, y, s.X[i])
			}
			// Every profile's weights are ≥ the uniform model's wherever
			// positive, so uniform(1) lower-bounds all of them at each k.
			if y < uniform.Y[i]-1e-9 {
				t.Fatalf("%s beats uniform(1) at k=%v: %v < %v", s.Label, s.X[i], y, uniform.Y[i])
			}
			// Ratios are non-increasing in the budget within a profile.
			if i > 0 && y > s.Y[i-1]+1e-9 {
				t.Fatalf("%s: ratio worsened with k: %v -> %v", s.Label, s.Y[i-1], y)
			}
		}
	}
}

func TestExtHeteroProfileFilter(t *testing.T) {
	cfg := QuickExtHetero()
	full, err := ExtHetero(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Profile = "powerlaw"
	filtered, err := ExtHetero(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := filtered.Subplots[0].Series
	if len(got) != 1 || got[0].Label != "powerlaw(max=8,α=2.5)" {
		t.Fatalf("filter kept %d series", len(got))
	}
	// A filtered run must reproduce the full sweep's series exactly:
	// every profile draws from its own salted rng stream, so dropping
	// the others cannot shift its capacities.
	want := findSeries(t, full.Subplots[0], "powerlaw(max=8,α=2.5)")
	for i := range want.Y {
		if got[0].Y[i] != want.Y[i] {
			t.Fatalf("filtered powerlaw differs from full sweep at k=%v: %v vs %v",
				want.X[i], got[0].Y[i], want.Y[i])
		}
	}
	cfg.Profile = "warp"
	if _, err := ExtHetero(cfg); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestExtTopologiesShapes(t *testing.T) {
	fig, err := ExtTopologies(QuickExtTopologies())
	if err != nil {
		t.Fatal(err)
	}
	sp := fig.Subplots[0]
	soar := findSeries(t, sp, "soar")
	if len(soar.Y) != 6 {
		t.Fatalf("got %d families, want 6", len(soar.Y))
	}
	for _, s := range sp.Series {
		for i := range s.Y {
			if s.Y[i] < soar.Y[i]-1e-9 {
				t.Fatalf("%s beats SOAR on family %v: %v < %v", s.Label, s.X[i], s.Y[i], soar.Y[i])
			}
			if s.Y[i] <= 0 || s.Y[i] > 1+1e-9 {
				t.Fatalf("%s ratio %v out of range on family %v", s.Label, s.Y[i], s.X[i])
			}
		}
	}
}
