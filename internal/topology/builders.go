package topology

import (
	"fmt"
	"math/rand"
)

// CompleteBinary returns a complete binary tree with the given number of
// levels (levels ≥ 1); level 1 is just the root. Node 0 is the root and
// node ids follow heap order: the children of v are 2v+1 and 2v+2. All
// rates are 1; reweight with ApplyRates.
func CompleteBinary(levels int) *Tree {
	return CompleteKAry(2, levels)
}

// BT returns the paper's BT(n) topology: a complete binary tree network
// whose total node count, *including the destination server d*, is n.
// n must be a power of two, at least 2; the switch network then has n-1
// switches arranged in log2(n) levels with n/2 leaves.
func BT(n int) (*Tree, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("topology: BT(%d): n must be a power of two ≥ 2", n)
	}
	levels := 0
	for m := n; m > 1; m >>= 1 {
		levels++
	}
	return CompleteBinary(levels), nil
}

// MustBT is BT but panics on error.
func MustBT(n int) *Tree {
	t, err := BT(n)
	if err != nil {
		panic(err)
	}
	return t
}

// CompleteKAry returns a complete k-ary tree with the given number of
// levels. Node 0 is the root; the children of v are k·v+1 .. k·v+k.
// All rates are 1.
func CompleteKAry(k, levels int) *Tree {
	if k < 1 || levels < 1 {
		panic(fmt.Sprintf("topology: CompleteKAry(%d, %d): arguments must be ≥ 1", k, levels))
	}
	n := 1
	pow := 1
	for l := 1; l < levels; l++ {
		pow *= k
		n += pow
	}
	parent := make([]int, n) //soar:rawk k is the tree arity here, not a budget
	parent[0] = NoParent
	for v := 1; v < n; v++ {
		parent[v] = (v - 1) / k
	}
	return MustNew(parent, ones(n))
}

// Path returns a path of n switches: 0 (root) — 1 — ... — n-1.
// All rates are 1.
func Path(n int) *Tree {
	parent := make([]int, n)
	parent[0] = NoParent
	for v := 1; v < n; v++ {
		parent[v] = v - 1
	}
	return MustNew(parent, ones(n))
}

// Star returns a star of n switches: node 0 is the root and all others
// are its children. All rates are 1.
func Star(n int) *Tree {
	parent := make([]int, n)
	parent[0] = NoParent
	for v := 1; v < n; v++ {
		parent[v] = 0
	}
	return MustNew(parent, ones(n))
}

// ScaleFree returns a random preferential-attachment (RPA) tree with n
// switches, as used in the paper's Appendix B (SF(n)). Node 0 is the
// root; each subsequent node attaches to an existing node chosen with
// probability proportional to its current degree (Barabási–Albert with
// m = 1), which yields a scale-free degree distribution. All rates are 1.
func ScaleFree(n int, rng *rand.Rand) *Tree {
	if n < 1 {
		panic("topology: ScaleFree: n must be ≥ 1")
	}
	parent := make([]int, n)
	parent[0] = NoParent
	// endpoints holds one entry per edge endpoint, so sampling uniformly
	// from it is sampling proportionally to degree. The root's edge to d
	// contributes one endpoint, matching Degree().
	endpoints := make([]int, 0, 2*n)
	endpoints = append(endpoints, 0)
	for v := 1; v < n; v++ {
		p := endpoints[rng.Intn(len(endpoints))]
		parent[v] = p
		endpoints = append(endpoints, p, v)
	}
	return MustNew(parent, ones(n))
}

// RandomRecursive returns a uniform random recursive tree with n
// switches: each node attaches to a uniformly random earlier node.
// All rates are 1.
func RandomRecursive(n int, rng *rand.Rand) *Tree {
	if n < 1 {
		panic("topology: RandomRecursive: n must be ≥ 1")
	}
	parent := make([]int, n)
	parent[0] = NoParent
	for v := 1; v < n; v++ {
		parent[v] = rng.Intn(v)
	}
	return MustNew(parent, ones(n))
}

func ones(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}
