// Package placement implements the baseline blue-switch allocation
// strategies that the SOAR paper compares against (Sec. 3), plus an
// exhaustive brute-force oracle used to verify optimality in tests.
//
// Every strategy is availability-aware: it only selects switches from the
// availability set Λ and never selects more than k, which is what the
// online multiple-workload setting of Sec. 5.2 requires.
package placement

import (
	"fmt"
	"math/rand"
	"sort"

	"soar/internal/reduce"
	"soar/internal/topology"
)

// Strategy computes a set of blue (aggregating) switches.
type Strategy interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Place returns a boolean blue vector with at most k true entries,
	// all within avail. A nil avail means every switch is available.
	Place(t *topology.Tree, load []int, avail []bool, k int) []bool
}

// AllAvailable returns an availability vector with every switch in Λ.
func AllAvailable(n int) []bool {
	a := make([]bool, n)
	for i := range a {
		a[i] = true
	}
	return a
}

func availOrAll(t *topology.Tree, avail []bool) []bool {
	if avail == nil {
		return AllAvailable(t.N())
	}
	return avail
}

// AllRed is the k = 0 baseline: no aggregation anywhere.
type AllRed struct{}

// Name implements Strategy.
func (AllRed) Name() string { return "all-red" }

// Place implements Strategy.
func (AllRed) Place(t *topology.Tree, _ []int, _ []bool, _ int) []bool {
	return make([]bool, t.N())
}

// AllBlue ignores the budget and makes every available switch an
// aggregator; it lower-bounds the utilization of any bounded solution.
type AllBlue struct{}

// Name implements Strategy.
func (AllBlue) Name() string { return "all-blue" }

// Place implements Strategy.
func (AllBlue) Place(t *topology.Tree, _ []int, avail []bool, _ int) []bool {
	a := availOrAll(t, avail)
	blue := make([]bool, t.N())
	copy(blue, a)
	return blue
}

// Top picks the k available switches closest to the root (paper Sec. 3
// strategy (i)). Ties within a level are broken toward the switch with
// the larger subtree load (aggregating where more traffic passes), then
// by switch id, which reproduces the paper's Fig. 2a outcome.
type Top struct{}

// Name implements Strategy.
func (Top) Name() string { return "top" }

// Place implements Strategy.
func (Top) Place(t *topology.Tree, load []int, avail []bool, k int) []bool {
	a := availOrAll(t, avail)
	sub := t.SubtreeLoads(load)
	order := candidateIDs(t, a)
	sort.SliceStable(order, func(i, j int) bool {
		vi, vj := order[i], order[j]
		if t.Depth(vi) != t.Depth(vj) {
			return t.Depth(vi) < t.Depth(vj)
		}
		if sub[vi] != sub[vj] {
			return sub[vi] > sub[vj]
		}
		return vi < vj
	})
	return takeFirst(t.N(), order, k)
}

// Max picks the k available switches with the largest local load (paper
// Sec. 3 strategy (ii)). Ties are broken by switch id.
type Max struct{}

// Name implements Strategy.
func (Max) Name() string { return "max" }

// Place implements Strategy.
func (Max) Place(t *topology.Tree, load []int, avail []bool, k int) []bool {
	a := availOrAll(t, avail)
	order := candidateIDs(t, a)
	sort.SliceStable(order, func(i, j int) bool {
		vi, vj := order[i], order[j]
		if load[vi] != load[vj] {
			return load[vi] > load[vj]
		}
		return vi < vj
	})
	return takeFirst(t.N(), order, k)
}

// MaxDegree picks the k available switches with the highest degree, the
// "natural" strategy for scale-free networks in the paper's Appendix B.
type MaxDegree struct{}

// Name implements Strategy.
func (MaxDegree) Name() string { return "max-degree" }

// Place implements Strategy.
func (MaxDegree) Place(t *topology.Tree, _ []int, avail []bool, k int) []bool {
	a := availOrAll(t, avail)
	order := candidateIDs(t, a)
	sort.SliceStable(order, func(i, j int) bool {
		vi, vj := order[i], order[j]
		if t.Degree(vi) != t.Degree(vj) {
			return t.Degree(vi) > t.Degree(vj)
		}
		return vi < vj
	})
	return takeFirst(t.N(), order, k)
}

// Level picks whole levels of a (complete binary) tree as blue (paper
// Sec. 3 strategy (iii)): level j = ⌊log₂ k⌋ is taken entirely (2^j ≤ k
// nodes); any remaining budget is filled from level j+1 in id order. For
// the paper's powers-of-two budgets this is exactly one whole level.
type Level struct{}

// Name implements Strategy.
func (Level) Name() string { return "level" }

// Place implements Strategy.
func (Level) Place(t *topology.Tree, _ []int, avail []bool, k int) []bool {
	a := availOrAll(t, avail)
	if k <= 0 {
		return make([]bool, t.N())
	}
	j := 0
	for (1 << (j + 1)) <= k {
		j++
	}
	if j > t.Height() {
		j = t.Height()
	}
	order := make([]int, 0, k) //soar:rawk candidate buffer, not a DP row; k already validated small
	for lvl := j; lvl <= t.Height() && len(order) < k; lvl++ {
		for _, v := range t.NodesAtLevel(lvl) {
			if a[v] {
				order = append(order, v)
			}
		}
	}
	return takeFirst(t.N(), order, k)
}

// Random picks k available switches uniformly at random; a reproducible
// baseline for ablations.
type Random struct{ Rng *rand.Rand }

// Name implements Strategy.
func (Random) Name() string { return "random" }

// Place implements Strategy.
func (s Random) Place(t *topology.Tree, _ []int, avail []bool, k int) []bool {
	a := availOrAll(t, avail)
	order := candidateIDs(t, a)
	s.Rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	return takeFirst(t.N(), order, k)
}

// Greedy adds blue switches one at a time, each time choosing the
// available switch whose activation most reduces φ. It is a natural
// O(k·n²) heuristic that the paper's dependency argument (Sec. 1)
// predicts to be suboptimal; included for ablation benchmarks.
type Greedy struct{}

// Name implements Strategy.
func (Greedy) Name() string { return "greedy" }

// Place implements Strategy.
func (Greedy) Place(t *topology.Tree, load []int, avail []bool, k int) []bool {
	a := availOrAll(t, avail)
	blue := make([]bool, t.N())
	cur := reduce.Utilization(t, load, blue)
	for round := 0; round < k; round++ {
		best, bestCost := -1, cur
		for v := 0; v < t.N(); v++ {
			if blue[v] || !a[v] {
				continue
			}
			blue[v] = true
			c := reduce.Utilization(t, load, blue)
			blue[v] = false
			if c < bestCost {
				best, bestCost = v, c
			}
		}
		if best < 0 {
			break // no strict improvement available
		}
		blue[best] = true
		cur = bestCost
	}
	return blue
}

// candidateIDs returns the available switch ids in increasing order.
func candidateIDs(t *topology.Tree, avail []bool) []int {
	ids := make([]int, 0, t.N())
	for v := 0; v < t.N(); v++ {
		if avail[v] {
			ids = append(ids, v)
		}
	}
	return ids
}

func takeFirst(n int, order []int, k int) []bool {
	blue := make([]bool, n)
	for i := 0; i < len(order) && i < k; i++ {
		blue[order[i]] = true
	}
	return blue
}

// Evaluate is a convenience helper returning the φ of strategy s on the
// given instance.
func Evaluate(s Strategy, t *topology.Tree, load []int, avail []bool, k int) float64 {
	return reduce.Utilization(t, load, s.Place(t, load, avail, k))
}

// String formats a blue vector as a sorted id list, for logs and tests.
func String(blue []bool) string {
	ids := make([]int, 0)
	for v, b := range blue {
		if b {
			ids = append(ids, v)
		}
	}
	return fmt.Sprint(ids)
}
