// Package lint implements soarlint, a zero-dependency static analyzer
// suite that machine-checks the repo's load-bearing invariants on every
// push — the contracts that were previously enforced only by comments
// and by benchmarks CI does not gate on:
//
//   - immutable: memo-interned nodeTables, the shared zero slabs and
//     topology.Tree are immutable after construction. Any write through
//     a type or field annotated `//soar:immutable` — assignment, index
//     store, IncDec, copy-into, append-into — outside a function
//     annotated `//soar:ctor` is an error.
//   - hotpath: functions annotated `//soar:hotpath` (SolveInto,
//     computeNode, the merge inner loops, the scheduler's batch
//     admission path) must be free of allocating constructs — make/new,
//     map and slice literals, escaping closures, interface boxing,
//     string concatenation — and may only call other annotated
//     functions, allowlisted stdlib, or code explicitly waived with
//     `//soar:coldpath`; the check is transitive over the module call
//     graph because every callee must carry the annotation itself.
//   - lockdiscipline: while a mutex field annotated `//soar:critical`
//     is held, no channel send/receive/select, no call to a
//     Solve*-named function and no sync.Pool.Get may happen — directly
//     or through any module function reachable from the critical
//     section (per-function effect summaries make the check
//     transitive). Lock acquisition must follow the package's
//     `//soar:lockorder` directive, and re-acquiring a held lock is an
//     error.
//   - capclamp: every DP row construction must be sized from the
//     effective budget (the EffectiveCaps/EffectiveCapsVec result, or a
//     min-clamp of it), never from the raw budget k: a make() whose
//     length derives from a parameter or field named k is an error
//     unless waived with `//soar:rawk`.
//
// The driver (cmd/soarlint) loads every package in the module with
// go/parser + go/types and a source-module importer, so the module
// stays at zero external dependencies. See DESIGN.md
// "Statically-checked invariants" for the annotation language.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string `json:"analyzer"`
	// File is the position's file path (relative to the module root
	// when produced by Run).
	File string `json:"file"`
	// Line and Col locate the finding (1-based).
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message describes the violation.
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Pass is the per-unit context handed to an analyzer.
type Pass struct {
	Unit   *Unit
	Module *Module
	found  *[]Finding
	name   string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Module.Fset.Position(pos)
	file := position.Filename
	if rel, ok := strings.CutPrefix(file, p.Module.Dir+"/"); ok {
		file = rel
	}
	*p.found = append(*p.found, Finding{
		Analyzer: p.name,
		File:     file,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one member of the suite.
type Analyzer struct {
	// Name identifies the analyzer in findings and -run filters.
	Name string
	// Doc is a one-line description.
	Doc string
	// SkipTests excludes _test.go files from the analyzer (capclamp:
	// test files legitimately exercise raw budgets against reference
	// engines).
	SkipTests bool
	// Run analyzes one unit.
	Run func(*Pass)
}

// All is the full suite, in reporting order.
var All = []*Analyzer{AnalyzerImmutable, AnalyzerHotpath, AnalyzerLockDiscipline, AnalyzerCapClamp}

// Run loads the module rooted at dir and runs every analyzer of the
// suite over the packages matching patterns ("./..." or nil means all).
// Findings are sorted by position. A non-nil error means the driver
// itself failed (load or type-check error), not that findings exist.
func Run(dir string, patterns []string) ([]Finding, error) {
	return RunAnalyzers(dir, patterns, All)
}

// RunAnalyzers is Run restricted to the given analyzers.
func RunAnalyzers(dir string, patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	mod, err := LoadModule(dir)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	for _, u := range mod.Units {
		if !matchUnit(mod, u, patterns) {
			continue
		}
		for _, a := range analyzers {
			pass := &Pass{Unit: u, Module: mod, found: &findings, name: a.Name}
			a.Run(pass)
		}
	}
	sortFindings(findings)
	return findings, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].File != fs[j].File {
			return fs[i].File < fs[j].File
		}
		if fs[i].Line != fs[j].Line {
			return fs[i].Line < fs[j].Line
		}
		if fs[i].Col != fs[j].Col {
			return fs[i].Col < fs[j].Col
		}
		return fs[i].Analyzer < fs[j].Analyzer
	})
}

// matchUnit reports whether the unit is selected by the patterns.
// Supported forms: "./...", ".", "./pkg", "./pkg/..." and bare import
// paths. nil or empty selects everything.
func matchUnit(mod *Module, u *Unit, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	ip := strings.TrimSuffix(u.ImportPath, ".test")
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." || pat == "" || pat == "." {
			return true
		}
		if rec, ok := strings.CutSuffix(pat, "/..."); ok {
			if ip == mod.Path+"/"+rec || strings.HasPrefix(ip, mod.Path+"/"+rec+"/") || ip == rec || strings.HasPrefix(ip, rec+"/") {
				return true
			}
			continue
		}
		if ip == pat || ip == mod.Path+"/"+pat {
			return true
		}
	}
	return false
}

// isTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) isTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Module.Fset.Position(f.FileStart).Filename, "_test.go")
}
