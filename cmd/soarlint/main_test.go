package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs the CLI with stdout/stderr redirected to temp files and
// returns the exit status plus both streams.
func capture(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	mk := func(name string) *os.File {
		f, err := os.CreateTemp(t.TempDir(), name)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	stdout, stderr := mk("stdout"), mk("stderr")
	defer stdout.Close()
	defer stderr.Close()
	code := run(args, stdout, stderr)
	read := func(f *os.File) string {
		b, err := os.ReadFile(f.Name())
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	return code, read(stdout), read(stderr)
}

// golden points at one of the lint package's golden modules, which
// conveniently have known findings.
func golden(name string) string {
	return filepath.Join("..", "..", "internal", "lint", "testdata", name)
}

func TestExitCleanIsZero(t *testing.T) {
	// The capclamp module carries no immutable annotations, so the
	// immutable analyzer alone reports nothing.
	code, stdout, stderr := capture(t, "-C", golden("capclamp"), "-run", "immutable")
	if code != 0 {
		t.Fatalf("exit %d on a clean run, want 0 (stderr: %s)", code, stderr)
	}
	if stdout != "" {
		t.Fatalf("clean run produced output: %q", stdout)
	}
}

func TestExitFindingsIsOne(t *testing.T) {
	code, stdout, _ := capture(t, "-C", golden("capclamp"))
	if code != 1 {
		t.Fatalf("exit %d on a module with findings, want 1", code)
	}
	if !strings.Contains(stdout, "capclamp:") || !strings.Contains(stdout, "finding(s)") {
		t.Fatalf("findings output missing analyzer name or summary:\n%s", stdout)
	}
}

func TestExitDriverErrorIsTwo(t *testing.T) {
	if code, _, stderr := capture(t, "-C", filepath.Join(t.TempDir(), "nope")); code != 2 {
		t.Fatalf("exit %d on a missing module, want 2 (stderr: %s)", code, stderr)
	}
	if code, _, stderr := capture(t, "-run", "bogus"); code != 2 {
		t.Fatalf("exit %d on an unknown analyzer, want 2", code)
	} else if !strings.Contains(stderr, "unknown analyzer") {
		t.Fatalf("unknown-analyzer error not reported: %q", stderr)
	}
}

func TestJSONReport(t *testing.T) {
	code, stdout, _ := capture(t, "-C", golden("capclamp"), "-json")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	var rep struct {
		Module   string `json:"module"`
		Findings []struct {
			Analyzer string `json:"analyzer"`
			File     string `json:"file"`
			Line     int    `json:"line"`
			Message  string `json:"message"`
		} `json:"findings"`
		Count int `json:"count"`
	}
	if err := json.Unmarshal([]byte(stdout), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, stdout)
	}
	if rep.Count != len(rep.Findings) || rep.Count == 0 {
		t.Fatalf("count %d vs %d findings", rep.Count, len(rep.Findings))
	}
	for _, f := range rep.Findings {
		if f.Analyzer != "capclamp" || f.File == "" || f.Line == 0 || f.Message == "" {
			t.Fatalf("incomplete finding: %+v", f)
		}
	}
}

func TestJSONCleanHasEmptyArray(t *testing.T) {
	code, stdout, _ := capture(t, "-C", golden("capclamp"), "-json", "-run", "immutable")
	if code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if !strings.Contains(stdout, `"findings": []`) {
		t.Fatalf("clean JSON report must carry an empty array, not null:\n%s", stdout)
	}
}
