package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"soar/internal/naas"
)

// runShards asks a sharded soar-naasd (started with -shard) for its
// membership view and renders one row per shard: who is primary, at
// what epoch, how far the journal has advanced, and how many standbys
// stand behind it. An epoch that grew since the last look means a
// failover happened; a primary of "-" means the shard is electing.
func runShards(args []string) error {
	fs := newFlagSet("shards")
	addr := fs.String("addr", "http://127.0.0.1:7070", "daemon base URL")
	timeout := fs.Duration("timeout", 5*time.Second, "request timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	shards, err := naas.NewClient(*addr, nil).Shards(ctx)
	if err != nil {
		return err
	}
	return printShards(os.Stdout, shards)
}

func printShards(w io.Writer, shards []naas.ShardInfo) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SHARD\tROOT\tEPOCH\tPRIMARY\tADDR\tSTANDBYS\tSEQ\tTENANTS")
	for _, s := range shards {
		primary := "-"
		if s.PrimaryNode >= 0 {
			primary = fmt.Sprintf("node %d", s.PrimaryNode)
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%s\t%s\t%d\t%d\t%d\n",
			s.Index, s.Root, s.Epoch, primary, s.PrimaryAddr,
			s.Standbys, s.Seq, s.Tenants)
	}
	return tw.Flush()
}
