package sched

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"soar/internal/load"
	"soar/internal/topology"
)

// journalRecorder collects the hook's events; the hook runs on the
// dispatcher goroutine, so reads take the lock.
type journalRecorder struct {
	mu  sync.Mutex
	evs []JournalEvent
}

func (j *journalRecorder) record(ev JournalEvent) {
	j.mu.Lock()
	j.evs = append(j.evs, ev)
	j.mu.Unlock()
}

func (j *journalRecorder) events() []JournalEvent {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]JournalEvent(nil), j.evs...)
}

// assertReplicaEqual proves two schedulers hold identical durable state:
// same residuals, and every lease equal field-for-field.
func assertReplicaEqual(t *testing.T, primary, replica *Scheduler, ids map[int64]bool) {
	t.Helper()
	pr, rr := primary.Residual(), replica.Residual()
	for v := range pr {
		if pr[v] != rr[v] {
			t.Fatalf("switch %d: primary residual %d, replica %d", v, pr[v], rr[v])
		}
	}
	for id := range ids {
		pl, perr := primary.Lookup(id)
		rl, rerr := replica.Lookup(id)
		if (perr == nil) != (rerr == nil) {
			t.Fatalf("tenant %d: primary err %v, replica err %v", id, perr, rerr)
		}
		if perr != nil {
			continue
		}
		if pl.K != rl.K || pl.Phi != rl.Phi || pl.AllRed != rl.AllRed {
			t.Fatalf("tenant %d: primary %+v, replica %+v", id, pl, rl)
		}
		if len(pl.Blue) != len(rl.Blue) {
			t.Fatalf("tenant %d: blue sets %v vs %v", id, pl.Blue, rl.Blue)
		}
		for i := range pl.Blue {
			if pl.Blue[i] != rl.Blue[i] {
				t.Fatalf("tenant %d: blue sets %v vs %v", id, pl.Blue, rl.Blue)
			}
		}
	}
	if err := replica.Audit(); err != nil {
		t.Fatalf("replica audit: %v", err)
	}
}

// TestJournalReplayReconstructs replays a full journal — places,
// releases, and re-packer migrations — into a fresh scheduler and
// proves the replica is lease-for-lease identical to the primary.
func TestJournalReplayReconstructs(t *testing.T) {
	tr := topology.MustBT(64)
	rng := rand.New(rand.NewSource(7))
	loads := load.Generate(tr, load.PaperPowerLaw(), load.LeavesOnly, rng)

	var rec journalRecorder
	primary := New(tr, Config{Capacity: 1, Workers: 2, Journal: rec.record})
	defer primary.Close()

	ids := map[int64]bool{}
	live := fragment(t, primary, tr, loads, 8)
	for _, id := range live {
		ids[id] = true
	}
	if moved, _, err := primary.RepackNow(len(live)); err != nil || moved == 0 {
		t.Fatalf("repack moved %d (%v); the journal needs a migrate event", moved, err)
	}

	evs := rec.events()
	ops := map[JournalOp]int{}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		ops[ev.Op]++
	}
	if ops[JournalPlace] != 8 || ops[JournalRelease] != 4 || ops[JournalMigrate] == 0 {
		t.Fatalf("journal ops %v, want 8 places, 4 releases, ≥1 migrate", ops)
	}

	replica := New(tr, Config{Capacity: 1, Workers: 1})
	defer replica.Close()
	for _, ev := range evs {
		if err := replica.ApplyEvent(ev); err != nil {
			t.Fatalf("apply %+v: %v", ev, err)
		}
	}
	if got, want := replica.JournalSeq(), primary.JournalSeq(); got != want {
		t.Fatalf("replica at seq %d, primary at %d", got, want)
	}
	assertReplicaEqual(t, primary, replica, ids)
}

// TestCheckpointSeqAndDeltaReplay is the standby catch-up contract: a
// checkpoint taken mid-stream plus the journal suffix (events with
// Seq > the checkpoint's sequence) reconstructs the primary exactly.
func TestCheckpointSeqAndDeltaReplay(t *testing.T) {
	tr := topology.MustBT(32)
	rng := rand.New(rand.NewSource(11))
	loads := load.Generate(tr, load.PaperPowerLaw(), load.LeavesOnly, rng)

	var rec journalRecorder
	primary := New(tr, Config{Capacity: 2, Workers: 2, Journal: rec.record})
	defer primary.Close()

	ids := map[int64]bool{}
	for i := 0; i < 5; i++ {
		lease, err := primary.Place(loads, 2)
		if err != nil {
			t.Fatal(err)
		}
		ids[lease.ID] = true
	}
	var ckpt bytes.Buffer
	seq, err := primary.CheckpointSeq(&ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 5 {
		t.Fatalf("checkpoint at seq %d, want 5", seq)
	}
	// Post-snapshot traffic: two more places, one release.
	for i := 0; i < 2; i++ {
		lease, err := primary.Place(loads, 1)
		if err != nil {
			t.Fatal(err)
		}
		ids[lease.ID] = true
	}
	for id := range ids {
		if err := primary.Release(id); err != nil {
			t.Fatal(err)
		}
		break
	}

	replica := New(tr, Config{Capacity: 2, Workers: 1})
	defer replica.Close()
	if err := replica.Restore(&ckpt); err != nil {
		t.Fatal(err)
	}
	replica.SeedJournal(seq)
	for _, ev := range rec.events() {
		if ev.Seq <= seq {
			continue // folded into the checkpoint already
		}
		if err := replica.ApplyEvent(ev); err != nil {
			t.Fatalf("apply %+v: %v", ev, err)
		}
	}
	assertReplicaEqual(t, primary, replica, ids)
}

// TestFenceRejectsMutations proves a tripped fence aborts every kind of
// commit, leaving state untouched.
func TestFenceRejectsMutations(t *testing.T) {
	tr := topology.MustBT(16)
	rng := rand.New(rand.NewSource(3))
	loads := load.Generate(tr, load.PaperPowerLaw(), load.LeavesOnly, rng)

	errFenced := errors.New("fenced for test")
	var fenced sync.Mutex
	tripped := false
	s := New(tr, Config{Capacity: 1, Workers: 1, Fence: func() error {
		fenced.Lock()
		defer fenced.Unlock()
		if tripped {
			return errFenced
		}
		return nil
	}})
	defer s.Close()

	lease, err := s.Place(loads, 2)
	if err != nil {
		t.Fatalf("pre-fence place: %v", err)
	}
	before := s.Residual()

	fenced.Lock()
	tripped = true
	fenced.Unlock()

	if _, err := s.Place(loads, 2); !errors.Is(err, errFenced) {
		t.Fatalf("fenced place: %v, want fence error", err)
	}
	if err := s.Release(lease.ID); !errors.Is(err, errFenced) {
		t.Fatalf("fenced release: %v, want fence error", err)
	}
	if moved, _, err := s.RepackNow(4); err != nil || moved != 0 {
		t.Fatalf("fenced repack moved %d (%v), want 0", moved, err)
	}
	after := s.Residual()
	for v := range before {
		if before[v] != after[v] {
			t.Fatalf("switch %d: residual changed %d → %d under fence", v, before[v], after[v])
		}
	}
	if _, err := s.Lookup(lease.ID); err != nil {
		t.Fatalf("fenced scheduler lost lease %d: %v", lease.ID, err)
	}
}

// TestApplyEventValidation drives the replay path with the corruption a
// buggy or malicious primary could emit.
func TestApplyEventValidation(t *testing.T) {
	tr := topology.MustBT(8)
	s := New(tr, Config{Capacity: 1, Workers: 1})
	defer s.Close()
	n := tr.N()

	place := func(seq uint64, id int64, blue []int) JournalEvent {
		return JournalEvent{Seq: seq, Op: JournalPlace, ID: id, K: len(blue), Blue: blue, Load: make([]int, n)}
	}
	if err := s.ApplyEvent(place(2, 0, nil)); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Fatalf("seq gap: %v", err)
	}
	if err := s.ApplyEvent(place(1, 0, []int{0})); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		ev   JournalEvent
	}{
		{"duplicate id", place(2, 0, []int{1})},
		{"blue out of range", place(2, 1, []int{n})},
		{"blue twice", place(2, 1, []int{1, 1})},
		{"exhausted switch", place(2, 1, []int{0})},
		{"short load", JournalEvent{Seq: 2, Op: JournalPlace, ID: 1, Load: make([]int, n-1)}},
		{"release unknown", JournalEvent{Seq: 2, Op: JournalRelease, ID: 99}},
		{"migrate unknown", JournalEvent{Seq: 2, Op: JournalMigrate, ID: 99}},
		{"unknown op", JournalEvent{Seq: 2, Op: 77, ID: 0}},
	}
	for _, tc := range cases {
		if err := s.ApplyEvent(tc.ev); err == nil {
			t.Errorf("%s: applied, want error", tc.name)
		}
		if got := s.JournalSeq(); got != 1 {
			t.Fatalf("%s: seq advanced to %d on rejected event", tc.name, got)
		}
		if err := s.Audit(); err != nil {
			t.Fatalf("%s: state corrupted: %v", tc.name, err)
		}
	}
	// A rejected migrate must leave the ledger exactly as it was.
	if err := s.ApplyEvent(JournalEvent{Seq: 2, Op: JournalMigrate, ID: 0, Blue: []int{n + 3}}); err == nil {
		t.Fatal("migrate to out-of-range switch applied")
	}
	if err := s.Audit(); err != nil {
		t.Fatalf("rejected migrate corrupted state: %v", err)
	}
	if err := s.ApplyEvent(JournalEvent{Seq: 2, Op: JournalMigrate, ID: 0, Phi: 1.5, Blue: []int{2}}); err != nil {
		t.Fatalf("valid migrate: %v", err)
	}
	l, err := s.Lookup(0)
	if err != nil || len(l.Blue) != 1 || l.Blue[0] != 2 || l.Phi != 1.5 {
		t.Fatalf("migrated lease %+v (%v)", l, err)
	}
}

// TestRestoreRejectCounters proves every rejection class lands in its
// labeled soar_ckpt_restore_reject_total series.
func TestRestoreRejectCounters(t *testing.T) {
	tr := topology.MustBT(16)
	rng := rand.New(rand.NewSource(5))
	loads := load.Generate(tr, load.PaperPowerLaw(), load.LeavesOnly, rng)

	src := New(tr, Config{Capacity: 2, Workers: 1})
	defer src.Close()
	if _, err := src.Place(loads, 2); err != nil {
		t.Fatal(err)
	}
	var good bytes.Buffer
	if err := src.Checkpoint(&good); err != nil {
		t.Fatal(err)
	}

	reject := func(name, reason string, corrupt func() []byte) {
		t.Helper()
		s := New(tr, Config{Capacity: 2, Workers: 1})
		defer s.Close()
		before := s.met.ckptReject[reason].Value()
		attempts := s.met.ckptRestoreAttempts.Value()
		if err := s.Restore(bytes.NewReader(corrupt())); err == nil {
			t.Fatalf("%s: restored, want rejection", name)
		}
		if got := s.met.ckptReject[reason].Value(); got != before+1 {
			t.Fatalf("%s: reason=%q counter %d, want %d", name, reason, got, before+1)
		}
		if got := s.met.ckptRestoreAttempts.Value(); got != attempts+1 {
			t.Fatalf("%s: attempts %d, want %d", name, got, attempts+1)
		}
	}

	reject("truncated stream", "frame", func() []byte {
		return good.Bytes()[:10]
	})
	reject("flipped byte", "checksum", func() []byte {
		b := append([]byte(nil), good.Bytes()...)
		b[len(b)/2] ^= 0x40
		return b
	})
	reject("empty stream", "frame", func() []byte { return nil })

	// Wrong fingerprint: a checkpoint from a different topology.
	other := New(topology.MustBT(32), Config{Capacity: 2, Workers: 1})
	defer other.Close()
	var wrongTopo bytes.Buffer
	if err := other.Checkpoint(&wrongTopo); err != nil {
		t.Fatal(err)
	}
	reject("wrong topology", "topology", wrongTopo.Bytes)

	// Busy: restoring over live leases.
	busy := New(tr, Config{Capacity: 2, Workers: 1})
	defer busy.Close()
	if _, err := busy.Place(loads, 1); err != nil {
		t.Fatal(err)
	}
	before := busy.met.ckptReject["busy"].Value()
	if err := busy.Restore(bytes.NewReader(good.Bytes())); err == nil {
		t.Fatal("restore over live leases accepted")
	}
	if got := busy.met.ckptReject["busy"].Value(); got != before+1 {
		t.Fatalf("busy counter %d, want %d", got, before+1)
	}

	// The families render in the Prometheus exposition.
	var text bytes.Buffer
	if err := busy.Registry().WriteText(&text); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`soar_ckpt_restore_reject_total{reason="busy"} 1`,
		"soar_ckpt_restore_attempts_total 1",
	} {
		if !strings.Contains(text.String(), want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, text.String())
		}
	}
}
