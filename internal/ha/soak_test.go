package ha

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"soar/internal/chaos"
	"soar/internal/sched"
	"soar/internal/topology"
)

// TestFailoverSoak is the replicated control plane's capstone: three
// shards with two warm standbys each, churners placing and releasing
// across all of them, while each round kills a rotating shard's
// primary mid-batch — alternating between an in-process crash
// (CrashPrimary: commits start failing, network closes) and a chaos
// network kill (the node's connections sever with RSTs and its dials
// and accepts die until healed). After every round it asserts:
//
//   - recovery: the shard promotes a standby (epoch bump, serving
//     primary) within a small multiple of the heartbeat budget;
//   - fencing: the deposed primary's scheduler handle still accepts
//     calls but every commit returns ErrFenced, and the
//     soar_ha_epoch_rejections_total counter advances — a stale
//     primary cannot diverge the cluster (the acceptance criterion);
//   - no double-grant: no Place ever returns a lease id another
//     churner still holds;
//   - conservation: after draining every lease (including any
//     resurrected by a lost release delta), every shard audits clean
//     with zero tenants and zero capacity in use;
//   - replica refill: the dead slot rejoins as a standby once healed.
//
// SOAR_SOAK_ROUNDS overrides the round count; SOAR_AUDIT_LOG appends
// one line per round to the named file (the CI job uploads it).
func TestFailoverSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("failover soak skipped in -short")
	}

	rounds := 4
	if v := os.Getenv("SOAR_SOAK_ROUNDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("SOAR_SOAK_ROUNDS=%q invalid", v)
		}
		rounds = n
	}
	var auditLog *os.File
	if path := os.Getenv("SOAR_AUDIT_LOG"); path != "" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatalf("SOAR_AUDIT_LOG: %v", err)
		}
		auditLog = f
		defer f.Close()
	}
	logRound := func(format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		t.Log(line)
		if auditLog != nil {
			fmt.Fprintln(auditLog, line)
		}
	}

	const (
		heartbeat  = 50 * time.Millisecond
		missBudget = 4
		replicas   = 2
	)
	budget := time.Duration(missBudget) * heartbeat
	recoveryBudget := 10 * budget // 2s: generous under -race, still tight

	inj := chaos.New(chaos.Config{
		Seed:  42,
		Delay: 0.02, // light jitter on every stream, never fatal
	})
	tr := topology.CompleteKAry(3, 4)
	cl, err := NewCluster(tr, Options{
		Level:        1,
		Replicas:     replicas,
		Heartbeat:    heartbeat,
		MissBudget:   missBudget,
		RouteTimeout: 2 * recoveryBudget,
		Sched:        sched.Config{Capacity: 4},
		Dial:         inj.Dial,
		WrapListener: inj.WrapListener,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	p := cl.Partitioning()
	nShards := cl.Shards()

	// held maps global lease id → owner tag; the double-grant check.
	var heldMu sync.Mutex
	held := make(map[int64]string)

	benign := func(err error) bool {
		return errors.Is(err, sched.ErrNotFound) || errors.Is(err, ErrNoPrimary)
	}

	// churn runs place/release traffic confined to one shard until
	// stop closes. Fatal protocol violations land in errc.
	churn := func(shard int, tag string, seed int64, stop <-chan struct{}, errc chan<- error) {
		rng := rand.New(rand.NewSource(seed))
		pod := p.Shards[shard].Pod
		leaves := pod.Tree.Leaves()
		var mine []int64
		defer func() {
			for _, id := range mine {
				if err := cl.Release(id); err != nil && !benign(err) {
					errc <- fmt.Errorf("%s: drain release: %w", tag, err)
					return
				}
				heldMu.Lock()
				delete(held, id)
				heldMu.Unlock()
			}
		}()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Pace the churn: the point is sustained concurrent traffic
			// across the kill, not journal rates no deployment sees.
			time.Sleep(time.Duration(500+rng.Intn(1000)) * time.Microsecond)
			if len(mine) > 6 || (len(mine) > 0 && rng.Intn(3) == 0) {
				i := rng.Intn(len(mine))
				id := mine[i]
				mine = append(mine[:i], mine[i+1:]...)
				if err := cl.Release(id); err != nil && !benign(err) {
					errc <- fmt.Errorf("%s: release %d: %w", tag, id, err)
					return
				}
				heldMu.Lock()
				delete(held, id)
				heldMu.Unlock()
				continue
			}
			load := make([]int, tr.N())
			for _, lv := range leaves {
				if rng.Intn(2) == 0 {
					load[pod.Global[lv]] = 1 + rng.Intn(2)
				}
			}
			gv := pod.Global[leaves[rng.Intn(len(leaves))]]
			load[gv] = 1 // never all-zero
			lease, err := cl.Place(load, 1+rng.Intn(3))
			if err != nil {
				if benign(err) {
					continue
				}
				errc <- fmt.Errorf("%s: place: %w", tag, err)
				return
			}
			heldMu.Lock()
			if owner, dup := held[lease.ID]; dup {
				heldMu.Unlock()
				errc <- fmt.Errorf("%s: double-grant: lease %d already held by %s", tag, lease.ID, owner)
				return
			}
			held[lease.ID] = tag
			heldMu.Unlock()
			mine = append(mine, lease.ID)
		}
	}

	for round := 0; round < rounds; round++ {
		victim := round % nShards
		useKill := round%2 == 1
		mode := "crash"
		if useKill {
			mode = "netkill"
		}

		stop := make(chan struct{})
		errc := make(chan error, 2*nShards)
		var wg sync.WaitGroup
		for s := 0; s < nShards; s++ {
			for c := 0; c < 2; c++ {
				wg.Add(1)
				tag := fmt.Sprintf("r%d-s%d-c%d", round, s, c)
				seed := int64(round*100 + s*10 + c)
				go func(shard int, tag string, seed int64) {
					defer wg.Done()
					churn(shard, tag, seed, stop, errc)
				}(s, tag, seed)
			}
		}

		// Let the batch build, then kill the victim's primary mid-churn.
		time.Sleep(4 * heartbeat)
		preStatus := cl.Status()[victim]
		staleSch := cl.ShardScheduler(victim)
		if staleSch == nil {
			t.Fatalf("round %d: victim shard %d has no primary before the kill", round, victim)
		}
		killAt := time.Now()
		if useKill {
			inj.KillNode(preStatus.PrimaryNode)
		} else {
			if cl.CrashPrimary(victim) != staleSch {
				t.Fatalf("round %d: CrashPrimary returned a different scheduler", round)
			}
		}

		// Recovery: epoch bump + serving primary within the budget.
		var recovered time.Duration
		deadline := time.Now().Add(recoveryBudget)
		for {
			st := cl.Status()[victim]
			if st.Epoch > preStatus.Epoch && st.PrimaryNode >= 0 {
				recovered = time.Since(killAt)
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("round %d (%s): shard %d did not recover within %v (epoch %d→%d)",
					round, mode, victim, recoveryBudget, preStatus.Epoch, st.Epoch)
			}
			time.Sleep(heartbeat / 2)
		}

		// Fencing: the deposed primary still answers calls, but every
		// commit is rejected and counted. (On crash rounds the crashed
		// flag fences without counting, so assert the counter only on
		// network kills, where the process is "alive but partitioned".)
		rejBefore := cl.Metrics().EpochRejections()
		staleLoad := p.Localize(victim, podLoad(p, victim))
		if _, err := staleSch.Place(staleLoad, 2); !errors.Is(err, ErrFenced) {
			t.Fatalf("round %d (%s): stale primary Place returned %v, want ErrFenced", round, mode, err)
		}
		if err := staleSch.Release(1); !errors.Is(err, ErrFenced) && !errors.Is(err, sched.ErrNotFound) {
			t.Fatalf("round %d (%s): stale primary Release returned %v, want ErrFenced or ErrNotFound", round, mode, err)
		}
		rejAfter := cl.Metrics().EpochRejections()
		if useKill && rejAfter <= rejBefore {
			t.Fatalf("round %d: epoch rejection counter stuck at %d despite fenced commit", round, rejBefore)
		}

		// Keep churning briefly against the promoted primary, then stop.
		time.Sleep(4 * heartbeat)
		close(stop)
		wg.Wait()
		select {
		case err := <-errc:
			t.Fatalf("round %d (%s): churner failed: %v", round, mode, err)
		default:
		}

		if useKill {
			inj.HealNode(preStatus.PrimaryNode)
		}

		// Conservation: drain every surviving lease — including any a
		// lost release delta resurrected — then audit to zero.
		for _, id := range cl.LeaseIDs() {
			if err := cl.Release(id); err != nil && !benign(err) {
				t.Fatalf("round %d: sweep release %d: %v", round, id, err)
			}
		}
		if err := cl.Audit(); err != nil {
			t.Fatalf("round %d (%s): audit: %v", round, mode, err)
		}
		for _, st := range cl.Status() {
			if st.Tenants != 0 {
				t.Fatalf("round %d (%s): shard %d holds %d tenants after drain", round, mode, st.Index, st.Tenants)
			}
		}
		heldMu.Lock()
		if len(held) != 0 {
			t.Fatalf("round %d: %d leases still marked held after drain", round, len(held))
		}
		heldMu.Unlock()

		// Replica refill: the dead slot rejoins as a standby.
		refillDeadline := time.Now().Add(2 * recoveryBudget)
		for cl.Status()[victim].Standbys < replicas {
			if time.Now().After(refillDeadline) {
				t.Fatalf("round %d (%s): shard %d standbys stuck at %d, want %d",
					round, mode, victim, cl.Status()[victim].Standbys, replicas)
			}
			time.Sleep(heartbeat)
		}

		st := cl.Status()[victim]
		logRound("round %d: mode=%s shard=%d recovered=%s epoch=%d epoch_rejections=%d failovers=%d",
			round, mode, victim, recovered.Round(time.Millisecond), st.Epoch,
			cl.Metrics().EpochRejections(), cl.Metrics().Failovers())
	}

	if got := cl.Metrics().Failovers(); got < uint64(rounds) {
		t.Fatalf("observed %d failovers over %d rounds", got, rounds)
	}
}
