package core

// colorFrame is one pending switch of the SOAR-Color traversal: color v
// given budget i and nearest blue ancestor (or d) l hops above it.
type colorFrame struct {
	v, i, l int
}

// colorState is the reusable traversal scratch of SOAR-Color: the
// explicit DFS stack and the budget-split buffer decide fills per
// switch. A zero colorState is ready to use; after the first call the
// buffers are warm and a color pass performs no allocations, which is
// what lets pooled engines (Incremental.SolveInto, internal/sched)
// admit tenants allocation-free in steady state.
type colorState struct {
	stack  []colorFrame
	budget []int
}

// colorInto runs SOAR-Color over tb, writes the optimal blue set into
// blue (which must have length N) and returns φ = X_r(1, k). It is the
// allocation-free center of every pooled engine, so it is hotpath-checked.
//
//soar:hotpath
func (cs *colorState) colorInto(tb *Tables, blue []bool) float64 {
	t := tb.t
	if len(blue) != t.N() {
		panic("core: colorInto blue has wrong length")
	}
	cs.stack = append(cs.stack[:0], colorFrame{t.Root(), tb.k, 1})
	for len(cs.stack) > 0 {
		f := cs.stack[len(cs.stack)-1]
		cs.stack = cs.stack[:len(cs.stack)-1]
		isBlue, childBudget, childL := decide(t, &tb.nodes[f.v], f.v, f.i, f.l, cs.budget[:0])
		blue[f.v] = isBlue
		for m, c := range t.Children(f.v) {
			cs.stack = append(cs.stack, colorFrame{c, childBudget[m], childL})
		}
		cs.budget = childBudget[:0]
	}
	return tb.Optimum()
}

// colorIntoSparse is colorInto skipping zero-load subtrees: a subtree
// with no load has provably all-red tables (a blue there never strictly
// beats red — every candidate is 0 — and ties resolve red, so isBlue is
// false at every cell), which means the full traceback would color it
// entirely red no matter how the budget was split into it. Clearing
// blue up front and descending only into loaded children yields the
// identical placement while visiting O(loaded spine) switches instead
// of all n — the dominant saving under sparse tenants, where the
// traceback was most of the warm solve. subLoad must be the current
// subtree loads (length N).
//
//soar:hotpath
func (cs *colorState) colorIntoSparse(tb *Tables, blue []bool, subLoad []int64) float64 {
	t := tb.t
	if len(blue) != t.N() {
		panic("core: colorIntoSparse blue has wrong length")
	}
	if len(subLoad) != t.N() {
		panic("core: colorIntoSparse subLoad has wrong length")
	}
	for i := range blue {
		blue[i] = false
	}
	if subLoad[t.Root()] == 0 {
		return tb.Optimum()
	}
	cs.stack = append(cs.stack[:0], colorFrame{t.Root(), tb.k, 1})
	for len(cs.stack) > 0 {
		f := cs.stack[len(cs.stack)-1]
		cs.stack = cs.stack[:len(cs.stack)-1]
		isBlue, childBudget, childL := decide(t, &tb.nodes[f.v], f.v, f.i, f.l, cs.budget[:0])
		blue[f.v] = isBlue
		for m, c := range t.Children(f.v) {
			if subLoad[c] > 0 {
				cs.stack = append(cs.stack, colorFrame{c, childBudget[m], childL})
			}
		}
		cs.budget = childBudget[:0]
	}
	return tb.Optimum()
}

// ColorPhase runs SOAR-Color (paper Alg. 4): it walks the tree top-down
// along the argmin breadcrumbs recorded by Gather and returns the optimal
// blue set together with its cost φ = X_r(1, k).
//
// The destination conceptually sends (k, ℓ=1) to the root; every switch
// then determines its color from its table at its actual (ℓ*, i) and
// forwards to each child the number of blue switches to place in that
// child's subtree, exactly as in the paper. Unlike Gather, this phase
// performs no arithmetic — only table lookups — which is why it is orders
// of magnitude faster (paper Sec. 5.4).
func ColorPhase(tb *Tables) ([]bool, float64) {
	var cs colorState
	blue := make([]bool, tb.t.N())
	cost := cs.colorInto(tb, blue)
	return blue, cost
}
