package topology

import (
	"math/rand"
	"testing"
)

func TestCapsUniform(t *testing.T) {
	tr := MustBT(16)
	caps := CapsUniform(tr, 3)
	if len(caps) != tr.N() {
		t.Fatalf("profile has %d entries for %d switches", len(caps), tr.N())
	}
	for v, c := range caps {
		if c != 3 {
			t.Fatalf("caps[%d] = %d, want 3", v, c)
		}
	}
}

func TestCapsTiered(t *testing.T) {
	tr := MustBT(32) // 5 levels of switches
	caps := CapsTiered(tr, 1, 2, 4)
	for v, c := range caps {
		want := []int{1, 2, 4, 4, 4}[tr.Depth(v)-1]
		if c != want {
			t.Fatalf("caps[%d] (level %d) = %d, want %d", v, tr.Depth(v)-1, c, want)
		}
	}
}

func TestCapsTorOnly(t *testing.T) {
	tr := MustBT(64)
	rng := rand.New(rand.NewSource(5))
	caps := CapsTorOnly(tr, 2, 0.5, rng)
	leaves := 0
	for v, c := range caps {
		if !tr.IsLeaf(v) && c != 0 {
			t.Fatalf("internal switch %d has capacity %d", v, c)
		}
		if c != 0 && c != 2 {
			t.Fatalf("leaf %d has capacity %d, want 0 or 2", v, c)
		}
		if c == 2 {
			leaves++
		}
	}
	if leaves == 0 || leaves == len(tr.Leaves()) {
		t.Fatalf("p=0.5 selected %d of %d leaves", leaves, len(tr.Leaves()))
	}
	// p = 1 must select every leaf.
	for _, v := range tr.Leaves() {
		if CapsTorOnly(tr, 1, 1, rng)[v] != 1 {
			t.Fatalf("p=1 skipped leaf %d", v)
		}
	}
}

func TestCapsPowerLaw(t *testing.T) {
	tr := MustBT(256)
	rng := rand.New(rand.NewSource(9))
	caps := CapsPowerLaw(tr, 8, 2.5, rng)
	hist := make(map[int]int)
	for v, c := range caps {
		if c < 1 || c > 8 {
			t.Fatalf("caps[%d] = %d outside [1, 8]", v, c)
		}
		hist[c]++
	}
	// α = 2.5 concentrates mass at 1: the cheapest tier must dominate
	// the most expensive one.
	if hist[1] <= hist[8] {
		t.Fatalf("power law not skewed: %d ones vs %d eights", hist[1], hist[8])
	}
}

func TestCapsProfilesReject(t *testing.T) {
	tr := MustBT(8)
	rng := rand.New(rand.NewSource(1))
	for name, f := range map[string]func(){
		"uniform-negative":   func() { CapsUniform(tr, -1) },
		"tiered-empty":       func() { CapsTiered(tr) },
		"tiered-negative":    func() { CapsTiered(tr, 1, -2) },
		"tor-zero-cap":       func() { CapsTorOnly(tr, 0, 0.5, rng) },
		"tor-bad-p":          func() { CapsTorOnly(tr, 1, 1.5, rng) },
		"powerlaw-zero-max":  func() { CapsPowerLaw(tr, 0, 2, rng) },
		"powerlaw-bad-alpha": func() { CapsPowerLaw(tr, 4, 0, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
