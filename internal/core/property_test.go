package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"soar/internal/reduce"
	"soar/internal/topology"
)

// randomInstance decodes an arbitrary quick-generated seed into a
// well-formed φ-BIC instance.
func randomInstance(seed int64, maxN, maxK int) (*topology.Tree, []int, []bool, int) {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(maxN)
	parent := make([]int, n)
	omega := make([]float64, n)
	parent[0] = topology.NoParent
	for v := 1; v < n; v++ {
		parent[v] = rng.Intn(v)
	}
	for v := 0; v < n; v++ {
		omega[v] = []float64{0.5, 1, 2, 4}[rng.Intn(4)]
	}
	t := topology.MustNew(parent, omega)
	loads := make([]int, n)
	avail := make([]bool, n)
	for v := 0; v < n; v++ {
		loads[v] = rng.Intn(6)
		avail[v] = rng.Intn(5) != 0
	}
	return t, loads, avail, rng.Intn(maxK + 1)
}

func TestQuickSOARMatchesReference(t *testing.T) {
	// Mid-size cross-check: the table engine agrees with the independent
	// recursive-memoized reference on instances far beyond brute force.
	f := func(seed int64) bool {
		tr, loads, avail, k := randomInstance(seed, 60, 10)
		got := Solve(tr, loads, avail, k).Cost
		want := referenceCost(tr, loads, avail, k)
		return math.Abs(got-want) <= 1e-9
	}
	cfg := &quick.Config{MaxCount: 150}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReportedCostMatchesSimulation(t *testing.T) {
	// The cost SOAR reports is always exactly what its placement costs.
	f := func(seed int64) bool {
		tr, loads, avail, k := randomInstance(seed, 50, 8)
		res := Solve(tr, loads, avail, k)
		return math.Abs(res.Cost-reduce.Utilization(tr, loads, res.Blue)) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTableMonotoneInBudget(t *testing.T) {
	// X_v(ℓ, i) is non-increasing in i for every switch and every ℓ: a
	// larger budget can never hurt a subtree ("at most i" semantics).
	f := func(seed int64) bool {
		tr, loads, avail, k := randomInstance(seed, 40, 8)
		tb := Gather(tr, loads, avail, k)
		for v := 0; v < tr.N(); v++ {
			for l := 0; l <= tr.Depth(v); l++ {
				for i := 1; i <= k; i++ {
					if tb.X(v, l, i) > tb.X(v, l, i-1)+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTableMonotoneInDistance(t *testing.T) {
	// X_v(ℓ, i) is non-decreasing in ℓ: being farther from the barrier
	// can only add upstream cost (every ρ is positive).
	f := func(seed int64) bool {
		tr, loads, avail, k := randomInstance(seed, 40, 6)
		tb := Gather(tr, loads, avail, k)
		for v := 0; v < tr.N(); v++ {
			for i := 0; i <= k; i++ {
				for l := 1; l <= tr.Depth(v); l++ {
					if tb.X(v, l, i) < tb.X(v, l-1, i)-1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickChildOrderIrrelevant(t *testing.T) {
	// The optimum cannot depend on the order in which a switch's children
	// are folded into the DP. Relabeling the switches (which permutes
	// child order) must preserve the optimal cost.
	f := func(seed int64) bool {
		tr, loads, _, k := randomInstance(seed, 30, 6)
		base := Solve(tr, loads, nil, k).Cost

		// Relabel by reversing ids: new id = n-1-old. Children orders flip.
		n := tr.N()
		parent := make([]int, n)
		omega := make([]float64, n)
		loads2 := make([]int, n)
		for v := 0; v < n; v++ {
			nv := n - 1 - v
			if p := tr.Parent(v); p == topology.NoParent {
				parent[nv] = topology.NoParent
			} else {
				parent[nv] = n - 1 - p
			}
			omega[nv] = 1 / tr.Rho(v)
			loads2[nv] = loads[v]
		}
		tr2 := topology.MustNew(parent, omega)
		relabeled := Solve(tr2, loads2, nil, k).Cost
		return math.Abs(base-relabeled) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBudgetBeyondAvailIsFree(t *testing.T) {
	// Budget beyond |Λ| is unusable: cap[root] = min(k, |Λ|), so raising
	// k past the number of available switches changes nothing — cost and
	// placement are identical (bitwise: both solves read the same clamped
	// tables).
	f := func(seed int64) bool {
		tr, loads, avail, k := randomInstance(seed, 40, 6)
		nAvail := 0
		for v := 0; v < tr.N(); v++ {
			if avail[v] {
				nAvail++
			}
		}
		if k < nAvail {
			k = nAvail // start at saturation
		}
		base := Solve(tr, loads, avail, k)
		huge := Solve(tr, loads, avail, k+1+int(seed%13&7))
		if base.Cost != huge.Cost {
			return false
		}
		for v := range base.Blue {
			if base.Blue[v] != huge.Blue[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAvailabilityMonotone(t *testing.T) {
	// Enlarging Λ can only improve the optimum.
	f := func(seed int64) bool {
		tr, loads, avail, k := randomInstance(seed, 35, 6)
		restricted := Solve(tr, loads, avail, k).Cost
		full := Solve(tr, loads, nil, k).Cost
		return full <= restricted+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRateScalingScalesCost(t *testing.T) {
	// Multiplying every rate by c divides the optimal cost by c, and the
	// optimal placement remains optimal.
	f := func(seed int64, scale uint8) bool {
		c := float64(scale%7) + 2
		tr, loads, _, k := randomInstance(seed, 30, 5)
		n := tr.N()
		omega := make([]float64, n)
		parent := make([]int, n)
		for v := 0; v < n; v++ {
			parent[v] = tr.Parent(v)
			omega[v] = c / tr.Rho(v)
		}
		scaled := topology.MustNew(parent, omega)
		a := Solve(tr, loads, nil, k).Cost
		b := Solve(scaled, loads, nil, k).Cost
		return math.Abs(a-b*c) <= 1e-6*(1+a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
