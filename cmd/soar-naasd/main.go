// Command soar-naasd runs the SOAR Network-as-a-Service control plane:
// an HTTP daemon that leases in-network aggregation switches to tenants
// on a shared tree network (the NaaS offering the paper's introduction
// sketches).
//
//	soar-naasd -addr 127.0.0.1:7070 -topo bt -n 256 -capacity 4
//
// Admission is served by the internal/sched scheduler: arrivals batch
// inside -window, solve on a pool of -workers incremental engines, and
// a background re-packer (-repack-every, -repack-moves) recovers the
// utilization that tenant departures fragment away.
//
// API (JSON):
//
//	POST   /v1/tenants    {"load": [...], "k": 4} → lease
//	GET    /v1/tenants/{id}
//	DELETE /v1/tenants/{id}
//	GET    /v1/stats
//	GET    /v1/residual
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"time"

	"soar/internal/naas"
	"soar/internal/sched"
	"soar/internal/topology"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	topo := flag.String("topo", "bt", "topology: bt or sf")
	topoFile := flag.String("topo-file", "", "load the network from a JSON file (overrides -topo; see topology.Encode)")
	n := flag.Int("n", 256, "network size")
	capacity := flag.Int("capacity", 4, "per-switch aggregation capacity (0 = unlimited)")
	seed := flag.Int64("seed", 1, "seed for random topologies")
	workers := flag.Int("workers", 0, "scheduler engine-pool size (0 = GOMAXPROCS)")
	window := flag.Duration("window", 200*time.Microsecond, "admission batching window")
	repackEvery := flag.Duration("repack-every", time.Second, "background re-packing period (0 = off)")
	repackMoves := flag.Int("repack-moves", 8, "migration budget per re-packing round")
	flag.Parse()

	var tr *topology.Tree
	switch {
	case *topoFile != "":
		f, err := os.Open(*topoFile)
		if err != nil {
			log.Fatal(err)
		}
		tr, err = topology.Decode(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	case *topo == "bt":
		t, err := topology.BT(*n)
		if err != nil {
			log.Fatal(err)
		}
		tr = t
	case *topo == "sf":
		tr = topology.ScaleFree(*n, rand.New(rand.NewSource(*seed)))
	default:
		log.Fatalf("unknown -topo %q", *topo)
	}

	svc := naas.NewServiceWith(tr, sched.Config{
		Capacity: *capacity,
		Workers:  *workers,
		Window:   *window,
		Repack:   sched.RepackConfig{Every: *repackEvery, MaxMoves: *repackMoves},
	})
	defer svc.Close()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	fmt.Printf("soar-naasd: %d switches (%s), capacity %d, listening on %s\n",
		tr.N(), *topo, *capacity, *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
}
