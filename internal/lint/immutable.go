package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerImmutable flags writes through //soar:immutable types and
// fields outside //soar:ctor functions.
//
// A "write" is an assignment or IncDec whose target expression passes
// through an immutable field or an immutable-typed value (selector,
// index, dereference chains), or a copy/append whose destination does.
// Rebinding a plain local variable is not a write — only stores into
// memory reachable through an annotated type or field count. Aliasing
// through intermediate locals (x := imm.slice; x[0] = ...) is out of
// scope; the analyzer checks the syntactic access path.
var AnalyzerImmutable = &Analyzer{
	Name: "immutable",
	Doc:  "writes through //soar:immutable types or fields outside //soar:ctor functions",
	Run:  runImmutable,
}

func runImmutable(p *Pass) {
	notes := p.Module.Notes
	if len(notes.ImmType) == 0 && len(notes.ImmField) == 0 {
		return
	}
	for _, f := range p.Unit.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, _ := p.Unit.Info.Defs[fd.Name].(*types.Func); notes.Ctor[symbolOf(obj)] {
				continue // constructors may write; FuncLits inside inherit the exemption
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					for _, lhs := range n.Lhs {
						p.checkWrite(lhs, "assignment")
					}
				case *ast.IncDecStmt:
					p.checkWrite(n.X, "update")
				case *ast.CallExpr:
					p.checkMutatingBuiltin(n)
				}
				return true
			})
		}
	}
}

// checkMutatingBuiltin flags copy/append whose destination reaches
// immutable memory: copy writes through its first argument, and
// append may write into the first argument's backing array (and the
// result is routinely assigned back over the immutable field).
func (p *Pass) checkMutatingBuiltin(call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return
	}
	if b, _ := p.Unit.Info.Uses[id].(*types.Builtin); b == nil || (b.Name() != "copy" && b.Name() != "append" && b.Name() != "clear") {
		return
	}
	if desc := p.immutableTarget(call.Args[0], false); desc != "" {
		p.Reportf(call.Pos(), "%s into %s annotated //soar:immutable (write outside a //soar:ctor function)", id.Name, desc)
	}
}

// checkWrite reports a finding if lhs stores through immutable memory.
func (p *Pass) checkWrite(lhs ast.Expr, kind string) {
	if desc := p.immutableTarget(lhs, true); desc != "" {
		p.Reportf(lhs.Pos(), "%s writes through %s annotated //soar:immutable (write outside a //soar:ctor function)", kind, desc)
	}
}

// immutableTarget walks the access path of a write target and returns
// a description of the first immutable thing it passes through, or "".
// When topLevel is true a bare identifier target is a rebinding, not a
// write, and is never flagged.
func (p *Pass) immutableTarget(e ast.Expr, topLevel bool) string {
	notes := p.Module.Notes
	info := p.Unit.Info
	if _, ok := ast.Unparen(e).(*ast.Ident); ok && topLevel {
		return "" // rebinding a variable, not a store
	}
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			// Storing into x[i]: writes x's backing memory.
			if key := namedKey(info.TypeOf(v.X)); notes.ImmType[key] {
				return key
			}
			e = v.X
		case *ast.StarExpr:
			if key := namedKey(info.TypeOf(v)); notes.ImmType[key] {
				return key
			}
			e = v.X
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[v]; ok {
				if key := fieldKey(sel); notes.ImmField[key] {
					return key
				}
			}
			if key := namedKey(info.TypeOf(v.X)); notes.ImmType[key] {
				return key
			}
			e = v.X
		case *ast.Ident:
			// Access-path root: an immutable-typed variable itself.
			if key := namedKey(info.TypeOf(v)); notes.ImmType[key] && !topLevel {
				return key
			}
			return ""
		case *ast.CallExpr, *ast.SliceExpr:
			// f(...)[i] = ... or s[a:b][i] = ...: keep descending through
			// slice expressions; stop at calls (fresh value).
			if sl, ok := ast.Unparen(e).(*ast.SliceExpr); ok {
				e = sl.X
				continue
			}
			return ""
		default:
			return ""
		}
		topLevel = false
	}
}

// fieldKey returns "pkgpath.TypeName.field" for a field selection.
func fieldKey(sel *types.Selection) string {
	if sel.Kind() != types.FieldVal {
		return ""
	}
	owner := namedKey(sel.Recv())
	if owner == "" {
		return ""
	}
	return owner + "." + sel.Obj().Name()
}
