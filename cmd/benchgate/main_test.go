package main

import (
	"regexp"
	"strings"
	"testing"
)

const sampleBase = `goos: linux
goarch: amd64
pkg: soar
BenchmarkGather/n=1024/k=32-8         	     100	   1000000 ns/op	 2424044 B/op	      16 allocs/op
BenchmarkGather/n=1024/k=32-8         	     100	   1100000 ns/op	 2424044 B/op	      16 allocs/op
BenchmarkScheduler/scheduler/workers=8-8 	    5000	    230000 ns/op
BenchmarkRemoved-8                    	     100	    500000 ns/op
PASS
`

const sampleHead = `BenchmarkGather/n=1024/k=32-16        	     100	   1200000 ns/op
BenchmarkGather/n=1024/k=32-16        	     100	   1500000 ns/op
BenchmarkScheduler/scheduler/workers=8-16 	    5000	    231000 ns/op
BenchmarkAdded-16                     	     100	    400000 ns/op
ok  	soar	1.0s
`

func parse(t *testing.T, s string) map[string][]float64 {
	t.Helper()
	m, err := ParseBench(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseBench(t *testing.T) {
	m := parse(t, sampleBase)
	// The -procs suffix is stripped and repeated counts accumulate.
	if got := m["BenchmarkGather/n=1024/k=32"]; len(got) != 2 || got[0] != 1000000 || got[1] != 1100000 {
		t.Fatalf("gather samples = %v", got)
	}
	if got := m["BenchmarkScheduler/scheduler/workers=8"]; len(got) != 1 || got[0] != 230000 {
		t.Fatalf("scheduler samples = %v", got)
	}
	if _, ok := m["PASS"]; ok {
		t.Fatal("non-benchmark line parsed")
	}
}

func TestCompareGatesRegressions(t *testing.T) {
	base, head := parse(t, sampleBase), parse(t, sampleHead)
	// min(base)=1e6, min(head)=1.2e6: +20% — passes at 30%, fails at 10%.
	report, regressions := Compare(base, head, nil, 0.30)
	if len(regressions) != 0 {
		t.Fatalf("unexpected regressions at 30%%: %v\nreport:\n%s", regressions, report)
	}
	report, regressions = Compare(base, head, nil, 0.10)
	if len(regressions) != 1 || regressions[0] != "BenchmarkGather/n=1024/k=32" {
		t.Fatalf("regressions at 10%% = %v\nreport:\n%s", regressions, report)
	}
	// Added/removed benchmarks are reported but never gate.
	if !strings.Contains(report, "new") || !strings.Contains(report, "gone") {
		t.Fatalf("report missing new/gone rows:\n%s", report)
	}
}

func TestCompareMatchFilter(t *testing.T) {
	base, head := parse(t, sampleBase), parse(t, sampleHead)
	re := regexp.MustCompile(`^BenchmarkScheduler`)
	report, regressions := Compare(base, head, re, 0.0001)
	if len(regressions) != 1 || regressions[0] != "BenchmarkScheduler/scheduler/workers=8" {
		t.Fatalf("filtered regressions = %v\nreport:\n%s", regressions, report)
	}
	if strings.Contains(report, "BenchmarkGather") {
		t.Fatalf("filter leaked gather rows:\n%s", report)
	}
}

func TestCompareSpeedup(t *testing.T) {
	base := map[string][]float64{
		"BenchmarkGatherMemo/n=2048/k=128": {240000, 250000},
		"BenchmarkSchedulerSparse/memo":    {66000},
		"BenchmarkUnrelated/other":         {100},
		"BenchmarkOnlyInBase/n=2048/k=128": {500},
	}
	head := map[string][]float64{
		"BenchmarkGatherMemo/n=2048/k=128": {100000, 95000},
		"BenchmarkSchedulerSparse/memo":    {31000},
		"BenchmarkUnrelated/other":         {100000}, // slower, but not matched
	}
	re := regexp.MustCompile(`^BenchmarkGatherMemo/n=2048/k=128$|^BenchmarkSchedulerSparse/memo$`)
	// 240000/95000 = 2.53x and 66000/31000 = 2.13x: both hold at 2.0.
	report, misses := CompareSpeedup(base, head, re, 2.0)
	if len(misses) != 0 {
		t.Fatalf("unexpected misses at 2.0x: %v\nreport:\n%s", misses, report)
	}
	if strings.Contains(report, "Unrelated") || strings.Contains(report, "OnlyInBase") {
		t.Fatalf("unmatched/one-sided benchmarks leaked into the gate:\n%s", report)
	}
	// At 2.25x the scheduler cell (2.13x) fails, the gather cell holds.
	report, misses = CompareSpeedup(base, head, re, 2.25)
	if len(misses) != 1 || misses[0] != "BenchmarkSchedulerSparse/memo" {
		t.Fatalf("misses at 2.25x = %v\nreport:\n%s", misses, report)
	}
	// A pattern matching nothing present on both sides must fail loudly.
	_, misses = CompareSpeedup(base, head, regexp.MustCompile(`^BenchmarkRenamed$`), 2.0)
	if len(misses) != 1 {
		t.Fatalf("empty match did not fail the gate: %v", misses)
	}
}

func TestStripProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkGather-8":          "BenchmarkGather",
		"BenchmarkGather/k=32-16":    "BenchmarkGather/k=32",
		"BenchmarkGather/k=32":       "BenchmarkGather/k=32",
		"BenchmarkOdd-name":          "BenchmarkOdd-name",
		"BenchmarkScheduler/w=8-256": "BenchmarkScheduler/w=8",
	} {
		if got := stripProcs(in); got != want {
			t.Fatalf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
