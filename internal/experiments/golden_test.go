package experiments

import (
	"math"
	"testing"
)

// TestFig6GoldenValues pins the quick Fig. 6 output for its fixed seed.
// Every quantity in the harness is seeded and deterministically ordered,
// so a change here means an algorithm, distribution or harness change —
// which should be a conscious decision, not an accident.
func TestFig6GoldenValues(t *testing.T) {
	fig, err := Fig6(QuickFig6())
	if err != nil {
		t.Fatal(err)
	}
	sp := fig.Subplots[0] // constant rates, power-law load
	want := map[string][]float64{
		"soar":     {0.785237, 0.594477, 0.390667, 0.233909},
		"top":      {0.834570, 0.736517, 0.608934, 0.461219},
		"max":      {0.785497, 0.626075, 0.457050, 0.317579},
		"level":    {0.834570, 0.671614, 0.514843, 0.372915},
		"all-blue": {0.077926, 0.077926, 0.077926, 0.077926},
	}
	for _, s := range sp.Series {
		w, ok := want[s.Label]
		if !ok {
			t.Fatalf("unexpected series %q", s.Label)
		}
		for i := range w {
			if math.Abs(s.Y[i]-w[i]) > 1e-6 {
				t.Errorf("%s[%d] = %.6f, want %.6f", s.Label, i, s.Y[i], w[i])
			}
		}
	}
}
