// Benchmarks regenerating every figure of the SOAR paper's evaluation.
//
// One BenchmarkFigN per paper figure runs the corresponding experiment
// harness end to end (at reduced "quick" scale so the full suite stays
// tractable; run `soarctl exp <fig>` for paper-scale output). The paper's
// Fig. 9 is itself a runtime study, so BenchmarkGather and BenchmarkColor
// reproduce its (network size × budget) grid as native Go benchmarks —
// the numbers recorded in EXPERIMENTS.md come from these.
//
// Ablation benches at the bottom quantify the design choices called out
// in DESIGN.md: the DP versus the greedy/brute-force alternatives, the
// serial versus distributed versus TCP engines, and the byte-complexity
// engines for both use cases.
package soar

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"soar/internal/cluster"
	"soar/internal/core"
	"soar/internal/experiments"
	"soar/internal/load"
	"soar/internal/paramserver"
	"soar/internal/placement"
	"soar/internal/reduce"
	"soar/internal/timesim"
	"soar/internal/topology"
	"soar/internal/wordcount"
	"soar/internal/workload"
)

// --- One bench per evaluation figure ---------------------------------

func BenchmarkFig6StrategyComparison(b *testing.B) {
	cfg := experiments.QuickFig6()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig6(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7OnlineWorkloads(b *testing.B) {
	cfg := experiments.QuickFig7()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8UseCases(b *testing.B) {
	cfg := experiments.QuickFig8()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig8(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9Runtime(b *testing.B) {
	cfg := experiments.QuickFig9()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10Scaling(b *testing.B) {
	cfg := experiments.QuickFig10()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11ScaleFree(b *testing.B) {
	cfg := experiments.QuickFig11()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- The paper's Fig. 9 grid as native benchmarks --------------------

func fig9Instance(b *testing.B, n int) (*topology.Tree, []int) {
	b.Helper()
	tr, err := topology.BT(n)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	loads := load.Generate(tr, load.PaperPowerLaw(), load.LeavesOnly, rng)
	return tr, loads
}

// BenchmarkGather is the paper's Fig. 9: SOAR-Gather across network
// sizes 256..2048 and budgets 4..128. The paper predicts quadratic
// growth in k; with the effective-budget clamping the sub-benchmark
// times grow ~linearly in k instead (EXPERIMENTS.md keeps the
// before/after table), and every cell runs as O(1) arena slabs.
func BenchmarkGather(b *testing.B) {
	for _, n := range []int{256, 512, 1024, 2048} {
		for _, k := range []int{4, 8, 16, 32, 64, 128} {
			b.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(b *testing.B) {
				tr, loads := fig9Instance(b, n)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					core.Gather(tr, loads, nil, k)
				}
			})
		}
	}
}

// BenchmarkGatherBounded isolates the effective-budget clamping on the
// Fig. 9 grid: the same cells as BenchmarkGather, but with the
// availability set Λ restricted to a fraction of the switches, which
// tightens cap[v] = min(k, |T_v ∩ Λ|) further and shrinks both the merge
// work and the tables. lambda=100 is the plain grid (every switch
// available); lambda=25 models the constrained deployments of the
// follow-up congestion paper. Allocations per op stay O(1) — slabs, not
// per-node makes — at every cell.
func BenchmarkGatherBounded(b *testing.B) {
	for _, n := range []int{256, 2048} {
		for _, k := range []int{4, 128} {
			for _, lambdaPct := range []int{100, 25} {
				b.Run(fmt.Sprintf("n=%d/k=%d/lambda=%d", n, k, lambdaPct), func(b *testing.B) {
					tr, loads := fig9Instance(b, n)
					var avail []bool
					if lambdaPct < 100 {
						avail = make([]bool, tr.N())
						rng := rand.New(rand.NewSource(11))
						for v := range avail {
							avail[v] = rng.Intn(100) < lambdaPct
						}
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						core.Gather(tr, loads, avail, k)
					}
				})
			}
		}
	}
}

// BenchmarkGatherMemo measures the memoized Gather (hash-consed subtree
// classes, tables aliased across class members) on the Fig. 9 cells
// where symmetry is maximal: BT topologies with a uniform (constant)
// leaf load, the regime of the companion congestion paper's fat-tree
// deployments. Every level is then one equivalence class, so a warm
// solve interns n classes but computes only O(levels) tables — compare
// against BenchmarkGather at the same (n, k): the DP cost of the plain
// engine is load-value-independent, so the cells are directly
// comparable, and the n=2048/k=128 cell is the ≥ 5× acceptance gate.
func BenchmarkGatherMemo(b *testing.B) {
	for _, n := range []int{256, 2048} {
		for _, k := range []int{4, 128} {
			b.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(b *testing.B) {
				tr, err := topology.BT(n)
				if err != nil {
					b.Fatal(err)
				}
				loads := load.Generate(tr, load.Constant{V: 5}, load.LeavesOnly, rand.New(rand.NewSource(4)))
				m := core.NewMemo(tr)
				core.GatherMemo(m, loads, nil, k) // warm the class cache
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					core.GatherMemo(m, loads, nil, k)
				}
			})
		}
	}
}

// BenchmarkGatherSparse isolates the zero-load fast path: a BT(2048)
// tenant loading 8 racks leaves almost every subtree empty, and the
// memoized engine serves all those tables from one shared all-zero
// slab. ReportAllocs makes the contract visible: the plain engine
// allocates its full O(n)-sized table slabs per solve, the warm
// memoized engine only O(classes) table storage (amortized to zero)
// plus constant per-solve bookkeeping.
func BenchmarkGatherSparse(b *testing.B) {
	tr := topology.MustBT(2048)
	const k = 32
	rng := rand.New(rand.NewSource(9))
	loads := load.GenerateSparse(tr, load.PaperPowerLaw(), 8, rng)
	b.Run("plain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.Gather(tr, loads, nil, k)
		}
	})
	b.Run("memo", func(b *testing.B) {
		m := core.NewMemo(tr)
		core.GatherMemo(m, loads, nil, k) // warm
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			core.GatherMemo(m, loads, nil, k)
		}
	})
}

// BenchmarkSolveBatch measures the fused batch engine on the
// scheduler's regime: 64 sparse BT(2048) tenants (8 loaded racks each)
// solved in one node-outer pass against shared zero-load class tables,
// versus pushing the same batch through per-instance memoized solves on
// an equally warm cache. The batch cell is gated ≥ 2× under the
// sequential cell by benchgate, and bench-smoke asserts its steady
// state allocates nothing.
func BenchmarkSolveBatch(b *testing.B) {
	tr := topology.MustBT(2048)
	const k = 32
	const batch = 64
	rng := rand.New(rand.NewSource(9))
	loads := make([][]int, batch)
	for i := range loads {
		loads[i] = load.GenerateSparse(tr, load.PaperPowerLaw(), 8, rng)
	}
	b.Run(fmt.Sprintf("batch=%d/k=%d", batch, k), func(b *testing.B) {
		m := core.NewMemo(tr)
		bs := core.NewBatchSolver(m)
		blue := make([][]bool, batch)
		costs := make([]float64, batch)
		for i := range blue {
			blue[i] = make([]bool, tr.N())
		}
		bs.Solve(loads, nil, k, blue, costs) // warm classes and scratch
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bs.Solve(loads, nil, k, blue, costs)
		}
	})
	b.Run(fmt.Sprintf("sequential=%d/k=%d", batch, k), func(b *testing.B) {
		m := core.NewMemo(tr)
		for i := range loads {
			core.SolveMemo(m, loads[i], nil, k) // warm the same classes
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range loads {
				core.SolveMemo(m, loads[j], nil, k)
			}
		}
	})
}

// BenchmarkColor is the companion measurement: the paper reports
// SOAR-Color to be orders of magnitude cheaper than SOAR-Gather.
func BenchmarkColor(b *testing.B) {
	for _, n := range []int{256, 2048} {
		for _, k := range []int{4, 128} {
			b.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(b *testing.B) {
				tr, loads := fig9Instance(b, n)
				tb := core.Gather(tr, loads, nil, k)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					core.ColorPhase(tb)
				}
			})
		}
	}
}

// --- Ablations --------------------------------------------------------

// BenchmarkSolveEngines compares the three deployments of the same
// algorithm: serial, goroutine message-passing, and loopback TCP.
func BenchmarkSolveEngines(b *testing.B) {
	tr, loads := fig9Instance(b, 256)
	const k = 16
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Solve(tr, loads, nil, k)
		}
	})
	b.Run("goroutines", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.SolveDistributed(tr, loads, nil, k)
		}
	})
	b.Run("compact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.SolveCompact(tr, loads, nil, k)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.SolveParallel(tr, loads, nil, k, 0)
		}
	})
	b.Run("tcp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			if _, err := cluster.Run(ctx, tr, loads, nil, k); err != nil {
				cancel()
				b.Fatal(err)
			}
			cancel()
		}
	})
}

// BenchmarkStrategies compares placement costs of SOAR against the
// baselines on the paper's standard instance (BT(256), k=16).
func BenchmarkStrategies(b *testing.B) {
	tr, loads := fig9Instance(b, 256)
	const k = 16
	for _, s := range []placement.Strategy{
		core.Strategy{}, placement.Top{}, placement.Max{}, placement.Level{}, placement.Greedy{},
	} {
		b.Run(s.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s.Place(tr, loads, nil, k)
			}
		})
	}
}

// BenchmarkReduceCounting measures the analytic Reduce engine that every
// experiment leans on.
func BenchmarkReduceCounting(b *testing.B) {
	tr, loads := fig9Instance(b, 2048)
	blue := core.Solve(tr, loads, nil, 64).Blue
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reduce.Utilization(tr, loads, blue)
	}
}

// BenchmarkByteComplexity measures the payload engines behind Fig. 8.
func BenchmarkByteComplexity(b *testing.B) {
	tr, loads := fig9Instance(b, 64)
	blue := core.Solve(tr, loads, nil, 8).Blue
	servers := int(load.Total(loads))
	b.Run("wordcount", func(b *testing.B) {
		agg := wordcount.NewAggregator(wordcount.TestConfig(), servers, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reduce.ByteComplexity(tr, loads, blue, agg)
		}
	})
	b.Run("paramserver", func(b *testing.B) {
		agg := paramserver.NewAggregator(paramserver.TestConfig(), 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reduce.ByteComplexity(tr, loads, blue, agg)
		}
	})
}

// BenchmarkGatherMemory contrasts the breadcrumb-storing Gather (fast
// Color, more memory) with the compact engine (minimal tables, Color
// recomputes splits) — the memory/time design choice in DESIGN.md.
func BenchmarkGatherMemory(b *testing.B) {
	tr, loads := fig9Instance(b, 512)
	b.Run("breadcrumbs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.Gather(tr, loads, nil, 32)
		}
	})
	b.Run("compact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			core.GatherCompact(tr, loads, nil, 32)
		}
	})
}

// BenchmarkIncremental contrasts the stateful engine's per-update cost
// (one leaf-load point update, flushed) with a full re-Gather on the
// same instance, across the Fig. 9 grid. The per-update path recomputes
// only the h(T)+1 tables on the leaf's root path, so the expected gap is
// ~n/h — about two orders of magnitude at n=2048. The online sub-benches
// run one full Fig. 7-style allocation sequence through the from-scratch
// and the incremental allocator.
func BenchmarkIncremental(b *testing.B) {
	for _, n := range []int{256, 512, 1024, 2048} {
		for _, k := range []int{4, 16, 64} {
			b.Run(fmt.Sprintf("update/n=%d/k=%d", n, k), func(b *testing.B) {
				tr, loads := fig9Instance(b, n)
				inc := core.NewIncremental(tr, loads, nil, k)
				inc.Cost()
				leaves := tr.Leaves()
				rng := rand.New(rand.NewSource(7))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					inc.UpdateLoad(leaves[rng.Intn(len(leaves))], 1)
					inc.Cost()
				}
			})
			b.Run(fmt.Sprintf("fullgather/n=%d/k=%d", n, k), func(b *testing.B) {
				tr, loads := fig9Instance(b, n)
				for i := 0; i < b.N; i++ {
					core.Gather(tr, loads, nil, k)
				}
			})
		}
	}
	tr, _ := fig9Instance(b, 256)
	rng := rand.New(rand.NewSource(2))
	seq := workload.NewSequence(tr, rng)
	arrivals := make([][]int, 32)
	for i := range arrivals {
		arrivals[i] = seq.Next()
	}
	b.Run("online/fromscratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			alloc := workload.NewAllocator(tr, core.Strategy{}, 16, 4)
			workload.Run(alloc, arrivals)
		}
	})
	b.Run("online/incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			alloc := workload.NewIncrementalAllocator(tr, 16, 4)
			workload.Run(alloc, arrivals)
		}
	})
	// Sparse arrivals: consecutive workloads differ in only 8 leaf loads,
	// the regime the incremental allocator is built for (the paper-style
	// arrivals above redraw every leaf, so there the engines tie).
	sparse := make([][]int, 32)
	sparse[0] = seq.Next()
	leaves := tr.Leaves()
	for i := 1; i < len(sparse); i++ {
		w := append([]int(nil), sparse[i-1]...)
		for j := 0; j < 8; j++ {
			w[leaves[rng.Intn(len(leaves))]] = 1 + rng.Intn(10)
		}
		sparse[i] = w
	}
	b.Run("online-sparse/fromscratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			alloc := workload.NewAllocator(tr, core.Strategy{}, 16, 4)
			workload.Run(alloc, sparse)
		}
	})
	b.Run("online-sparse/incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			alloc := workload.NewIncrementalAllocator(tr, 16, 4)
			workload.Run(alloc, sparse)
		}
	})
}

// BenchmarkGatherParallel measures the parallel leaf-to-root sweep the
// paper leaves as future work (Sec. 5.4), at the Fig. 9 grid's largest
// cell. Speedup is only observable on multi-core machines; on a
// single-core runner the variants coincide (the engines are verified
// identical in TestAllEnginesAgree either way).
func BenchmarkGatherParallel(b *testing.B) {
	tr, loads := fig9Instance(b, 2048)
	const k = 64
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.GatherParallel(tr, loads, nil, k, workers)
			}
		})
	}
}

// BenchmarkExtObjectives regenerates the Sec. 8 extension experiment
// (utilization vs completion time vs bottleneck).
func BenchmarkExtObjectives(b *testing.B) {
	cfg := experiments.QuickExtObjectives()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtObjectives(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtTopologies regenerates the robustness extension across
// tree families.
func BenchmarkExtTopologies(b *testing.B) {
	cfg := experiments.QuickExtTopologies()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ExtTopologies(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTimedReduce measures the discrete-event simulator behind the
// completion-time metric.
func BenchmarkTimedReduce(b *testing.B) {
	tr, loads := fig9Instance(b, 1024)
	blue := core.Solve(tr, loads, nil, 32).Blue
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		timesim.Run(tr, loads, blue)
	}
}

// BenchmarkOnlineAllocation measures one full online sequence (32
// workloads, capacity 4) as in Fig. 7.
func BenchmarkOnlineAllocation(b *testing.B) {
	tr, _ := fig9Instance(b, 256)
	rng := rand.New(rand.NewSource(2))
	seq := workload.NewSequence(tr, rng)
	arrivals := make([][]int, 32)
	for i := range arrivals {
		arrivals[i] = seq.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alloc := workload.NewAllocator(tr, core.Strategy{}, 16, 4)
		workload.Run(alloc, arrivals)
	}
}
